lib/runtime/tvar.ml: Atomic Fmt
