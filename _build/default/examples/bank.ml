(* A bank built on the STM runtime: concurrent transfers with an invariant
   audit, in both lazy (TL2) and eager (undo-log) modes, plus a
   publication-style account-opening idiom.

   Run with:  dune exec examples/bank.exe *)

open Tmx_runtime

let accounts = 32
let initial = 1000

type bank = { balances : Tvar.t array; open_flags : Tvar.t array }

let make_bank () =
  {
    balances = Array.init accounts (fun _ -> Tvar.make initial);
    open_flags = Array.init accounts (fun i -> Tvar.make (if i < accounts / 2 then 1 else 0));
  }

let transfer ~mode bank a b amount =
  Stm.atomically ~mode (fun tx ->
      if Stm.read tx bank.open_flags.(a) = 0 || Stm.read tx bank.open_flags.(b) = 0
      then Stm.abort tx
      else begin
        let va = Stm.read tx bank.balances.(a) in
        if va < amount then false
        else begin
          Stm.write tx bank.balances.(a) (va - amount);
          Stm.write tx bank.balances.(b) (Stm.read tx bank.balances.(b) + amount);
          true
        end
      end)

(* publication: initialize the balance plainly, then open the account
   transactionally — the §1 publication idiom *)
let open_account ~mode bank i seed_balance =
  Tvar.unsafe_write bank.balances.(i) seed_balance;
  ignore (Stm.atomically ~mode (fun tx -> Stm.write tx bank.open_flags.(i) 1))

let audit ~mode bank =
  Option.get
    (Stm.atomically ~mode (fun tx ->
         let total = ref 0 and opened = ref 0 in
         for i = 0 to accounts - 1 do
           if Stm.read tx bank.open_flags.(i) = 1 then begin
             incr opened;
             total := !total + Stm.read tx bank.balances.(i)
           end
         done;
         (!opened, !total)))

let run_mode mode name =
  let bank = make_bank () in
  let stop = Atomic.make false in
  let transfers = Atomic.make 0 and vetoed = Atomic.make 0 in
  let worker seed () =
    let st = ref seed in
    let rand m =
      st := (!st * 48271 + 11) land 0x3fffffff;
      !st mod m
    in
    for _ = 1 to 3000 do
      let a = rand accounts and b = rand accounts and amount = rand 50 in
      if a <> b then
        match transfer ~mode bank a b amount with
        | Some _ -> Atomic.incr transfers
        | None -> Atomic.incr vetoed (* a party was not open yet *)
    done
  in
  let opener () =
    for i = accounts / 2 to accounts - 1 do
      open_account ~mode bank i initial;
      Domain.cpu_relax ()
    done;
    Atomic.set stop true
  in
  let auditor () =
    let violations = ref 0 in
    while not (Atomic.get stop) do
      let opened, total = audit ~mode bank in
      (* money is conserved among open accounts: every open account was
         seeded with [initial] and transfers only move money between open
         accounts *)
      if total <> opened * initial then incr violations
    done;
    !violations
  in
  let ds = [ Domain.spawn (worker 7); Domain.spawn (worker 1009) ] in
  let op = Domain.spawn opener in
  let au = Domain.spawn auditor in
  List.iter Domain.join ds;
  Domain.join op;
  let violations = Domain.join au in
  let opened, total = audit ~mode bank in
  Fmt.pr
    "%-6s transfers:%d vetoed:%d — final: %d accounts open, total=%d \
     (expected %d), audit violations:%d@."
    name (Atomic.get transfers) (Atomic.get vetoed) opened total
    (opened * initial) violations

let () =
  run_mode Stm.Lazy "lazy";
  run_mode Stm.Eager "eager";
  let commits, conflicts, user_aborts = Stm.stats_snapshot () in
  Fmt.pr "totals: commits=%d conflicts=%d user-aborts=%d@." commits conflicts
    user_aborts
