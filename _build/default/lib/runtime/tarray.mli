(** Transactional integer arrays: slots are {!Tvar}s; indices double as
    pointers for the other transactional structures. *)

type t = Tvar.t array

val make : int -> int -> t
val init : int -> (int -> int) -> t
val length : t -> int
val get : Stm.tx -> t -> int -> int
val set : Stm.tx -> t -> int -> int -> unit
val update : Stm.tx -> t -> int -> (int -> int) -> unit
val swap : Stm.tx -> t -> int -> int -> unit

val snapshot : ?mode:Stm.mode -> t -> int array option
(** A transactionally consistent view of the whole array. *)

val unsafe_snapshot : t -> int array
(** Plain snapshot: racy by design; safe only after privatization. *)
