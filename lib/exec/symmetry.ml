(* Symmetry reduction for the enumerator: detect thread permutations
   that map the unfolded program onto itself (up to a bijective renaming
   of locations), group the thread-path combinations into orbits under
   the generated group, and enumerate only one representative per orbit.

   A permutation π of threads is an automorphism when, for every thread
   i and path index a, the a-th path of thread i and the a-th path of
   thread π(i) have positionally identical proto lists modulo one global
   location bijection σ (values must match exactly — reads-from and
   coherence depend on them).  Such a π lifts to an isomorphism of
   candidate execution graphs that preserves program order, reads-from,
   coherence and transaction structure, hence every consistency axiom:
   the candidates of the image combo are exactly the renamed candidates
   of the representative, with identical verdicts.  The enumerator
   therefore replays the representative's consistent selections onto the
   image combo (transporting the selection keys through π) instead of
   re-searching its candidate space.

   Registers never need unification: a path's register environment is
   pinned by its own protos (loads carry their values), and outcomes are
   rebuilt from the image combo's own paths. *)

(* -- automorphism search -------------------------------------------------- *)

(* shape of a path with locations abstracted away: candidate π must at
   least preserve shapes, which prunes the permutation search *)
let shape (p : Proto.path) =
  String.concat ";"
    (List.map
       (function
         | Proto.PWrite (_, v) -> "W" ^ string_of_int v
         | Proto.PRead (_, v) -> "R" ^ string_of_int v
         | Proto.PBegin -> "B"
         | Proto.PCommit -> "C"
         | Proto.PAbort -> "A"
         | Proto.PQfence _ -> "Q")
       p.protos)

let signature paths = String.concat "|" (List.map shape paths)

(* verify candidate π by unifying paths pointwise under one location
   bijection, built incrementally *)
let verify (tp : Proto.path array array) (pi : int array) =
  let fwd = Hashtbl.create 8 and bwd = Hashtbl.create 8 in
  let unify_loc x y =
    match Hashtbl.find_opt fwd x with
    | Some y' -> String.equal y' y
    | None -> (
        match Hashtbl.find_opt bwd y with
        | Some _ -> false
        | None ->
            Hashtbl.add fwd x y;
            Hashtbl.add bwd y x;
            true)
  in
  let unify_proto a b =
    match (a, b) with
    | Proto.PWrite (x, v), Proto.PWrite (y, w) -> v = w && unify_loc x y
    | Proto.PRead (x, v), Proto.PRead (y, w) -> v = w && unify_loc x y
    | Proto.PBegin, Proto.PBegin
    | Proto.PCommit, Proto.PCommit
    | Proto.PAbort, Proto.PAbort ->
        true
    | Proto.PQfence x, Proto.PQfence y -> unify_loc x y
    | _ -> false
  in
  try
    Array.iteri
      (fun i paths ->
        let paths' = tp.(pi.(i)) in
        if Array.length paths <> Array.length paths' then raise Exit;
        Array.iteri
          (fun a (p : Proto.path) ->
            let q = paths'.(a) in
            if List.length p.protos <> List.length q.protos then raise Exit;
            List.iter2
              (fun pa pb -> if not (unify_proto pa pb) then raise Exit)
              p.protos q.protos)
          paths)
      tp;
    true
  with Exit -> false

let is_identity pi =
  let ok = ref true in
  Array.iteri (fun i p -> if p <> i then ok := false) pi;
  !ok

(* Non-identity automorphisms of the unfolded program.  The search
   enumerates signature-compatible permutations with backtracking; for
   pathologically many threads it bails out and reports none (symmetry
   reduction degrades to plain reduction, soundly). *)
let find (thread_paths : Proto.path list list) : int array list =
  let tp = Array.of_list (List.map Array.of_list thread_paths) in
  let t = Array.length tp in
  if t < 2 || t > 8 then []
  else begin
    let sigs = Array.map (fun ps -> signature (Array.to_list ps)) tp in
    let found = ref [] in
    let pi = Array.make t (-1) in
    let used = Array.make t false in
    let rec go i =
      if i = t then begin
        if (not (is_identity pi)) && verify tp pi then
          found := Array.copy pi :: !found
      end
      else
        for j = 0 to t - 1 do
          if (not used.(j)) && String.equal sigs.(i) sigs.(j) then begin
            pi.(i) <- j;
            used.(j) <- true;
            go (i + 1);
            used.(j) <- false;
            pi.(i) <- -1
          end
        done
    in
    go 0;
    List.rev !found
  end

(* -- orbits of combo indices under the generated group -------------------- *)

(* Combos are indexed in mixed radix over per-thread path choices,
   thread 0 most significant — the enumeration order of the product.
   Applying generator π to selection s yields s' with s'(π i) = s(i).
   Orbits come from union-find over the edges s → π·s, with each set's
   representative the smallest index (so representatives precede their
   images in enumeration order); alongside the representative we track
   the permutation that maps it to each member. *)

type t = {
  rep : int array; (* combo -> orbit representative (smallest index) *)
  perm : int array array; (* combo c = π applied to its representative *)
}

let compose p q = Array.init (Array.length p) (fun i -> p.(q.(i)))

let invert p =
  let inv = Array.make (Array.length p) 0 in
  Array.iteri (fun i pi -> inv.(pi) <- i) p;
  inv

let decode_with ~weights ~radices idx =
  Array.mapi (fun i w -> idx / w mod radices.(i)) weights

let encode_with ~weights sel =
  let acc = ref 0 in
  Array.iteri (fun i s -> acc := !acc + (s * weights.(i))) sel;
  !acc

(* beyond this many combos the orbit tables are not worth their memory;
   symmetry reduction is skipped (plain reduction still applies) *)
let orbit_limit = 200_000

let orbits ~(radices : int array) (autos : int array list) : t option =
  let t = Array.length radices in
  let total = Array.fold_left (fun acc r -> acc * r) 1 radices in
  if autos = [] || total <= 0 || total > orbit_limit then None
  else begin
    let weights = Array.make t 1 in
    for i = t - 2 downto 0 do
      weights.(i) <- weights.(i + 1) * radices.(i + 1)
    done;
    let identity = Array.init t Fun.id in
    let parent = Array.init total Fun.id in
    let pperm = Array.make total identity in
    (* find with path compression; x = pperm(x) applied to its root *)
    let rec find x =
      if parent.(x) = x then (x, pperm.(x))
      else begin
        let r, pr = find parent.(x) in
        let px = compose pperm.(x) pr in
        parent.(x) <- r;
        pperm.(x) <- px;
        (r, px)
      end
    in
    let union a b gen =
      (* b = gen applied to a *)
      let ra, pa = find a and rb, pb = find b in
      if ra <> rb then
        if ra < rb then begin
          parent.(rb) <- ra;
          pperm.(rb) <- compose (invert pb) (compose gen pa)
        end
        else begin
          parent.(ra) <- rb;
          pperm.(ra) <- compose (invert pa) (compose (invert gen) pb)
        end
    in
    let apply gen sel =
      let out = Array.make t 0 in
      Array.iteri (fun i s -> out.(gen.(i)) <- s) sel;
      out
    in
    for idx = 0 to total - 1 do
      let sel = decode_with ~weights ~radices idx in
      List.iter
        (fun gen ->
          let img = encode_with ~weights (apply gen sel) in
          union idx img gen)
        autos
    done;
    let rep = Array.make total 0 and perm = Array.make total identity in
    for idx = 0 to total - 1 do
      let r, p = find idx in
      rep.(idx) <- r;
      perm.(idx) <- p
    done;
    Some { rep; perm }
  end

let rep t idx = t.rep.(idx)
let perm t idx = t.perm.(idx)

(* -- transporting a selection from a representative to an image ----------- *)

(* Per-thread offsets of a combo's flattened event list. *)
let offsets (combo : Combo.t) =
  let lens = List.map (fun (p : Proto.path) -> List.length p.protos) combo.paths in
  let off = Array.make (List.length lens + 1) 0 in
  List.iteri (fun i l -> off.(i + 1) <- off.(i) + l) lens;
  off

let loc_of_write (combo : Combo.t) e =
  match combo.ev.(e).Combo.proto with
  | Proto.PWrite (x, _) -> x
  | _ -> assert false

(* Rename a representative combo's selection into the image combo's
   event indices: event (thread i, offset o) maps to (thread π i, o);
   location keys are re-read off the image's own events, so σ never
   needs materializing. *)
let map_selection ~(from : Combo.t) ~(to_ : Combo.t) (pi : int array)
    (sel : Combo.selection) : Combo.selection =
  let off_f = offsets from and off_t = offsets to_ in
  let m e =
    if e < 0 then e
    else
      let th = from.ev.(e).Combo.thread in
      off_t.(pi.(th)) + (e - off_f.(th))
  in
  {
    rf_sel = List.map (fun (r, w) -> (m r, m w)) sel.rf_sel;
    ww_sel =
      List.map
        (fun (x, perm) ->
          let perm' = List.map m perm in
          let x' =
            match perm' with e :: _ -> loc_of_write to_ e | [] -> x
          in
          (x', perm'))
        sel.ww_sel;
    fence_sel =
      List.map (fun ((q, b), ch) -> ((m q, m b), ch)) sel.fence_sel;
  }
