test/test_wellformed.ml: Alcotest List Tb Tmx_core Trace Wellformed
