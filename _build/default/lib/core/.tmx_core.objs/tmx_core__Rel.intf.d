lib/core/rel.mli: Fmt
