lib/runtime/tqueue.mli: Stm
