(* The determinism contract of the domain-parallel enumerator: for any
   [jobs], Enumerate.run returns bit-identical results to the sequential
   path — same executions in the same order, same graphs count, same
   cap/truncation flags.  Plus oracle tests pinning the incremental
   transitive-closure maintenance (Rel.add_edge_closed /
   union_into_closed) and the incremental happens-before fixpoint to
   their reference implementations. *)

open Tmx_core
open Tmx_exec

let models = [ Model.programmer; Model.implementation ]

let check_same_result name (a : Enumerate.result) (b : Enumerate.result) =
  Alcotest.(check int) (name ^ ": graphs") a.graphs b.graphs;
  Alcotest.(check bool) (name ^ ": capped") a.capped b.capped;
  Alcotest.(check bool) (name ^ ": truncated") a.truncated b.truncated;
  Alcotest.(check int)
    (name ^ ": execution count")
    (List.length a.executions)
    (List.length b.executions);
  List.iter2
    (fun (x : Enumerate.execution) (y : Enumerate.execution) ->
      if not (Outcome.equal x.outcome y.outcome) then
        Alcotest.failf "%s: outcomes diverge" name;
      if Trace.events x.trace <> Trace.events y.trace then
        Alcotest.failf "%s: traces diverge" name)
    a.executions b.executions

(* Every catalog program, every model: jobs=4 must reproduce jobs=1
   exactly.  Most catalog programs sit below the parallel threshold and
   exercise the fallback; the larger ones (iriw_z, ex3_4, temporal) go
   through the pool. *)
let test_catalog_jobs () =
  List.iter
    (fun (lit : Tmx_litmus.Litmus.t) ->
      let p = lit.program in
      List.iter
        (fun model ->
          let run jobs =
            Enumerate.run
              ~config:{ Enumerate.default_config with jobs }
              model p
          in
          check_same_result
            (Fmt.str "%s/%s" lit.name model.Model.name)
            (run 1) (run 4))
        models)
    Tmx_litmus.Catalog.all

(* An enumeration-heavy program (well above the sequential-fallback
   threshold), also run with a graph cap that lands mid-enumeration:
   the cap bookkeeping must merge deterministically too. *)
let stress_program =
  let open Tmx_lang.Ast in
  let x = loc "x" in
  program ~name:"stress" ~locs:[ "x" ]
    [
      [ store x (int 1) ];
      [ store x (int 2) ];
      [ atomic [ store x (int 3) ] ];
      [ store x (int 4) ];
      [ load "r1" x; load "r2" x ];
    ]

let test_stress_jobs () =
  let run ?(max_graphs = Enumerate.default_config.max_graphs) jobs =
    Enumerate.run
      ~config:{ Enumerate.default_config with jobs; max_graphs }
      Model.implementation stress_program
  in
  check_same_result "stress" (run 1) (run 4);
  check_same_result "stress jobs=3" (run 1) (run 3);
  let capped = run ~max_graphs:100 1 in
  Alcotest.(check bool) "cap exercised" true capped.capped;
  check_same_result "stress capped" capped (run ~max_graphs:100 4)

(* --- the pool itself: argument normalization and error parity --- *)

exception Task_failed of int

let test_pool_exception_parity () =
  let run jobs =
    match
      Pool.run_tasks ~jobs ~tasks:8 (fun i ->
          if i = 3 then raise (Task_failed i) else i)
    with
    | _ -> None
    | exception Task_failed i -> Some i
  in
  (* the sequential fallback and the parallel pool must surface the same
     exception through the same capture-and-reraise path *)
  Alcotest.(check (option int)) "jobs=1 raises the task's exception" (Some 3)
    (run 1);
  Alcotest.(check (option int)) "jobs=4 raises the task's exception" (Some 3)
    (run 4);
  Alcotest.(check (option int)) "jobs=8 raises the task's exception" (Some 3)
    (run 8)

let test_pool_jobs_clamped () =
  let expected = Array.init 5 (fun i -> i * i) in
  let run jobs = Pool.run_tasks ~jobs ~tasks:5 (fun i -> i * i) in
  Alcotest.(check bool) "jobs=0 clamps to sequential" true (run 0 = expected);
  Alcotest.(check bool) "jobs=-3 clamps to sequential" true (run (-3) = expected);
  Alcotest.(check bool) "tasks=0 yields empty" true
    (Pool.run_tasks ~jobs:4 ~tasks:0 (fun i -> i) = [||]);
  Alcotest.check_raises "negative tasks rejected"
    (Invalid_argument "Pool.run_tasks: negative tasks") (fun () ->
      ignore (Pool.run_tasks ~jobs:2 ~tasks:(-1) (fun i -> i)))

(* --- incremental closure vs Warshall --- *)

let arb_rel n density =
  QCheck.map
    (fun seed ->
      let st = Random.State.make [| seed |] in
      let r = Rel.create n in
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          if Random.State.float st 1.0 < density then Rel.add r i j
        done
      done;
      r)
    QCheck.small_int

let prop_add_edge_closed =
  QCheck.Test.make ~name:"add_edge_closed edge-by-edge = Warshall" ~count:100
    (arb_rel 23 0.08) (fun r ->
      let inc = Rel.create (Rel.size r) in
      Rel.iter r (fun i j -> ignore (Rel.add_edge_closed inc i j));
      Rel.equal inc (Rel.transitive_closure r))

let prop_union_into_closed =
  QCheck.Test.make ~name:"union_into_closed = Warshall on the union"
    ~count:100
    (QCheck.pair (arb_rel 23 0.06) (arb_rel 23 0.06))
    (fun (a, b) ->
      let into = Rel.transitive_closure a in
      let changed = Rel.union_into_closed ~into b in
      let reference = Rel.transitive_closure (Rel.union a b) in
      Rel.equal into reference
      && changed = not (Rel.equal into (Rel.transitive_closure a)))

(* --- incremental hb vs the per-round-Warshall reference and Naive --- *)

let hb_models =
  [ Model.programmer; Model.implementation; Model.strongest; Model.bare ]

let prop_hb_incremental =
  QCheck.Test.make ~name:"incremental hb = reference hb = naive hb" ~count:120
    Test_naive.arb_trace (fun t ->
      List.for_all
        (fun model ->
          let ctx = Lift.make t in
          let inc = Hb.compute model ctx in
          let ref_ = Hb.compute_reference model ctx in
          let naive = Naive.hb model t in
          Rel.equal inc ref_
          &&
          let ok = ref true in
          for i = 0 to Trace.length t - 1 do
            for j = 0 to Trace.length t - 1 do
              if Rel.mem inc i j <> naive i j then ok := false
            done
          done;
          !ok)
        hb_models)

let suite =
  [
    Alcotest.test_case "jobs=4 = jobs=1 on the whole catalog" `Slow
      test_catalog_jobs;
    Alcotest.test_case "jobs split and cap merge deterministically" `Quick
      test_stress_jobs;
    Alcotest.test_case "pool raises identically whatever jobs" `Quick
      test_pool_exception_parity;
    Alcotest.test_case "pool clamps pathological arguments" `Quick
      test_pool_jobs_clamped;
    Tb.qcheck prop_add_edge_closed;
    Tb.qcheck prop_union_into_closed;
    Tb.qcheck prop_hb_incremental;
  ]
