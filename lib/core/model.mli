(** Model configurations.

    The paper defines a design space of memory models sharing the same
    base definitions but differing in which happens-before rules and
    antidependency axioms are in force: the programmer model of §2
    (HBww + AntiWW), the implementation model of §5 (quiescence fences,
    no HBww/AntiWW), the six variants of Example 2.3, and the strongest
    variant which §6 shows is validated by x86-TSO. *)

type t = {
  name : string;
  hb_ww : bool;
  anti_ww : bool;
  hb_wr : bool;
  hb_rw : bool;
  anti_rw : bool;
  hb_ww' : bool;
  anti_ww' : bool;
  hb_wr' : bool;
  hb_rw' : bool;
  anti_rw' : bool;
  quiescence : bool;
}

val bare : t
(** No extra happens-before rules, no antidependency axioms, no fences:
    just HBdef/HBtrans and the three core consistency axioms. *)

val programmer : t
val implementation : t
val strongest : t
val variant_ww : t
val variant_rw : t
val variant_wr : t
val variant_ww' : t
val variant_rw' : t
val variant_wr' : t
val all : t list
val by_name : string -> t option

val stronger_eq : t -> t -> bool
(** [stronger_eq a b] holds when [a] enables every happens-before rule,
    antidependency axiom and fence rule that [b] does (pointwise flag
    implication): [a] forbids at least everything [b] forbids.  A partial
    order ([strongest] is the top, [bare] the bottom); the architecture
    backends use it to report the weakest validated variant. *)

val pp : t Fmt.t
