open Tmx_core

let gen_rel n density =
  QCheck.map
    (fun seed ->
      let st = Random.State.make [| seed |] in
      let r = Rel.create n in
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          if Random.State.float st 1.0 < density then Rel.add r i j
        done
      done;
      r)
    QCheck.small_int

let test_basic () =
  let r = Rel.create 4 in
  Alcotest.(check bool) "empty" true (Rel.is_empty r);
  Rel.add r 0 1;
  Rel.add r 1 2;
  Alcotest.(check bool) "mem 0 1" true (Rel.mem r 0 1);
  Alcotest.(check bool) "not mem 0 2" false (Rel.mem r 0 2);
  Alcotest.(check int) "cardinal" 2 (Rel.cardinal r);
  let c = Rel.transitive_closure r in
  Alcotest.(check bool) "closure adds 0 2" true (Rel.mem c 0 2);
  Alcotest.(check bool) "closure keeps 0 1" true (Rel.mem c 0 1);
  Alcotest.(check bool) "original unchanged" false (Rel.mem r 0 2)

let test_compose () =
  let a = Rel.of_pred 4 (fun i j -> i = 0 && j = 1) in
  let b = Rel.of_pred 4 (fun i j -> i = 1 && j = 3) in
  let c = Rel.compose a b in
  Alcotest.(check (list (pair int int))) "a;b" [ (0, 3) ] (Rel.to_list c)

let test_acyclic () =
  let dag = Rel.of_pred 5 (fun i j -> i < j) in
  Alcotest.(check bool) "total order acyclic" true (Rel.is_acyclic dag);
  let cyc = Rel.of_pred 3 (fun i j -> (i + 1) mod 3 = j) in
  Alcotest.(check bool) "3-cycle cyclic" false (Rel.is_acyclic cyc);
  let selfloop = Rel.of_pred 3 (fun i j -> i = 1 && j = 1) in
  Alcotest.(check bool) "self loop cyclic" false (Rel.is_acyclic selfloop)

let test_irreflexive () =
  let r = Rel.of_pred 3 (fun i j -> i < j) in
  Alcotest.(check bool) "strictly upper irreflexive" true (Rel.irreflexive r);
  Rel.add r 2 2;
  Alcotest.(check bool) "after self edge" false (Rel.irreflexive r)

let test_large () =
  (* crosses the one-word bitset boundary *)
  let n = 130 in
  let r = Rel.of_pred n (fun i j -> j = i + 1) in
  let c = Rel.transitive_closure r in
  Alcotest.(check bool) "long chain closed" true (Rel.mem c 0 (n - 1));
  Alcotest.(check bool) "acyclic" true (Rel.is_acyclic r)

let test_union_restrict () =
  let a = Rel.of_pred 4 (fun i j -> i = 0 && j = 1) in
  let b = Rel.of_pred 4 (fun i j -> i = 2 && j = 3) in
  let u = Rel.union a b in
  Alcotest.(check int) "union cardinal" 2 (Rel.cardinal u);
  let restricted = Rel.restrict u (fun i -> i < 2) in
  Alcotest.(check (list (pair int int))) "restricted" [ (0, 1) ] (Rel.to_list restricted);
  Alcotest.(check bool) "a subset u" true (Rel.subset a u);
  Alcotest.(check bool) "u not subset a" false (Rel.subset u a)

(* naive reachability oracle *)
let reachable r i j =
  let n = Rel.size r in
  let visited = Array.make n false in
  let rec dfs k acc =
    List.fold_left
      (fun acc next -> if visited.(next) then acc else (visited.(next) <- true; dfs next (next :: acc)))
      acc
      (List.filter_map (fun m -> if Rel.mem r k m then Some m else None) (List.init n Fun.id))
  in
  List.mem j (dfs i [])

let prop_closure_correct =
  QCheck.Test.make ~name:"transitive closure matches DFS reachability" ~count:100
    (gen_rel 8 0.2) (fun r ->
      let c = Rel.transitive_closure r in
      let ok = ref true in
      for i = 0 to 7 do
        for j = 0 to 7 do
          if Rel.mem c i j <> reachable r i j then ok := false
        done
      done;
      !ok)

let prop_compose_assoc =
  QCheck.Test.make ~name:"composition associative" ~count:100
    (QCheck.triple (gen_rel 6 0.3) (gen_rel 6 0.3) (gen_rel 6 0.3))
    (fun (a, b, c) ->
      Rel.equal (Rel.compose (Rel.compose a b) c) (Rel.compose a (Rel.compose b c)))

let prop_union_monotone =
  QCheck.Test.make ~name:"closure of union contains closures" ~count:100
    (QCheck.pair (gen_rel 6 0.3) (gen_rel 6 0.3)) (fun (a, b) ->
      let cu = Rel.transitive_closure (Rel.union a b) in
      Rel.subset (Rel.transitive_closure a) cu
      && Rel.subset (Rel.transitive_closure b) cu)

let suite =
  [
    Alcotest.test_case "basics and closure" `Quick test_basic;
    Alcotest.test_case "composition" `Quick test_compose;
    Alcotest.test_case "acyclicity" `Quick test_acyclic;
    Alcotest.test_case "irreflexivity" `Quick test_irreflexive;
    Alcotest.test_case "multi-word bitsets" `Quick test_large;
    Alcotest.test_case "union/restrict/subset" `Quick test_union_restrict;
    Tb.qcheck prop_closure_correct;
    Tb.qcheck prop_compose_assoc;
    Tb.qcheck prop_union_monotone;
  ]
