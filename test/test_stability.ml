open Tmx_core
open Tmx_exec
open Tb

let pm = Model.programmer

let test_stable_points () =
  (* two racing writes, then a synchronized read: stability begins after
     the races *)
  let t =
    mk ~locs:[ "x" ] [ w 0 "x" 1 1; w 1 "x" 2 2; r 0 "x" 2 2 ]
  in
  let ctx = Lift.make t in
  let hb = Hb.compute pm ctx in
  (* positions: init 0..2; Wx1=3 (t0), Wx2=4 (t1), Rx2=5 (t0) —
     races: (Wx1,Wx2), (Wx2,Rx2) wait: Rx2 is by t0, Wx2 by t1, unordered
     — so the last race reaches position 5 and only 6 is stable *)
  Alcotest.(check bool) "position 3 unstable" false (Stability.is_stable t hb 3);
  Alcotest.(check bool) "end stable" true
    (Stability.is_stable t hb (Trace.length t));
  match Stability.stable_points t hb with
  | p :: _ -> Alcotest.(check bool) "first stable point after all races" true (p >= 5)
  | [] -> Alcotest.fail "expected a stable point"

let test_race_free_trace_stable_everywhere () =
  let t = mk ~locs:[ "x" ] [ b 0; w 0 "x" 1 1; c 0; b 1; r 1 "x" 1 1; c 1 ] in
  let ctx = Lift.make t in
  let hb = Hb.compute pm ctx in
  Alcotest.(check int) "stable from position 0"
    (Trace.length t + 1)
    (List.length (Stability.stable_points t hb))

let test_temporal_catalog () =
  List.iter
    (fun (l : Tmx_litmus.Litmus.t) ->
      Alcotest.(check bool)
        (Fmt.str "temporal SC-LTRF on %s" l.name)
        true
        (Stability.temporal_holds pm l.program))
    Tmx_litmus.Catalog.all

let test_temporal_example () =
  (* the §1 temporal-locality program: races on x, then stabilization
     through F; its executions have stable points, and after them no weak
     action occurs *)
  let p = (Option.get (Tmx_litmus.Catalog.find "temporal")).program in
  let r = Enumerate.run pm p in
  let some_stable = ref false in
  List.iter
    (fun (e : Enumerate.execution) ->
      let ctx = Lift.make e.trace in
      let hb = Hb.compute pm ctx in
      match Stability.stable_points e.trace hb with
      | p0 :: _ when p0 < Trace.length e.trace -> some_stable := true
      | _ -> ())
    r.executions;
  Alcotest.(check bool) "some execution stabilizes before its end" true !some_stable;
  Alcotest.(check bool) "no weak action after stabilization" true
    (Stability.temporal_holds pm p)

let test_spatial_restriction () =
  (* restricting L can only enlarge the stable region *)
  let p = (Option.get (Tmx_litmus.Catalog.find "iriw_z")).program in
  let r = Enumerate.run pm p in
  List.iter
    (fun (e : Enumerate.execution) ->
      let ctx = Lift.make e.trace in
      let hb = Hb.compute pm ctx in
      let all = Stability.stable_points e.trace hb in
      let xy = Stability.stable_points ~l:[ "x"; "y" ] e.trace hb in
      Alcotest.(check bool) "L={x,y} stable everywhere" true
        (List.length xy = Trace.length e.trace + 1);
      Alcotest.(check bool) "smaller L has at least as many stable points" true
        (List.length xy >= List.length all))
    r.executions

let prop_temporal_random =
  QCheck.Test.make ~name:"temporal SC-LTRF on random programs" ~count:80
    Test_theorems.arb_program (fun p -> Stability.temporal_holds pm p)

let suite =
  [
    Alcotest.test_case "stable points" `Quick test_stable_points;
    Alcotest.test_case "race-free is stable everywhere" `Quick
      test_race_free_trace_stable_everywhere;
    Alcotest.test_case "temporal SC-LTRF on the catalog" `Slow test_temporal_catalog;
    Alcotest.test_case "the §1 temporal example" `Quick test_temporal_example;
    Alcotest.test_case "spatial restriction of stability" `Quick
      test_spatial_restriction;
    Tb.qcheck prop_temporal_random;
  ]
