(** The architecture axis: the three hardware/language memory models the
    backends compile litmus programs onto.

    Each backend ({!Aexec}) judges the same candidate graphs the LTRF
    enumerator searches — thread paths × reads-from × coherence ×
    quiescence-fence sides — under that architecture's axioms, after the
    standard transactional compilation: a transaction executes as one
    atomic block bounded by full fences (a locked region / HTM
    transaction), the quiescence fence [Qx] maps to the architecture's
    full barrier plus the runtime's quiescence ordering, and (ARMv8
    only) anti-load-buffering fences can be inserted after plain loads.

    Following Chong, Sorensen & Wickerson, "The Semantics of
    Transactions and Weak Memory in x86, Power, ARMv8, and C++". *)

type t =
  | X86tso  (** acyclic ghb: po minus W→R, fences, rfe, co, fr *)
  | Armv8
      (** ordered-before from external edges and barriers only — no
          dependency order, so load buffering is observable and the §6
          anti-LB fences are needed *)
  | Rc11
      (** C++-TM-style RC11 fragment: transactions synchronize via rf,
          no-thin-air (acyclic po ∪ rf), coherence via hb;eco *)

val all : t list

val name : t -> string
(** ["x86tso"], ["armv8"], ["rc11"]. *)

val by_name : string -> t option

val qfence_name : t -> string
(** What the quiescence fence [Qx] compiles to: ["MFENCE"],
    ["DMB SY"], ["atomic_thread_fence(seq_cst)"]. *)

val ld_fence_name : t -> string option
(** The anti-load-buffering fence, when the architecture needs one:
    [Some "DMB LD"] for ARMv8, [None] for the others (x86-TSO and RC11
    already forbid load buffering). *)

val pp : t Fmt.t
