(* The architecture axis: x86-TSO, ARMv8 and a C++-TM-style RC11
   fragment, after Chong, Sorensen & Wickerson.  The per-arch axioms
   live in Aexec; this module is the naming and fence-mapping table. *)

type t = X86tso | Armv8 | Rc11

let all = [ X86tso; Armv8; Rc11 ]

let name = function X86tso -> "x86tso" | Armv8 -> "armv8" | Rc11 -> "rc11"

let by_name s = List.find_opt (fun a -> String.equal (name a) s) all

let qfence_name = function
  | X86tso -> "MFENCE"
  | Armv8 -> "DMB SY"
  | Rc11 -> "atomic_thread_fence(seq_cst)"

let ld_fence_name = function Armv8 -> Some "DMB LD" | X86tso | Rc11 -> None

let pp ppf a = Fmt.string ppf (name a)
