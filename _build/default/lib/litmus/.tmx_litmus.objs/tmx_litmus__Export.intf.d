lib/litmus/export.mli: Tmx_lang
