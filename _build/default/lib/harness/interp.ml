(* Run litmus programs on the real STM runtime: each program thread
   becomes a domain, shared locations become TVars, atomic blocks run
   under [Stm.atomically] (explicit aborts via [Stm.abort], not retried),
   plain accesses use the unsafe TVar operations, and fences are
   [Stm.quiesce].

   This closes the loop between the formal side and the artifact: the
   outcomes the runtime actually produces on real domains can be compared
   against the axiomatic implementation model (see the differential
   tests). *)

open Tmx_lang
open Tmx_runtime
open Tmx_exec

exception Unsupported of string

type instance = {
  program : Ast.program;
  vars : (string, Tvar.t) Hashtbl.t;
  mode : Stm.mode;
  fuel : int;
}

let make ?(mode = Stm.Lazy) ?(fuel = 1000) (program : Ast.program) =
  (match Ast.validate program with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Interp.make: " ^ msg));
  let vars = Hashtbl.create 16 in
  List.iter (fun x -> Hashtbl.replace vars x (Tvar.make 0)) program.locs;
  { program; vars; mode; fuel }

let var inst x =
  match Hashtbl.find_opt inst.vars x with
  | Some v -> v
  | None ->
      (* dynamically named cell: create on first use (initial value 0);
         benign race on registration is avoided by pre-registering all
         declared locations and requiring array programs to declare their
         cells *)
      raise (Unsupported (Fmt.str "undeclared location %S" x))

(* execution of straight-line code inside a transaction *)
let rec run_txn_stmts inst tx env stmts =
  List.fold_left
    (fun env (s : Ast.stmt) ->
      match s with
      | Skip -> env
      | Assign (r, e) -> Proto.env_set env r (Proto.eval env e)
      | Load (r, lv) ->
          let x = Proto.resolve env lv in
          Proto.env_set env r (Stm.read tx (var inst x))
      | Store (lv, e) ->
          let x = Proto.resolve env lv in
          Stm.write tx (var inst x) (Proto.eval env e);
          env
      | If (c, t, f) -> run_txn_stmts inst tx env (if Proto.eval env c <> 0 then t else f)
      | While (c, b) ->
          let rec loop env fuel =
            if Proto.eval env c = 0 then env
            else if fuel <= 0 then raise (Unsupported "loop bound exceeded")
            else loop (run_txn_stmts inst tx env b) (fuel - 1)
          in
          loop env inst.fuel
      | Abort -> Stm.abort tx
      | Atomic _ | Fence _ -> raise (Unsupported "nested atomic/fence"))
    env stmts

let rec run_stmts inst env stmts =
  List.fold_left
    (fun env (s : Ast.stmt) ->
      match s with
      | Skip -> env
      | Assign (r, e) -> Proto.env_set env r (Proto.eval env e)
      | Load (r, lv) ->
          let x = Proto.resolve env lv in
          Proto.env_set env r (Tvar.unsafe_read (var inst x))
      | Store (lv, e) ->
          let x = Proto.resolve env lv in
          Tvar.unsafe_write (var inst x) (Proto.eval env e);
          env
      | If (c, t, f) -> run_stmts inst env (if Proto.eval env c <> 0 then t else f)
      | While (c, b) ->
          let rec loop env fuel =
            if Proto.eval env c = 0 then env
            else if fuel <= 0 then raise (Unsupported "loop bound exceeded")
            else loop (run_stmts inst env b) (fuel - 1)
          in
          loop env inst.fuel
      | Fence x -> (
          Stm.quiesce ~var:(var inst x) ();
          env)
      | Atomic body -> (
          (* an explicit abort skips the block, like the litmus
             semantics; conflicts retry inside atomically *)
          match
            Stm.atomically ~mode:inst.mode (fun tx -> run_txn_stmts inst tx env body)
          with
          | Some env' -> env'
          | None -> env)
      | Abort -> raise (Unsupported "abort outside atomic"))
    env stmts

(* One run with real domains; returns an outcome comparable with the
   model checker's. *)
let run_once inst =
  (* reset locations *)
  Hashtbl.iter (fun _ v -> Tvar.unsafe_write v 0) inst.vars;
  let domains =
    List.map
      (fun thread -> Domain.spawn (fun () -> run_stmts inst [] thread))
      inst.program.threads
  in
  let envs = List.map Domain.join domains in
  let mem =
    Hashtbl.fold (fun x v acc -> (x, Tvar.unsafe_read v) :: acc) inst.vars []
  in
  Outcome.make ~envs ~mem

(* Repeated runs, deduplicated: a sample of the outcomes the runtime can
   produce under real scheduling. *)
let sample ?mode ?fuel ~runs program =
  let inst = make ?mode ?fuel program in
  let outcomes = ref [] in
  for _ = 1 to runs do
    outcomes := run_once inst :: !outcomes
  done;
  Outcome.dedup !outcomes
