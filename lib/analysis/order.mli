(** The conservative static happens-before abstraction over static
    accesses.

    A pair is declared [Ordered] only when every pair of its dynamic
    instances is happens-before-ordered, or excluded from racing by the
    race definition itself, in every well-formed trace under every
    model: same thread (program order, which subsumes transaction
    boundaries), both transactional, both reads, or an always-aborting
    transaction.

    The quiescence-fence rules (WF12/HBCQ/HBQB) and the HBww
    privatization ordering are one-sided or data-dependent, so they are
    reported as {!protection}s — severity hints that never suppress a
    finding. *)

type reason = Same_thread | Both_transactional | Both_reads | Must_abort

val pp_reason : reason Fmt.t

type protection =
  | Fence_commit_side of string
      (** the plain access is dominated by a fence on the raced
          location: HBCQ orders transactions that commit before the
          fence ahead of it *)
  | Fence_begin_side of string
      (** the plain access is postdominated by such a fence: HBQB
          orders transactions that begin after the fence behind it *)
  | Guarded_publication of string
      (** privatization idiom: the transactional side reads this flag,
          which the plain side's thread publishes in an earlier atomic
          block; HBww orders the pair when the guard reads the
          pre-publication value *)
  | Published_flag of string
      (** publication idiom: the plain access precedes an atomic block
          writing this flag, which the transactional side reads; cwr
          orders the publisher before the reader when the value is
          observed *)
  | Consumed_flag of string
      (** dual handoff: the transactional side writes this flag, which
          the plain side's thread read in an earlier atomic block; cwr
          orders the writer before the reader when the value is
          observed *)

val pp_protection : protection Fmt.t

type verdict = Ordered of reason | Unordered of protection list

val protections : Access.t -> Access.t -> protection list
(** Protections for a pair known to clash on a location; only
    transactional-vs-plain pairs have any. *)

val pair : Access.t -> Access.t -> verdict
(** The static verdict for a clashing pair of accesses. *)
