(* Exact rationals on native ints, used for the timestamps of S2.
   The paper takes timestamps in Q so that a write can always be inserted
   between two existing writes; [between] provides exactly that. *)

type t = { num : int; den : int }

let rec gcd a b = if b = 0 then a else gcd b (a mod b)

let make num den =
  if den = 0 then invalid_arg "Rat.make: zero denominator";
  let sign = if den < 0 then -1 else 1 in
  let num = sign * num and den = sign * den in
  let g = gcd (abs num) den in
  if g = 0 then { num = 0; den = 1 } else { num = num / g; den = den / g }

let of_int n = { num = n; den = 1 }
let zero = of_int 0
let one = of_int 1

let compare a b =
  (* Safe at litmus scale: denominators stay tiny (they only ever double
     per coherence insertion), so the products do not overflow. *)
  Stdlib.compare (a.num * b.den) (b.num * a.den)

let equal a b = compare a b = 0
let lt a b = compare a b < 0
let leq a b = compare a b <= 0

let add a b = make ((a.num * b.den) + (b.num * a.den)) (a.den * b.den)
let sub a b = make ((a.num * b.den) - (b.num * a.den)) (a.den * b.den)

(* Strict midpoint: between a b is strictly between a and b when a < b. *)
let between a b =
  make ((a.num * b.den) + (b.num * a.den)) (2 * a.den * b.den)

let succ a = add a one
let pred a = sub a one

let to_float a = float_of_int a.num /. float_of_int a.den

let pp ppf a =
  if a.den = 1 then Fmt.int ppf a.num
  else Fmt.pf ppf "%d/%d" a.num a.den

let to_string a = Fmt.str "%a" pp a
