(** Operational STM simulator (§3 made executable).

    Four commit protocols over a sequentially consistent host memory,
    with an exhaustively explored fine-grained scheduler:

    - [Eager]: undo-log, in-place writes, rollback on abort.
    - [Lazy]: TL2-style redo log, per-location commit locks, commit-time
      write-back.
    - [Partial]: [Lazy] plus partial aborts — a checkpoint is taken
      before each of the first [checkpoints] memory reads, and a
      commit-time validation failure rolls back only to the oldest
      invalidated read, retaining the still-valid prefix
      (READ_SET_BOUND-style budget; [checkpoints = 0] is exactly
      [Lazy]).
    - [Norec]: value-based revalidation against one global commit
      counter and no per-location ownership.  Writer commits serialize
      on the counter's sequence lock, so the lazy privatization anomaly
      is gone by construction; plain accesses still interleave with
      write-back.

    Commit write-back and rollback are sequences of individually
    scheduled steps, so plain accesses interleave with them — exactly
    the mixed-mode windows §3 discusses.  The quiescence fence blocks
    until no other thread has an in-flight transaction (waiting only for
    transactions that already touched the fenced location is unsound:
    WF12 constrains the whole transaction span). *)

open Tmx_exec

type strategy = Eager | Lazy | Partial | Norec

val strategy_name : strategy -> string

type config = {
  strategy : strategy;
  fuel : int;  (** loop unrolling bound *)
  max_retries : int;  (** validation-failure retries (full or partial) *)
  checkpoints : int;  (** partial: READ_SET_BOUND-style checkpoint budget *)
  atomic_commit : bool;  (** publish lazy buffers in one indivisible step *)
  max_paths : int;
}

val default_config : config

type result = {
  outcomes : Outcome.t list;
  paths : int;  (** complete schedules explored *)
  fuel_exhausted : bool;  (** loop-unrolling fuel ran out on some path *)
  retries_exhausted : bool;  (** abort/retry budget ran out on some path *)
  truncated : bool;  (** [fuel_exhausted || retries_exhausted] *)
  capped : bool;
}

val run : ?config:config -> Tmx_lang.Ast.program -> result

val anomalies :
  ?config:config -> ?sc_config:Sc.config -> Tmx_lang.Ast.program -> Outcome.t list
(** Outcomes the STM exhibits that the atomic reference semantics ({!Sc})
    does not. *)
