(** Architecture-level execution: enumerate the outcomes a litmus
    program can exhibit on an architecture, herd-style.

    The candidate space is exactly the LTRF enumerator's — per-thread
    control paths × reads-from choices × per-location coherence orders ×
    quiescence-fence sides ({!Tmx_exec.Enumerate.unfold_combos},
    {!Tmx_exec.Combo}) — but candidates are judged as {e graphs} under
    the architecture's axioms instead of being linearized: weak
    architectures admit executions (load buffering on ARMv8) that no
    well-formed trace can witness, so the trace-based pipeline cannot
    represent them.

    The transactional compilation is shared by all three backends:

    - a transaction is one atomic class (its events commute with
      nothing), bounded by full fences — the locked-region / HTM
      compilation both cited semantics papers use;
    - the quiescence fence [Qx] compiles to the architecture's full
      barrier {e plus} the runtime's quiescence ordering: the WF12
      per-(fence, transaction) side choice becomes hard ordering edges,
      exactly as the STM's quiescence algorithm enforces by waiting;
    - aborted transactions are invisible speculation: their reads take
      reads-from edges (control flow may depend on them) but their
      writes never reach coherence, and they impose no
      antidependencies.

    Per-architecture axioms, after Chong–Sorensen–Wickerson:

    - all three: SC-per-location — per location, acyclic
      (po-loc ∪ rf ∪ co ∪ fr);
    - x86-TSO: acyclic class-lifted ghb, with
      ghb = (po minus W→R) ∪ barriers ∪ rfe ∪ co ∪ fr;
    - ARMv8 (lite): acyclic class-lifted ob, with
      ob = barriers ∪ rfe ∪ coe ∪ fre — {e no} plain program order, so
      load buffering is observable until a [DMB LD] is inserted;
    - RC11 (lite, C++-TM): acyclic (po ∪ rf) (no-thin-air);
      irreflexive (hb ; eco) with hb = (po ∪ sw ∪ barriers)⁺, sw the
      transaction-to-transaction reads-from edges, eco = (rf ∪ co ∪
      fr)⁺; and acyclic class-lifted (hb ∪ eco). *)

open Tmx_exec

type fence_site = { thread : int; loc : string }
(** An anti-load-buffering fence insertion point: a [DMB LD] placed
    immediately after every {e plain} load of [loc] in [thread].  In the
    event graph: every load po-before-or-at such a load becomes ordered
    before everything po-after it. *)

val pp_fence_site : fence_site Fmt.t
val compare_fence_site : fence_site -> fence_site -> int

type result = {
  outcomes : Outcome.t list;  (** deduplicated, sorted *)
  truncated : bool;  (** a control path hit the loop-unrolling bound *)
  capped : bool;  (** the candidate-graph cap was hit *)
  graphs : int;  (** candidate graphs judged *)
}

val run :
  ?config:Enumerate.config ->
  ?fences:fence_site list ->
  Arch.t ->
  Tmx_lang.Ast.program ->
  result
(** The architecture-consistent outcomes of a program, optionally with
    inserted anti-load-buffering fences.
    @raise Invalid_argument on an ill-formed program. *)

val plain_load_sites :
  ?config:Enumerate.config -> Tmx_lang.Ast.program -> fence_site list
(** Every (thread, location) with a plain (non-transactional) load on
    some control path — the candidate insertion points for the ARMv8
    anti-load-buffering repair, in deterministic order. *)
