(* The static analyzer behind `tmx lint`: unit tests for access
   extraction, location classes and the sound ordering rules, plus — the
   crux — the enumeration-backed soundness oracle.  Soundness is the
   per-location claim: any location the lint does NOT flag has no L-race
   in any consistent execution, under any model; and a report with no
   mixed findings implies no execution has a mixed race.  Checked over
   the full litmus catalog and 500 random programs ([oracle_suite],
   skipped under TMX_QUICK).  Precision is measured, not promised: the
   false-positive rate against the `tmx races` ground truth is printed
   as a report and recorded in EXPERIMENTS.md. *)

open Tmx_core
open Tmx_lang
open Tmx_exec
module Access = Tmx_analysis.Access
module Order = Tmx_analysis.Order
module Lint = Tmx_analysis.Lint
module Footprint = Tmx_opt.Footprint

let pm = Model.programmer
let im = Model.implementation

let catalog_programs =
  List.map (fun (l : Tmx_litmus.Litmus.t) -> l.program) Tmx_litmus.Catalog.all

let find name = (Option.get (Tmx_litmus.Catalog.find name)).program

(* -- access extraction ------------------------------------------------------ *)

let test_summaries () =
  let s = Access.summaries (find "privatization") in
  let class_of loc =
    (List.find (fun (s : Access.summary) -> String.equal s.loc loc) s).class_
  in
  Alcotest.(check bool) "x is mixed" true (class_of "x" = Access.Mixed);
  Alcotest.(check bool) "y is tx-only" true (class_of "y" = Access.Tx_only)

let test_counts () =
  let s = Access.summaries (find "sb") in
  List.iter
    (fun (s : Access.summary) ->
      Alcotest.(check bool)
        (s.loc ^ " plain-only") true
        (s.class_ = Access.Plain_only);
      Alcotest.(check int) (s.loc ^ " plain reads") 1 s.counts.plain_reads;
      Alcotest.(check int) (s.loc ^ " plain writes") 1 s.counts.plain_writes)
    s

let test_paths () =
  let p =
    Ast.(
      program ~locs:[ "x" ]
        [ [ atomic [ store (loc "x") (int 1) ]; load "r" (loc "x") ] ])
  in
  let paths =
    List.map (fun (a : Access.t) -> a.path) (Access.of_program p)
  in
  Alcotest.(check (list string))
    "source paths" [ "t0.0.atomic.0"; "t0.1" ] paths

let test_must_abort () =
  let open Ast in
  Alcotest.(check bool) "plain abort" true (Access.body_must_abort [ abort ]);
  Alcotest.(check bool) "after a store" true
    (Access.body_must_abort [ store (loc "x") (int 1); abort ]);
  Alcotest.(check bool) "both branches abort" true
    (Access.body_must_abort [ if_ (reg "r") [ abort ] [ abort ] ]);
  Alcotest.(check bool) "one branch aborts" false
    (Access.body_must_abort [ if_ (reg "r") [ abort ] [] ]);
  Alcotest.(check bool) "loops stop the scan" false
    (Access.body_must_abort [ while_ (reg "r") [ abort ] ]);
  (* conservative: a stuck loop leaves the transaction pending, and
     pending actions are not aborted, so the scan cannot skip past it *)
  Alcotest.(check bool) "nor scan past a loop" false
    (Access.body_must_abort [ while_ (reg "r") [ skip ]; abort ]);
  (* per-access: a write in an always-aborting branch qualifies even
     though the transaction as a whole can commit *)
  let p =
    Ast.(
      program ~locs:[ "x"; "z" ]
        [
          [
            atomic
              [
                load "r" (loc "x");
                when_ (reg "r") [ store (loc "z") (int 1); abort ];
                store (loc "x") (int 2);
              ];
          ];
        ])
  in
  let by_loc loc =
    List.find (fun (a : Access.t) -> String.equal a.loc loc) (Access.of_program p)
  in
  Alcotest.(check bool) "speculative write must-aborts" true
    (by_loc "z").must_abort;
  Alcotest.(check bool) "committing write does not" false
    (by_loc "x").must_abort

let test_fence_facts () =
  let p =
    Ast.(
      program ~locs:[ "x" ]
        [ [ atomic [ store (loc "x") (int 1) ]; fence "x"; load "r" (loc "x") ] ])
  in
  match Access.of_program p with
  | [ tx_write; plain_read ] ->
      Alcotest.(check bool) "tx write before the fence" true
        (tx_write.fences_after = [ "x" ] && tx_write.fences_before = []);
      Alcotest.(check bool) "plain read after the fence" true
        (plain_read.fences_before = [ "x" ] && plain_read.fences_after = []);
      Alcotest.(check bool) "plain read follows an atomic" true
        plain_read.after_atomic;
      Alcotest.(check (list string))
        "prior atomic writes" [ "x" ] plain_read.prior_atomic_writes
  | accs -> Alcotest.failf "expected 2 accesses, got %d" (List.length accs)

let test_branch_fence_not_dominating () =
  (* a fence inside one branch does not dominate an access after the If *)
  let p =
    Ast.(
      program ~locs:[ "x" ]
        [ [ if_ (reg "r") [ fence "x" ] []; load "q" (loc "x") ] ])
  in
  match Access.of_program p with
  | [ read ] ->
      Alcotest.(check (list string)) "no dominating fence" [] read.fences_before
  | accs -> Alcotest.failf "expected 1 access, got %d" (List.length accs)

let test_wildcard_cells () =
  let p =
    Ast.(
      program ~locs:[ "z[0]"; "z[1]" ]
        [ [ store (cell "z" (reg "r")) (int 1) ]; [ load "q" (loc "z[0]") ] ])
  in
  let locs = List.map (fun (a : Access.t) -> a.loc) (Access.of_program p) in
  Alcotest.(check (list string)) "wildcard footprint name" [ "z[*]"; "z[0]" ]
    locs;
  Alcotest.(check bool) "wildcard clashes with the cell" true
    (Footprint.name_clash "z[*]" "z[0]");
  Alcotest.(check bool) "distinct cells do not clash" false
    (Footprint.name_clash "z[0]" "z[1]")

(* -- the static ordering rules --------------------------------------------- *)

let test_order_rules () =
  let accs = Access.of_program (find "privatization") in
  let tx_write =
    List.find
      (fun (a : Access.t) ->
        a.mode = Access.Transactional && a.kind = Access.Write
        && String.equal a.loc "x")
      accs
  in
  let plain_write =
    List.find
      (fun (a : Access.t) -> a.mode = Access.Plain && String.equal a.loc "x")
      accs
  in
  (match Order.pair tx_write plain_write with
  | Order.Unordered ps ->
      Alcotest.(check bool) "privatization guard detected" true
        (List.exists
           (function Order.Guarded_publication _ -> true | _ -> false)
           ps)
  | Ordered _ -> Alcotest.fail "tx write vs plain write cannot be ordered");
  Alcotest.(check bool) "same thread ordered" true
    (match Order.pair tx_write { plain_write with thread = tx_write.thread }
     with
    | Ordered Same_thread -> true
    | _ -> false);
  Alcotest.(check bool) "both transactional ordered" true
    (match
       Order.pair tx_write
         { plain_write with mode = Access.Transactional }
     with
    | Ordered Both_transactional -> true
    | _ -> false);
  Alcotest.(check bool) "must-abort ordered" true
    (match Order.pair { tx_write with must_abort = true } plain_write with
    | Ordered Must_abort -> true
    | _ -> false)

let test_fence_protections () =
  let p =
    Ast.(
      program ~locs:[ "x" ]
        [
          [ atomic [ store (loc "x") (int 1) ] ];
          [ fence "x"; store (loc "x") (int 2) ];
        ])
  in
  let r = Lint.lint p in
  match r.findings with
  | [ f ] ->
      Alcotest.(check bool) "mixed" true (f.kind = Lint.Mixed_race);
      Alcotest.(check bool) "fence downgrades to medium" true
        (f.severity = Lint.Medium);
      Alcotest.(check bool) "commit-side protection" true
        (List.exists
           (function Order.Fence_commit_side "x" -> true | _ -> false)
           f.protections)
  | fs -> Alcotest.failf "expected 1 finding, got %d" (List.length fs)

(* -- lint verdicts on known programs ---------------------------------------- *)

let test_lint_privatization () =
  let r = Lint.lint (find "privatization") in
  match r.findings with
  | [ f ] ->
      Alcotest.(check bool) "mixed race" true (f.kind = Lint.Mixed_race);
      Alcotest.(check bool) "guarded publication is low severity" true
        (f.severity = Lint.Low);
      Alcotest.(check bool) "privatization-shaped fix is a fence" true
        (match f.fix with Lint.Insert_fence _ -> true | _ -> false);
      Alcotest.(check int) "mixed count" 1 (Lint.mixed_count r)
  | fs -> Alcotest.failf "expected 1 finding, got %d" (List.length fs)

let test_lint_sb () =
  let r = Lint.lint (find "sb") in
  Alcotest.(check int) "two plain L-races" 2 (List.length r.findings);
  List.iter
    (fun (f : Lint.finding) ->
      Alcotest.(check bool) "L-race" true (f.kind = Lint.L_race);
      Alcotest.(check bool) "no protection: high" true (f.severity = Lint.High);
      Alcotest.(check bool) "fix wraps in atomic" true
        (match f.fix with Lint.Wrap_atomic _ -> true | _ -> false))
    r.findings

let test_lint_race_free () =
  (* d2 needs the per-access must-abort refinement: its transactional
     write sits in an always-aborting speculation branch *)
  List.iter
    (fun name ->
      Alcotest.(check bool) (name ^ " statically race-free") true
        (Lint.race_free (Lint.lint (find name))))
    [
      "opacity_iriw"; "opacity_iriw_plain"; "d1_opaque_writes";
      "d2_race_free_speculation"; "publication"; "d4_no_overlapped_writes";
    ]

let test_guard_dominance () =
  (* the two historical false positives: publication's transactional
     reader only touches x under a guard loaded from y inside its own
     atomic, and every write of y is transactional, in the plain
     writer's thread, after the plain access (GD-pub); d4's plain
     reader is guarded by a register consumed from x in a prior atomic,
     and every write of x sits in the transactional side's atomic
     (GD-con).  Both are now excluded outright — the guard's observed
     value orders the pair through cwr + po in every model's HB base *)
  List.iter
    (fun name ->
      Alcotest.(check bool) (name ^ " statically race-free") true
        (Lint.race_free (Lint.lint (find name))))
    [ "publication"; "d4_no_overlapped_writes" ];
  (* the Order verdict itself names the flag *)
  let dominated name want_flag =
    let p = find name in
    let ctx = Access.context p in
    let pairs = ref [] in
    let accs = Array.of_list ctx.Access.ctx_accesses in
    Array.iteri
      (fun i (a : Access.t) ->
        Array.iteri
          (fun j (b : Access.t) ->
            if
              i < j
              && Footprint.name_clash a.Access.loc b.Access.loc
              && (a.Access.kind = Access.Write || b.Access.kind = Access.Write)
            then
              match Order.pair ~ctx a b with
              | Order.Ordered (Order.Guard_dominated f) -> pairs := f :: !pairs
              | _ -> ())
          accs)
      accs;
    Alcotest.(check bool)
      (Fmt.str "%s guard-dominated via %s" name want_flag)
      true
      (List.mem want_flag !pairs)
  in
  dominated "publication" "y";
  dominated "d4_no_overlapped_writes" "x";
  (* the rule stays off for privatization: its guard demands the flag be
     ZERO, which the initial state already satisfies — nothing
     serializes the guarded write behind the privatizer *)
  Alcotest.(check bool) "privatization still flagged" false
    (Lint.race_free (Lint.lint (find "privatization")));
  (* and a loop kills the walk-order premise: the same publication shape
     inside a while must keep its finding *)
  let looped =
    Ast.(
      program ~locs:[ "x"; "y" ]
        [
          [ store (loc "x") (int 1); atomic [ store (loc "y") (int 1) ] ];
          [
            while_ (reg "k")
              [
                atomic
                  [
                    load "ry" (loc "y");
                    when_ (reg "ry") [ load "rx" (loc "x") ];
                  ];
              ];
          ];
        ])
  in
  Alcotest.(check bool) "loops disable guard dominance" false
    (Lint.race_free (Lint.lint looped))

let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let test_json () =
  let j = Lint.to_json (Lint.lint (find "privatization")) in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("json mentions " ^ needle) true
        (contains_sub j needle))
    [ "\"race_free\": false"; "\"class\": \"mixed\""; "\"severity\": \"low\"" ]

(* the tentpole's performance contract: no enumeration on the lint path,
   so linting the entire catalog is far under a second *)
let test_lint_is_fast () =
  let t0 = Unix.gettimeofday () in
  List.iter (fun p -> ignore (Lint.lint p)) catalog_programs;
  let dt = Unix.gettimeofday () -. t0 in
  Alcotest.(check bool)
    (Fmt.str "linted %d programs in %.3fs" (List.length catalog_programs) dt)
    true (dt < 1.0)

(* -- the soundness oracle ---------------------------------------------------- *)

(* Is [loc] covered by some finding of the report?  Wildcard findings
   ("z[*]") cover every cell of the array. *)
let flagged (r : Lint.report) loc =
  List.exists (fun (f : Lint.finding) -> Footprint.name_clash f.loc loc)
    r.findings

(* Every L-race the enumerator finds on any model must be on a flagged
   location, and mixed races require a mixed finding.  Returns the
   violations (empty = sound) together with whether any execution raced
   at all (for the precision report). *)
let soundness_violations models p =
  let r = Lint.lint p in
  let has_mixed_finding =
    List.exists (fun (f : Lint.finding) -> f.kind = Lint.Mixed_race) r.findings
  in
  let violations = ref [] in
  let dyn_racy = ref false in
  let dyn_mixed = ref false in
  List.iter
    (fun model ->
      let result = Enumerate.run model p in
      List.iter
        (fun (e : Enumerate.execution) ->
          let races = Verdict.execution_races model e.trace in
          if races <> [] then dyn_racy := true;
          List.iter
            (fun (i, _) ->
              let loc =
                match Trace.act e.trace i with
                | Action.Read { loc; _ } | Action.Write { loc; _ } -> loc
                | _ -> "?"
              in
              if not (flagged r loc) then
                violations :=
                  Fmt.str "%s: unflagged L-race on %s under %s" p.Ast.name loc
                    model.Model.name
                  :: !violations)
            races;
          let ctx = Lift.make e.trace in
          let hb = Hb.compute model ctx in
          if Race.has_mixed_race e.trace hb then begin
            dyn_mixed := true;
            if not has_mixed_finding then
              violations :=
                Fmt.str "%s: mixed race without a mixed finding under %s"
                  p.Ast.name model.Model.name
                :: !violations
          end)
        result.executions)
    models;
  (r, !violations, !dyn_racy, !dyn_mixed)

let oracle_models = [ pm; im; Model.bare; Model.strongest ]

(* accumulated by the catalog and random oracles, printed by the
   precision report below *)
type stats = {
  mutable programs : int;
  mutable flagged_racy : int; (* true positives *)
  mutable flagged_quiet : int; (* false positives *)
  mutable clean_quiet : int; (* true negatives *)
  mutable mixed_flagged : int;
  mutable mixed_confirmed : int;
}

let catalog_stats =
  {
    programs = 0;
    flagged_racy = 0;
    flagged_quiet = 0;
    clean_quiet = 0;
    mixed_flagged = 0;
    mixed_confirmed = 0;
  }

let random_stats =
  {
    programs = 0;
    flagged_racy = 0;
    flagged_quiet = 0;
    clean_quiet = 0;
    mixed_flagged = 0;
    mixed_confirmed = 0;
  }

let record stats (r : Lint.report) dyn_racy dyn_mixed =
  stats.programs <- stats.programs + 1;
  (if Lint.race_free r then stats.clean_quiet <- stats.clean_quiet + 1
   else if dyn_racy then stats.flagged_racy <- stats.flagged_racy + 1
   else stats.flagged_quiet <- stats.flagged_quiet + 1);
  if Lint.mixed_count r > 0 then begin
    stats.mixed_flagged <- stats.mixed_flagged + 1;
    if dyn_mixed then stats.mixed_confirmed <- stats.mixed_confirmed + 1
  end

let test_soundness_catalog () =
  List.iter
    (fun (p : Ast.program) ->
      let r, violations, dyn_racy, dyn_mixed =
        soundness_violations oracle_models p
      in
      record catalog_stats r dyn_racy dyn_mixed;
      Alcotest.(check (list string))
        (Fmt.str "soundness on %s" p.name)
        [] violations)
    catalog_programs

(* -- random programs --------------------------------------------------------- *)

(* Richer than the theorems generator — fences, aborts inside atomic,
   and branches, to exercise must-abort detection and fence dominance;
   it is the [analysis] preset of the fuzzer's shared generator. *)
let gen_program : Ast.program QCheck.Gen.t =
  Tmx_fuzz.Gen.program Tmx_fuzz.Gen.analysis

let arb_program = QCheck.make ~print:(Fmt.str "%a" Ast.pp_program) gen_program

let prop_soundness_random =
  QCheck.Test.make ~name:"lint soundness on 500 random programs" ~count:500
    arb_program (fun p ->
      let r, violations, dyn_racy, dyn_mixed =
        soundness_violations [ pm; im; Model.bare ] p
      in
      record random_stats r dyn_racy dyn_mixed;
      if violations <> [] then
        QCheck.Test.fail_reportf "soundness violations:@ %a"
          Fmt.(list ~sep:cut string)
          violations
      else true)

(* -- precision report -------------------------------------------------------- *)

let pp_stats ppf (label, s) =
  let flagged = s.flagged_racy + s.flagged_quiet in
  Fmt.pf ppf
    "%s: %d programs, %d flagged (%d confirmed racy, %d false positives), %d \
     race-free verdicts; precision %.0f%%; mixed findings %d/%d confirmed"
    label s.programs flagged s.flagged_racy s.flagged_quiet s.clean_quiet
    (if flagged = 0 then 100.0
     else 100.0 *. float_of_int s.flagged_racy /. float_of_int flagged)
    s.mixed_confirmed s.mixed_flagged

(* runs after the two oracles above (alcotest executes a suite in order);
   soundness means a race-free verdict is never contradicted, so false
   negatives are structurally zero — precision is the measured number *)
let test_precision_report () =
  Fmt.pr "@.precision vs the `tmx races' ground truth:@.";
  Fmt.pr "  %a@." pp_stats ("catalog", catalog_stats);
  Fmt.pr "  %a@." pp_stats ("random ", random_stats);
  Alcotest.(check bool) "catalog oracle ran" true (catalog_stats.programs > 0);
  Alcotest.(check bool) "random oracle ran" true (random_stats.programs >= 500);
  (* pin the catalog floor so precision regressions are loud: 27/33
     flagged, all 27 confirmed racy under some model, 0 false positives
     (the former two, publication and d4, are excluded by the
     guard-dominance rule), all 6 race-free verdicts sound *)
  Alcotest.(check int) "catalog size" 33 catalog_stats.programs;
  Alcotest.(check int) "catalog false positives" 0 catalog_stats.flagged_quiet;
  Alcotest.(check int) "catalog race-free verdicts" 6 catalog_stats.clean_quiet;
  Alcotest.(check bool) "catalog precision = 100%" true
    (catalog_stats.flagged_racy * 100
     >= 100 * (catalog_stats.flagged_racy + catalog_stats.flagged_quiet))

let suite =
  [
    Alcotest.test_case "location summaries" `Quick test_summaries;
    Alcotest.test_case "access counts" `Quick test_counts;
    Alcotest.test_case "source paths" `Quick test_paths;
    Alcotest.test_case "must-abort detection" `Quick test_must_abort;
    Alcotest.test_case "fence dominance facts" `Quick test_fence_facts;
    Alcotest.test_case "branch fences do not dominate" `Quick
      test_branch_fence_not_dominating;
    Alcotest.test_case "computed cells use wildcards" `Quick test_wildcard_cells;
    Alcotest.test_case "static ordering rules" `Quick test_order_rules;
    Alcotest.test_case "fence protections downgrade" `Quick
      test_fence_protections;
    Alcotest.test_case "lint privatization" `Quick test_lint_privatization;
    Alcotest.test_case "lint sb" `Quick test_lint_sb;
    Alcotest.test_case "lint race-free programs" `Quick test_lint_race_free;
    Alcotest.test_case "guard dominance excludes" `Quick test_guard_dominance;
    Alcotest.test_case "json output" `Quick test_json;
    Alcotest.test_case "lint has no enumeration cost" `Quick test_lint_is_fast;
  ]

let oracle_suite =
  [
    Alcotest.test_case "soundness over the catalog" `Slow test_soundness_catalog;
    Tb.qcheck prop_soundness_random;
    Alcotest.test_case "precision report" `Quick test_precision_report;
  ]
