open Tmx_exec
open Tmx_stmsim

let lazy_cfg = Stmsim.default_config
let eager_cfg = { lazy_cfg with Stmsim.strategy = Stmsim.Eager }
let partial_cfg = { lazy_cfg with Stmsim.strategy = Stmsim.Partial }
let norec_cfg = { lazy_cfg with Stmsim.strategy = Stmsim.Norec }
let program name = (Option.get (Tmx_litmus.Catalog.find name)).Tmx_litmus.Litmus.program
let parse src = (Tmx_litmus.Parse.parse src).Tmx_litmus.Litmus.program

let has_outcome outcomes cond = List.exists cond outcomes

let test_lazy_privatization_anomaly () =
  let r = Stmsim.run ~config:lazy_cfg (program "privatization") in
  Alcotest.(check bool) "delayed write-back loses the plain write" true
    (has_outcome r.outcomes (fun o -> Outcome.mem o "x" = 1))

let test_fence_repairs_privatization () =
  let r = Stmsim.run ~config:lazy_cfg (program "privatization_fence") in
  Alcotest.(check bool) "no x=1 with the quiescence fence" false
    (has_outcome r.outcomes (fun o -> Outcome.mem o "x" = 1));
  Alcotest.(check bool) "still completes" true (r.outcomes <> [])

let test_atomic_commit_repairs_privatization () =
  let cfg = { lazy_cfg with Stmsim.atomic_commit = true } in
  let r = Stmsim.run ~config:cfg (program "privatization") in
  Alcotest.(check bool) "indivisible commit avoids the anomaly" false
    (has_outcome r.outcomes (fun o -> Outcome.mem o "x" = 1))

let test_fence_repairs_eager_privatization () =
  (* quiescence must cover in-flight transactions that have not yet
     touched the fenced location: an eager transaction that has read the
     flag may still write x later *)
  let r = Stmsim.run ~config:eager_cfg (program "privatization_fence") in
  Alcotest.(check bool) "no x=1 under eager with the fence" false
    (has_outcome r.outcomes (fun o -> Outcome.mem o "x" = 1))

let test_eager_speculative_lost_update () =
  (* Ex 3.4 / Shpeisman Fig 3a: the rollback of the aborted eager
     transaction loses the plain write x:=2 (q=0), which the paper's
     model forbids — naive eager versioning does not implement it *)
  let r = Stmsim.run ~config:eager_cfg (program "ex3_4") in
  Alcotest.(check bool) "speculative lost update exhibited" true
    (has_outcome r.outcomes (fun o -> Outcome.reg o 1 "q" = 0))

let test_lazy_no_lost_update () =
  let r = Stmsim.run ~config:lazy_cfg (program "ex3_4") in
  Alcotest.(check bool) "lazy versioning never loses the plain write" false
    (has_outcome r.outcomes (fun o -> Outcome.reg o 1 "q" = 0))

let test_eager_dirty_read () =
  (* App D.3: a plain reader observes the eager transaction's in-place
     write before the rollback *)
  let r = Stmsim.run ~config:eager_cfg (program "d3_dirty_reads") in
  Alcotest.(check bool) "dirty read exhibited" true
    (has_outcome r.outcomes (fun o -> Outcome.mem o "x" = 0 && Outcome.mem o "w" = 1))

let test_lazy_serializable_on_txn_only () =
  (* on fully transactional programs the lazy STM is serializable: its
     outcomes are within the atomic reference semantics *)
  List.iter
    (fun name ->
      let anomalies = Stmsim.anomalies ~config:lazy_cfg (program name) in
      Alcotest.(check int) (name ^ " anomaly-free") 0 (List.length anomalies))
    [ "opacity_iriw"; "d1_opaque_writes" ]

let test_publication_needs_no_fence () =
  (* the publication idiom works on the lazy STM as-is (§5: direct
     dependencies are ordered by the transactional machinery) *)
  let anomalies = Stmsim.anomalies ~config:lazy_cfg (program "publication") in
  Alcotest.(check int) "publication anomaly-free" 0 (List.length anomalies)

(* -- partial aborts ---------------------------------------------------- *)

let test_partial_privatization_anomaly () =
  (* partial is lazy plus checkpoint-restore: it must not hide the
     delayed-write-back anomaly the lazy protocol has *)
  let r = Stmsim.run ~config:partial_cfg (program "privatization") in
  Alcotest.(check bool) "partial preserves the lazy anomaly" true
    (has_outcome r.outcomes (fun o -> Outcome.mem o "x" = 1))

let test_partial_zero_checkpoints_is_lazy () =
  (* with no checkpoint budget every partial abort degenerates to a full
     abort: the outcome sets must coincide exactly with lazy's *)
  let cfg = { partial_cfg with Stmsim.checkpoints = 0 } in
  List.iter
    (fun name ->
      let p = program name in
      let pr = Stmsim.run ~config:cfg p in
      let lr = Stmsim.run ~config:lazy_cfg p in
      Alcotest.(check bool)
        (name ^ ": partial(checkpoints=0) = lazy") true
        (Outcome.diff pr.outcomes lr.outcomes = []
        && Outcome.diff lr.outcomes pr.outcomes = []))
    [ "privatization"; "publication"; "ex3_4"; "d3_dirty_reads" ]

(* -- norec ------------------------------------------------------------- *)

let test_norec_privatization_safe () =
  (* NOrec writer commits serialize on the global sequence lock and a
     reader revalidates when the counter moves, so the privatization
     idiom is safe without a fence — the headline NOrec property *)
  let r = Stmsim.run ~config:norec_cfg (program "privatization") in
  Alcotest.(check bool) "norec commits indivisibly enough for privatization"
    false
    (has_outcome r.outcomes (fun o -> Outcome.mem o "x" = 1));
  Alcotest.(check bool) "still completes" true (r.outcomes <> [])

let test_norec_no_lost_update () =
  (* no in-place speculative writes, so no §3.4 lost update either *)
  let r = Stmsim.run ~config:norec_cfg (program "ex3_4") in
  Alcotest.(check bool) "norec never loses the plain write" false
    (has_outcome r.outcomes (fun o -> Outcome.reg o 1 "q" = 0))

(* -- budget flags ------------------------------------------------------- *)

let conflict_incr_src =
  {|
name conflict_incr
locs x

thread 0:
  atomic { r := x; x := r + 1 }

thread 1:
  atomic { s := x; x := s + 1 }
|}

let spin_src = {|
name spin
locs x

thread 0:
  while 1 { r := x; x := r + 1 }
|}

let test_retry_budget_flag () =
  (* two conflicting increments with no retry budget: some schedule
     aborts past the budget, and the flag must name the retry budget,
     not the fuel *)
  let cfg = { lazy_cfg with Stmsim.max_retries = 0 } in
  let r = Stmsim.run ~config:cfg (parse conflict_incr_src) in
  Alcotest.(check bool) "retry budget fired" true r.retries_exhausted;
  Alcotest.(check bool) "fuel untouched" false r.fuel_exhausted;
  Alcotest.(check bool) "truncated = either flag" true r.truncated;
  (* with the default budget the same program completes cleanly *)
  let r' = Stmsim.run ~config:lazy_cfg (parse conflict_incr_src) in
  Alcotest.(check bool) "no budget fired with defaults" false r'.truncated;
  Alcotest.(check bool) "both increments land" true
    (has_outcome r'.outcomes (fun o -> Outcome.mem o "x" = 2))

let test_fuel_budget_flag () =
  (* an unbounded loop burns fuel on every path and never conflicts: the
     flag must name the fuel, not the retry budget *)
  let r = Stmsim.run ~config:lazy_cfg (parse spin_src) in
  Alcotest.(check bool) "fuel fired" true r.fuel_exhausted;
  Alcotest.(check bool) "retry budget untouched" false r.retries_exhausted;
  Alcotest.(check bool) "truncated = either flag" true r.truncated

(* Cross-validation of two independently built components: every outcome
   the lazy STM exhibits is admitted by the axiomatic implementation
   model (the sense in which TL2-style STMs "realize the implementation
   model", §5/§7) — while naive eager versioning escapes even that model
   on ex3_4 (the §3.4 anomaly). *)
let realizes_implementation_model config () =
  List.iter
    (fun name ->
      let p = program name in
      let stm = Stmsim.run ~config p in
      let model =
        Tmx_exec.Enumerate.outcomes
          (Tmx_exec.Enumerate.run Tmx_core.Model.implementation p)
      in
      List.iter
        (fun o ->
          Alcotest.(check bool)
            (Fmt.str "%s: stm outcome %a admitted by im" name Outcome.pp o)
            true
            (List.exists (Outcome.equal o) model))
        stm.outcomes)
    [ "privatization"; "publication"; "sb"; "ex3_4"; "ex3_5"; "d1_opaque_writes";
      "d3_dirty_reads" ]

let test_lazy_realizes_implementation_model = realizes_implementation_model lazy_cfg

let test_partial_realizes_implementation_model =
  realizes_implementation_model { partial_cfg with Stmsim.checkpoints = 2 }

let test_norec_realizes_implementation_model =
  realizes_implementation_model norec_cfg

let test_eager_escapes_implementation_model () =
  let p = program "ex3_4" in
  let stm = Stmsim.run ~config:eager_cfg p in
  let model =
    Tmx_exec.Enumerate.outcomes
      (Tmx_exec.Enumerate.run Tmx_core.Model.implementation p)
  in
  Alcotest.(check bool) "naive eager exhibits model-forbidden outcomes" true
    (List.exists
       (fun o -> not (List.exists (Outcome.equal o) model))
       stm.outcomes)

let test_paths_explored () =
  let r = Stmsim.run ~config:lazy_cfg (program "privatization") in
  Alcotest.(check bool) "explores many schedules" true (r.paths > 100);
  Alcotest.(check bool) "not capped" false r.capped

let suite =
  [
    Alcotest.test_case "lazy privatization anomaly" `Quick test_lazy_privatization_anomaly;
    Alcotest.test_case "quiescence fence repairs it" `Quick test_fence_repairs_privatization;
    Alcotest.test_case "fence repairs eager too" `Quick test_fence_repairs_eager_privatization;
    Alcotest.test_case "atomic commit repairs it" `Quick test_atomic_commit_repairs_privatization;
    Alcotest.test_case "eager speculative lost update" `Quick test_eager_speculative_lost_update;
    Alcotest.test_case "lazy has no lost update" `Quick test_lazy_no_lost_update;
    Alcotest.test_case "eager dirty reads" `Quick test_eager_dirty_read;
    Alcotest.test_case "partial preserves privatization anomaly" `Quick
      test_partial_privatization_anomaly;
    Alcotest.test_case "partial with zero checkpoints is lazy" `Quick
      test_partial_zero_checkpoints_is_lazy;
    Alcotest.test_case "norec privatization-safe" `Quick
      test_norec_privatization_safe;
    Alcotest.test_case "norec has no lost update" `Quick
      test_norec_no_lost_update;
    Alcotest.test_case "retry-budget flag" `Quick test_retry_budget_flag;
    Alcotest.test_case "fuel-budget flag" `Quick test_fuel_budget_flag;
    Alcotest.test_case "lazy serializable when transactional-only" `Slow
      test_lazy_serializable_on_txn_only;
    Alcotest.test_case "publication needs no fence" `Quick test_publication_needs_no_fence;
    Alcotest.test_case "lazy STM realizes the implementation model" `Slow
      test_lazy_realizes_implementation_model;
    Alcotest.test_case "partial STM realizes the implementation model" `Slow
      test_partial_realizes_implementation_model;
    Alcotest.test_case "norec STM realizes the implementation model" `Slow
      test_norec_realizes_implementation_model;
    Alcotest.test_case "naive eager escapes the implementation model" `Quick
      test_eager_escapes_implementation_model;
    Alcotest.test_case "schedule coverage" `Quick test_paths_explored;
  ]
