lib/runtime/registry.mli:
