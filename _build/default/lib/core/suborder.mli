(** The program-order suborders and external-synchronization decomposition
    of happens-before (§5 "Suborders" and appendix C).

    These characterize which reorderings the implementation model permits
    and underpin the compiler-optimization proofs: a transformation that
    preserves the suborders preserves consistency (Lemma C.3). *)

val po_to_t : Lift.ctx -> Rel.t
(** [po-T]: program order into a transactional action of a writing
    transaction, across transaction boundaries. *)

val po_t_from : Lift.ctx -> Rel.t
(** [poT-]: program order out of a transactional action. *)

val po_tt : Lift.ctx -> Rel.t
val po_rw : Lift.ctx -> Rel.t
val po_con : Lift.ctx -> Rel.t

val swe : Lift.ctx -> Rel.t
(** External transactional communication: [(cwr ∪ cww) \ po]. *)

val hbe : Lift.ctx -> Rel.t
(** External component of happens-before:
    [(po-T)? ; (swe ; poTT)* ; swe ; (poT-)?]. *)

val lemma_c1_holds : Lift.ctx -> Rel.t -> bool
(** Check [hb = init ∪ hbe ∪ po] over non-boundary events, where [hb] is
    the implementation-model happens-before of the context's trace. *)

val wre : Lift.ctx -> Rel.t
val xrwe : Lift.ctx -> Rel.t

val lemma_c2_consistent : Lift.ctx -> bool
(** The alternative consistency characterization of Lemma C.2 for the
    implementation model. *)
