open Tmx_runtime

let atomically f = Option.get (Stm.atomically f)

let test_tarray_basics () =
  let a = Tarray.init 8 (fun i -> i) in
  let sum = atomically (fun tx ->
      let s = ref 0 in
      for i = 0 to 7 do s := !s + Tarray.get tx a i done;
      !s)
  in
  Alcotest.(check int) "sum" 28 sum;
  atomically (fun tx -> Tarray.swap tx a 0 7);
  Alcotest.(check int) "swapped" 7 (Tvar.unsafe_read a.(0));
  let snap = Option.get (Tarray.snapshot a) in
  Alcotest.(check int) "snapshot length" 8 (Array.length snap);
  Alcotest.(check int) "snapshot content" 0 snap.(7)

let test_tarray_snapshot_consistent () =
  (* writers keep all slots equal; transactional snapshots never see a
     torn state *)
  let a = Tarray.make 4 0 in
  let stop = Atomic.make false in
  let torn = Atomic.make 0 in
  let writer () =
    for v = 1 to 800 do
      atomically (fun tx ->
          for i = 0 to 3 do Tarray.set tx a i v done)
    done;
    Atomic.set stop true
  in
  let reader () =
    while not (Atomic.get stop) do
      let snap = Option.get (Tarray.snapshot a) in
      if Array.exists (fun v -> v <> snap.(0)) snap then Atomic.incr torn
    done
  in
  let w = Domain.spawn writer and r = Domain.spawn reader in
  Domain.join w;
  Domain.join r;
  Alcotest.(check int) "no torn snapshots" 0 (Atomic.get torn)

let test_tqueue_fifo () =
  let q = Tqueue.create ~capacity:4 in
  atomically (fun tx ->
      Alcotest.(check bool) "push 1" true (Tqueue.push tx q 1);
      Alcotest.(check bool) "push 2" true (Tqueue.push tx q 2);
      Alcotest.(check bool) "push 3" true (Tqueue.push tx q 3));
  Alcotest.(check (option int)) "peek" (Some 1)
    (atomically (fun tx -> Tqueue.peek tx q));
  Alcotest.(check (option int)) "pop 1" (Some 1)
    (atomically (fun tx -> Tqueue.pop tx q));
  Alcotest.(check (option int)) "pop 2" (Some 2)
    (atomically (fun tx -> Tqueue.pop tx q));
  Alcotest.(check int) "length" 1 (atomically (fun tx -> Tqueue.length tx q))

let test_tqueue_bounds () =
  let q = Tqueue.create ~capacity:2 in
  atomically (fun tx ->
      ignore (Tqueue.push tx q 1);
      ignore (Tqueue.push tx q 2));
  Alcotest.(check bool) "full rejects" false
    (atomically (fun tx -> Tqueue.push tx q 3));
  atomically (fun tx -> ignore (Tqueue.pop tx q); ignore (Tqueue.pop tx q));
  Alcotest.(check (option int)) "empty pop" None
    (atomically (fun tx -> Tqueue.pop tx q));
  (* the abort-style helpers roll the transaction back *)
  Alcotest.(check (option int)) "pop_exn aborts on empty" None
    (Stm.atomically (fun tx -> Tqueue.pop_exn tx q))

let test_tqueue_pipeline () =
  (* producer -> queue -> consumer, counting everything through *)
  let q = Tqueue.create ~capacity:8 in
  let items = 2000 in
  let received = ref 0 and sum = ref 0 in
  let producer () =
    for v = 1 to items do
      let rec retry () =
        if not (atomically (fun tx -> Tqueue.push tx q v)) then begin
          Domain.cpu_relax ();
          retry ()
        end
      in
      retry ()
    done
  in
  let consumer () =
    while !received < items do
      match atomically (fun tx -> Tqueue.pop tx q) with
      | Some v ->
          incr received;
          sum := !sum + v
      | None -> Domain.cpu_relax ()
    done
  in
  let p = Domain.spawn producer in
  consumer ();
  Domain.join p;
  Alcotest.(check int) "all items received" items !received;
  Alcotest.(check int) "sum preserved" (items * (items + 1) / 2) !sum

let test_tmap_basics () =
  let m = Tmap.create ~capacity:16 in
  atomically (fun tx ->
      Alcotest.(check bool) "add" true (Tmap.add tx m 7 70);
      Alcotest.(check bool) "add" true (Tmap.add tx m 23 230);
      Alcotest.(check bool) "overwrite" true (Tmap.add tx m 7 71));
  Alcotest.(check (option int)) "find 7" (Some 71)
    (atomically (fun tx -> Tmap.find tx m 7));
  Alcotest.(check (option int)) "find 23" (Some 230)
    (atomically (fun tx -> Tmap.find tx m 23));
  Alcotest.(check (option int)) "find missing" None
    (atomically (fun tx -> Tmap.find tx m 99));
  Alcotest.(check int) "cardinal" 2 (atomically (fun tx -> Tmap.cardinal tx m));
  Alcotest.(check bool) "remove" true (atomically (fun tx -> Tmap.remove tx m 7));
  Alcotest.(check (option int)) "removed" None
    (atomically (fun tx -> Tmap.find tx m 7));
  (* reinsertion reuses the tombstone *)
  atomically (fun tx -> ignore (Tmap.add tx m 7 700));
  Alcotest.(check (option int)) "reinserted" (Some 700)
    (atomically (fun tx -> Tmap.find tx m 7))

let test_tmap_collisions () =
  (* capacity 4 forces probing; fill completely *)
  let m = Tmap.create ~capacity:4 in
  atomically (fun tx ->
      List.iter (fun k -> ignore (Tmap.add tx m k (k * 10))) [ 1; 2; 3; 4 ]);
  List.iter
    (fun k ->
      Alcotest.(check (option int)) (Fmt.str "find %d" k) (Some (k * 10))
        (atomically (fun tx -> Tmap.find tx m k)))
    [ 1; 2; 3; 4 ];
  Alcotest.(check bool) "full rejects new key" false
    (atomically (fun tx -> Tmap.add tx m 5 50));
  Alcotest.(check bool) "full accepts overwrite" true
    (atomically (fun tx -> Tmap.add tx m 4 41))

let test_tmap_concurrent () =
  let m = Tmap.create ~capacity:128 in
  let per_domain = 40 in
  let worker base () =
    for i = 1 to per_domain do
      ignore (atomically (fun tx -> Tmap.add tx m (base + i) i))
    done
  in
  let ds = [ Domain.spawn (worker 0); Domain.spawn (worker 100); Domain.spawn (worker 200) ] in
  List.iter Domain.join ds;
  Alcotest.(check int) "all inserted" (3 * per_domain)
    (atomically (fun tx -> Tmap.cardinal tx m));
  let total = atomically (fun tx -> Tmap.fold tx m (fun _ v acc -> acc + v) 0) in
  Alcotest.(check int) "values preserved" (3 * (per_domain * (per_domain + 1) / 2)) total

let test_compose_structures () =
  (* a queue move and a map update in one atomic step *)
  let q1 = Tqueue.create ~capacity:4 and q2 = Tqueue.create ~capacity:4 in
  let m = Tmap.create ~capacity:8 in
  atomically (fun tx -> ignore (Tqueue.push tx q1 5));
  atomically (fun tx ->
      let v = Tqueue.pop_exn tx q1 in
      Tqueue.push_exn tx q2 v;
      ignore (Tmap.add tx m v 1));
  Alcotest.(check (option int)) "moved" (Some 5)
    (atomically (fun tx -> Tqueue.pop tx q2));
  Alcotest.(check (option int)) "recorded" (Some 1)
    (atomically (fun tx -> Tmap.find tx m 5))

let suite =
  [
    Alcotest.test_case "tarray basics" `Quick test_tarray_basics;
    Alcotest.test_case "tarray snapshot consistency" `Slow test_tarray_snapshot_consistent;
    Alcotest.test_case "tqueue fifo" `Quick test_tqueue_fifo;
    Alcotest.test_case "tqueue bounds and aborts" `Quick test_tqueue_bounds;
    Alcotest.test_case "tqueue pipeline" `Slow test_tqueue_pipeline;
    Alcotest.test_case "tmap basics" `Quick test_tmap_basics;
    Alcotest.test_case "tmap collisions" `Quick test_tmap_collisions;
    Alcotest.test_case "tmap concurrent" `Slow test_tmap_concurrent;
    Alcotest.test_case "composed structures" `Quick test_compose_structures;
  ]
