lib/core/model.ml: Fmt List String
