(* The stmsim-enum differential oracle as a test suite: each commit
   strategy's simulator outcomes (lazy, lazy+atomic-commit, partial with
   a tight checkpoint budget, norec) stay within the axiomatic
   implementation model, over the whole litmus catalog plus a
   deterministic batch of fuzzed mixed-access programs.  The nightly
   fuzz campaign runs the same oracle over fresh seeds; this suite pins
   a fixed corpus into `dune runtest` (exhaustive — TMX_QUICK skips
   it). *)

module Gen = Tmx_fuzz.Gen
module Oracle = Tmx_fuzz.Oracle

let oracle = Option.get (Oracle.by_name "stmsim-enum")
let ctx = Oracle.make_ctx ~jobs:1 ~seed:0 ()

let check name p =
  match oracle.Oracle.check ctx p with
  | Oracle.Pass -> ()
  | Oracle.Fail msg -> Alcotest.failf "%s: %s" name msg

let test_catalog () =
  List.iter
    (fun (l : Tmx_litmus.Litmus.t) -> check l.name l.program)
    Tmx_litmus.Catalog.all

let test_generated () =
  List.iteri
    (fun i p -> check (Fmt.str "mixed #%d" i) p)
    (List.init 60 (fun i ->
         Gen.program Gen.mixed (Gen.state_of_seed ~seed:2026 ~index:i)))

let suite =
  [
    Alcotest.test_case "catalog within the im, all strategies" `Slow
      test_catalog;
    Alcotest.test_case "generated programs within the im, all strategies"
      `Slow test_generated;
  ]
