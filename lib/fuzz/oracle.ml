open Tmx_core
open Tmx_lang
open Tmx_exec

type verdict = Pass | Fail of string

type ctx = {
  jobs : int;
  seed : int;
  run : Enumerate.config -> Model.t -> Ast.program -> Enumerate.result;
}

type t = { name : string; descr : string; check : ctx -> Ast.program -> verdict }

let make_ctx ?(run = fun config m p -> Enumerate.run ~config m p) ~jobs ~seed ()
    =
  { jobs; seed; run }

let models =
  [ Model.programmer; Model.implementation; Model.bare; Model.strongest ]

let seq_config = { Enumerate.default_config with jobs = 1 }

(* a random order-preserving merge of the trace's per-thread sequences,
   keeping the initializing thread first (the same construction the
   permutation-invariance test uses) *)
let random_merge st (trace : Trace.t) =
  let n = Trace.length trace in
  let by_thread = Hashtbl.create 8 in
  for i = 0 to n - 1 do
    let th = Trace.thread trace i in
    Hashtbl.replace by_thread th
      (i :: Option.value (Hashtbl.find_opt by_thread th) ~default:[])
  done;
  let queues =
    Hashtbl.fold (fun th evs acc -> (th, ref (List.rev evs)) :: acc) by_thread []
  in
  let perm = ref [] in
  (match List.assoc_opt Action.init_thread queues with
  | Some q ->
      perm := List.rev !q;
      q := []
  | None -> ());
  let rec go () =
    let nonempty = List.filter (fun (_, q) -> !q <> []) queues in
    if nonempty <> [] then begin
      let _, q = List.nth nonempty (Random.State.int st (List.length nonempty)) in
      (match !q with
      | i :: rest ->
          perm := i :: !perm;
          q := rest
      | [] -> ());
      go ()
    end
  in
  go ();
  Array.of_list (List.rev !perm)

(* -- enum-naive --------------------------------------------------------------- *)

(* The naive reference is deliberately O(n^4)-per-trace, and a fuzzed
   program can enumerate thousands of executions; checking every one
   would dominate the whole campaign.  Stride-sample a deterministic
   spread instead, and skip traces past [naive_trace_limit] events — the
   reference's path-enumerating acyclicity check is exponential in trace
   length, and the cross-check earns its keep on small traces (failures
   shrink small anyway).  Different seeds still cover different
   programs, so the campaign as a whole keeps its coverage. *)
let naive_sample_budget = 6

let naive_trace_limit = 14

let stride_sample k xs =
  let n = List.length xs in
  if n <= k then xs
  else
    let stride = n / k in
    List.filteri (fun i _ -> i mod stride = 0) xs |> List.filteri (fun i _ -> i < k)

let check_enum_naive ctx (p : Ast.program) =
  let st = Random.State.make [| 0x6e61; ctx.seed |] in
  let fail = ref None in
  let record msg = if !fail = None then fail := Some msg in
  List.iter
    (fun (model : Model.t) ->
      if !fail = None then begin
        let r = ctx.run seq_config model p in
        List.iteri
          (fun idx (e : Enumerate.execution) ->
            if !fail = None && Trace.length e.trace <= naive_trace_limit
            then begin
              if not (Naive.consistent_axioms model e.trace) then
                record
                  (Fmt.str
                     "%s: enumerated execution %d (outcome %a) violates the \
                      naive axioms"
                     model.Model.name idx Outcome.pp e.outcome);
              (* re-merge the trace and compare the full optimized verdict
                 with the naive one, both directions *)
              if idx < 2 then begin
                let perm = random_merge st e.trace in
                if Trace.is_order_preserving e.trace perm then begin
                  let t' = Trace.permute e.trace perm in
                  let fast = Consistency.consistent model t' in
                  let naive = Naive.consistent model t' in
                  if fast <> naive then
                    record
                      (Fmt.str
                         "%s: optimized/naive verdicts split on a re-merge \
                          of execution %d (fast %b, naive %b)"
                         model.Model.name idx fast naive)
                end
              end
            end)
          (stride_sample naive_sample_budget r.executions)
      end)
    models;
  match !fail with None -> Pass | Some m -> Fail m

(* -- machine-enum ------------------------------------------------------------- *)

let check_machine_enum ctx (p : Ast.program) =
  let m = Tmx_machine.Machine.run p in
  let r = ctx.run seq_config Model.implementation p in
  let a = Enumerate.outcomes r in
  match Outcome.diff m.outcomes a with
  | o :: _ ->
      Fail
        (Fmt.str "machine outcome %a not admitted by the axiomatic im"
           Outcome.pp o)
  | [] ->
      if m.truncated || m.capped || r.truncated || r.capped then Pass
      else begin
        match Outcome.diff a m.outcomes with
        | o :: _ ->
            Fail
              (Fmt.str "axiomatic im outcome %a unreachable by the machine"
                 Outcome.pp o)
        | [] -> Pass
      end

(* -- stmsim-enum -------------------------------------------------------------- *)

(* every commit strategy must stay within the axiomatic im; partial runs
   with a small checkpoint budget so both the checkpoint-restore and the
   budget-exceeded full-abort paths get exercised *)
let stmsim_modes =
  let open Tmx_stmsim.Stmsim in
  [
    ("lazy", { default_config with strategy = Lazy });
    ("lazy+atomic-commit", { default_config with strategy = Lazy; atomic_commit = true });
    ("partial", { default_config with strategy = Partial; checkpoints = 2 });
    ("norec", { default_config with strategy = Norec });
  ]

(* name which budget clipped the state space — a fuel-exhausted run and a
   retry-starved run need different knobs to reproduce at full depth *)
let budget_note (s : Tmx_stmsim.Stmsim.result) =
  match (s.fuel_exhausted, s.retries_exhausted) with
  | true, true -> " [fuel and retry budgets hit]"
  | true, false -> " [fuel budget hit]"
  | false, true -> " [retry budget hit]"
  | false, false -> ""

let check_stmsim_enum ctx (p : Ast.program) =
  let a = Enumerate.outcomes (ctx.run seq_config Model.implementation p) in
  let rec go = function
    | [] -> Pass
    | (mode, config) :: rest -> (
        let s = Tmx_stmsim.Stmsim.run ~config p in
        match Outcome.diff s.outcomes a with
        | o :: _ ->
            Fail
              (Fmt.str "stm %s outcome %a not admitted by the axiomatic im%s"
                 mode Outcome.pp o (budget_note s))
        | [] -> go rest)
  in
  go stmsim_modes

(* -- lint-sound --------------------------------------------------------------- *)

let check_lint_sound ctx (p : Ast.program) =
  let r = Tmx_analysis.Lint.lint p in
  let has_mixed_finding = Tmx_analysis.Lint.mixed_count r > 0 in
  let fail = ref None in
  let record msg = if !fail = None then fail := Some msg in
  List.iter
    (fun (model : Model.t) ->
      if !fail = None then
        let result = ctx.run seq_config model p in
        List.iter
          (fun (e : Enumerate.execution) ->
            if !fail = None then begin
              List.iter
                (fun (i, _) ->
                  let loc =
                    match Trace.act e.trace i with
                    | Action.Read { loc; _ } | Action.Write { loc; _ } -> loc
                    | _ -> "?"
                  in
                  if not (Tmx_analysis.Lint.covers r loc) then
                    record
                      (Fmt.str "unflagged L-race on %s under %s" loc
                         model.Model.name))
                (Verdict.execution_races model e.trace);
              let ctx' = Lift.make e.trace in
              let hb = Hb.compute model ctx' in
              if Race.has_mixed_race e.trace hb && not has_mixed_finding then
                record
                  (Fmt.str "mixed race without a mixed finding under %s"
                     model.Model.name)
            end)
          result.executions)
    models;
  match !fail with None -> Pass | Some m -> Fail m

(* -- jobs-det ----------------------------------------------------------------- *)

(* NB: calls [Enumerate.run] directly, not [ctx.run] — this oracle's
   claim is about the enumerator itself, so serving either side from a
   cache would make it vacuous. *)
let check_jobs_det ctx (p : Ast.program) =
  let jobs = max 2 ctx.jobs in
  let r1 = Enumerate.run ~config:seq_config Model.programmer p in
  let rn =
    Enumerate.run
      ~config:{ Enumerate.default_config with jobs }
      Model.programmer p
  in
  if r1.graphs <> rn.graphs then
    Fail (Fmt.str "graphs: %d with jobs=1, %d with jobs=%d" r1.graphs rn.graphs jobs)
  else if r1.capped <> rn.capped || r1.truncated <> rn.truncated then
    Fail "cap/truncation flags differ between jobs=1 and jobs=N"
  else if List.length r1.executions <> List.length rn.executions then
    Fail
      (Fmt.str "%d executions with jobs=1, %d with jobs=%d"
         (List.length r1.executions)
         (List.length rn.executions)
         jobs)
  else if
    not
      (List.for_all2
         (fun (a : Enumerate.execution) (b : Enumerate.execution) ->
           Outcome.equal a.outcome b.outcome)
         r1.executions rn.executions)
  then Fail "execution order differs between jobs=1 and jobs=N"
  else Pass

(* -- reduction-det ------------------------------------------------------------ *)

(* Like jobs-det, calls [Enumerate.run] directly: the claim is about the
   enumerator's reduction strategies, so a cache would make it vacuous.
   [Dpor] promises bit-identical results to the unreduced reference —
   executions in the same order.  [Dpor_sym] promises the same verdicts
   and candidate accounting with the execution multiset preserved (the
   order within a symmetry orbit is the representative's). *)
let check_reduction_det _ctx (p : Ast.program) =
  let run reduction =
    Enumerate.run
      ~config:{ seq_config with reduction }
      Model.programmer p
  in
  let rn = run Enumerate.No_reduction in
  let rd = run Enumerate.Dpor in
  let rs = run Enumerate.Dpor_sym in
  let key (e : Enumerate.execution) =
    Fmt.str "%a|%a" Trace.pp e.trace Outcome.pp e.outcome
  in
  let kn = List.map key rn.executions in
  if rn.graphs <> rd.graphs || rn.graphs <> rs.graphs then
    Fail
      (Fmt.str "graphs: %d none, %d dpor, %d dpor+sym" rn.graphs rd.graphs
         rs.graphs)
  else if
    rn.capped <> rd.capped || rn.capped <> rs.capped
    || rn.truncated <> rd.truncated || rn.truncated <> rs.truncated
  then Fail "cap/truncation flags differ across reductions"
  else if kn <> List.map key rd.executions then
    Fail "dpor diverged from the unreduced reference (order-sensitive)"
  else if
    List.sort compare kn <> List.sort compare (List.map key rs.executions)
  then Fail "dpor+sym execution multiset differs from the reference"
  else if rd.explored > rn.explored || rs.explored > rd.explored then
    Fail
      (Fmt.str "explored states grew under reduction: %d none, %d dpor, %d \
                dpor+sym"
         rn.explored rd.explored rs.explored)
  else Pass

(* -- repair-sound ------------------------------------------------------------- *)

(* The repair synthesizer's contract, end-to-end on fuzzed programs:
   under the implementation model, every program either is already
   mixed-race-free (and [Repair.run] returns the empty edit list), or
   gets a repair whose independent re-verification ([Repair.check], no
   state shared with the search) confirms the repaired program is
   mixed-race-free and dropping any single edit reintroduces a race.  A
   racy program for which no repair exists in the candidate space is a
   soundness bug too: the pool always contains the promote-everything
   repair, so [Error] from a racy program means the lint seeding or the
   search lost it. *)
let check_repair_sound _ctx (p : Ast.program) =
  let model = Model.implementation in
  match Tmx_analysis.Repair.run ~config:seq_config model p with
  | Error e -> Fail (Fmt.str "no repair found: %s" e)
  | Ok r -> (
      let racy = Verdict.race_witness ~config:seq_config ~mixed_only:true model p <> None in
      if (not racy) && r.Tmx_analysis.Repair.edits <> [] then
        Fail "clean program got a nonempty repair"
      else if racy && r.edits = [] then
        Fail "racy program got an empty repair"
      else
        match Tmx_analysis.Repair.check ~config:seq_config model r with
        | Ok () -> Pass
        | Error e -> Fail e)

(* -- arch-diff ---------------------------------------------------------------- *)

(* The §6 differential claim on fuzzed programs: x86-TSO and the C++-TM
   mapping validate even the strongest LTRF variant with no inserted
   fences; every ARMv8 escape is closed by a minimal DMB LD set that
   Diff.check re-verifies by re-running the backend; and the structural
   lattice (tso ⊆ armv8, rc11 ⊆ armv8) holds on the outcome sets.  The
   arch backends judge the unreduced selection product, so the graph cap
   is kept small and capped/truncated programs are skipped rather than
   judged on a clipped state space. *)
let arch_config = { seq_config with Enumerate.max_graphs = 10_000 }

let check_arch_diff _ctx (p : Ast.program) =
  let config = arch_config in
  let verdicts =
    List.map
      (fun a -> Tmx_arch.Diff.check ~config a Model.strongest p)
      Tmx_arch.Arch.all
  in
  if List.exists (fun (v : Tmx_arch.Diff.verdict) -> v.imprecise) verdicts then
    Pass
  else
    let bad =
      List.find_map
        (fun (v : Tmx_arch.Diff.verdict) ->
          match (v.arch, v.validated, v.fences) with
          | (Tmx_arch.Arch.X86tso | Tmx_arch.Arch.Rc11), false, _ ->
              Some
                (Fmt.str "%s escapes the strongest variant: %a"
                   (Tmx_arch.Arch.name v.arch)
                   Fmt.(list ~sep:(any " | ") Outcome.pp)
                   v.witnesses)
          | Tmx_arch.Arch.Armv8, false, None ->
              Some "armv8 escape not closed by any DMB LD fence set"
          | _ -> None)
        verdicts
    in
    match bad with
    | Some msg -> Fail msg
    | None -> (
        match
          List.find_opt
            (fun (c : Tmx_arch.Diff.containment) -> not c.ok)
            (Tmx_arch.Diff.containments ~config p)
        with
        | Some c ->
            Fail
              (Fmt.str "outcomes(%s) escape outcomes(%s): %a"
                 (Tmx_arch.Arch.name c.sub) (Tmx_arch.Arch.name c.sup)
                 Fmt.(list ~sep:(any " | ") Outcome.pp)
                 c.witnesses)
        | None -> Pass)

(* -- the deliberately-broken demo oracle -------------------------------------- *)

let check_broken _ctx (p : Ast.program) =
  let mixed =
    List.find_opt
      (fun (s : Tmx_analysis.Access.summary) -> s.class_ = Tmx_analysis.Access.Mixed)
      (Tmx_analysis.Access.summaries p)
  in
  match mixed with
  | Some s ->
      Fail
        (Fmt.str
           "location %s is accessed both transactionally and plainly \
            (deliberately-broken demo oracle)"
           s.loc)
  | None -> Pass

(* -- registry ----------------------------------------------------------------- *)

let stock =
  [
    {
      name = "enum-naive";
      descr = "enumerated executions agree with the naive reference axioms";
      check = check_enum_naive;
    };
    {
      name = "machine-enum";
      descr = "operational-machine outcomes within (= without caps) the axiomatic im";
      check = check_machine_enum;
    };
    {
      name = "stmsim-enum";
      descr =
        "STM-simulator outcomes within the axiomatic im (lazy, \
         lazy+atomic-commit, partial, norec)";
      check = check_stmsim_enum;
    };
    {
      name = "lint-sound";
      descr = "unflagged locations never race; mixed races imply mixed findings";
      check = check_lint_sound;
    };
    {
      name = "jobs-det";
      descr = "parallel enumeration is bit-identical to sequential";
      check = check_jobs_det;
    };
    {
      name = "reduction-det";
      descr = "dpor/dpor+sym enumeration preserves the unreduced verdicts";
      check = check_reduction_det;
    };
    {
      name = "repair-sound";
      descr =
        "synthesized repairs verify mixed-race-free; dropping any single \
         edit reintroduces a race";
      check = check_repair_sound;
    };
    {
      name = "arch-diff";
      descr =
        "x86tso/rc11 validate the strongest variant; armv8 escapes close \
         under a re-verified DMB LD set; arch outcome lattice holds";
      check = check_arch_diff;
    };
  ]

let broken =
  {
    name = "broken";
    descr = "demo oracle that rejects mixed locations (TMX_FUZZ_BROKEN only)";
    check = check_broken;
  }

let broken_enabled () = Sys.getenv_opt "TMX_FUZZ_BROKEN" <> None

let by_name n =
  if n = "broken" && broken_enabled () then Some broken
  else List.find_opt (fun o -> o.name = n) stock

let names () =
  List.map (fun o -> o.name) stock @ (if broken_enabled () then [ "broken" ] else [])
