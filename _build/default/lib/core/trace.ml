(* Traces and the relations derived from them (§2).

   A trace is a finite sequence of events; the action id of the paper is
   the event's position.  From the sequence we derive the transaction
   structure (which events belong to which transaction, and each
   transaction's resolution status) and the base relations: index, init,
   po, ww, wr and rw. *)

type status = Committed | Aborted | Live

let pp_status ppf = function
  | Committed -> Fmt.string ppf "committed"
  | Aborted -> Fmt.string ppf "aborted"
  | Live -> Fmt.string ppf "live"

type t = {
  events : Action.event array;
  locs : string list;
  txn_of : int array; (* position of the owning Begin, or -1 for plain *)
  resolution_of : int array; (* per Begin position: resolution position or -1 *)
  txn_status : status array; (* per position, meaningful where txn_of >= 0 *)
}

let events t = t.events
let length t = Array.length t.events
let event t i = t.events.(i)
let act t i = t.events.(i).Action.act
let thread t i = t.events.(i).Action.thread
let locs t = t.locs

(* Scan the sequence assigning each event to the open transaction of its
   thread, WF5-style: a resolution closes the latest open begin. *)
let analyze events =
  let n = Array.length events in
  let txn_of = Array.make n (-1) in
  let resolution_of = Array.make n (-1) in
  let open_txn = Hashtbl.create 8 in
  for i = 0 to n - 1 do
    let { Action.thread; act } = events.(i) in
    let current = Option.value (Hashtbl.find_opt open_txn thread) ~default:(-1) in
    (match act with
    | Action.Begin ->
        txn_of.(i) <- i;
        Hashtbl.replace open_txn thread i
    | Action.Commit | Action.Abort ->
        txn_of.(i) <- current;
        if current >= 0 then resolution_of.(current) <- i;
        Hashtbl.remove open_txn thread
    | Action.Write _ | Action.Read _ | Action.Qfence _ -> txn_of.(i) <- current)
  done;
  let txn_status =
    Array.init n (fun i ->
        let b = txn_of.(i) in
        if b < 0 then Committed (* unused for plain events *)
        else
          let r = resolution_of.(b) in
          if r < 0 then Live
          else
            match events.(r).Action.act with
            | Action.Commit -> Committed
            | Action.Abort -> Aborted
            | _ -> assert false)
  in
  (txn_of, resolution_of, txn_status)

let of_events ~locs events =
  let events = Array.of_list events in
  let txn_of, resolution_of, txn_status = analyze events in
  { events; locs; txn_of; resolution_of; txn_status }

let init_events locs =
  ({ Action.thread = Action.init_thread; act = Action.Begin }
  :: List.map
       (fun loc ->
         {
           Action.thread = Action.init_thread;
           act = Action.Write { loc; value = 0; ts = Rat.zero };
         })
       locs)
  @ [ { Action.thread = Action.init_thread; act = Action.Commit } ]

let make ~locs body = of_events ~locs (init_events locs @ body)

(* -- per-event predicates ------------------------------------------------ *)

let txn_of t i = t.txn_of.(i)
let is_transactional t i = t.txn_of.(i) >= 0
let is_plain t i = t.txn_of.(i) < 0

let same_txn t i j = i = j || (t.txn_of.(i) >= 0 && t.txn_of.(i) = t.txn_of.(j))

let status t i = if t.txn_of.(i) < 0 then None else Some t.txn_status.(i)
let is_aborted t i = t.txn_of.(i) >= 0 && t.txn_status.(i) = Aborted
let is_nonaborted t i = not (is_aborted t i)

(* "committed or live" in WF9/WF10 and the c-lifted relations: a
   transactional action whose transaction is not aborted. *)
let is_committed_or_live_txn t i = t.txn_of.(i) >= 0 && t.txn_status.(i) <> Aborted

let is_init t i = (event t i).Action.thread = Action.init_thread

let resolution_of_txn t b = if t.resolution_of.(b) < 0 then None else Some t.resolution_of.(b)

let txn_touches t b x =
  let n = length t in
  let rec go i = i < n && ((t.txn_of.(i) = b && Action.touches x (act t i)) || go (i + 1)) in
  go 0

let txn_members t b =
  let acc = ref [] in
  for i = length t - 1 downto 0 do
    if t.txn_of.(i) = b then acc := i :: !acc
  done;
  !acc

let txns t =
  let acc = ref [] in
  for i = length t - 1 downto 0 do
    if Action.is_begin (act t i) then acc := i :: !acc
  done;
  !acc

(* -- base relations ------------------------------------------------------ *)

let rel_index t = Rel.of_pred (length t) (fun i j -> i < j)

let rel_init t =
  Rel.of_pred (length t) (fun i j -> is_init t i && not (is_init t j))

let rel_po t =
  Rel.of_pred (length t) (fun i j -> i < j && thread t i = thread t j)

let rel_ww t =
  Rel.of_pred (length t) (fun i j ->
      match (act t i, act t j) with
      | Action.Write a, Action.Write b ->
          String.equal a.loc b.loc && Rat.lt a.ts b.ts
      | _ -> false)

let rel_wr t =
  Rel.of_pred (length t) (fun i j ->
      match (act t i, act t j) with
      | Action.Write a, Action.Read b ->
          String.equal a.loc b.loc && a.value = b.value && Rat.equal a.ts b.ts
      | _ -> false)

(* b rw c iff a wr b and a ww c for some a, and c is plain or nonaborted. *)
let rel_rw t =
  let wr = rel_wr t and ww = rel_ww t in
  let from_read = Rel.compose (Rel.of_pred (length t) (fun i j -> Rel.mem wr j i)) ww in
  Rel.filter from_read (fun _ c -> is_nonaborted t c)

let wr_source t j =
  match act t j with
  | Action.Read { loc; ts; _ } ->
      let n = length t in
      let rec go i =
        if i >= n then None
        else
          match act t i with
          | Action.Write w when String.equal w.loc loc && Rat.equal w.ts ts ->
              Some i
          | _ -> go (i + 1)
      in
      go 0
  | _ -> None

(* -- whole-trace queries ------------------------------------------------- *)

let writes_to t x =
  let acc = ref [] in
  for i = length t - 1 downto 0 do
    match act t i with
    | Action.Write { loc; _ } when String.equal loc x -> acc := i :: !acc
    | _ -> ()
  done;
  !acc

(* Final value: the nonaborted write with the greatest timestamp. *)
let final_value t x =
  let best = ref None in
  List.iter
    (fun i ->
      if is_nonaborted t i then
        match act t i with
        | Action.Write { ts; value; _ } -> (
            match !best with
            | Some (ts', _) when Rat.leq ts ts' -> ()
            | _ -> best := Some (ts, value))
        | _ -> ())
    (writes_to t x);
  Option.map snd !best

(* Transaction b is contiguous (§4): a foreign event strictly inside the
   transaction's span forces either the resolution to occur before it, or
   the owner thread to never act again after it. *)
let txn_contiguous t b =
  let s = thread t b in
  let r = t.resolution_of.(b) in
  let n = length t in
  let owner_acts_after c =
    let rec go i = i < n && (thread t i = s || go (i + 1)) in
    go (c + 1)
  in
  let ok = ref true in
  let upper = if r >= 0 then r else n in
  for c = b + 1 to upper - 1 do
    if thread t c <> s && thread t c <> Action.init_thread then
      if owner_acts_after c then ok := false
  done;
  !ok

let all_txns_contiguous t = List.for_all (txn_contiguous t) (txns t)

let all_txns_resolved t =
  List.for_all (fun b -> t.resolution_of.(b) >= 0) (txns t)

(* -- surgery ------------------------------------------------------------- *)

let sub t keep =
  let body = ref [] in
  for i = length t - 1 downto 0 do
    if keep i then body := event t i :: !body
  done;
  of_events ~locs:t.locs !body

(* Theorem 4.2: drop all events of aborted transactions. *)
let drop_aborted t = sub t (fun i -> not (is_aborted t i))

let permute t perm =
  let events = Array.map (fun old -> t.events.(old)) perm in
  let txn_of, resolution_of, txn_status = analyze events in
  { events; locs = t.locs; txn_of; resolution_of; txn_status }

let is_order_preserving t perm =
  (* po is preserved iff each thread's subsequence of events is unchanged. *)
  let pos_of = Array.make (Array.length perm) 0 in
  Array.iteri (fun newp old -> pos_of.(old) <- newp) perm;
  let ok = ref true in
  let n = length t in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if thread t i = thread t j && pos_of.(i) > pos_of.(j) then ok := false
    done
  done;
  !ok

let pp ppf t =
  Fmt.pf ppf "@[<v>%a@]"
    (Fmt.iter_bindings ~sep:Fmt.cut
       (fun f t -> Array.iteri (fun i e -> f i e) t.events)
       (fun ppf (i, e) -> Fmt.pf ppf "%3d %a" i Action.pp_event e))
    t

let pp_compact ppf t =
  Fmt.pf ppf "%a"
    Fmt.(array ~sep:(any " ") Action.pp_event)
    t.events
