lib/core/opacity.ml: Action Fun Hashtbl Hb Lift List Model Rel Trace
