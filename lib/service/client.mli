(** The matching client for {!Server}: connect to the Unix socket, send
    one JSON request per line, read one JSON response per line. *)

type conn

val connect : ?wait_s:float -> string -> (conn, string) result
(** Connect to the socket path.  [wait_s] retries the connection for up
    to that many seconds (the server may still be binding — cram tests
    background [tmx serve] and race it). *)

val close : conn -> unit

val roundtrip : conn -> Json.t -> (Json.t, string) result
(** Send one request, read its response line. *)

val request :
  ?wait_s:float -> socket:string -> Json.t -> (Json.t, string) result
(** One-shot: connect, {!roundtrip}, close. *)
