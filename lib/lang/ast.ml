(* The litmus programming language: the minimal imperative language the
   paper writes its examples in.  Threads operate on private registers and
   shared locations; transactions are [atomic { ... }] blocks that may
   abort explicitly; the quiescence fence of §5 is a statement.

   Array cells (z[r] in examples 3.5 and D.4) are modelled as computed
   location names: location "z" with an index expression denotes the cell
   "z[v]", which must be declared in the program's location list. *)

type reg = string

type expr =
  | Int of int
  | Reg of reg
  | Add of expr * expr
  | Sub of expr * expr
  | Mul of expr * expr
  | Eq of expr * expr
  | Ne of expr * expr
  | Lt of expr * expr
  | Not of expr
  | And of expr * expr
  | Or of expr * expr

(* A location reference: plain name, or array cell with computed index. *)
type lval = { base : string; index : expr option }

type stmt =
  | Load of reg * lval (* r := x *)
  | Store of lval * expr (* x := e *)
  | Assign of reg * expr (* r := e, register-only *)
  | Atomic of stmt list
  | Abort (* only meaningful inside atomic *)
  | If of expr * stmt list * stmt list
  | While of expr * stmt list
  | Fence of string (* quiescence fence Qx *)
  | Skip

type thread = stmt list
type program = { name : string; locs : string list; threads : thread list }

(* -- constructors --------------------------------------------------------- *)

let int n = Int n
let reg r = Reg r
let not_ a = Not a

(* Operator spellings for writing litmus programs compactly; open this
   locally ([Ast.Infix.(...)]) since it shadows the stdlib comparisons. *)
module Infix = struct
  let ( + ) a b = Add (a, b)
  let ( - ) a b = Sub (a, b)
  let ( * ) a b = Mul (a, b)
  let ( = ) a b = Eq (a, b)
  let ( <> ) a b = Ne (a, b)
  let ( < ) a b = Lt (a, b)
  let ( && ) a b = And (a, b)
  let ( || ) a b = Or (a, b)
end

let loc base = { base; index = None }
let cell base index = { base; index = Some index }

let load r lv = Load (r, lv)
let store lv e = Store (lv, e)
let assign r e = Assign (r, e)
let atomic body = Atomic body
let abort = Abort
let if_ c t e = If (c, t, e)
let when_ c t = If (c, t, [])
let while_ c b = While (c, b)
let fence x = Fence x
let skip = Skip

let program ?(name = "anon") ~locs threads = { name; locs; threads }

(* -- analysis -------------------------------------------------------------- *)

let rec expr_regs acc = function
  | Int _ -> acc
  | Reg r -> r :: acc
  | Add (a, b) | Sub (a, b) | Mul (a, b) | Eq (a, b) | Ne (a, b) | Lt (a, b)
  | And (a, b) | Or (a, b) ->
      expr_regs (expr_regs acc a) b
  | Not a -> expr_regs acc a

let rec stmt_regs acc = function
  | Load (r, { index; _ }) ->
      let acc = r :: acc in
      Option.fold ~none:acc ~some:(expr_regs acc) index
  | Store ({ index; _ }, e) ->
      let acc = expr_regs acc e in
      Option.fold ~none:acc ~some:(expr_regs acc) index
  | Assign (r, e) -> expr_regs (r :: acc) e
  | Atomic body | While (_, body) -> List.fold_left stmt_regs acc body
  | If (c, t, e) ->
      let acc = expr_regs acc c in
      List.fold_left stmt_regs (List.fold_left stmt_regs acc t) e
  | Abort | Fence _ | Skip -> acc

let thread_regs th = List.sort_uniq String.compare (List.fold_left stmt_regs [] th)

let rec stmt_has_atomic = function
  | Atomic _ -> true
  | If (_, t, e) -> List.exists stmt_has_atomic t || List.exists stmt_has_atomic e
  | While (_, b) -> List.exists stmt_has_atomic b
  | _ -> false

(* Static sanity: aborts only inside atomic, no nested atomics, no fences
   inside atomic, and every load/store/fence names a declared location
   (typos otherwise silently create fresh, never-initialized locations). *)
let validate p =
  let declared_exactly x = List.mem x p.locs in
  (* "z" is a declared array base when some cell "z[...]" is declared *)
  let declared_base x =
    let prefix = x ^ "[" in
    let plen = String.length prefix in
    List.exists
      (fun l -> String.length l >= plen && String.equal (String.sub l 0 plen) prefix)
      p.locs
  in
  let check_lval ~thread { base; index } =
    match index with
    | None ->
        if declared_exactly base then Ok ()
        else
          Error
            (Fmt.str "thread %d: undeclared location %S%s" thread base
               (if declared_base base then
                  " (only cells of this array are declared; index it)"
                else ""))
    | Some _ ->
        if declared_base base then Ok ()
        else
          Error
            (Fmt.str "thread %d: undeclared array %S (no cell %s[...] in locs)"
               thread base base)
  in
  let rec check_stmt ~thread ~in_txn s =
    match s with
    | Atomic body ->
        if in_txn then Error "nested atomic block"
        else
          List.fold_left
            (fun acc s ->
              Result.bind acc (fun () -> check_stmt ~thread ~in_txn:true s))
            (Ok ()) body
    | Abort -> if in_txn then Ok () else Error "abort outside atomic"
    | Fence x ->
        if in_txn then Error "fence inside atomic"
        else if declared_exactly x || declared_base x then Ok ()
        else Error (Fmt.str "thread %d: fence on undeclared location %S" thread x)
    | If (_, t, e) ->
        List.fold_left
          (fun acc s -> Result.bind acc (fun () -> check_stmt ~thread ~in_txn s))
          (Ok ()) (t @ e)
    | While (_, b) ->
        List.fold_left
          (fun acc s -> Result.bind acc (fun () -> check_stmt ~thread ~in_txn s))
          (Ok ()) b
    | Load (_, lv) -> check_lval ~thread lv
    | Store (lv, _) -> check_lval ~thread lv
    | Assign _ | Skip -> Ok ()
  in
  List.fold_left
    (fun acc (thread, th) ->
      Result.bind acc (fun () ->
          List.fold_left
            (fun acc s ->
              Result.bind acc (fun () -> check_stmt ~thread ~in_txn:false s))
            (Ok ()) th))
    (Ok ())
    (List.mapi (fun i th -> (i, th)) p.threads)

(* -- pretty printing ------------------------------------------------------- *)

let rec pp_expr ppf = function
  | Int n -> Fmt.int ppf n
  | Reg r -> Fmt.string ppf r
  | Add (a, b) -> Fmt.pf ppf "(%a + %a)" pp_expr a pp_expr b
  | Sub (a, b) -> Fmt.pf ppf "(%a - %a)" pp_expr a pp_expr b
  | Mul (a, b) -> Fmt.pf ppf "(%a * %a)" pp_expr a pp_expr b
  | Eq (a, b) -> Fmt.pf ppf "(%a = %a)" pp_expr a pp_expr b
  | Ne (a, b) -> Fmt.pf ppf "(%a != %a)" pp_expr a pp_expr b
  | Lt (a, b) -> Fmt.pf ppf "(%a < %a)" pp_expr a pp_expr b
  | Not a -> Fmt.pf ppf "!%a" pp_expr a
  | And (a, b) -> Fmt.pf ppf "(%a && %a)" pp_expr a pp_expr b
  | Or (a, b) -> Fmt.pf ppf "(%a || %a)" pp_expr a pp_expr b

let pp_lval ppf { base; index } =
  match index with
  | None -> Fmt.string ppf base
  | Some e -> Fmt.pf ppf "%s[%a]" base pp_expr e

let rec pp_stmt ppf = function
  | Load (r, lv) -> Fmt.pf ppf "%s := %a" r pp_lval lv
  | Store (lv, e) -> Fmt.pf ppf "%a := %a" pp_lval lv pp_expr e
  | Assign (r, e) -> Fmt.pf ppf "%s := %a" r pp_expr e
  | Atomic body -> Fmt.pf ppf "atomic { %a }" pp_body body
  | Abort -> Fmt.string ppf "abort"
  | If (c, t, []) -> Fmt.pf ppf "if %a { %a }" pp_expr c pp_body t
  | If (c, t, e) ->
      Fmt.pf ppf "if %a { %a } else { %a }" pp_expr c pp_body t pp_body e
  | While (c, b) -> Fmt.pf ppf "while %a { %a }" pp_expr c pp_body b
  | Fence x -> Fmt.pf ppf "fence(%s)" x
  | Skip -> Fmt.string ppf "skip"

and pp_body ppf body = Fmt.(list ~sep:(any ";@ ") pp_stmt) ppf body

let pp_program ppf p =
  Fmt.pf ppf "@[<v>%s:@,%a@]" p.name
    Fmt.(
      list ~sep:cut (fun ppf (i, th) ->
          Fmt.pf ppf "  t%d: @[%a@]" i pp_body th))
    (List.mapi (fun i th -> (i, th)) p.threads)
