lib/exec/stability.ml: Action Enumerate Fun Hb Lift List Race Rat Sequentiality String Tmx_core Trace
