test/test_closure.ml: Action Alcotest Array Closure Consistency Enumerate Fmt List Model Option Tb Tmx_core Tmx_exec Tmx_lang Tmx_litmus Trace Wellformed
