(** The content-addressed verdict cache.

    Enumeration verdicts are pure: a (program, model, enumeration
    config) triple fully determines the execution set, so the cache key
    is [MD5 (canonical program text, model name, config key, format
    version)] — see [Tmx_lang.Canon] for the canonical form (stable
    under reformatting, loc reordering, and renaming) and
    [Tmx_exec.Enumerate.config_key] for why [jobs] is excluded.

    One JSON file per key under [dir], written to a temp file in the
    same directory and [rename]d into place so concurrent writers and
    crashed processes can never expose a torn entry.  Loads are
    corruption-tolerant: any read, parse, or shape failure is a miss
    (never an exception), counted in {!stats}.  An in-memory LRU front
    (shared across domains behind a mutex) short-circuits the disk.

    With [shards = n > 1] the store is sharded by digest prefix: a
    key's entry lives under [dir/shard-XX/] where [XX] is the key's
    first two hex digits reduced mod [n], and each shard has its own
    lock, LRU slice and counters.  Shards are shared-nothing — no two
    ever touch the same file — so damage to one (corruption, deletion)
    leaves the others serving, and domains working different shards
    never contend.  A digest shorter than the two-character shard
    prefix is rejected with [Invalid_argument] (truncated keys would
    alias into one shard and shadow each other). *)

open Tmx_core
open Tmx_lang
open Tmx_exec

type verdict = {
  result : Enumerate.result;
  races : (int * int) list array;
      (** per execution (same order as [result.executions]): its
          L-races under the keyed model's happens-before *)
  mixed : bool array;  (** per execution: has a mixed race *)
  lint_race_free : bool;
  lint_findings : int;
  lint_mixed : int;
}

val compute : config:Enumerate.config -> Model.t -> Ast.program -> verdict
(** Enumerate and derive the full verdict — the cache-miss path, also
    usable standalone (no cache involved). *)

type t

val format_version : string
(** Bumped whenever the entry schema or any verdict-affecting semantics
    change; part of the key, so stale entries become unreachable rather
    than wrong.  [tmx cache gc] reclaims them. *)

val default_dir : unit -> string
(** [$TMX_CACHE_DIR] if set, else [".tmx-cache"]. *)

val create :
  ?version:string -> ?capacity:int -> ?shards:int -> dir:string -> unit -> t
(** Opens (and creates if needed) the store at [dir].  [capacity]
    bounds the in-memory LRU front (default 128 entries, split across
    shards); [shards] (default 1: the flat legacy layout) shards the
    store by digest prefix; [version] overrides {!format_version}
    (tests use this to pin version-mismatch invalidation). *)

val dir : t -> string
val shard_count : t -> int
val key : t -> config:Enumerate.config -> Model.t -> Ast.program -> string

val shard_index : t -> string -> int
(** Which shard a key lands in.
    @raise Invalid_argument when the digest is shorter than the
    two-character shard prefix (or not hex). *)

val entry_path : t -> string -> string
(** On-disk path of a key's entry (exists only after a store); inside
    the key's [shard-XX/] directory when the store is sharded.
    @raise Invalid_argument as {!shard_index}. *)

val find :
  t -> config:Enumerate.config -> Model.t -> Ast.program -> verdict option

val store :
  t -> config:Enumerate.config -> Model.t -> Ast.program -> verdict -> unit

val memo :
  t ->
  config:Enumerate.config ->
  Model.t ->
  Ast.program ->
  verdict * [ `Hit | `Miss ]
(** [find], else [compute] + [store]. *)

val memo_run :
  t -> config:Enumerate.config -> Model.t -> Ast.program -> Enumerate.result
(** {!memo} projected to the enumeration result — the shape of
    [Enumerate.run], pluggable as [Litmus.run ~enumerate]. *)

type stats = {
  hits : int;
  misses : int;
  stores : int;
  evictions : int;  (** LRU front evictions (disk entries remain) *)
  load_failures : int;  (** corrupt / unreadable entries served as misses *)
}

val stats : t -> stats
val resident : t -> int
(** Entries currently in the LRU front (bounded by [capacity]). *)

(** {1 Maintenance} — operate on a directory, no [t] needed. *)

type disk_stats = {
  entries : int;  (** total entry files *)
  bytes : int;  (** their cumulative size *)
  current : int;  (** entries readable under [version] *)
  stale : int;  (** readable, but written by another version *)
  corrupt : int;  (** unreadable or malformed *)
}

val disk_stats : ?version:string -> dir:string -> unit -> disk_stats
val gc : ?version:string -> dir:string -> unit -> int
(** Delete stale and corrupt entries; returns how many were removed. *)

val clear : dir:string -> int
(** Delete every entry; returns how many were removed. *)
