(** Active-transaction registry: the grace-period machinery behind the
    quiescence fence (§5).

    Each domain owns a private slot (allocated on first use, never
    shared or recycled) holding a single generation word — odd while a
    transaction is in flight — and the transaction's declared footprint
    if any; {!quiesce} waits until every relevant transaction active at
    the call has resolved (RCU-style).  The single-word state makes the
    fence's snapshot consistent: a footprint is only trusted if the
    generation word is unchanged across its read. *)

val enter : ?footprint:int list -> unit -> unit
(** Mark this domain's transaction as in flight.  [footprint] is the set
    of {!Tvar} ids the transaction promises to confine itself to; it
    enables location-selective fences. *)

val exit : unit -> unit
(** Mark it resolved. *)

val quiesce : ?var:int -> unit -> unit
(** Return once every relevant in-flight transaction has resolved:
    all of them for a global fence, or — when [var] is given — those
    whose declared footprint contains [var] plus all undeclared ones. *)

val registered_domains : unit -> int
(** How many domains have ever allocated a slot (diagnostics; grows
    monotonically, one per domain that ran a transaction). *)
