(* NDJSON request/response framing for tmx serve. *)

type request = {
  id : Json.t option;
  verb : string;
  name : string option;
  program : string option;
  model : string;
  deadline_ms : int option;
  subrequests : request list;
}

let rec request_of_json j =
  match Json.mem "verb" j with
  | None -> Error "request has no \"verb\""
  | Some verb -> (
      match Json.to_str verb with
      | None -> Error "\"verb\" must be a string"
      | Some verb -> (
          let str_field k = Option.bind (Json.mem k j) Json.to_str in
          let subrequests =
            match Option.bind (Json.mem "requests" j) Json.to_list with
            | None -> Ok []
            | Some subs ->
                List.fold_left
                  (fun acc sub ->
                    Result.bind acc (fun acc ->
                        Result.map (fun r -> r :: acc) (request_of_json sub)))
                  (Ok []) subs
                |> Result.map List.rev
          in
          match subrequests with
          | Error e -> Error e
          | Ok subrequests ->
              Ok
                {
                  id = Json.mem "id" j;
                  verb;
                  name = str_field "name";
                  program = str_field "program";
                  model = Option.value ~default:"pm" (str_field "model");
                  deadline_ms =
                    Option.bind (Json.mem "deadline_ms" j) Json.to_int;
                  subrequests;
                }))

let of_line line =
  match Json.of_string line with
  | Error e -> Error (Printf.sprintf "bad JSON: %s" e)
  | Ok j -> request_of_json j

let rec to_json r =
  let fields =
    List.filter_map Fun.id
      [
        Option.map (fun id -> ("id", id)) r.id;
        Some ("verb", Json.str r.verb);
        Option.map (fun n -> ("name", Json.str n)) r.name;
        Option.map (fun p -> ("program", Json.str p)) r.program;
        (if r.model = "pm" then None else Some ("model", Json.str r.model));
        Option.map (fun d -> ("deadline_ms", Json.int d)) r.deadline_ms;
        (match r.subrequests with
        | [] -> None
        | subs -> Some ("requests", Json.Arr (List.map to_json subs)));
      ]
  in
  Json.Obj fields

let base ?id ~verb ok_ =
  List.filter_map Fun.id
    [
      Some ("ok", Json.bool ok_);
      Some ("verb", Json.str verb);
      Option.map (fun id -> ("id", id)) id;
    ]

let ok ?id ~verb fields = Json.Obj (base ?id ~verb true @ fields)
let error ?id ~verb msg = Json.Obj (base ?id ~verb false @ [ ("error", Json.str msg) ])

let overloaded ?id ~verb () =
  Json.Obj
    (base ?id ~verb false
    @ [ ("error", Json.str "overloaded"); ("overloaded", Json.bool true) ])

let response_overloaded j =
  match Option.bind (Json.mem "overloaded" j) Json.to_bool with
  | Some b -> b
  | None -> false

let response_ok j =
  match Option.bind (Json.mem "ok" j) Json.to_bool with
  | Some b -> b
  | None -> false
