open Tmx_core

let check_rat = Alcotest.testable Rat.pp Rat.equal

let test_normalization () =
  Alcotest.(check check_rat) "6/4 = 3/2" (Rat.make 3 2) (Rat.make 6 4);
  Alcotest.(check check_rat) "-1/-2 = 1/2" (Rat.make 1 2) (Rat.make (-1) (-2));
  Alcotest.(check check_rat) "2/-4 = -1/2" (Rat.make (-1) 2) (Rat.make 2 (-4));
  Alcotest.(check check_rat) "0/7 = 0" Rat.zero (Rat.make 0 7)

let test_zero_denominator () =
  Alcotest.check_raises "zero denominator" (Invalid_argument "Rat.make: zero denominator")
    (fun () -> ignore (Rat.make 1 0))

let test_compare () =
  Alcotest.(check bool) "1/2 < 2/3" true (Rat.lt (Rat.make 1 2) (Rat.make 2 3));
  Alcotest.(check bool) "not 2/3 < 1/2" false (Rat.lt (Rat.make 2 3) (Rat.make 1 2));
  Alcotest.(check bool) "-1 < 0" true (Rat.lt (Rat.of_int (-1)) Rat.zero);
  Alcotest.(check bool) "leq equal" true (Rat.leq Rat.one Rat.one)

let test_arith () =
  Alcotest.(check check_rat) "1/2 + 1/3 = 5/6" (Rat.make 5 6)
    (Rat.add (Rat.make 1 2) (Rat.make 1 3));
  Alcotest.(check check_rat) "1/2 - 1/3 = 1/6" (Rat.make 1 6)
    (Rat.sub (Rat.make 1 2) (Rat.make 1 3));
  Alcotest.(check check_rat) "succ 1/2 = 3/2" (Rat.make 3 2) (Rat.succ (Rat.make 1 2));
  Alcotest.(check check_rat) "pred 1/2 = -1/2" (Rat.make (-1) 2) (Rat.pred (Rat.make 1 2))

let test_between () =
  let m = Rat.between Rat.zero Rat.one in
  Alcotest.(check check_rat) "midpoint 0 1 = 1/2" (Rat.make 1 2) m;
  Alcotest.(check bool) "0 < mid" true (Rat.lt Rat.zero m);
  Alcotest.(check bool) "mid < 1" true (Rat.lt m Rat.one)

let test_pp () =
  Alcotest.(check string) "int prints bare" "3" (Rat.to_string (Rat.of_int 3));
  Alcotest.(check string) "fraction" "3/2" (Rat.to_string (Rat.make 3 2))

let small_rat =
  QCheck.map
    (fun (n, d) -> Rat.make n (1 + abs d))
    QCheck.(pair (int_range (-50) 50) (int_range 0 20))

let prop_between_strict =
  QCheck.Test.make ~name:"between lies strictly between" ~count:500
    (QCheck.pair small_rat small_rat) (fun (a, b) ->
      QCheck.assume (Rat.lt a b);
      let m = Rat.between a b in
      Rat.lt a m && Rat.lt m b)

let prop_add_comm =
  QCheck.Test.make ~name:"addition commutes" ~count:500
    (QCheck.pair small_rat small_rat) (fun (a, b) ->
      Rat.equal (Rat.add a b) (Rat.add b a))

let prop_compare_total =
  QCheck.Test.make ~name:"compare antisymmetric" ~count:500
    (QCheck.pair small_rat small_rat) (fun (a, b) ->
      Rat.compare a b = -Rat.compare b a)

let prop_roundtrip =
  QCheck.Test.make ~name:"sub then add roundtrips" ~count:500
    (QCheck.pair small_rat small_rat) (fun (a, b) ->
      Rat.equal a (Rat.add (Rat.sub a b) b))

let suite =
  [
    Alcotest.test_case "normalization" `Quick test_normalization;
    Alcotest.test_case "zero denominator" `Quick test_zero_denominator;
    Alcotest.test_case "compare" `Quick test_compare;
    Alcotest.test_case "arithmetic" `Quick test_arith;
    Alcotest.test_case "between" `Quick test_between;
    Alcotest.test_case "printing" `Quick test_pp;
    Tb.qcheck prop_between_strict;
    Tb.qcheck prop_add_comm;
    Tb.qcheck prop_compare_total;
    Tb.qcheck prop_roundtrip;
  ]
