lib/exec/outcome.mli: Fmt
