open Tmx_core
open Tmx_exec
open Tb

let pm = Model.programmer

(* every consistent execution is opaque (the paper: SC-LTRF guarantees
   opacity, including aborted transactions) *)
let test_catalog_opaque () =
  List.iter
    (fun (l : Tmx_litmus.Litmus.t) ->
      List.iter
        (fun (e : Enumerate.execution) ->
          Alcotest.(check bool)
            (Fmt.str "%s: execution opaque" l.name)
            true
            (Opacity.check ~model:pm e.trace))
        (Enumerate.run pm l.program).executions)
    Tmx_litmus.Catalog.all

let prop_random_opaque =
  QCheck.Test.make ~name:"random-program executions are opaque" ~count:60
    Test_theorems.arb_program (fun p ->
      List.for_all
        (fun (e : Enumerate.execution) -> Opacity.check ~model:pm e.trace)
        (Enumerate.run pm p).executions)

(* the forbidden opacity-IRIW shape, as a hand-built trace: well-formed
   but not serializable *)
let test_non_opaque_rejected () =
  let t =
    mk ~locs:[ "x"; "y" ]
      [
        b 0; w 0 "x" 1 1; c 0;
        b 1; w 1 "y" 1 1; c 1;
        b 2; r 2 "x" 1 1; r 2 "y" 0 0; a 2;
        b 3; r 3 "y" 1 1; r 3 "x" 0 0; a 3;
      ]
  in
  (* the shape admits no well-formed linearization (WF10 fails whichever
     way the stale reads are placed) — which is exactly why the model
     forbids it; the opacity checker rejects it via the causality cycle *)
  Alcotest.(check bool) "not opaque" false (Opacity.check ~model:pm t);
  Alcotest.(check (option (list int))) "no serialization" None
    (Opacity.serialization pm t)

let test_aborted_reads_validated () =
  (* a torn aborted read on transactional locations must fail the replay
     even when a serialization exists *)
  let t =
    mk ~locs:[ "x"; "y" ]
      [
        b 0; w 0 "x" 1 1; w 0 "y" 1 1; c 0;
        b 1; r 1 "x" 1 1; r 1 "y" 0 0; a 1;
      ]
  in
  Alcotest.(check bool) "torn snapshot not opaque" false (Opacity.check ~model:pm t);
  Alcotest.(check bool) "and indeed inconsistent" false (Consistency.consistent pm t)

let test_mixed_locations_excluded () =
  let t =
    mk ~locs:[ "x"; "y" ]
      [ w 0 "x" 1 1; b 1; w 1 "y" 1 1; c 1 ]
  in
  Alcotest.(check (list string)) "only y is purely transactional" [ "y" ]
    (Opacity.transactional_only_locs t)

let suite =
  [
    Alcotest.test_case "catalog executions opaque" `Slow test_catalog_opaque;
    Tb.qcheck prop_random_opaque;
    Alcotest.test_case "non-opaque rejected" `Quick test_non_opaque_rejected;
    Alcotest.test_case "aborted reads validated" `Quick test_aborted_reads_validated;
    Alcotest.test_case "mixed locations excluded" `Quick test_mixed_locations_excluded;
  ]
