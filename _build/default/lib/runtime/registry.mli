(** Active-transaction registry: the grace-period machinery behind the
    quiescence fence (§5).

    Each domain owns a slot recording whether a transaction is in flight,
    a per-transaction sequence number, and the transaction's declared
    footprint if any; {!quiesce} waits until every relevant transaction
    active at the call has resolved (RCU-style). *)

val enter : ?footprint:int list -> unit -> unit
(** Mark this domain's transaction as in flight.  [footprint] is the set
    of {!Tvar} ids the transaction promises to confine itself to; it
    enables location-selective fences. *)

val exit : unit -> unit
(** Mark it resolved. *)

val quiesce : ?var:int -> unit -> unit
(** Return once every relevant in-flight transaction has resolved:
    all of them for a global fence, or — when [var] is given — those
    whose declared footprint contains [var] plus all undeclared ones. *)
