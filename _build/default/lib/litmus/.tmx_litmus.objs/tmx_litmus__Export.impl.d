lib/litmus/export.ml: Ast Buffer Fmt List String Tmx_lang
