(* L-sequentiality (§4).

   An action c at position i is L-sequential if it does not touch L, or
   is a transaction boundary, or:
     (1) no earlier b with c ww b   (writes get maximal timestamps), and
     (2) if a wr c then no earlier b with a ww b  (reads see the newest
         earlier write).

   In both conditions we restrict the obscuring write b to nonaborted
   writes.  The paper's text does not state the restriction, but its proof
   of Lemma A.4 (every L-weak action participates in an L-race) derives
   "c rw b" from condition (2) — and rw excludes aborted b by definition —
   and an L-race with an aborted b is impossible since aborted actions
   never conflict.  Without the restriction, a read following an aborted
   write could be L-weak yet race-free, contradicting the lemma.

   A trace is transactionally L-sequential when every action is
   L-sequential and every transaction is contiguous. *)

let touches_l l t i =
  match Action.loc_of (Trace.act t i) with
  | None -> false
  | Some x -> ( match l with None -> true | Some locs -> List.mem x locs)

let l_sequential_action ?l t i =
  if not (touches_l l t i) then true
  else
    match Trace.act t i with
    | Action.Begin | Action.Commit | Action.Abort | Action.Qfence _ -> true
    | Action.Write { loc; ts; _ } | Action.Read { loc; ts; _ } ->
        (* no earlier nonaborted same-location write with a later
           timestamp *)
        let rec ok b =
          b >= i
          ||
          (match Trace.act t b with
          | Action.Write w
            when String.equal w.loc loc && Rat.lt ts w.ts
                 && Trace.is_nonaborted t b ->
              false
          | _ -> ok (b + 1))
        in
        ok 0

let l_weak ?l t i = not (l_sequential_action ?l t i)

let l_sequential ?l t =
  let n = Trace.length t in
  let rec go i = i >= n || (l_sequential_action ?l t i && go (i + 1)) in
  go 0

let transactionally_l_sequential ?l t =
  l_sequential ?l t && Trace.all_txns_contiguous t

(* Positions of L-weak actions, for diagnostics. *)
let weak_positions ?l t =
  let acc = ref [] in
  for i = Trace.length t - 1 downto 0 do
    if l_weak ?l t i then acc := i :: !acc
  done;
  !acc
