lib/core/sequentiality.ml: Action List Rat String Trace
