(** The litmus programming language: the minimal imperative language the
    paper writes its examples in.

    Threads operate on private registers and shared locations;
    transactions are [atomic { ... }] blocks that may abort explicitly;
    the quiescence fence of §5 is a statement.  Array cells ([z[r]] in
    examples 3.5 and D.4) are computed location names: location ["z"]
    with an index expression denotes the cell ["z[v]"]. *)

type reg = string

type expr =
  | Int of int
  | Reg of reg
  | Add of expr * expr
  | Sub of expr * expr
  | Mul of expr * expr
  | Eq of expr * expr
  | Ne of expr * expr
  | Lt of expr * expr
  | Not of expr
  | And of expr * expr
  | Or of expr * expr

type lval = { base : string; index : expr option }
(** A location reference: a plain name, or an array cell with a computed
    index. *)

type stmt =
  | Load of reg * lval  (** [r := x] *)
  | Store of lval * expr  (** [x := e] *)
  | Assign of reg * expr  (** register-only assignment *)
  | Atomic of stmt list
  | Abort  (** aborts the enclosing transaction *)
  | If of expr * stmt list * stmt list
  | While of expr * stmt list
  | Fence of string  (** the quiescence fence [Qx] of §5 *)
  | Skip

type thread = stmt list
type program = { name : string; locs : string list; threads : thread list }

(** {1 Constructors} *)

val int : int -> expr
val reg : reg -> expr
val not_ : expr -> expr

(** Operator spellings for writing programs compactly; open locally
    ([Ast.Infix.(...)]) since they shadow the stdlib comparisons. *)
module Infix : sig
  val ( + ) : expr -> expr -> expr
  val ( - ) : expr -> expr -> expr
  val ( * ) : expr -> expr -> expr
  val ( = ) : expr -> expr -> expr
  val ( <> ) : expr -> expr -> expr
  val ( < ) : expr -> expr -> expr
  val ( && ) : expr -> expr -> expr
  val ( || ) : expr -> expr -> expr
end

val loc : string -> lval
val cell : string -> expr -> lval
val load : reg -> lval -> stmt
val store : lval -> expr -> stmt
val assign : reg -> expr -> stmt
val atomic : stmt list -> stmt
val abort : stmt
val if_ : expr -> stmt list -> stmt list -> stmt

val when_ : expr -> stmt list -> stmt
(** [if_ c body []]. *)

val while_ : expr -> stmt list -> stmt
val fence : string -> stmt
val skip : stmt
val program : ?name:string -> locs:string list -> thread list -> program

(** {1 Analysis} *)

val thread_regs : thread -> reg list
(** All register names a thread mentions, sorted, without duplicates. *)

val stmt_has_atomic : stmt -> bool

val validate : program -> (unit, string) result
(** Static sanity: no nested atomic blocks, no abort outside a block, no
    fence inside a block, and every load, store and fence names a
    declared location — a bare name must be in [locs], an indexed access
    [z\[e\]] needs some declared cell [z\[...\]], and a fence may name
    either.  Undeclared names are typos that would otherwise silently
    create fresh, never-initialized locations. *)

(** {1 Printing} *)

val pp_expr : expr Fmt.t
val pp_lval : lval Fmt.t
val pp_stmt : stmt Fmt.t
val pp_body : stmt list Fmt.t
val pp_program : program Fmt.t
