lib/opt/soundness.ml: Enumerate Fmt List Outcome Tmx_exec Tmx_lang Transform
