(** Litmus test harness: a named program plus machine-checkable
    expectations — outcome verdicts, execution-trace claims, race claims.

    The paper's examples live in {!Catalog}; the systematic shape
    families in {!Shapes}. *)

open Tmx_core
open Tmx_exec

type expect = Allowed | Forbidden

val pp_expect : expect Fmt.t

type check =
  | Outcome_check of {
      model : Model.t;
      descr : string;
      cond : Outcome.t -> bool;
      expect : expect;
    }  (** does some consistent execution reach a matching outcome? *)
  | Exec_check of {
      model : Model.t;
      descr : string;
      pred : Trace.t -> bool;
      expect : expect;
    }
      (** does some consistent execution's trace satisfy the predicate?
          Used for claims about aborted transactions, whose register
          observations roll back and never reach an outcome. *)
  | Race_check of {
      model : Model.t;
      descr : string;
      cond : (Outcome.t -> bool) option;
      l : string list option;
      expect : [ `All_race_free | `Some_racy ];
    }  (** raciness of the executions matching [cond] *)
  | Mixed_race_check of { model : Model.t; descr : string; expect : bool }

val txn_reads : Trace.t -> int -> (string * int) list
(** The location/value pairs read by the transaction beginning at the
    given position. *)

val aborted_txn_with_reads : (string * int) list -> Trace.t -> bool
val plain_read_of : string -> int -> Trace.t -> bool

type t = {
  name : string;
  section : string;  (** paper locus, e.g. "§2 Example 2.1" *)
  description : string;
  program : Tmx_lang.Ast.program;
  checks : check list;
}

val model_of_check : check -> Model.t
val descr_of_check : check -> string

type check_result = { check : check; ok : bool; detail : string }

type report = {
  litmus : t;
  results : check_result list;
  truncated : bool;
  capped : bool;
  lint : Tmx_analysis.Lint.report;
      (** the static analyzer's verdict, recorded next to the exhaustive
          one (computed without enumeration) *)
}

val passed : report -> bool

val run :
  ?config:Enumerate.config ->
  ?enumerate:(config:Enumerate.config -> Model.t -> Tmx_lang.Ast.program -> Enumerate.result) ->
  t ->
  report
(** Run every check, enumerating once per distinct model.

    [enumerate] (default [Enumerate.run]) is how each per-model
    enumeration is obtained; [Tmx_service.Cache.memo_run] plugs in here
    to serve enumerations from the verdict cache (`tmx litmus --cache`)
    without this library depending on the service layer.  Any
    replacement must be extensionally equal to [Enumerate.run] — the
    report is trusted downstream. *)

val pp_report : report Fmt.t
