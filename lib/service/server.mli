(** The [tmx serve] daemon: a multi-domain NDJSON query service over a
    Unix socket, backed by the verdict {!Cache}.

    [workers] domains block in [accept] on one listening socket; each
    owns its connection for the connection's lifetime, so up to
    [workers] clients are served concurrently (further connects queue
    in the kernel backlog).  All workers share one {!Cache.t} and one
    {!Metrics.t}.

    Per-request deadlines are cooperative: the deadline is checked
    before enumeration starts and, for [batch], between sub-requests —
    an in-flight enumeration is never killed mid-way (its store is
    still useful and the cache must never hold torn entries), so
    cancellation is graceful by construction.  A missed deadline
    produces an ["deadline exceeded"] error response, not a dropped
    connection.

    A client disconnecting mid-request only tears down that connection:
    the write failure (SIGPIPE is ignored; [EPIPE] is caught) is
    contained and the worker returns to [accept]. *)

type config = {
  socket : string;  (** Unix-domain socket path (note the ~100-char OS limit) *)
  cache_dir : string;
  cache_capacity : int;  (** LRU front bound *)
  workers : int;  (** accept-loop domains *)
  jobs : int;  (** [Tmx_exec.Pool] width for [batch] fan-out *)
  enum : Tmx_exec.Enumerate.config;  (** enumeration config for every request *)
  verbose : bool;  (** log requests to stderr *)
}

val default_config : socket:string -> config
(** workers 2, jobs 1, cache dir {!Cache.default_dir}, capacity 128. *)

type t

val start : config -> t
(** Binds, listens, spawns the workers, returns immediately.
    @raise Unix.Unix_error when the socket cannot be bound. *)

val cache : t -> Cache.t

val stopping : t -> bool
(** Has a [shutdown] request (or {!stop}) been seen? *)

val stop : t -> unit
(** Idempotent: signal the workers, wake any blocked [accept], join the
    worker domains, close and unlink the socket. *)

val wait : t -> unit
(** Block until the server stops (a [shutdown] request arrives), then
    clean up as {!stop}. *)
