lib/core/wellformed.mli: Fmt Trace
