(** Static access summaries: every load/store of a program, per thread
    and per location, with the conservative facts the static race
    analysis needs.

    Computed-index cells ([z\[r\]]) are summarized by the wildcard
    footprint name [z\[*\]], as in {!Tmx_opt.Footprint}: the wildcard
    clashes with every declared cell of the array. *)

open Tmx_lang

type mode = Plain | Transactional
type kind = Read | Write

val pp_mode : mode Fmt.t
val pp_kind : kind Fmt.t

type t = {
  thread : int;
  kind : kind;
  mode : mode;
  loc : string;  (** footprint name; ["z[*]"] for computed cells *)
  path : string;  (** source path, e.g. ["t1.0.atomic.1.then.0"] *)
  stmt : Ast.stmt;  (** the load/store itself *)
  walk : int;
      (** static walk index within the thread (every statement consumes
          one); in a loop-free thread, executed statements execute in
          strictly increasing walk order *)
  in_loop : bool;  (** the access sits inside a [while] body *)
  nonzero_guards : string list;
      (** registers that every dominating branch condition pins nonzero
          whenever this access executes (e.g. the then-branch of
          [if r { ... }], or the else-branch of [if r = 0 { ... }]) *)
  must_abort : bool;
      (** every control path from this access to the end of its
          enclosing transaction hits an [abort], so no dynamic instance
          of the access is ever nonaborted — per-access, so a write in
          an always-aborting branch qualifies even when the transaction
          can also commit *)
  fences_before : string list;
      (** fence locations crossed on every path from the thread start to
          this access *)
  fences_after : string list;
      (** fence locations crossed on every path from this access to the
          thread end *)
  after_atomic : bool;
      (** some atomic block precedes this access in its thread (the
          privatization-shaped suffix of {!Tmx_opt.Fenceify}) *)
  txn_reads : string list;
      (** locations read by the enclosing transaction; empty when plain *)
  txn_writes : string list;
      (** locations written by the enclosing transaction; empty when
          plain *)
  prior_atomic_writes : string list;
      (** locations written by atomic blocks preceding this access in
          its thread *)
  prior_atomic_reads : string list;
      (** locations read by atomic blocks preceding this access in its
          thread *)
  later_atomic_writes : string list;
      (** locations written by atomic blocks following this access in
          its thread (publication-shaped prefix) *)
}

val pp : t Fmt.t

val txn_prefix : string -> string option
(** The path prefix of the enclosing atomic block, if any:
    [txn_prefix "t1.0.atomic.2.then.0" = Some "t1.0.atomic"].  Atomics
    never nest, so the prefix is unique. *)

(** {1 Program-wide context for {!Order}'s guard-dominance rule} *)

type def = {
  def_thread : int;
  reg : string;  (** the register defined *)
  from_load : string option;
      (** the footprint name loaded when the def is [r := x]; [None]
          for register-only assignments *)
  def_walk : int;
  def_txn : string option;
      (** enclosing atomic path when the def is transactional *)
  def_in_loop : bool;
}

type context = {
  ctx_accesses : t list;  (** every access of the program *)
  ctx_defs : def list;  (** every register definition of the program *)
  ctx_loops : bool array;  (** per thread: does it contain a [while]? *)
}

val context : Ast.program -> context

val body_must_abort : Ast.stmt list -> bool
(** Does every control path through a transaction body hit an [abort]?
    Conservative: loops stop the scan, so [false] may be returned for
    bodies that do always abort, never the converse. *)

val of_thread : int -> Ast.thread -> t list
val of_program : Ast.program -> t list

(** {1 Per-location classification} *)

type counts = {
  plain_reads : int;
  plain_writes : int;
  tx_reads : int;
  tx_writes : int;
}

val no_counts : counts

type class_ = Unused | Plain_only | Tx_only | Mixed

val pp_class : class_ Fmt.t
val class_of_counts : counts -> class_

type summary = {
  loc : string;
  class_ : class_;
  counts : counts;
  threads : int list;  (** threads touching the location *)
}

val summaries : Ast.program -> summary list
(** One summary per declared location (in declaration order), followed
    by any undeclared footprint names the program mentions. *)

val thread_summaries : Ast.program -> (int * summary) list
(** The per-thread, per-location table; unused rows omitted. *)
