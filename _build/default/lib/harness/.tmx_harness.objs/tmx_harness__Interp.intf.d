lib/harness/interp.mli: Tmx_exec Tmx_lang Tmx_runtime
