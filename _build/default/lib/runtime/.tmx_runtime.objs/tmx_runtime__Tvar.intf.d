lib/runtime/tvar.mli: Fmt
