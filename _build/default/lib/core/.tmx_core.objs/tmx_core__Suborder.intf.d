lib/core/suborder.mli: Lift Rel
