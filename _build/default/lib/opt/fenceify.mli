(** Realizing the programmer model on an implementation-model STM (§6):
    insert quiescence fences before plain accesses to mixed-mode
    locations, and check the paper's correctness criterion — the fenced
    program is mixed-race free in the implementation model (Lemma 5.1's
    precondition) and its implementation-model outcomes are contained in
    the original program's programmer-model outcomes. *)

type policy =
  [ `Every_mixed_access  (** maximally conservative *)
  | `After_transactions
    (** only accesses that follow an atomic block in their thread —
        publication-shaped prefixes need no fence *) ]

val mixed_locations : Tmx_lang.Ast.program -> string list

val insert : ?policy:policy -> Tmx_lang.Ast.program -> Tmx_lang.Ast.program

val count_fences : Tmx_lang.Ast.program -> int

type report = {
  fences : int;
  mixed_race_free : bool;
  outcomes_contained : bool;
  realizes : bool;
}

val realizes :
  ?config:Tmx_exec.Enumerate.config ->
  ?policy:policy ->
  Tmx_lang.Ast.program ->
  report
