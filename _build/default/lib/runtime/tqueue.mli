(** A bounded transactional FIFO queue (ring buffer of {!Tvar}s).

    Operations compose with any other transactional code: a pop from one
    queue and a push to another can be a single atomic step. *)

type t

val create : capacity:int -> t
val capacity : t -> int
val length : Stm.tx -> t -> int
val is_empty : Stm.tx -> t -> bool
val is_full : Stm.tx -> t -> bool

val push : Stm.tx -> t -> int -> bool
(** [false] when full. *)

val pop : Stm.tx -> t -> int option
val peek : Stm.tx -> t -> int option

val push_exn : Stm.tx -> t -> int -> unit
(** Aborts the transaction when full. *)

val pop_exn : Stm.tx -> t -> int
(** Aborts the transaction when empty. *)
