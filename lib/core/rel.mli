(** Binary relations over trace positions, with the little relation
    calculus the consistency axioms need: union, relational composition,
    transitive closure, acyclicity and irreflexivity checks.

    Represented as bitset rows; all operations are O(n²·w) or better with
    [w] the words per row (1 for litmus-scale traces). *)

type t

val create : int -> t
(** [create n] is the empty relation over [{0..n-1}]. *)

val copy : t -> t
val size : t -> int
val mem : t -> int -> int -> bool

val add : t -> int -> int -> unit
(** In-place insertion. *)

val of_pred : int -> (int -> int -> bool) -> t
val union : t -> t -> t
val union_many : t list -> t

val union_into : into:t -> t -> bool
(** [union_into ~into b] adds [b] into [into] in place; returns [true] if
    anything changed. *)

val equal : t -> t -> bool
val is_empty : t -> bool
val transitive_closure : t -> t
val transitive_closure_in_place : t -> unit

val add_edge_closed : t -> int -> int -> bool
(** [add_edge_closed r u v] adds the edge [u -> v] to a relation that is
    already transitively closed, restoring closure incrementally
    (O(n·w) per edge instead of a fresh Warshall pass).  Returns [true]
    if the edge was new.  The result is unspecified if [r] was not
    closed. *)

val union_into_closed : into:t -> t -> bool
(** [union_into_closed ~into delta] adds every edge of [delta] into the
    transitively closed [into], maintaining closure per added edge;
    returns [true] if anything changed.  This is the closure cache the
    happens-before fixpoint leans on: rule-derived edges extend the
    closed relation instead of triggering a from-scratch closure per
    round. *)

val compose : t -> t -> t
(** Relational composition [a ; b]. *)

val compose3 : t -> t -> t -> t

val irreflexive : t -> bool
val has_reflexive : t -> bool

val is_acyclic : t -> bool
(** [is_acyclic r] holds when the transitive closure of [r] is
    irreflexive. *)

val iter : t -> (int -> int -> unit) -> unit
val fold : t -> (int -> int -> 'a -> 'a) -> 'a -> 'a
val to_list : t -> (int * int) list
val cardinal : t -> int

val restrict : t -> (int -> bool) -> t
(** Restrict both endpoints to positions satisfying the predicate. *)

val filter : t -> (int -> int -> bool) -> t
val subset : t -> t -> bool
val pp : t Fmt.t
