(** The static mixed-race analyzer behind [tmx lint].

    [lint] classifies every location (tx-only / plain-only / mixed) and
    reports every pair of static accesses that clashes on a location,
    involves a write and a plain access, and is not ordered by the
    static happens-before abstraction ({!Order.pair}) — with a source
    path and a suggested fix on each finding.  No enumeration happens on
    this path; a lint is linear-ish in the program size (quadratic in
    its access count).

    Soundness (the direction the property suite pins against the
    exhaustive enumerator): if [race_free] holds, no consistent
    execution of the program has an L-race or mixed race under any
    model.  Precision is measured, not promised — findings are candidate
    races, to be confirmed with [tmx races]. *)

open Tmx_lang

type severity =
  | High  (** no static protection at all *)
  | Medium  (** one-sided quiescence-fence protection (HBCQ/HBQB) *)
  | Low  (** guarded-publication / privatization idiom (HBww-shaped) *)
  | Info
      (** both a fence and a guard protection — every known one-sided
          ordering device is present, the residual risk is minimal *)

val pp_severity : severity Fmt.t
val severity_rank : severity -> int
(** [High] is 0; larger is less severe. *)

type kind =
  | Mixed_race  (** transactional write vs plain write (§5) *)
  | L_race  (** any other unordered conflicting pair (§4) *)

val pp_kind : kind Fmt.t

type fix =
  | Insert_fence of { fence_loc : string; before : string }
      (** privatization-shaped: the plain access follows an atomic block
          in its thread, so a quiescence fence (as inserted wholesale by
          {!Tmx_opt.Fenceify}) is the idiomatic repair *)
  | Wrap_atomic of string list
      (** wrap the named accesses in [atomic { }], making the pair
          transactional and hence race-free by definition *)

val pp_fix : fix Fmt.t

type finding = {
  kind : kind;
  loc : string;  (** the clashing location (most specific name) *)
  a : Access.t;
  b : Access.t;
  protections : Order.protection list;
  severity : severity;
  fix : fix;
}

type report = {
  program : Ast.program;
  summaries : Access.summary list;
  findings : finding list;  (** sorted most severe first *)
}

val lint : Ast.program -> report
val race_free : report -> bool
val mixed_count : report -> int

val covers : report -> string -> bool
(** Is the location covered by some finding?  Wildcard findings
    ([z\[*\]]) cover every cell of the array; used by the
    enumeration-backed soundness oracles (the fuzzer's and the test
    suite's) to tie dynamic races back to static findings. *)

val pp_finding : finding Fmt.t
val pp_report : report Fmt.t

val pp_verdict : report Fmt.t
(** One-line verdict: ["race-free"] or ["N candidate races (M mixed)"]. *)

val to_json : report -> string

val sarif_of_reports : report list -> string
(** A SARIF 2.1.0 log with one run and one result per finding, across
    all the given reports — what `tmx lint --sarif` emits so findings
    can annotate PRs.  Program name and access path land in logical
    locations (the litmus language has no physical files/lines);
    severities map to SARIF levels (high → error, medium → warning,
    low/info → note). *)
