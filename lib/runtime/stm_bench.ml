(* Multi-domain workload driver for the runtime STM.

   Four mixes, chosen to stress the behaviours the runtime layers are
   about:

   - [Read_heavy]: 90% read-only transactions over a Tarray and a Tmap,
     10% single-slot writes — read-only commits (which take no locks)
     and validation traffic dominate;
   - [Write_heavy]: every transaction updates a small counter bank,
     cycles a Tqueue and swaps Tarray slots — lock acquisition and
     conflict retries dominate, which is what contention policies exist
     to manage;
   - [Long_read]: every transaction reads a long run of cold slots and
     only then reads-and-increments one hot counter, so an invalidation
     always lands at the deepest read-set position — the workload
     partial aborts exist for (the retained prefix is the whole cold
     run), and where a full abort re-pays the entire read set;
   - [Privatization_heavy]: worker domains transact over a region under
     a declared footprint while one domain repeatedly privatizes it
     (flag flip, quiescence fence — alternating global and
     per-location — plain sweep, republish): the §5 fence under load.

   Each (workload, mode, policy) stage runs on fresh transactional
   state with the statistics reset, so the reported snapshot is exactly
   that stage's behaviour.  Workload decisions are drawn from small
   per-worker deterministic LCGs, so two runs of the same configuration
   issue the same transaction mix. *)

type workload = Read_heavy | Write_heavy | Long_read | Privatization_heavy

let workload_name = function
  | Read_heavy -> "read-heavy"
  | Write_heavy -> "write-heavy"
  | Long_read -> "long-read"
  | Privatization_heavy -> "privatization-heavy"

let all_workloads = [ Read_heavy; Write_heavy; Long_read; Privatization_heavy ]

type config = {
  domains : int;
  iters : int; (* transactions per domain per stage *)
  modes : Stm.mode list;
  policies : (string * Contention.policy) list;
  workloads : workload list;
}

let default_policies =
  [
    ("spin", Contention.Spin);
    ("jittered", Contention.Jittered);
    ("budget8", Contention.Budget 8);
  ]

let default_config =
  {
    domains = 4;
    iters = 1000;
    modes = [ Stm.Lazy; Stm.Eager; Stm.Partial; Stm.Norec ];
    policies = default_policies;
    workloads = all_workloads;
  }

type result = {
  workload : string;
  mode : string;
  policy : string;
  domains : int;
  ops : int; (* transactions issued (committed or user-aborted) *)
  seconds : float;
  snapshot : Stm.snapshot;
}

(* a tiny deterministic per-worker PRNG for workload choices *)
let mk_rand seed =
  let st = ref (((seed + 1) * 0x9E3779B9) land 0xFFFF_FFFF_FFFF) in
  fun bound ->
    st := ((!st * 0x5DEECE66D) + 0xB) land 0xFFFF_FFFF_FFFF;
    !st lsr 17 mod bound

(* --- the workloads -------------------------------------------------- *)

(* each builder allocates the stage's shared structures once and returns
   one worker closure per domain, all contending on the same state *)

let read_heavy ~mode ~policy ~iters ~domains =
  let arr = Tarray.init 64 (fun i -> i) in
  let map = Tmap.create ~capacity:256 in
  for k = 1 to 64 do
    ignore (Stm.atomically (fun tx -> ignore (Tmap.add tx map k (k * k))))
  done;
  List.init domains (fun me () ->
      let rand = mk_rand me in
      for _ = 1 to iters do
        if rand 10 < 9 then
          ignore
            (Stm.atomically ~mode ~policy (fun tx ->
                 let a = Tarray.get tx arr (rand 64) in
                 let b = Tarray.get tx arr (rand 64) in
                 let c = Tarray.get tx arr (rand 64) in
                 let d = Tarray.get tx arr (rand 64) in
                 let m =
                   Option.value ~default:0 (Tmap.find tx map (1 + rand 64))
                 in
                 a + b + c + d + m))
        else
          ignore
            (Stm.atomically ~mode ~policy (fun tx ->
                 Tarray.update tx arr (rand 64) (fun v -> v + 1)))
      done)

let write_heavy ~mode ~policy ~iters ~domains =
  let counters = Tarray.make 8 0 in
  let q = Tqueue.create ~capacity:1024 in
  ignore (Stm.atomically (fun tx -> ignore (Tqueue.push tx q 0)));
  List.init domains (fun me () ->
      let rand = mk_rand (me + 1000) in
      for _ = 1 to iters do
        ignore
          (Stm.atomically ~mode ~policy (fun tx ->
               Tarray.update tx counters (rand 8) (fun v -> v + 1);
               (match Tqueue.pop tx q with
               | Some v -> ignore (Tqueue.push tx q (v + 1))
               | None -> ignore (Tqueue.push tx q 0));
               Tarray.swap tx counters (rand 8) (rand 8)))
      done)

(* every transaction reads 32 cold slots, then reads and increments the
   single hot counter — the only location other transactions invalidate,
   and the deepest entry in every read set.  Under partial mode a
   conflict keeps the 32-read prefix and re-executes only the tail;
   under lazy it re-pays the whole read set. *)
let long_read ~mode ~policy ~iters ~domains =
  let arr = Tarray.init 64 (fun i -> i) in
  let hot = Tvar.make 0 in
  List.init domains (fun _me () ->
      for _ = 1 to iters do
        ignore
          (Stm.atomically ~mode ~policy (fun tx ->
               let acc = ref 0 in
               for j = 0 to 31 do
                 acc := !acc + Tarray.get tx arr j
               done;
               let h = Stm.read tx hot in
               Stm.write tx hot (h + 1);
               !acc + h))
      done)

(* worker domains transact over [region] under a declared footprint;
   worker 0 is the privatizer: flag flip, quiescence fence (alternating
   global and per-location), plain sweep, republish.  [~fenced:false]
   drops the quiescence fence — the unrepaired program `tmx repair`
   starts from — so the fenced/unfenced pair prices the repair. *)
let privatization_heavy ?(fenced = true) ~mode ~policy ~iters ~domains () =
  let region = Tarray.make 16 0 in
  let flag = Tvar.make 0 in
  let n = Tarray.length region in
  let footprint = flag :: Array.to_list region in
  List.init domains (fun me () ->
      let rand = mk_rand (me + 2000) in
      if me = 0 then
        for i = 1 to iters do
          (* privatize: flip the flag, fence, sweep plainly, republish *)
          ignore
            (Stm.atomically ~mode ~policy ~footprint:[ flag ] (fun tx ->
                 Stm.write tx flag 1));
          if fenced then
            if i land 1 = 0 then Stm.quiesce ()
            else Stm.quiesce ~var:region.(rand n) ();
          for j = 0 to n - 1 do
            Tvar.unsafe_write region.(j) (Tvar.unsafe_read region.(j) + 1)
          done;
          ignore
            (Stm.atomically ~mode ~policy ~footprint:[ flag ] (fun tx ->
                 Stm.write tx flag 0))
        done
      else
        for _ = 1 to iters do
          ignore
            (Stm.atomically ~mode ~policy ~footprint (fun tx ->
                 if Stm.read tx flag = 0 then
                   Tarray.update tx region (rand n) (fun v -> v + 1)))
        done)

(* --- the harness ----------------------------------------------------- *)

let stage ~workload ~mode ~policy_name ~policy ~domains ~iters =
  let workers =
    match workload with
    | Read_heavy -> read_heavy ~mode ~policy ~iters ~domains
    | Write_heavy -> write_heavy ~mode ~policy ~iters ~domains
    | Long_read -> long_read ~mode ~policy ~iters ~domains
    | Privatization_heavy ->
        privatization_heavy ~mode ~policy ~iters ~domains ()
  in
  Stm.reset_stats ();
  let t0 = Clock.now_s () in
  let ds = List.map (fun w -> Domain.spawn w) workers in
  List.iter Domain.join ds;
  let seconds = Clock.now_s () -. t0 in
  {
    workload = workload_name workload;
    mode = Stm.mode_name mode;
    policy = policy_name;
    domains;
    ops = domains * iters;
    seconds;
    snapshot = Stm.stats ();
  }

let run (config : config) =
  List.concat_map
    (fun workload ->
      List.concat_map
        (fun mode ->
          List.map
            (fun (policy_name, policy) ->
              stage ~workload ~mode ~policy_name ~policy
                ~domains:config.domains ~iters:config.iters)
            config.policies)
        config.modes)
    config.workloads

(* --- reporting ------------------------------------------------------- *)

let totals (s : Stm.snapshot) =
  let add f =
    f s.lazy_stats + f s.eager_stats + f s.partial_stats + f s.norec_stats
  in
  ( add (fun (m : Stm.mode_stats) -> m.commits),
    add (fun (m : Stm.mode_stats) -> m.validation_aborts),
    add (fun (m : Stm.mode_stats) -> m.lock_aborts),
    add (fun (m : Stm.mode_stats) -> m.user_aborts) )

(* full (conflict) aborts per issued attempt outcome: partial-mode
   checkpoint rollbacks deliberately do NOT count — that they keep a
   conflict from becoming a full abort is the point of the mode *)
let abort_rate (s : Stm.snapshot) =
  let commits, v, l, _ = totals s in
  let attempts = commits + v + l in
  if attempts = 0 then 0. else float_of_int (v + l) /. float_of_int attempts

(* --- repair cost ------------------------------------------------------ *)

(* The price of the §5 repair under load: the privatization workload
   with and without its quiescence fence.  The unfenced variant is the
   racy program `tmx repair` starts from (the plain sweep overlaps
   in-flight readers — harmless on int cells, and the sweep result is
   not asserted); the fenced variant is the repaired program.  The
   throughput ratio is what the paper's 0.6–2.5% fence-overhead claim
   is about. *)

type fence_cost = {
  workload : string;
  mode : string;
  policy : string;
  fences : int; (* quiescence fences executed by the fenced run *)
  fenced_per_sec : float;
  unfenced_per_sec : float;
}

let fence_overhead c =
  1. -. (c.fenced_per_sec /. Float.max c.unfenced_per_sec 1e-9)

let repair_cost (config : config) =
  if not (List.mem Privatization_heavy config.workloads) then []
  else
    (* the regular stages are sized for the full grid; a percent-level
       overhead needs longer runs and best-of-N to rise above scheduler
       noise, so each variant runs scaled-up and keeps its best rate *)
    let iters = config.iters * 25 and reps = 3 in
    List.concat_map
      (fun mode ->
        List.map
          (fun (policy_name, policy) ->
            let measure_once ~fenced =
              let workers =
                privatization_heavy ~fenced ~mode ~policy ~iters
                  ~domains:config.domains ()
              in
              Stm.reset_stats ();
              let t0 = Clock.now_s () in
              let ds = List.map (fun w -> Domain.spawn w) workers in
              List.iter Domain.join ds;
              let seconds = Clock.now_s () -. t0 in
              let s = Stm.stats () in
              let commits, _, _, _ = totals s in
              (float_of_int commits /. Float.max seconds 1e-9, s.Stm.quiesces)
            in
            let measure ~fenced =
              List.fold_left
                (fun (best, fences) _ ->
                  let rate, f = measure_once ~fenced in
                  (Float.max best rate, max fences f))
                (0., 0)
                (List.init reps (fun i -> i))
            in
            let fenced_per_sec, fences = measure ~fenced:true in
            let unfenced_per_sec, _ = measure ~fenced:false in
            {
              workload = workload_name Privatization_heavy;
              mode = Stm.mode_name mode;
              policy = policy_name;
              fences;
              fenced_per_sec;
              unfenced_per_sec;
            })
          config.policies)
      config.modes

(* --- per-architecture fence penalty ----------------------------------- *)

(* What the §6 compilation costs at runtime: the arch backends
   (lib/arch) prove which fences each architecture needs — x86-TSO and
   the C++-TM mapping need none beyond what the STM already executes,
   ARMv8 needs a DMB LD after plain loads — and this measures the
   throughput price of those insertions on the real multicore runtime.
   OCaml exposes no raw fence instruction, so each architecture's fence
   is emulated with the cheapest atomic with the same ordering class on
   a per-worker (uncontended) cell: nothing for x86-TSO (its Qx MFENCE
   is the runtime's existing commit path, zero inserted fences), an
   atomic load for DMB LD, an atomic RMW (a full barrier everywhere) for
   atomic_thread_fence(seq_cst). *)

type arch_cost = {
  arch : string;
  workload : string;
  mode : string;
  fenced_per_sec : float;
  baseline_per_sec : float;
}

let arch_penalty c = 1. -. (c.fenced_per_sec /. Float.max c.baseline_per_sec 1e-9)

(* read-mix: read-only transactions over a per-domain partition (no
   cross-domain conflicts — a fenced run slowing the loop down would
   otherwise *reduce* abort rates and mask the fence cost behind a
   throughput gain), 16 fenced reads per transaction plus the
   transaction-boundary fence, so the inserted-fence share of the
   transaction is as large as the runtime allows *)
let arch_fence_workload ~fence ~mode ~policy ~iters ~domains =
  let arr = Tarray.init (16 * domains) (fun i -> i) in
  List.init domains (fun me () ->
      let cell = Atomic.make 0 in
      let base = 16 * me in
      for _ = 1 to iters do
        ignore
          (Stm.atomically ~mode ~policy (fun tx ->
               let acc = ref 0 in
               for j = base to base + 15 do
                 acc := !acc + Tarray.get tx arr j;
                 fence cell
               done;
               !acc));
        fence cell
      done)

let no_fence (_ : int Atomic.t) = ()
let ld_fence cell = ignore (Sys.opaque_identity (Atomic.get cell))
let full_fence cell = Atomic.incr cell

let arch_fences =
  [ ("x86tso", no_fence); ("armv8", ld_fence); ("rc11", full_fence) ]

let arch_fence_cost (config : config) =
  let mode = match config.modes with m :: _ -> m | [] -> Stm.Lazy in
  let policy =
    match config.policies with (_, p) :: _ -> p | [] -> Contention.Spin
  in
  (* a single domain: the inserted fence is a per-thread cost, and
     multi-domain runs put percent-level scheduler/GC variance on top of
     a percent-level signal *)
  let iters = config.iters * 25 * config.domains and reps = 9 in
  let once ~fence =
    let workers =
      arch_fence_workload ~fence ~mode ~policy ~iters ~domains:1
    in
    Stm.reset_stats ();
    let t0 = Clock.now_s () in
    let ds = List.map (fun w -> Domain.spawn w) workers in
    List.iter Domain.join ds;
    let seconds = Clock.now_s () -. t0 in
    let commits, _, _, _ = totals (Stm.stats ()) in
    float_of_int commits /. Float.max seconds 1e-9
  in
  (* one discarded warm-up pass, then paired repetitions: each rep runs
     the baseline and every fence variant back-to-back and contributes
     one fenced/baseline ratio per architecture, and the reported
     penalty comes from the median ratio.  Pairing cancels the
     slow-drift (GC state, frequency scaling) that a best-of-N over
     independent runs cannot — measured unpaired, the percent-level
     fence signal drowns in ±5% run-to-run variance and even turns up
     as a negative penalty *)
  ignore (once ~fence:no_fence);
  let ratios = Hashtbl.create 8 in
  let best_baseline = ref 0. in
  for _ = 1 to reps do
    let baseline = once ~fence:no_fence in
    best_baseline := Float.max !best_baseline baseline;
    List.iter
      (fun (arch, fence) ->
        let r = once ~fence /. Float.max baseline 1e-9 in
        Hashtbl.replace ratios arch
          (r :: Option.value (Hashtbl.find_opt ratios arch) ~default:[]))
      arch_fences
  done;
  let median xs =
    let a = Array.of_list xs in
    Array.sort compare a;
    a.(Array.length a / 2)
  in
  let baseline = !best_baseline in
  List.map
    (fun (arch, fence) ->
      let ratio =
        if fence == no_fence then 1.
        else median (Option.value (Hashtbl.find_opt ratios arch) ~default:[ 1. ])
      in
      {
        arch;
        workload = "read-mix";
        mode = Stm.mode_name mode;
        fenced_per_sec = baseline *. ratio;
        baseline_per_sec = baseline;
      })
    arch_fences

let pp_arch_cost ppf c =
  Fmt.pf ppf
    "arch-fence %-7s %-10s %-7s fenced=%.0f tx/s baseline=%.0f tx/s \
     penalty=%+.1f%%"
    c.arch c.workload c.mode c.fenced_per_sec c.baseline_per_sec
    (100. *. arch_penalty c)

(* The BENCH_arch.json document: the measured penalty runs plus the
   machine-checked §6 claims the caller obtained from the arch table
   sweep (tmx arch table --all --check); claims values are raw JSON. *)
let arch_json ?(claims = []) (config : config) costs =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf
       "{\n  \"experiment\": \"arch_fence_penalty\",\n  \"domains\": %d,\n\
       \  \"iters_per_domain\": %d,\n" config.domains
       (config.iters * 25 * config.domains));
  if claims <> [] then begin
    Buffer.add_string buf "  \"claims\": {";
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_string buf ", ";
        Buffer.add_string buf (Printf.sprintf "%S: %s" k v))
      claims;
    Buffer.add_string buf "},\n"
  end;
  Buffer.add_string buf "  \"runs\": [\n";
  List.iteri
    (fun i c ->
      if i > 0 then Buffer.add_string buf ",\n";
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"arch\": %S, \"workload\": %S, \"mode\": %S,\n\
           \     \"baseline_per_sec\": %.1f, \"fenced_per_sec\": %.1f, \
            \"penalty\": %.4f}"
           c.arch c.workload c.mode c.baseline_per_sec c.fenced_per_sec
           (arch_penalty c)))
    costs;
  Buffer.add_string buf "\n  ]\n}\n";
  Buffer.contents buf

let write_arch_json ?claims ~file config costs =
  let oc = open_out file in
  output_string oc (arch_json ?claims config costs);
  close_out oc

let pp_fence_cost ppf (c : fence_cost) =
  Fmt.pf ppf
    "repair-cost %-20s %-7s %-9s fences=%d fenced=%.0f tx/s unfenced=%.0f \
     tx/s overhead=%+.1f%%"
    c.workload c.mode c.policy c.fences c.fenced_per_sec c.unfenced_per_sec
    (100. *. fence_overhead c)

let pp_result ppf r =
  let commits, v, l, u = totals r.snapshot in
  Fmt.pf ppf
    "%-20s %-7s %-9s d=%d ops=%d commits=%d aborts={validation:%d lock:%d \
     user:%d} partial=%d quiesces=%d esc=%d %.3fs (%.0f tx/s)"
    r.workload r.mode r.policy r.domains r.ops commits v l u
    r.snapshot.partial_aborts r.snapshot.quiesces r.snapshot.escalations
    r.seconds
    (float_of_int commits /. Float.max r.seconds 1e-9)

let json_histogram buf name (h : Stm.histogram) =
  let ints a =
    String.concat ", " (Array.to_list (Array.map string_of_int a))
  in
  Buffer.add_string buf
    (Printf.sprintf {|"%s": {"bounds": [%s], "counts": [%s]}|} name
       (ints h.bounds) (ints h.counts))

let to_json ?(repair_cost = []) (config : config) results =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf
       "{\n  \"experiment\": \"stm_runtime_contention\",\n  \"domains\": %d,\n\
       \  \"iters_per_domain\": %d,\n" config.domains config.iters);
  if repair_cost <> [] then begin
    Buffer.add_string buf "  \"repair_cost\": [\n";
    List.iteri
      (fun i (c : fence_cost) ->
        if i > 0 then Buffer.add_string buf ",\n";
        Buffer.add_string buf
          (Printf.sprintf
             "    {\"workload\": %S, \"mode\": %S, \"policy\": %S, \
              \"fences\": %d,\n\
             \     \"fenced_per_sec\": %.1f, \"unfenced_per_sec\": %.1f, \
              \"fence_overhead\": %.4f}"
             c.workload c.mode c.policy c.fences c.fenced_per_sec
             c.unfenced_per_sec (fence_overhead c)))
      repair_cost;
    Buffer.add_string buf "\n  ],\n"
  end;
  Buffer.add_string buf "  \"runs\": [\n";
  List.iteri
    (fun i r ->
      let commits, v, l, u = totals r.snapshot in
      if i > 0 then Buffer.add_string buf ",\n";
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"workload\": %S, \"mode\": %S, \"policy\": %S,\n\
           \     \"ops\": %d, \"seconds\": %.6f, \"commits_per_sec\": %.1f,\n\
           \     \"commits\": %d, \"aborts\": {\"validation\": %d, \"lock\": \
            %d, \"user\": %d},\n\
           \     \"abort_rate\": %.4f, \"partial_aborts\": %d,\n\
           \     \"quiesces\": %d, \"escalations\": %d,\n     " r.workload
           r.mode r.policy r.ops r.seconds
           (float_of_int commits /. Float.max r.seconds 1e-9)
           commits v l u (abort_rate r.snapshot) r.snapshot.partial_aborts
           r.snapshot.quiesces r.snapshot.escalations);
      json_histogram buf "retry_histogram" r.snapshot.retry_hist;
      Buffer.add_string buf ",\n     ";
      json_histogram buf "commit_latency_ns_histogram"
        r.snapshot.latency_hist_ns;
      Buffer.add_string buf "}")
    results;
  Buffer.add_string buf "\n  ]\n}\n";
  Buffer.contents buf

let write_json ?repair_cost ~file config results =
  let oc = open_out file in
  output_string oc (to_json ?repair_cost config results);
  close_out oc
