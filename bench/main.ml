(* The benchmark harness.

   The paper is a theory paper: its "tables and figures" are the verdict
   annotations on its example executions, the theorem statements, and the
   §6 compilation/fencing discussion.  This harness regenerates each of
   them (EXPERIMENTS.md maps experiment ids to the sections below):

   part 1 — the verdict matrix across the model design space (§1–§3, §5,
            App D), i.e. every figure's allowed/forbidden annotation;
   part 2 — the theorem checks (§4, §5): SC-LTRF, Thm 4.2, Lemma 5.1;
   part 3 — the STM-design table (§3): which anomalies each operational
            STM strategy exhibits, and what repairs them;
   part 4 — timing: the model checker itself, and the §6-style fencing
            cost measurements on the real multicore STM runtime
            (transaction cost lazy vs eager, read-only commits, plain vs
            transactional access, quiescence-fence cost). *)

open Bechamel
open Toolkit
open Tmx_core
open Tmx_exec

let catalog name = (Option.get (Tmx_litmus.Catalog.find name)).Tmx_litmus.Litmus.program

(* ------------------------------------------------------------------ *)
(* part 1: verdict matrix                                              *)
(* ------------------------------------------------------------------ *)

(* The part-1 probe list, shared with the part-4 parallel-speedup run. *)
let matrix_probes : (string * string * (Outcome.t -> bool)) list =
  [
      ("privatization", "x=1", fun o -> Outcome.mem o "x" = 1);
      ("publication", "z=0", fun o -> Outcome.mem o "z" = 0);
      ("ex2_2", "x=2", fun o -> Outcome.mem o "x" = 2);
      ("lb", "r=q=1", fun o -> Outcome.reg o 0 "r" = 1 && Outcome.reg o 1 "q" = 1);
      ("sb", "r=q=0", fun o -> Outcome.reg o 0 "r" = 0 && Outcome.reg o 1 "q" = 0);
      ("ex3_1", "r=q=0", fun o -> Outcome.reg o 0 "r" = 0 && Outcome.reg o 1 "q" = 0);
      ("ex3_2", "r=q=0", fun o -> Outcome.reg o 0 "r" = 0 && Outcome.reg o 1 "q" = 0);
      ("ex3_3", "q=0", fun o -> Outcome.mem o "q" = 0);
      ("ex3_4", "q=0", fun o -> Outcome.reg o 1 "q" = 0);
      ("ex3_5", "r1<>r2", fun o -> Outcome.reg o 0 "r1" <> Outcome.reg o 0 "r2");
      ("impl_reorder", "ry=0,r=0", fun o -> Outcome.reg o 0 "ry" = 0 && Outcome.reg o 1 "r" = 0);
      ("privatization_fence", "x=1", fun o -> Outcome.mem o "x" = 1);
      ("d1_opaque_writes", "r=1", fun o -> Outcome.reg o 1 "r" = 1);
      ("d2_race_free_speculation", "r<>2", fun o -> Outcome.reg o 2 "r" <> 2);
      ("d3_dirty_reads", "x=0,w=1", fun o -> Outcome.mem o "x" = 0 && Outcome.mem o "w" = 1);
      ("d4_no_overlapped_writes", "r=0", fun o -> Outcome.mem o "r" = 0);
    ]

let verdict_matrix () =
  Fmt.pr "@.=== part 1: verdict matrix (paper figures, all models) ===@.@.";
  Fmt.pr "%-26s %-9s" "program" "outcome";
  List.iter (fun (m : Model.t) -> Fmt.pr " %-6s" m.name) Model.all;
  Fmt.pr "@.";
  List.iter
    (fun (name, what, cond) ->
      Fmt.pr "%-26s %-9s" name what;
      List.iter
        (fun model ->
          let allowed = Enumerate.allowed (Enumerate.run model (catalog name)) cond in
          Fmt.pr " %-6s" (if allowed then "yes" else "no"))
        Model.all;
      Fmt.pr "@.")
    matrix_probes

let shapes_summary () =
  Fmt.pr "@.=== shape families (plain/transactional site matrix) ===@.@.";
  let results = Tmx_litmus.Shapes.run_all () in
  let families =
    List.sort_uniq compare
      (List.map (fun (r : Tmx_litmus.Shapes.result) -> r.case.family) results)
  in
  List.iter
    (fun family ->
      let mine =
        List.filter (fun (r : Tmx_litmus.Shapes.result) -> r.case.family = family) results
      in
      let ok = List.length (List.filter (fun (r : Tmx_litmus.Shapes.result) -> r.ok) mine) in
      Fmt.pr "%-8s %d/%d combinations match the model-derived oracle" family ok
        (List.length mine);
      let forbidden =
        List.filter_map
          (fun (r : Tmx_litmus.Shapes.result) ->
            if r.observed_forbidden then Some r.case.name else None)
          mine
      in
      Fmt.pr "  (forbidden: %a)@." Fmt.(list ~sep:sp string) forbidden)
    families

let litmus_summary () =
  Fmt.pr "@.=== litmus expectations (every paper verdict) ===@.@.";
  let pass = ref 0 and total = ref 0 in
  List.iter
    (fun l ->
      incr total;
      let report = Tmx_litmus.Litmus.run l in
      if Tmx_litmus.Litmus.passed report then incr pass
      else Fmt.pr "%a@." Tmx_litmus.Litmus.pp_report report)
    Tmx_litmus.Catalog.all;
  Fmt.pr "%d/%d litmus tests match the paper@." !pass !total

(* ------------------------------------------------------------------ *)
(* part 2: theorems                                                    *)
(* ------------------------------------------------------------------ *)

let theorem_table () =
  Fmt.pr "@.=== part 2: theorem checks (§4, §5) ===@.@.";
  Fmt.pr "%-26s %-28s %-8s %-14s@." "program" "SC-LTRF (racy/weak/seq)" "Thm 4.2"
    "Lemma 5.1";
  List.iter
    (fun (l : Tmx_litmus.Litmus.t) ->
      let sc = Verdict.check_sc_ltrf Model.programmer l.program in
      let t42 = Verdict.check_theorem_4_2 Model.programmer l.program in
      let l51 = Verdict.check_lemma_5_1 l.program in
      Fmt.pr "%-26s %-4s (%b/%b/%b)%14s %-8s %s (%d/%d)@." l.name
        (if sc.theorem_holds then "ok" else "FAIL")
        sc.sc_racy sc.weak_exists sc.outcomes_contained ""
        (if t42 then "ok" else "FAIL")
        (if l51.holds then "ok" else "FAIL")
        l51.pm_consistent l51.mixed_race_free)
    Tmx_litmus.Catalog.all

(* ------------------------------------------------------------------ *)
(* part 3: STM design table (§3)                                       *)
(* ------------------------------------------------------------------ *)

let stm_design_table () =
  Fmt.pr "@.=== part 3: operational STM anomalies (§3, exhaustive schedules) ===@.@.";
  let open Tmx_stmsim in
  let configs =
    [
      ("lazy", Stmsim.default_config);
      ("lazy+atomic-commit", { Stmsim.default_config with atomic_commit = true });
      ("eager", { Stmsim.default_config with strategy = Stmsim.Eager });
    ]
  in
  let programs =
    [ "privatization"; "privatization_fence"; "publication"; "ex3_4"; "d3_dirty_reads" ]
  in
  Fmt.pr "%-22s" "program";
  List.iter (fun (n, _) -> Fmt.pr " %-20s" n) configs;
  Fmt.pr "@.";
  List.iter
    (fun name ->
      Fmt.pr "%-22s" name;
      List.iter
        (fun (_, config) ->
          let anomalies = Stmsim.anomalies ~config (catalog name) in
          Fmt.pr " %-20s"
            (if anomalies = [] then "serializable"
             else Fmt.str "%d anomalies" (List.length anomalies)))
        configs;
      Fmt.pr "@.")
    programs

let fence_table () =
  Fmt.pr "@.=== part 3b: §6 fence insertion (realizing pm on an im STM) ===@.@.";
  Fmt.pr "%-18s %-22s %-22s@." "program" "targeted policy" "conservative policy";
  List.iter
    (fun name ->
      let p = catalog name in
      let show policy =
        let r = Tmx_opt.Fenceify.realizes ~policy p in
        Fmt.str "%d fences, %s" r.fences (if r.realizes then "realizes" else "FAILS")
      in
      Fmt.pr "%-18s %-22s %-22s@." name
        (show `After_transactions)
        (show `Every_mixed_access))
    [ "privatization"; "publication"; "ex2_2"; "impl_reorder"; "ldrf_example" ]

(* ------------------------------------------------------------------ *)
(* part 4: timing                                                      *)
(* ------------------------------------------------------------------ *)

let checker_tests =
  let trace =
    let r = Enumerate.run Model.programmer (catalog "privatization") in
    (List.hd r.executions).trace
  in
  Test.make_grouped ~name:"checker"
    (List.map
       (fun (model : Model.t) ->
         Test.make ~name:model.name
           (Staged.stage (fun () -> ignore (Consistency.check model trace))))
       [ Model.programmer; Model.implementation; Model.strongest ])

let enumerate_tests =
  Test.make_grouped ~name:"enumerate"
    (List.map
       (fun name ->
         let p = catalog name in
         Test.make ~name
           (Staged.stage (fun () -> ignore (Enumerate.run Model.programmer p))))
       [ "privatization"; "publication"; "iriw_z"; "ex3_4"; "ex3_5" ])

let sim_tests =
  let open Tmx_stmsim in
  Test.make_grouped ~name:"sim"
    [
      Test.make ~name:"privatization-lazy"
        (Staged.stage (fun () -> ignore (Stmsim.run (catalog "privatization"))));
      Test.make ~name:"privatization-eager"
        (Staged.stage (fun () ->
             ignore
               (Stmsim.run
                  ~config:{ Stmsim.default_config with strategy = Stmsim.Eager }
                  (catalog "privatization"))));
      Test.make ~name:"privatization-fenced"
        (Staged.stage (fun () ->
             ignore (Stmsim.run (catalog "privatization_fence"))));
    ]

(* §6 analogue: the costs a compiler/programmer pays to realize the
   programmer model on an STM that implements the implementation model *)
let runtime_tests =
  let open Tmx_runtime in
  let v = Tvar.make 0 in
  let vars = Array.init 16 (fun _ -> Tvar.make 0) in
  let txn_rw mode n () =
    ignore
      (Stm.atomically ~mode (fun tx ->
           for i = 0 to n - 1 do
             Stm.write tx vars.(i) (Stm.read tx vars.(i) + 1)
           done))
  in
  Test.make_grouped ~name:"stm"
    [
      Test.make ~name:"plain-read" (Staged.stage (fun () -> ignore (Tvar.unsafe_read v)));
      Test.make ~name:"plain-write" (Staged.stage (fun () -> Tvar.unsafe_write v 1));
      Test.make ~name:"txn-read-only"
        (Staged.stage (fun () -> ignore (Stm.atomically (fun tx -> Stm.read tx v))));
      Test.make ~name:"txn-update-lazy-1" (Staged.stage (txn_rw Stm.Lazy 1));
      Test.make ~name:"txn-update-eager-1" (Staged.stage (txn_rw Stm.Eager 1));
      Test.make ~name:"txn-update-lazy-4" (Staged.stage (txn_rw Stm.Lazy 4));
      Test.make ~name:"txn-update-eager-4" (Staged.stage (txn_rw Stm.Eager 4));
      Test.make ~name:"txn-update-lazy-16" (Staged.stage (txn_rw Stm.Lazy 16));
      Test.make ~name:"txn-update-eager-16" (Staged.stage (txn_rw Stm.Eager 16));
      Test.make ~name:"quiesce-global" (Staged.stage (fun () -> Stm.quiesce ()));
      Test.make ~name:"quiesce-selective"
        (Staged.stage (fun () -> Stm.quiesce ~var:v ()));
    ]

let structure_tests =
  let open Tmx_runtime in
  let q = Tqueue.create ~capacity:64 in
  let m = Tmap.create ~capacity:256 in
  ignore (Stm.atomically (fun tx -> Tmap.add tx m 17 1));
  let k = ref 0 in
  Test.make_grouped ~name:"structures"
    [
      Test.make ~name:"tqueue-push-pop"
        (Staged.stage (fun () ->
             ignore
               (Stm.atomically (fun tx ->
                    ignore (Tqueue.push tx q 1);
                    Tqueue.pop tx q))));
      Test.make ~name:"tmap-find"
        (Staged.stage (fun () -> ignore (Stm.atomically (fun tx -> Tmap.find tx m 17))));
      Test.make ~name:"tmap-add-remove"
        (Staged.stage (fun () ->
             incr k;
             let key = 1 + (!k mod 100) in
             ignore
               (Stm.atomically (fun tx ->
                    ignore (Tmap.add tx m key key);
                    Tmap.remove tx m key))));
    ]

let machine_tests =
  Test.make_grouped ~name:"machine"
    (List.map
       (fun name ->
         let p = catalog name in
         Test.make ~name (Staged.stage (fun () -> ignore (Tmx_machine.Machine.run p))))
       [ "privatization"; "iriw_z"; "temporal" ])

let analysis_tests =
  Test.make_grouped ~name:"analysis"
    [
      Test.make ~name:"temporal-stability"
        (Staged.stage (fun () ->
             ignore
               (Tmx_exec.Stability.temporal_holds Model.programmer (catalog "temporal"))));
      Test.make ~name:"sc-ltrf-check"
        (Staged.stage (fun () ->
             ignore
               (Tmx_exec.Verdict.check_sc_ltrf Model.programmer (catalog "privatization"))));
    ]

let opt_tests =
  let p = catalog "privatization" in
  let roach = List.find (fun (t : Tmx_opt.Transform.named) -> t.name = "roach-motel") Tmx_opt.Transform.all in
  Test.make_grouped ~name:"opt"
    [
      Test.make ~name:"roach-motel-soundness"
        (Staged.stage (fun () ->
             ignore
               (Tmx_opt.Soundness.check_transformation Model.implementation roach p)));
    ]

let all_tests =
  Test.make_grouped ~name:"tmx"
    [
      checker_tests; enumerate_tests; machine_tests; sim_tests;
      runtime_tests; structure_tests; analysis_tests; opt_tests;
    ]

let run_benchmarks () =
  Fmt.pr "@.=== part 4: timing (bechamel, monotonic clock) ===@.@.";
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.4) ~stabilize:true
      ~compaction:false ()
  in
  let raw = Benchmark.all cfg instances all_tests in
  let results =
    Analyze.merge ols instances (List.map (fun i -> Analyze.all ols i raw) instances)
  in
  let clock = Hashtbl.find results (Measure.label Instance.monotonic_clock) in
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        let ns =
          match Analyze.OLS.estimates ols with Some (x :: _) -> x | _ -> nan
        in
        (name, ns) :: acc)
      clock []
  in
  List.iter
    (fun (name, ns) ->
      if Float.is_nan ns then Fmt.pr "%-34s (no estimate)@." name
      else if ns > 1_000_000.0 then Fmt.pr "%-34s %10.3f ms/run@." name (ns /. 1e6)
      else if ns > 1_000.0 then Fmt.pr "%-34s %10.3f us/run@." name (ns /. 1e3)
      else Fmt.pr "%-34s %10.1f ns/run@." name ns)
    (List.sort compare rows)

(* ------------------------------------------------------------------ *)
(* part 4d: sequential vs parallel enumeration                         *)
(* ------------------------------------------------------------------ *)

let wall f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(* one discarded warmup run, then the best wall-clock of [n] — the
   container's first iteration pays page faults and allocator growth that
   a trajectory-tracking witness should not record *)
let best_of n f =
  ignore (f ());
  let r0, t0 = wall f in
  let best = ref t0 in
  for _ = 2 to n do
    let _, t = wall f in
    if t < !best then best := t
  done;
  (r0, !best)

(* A synthetic enumeration-heavy program (one location, four competing
   writers, a three-read observer): thousands of candidate graphs, so
   the intra-run task split has something to chew on. *)
let stress_program =
  let open Tmx_lang.Ast in
  let x = loc "x" in
  program ~name:"stress" ~locs:[ "x" ]
    [
      [ store x (int 1) ];
      [ store x (int 2) ];
      [ atomic [ store x (int 3) ] ];
      [ store x (int 4) ];
      [ load "r1" x; load "r2" x; load "r3" x ];
    ]

(* The --jobs 4 vs --jobs 1 wall-clock comparison, with outcome sets
   verified identical, recorded in BENCH_parallel.json so the perf
   trajectory is tracked across PRs.

   Two measurements: the full part-1 verdict matrix, with its 144
   (program, model) enumerations dispatched as tasks on one shared
   domain pool (each cell is too small to amortize a pool of its own —
   Enumerate's estimator would fall back to sequential — so the matrix
   scales with cores at the cell level, the way a catalog sweep is
   actually served); and one enumeration-heavy program run through
   Enumerate's intra-run linearization-prefix split.  [jobs] defaults
   to 4 (the acceptance target) and follows the machine above that. *)
let parallel_speedup () =
  Fmt.pr "@.=== part 4d: domain-parallel enumeration speedup ===@.@.";
  let cores = Tmx_exec.Pool.available_cores () in
  let jobs = max 4 cores in
  (* the verdict matrix, cells as pool tasks *)
  let cells =
    List.concat_map
      (fun (name, _, _) -> List.map (fun m -> (catalog name, m)) Model.all)
      matrix_probes
    |> Array.of_list
  in
  let run_matrix jobs =
    Tmx_exec.Pool.run_tasks ~jobs ~tasks:(Array.length cells) (fun i ->
        let program, model = cells.(i) in
        Enumerate.outcomes (Enumerate.run model program))
  in
  let seq, t_seq = best_of 3 (fun () -> run_matrix 1) in
  let par, t_par = best_of 3 (fun () -> run_matrix jobs) in
  let identical =
    Array.for_all2 (fun a b -> List.for_all2 Outcome.equal a b) seq par
  in
  (* one heavy program, intra-run split *)
  let run_stress jobs =
    let config = { Enumerate.default_config with jobs } in
    Enumerate.run ~config Model.programmer stress_program
  in
  let sseq, st_seq = best_of 3 (fun () -> run_stress 1) in
  let spar, st_par = best_of 3 (fun () -> run_stress jobs) in
  let s_identical =
    sseq.Enumerate.graphs = spar.Enumerate.graphs
    && List.for_all2 Outcome.equal (Enumerate.outcomes sseq)
         (Enumerate.outcomes spar)
  in
  let speedup = t_seq /. t_par and s_speedup = st_seq /. st_par in
  Fmt.pr
    "verdict matrix (%d cells): jobs=1 %.3fs   jobs=%d %.3fs   speedup %.2fx \
     \  outcome sets identical: %b@."
    (Array.length cells) t_seq jobs t_par speedup identical;
  Fmt.pr
    "stress program (%d graphs): jobs=1 %.3fs   jobs=%d %.3fs   speedup \
     %.2fx   outcome sets identical: %b   (%d cores available)@."
    sseq.Enumerate.graphs st_seq jobs st_par s_speedup s_identical cores;
  let oc = open_out "BENCH_parallel.json" in
  Printf.fprintf oc
    {|{
  "experiment": "parallel_enumeration_speedup",
  "jobs": %d,
  "cores_available": %d,
  "verdict_matrix": {
    "cells": %d,
    "seconds_sequential": %.6f,
    "seconds_parallel": %.6f,
    "speedup": %.3f,
    "outcomes_identical": %b
  },
  "stress_intra_run": {
    "candidate_graphs": %d,
    "seconds_sequential": %.6f,
    "seconds_parallel": %.6f,
    "speedup": %.3f,
    "outcomes_identical": %b
  }
}
|}
    jobs cores (Array.length cells) t_seq t_par speedup identical
    sseq.Enumerate.graphs st_seq st_par s_speedup s_identical;
  close_out oc;
  if not (identical && s_identical) then
    failwith "parallel enumeration diverged from sequential"

(* ------------------------------------------------------------------ *)
(* part 4d': reduced vs unreduced enumeration                          *)
(* ------------------------------------------------------------------ *)

(* The --reduction acceptance measurement (docs/ENUMERATION.md).  Two
   legs, recorded in BENCH_reduction.json:

   - the full litmus catalog x every model, enumerated under each
     strategy, with dpor checked bit-identical to the unreduced
     reference and dpor+sym multiset-identical (the bench FAILS on
     divergence — the reduction is an accelerator, never an oracle);
   - frontier programs one thread past the catalog's largest, where the
     unreduced enumerator is already impractical, timed under every
     strategy the same way. *)

let exec_key (e : Enumerate.execution) =
  (Trace.events e.trace, Fmt.str "%a" Outcome.pp e.outcome)

let frontier_programs =
  let open Tmx_lang.Ast in
  let x = loc "x" in
  [
    (* stress_program plus a fifth competing writer: six threads, one
       past anything the unreduced test suite enumerates *)
    program ~name:"w5r3" ~locs:[ "x" ]
      [
        [ store x (int 1) ];
        [ store x (int 2) ];
        [ atomic [ store x (int 3) ] ];
        [ store x (int 4) ];
        [ store x (int 5) ];
        [ load "r1" x; load "r2" x; load "r3" x ];
      ];
    (* three interchangeable two-read observers: the symmetry
       quotient's home turf *)
    program ~name:"w3o3" ~locs:[ "x" ]
      [
        [ store x (int 1) ];
        [ store x (int 2) ];
        [ atomic [ store x (int 3) ] ];
        [ load "r1" x; load "r2" x ];
        [ load "r1" x; load "r2" x ];
        [ load "r1" x; load "r2" x ];
      ];
  ]

let reduction_speedup () =
  Fmt.pr "@.=== part 4d': reduced vs unreduced enumeration ===@.@.";
  let reductions =
    [ Enumerate.No_reduction; Enumerate.Dpor; Enumerate.Dpor_sym ]
  in
  let rname = Enumerate.reduction_name in
  (* leg 1: the catalog matrix *)
  let run_catalog reduction =
    let config = { Enumerate.default_config with jobs = 1; reduction } in
    List.concat_map
      (fun (l : Tmx_litmus.Litmus.t) ->
        List.map (fun m -> Enumerate.run ~config m l.program) Model.all)
      Tmx_litmus.Catalog.all
  in
  let runs =
    List.map (fun r -> (r, best_of 3 (fun () -> run_catalog r))) reductions
  in
  let results r = fst (List.assoc r runs) in
  let seconds r = snd (List.assoc r runs) in
  let totals rs =
    List.fold_left
      (fun (g, e) (r : Enumerate.result) -> (g + r.graphs, e + r.explored))
      (0, 0) rs
  in
  let graphs, _ = totals (results Enumerate.No_reduction) in
  let identical =
    List.for_all2
      (fun (rn : Enumerate.result) ((rd : Enumerate.result), (rs : Enumerate.result)) ->
        rn.graphs = rd.graphs && rn.graphs = rs.graphs
        && rn.capped = rd.capped && rn.capped = rs.capped
        && List.map exec_key rn.executions = List.map exec_key rd.executions
        && List.sort compare (List.map exec_key rn.executions)
           = List.sort compare (List.map exec_key rs.executions))
      (results Enumerate.No_reduction)
      (List.combine (results Enumerate.Dpor) (results Enumerate.Dpor_sym))
  in
  let pairs = List.length (results Enumerate.No_reduction) in
  let t_none = seconds Enumerate.No_reduction in
  Fmt.pr "catalog matrix (%d pairs, %d candidate graphs):@." pairs graphs;
  List.iter
    (fun r ->
      let _, explored = totals (results r) in
      Fmt.pr "  %-9s %.3fs   %6d states explored   speedup %.2fx@." (rname r)
        (seconds r) explored
        (t_none /. seconds r))
    reductions;
  Fmt.pr "  verdicts identical across strategies: %b@." identical;
  (* leg 2: the frontier programs *)
  let frontier =
    List.map
      (fun (p : Tmx_lang.Ast.program) ->
        let run reduction =
          Enumerate.run
            ~config:{ Enumerate.default_config with jobs = 1; reduction }
            Model.programmer p
        in
        let rn, tn = wall (fun () -> run Enumerate.No_reduction) in
        let rd, td = wall (fun () -> run Enumerate.Dpor) in
        let rs, ts = wall (fun () -> run Enumerate.Dpor_sym) in
        let ok =
          rn.Enumerate.graphs = rd.Enumerate.graphs
          && rn.Enumerate.graphs = rs.Enumerate.graphs
          && List.map exec_key rn.executions = List.map exec_key rd.executions
          && List.sort compare (List.map exec_key rn.executions)
             = List.sort compare (List.map exec_key rs.executions)
        in
        Fmt.pr
          "%-8s (%d threads, %d graphs): none %.3fs   dpor %.3fs (%d \
           explored)   dpor+sym %.3fs (%d explored)   speedup %.2fx   \
           verdicts identical: %b@."
          p.name
          (List.length p.threads)
          rn.Enumerate.graphs tn td rd.Enumerate.explored ts
          rs.Enumerate.explored (tn /. ts) ok;
        (p.name, List.length p.threads, rn, tn, rd, td, rs, ts, ok))
      frontier_programs
  in
  let all_identical =
    identical && List.for_all (fun (_, _, _, _, _, _, _, _, ok) -> ok) frontier
  in
  let oc = open_out "BENCH_reduction.json" in
  let _, e_none = totals (results Enumerate.No_reduction) in
  let _, e_dpor = totals (results Enumerate.Dpor) in
  let _, e_sym = totals (results Enumerate.Dpor_sym) in
  Printf.fprintf oc
    {|{
  "experiment": "reduction_speedup",
  "catalog_matrix": {
    "pairs": %d,
    "candidate_graphs": %d,
    "seconds": { "none": %.6f, "dpor": %.6f, "dpor+sym": %.6f },
    "explored": { "none": %d, "dpor": %d, "dpor+sym": %d },
    "speedup": { "dpor": %.3f, "dpor+sym": %.3f },
    "verdicts_identical": %b
  },
  "frontier": [%s
  ]
}
|}
    pairs graphs t_none
    (seconds Enumerate.Dpor)
    (seconds Enumerate.Dpor_sym)
    e_none e_dpor e_sym
    (t_none /. seconds Enumerate.Dpor)
    (t_none /. seconds Enumerate.Dpor_sym)
    identical
    (String.concat ","
       (List.map
          (fun (name, threads, (rn : Enumerate.result), tn,
                (rd : Enumerate.result), td, (rs : Enumerate.result), ts, ok) ->
            Printf.sprintf
              {|
    { "name": "%s", "threads": %d, "candidate_graphs": %d,
      "seconds": { "none": %.6f, "dpor": %.6f, "dpor+sym": %.6f },
      "explored": { "none": %d, "dpor": %d, "dpor+sym": %d },
      "speedup": { "dpor": %.3f, "dpor+sym": %.3f },
      "verdicts_identical": %b }|}
              name threads rn.graphs tn td ts rn.explored rd.explored
              rs.explored (tn /. td) (tn /. ts) ok)
          frontier));
  close_out oc;
  if not all_identical then
    failwith "reduced enumeration diverged from the unreduced reference"

(* ------------------------------------------------------------------ *)
(* part 5: the verdict cache, cold vs warm                             *)
(* ------------------------------------------------------------------ *)

(* The tmx-serve acceptance measurement: the full litmus catalog run
   three ways — uncached baseline, cold cache (every enumeration a miss
   that populates the store), and warm (a fresh [Cache.t] over the same
   directory, so every hit is an actual disk load, not an LRU lookup).
   The three rendered report sets must be byte-identical: the cache is
   an accelerator, never an oracle.  Recorded in BENCH_serve.json. *)
let serve_cache_speedup () =
  Fmt.pr "@.=== part 5: verdict cache, cold vs warm (full catalog) ===@.@.";
  let open Tmx_service in
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "tmx-bench-cache-%d" (Unix.getpid ()))
  in
  ignore (Cache.clear ~dir);
  let run_catalog enumerate =
    List.map
      (fun l -> Fmt.str "%a" Tmx_litmus.Litmus.pp_report (Tmx_litmus.Litmus.run ~enumerate l))
      Tmx_litmus.Catalog.all
  in
  let baseline, base_s =
    wall (fun () -> run_catalog (fun ~config m p -> Enumerate.run ~config m p))
  in
  let cold_cache = Cache.create ~dir () in
  let cold, cold_s =
    wall (fun () -> run_catalog (fun ~config m p -> Cache.memo_run cold_cache ~config m p))
  in
  (* a fresh front over the same directory: the warm pass measures the
     disk hits, the deployment shape of a second `tmx litmus --cache` *)
  let warm_cache = Cache.create ~dir () in
  let warm, warm_s =
    wall (fun () -> run_catalog (fun ~config m p -> Cache.memo_run warm_cache ~config m p))
  in
  let identical = baseline = cold && cold = warm in
  let cs = Cache.stats cold_cache and ws = Cache.stats warm_cache in
  let entries = (Cache.disk_stats ~dir ()).Cache.entries in
  let speedup = cold_s /. warm_s in
  let hit_rate_warm =
    if ws.hits + ws.misses = 0 then 0.
    else float_of_int ws.hits /. float_of_int (ws.hits + ws.misses)
  in
  let programs = List.length Tmx_litmus.Catalog.all in
  Fmt.pr "catalog (%d programs, %d cache entries):@." programs entries;
  Fmt.pr "  uncached %.4fs   cold %.4fs (%d misses)   warm %.4fs (%d hits, \
          %d misses)@."
    base_s cold_s cs.misses warm_s ws.hits ws.misses;
  Fmt.pr "  warm speedup over cold: %.1fx   warm hit rate: %.3f   reports \
          byte-identical: %b@."
    speedup hit_rate_warm identical;
  let oc = open_out "BENCH_serve.json" in
  Printf.fprintf oc
    {|{
  "experiment": "serve_cache",
  "programs": %d,
  "entries": %d,
  "baseline_s": %.6f,
  "cold_s": %.6f,
  "warm_s": %.6f,
  "speedup": %.3f,
  "cold": { "hits": %d, "misses": %d },
  "warm": { "hits": %d, "misses": %d },
  "hit_rate_warm": %.4f,
  "verdicts_identical": %b
}
|}
    programs entries base_s cold_s warm_s speedup cs.hits cs.misses ws.hits
    ws.misses hit_rate_warm identical;
  close_out oc;
  ignore (Cache.clear ~dir);
  (try Unix.rmdir dir with Unix.Unix_error _ -> ());
  if not identical then failwith "cached litmus reports diverged from uncached"

(* ------------------------------------------------------------------ *)
(* part 6: the sharded service under load                              *)
(* ------------------------------------------------------------------ *)

(* The loadgen acceptance measurement: an in-process server per shard
   count (TCP on a kernel-chosen port, fresh cache dir each), the
   deterministic Loadgen stream replayed at fixed concurrency, and the
   1-vs-N-shard byte-identity oracle over two more fresh servers.
   Recorded in BENCH_loadgen.json; the oracle verdict rides along so a
   sharding divergence regresses the witness (bench-compare sees a 0). *)
let serve_loadgen () =
  Fmt.pr "@.=== part 6: sharded service under load ===@.@.";
  let open Tmx_service in
  let duration_s =
    match Sys.getenv_opt "TMX_LOADGEN_DURATION" with
    | Some s -> (try float_of_string s with _ -> 3.0)
    | None -> 3.0
  in
  let lg_config =
    { Loadgen.default_config with concurrency = 4; duration_s; seed = 42 }
  in
  let shard_counts = [ 1; 4 ] in
  let fresh_dir tag =
    let dir =
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "tmx-bench-loadgen-%s-%d" tag (Unix.getpid ()))
    in
    ignore (Cache.clear ~dir);
    dir
  in
  let with_server ~tag ~shards f =
    let dir = fresh_dir tag in
    let cfg =
      {
        (Server.default_config ~socket:"unused") with
        Server.socket = None;
        tcp = Some ("127.0.0.1", 0);
        cache_dir = dir;
        cache_capacity = 512;
        cache_shards = shards;
        workers = 4;
      }
    in
    let t = Server.start cfg in
    let addr =
      match Server.server_addresses t with
      | a :: _ -> Result.get_ok (Client.addr_of_string a)
      | [] -> assert false
    in
    Fun.protect
      ~finally:(fun () ->
        Server.stop t;
        ignore (Cache.clear ~dir);
        (try
           Array.iter
             (fun d ->
               let p = Filename.concat dir d in
               if Sys.is_directory p then Unix.rmdir p)
             (Sys.readdir dir)
         with _ -> ());
        try Unix.rmdir dir with Unix.Unix_error _ -> ())
      (fun () -> f addr)
  in
  let reports =
    List.map
      (fun shards ->
        let tag = Printf.sprintf "s%d" shards in
        let r = with_server ~tag ~shards (fun addr -> Loadgen.run ~config:lg_config addr) in
        Fmt.pr
          "shards %d: %d requests (%.0f rps), p50 %.2fms p95 %.2fms p99 \
           %.2fms, hit rate %.3f, shed rate %.3f, %d errors@."
          shards r.Loadgen.requests_sent r.throughput_rps r.p50_ms r.p95_ms
          r.p99_ms r.hit_rate r.shed_rate r.errors;
        (shards, r))
      shard_counts
  in
  let oracle_requests = 64 in
  let oracle =
    with_server ~tag:"oa" ~shards:1 (fun addr_a ->
        with_server ~tag:"ob" ~shards:4 (fun addr_b ->
            Loadgen.oracle ~config:lg_config ~requests:oracle_requests addr_a
              addr_b))
  in
  let identical =
    match oracle with
    | Ok None -> true
    | Ok (Some m) ->
        Fmt.epr "oracle mismatch at request %d:@.  1 shard : %s@.  4 shards: %s@."
          m.Loadgen.index m.line_a m.line_b;
        false
    | Error e ->
        Fmt.epr "oracle transport failure: %s@." e;
        false
  in
  Fmt.pr "1-vs-4-shard byte-identity oracle (%d requests): %s@." oracle_requests
    (if identical then "identical" else "MISMATCH");
  let shard_json (shards, (r : Loadgen.report)) =
    Json.Obj
      (("shards", Json.int shards)
      ::
      (match Loadgen.report_to_json r with Json.Obj fs -> fs | _ -> []))
  in
  let witness =
    Json.Obj
      [
        ("experiment", Json.str "serve_loadgen");
        ("seed", Json.int lg_config.seed);
        ("skew", Json.Num lg_config.skew);
        ("concurrency", Json.int lg_config.concurrency);
        ("duration_s", Json.Num duration_s);
        ("shards", Json.Arr (List.map shard_json reports));
        ( "oracle",
          Json.Obj
            [
              ("requests", Json.int oracle_requests);
              ("identical", Json.Bool identical);
            ] );
      ]
  in
  let oc = open_out "BENCH_loadgen.json" in
  output_string oc (Json.to_string witness);
  output_string oc "\n";
  close_out oc;
  if not identical then
    failwith "sharded responses diverged from the single-shard reference"

let () =
  (match Sys.getenv_opt "TMX_BENCH_ONLY" with
  | Some "parallel" -> parallel_speedup ()
  | Some "reduction" -> reduction_speedup ()
  | Some "serve" -> serve_cache_speedup ()
  | Some "loadgen" -> serve_loadgen ()
  | _ ->
      verdict_matrix ();
      shapes_summary ();
      litmus_summary ();
      theorem_table ();
      stm_design_table ();
      fence_table ();
      run_benchmarks ();
      parallel_speedup ();
      reduction_speedup ();
      serve_cache_speedup ();
      serve_loadgen ());
  Fmt.pr "@.done.@."
