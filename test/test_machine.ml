(* The operational/axiomatic equivalence: the timestamp machine's outcome
   set coincides with the implementation model's, on the whole catalog,
   on every shape-family case, and on random programs.  Two independent
   implementations of the semantics checking each other. *)

open Tmx_core
open Tmx_exec

let agree name (program : Tmx_lang.Ast.program) =
  let m = Tmx_machine.Machine.run program in
  let a = Enumerate.outcomes (Enumerate.run Model.implementation program) in
  let missing = List.filter (fun o -> not (List.exists (Outcome.equal o) a)) m.outcomes in
  let extra =
    List.filter (fun o -> not (List.exists (Outcome.equal o) m.outcomes)) a
  in
  if missing <> [] then
    Alcotest.failf "%s: machine-only outcome %a" name Outcome.pp (List.hd missing);
  if extra <> [] then
    Alcotest.failf "%s: axiomatic-only outcome %a" name Outcome.pp (List.hd extra)

let test_catalog () =
  List.iter
    (fun (l : Tmx_litmus.Litmus.t) -> agree l.name l.program)
    Tmx_litmus.Catalog.all

let test_shapes () =
  List.iter
    (fun (c : Tmx_litmus.Shapes.case) -> agree c.name c.program)
    Tmx_litmus.Shapes.all_cases

let prop_random =
  QCheck.Test.make ~name:"machine = implementation model on random programs"
    ~count:80 Test_theorems.arb_program (fun p ->
      let m = Tmx_machine.Machine.run p in
      let a = Enumerate.outcomes (Enumerate.run Model.implementation p) in
      List.for_all (fun o -> List.exists (Outcome.equal o) a) m.outcomes
      && List.for_all (fun o -> List.exists (Outcome.equal o) m.outcomes) a)

let test_accounting () =
  let p = (Option.get (Tmx_litmus.Catalog.find "iriw_z")).program in
  let m = Tmx_machine.Machine.run p in
  Alcotest.(check bool) "explored states" true (m.states > 0);
  Alcotest.(check bool) "nothing truncated" false m.truncated;
  Alcotest.(check bool) "not capped" false m.capped

let suite =
  [
    Alcotest.test_case "catalog equivalence" `Slow test_catalog;
    Alcotest.test_case "shape-family equivalence" `Slow test_shapes;
    Tb.qcheck prop_random;
    Alcotest.test_case "exploration accounting" `Quick test_accounting;
  ]
