lib/exec/verdict.mli: Enumerate Model Outcome Sc Tmx_core Tmx_lang Trace
