lib/litmus/parse.mli: Litmus
