lib/machine/machine.ml: Ast Hashtbl List Option Outcome Proto Rat String Tmx_core Tmx_exec Tmx_lang
