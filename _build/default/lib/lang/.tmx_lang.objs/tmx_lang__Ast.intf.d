lib/lang/ast.mli: Fmt
