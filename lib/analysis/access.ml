(* Static access summaries: every load/store of a program, with its
   thread, mode (plain vs transactional), footprint location name
   (computed-index cells become the "base[*]" wildcard, as in
   [Tmx_opt.Footprint]), a human-readable source path, and the
   conservative facts the race analysis needs:

   - [must_abort]: the enclosing transaction aborts on every control
     path, so no dynamic instance of the access is ever nonaborted;
   - [fences_before]/[fences_after]: quiescence fences that dominate /
     postdominate the access in its thread (every path from the thread
     start to the access crosses the fence, resp. every path from the
     access to the thread end does);
   - [after_atomic]: some atomic block precedes the access in its thread
     (the privatization-shaped suffix of [Tmx_opt.Fenceify]);
   - [txn_reads]: locations read by the enclosing transaction (empty for
     plain accesses), and [prior_atomic_writes]: locations written by
     atomic blocks preceding the access in its thread.  Together these
     recognize guarded-publication / privatization idioms.

   Dominance is computed over branch scopes: a fence dominates an access
   iff it occurs earlier in the walk and its chain of enclosing
   If/While constructs is a prefix of the access's chain. *)

open Tmx_lang

type mode = Plain | Transactional
type kind = Read | Write

let pp_mode ppf = function
  | Plain -> Fmt.string ppf "plain"
  | Transactional -> Fmt.string ppf "tx"

let pp_kind ppf = function
  | Read -> Fmt.string ppf "read"
  | Write -> Fmt.string ppf "write"

type t = {
  thread : int;
  kind : kind;
  mode : mode;
  loc : string;
  path : string;
  stmt : Ast.stmt;
  must_abort : bool;
  fences_before : string list;
  fences_after : string list;
  after_atomic : bool;
  txn_reads : string list;
  txn_writes : string list;
  prior_atomic_writes : string list;
  prior_atomic_reads : string list;
  later_atomic_writes : string list;
}

let pp ppf a =
  Fmt.pf ppf "t%d %a %a %s (%s: %a)" a.thread pp_mode a.mode pp_kind a.kind
    a.loc a.path Ast.pp_stmt a.stmt

(* -- must-abort ------------------------------------------------------------- *)

(* Does every control path from the start of [body] hit an [abort],
   given that paths falling off its end abort iff [cont]?  Loops are a
   conservative stop: a while body may run zero times or forever, and
   anything after a loop is not examined (sound: we only ever claim
   must-abort when it provably holds). *)
let rec tail_aborts body cont =
  match body with
  | [] -> cont
  | Ast.Abort :: _ -> true
  | Ast.If (_, t, e) :: rest ->
      let k = tail_aborts rest cont in
      tail_aborts t k && tail_aborts e k
  | Ast.While _ :: _ -> false
  | _ :: rest -> tail_aborts rest cont

let body_must_abort body = tail_aborts body false

(* -- location reads/writes of a statement list ------------------------------ *)

let rec body_reads acc = function
  | [] -> acc
  | s :: rest ->
      let acc =
        match (s : Ast.stmt) with
        | Load (_, lv) -> Tmx_opt.Footprint.lval_name lv :: acc
        | Atomic b | While (_, b) -> body_reads acc b
        | If (_, t, e) -> body_reads (body_reads acc t) e
        | Store _ | Assign _ | Abort | Fence _ | Skip -> acc
      in
      body_reads acc rest

let rec body_writes acc = function
  | [] -> acc
  | s :: rest ->
      let acc =
        match (s : Ast.stmt) with
        | Store (lv, _) -> Tmx_opt.Footprint.lval_name lv :: acc
        | Atomic b | While (_, b) -> body_writes acc b
        | If (_, t, e) -> body_writes (body_writes acc t) e
        | Load _ | Assign _ | Abort | Fence _ | Skip -> acc
      in
      body_writes acc rest

(* -- extraction ------------------------------------------------------------- *)

type raw_item = Racc of t | Rfence of string | Ratomic of string list
(* [Ratomic ws]: an atomic block writing [ws] ended at this walk position *)

type raw = { walk : int; scope : int list; item : raw_item }

let is_scope_prefix pre full =
  let rec go = function
    | [], _ -> true
    | _, [] -> false
    | p :: ps, f :: fs -> p = f && go (ps, fs)
  in
  go (pre, full)

let of_thread thread stmts =
  let items = ref [] in
  let walk = ref 0 in
  let scope_id = ref 0 in
  let after_atomic = ref false in
  let atomic_writes = ref [] in
  let atomic_reads = ref [] in
  let emit scope item =
    items := { walk = !walk; scope = List.rev scope; item } :: !items;
    incr walk
  in
  (* [txn] is [None] outside transactions, [Some (reads, writes)] inside.  [cont]
     is the must-abort continuation: does every control path from just
     after the current statement to the end of the transaction body hit
     an [abort]?  Per-access rather than per-body, so a write in an
     always-aborting branch (D.2's speculation) is recognized even when
     the transaction can also commit. *)
  let rec stmt ~scope ~path ~txn ~cont (s : Ast.stmt) =
    let access kind lv =
      let mode, must_abort, txn_reads, txn_writes =
        match txn with
        | None -> (Plain, false, [], [])
        | Some (reads, writes) -> (Transactional, cont, reads, writes)
      in
      emit scope
        (Racc
           {
             thread;
             kind;
             mode;
             loc = Tmx_opt.Footprint.lval_name lv;
             path;
             stmt = s;
             must_abort;
             fences_before = [];
             fences_after = [];
             after_atomic = !after_atomic;
             txn_reads;
             txn_writes;
             prior_atomic_writes = !atomic_writes;
             prior_atomic_reads = !atomic_reads;
             later_atomic_writes = [];
           })
    in
    match s with
    | Load (_, lv) -> access Read lv
    | Store (lv, _) -> access Write lv
    | Fence x -> emit scope (Rfence x)
    | Atomic b ->
        let writes = List.sort_uniq compare (body_writes [] b) in
        let txn = Some (List.sort_uniq compare (body_reads [] b), writes) in
        (* falling off the end of the body commits, so cont restarts *)
        body ~scope ~path:(path ^ ".atomic") ~txn ~cont:false b;
        emit scope (Ratomic writes);
        after_atomic := true;
        atomic_writes := List.sort_uniq compare (body_writes !atomic_writes b);
        atomic_reads := List.sort_uniq compare (body_reads !atomic_reads b)
    | If (_, t, e) ->
        let fresh () = incr scope_id; !scope_id in
        body ~scope:(fresh () :: scope) ~path:(path ^ ".then") ~txn ~cont t;
        body ~scope:(fresh () :: scope) ~path:(path ^ ".else") ~txn ~cont e
    | While (_, b) ->
        incr scope_id;
        (* the loop may exit or re-run: no continuation claim inside *)
        body ~scope:(!scope_id :: scope) ~path:(path ^ ".do") ~txn ~cont:false b
    | Assign _ | Abort | Skip -> ()
  and body ~scope ~path ~txn ~cont stmts =
    let rec go i = function
      | [] -> ()
      | s :: rest ->
          stmt ~scope
            ~path:(Fmt.str "%s.%d" path i)
            ~txn
            ~cont:(tail_aborts rest cont)
            s;
          go (i + 1) rest
    in
    go 0 stmts
  in
  body ~scope:[] ~path:(Fmt.str "t%d" thread) ~txn:None ~cont:false stmts;
  let raws = List.rev !items in
  (* dominating / postdominating fences *)
  let fences =
    List.filter
      (fun r -> match r.item with Rfence _ -> true | Racc _ | Ratomic _ -> false)
      raws
  in
  let atomics =
    List.filter
      (fun r -> match r.item with Ratomic _ -> true | Racc _ | Rfence _ -> false)
      raws
  in
  List.filter_map
    (fun r ->
      match r.item with
      | Rfence _ | Ratomic _ -> None
      | Racc a ->
          let before, after =
            List.fold_left
              (fun (bs, afs) f ->
                match f.item with
                | Rfence x when is_scope_prefix f.scope r.scope ->
                    if f.walk < r.walk then (x :: bs, afs)
                    else (bs, x :: afs)
                | _ -> (bs, afs))
              ([], []) fences
          in
          let later =
            List.concat_map
              (fun m ->
                match m.item with
                | Ratomic ws
                  when m.walk > r.walk && is_scope_prefix m.scope r.scope ->
                    ws
                | _ -> [])
              atomics
          in
          Some
            {
              a with
              fences_before = List.sort_uniq compare before;
              fences_after = List.sort_uniq compare after;
              later_atomic_writes = List.sort_uniq compare later;
            })
    raws

let of_program (p : Ast.program) =
  List.concat (List.mapi of_thread p.threads)

(* -- per-location classification -------------------------------------------- *)

type counts = {
  plain_reads : int;
  plain_writes : int;
  tx_reads : int;
  tx_writes : int;
}

let no_counts = { plain_reads = 0; plain_writes = 0; tx_reads = 0; tx_writes = 0 }

type class_ = Unused | Plain_only | Tx_only | Mixed

let pp_class ppf = function
  | Unused -> Fmt.string ppf "unused"
  | Plain_only -> Fmt.string ppf "plain-only"
  | Tx_only -> Fmt.string ppf "tx-only"
  | Mixed -> Fmt.string ppf "mixed"

type summary = {
  loc : string;
  class_ : class_;
  counts : counts;
  threads : int list;
}

let class_of_counts c =
  let plain = c.plain_reads + c.plain_writes > 0 in
  let tx = c.tx_reads + c.tx_writes > 0 in
  match (plain, tx) with
  | false, false -> Unused
  | true, false -> Plain_only
  | false, true -> Tx_only
  | true, true -> Mixed

let summarize_loc accesses loc =
  let touching =
    List.filter (fun (a : t) -> Tmx_opt.Footprint.name_clash a.loc loc) accesses
  in
  let counts =
    List.fold_left
      (fun c a ->
        match (a.mode, a.kind) with
        | Plain, Read -> { c with plain_reads = c.plain_reads + 1 }
        | Plain, Write -> { c with plain_writes = c.plain_writes + 1 }
        | Transactional, Read -> { c with tx_reads = c.tx_reads + 1 }
        | Transactional, Write -> { c with tx_writes = c.tx_writes + 1 })
      no_counts touching
  in
  {
    loc;
    class_ = class_of_counts counts;
    counts;
    threads = List.sort_uniq compare (List.map (fun a -> a.thread) touching);
  }

let summaries (p : Ast.program) =
  let accesses = of_program p in
  (* declared locations first, then any undeclared footprint names the
     program mentions (typos; Ast.validate rejects them, but the summary
     stays total for diagnostics) *)
  let declared = p.locs in
  let extra =
    List.sort_uniq compare
      (List.filter_map
         (fun (a : t) ->
           let covered =
             List.exists (fun l -> Tmx_opt.Footprint.name_clash a.loc l) declared
           in
           if covered then None else Some a.loc)
         accesses)
  in
  List.map (summarize_loc accesses) (declared @ extra)

(* per-thread, per-location counts — the raw summary table *)
let thread_summaries (p : Ast.program) =
  let accesses = of_program p in
  List.concat
    (List.mapi
       (fun i _ ->
         let mine = List.filter (fun a -> a.thread = i) accesses in
         List.filter_map
           (fun loc ->
             let s = summarize_loc mine loc in
             if s.class_ = Unused then None else Some (i, s))
           p.locs)
       p.threads)
