(* Empirical soundness of a transformation: the transformed program may
   not exhibit outcomes the original cannot.  Outcome-set inclusion over
   the exhaustive enumerator is the litmus-scale analogue of the paper's
   trace-set refinement. *)

open Tmx_exec

type verdict = Sound | Unsound of Outcome.t

let pp_verdict ppf = function
  | Sound -> Fmt.string ppf "sound"
  | Unsound o -> Fmt.pf ppf "unsound, new outcome: %a" Outcome.pp o

let check ?config model ~original ~transformed =
  let orig = Enumerate.outcomes (Enumerate.run ?config model original) in
  let trans = Enumerate.outcomes (Enumerate.run ?config model transformed) in
  match
    List.find_opt (fun o -> not (List.exists (Outcome.equal o) orig)) trans
  with
  | None -> Sound
  | Some witness -> Unsound witness

(* Check every single-step application of a named transformation on a
   program. *)
type report = {
  transformation : string;
  program : string;
  variants : int;
  failures : (Tmx_lang.Ast.program * Outcome.t) list;
}

let check_transformation ?config model (t : Transform.named) program =
  let variants = t.generate program in
  let failures =
    List.filter_map
      (fun transformed ->
        match check ?config model ~original:program ~transformed with
        | Sound -> None
        | Unsound o -> Some (transformed, o))
      variants
  in
  {
    transformation = t.name;
    program = program.Tmx_lang.Ast.name;
    variants = List.length variants;
    failures;
  }

let pp_report ppf r =
  Fmt.pf ppf "%s on %s: %d variants, %d unsound" r.transformation r.program
    r.variants (List.length r.failures)
