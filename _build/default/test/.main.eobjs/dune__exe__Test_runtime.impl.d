test/test_runtime.ml: Alcotest Array Atomic Domain Fmt List Option Stm Tmx_runtime Tvar
