The tmx serve daemon answers NDJSON queries over a Unix socket out of
the content-addressed verdict cache.  The socket lives under /tmp: the
sandbox working directory is too deep for the ~100-byte OS limit on
Unix socket paths.  serve prints its bound addresses on startup, so
the background daemon's output goes to a log.

  $ SOCK=/tmp/tmx-serve-$$.sock
  $ DIR=/tmp/tmx-serve-$$.cache
  $ ../bin/tmx.exe serve --socket "$SOCK" --cache-dir "$DIR" --workers 2 --jobs 2 > serve.log 2>&1 &
  $ ../bin/tmx.exe client --socket "$SOCK" --wait 10 ping
  pong

The first batch over the whole catalog populates the cache; the second
pass is answered entirely from it:

  $ ../bin/tmx.exe client --socket "$SOCK" batch --all
  batch: 33 requests, 33 ok, 0 cached
  $ ../bin/tmx.exe client --socket "$SOCK" batch --all
  batch: 33 requests, 33 ok, 33 cached

A wide batch pipelines many sub-requests through one connection: the
large request line and the streamed many-line response exercise the
server's chunked line splitter and resumable writes end to end:

  $ ../bin/tmx.exe client --socket "$SOCK" batch $(yes sb | head -80 | tr '\n' ' ')
  batch: 80 requests, 80 ok, 80 cached

Individual verbs reuse the same entries:

  $ ../bin/tmx.exe client --socket "$SOCK" races sb
  sb: 4 executions, 4 racy, 0 mixed (cached)

  $ ../bin/tmx.exe client --socket "$SOCK" lint privatization
  privatization: race_free false, 1 findings, 1 mixed

`tmx check --remote` ships a litmus file to the daemon instead of
enumerating locally; the cache digest ignores the program name, so the
user's copy shares the catalog program's entries:

  $ ../bin/tmx.exe check --remote "$SOCK" ../litmus/privatization.litmus | tail -1
  ../litmus/privatization.litmus: pass (cached)

A shutdown request stops the daemon, which removes its socket on the
way out:

  $ ../bin/tmx.exe client --socket "$SOCK" shutdown
  shutdown: ok
  $ wait
  $ grep -c '^listening unix:' serve.log
  1
  $ test -e "$SOCK" || echo socket-gone
  socket-gone
  $ rm -rf "$DIR"

Sharded serving over TCP: -s tcp:HOST:PORT binds a TCP transport (port
0 lets the kernel pick; the bound address is printed), and --shards
forks worker processes that share the listening sockets.  The
supervisor respawns a killed shard while the survivors keep answering;
a shutdown request drains them all.

  $ DIR2=/tmp/tmx-serve2-$$.cache
  $ ../bin/tmx.exe serve -s tcp:127.0.0.1:0 --shards 2 --cache-dir "$DIR2" --workers 2 > serve2.log 2>&1 &
  $ for _ in $(seq 100); do grep -q '^shard' serve2.log 2>/dev/null && break; sleep 0.1; done
  $ ADDR=$(sed -n 's/^listening \(tcp:.*\)$/\1/p' serve2.log)
  $ ../bin/tmx.exe client --socket "$ADDR" --wait 10 ping
  pong
  $ ../bin/tmx.exe client --socket "$ADDR" races sb
  sb: 4 executions, 4 racy, 0 mixed

One shard is SIGKILLed mid-service; the client reconnects and the
surviving (and respawned) shards answer, sharing the on-disk cache the
dead shard populated:

  $ kill -9 "$(sed -n 's/^shard \([0-9]*\) started$/\1/p' serve2.log | head -1)"
  $ ../bin/tmx.exe client --socket "$ADDR" --wait 10 ping
  pong
  $ ../bin/tmx.exe client --socket "$ADDR" races sb
  sb: 4 executions, 4 racy, 0 mixed (cached)
  $ ../bin/tmx.exe client --socket "$ADDR" shutdown
  shutdown: ok
  $ wait
  $ grep -c '^listening tcp:127.0.0.1:' serve2.log
  1
  $ rm -rf "$DIR2"
