examples/pipeline.mli:
