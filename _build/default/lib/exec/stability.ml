(* Temporal locality (§4): stability points and the "bounded in time"
   half of the SC-LTRF guarantee.

   A position p of a trace is temporally L-stable when every L-race of
   the trace lies strictly in its past — from p onwards, the locations in
   L are no longer contended.  The temporal content of SC-LTRF is then:
   past a stable point, execution is sequential for L — no (nonaborted)
   L-weak action can occur at or after a stable point of a consistent
   execution.  This is the formal version of the paper's guarded-IRIW
   example: once the guard has observed the flag, the earlier races on x
   are history and reads of x behave sequentially. *)

open Tmx_core

let races_crossing ?l t hb p =
  List.filter (fun (_, c) -> c >= p) (Race.races ?l t hb)

(* p is temporally stable iff no race reaches p or beyond *)
let is_stable ?l t hb p = races_crossing ?l t hb p = []

let stable_points ?l t hb =
  let races = Race.races ?l t hb in
  let horizon = List.fold_left (fun acc (_, c) -> max acc (c + 1)) 0 races in
  List.filter (fun p -> p >= horizon) (List.init (Trace.length t + 1) Fun.id)

(* A weak action whose obscuring write could actually race with it: at
   least one of the pair is plain.  A transactional read from a plain
   source obscured by a transactional write is weak but race-free
   (transactions never race), and the SC-LTRF proof resolves it by
   permuting transactions rather than exhibiting a race — so it is not a
   temporal-locality violation. *)
let conflicting_weak ?l t c =
  (not (Trace.is_aborted t c))
  && Sequentiality.l_weak ?l t c
  &&
  match Action.loc_of (Trace.act t c) with
  | None -> false
  | Some x ->
      let ts_c =
        match Trace.act t c with
        | Action.Write { ts; _ } | Action.Read { ts; _ } -> ts
        | _ -> assert false
      in
      let rec obscured b =
        b < c
        && ((match Trace.act t b with
            | Action.Write w
              when String.equal w.loc x && Rat.lt ts_c w.ts
                   && Trace.is_nonaborted t b ->
                Trace.is_plain t b || Trace.is_plain t c
            | _ -> false)
           || obscured (b + 1))
      in
      obscured 0

let weak_at_or_after ?l t p =
  List.filter
    (fun i -> i >= p && conflicting_weak ?l t i)
    (List.init (Trace.length t) Fun.id)

type violation = {
  trace : Trace.t;
  stable_point : int;
  weak_position : int;
}

(* Check, over every consistent execution of a program, that no
   (nonaborted) L-weak action occurs at or after a temporally L-stable
   point. *)
let check_temporal ?config ?l model program =
  let result = Enumerate.run ?config model program in
  let violations = ref [] in
  List.iter
    (fun (e : Enumerate.execution) ->
      let ctx = Lift.make e.trace in
      let hb = Hb.compute model ctx in
      match stable_points ?l e.trace hb with
      | [] -> ()
      | p :: _ -> (
          match weak_at_or_after ?l e.trace p with
          | [] -> ()
          | w :: _ ->
              violations :=
                { trace = e.trace; stable_point = p; weak_position = w }
                :: !violations))
    result.executions;
  !violations

let temporal_holds ?config ?l model program =
  check_temporal ?config ?l model program = []
