lib/exec/proto.ml: Ast Fmt Hashtbl List Option Tmx_lang
