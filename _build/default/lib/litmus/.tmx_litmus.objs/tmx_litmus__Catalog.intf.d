lib/litmus/catalog.mli: Litmus
