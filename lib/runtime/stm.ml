(* A software transactional memory for OCaml 5 realizing the paper's
   implementation model (§5).

   Four versioning strategies, matching §3's design-space discussion and
   the Manticore lineage (SNIPPETS.md):

   - [Lazy]: TL2-style.  A global version clock; reads validate against
     the transaction's read version (giving opacity); writes are buffered
     and published at commit under per-variable versioned locks.
   - [Eager]: encounter-time locking with an undo log.  Writes lock the
     variable and update in place; aborts roll back.
   - [Partial]: [Lazy] plus partial aborts.  Every versioned read logs
     the value it returned; when validation finds the read set invalid,
     the transaction keeps the still-valid prefix up to the oldest
     invalidated read (clamped to a READ_SET_BOUND-style budget) and
     re-runs the closure, serving the retained reads from the value log
     instead of memory.  OCaml 5's one-shot continuations rule out
     Manticore's captured-continuation checkpoints, so the re-run *is*
     the checkpoint: the closure is deterministic given its read values,
     hence replaying the recorded prefix values reproduces the original
     prefix execution exactly, and only the suffix touches memory again.
     The one construct that breaks replay determinism is an [or_else]
     whose first branch made memory reads and then aborted (those reads
     influenced control flow but left the read set); such transactions
     fall back to a full abort.
   - [Norec]: a single global sequence lock and value-based validation —
     no per-variable ownership metadata is consulted at all.  Writer
     commits serialize on the counter (odd = write-back in flight);
     in-flight transactions revalidate their read set by value whenever
     the counter moved, which gives opacity without per-read version
     checks.  NOrec transactions must not run concurrently with
     lazy/eager/partial transactions over the same variables: they
     ignore the per-variable locks the other modes rely on.

   All four order transactions with a direct dependency (the publication
   idiom) by construction — a reader validates against the writer's
   commit — but neither orders transactions against later plain accesses
   (the privatization idiom): that requires [quiesce], the quiescence
   fence of §5, implemented as an RCU-style grace period over the
   active-transaction registry.

   Around the core protocol sit three operational layers:

   - contention management ([Contention], pluggable per call): how a
     conflicted transaction waits before retrying, including a
     retry-budget policy that escalates starved transactions to a
     serialized slow path;
   - statistics: per-mode commit/abort counters split by abort reason,
     plus retry-count and commit-latency histograms, all read through
     pure snapshots ([stats]); the legacy three-counter
     [stats_snapshot] is kept as a projection;
   - tracing ([Stm_trace], off by default): per-domain ring buffers of
     structured begin/abort/commit/quiesce events. *)

module Trace = Stm_trace
module Contention = Contention

type mode = Lazy | Eager | Partial | Norec

let mode_name = function
  | Lazy -> "lazy"
  | Eager -> "eager"
  | Partial -> "partial"
  | Norec -> "norec"

(* why an optimistic attempt failed *)
type conflict =
  | Validation (* a read (or the commit-time read-set check) saw a torn version *)
  | Lock (* a lock acquisition lost to a concurrent writer *)

exception Retry_conflict of conflict
exception User_abort

exception Partial_restart of int
(* internal to partial mode: re-run the closure keeping the oldest [p]
   read-set entries and serving them from the value log *)

let clock = Atomic.make 0

(* NOrec's global commit counter / sequence lock: even = free, odd = a
   writer's commit write-back is in flight *)
let norec_seq = Atomic.make 0

(* --- statistics ----------------------------------------------------- *)

(* counters are per mode (index 0 = Lazy, 1 = Eager, 2 = Partial,
   3 = Norec) and, for aborts, per reason; histograms are global.
   Everything is an atomic cell so [stats] is a pure read. *)

let mode_index = function Lazy -> 0 | Eager -> 1 | Partial -> 2 | Norec -> 3
let n_modes = 4

let acell_array n = Array.init n (fun _ -> Atomic.make 0)

let commit_counts = acell_array n_modes
let validation_counts = acell_array n_modes
let lock_counts = acell_array n_modes
let user_abort_counts = acell_array n_modes
let quiesce_count = Atomic.make 0
let escalation_count = Atomic.make 0
let partial_abort_count = Atomic.make 0

(* histogram buckets: value v lands in the first bucket with
   v <= bounds.(i); the extra last bucket is the overflow *)
let retry_bounds = [| 0; 1; 2; 4; 8; 16; 32 |]
let latency_bounds_ns = [| 1_000; 10_000; 100_000; 1_000_000; 10_000_000 |]
let retry_counts = acell_array (Array.length retry_bounds + 1)
let latency_counts = acell_array (Array.length latency_bounds_ns + 1)

let observe bounds counts v =
  let n = Array.length bounds in
  let rec bucket i = if i >= n || v <= bounds.(i) then i else bucket (i + 1) in
  Atomic.incr counts.(bucket 0)

type mode_stats = {
  commits : int;
  validation_aborts : int;
  lock_aborts : int;
  user_aborts : int;
}

type histogram = { bounds : int array; counts : int array }

type snapshot = {
  lazy_stats : mode_stats;
  eager_stats : mode_stats;
  partial_stats : mode_stats;
  norec_stats : mode_stats;
  retry_hist : histogram; (* retries per committed transaction *)
  latency_hist_ns : histogram; (* first-attempt-to-commit latency *)
  quiesces : int;
  escalations : int; (* transactions that took the serialized slow path *)
  partial_aborts : int; (* checkpoint rollbacks that avoided a full abort *)
}

let stats () =
  let mode_stats i =
    {
      commits = Atomic.get commit_counts.(i);
      validation_aborts = Atomic.get validation_counts.(i);
      lock_aborts = Atomic.get lock_counts.(i);
      user_aborts = Atomic.get user_abort_counts.(i);
    }
  in
  let hist bounds counts =
    { bounds = Array.copy bounds; counts = Array.map Atomic.get counts }
  in
  {
    lazy_stats = mode_stats 0;
    eager_stats = mode_stats 1;
    partial_stats = mode_stats 2;
    norec_stats = mode_stats 3;
    retry_hist = hist retry_bounds retry_counts;
    latency_hist_ns = hist latency_bounds_ns latency_counts;
    quiesces = Atomic.get quiesce_count;
    escalations = Atomic.get escalation_count;
    partial_aborts = Atomic.get partial_abort_count;
  }

let reset_stats () =
  let zero = Array.iter (fun c -> Atomic.set c 0) in
  zero commit_counts;
  zero validation_counts;
  zero lock_counts;
  zero user_abort_counts;
  zero retry_counts;
  zero latency_counts;
  Atomic.set quiesce_count 0;
  Atomic.set escalation_count 0;
  Atomic.set partial_abort_count 0

(* the legacy triple (commits, conflicts, user aborts), a projection of
   the per-mode counters so existing callers keep working unchanged *)
let stats_snapshot () =
  let s = stats () in
  let total f =
    f s.lazy_stats + f s.eager_stats + f s.partial_stats + f s.norec_stats
  in
  ( total (fun m -> m.commits),
    total (fun m -> m.validation_aborts + m.lock_aborts),
    total (fun m -> m.user_aborts) )

let pp_mode_stats ppf m =
  Fmt.pf ppf "commits:%d aborts:{validation:%d lock:%d user:%d}" m.commits
    m.validation_aborts m.lock_aborts m.user_aborts

let pp_histogram ppf h =
  let n = Array.length h.bounds in
  Array.iteri
    (fun i c ->
      if i > 0 then Fmt.sp ppf ();
      if i < n then Fmt.pf ppf "<=%d:%d" h.bounds.(i) c
      else Fmt.pf ppf ">%d:%d" h.bounds.(n - 1) c)
    h.counts

(* --- transactions ---------------------------------------------------- *)

type tx = {
  mode : mode;
  mutable rv : int;
      (* read version (lazy/eager/partial: global clock sample, extended
         on revalidation in partial mode) or, in norec mode, the global
         sequence value the read set was last validated at *)
  footprint : int list option; (* declared TVar ids, for selective fences *)
  mutable reads : (Tvar.t * int) list;
      (* read set, newest first.  lazy/eager/partial: variable and
         observed VERSION; norec: variable and observed VALUE (no
         per-variable metadata is consulted) *)
  mutable writes : (Tvar.t * int) list; (* lazy/partial/norec write buffer *)
  mutable undo : (Tvar.t * int * int option) list;
      (* eager: var, overwritten value, and — on the first write to the
         variable, which also takes its lock — the pre-lock version.
         Every write is logged so [or_else] can roll back to a branch
         point. *)
  mutable vals : int list;
      (* partial: value returned by each versioned read, newest first,
         aligned with [reads] *)
  mutable replay : int list;
      (* partial: after a partial abort, the retained prefix's values,
         oldest first; versioned reads are served from here until the
         re-run catches up with where it rolled back to *)
  mutable unreplayable : bool;
      (* partial: an [or_else] discarded memory reads of an aborted
         first branch — the value log no longer determines the re-run's
         control flow, so a partial abort must degrade to a full one *)
}

(* partial mode: the READ_SET_BOUND analog — a rollback never keeps more
   than this many reads — and the per-attempt partial-abort budget
   before degrading to a full abort *)
let partial_read_set_bound = 64
let max_partial_restarts = 8

let abort _tx = raise User_abort

(* a transaction that declared a footprint must stay inside it: a stray
   access would defeat selective quiescence silently *)
let check_footprint tx v =
  match tx.footprint with
  | Some ids when not (List.mem (Tvar.id v) ids) ->
      invalid_arg
        (Fmt.str "Stm: access to tvar#%d outside the declared footprint" (Tvar.id v))
  | _ -> ()

let eager_owns tx v = List.exists (fun (u, _, _) -> u == v) tx.undo

let validation_fail v =
  Stm_trace.record Stm_trace.Read_validate_fail ~detail:(Tvar.id v) ();
  raise (Retry_conflict Validation)

let lock_fail v =
  Stm_trace.record Stm_trace.Lock_fail ~detail:(Tvar.id v) ();
  raise (Retry_conflict Lock)

let read_versioned tx v =
  let s1 = Tvar.version_word v in
  if Tvar.locked s1 || s1 > tx.rv then validation_fail v;
  let x = Tvar.unsafe_read v in
  let s2 = Tvar.version_word v in
  if s1 <> s2 then validation_fail v;
  tx.reads <- (v, s1) :: tx.reads;
  x

(* -- partial mode ------------------------------------------------------ *)

let rec list_drop k l =
  if k <= 0 then l else match l with [] -> [] | _ :: t -> list_drop (k - 1) t

(* Timestamp extension with partial-abort fallout: sample the clock,
   revalidate the whole read set oldest-first; if it holds, move rv
   forward; if not, roll back to the oldest invalidated read (a full
   abort when that is read 0, or when replay can no longer reproduce the
   prefix). *)
let partial_extend tx =
  let t = Atomic.get clock in
  let rec oldest_invalid j = function
    | [] -> None
    | (v, s1) :: older ->
        let w = Tvar.version_word v in
        if Tvar.locked w || w <> s1 then Some j else oldest_invalid (j + 1) older
  in
  match oldest_invalid 0 (List.rev tx.reads) with
  | None -> tx.rv <- t
  | Some j ->
      Stm_trace.record Stm_trace.Read_validate_fail ();
      if j = 0 || tx.unreplayable then raise (Retry_conflict Validation)
      else raise (Partial_restart (min j partial_read_set_bound))

let rec partial_read_versioned tx v =
  let s1 = Tvar.version_word v in
  if Tvar.locked s1 then lock_fail v
  else if s1 > tx.rv then begin
    (* a fresh read past rv is not a conflict yet: extend if the read
       set still validates, partially abort otherwise *)
    partial_extend tx;
    partial_read_versioned tx v
  end
  else begin
    let x = Tvar.unsafe_read v in
    let s2 = Tvar.version_word v in
    if s1 <> s2 then begin
      partial_extend tx;
      partial_read_versioned tx v
    end
    else begin
      tx.reads <- (v, s1) :: tx.reads;
      tx.vals <- x :: tx.vals;
      x
    end
  end

let partial_read tx v =
  match List.find_opt (fun (u, _) -> u == v) tx.writes with
  | Some (_, x) -> x
  | None -> (
      match tx.replay with
      | x :: rest ->
          (* re-running the prefix after a partial abort: the read-set
             entry for this read is already retained; serve the recorded
             value so the prefix replays deterministically *)
          tx.replay <- rest;
          x
      | [] -> partial_read_versioned tx v)

(* -- norec mode -------------------------------------------------------- *)

(* wait until no writer holds the sequence lock; returns the (even)
   counter value *)
let rec norec_sample () =
  let s = Atomic.get norec_seq in
  if s land 1 = 1 then begin
    Domain.cpu_relax ();
    norec_sample ()
  end
  else s

(* the counter moved: revalidate every read by value against a stable
   (even, unchanged) counter window, then adopt that window *)
let rec norec_extend tx =
  let s = norec_sample () in
  let ok = List.for_all (fun (v, x) -> Tvar.unsafe_read v = x) tx.reads in
  if not ok then begin
    Stm_trace.record Stm_trace.Read_validate_fail ();
    raise (Retry_conflict Validation)
  end;
  if Atomic.get norec_seq <> s then norec_extend tx else tx.rv <- s

let norec_read tx v =
  match List.find_opt (fun (u, _) -> u == v) tx.writes with
  | Some (_, x) -> x
  | None ->
      let rec go () =
        if Atomic.get norec_seq <> tx.rv then norec_extend tx;
        let x = Tvar.unsafe_read v in
        (* the counter must not have moved across the read, else the
           value may belong to a half-published write set *)
        if Atomic.get norec_seq <> tx.rv then go ()
        else begin
          tx.reads <- (v, x) :: tx.reads;
          x
        end
      in
      go ()

let read tx v =
  check_footprint tx v;
  match tx.mode with
  | Lazy -> (
      match List.find_opt (fun (u, _) -> u == v) tx.writes with
      | Some (_, x) -> x
      | None -> read_versioned tx v)
  | Partial -> partial_read tx v
  | Norec -> norec_read tx v
  | Eager ->
      if eager_owns tx v then Tvar.unsafe_read v else read_versioned tx v

let write tx v x =
  check_footprint tx v;
  match tx.mode with
  | Lazy | Partial | Norec ->
      tx.writes <- (v, x) :: List.filter (fun (u, _) -> u != v) tx.writes
  | Eager ->
      if eager_owns tx v then begin
        tx.undo <- (v, Tvar.unsafe_read v, None) :: tx.undo;
        Tvar.unsafe_write v x
      end
      else begin
        match Tvar.try_lock v with
        | None -> lock_fail v
        | Some prev ->
            tx.undo <- (v, Tvar.unsafe_read v, Some prev) :: tx.undo;
            Tvar.unsafe_write v x
      end

(* roll the undo log back (newest first) down to [until] (an earlier
   value of [tx.undo], physically); locks are released at their
   first-write entries *)
let rec eager_rollback_to tx until =
  if tx.undo != until then
    match tx.undo with
    | [] -> ()
    | (v, old, prev) :: rest ->
        Tvar.unsafe_write v old;
        (match prev with Some p -> Tvar.unlock v ~version:p | None -> ());
        tx.undo <- rest;
        eager_rollback_to tx until

let eager_rollback tx = eager_rollback_to tx []

(* Validate the read set: each read variable must be at the observed
   version and not locked by another transaction.  A variable locked by
   the committing transaction itself validates against the version saved
   when the lock was taken — anything newer means a concurrent commit
   slipped between our read and our lock (a would-be lost update). *)
let validate ?(own = []) tx =
  List.for_all
    (fun (v, s1) ->
      match List.find_opt (fun (u, _) -> u == v) own with
      | Some (_, prev) -> prev = s1
      | None ->
          let word = Tvar.version_word v in
          (not (Tvar.locked word)) && word = s1)
    tx.reads

let commit_validation_fail () =
  Stm_trace.record Stm_trace.Read_validate_fail ();
  raise (Retry_conflict Validation)

let lazy_commit tx =
  if tx.writes = [] then begin
    (* read-only transactions commit without locking *)
    if not (validate tx) then commit_validation_fail ()
  end
  else begin
    let to_lock =
      List.sort_uniq (fun (a, _) (b, _) -> compare (Tvar.id a) (Tvar.id b)) tx.writes
    in
    let locked = ref [] in
    let release () =
      List.iter (fun (v, prev) -> Tvar.unlock v ~version:prev) !locked
    in
    (try
       List.iter
         (fun (v, _) ->
           match Tvar.try_lock v with
           | Some prev -> locked := (v, prev) :: !locked
           | None -> lock_fail v)
         to_lock
     with Retry_conflict _ as e ->
       release ();
       raise e);
    (* a write variable observed before being locked must still be at its
       observed version *)
    if not (validate ~own:!locked tx) then begin
      release ();
      commit_validation_fail ()
    end;
    let wv = Atomic.fetch_and_add clock 2 + 2 in
    List.iter (fun (v, x) -> Tvar.unsafe_write v x) (List.rev tx.writes);
    List.iter (fun (v, _) -> Tvar.unlock v ~version:wv) !locked
  end

(* lazy_commit, except a validation failure becomes a partial abort to
   the oldest invalidated read when one is possible *)
let partial_commit tx =
  let partial_validation_fail ~own =
    Stm_trace.record Stm_trace.Read_validate_fail ();
    let rec oldest_invalid j = function
      | [] -> None
      | (v, s1) :: older -> (
          match List.find_opt (fun (u, _) -> u == v) own with
          | Some (_, prev) ->
              if prev = s1 then oldest_invalid (j + 1) older else Some j
          | None ->
              let w = Tvar.version_word v in
              if Tvar.locked w || w <> s1 then Some j
              else oldest_invalid (j + 1) older)
    in
    match oldest_invalid 0 (List.rev tx.reads) with
    | Some j when j > 0 && not tx.unreplayable ->
        raise (Partial_restart (min j partial_read_set_bound))
    | _ -> raise (Retry_conflict Validation)
  in
  if tx.writes = [] then begin
    if not (validate tx) then partial_validation_fail ~own:[]
  end
  else begin
    let to_lock =
      List.sort_uniq (fun (a, _) (b, _) -> compare (Tvar.id a) (Tvar.id b)) tx.writes
    in
    let locked = ref [] in
    let release () =
      List.iter (fun (v, prev) -> Tvar.unlock v ~version:prev) !locked
    in
    (try
       List.iter
         (fun (v, _) ->
           match Tvar.try_lock v with
           | Some prev -> locked := (v, prev) :: !locked
           | None -> lock_fail v)
         to_lock
     with Retry_conflict _ as e ->
       release ();
       raise e);
    if not (validate ~own:!locked tx) then begin
      release ();
      partial_validation_fail ~own:!locked
    end;
    let wv = Atomic.fetch_and_add clock 2 + 2 in
    List.iter (fun (v, x) -> Tvar.unsafe_write v x) (List.rev tx.writes);
    List.iter (fun (v, _) -> Tvar.unlock v ~version:wv) !locked
  end

(* NOrec commit: read-only transactions are consistent by construction
   (every read revalidated the set whenever the counter moved, and the
   set was read under a stable counter); writers serialize on the
   sequence lock and publish with plain writes — no per-variable lock is
   taken or bumped *)
let norec_commit tx =
  if tx.writes <> [] then begin
    let rec acquire () =
      if not (Atomic.compare_and_set norec_seq tx.rv (tx.rv + 1)) then begin
        (* the counter moved since we last validated: revalidate (which
           also waits out any writer) and try again *)
        norec_extend tx;
        acquire ()
      end
    in
    acquire ();
    List.iter (fun (v, x) -> Tvar.unsafe_write v x) (List.rev tx.writes);
    Atomic.set norec_seq (tx.rv + 2)
  end

let eager_commit tx =
  let own =
    List.filter_map
      (fun (v, _, prev) -> Option.map (fun p -> (v, p)) prev)
      tx.undo
  in
  if not (validate ~own tx) then begin
    eager_rollback tx;
    commit_validation_fail ()
  end;
  let wv = Atomic.fetch_and_add clock 2 + 2 in
  List.iter (fun (v, _) -> Tvar.unlock v ~version:wv) own;
  tx.undo <- []

(* Composition: try [f1]; if it aborts, undo its effects and try [f2]
   within the same transaction (the classic STM orElse). *)
let or_else tx f1 f2 =
  let saved_reads = tx.reads in
  match tx.mode with
  | Lazy | Norec ->
      let saved_writes = tx.writes in
      (try f1 tx
       with User_abort ->
         tx.reads <- saved_reads;
         tx.writes <- saved_writes;
         f2 tx)
  | Partial ->
      let saved_writes = tx.writes and saved_vals = tx.vals in
      (try f1 tx
       with User_abort ->
         (* the aborted branch's memory reads shaped control flow but
            leave the read set: the value log alone can no longer replay
            this transaction, so partial aborts must degrade to full *)
         if tx.reads != saved_reads then tx.unreplayable <- true;
         tx.reads <- saved_reads;
         tx.writes <- saved_writes;
         tx.vals <- saved_vals;
         f2 tx)
  | Eager -> (
      let saved_undo = tx.undo in
      try f1 tx
      with User_abort ->
        eager_rollback_to tx saved_undo;
        tx.reads <- saved_reads;
        f2 tx)

(* Run one attempt; [Error (`Conflict _)] means retry, [Error `Aborted]
   means the user aborted. *)
let make_tx ?footprint mode =
  let rv = match mode with Norec -> norec_sample () | _ -> Atomic.get clock in
  {
    mode;
    rv;
    footprint;
    reads = [];
    writes = [];
    undo = [];
    vals = [];
    replay = [];
    unreplayable = false;
  }

let commit tx =
  match tx.mode with
  | Lazy -> lazy_commit tx
  | Eager -> eager_commit tx
  | Partial -> partial_commit tx
  | Norec -> norec_commit tx

(* roll the transaction back to the retained prefix of [p] reads: the
   re-run serves those reads from the value log and only re-executes —
   and re-buffers — the suffix *)
let partial_restart tx p =
  let n = List.length tx.reads in
  let p = min p n in
  Atomic.incr partial_abort_count;
  Stm_trace.record Stm_trace.Partial_abort ~detail:p ();
  tx.reads <- list_drop (n - p) tx.reads;
  tx.vals <- list_drop (n - p) tx.vals;
  tx.replay <- List.rev tx.vals;
  tx.writes <- [];
  tx.unreplayable <- false

let attempt ?footprint mode f =
  Registry.enter ?footprint ();
  let result =
    (* partial mode re-runs the closure in place on a partial abort —
       still the same attempt, same registry span; [budget] bounds the
       rollbacks before degrading to a full abort *)
    let rec run tx budget =
      match f tx with
      | x -> (
          match commit tx with
          | () -> Ok x
          | exception Partial_restart p when budget > 0 ->
              partial_restart tx p;
              run tx (budget - 1)
          | exception Partial_restart _ -> Error (`Conflict Validation)
          | exception Retry_conflict c -> Error (`Conflict c))
      | exception Partial_restart p when budget > 0 ->
          partial_restart tx p;
          run tx (budget - 1)
      | exception Partial_restart _ -> Error (`Conflict Validation)
      | exception Retry_conflict c ->
          if mode = Eager then eager_rollback tx;
          Error (`Conflict c)
      | exception User_abort ->
          if mode = Eager then eager_rollback tx;
          Error `Aborted
      | exception exn ->
          if mode = Eager then eager_rollback tx;
          Registry.exit ();
          raise exn
    in
    run (make_tx ?footprint mode) max_partial_restarts
  in
  Registry.exit ();
  result

let now_ns = Clock.now_ns

(* Commit [f], retrying on conflicts under the contention policy;
   [Error `Aborted] if the user aborted (the paper's explicit abort —
   not retried). *)
let atomically_result ?(mode = Lazy) ?(policy = Contention.default_policy)
    ?footprint f =
  let footprint = Option.map (List.map Tvar.id) footprint in
  let mi = mode_index mode in
  let t0 = now_ns () in
  let committed retries x =
    Atomic.incr commit_counts.(mi);
    observe retry_bounds retry_counts retries;
    observe latency_bounds_ns latency_counts (now_ns () - t0);
    Stm_trace.record Stm_trace.Commit ~detail:retries ();
    Ok x
  in
  let conflicted = function
    | Validation -> Atomic.incr validation_counts.(mi)
    | Lock -> Atomic.incr lock_counts.(mi)
  in
  let aborted () =
    Atomic.incr user_abort_counts.(mi);
    Stm_trace.record Stm_trace.User_abort ();
    Error `Aborted
  in
  let one_attempt n =
    Stm_trace.record Stm_trace.Begin ~detail:n ();
    attempt ?footprint mode f
  in
  (* the serialized slow path: the gate stalls new optimistic attempts
     on every other domain, so the in-flight ones drain and this
     transaction commits after bounded interference *)
  let escalate n =
    Atomic.incr escalation_count;
    Stm_trace.record Stm_trace.Escalate ~detail:n ();
    Contention.serialized (fun () ->
        let rec again n =
          match one_attempt n with
          | Ok x -> committed n x
          | Error (`Conflict c) ->
              conflicted c;
              Domain.cpu_relax ();
              again (n + 1)
          | Error `Aborted -> aborted ()
        in
        again n)
  in
  let rec go n =
    Contention.stall_if_serialized ();
    match one_attempt n with
    | Ok x -> committed n x
    | Error (`Conflict c) ->
        conflicted c;
        if Contention.escalates policy ~retry:n then escalate (n + 1)
        else begin
          Contention.backoff policy ~retry:n;
          go (n + 1)
        end
    | Error `Aborted -> aborted ()
  in
  go 0

let atomically ?mode ?policy ?footprint f =
  match atomically_result ?mode ?policy ?footprint f with
  | Ok x -> Some x
  | Error `Aborted -> None

(* The quiescence fence of §5: returns once every (relevant) transaction
   that was in flight at the call has resolved, so subsequent plain
   accesses cannot race with pre-fence transactions (privatization).
   With [var], only transactions that might touch that TVar are waited
   for — the per-location hQxi fence, sound because transactions with
   declared footprints cannot stray (checked on every access). *)
let quiesce ?var () =
  let vid = Option.map Tvar.id var in
  let detail = Option.value vid ~default:(-1) in
  Stm_trace.record Stm_trace.Quiesce_start ~detail ();
  Atomic.incr quiesce_count;
  Registry.quiesce ?var:vid ();
  Stm_trace.record Stm_trace.Quiesce_end ~detail ()
