test/test_opt.ml: Alcotest Ast Fmt List Model Option Soundness Tmx_core Tmx_exec Tmx_lang Tmx_litmus Tmx_opt Transform
