(* Path-keyed program edits — the repair synthesizer's edit language.

   Edits address statements by the same source paths [Tmx_analysis.Access]
   derives ("t1.0.atomic.2.then.0"): thread roots are "t<i>", statement
   indices append ".<j>", and Atomic/If/While bodies append
   ".atomic"/".then"/".else"/".do".  [apply] re-derives the paths in a
   single walk over the original program, so an edit list computed from a
   lint report applies without re-analysis — and edits never see each
   other's renumbering (a promoted access keeps its pre-edit path).

   Three edit kinds, matching the repair search's candidate space:

   - [Insert_fence]: place a quiescence fence immediately before the
     addressed statement (the per-site refinement of the wholesale
     [Fenceify] pass).  Refused inside atomic blocks, where the language
     forbids fences.
   - [Promote]: wrap the addressed plain load/store in its own
     [atomic { }] block, making it transactional.
   - [Absorb]: merge the addressed plain load/store into an adjacent
     sibling atomic block (the preceding one if it exists, else the
     following one) — guard strengthening: the neighbouring transaction's
     atomicity is extended to cover the access, rather than minting a
     new transaction.  Refused when neither neighbour is atomic.

   Errors (conflicting edits, unmatched paths, illegal targets) are
   reported as [Error msg]; the rewritten program is re-validated with
   [Ast.validate] before being returned. *)

open Tmx_lang

type edit =
  | Insert_fence of { before : string; fence_loc : string }
  | Promote of { path : string }
  | Absorb of { path : string }

let pp_edit ppf = function
  | Insert_fence { before; fence_loc } ->
      Fmt.pf ppf "insert fence(%s) before %s" fence_loc before
  | Promote { path } -> Fmt.pf ppf "promote %s into atomic" path
  | Absorb { path } -> Fmt.pf ppf "absorb %s into adjacent atomic" path

let path_of = function
  | Insert_fence { before; _ } -> before
  | Promote { path } | Absorb { path } -> path

let is_fence = function Insert_fence _ -> true | Promote _ | Absorb _ -> false
let fence_count edits = List.length (List.filter is_fence edits)

exception Fail of string

let fail fmt = Fmt.kstr (fun s -> raise (Fail s)) fmt

let apply edits (p : Ast.program) =
  let program_locs = p.Ast.locs in
  try
  (* split the edit list into fence insertions (keyed by the statement
     they precede; several may stack) and statement rewrites (at most
     one per path) *)
  let fences = Hashtbl.create 7 and rewrites = Hashtbl.create 7 in
  let consumed = Hashtbl.create 7 in
  List.iter
    (fun e ->
      match e with
      | Insert_fence { before; fence_loc } ->
          let prior = Option.value (Hashtbl.find_opt fences before) ~default:[] in
          if not (List.mem fence_loc prior) then
            Hashtbl.replace fences before (prior @ [ fence_loc ])
      | Promote _ | Absorb _ ->
          let path = path_of e in
          if Hashtbl.mem rewrites path then
            raise (Fail (Fmt.str "conflicting edits at %s" path));
          Hashtbl.replace rewrites path e)
    edits;
  let take tbl path =
    match Hashtbl.find_opt tbl path with
    | None -> None
    | Some v ->
        Hashtbl.replace consumed path ();
        Some v
  in
  let plain_access path = function
    | (Ast.Load _ | Ast.Store _) as s -> s
    | _ -> fail "%s is not a load or store" path
  in
  (* Rewrite one statement list.  [path] is the enclosing body's path
     prefix; children are [path.i].  Forward absorption ([x := e]
     followed by its absorbing atomic) is handled by looking one raw
     sibling ahead and carrying the absorbed statement into the
     atomic's rebuilt body. *)
  let rec body ~path ~in_txn stmts =
    let rec go i ~carry acc = function
      | [] ->
          (match carry with
          | [] -> ()
          | _ -> fail "internal: dangling absorbed statement");
          List.rev acc
      | s :: rest ->
          let p = Fmt.str "%s.%d" path i in
          let acc =
            match take fences p with
            | None -> acc
            | Some locs ->
                if in_txn then
                  fail "cannot insert a fence inside an atomic block (%s)" p;
                (* a footprint wildcard ("z[*]") fences every declared
                   cell of the array, as [Fenceify] does *)
                let expanded =
                  List.sort_uniq compare
                    (List.concat_map
                       (Footprint.expand_name ~locs:program_locs)
                       locs)
                in
                List.rev_append (List.map Ast.fence expanded) acc
          in
          let acc, carry' =
            match take rewrites p with
            | Some (Promote _) ->
                if in_txn then fail "%s is already transactional" p;
                (Ast.Atomic [ plain_access p s ] :: acc, [])
            | Some (Absorb _) -> (
                if in_txn then fail "%s is already transactional" p;
                let s = plain_access p s in
                match acc with
                | Ast.Atomic b :: acc' -> (Ast.Atomic (b @ [ s ]) :: acc', [])
                | _ -> (
                    match rest with
                    | Ast.Atomic _ :: _ -> (acc, carry @ [ s ])
                    | _ -> fail "%s has no adjacent atomic block to absorb into" p
                    ))
            | Some (Insert_fence _) | None ->
                let s' =
                  match s with
                  | Ast.Atomic b ->
                      Ast.Atomic
                        (carry @ body ~path:(p ^ ".atomic") ~in_txn:true b)
                  | Ast.If (c, t, e) ->
                      Ast.If
                        ( c,
                          body ~path:(p ^ ".then") ~in_txn t,
                          body ~path:(p ^ ".else") ~in_txn e )
                  | Ast.While (c, b) ->
                      Ast.While (c, body ~path:(p ^ ".do") ~in_txn b)
                  | s -> s
                in
                (s' :: acc, [])
          in
          (match (carry', carry) with
          | [], _ :: _ -> (
              (* a carried absorb must land in the very next statement *)
              match s with
              | Ast.Atomic _ -> ()
              | _ -> fail "internal: absorbed statement skipped its atomic")
          | _ -> ());
          go (i + 1) ~carry:carry' acc rest
    in
    go 0 ~carry:[] [] stmts
  in
    let threads =
      List.mapi
        (fun i th -> body ~path:(Fmt.str "t%d" i) ~in_txn:false th)
        p.Ast.threads
    in
    (* every edit must have found its statement *)
    List.iter
      (fun e ->
        let path = path_of e in
        (* a fence's key and a rewrite's key can coincide; consumption
           is tracked per path *)
        if not (Hashtbl.mem consumed path) then
          fail "no statement at %s (edit: %a)" path pp_edit e)
      edits;
    let p' = { p with Ast.threads } in
    match Ast.validate p' with
    | Ok () -> Ok p'
    | Error e -> Error (Fmt.str "edited program is invalid: %s" e)
  with Fail msg -> Error msg
