(** L-sequentiality (§4).

    An action is L-sequential if it does not touch L, is a transaction
    boundary or fence, or obeys the sequential store discipline: a write's
    timestamp exceeds every earlier same-location timestamp, and a read
    reads from the newest earlier write.  Omitting [l] means L = all
    locations. *)

val l_sequential_action : ?l:string list -> Trace.t -> int -> bool
val l_weak : ?l:string list -> Trace.t -> int -> bool
val l_sequential : ?l:string list -> Trace.t -> bool

val transactionally_l_sequential : ?l:string list -> Trace.t -> bool
(** Every action L-sequential and every transaction contiguous. *)

val weak_positions : ?l:string list -> Trace.t -> int list
