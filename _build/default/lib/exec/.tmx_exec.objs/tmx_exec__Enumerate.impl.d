lib/exec/enumerate.ml: Action Array Consistency Fmt Fun Hashtbl Hb Lift List Model Option Outcome Proto Rat String Tmx_core Tmx_lang Trace Wellformed
