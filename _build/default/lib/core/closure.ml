(* Causal closure and contiguity permutations (§4 and appendix A).

   The causality relation (hb ∪ lwr ∪ xrw) drives both: σ#a removes the
   causal up-closure of an action (used by the SC-LTRF proof to rewind a
   trace past an action without touching its causes), and Lemma A.5's
   construction linearizes causality classes to give an order-preserving
   permutation with contiguous transactions. *)

let causality (ctx : Lift.ctx) hb = Rel.union_many [ hb; ctx.lwr; ctx.xrw ]

(* positions strictly causally after [a] (transitively), excluding [a] *)
let causal_future model t a =
  let ctx = Lift.make t in
  let hb = Hb.compute model ctx in
  let c = Rel.transitive_closure (causality ctx hb) in
  List.filter (fun b -> b <> a && Rel.mem c a b) (List.init (Trace.length t) Fun.id)

(* σ#a: drop every event that causally follows [a] ([a] itself stays). *)
let drop_causal_future model t a =
  let future = causal_future model t a in
  Trace.sub t (fun i -> not (List.mem i future))

(* Lemma A.5: an order-preserving permutation with contiguous
   transactions, built by topologically sorting tx~ classes under the
   contraction of causality (lifted edges are class-level; program order
   between classes is uniform because atomic blocks are syntactic).

   Returns [None] when no such well-formed permutation exists.  This is
   not always a bug: the lemma's parenthetical claim ("any consistent
   trace has an order-preserving permutation with contiguous
   transactions") fails for aborted transactions — an aborted transaction
   that writes a smaller timestamp than, and reads from, a committed
   transaction must interleave with it (WF9 forces its write before, WF8
   its read after).  See the corresponding test for a concrete
   counterexample. *)
let contiguous_permutation model t =
  let n = Trace.length t in
  let ctx = Lift.make t in
  let hb = Hb.compute model ctx in
  let c = causality ctx hb in
  let cls i =
    let b = Trace.txn_of t i in
    if b >= 0 then b else i
  in
  (* class-level successors from causality and program order *)
  let succs = Hashtbl.create 16 in
  let indeg = Hashtbl.create 16 in
  let classes = List.sort_uniq compare (List.map cls (List.init n Fun.id)) in
  List.iter (fun k -> Hashtbl.replace indeg k 0) classes;
  let edge a b =
    if a <> b then begin
      let existing = Option.value (Hashtbl.find_opt succs a) ~default:[] in
      if not (List.mem b existing) then begin
        Hashtbl.replace succs a (b :: existing);
        Hashtbl.replace indeg b (Hashtbl.find indeg b + 1)
      end
    end
  in
  Rel.iter c (fun i j -> edge (cls i) (cls j));
  Rel.iter (Trace.rel_po t) (fun i j -> edge (cls i) (cls j));
  (* Kahn's algorithm over classes, deterministic order *)
  let ready () =
    List.filter (fun k -> Hashtbl.find indeg k = 0 && Hashtbl.mem indeg k) classes
    |> List.filter (fun k -> Hashtbl.find indeg k = 0)
  in
  let emitted = Hashtbl.create 16 in
  let order = ref [] in
  let rec go () =
    match List.find_opt (fun k -> not (Hashtbl.mem emitted k)) (ready ()) with
    | None -> ()
    | Some k ->
        Hashtbl.replace emitted k ();
        Hashtbl.replace indeg k (-1);
        order := k :: !order;
        List.iter
          (fun b ->
            if not (Hashtbl.mem emitted b) then
              Hashtbl.replace indeg b (Hashtbl.find indeg b - 1))
          (Option.value (Hashtbl.find_opt succs k) ~default:[]);
        go ()
  in
  go ();
  if List.length !order <> List.length classes then None
  else begin
    let perm =
      List.concat_map
        (fun k -> List.filter (fun i -> cls i = k) (List.init n Fun.id))
        (List.rev !order)
    in
    let perm = Array.of_list perm in
    if
      Trace.is_order_preserving t perm
      && Wellformed.is_well_formed (Trace.permute t perm)
    then Some perm
    else None
  end
