(** Exhaustive enumeration of the consistent executions of a litmus
    program, herd-style.

    Rather than enumerating raw interleavings, the enumerator works over
    execution graphs — per-thread control paths × reads-from choices ×
    per-location coherence orders × fence/transaction orderings — and
    builds one well-formed linearization per graph through the
    WF-derived ordering constraints (initialization, program order, WF8
    reads-from, WF9–WF11 obscured accesses, WF12 fence sides).  This is
    complete by the paper's observation that WF8–WF11 are redundant with
    respect to the consistency axioms at the graph level; every produced
    trace is re-checked against the full well-formedness scan (a
    violation raises, as an enumerator-bug detector).

    The candidate space is searched under a configurable {!reduction}
    strategy; docs/ENUMERATION.md is the chapter-length account of the
    machinery and of why every strategy reports identical verdicts. *)

type reduction =
  | No_reduction
      (** the reference: materialize and judge every candidate graph *)
  | Dpor
      (** dynamic partial-order reduction: walk the selection product as
          a prefix tree carrying an incremental execution-graph state,
          prune doomed subtrees wholesale, judge surviving leaves on the
          accumulated relations without building a trace.  Bit-identical
          results (executions, order, counts) to [No_reduction]. *)
  | Dpor_sym
      (** [Dpor] plus symmetry reduction: thread-path combinations are
          quotiented by program automorphisms (thread permutations that
          map the unfolded program onto itself up to a location
          renaming); only orbit representatives are searched and their
          consistent selections are transported onto each image combo.
          Verdicts, the execution multiset and the candidate accounting
          are preserved; within an orbit, an image combo's executions
          appear in its representative's enumeration order. *)

val reduction_name : reduction -> string
(** ["none"], ["dpor"], ["dpor+sym"]. *)

val reduction_of_string : string -> reduction option

type config = {
  fuel : int;  (** loop unrollings per thread *)
  domain_iters : int;  (** value-domain fixpoint rounds *)
  max_graphs : int;  (** cap on candidate graphs *)
  jobs : int;
      (** domains to enumerate on (default 1 = sequential).  With
          [jobs > 1] the candidate space is split into tasks — one per
          (thread-path combination, first reads-from choice), the top of
          the linearization prefix tree — dispatched to a work-stealing
          domain pool and merged deterministically: the result is
          identical to the sequential run for every [jobs].  Runs whose
          estimated candidate count — measured on the reduced space,
          i.e. live orbit representatives when reduction is on — is too
          small to amortize a domain pool fall back to the sequential
          path automatically. *)
  reduction : reduction;  (** search strategy (default {!Dpor_sym}) *)
}

val default_config : config

val config_key : config -> string
(** The cache-key projection of a config: the fields that can change the
    result ([fuel], [domain_iters], [max_graphs], [reduction]).  [jobs]
    is excluded — parallel and sequential runs are identical by
    construction (and pinned so by the [parallel] suite), so they may
    share a cache entry. *)

type execution = { trace : Tmx_core.Trace.t; outcome : Outcome.t }

type result = {
  executions : execution list;  (** the consistent executions *)
  truncated : bool;  (** a path hit the loop bound *)
  capped : bool;  (** the graph cap was hit *)
  graphs : int;  (** candidate graphs accounted for *)
  explored : int;
      (** candidate graphs whose leaf check actually ran.  Equal to
          [graphs] without reduction; under reduction, candidates pruned
          in bulk (doomed prefixes, symmetric images) are counted in
          [graphs] but not here — the ratio is the reduction's win. *)
}

val unfold_combos :
  config -> Tmx_lang.Ast.program -> string list * Proto.path list list * bool
(** The shared front half of {!run}: validate, unfold every thread's
    control paths (dropping paths that hit the loop-unrolling bound) and
    report the location set.  Returns [(locs, thread_paths, truncated)].
    The architecture backends ({!Tmx_arch}) enter here to reuse the
    candidate space — path combos × reads-from choices × coherence
    permutations × fence sides — while swapping the consistency check.
    @raise Invalid_argument on an ill-formed program. *)

val run : ?config:config -> Tmx_core.Model.t -> Tmx_lang.Ast.program -> result
val outcomes : result -> Outcome.t list
val allowed : result -> (Outcome.t -> bool) -> bool
val forbidden : result -> (Outcome.t -> bool) -> bool
