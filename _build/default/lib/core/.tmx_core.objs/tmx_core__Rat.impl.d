lib/core/rat.ml: Fmt Stdlib
