(* Consistency of executions (§2 "Consistency", §2.3 variants, §5).

   An execution is consistent iff it is well-formed and
     Causality     (hb ∪ lwr ∪ xrw) acyclic
     Coherence     (hb ; lww) irreflexive
     Observation   (hb ; lrw) irreflexive
   plus the model's antidependency axioms:
     AntiWW        (crw ; hb ; lww) irreflexive
     AntiRW        (crw ; hb ; lrw) irreflexive
     Anti'WW       (hb ; crw ; lww) irreflexive
     Anti'RW       (hb ; crw ; lrw) irreflexive *)

type report = {
  well_formed : bool;
  causality : bool;
  coherence : bool;
  observation : bool;
  anti_ww : bool;
  anti_rw : bool;
  anti_ww' : bool;
  anti_rw' : bool;
}

let ok r =
  r.well_formed && r.causality && r.coherence && r.observation && r.anti_ww
  && r.anti_rw && r.anti_ww' && r.anti_rw'

let pp_report ppf r =
  let flag name b = if b then None else Some name in
  let failures =
    List.filter_map Fun.id
      [
        flag "wf" r.well_formed;
        flag "causality" r.causality;
        flag "coherence" r.coherence;
        flag "observation" r.observation;
        flag "anti-ww" r.anti_ww;
        flag "anti-rw" r.anti_rw;
        flag "anti-ww'" r.anti_ww';
        flag "anti-rw'" r.anti_rw';
      ]
  in
  if failures = [] then Fmt.string ppf "consistent"
  else Fmt.pf ppf "inconsistent: %a" Fmt.(list ~sep:comma string) failures

(* Axioms over bare relations: no trace, no lifting context.  The
   reduced enumerator judges candidate execution graphs before any
   linearization exists, so it hands the lifted relations over
   directly. *)
let check_axioms_rels (model : Model.t) ~hb ~lwr ~xrw ~crw ~lww ~lrw =
  {
    well_formed = true;
    causality = Rel.is_acyclic (Rel.union_many [ hb; lwr; xrw ]);
    coherence = Rel.irreflexive (Rel.compose hb lww);
    observation = Rel.irreflexive (Rel.compose hb lrw);
    anti_ww =
      (not model.anti_ww) || Rel.irreflexive (Rel.compose3 crw hb lww);
    anti_rw =
      (not model.anti_rw) || Rel.irreflexive (Rel.compose3 crw hb lrw);
    anti_ww' =
      (not model.anti_ww') || Rel.irreflexive (Rel.compose3 hb crw lww);
    anti_rw' =
      (not model.anti_rw') || Rel.irreflexive (Rel.compose3 hb crw lrw);
  }

(* Axioms only, on a precomputed context and hb (well-formedness assumed
   or checked separately). *)
let check_axioms (model : Model.t) (ctx : Lift.ctx) hb =
  check_axioms_rels model ~hb ~lwr:ctx.lwr ~xrw:ctx.xrw ~crw:ctx.crw
    ~lww:ctx.lww ~lrw:ctx.lrw

let check model t =
  let ctx = Lift.make t in
  let hb = Hb.compute model ctx in
  let r = check_axioms model ctx hb in
  { r with well_formed = Wellformed.is_well_formed t }

let consistent model t = ok (check model t)

(* Axiom check that skips well-formedness; used by the enumerator, which
   guarantees well-formedness by construction plus a final scan. *)
let consistent_axioms model ctx hb = ok (check_axioms model ctx hb)

let consistent_axioms_rels model ~hb ~lwr ~xrw ~crw ~lww ~lrw =
  ok (check_axioms_rels model ~hb ~lwr ~xrw ~crw ~lww ~lrw)
