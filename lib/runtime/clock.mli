(** Monotonic time for deadlines and latency measurement.

    Wall-clock time ([Unix.gettimeofday]) jumps when NTP steps the
    clock or the timezone database lies, which spuriously expires every
    in-flight deadline and records negative latencies.  Everything in
    the runtime and the service layer that measures *durations* goes
    through this module instead; wall-clock time is for log prefixes
    only.

    The OCaml [Unix] library exposes no monotonic clock, and the
    dependency set is pinned, so this is a one-function C stub over
    [clock_gettime(CLOCK_MONOTONIC)]. *)

val now_ns : unit -> int
(** Nanoseconds from an arbitrary fixed origin (boot, typically).
    Monotonic: never decreases, unaffected by NTP steps or [TZ].
    63-bit int: wraps after ~146 years of uptime. *)

val now_s : unit -> float
(** [now_ns] scaled to seconds, for deadline arithmetic expressed in
    seconds. *)
