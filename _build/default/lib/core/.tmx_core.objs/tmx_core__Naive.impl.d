lib/core/naive.ml: Action Fun Hashtbl List Model Rat String Trace Wellformed
