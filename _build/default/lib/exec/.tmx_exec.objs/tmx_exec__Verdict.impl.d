lib/exec/verdict.ml: Action Consistency Enumerate Hb Lift List Model Outcome Race Sc Sequentiality Tmx_core Trace
