(* A tiny work-stealing domain pool for the enumerator.

   Tasks are identified by their index in [0, tasks).  Workers (the
   calling domain plus [jobs - 1] spawned ones) repeatedly claim the
   next unclaimed index with a fetch-and-add on a shared cursor — the
   degenerate but contention-free form of work stealing over a flat
   deque: whichever domain finishes its chunk first steals the next
   index, so an uneven task (a litmus program whose first-read split
   produced one huge subtree) never leaves the other domains idle.

   Results land in a per-task slot, so the caller can merge them in
   task-index order and stay bit-identical to a sequential run no
   matter how the domains interleaved.

   Pathological arguments are normalized up front: [jobs] is clamped to
   at least 1 (a negative or zero request means "no parallelism", not
   an error), a negative [tasks] raises [Invalid_argument] instead
   of leaking whatever [Array] would have said, and the number of
   spawned domains never exceeds [available_cores () - 1] — on a box
   with fewer cores than the requested [jobs], oversubscribed domains
   only contend for the scheduler and the minor heap, turning the pool
   into a slowdown.  Results are unaffected: the calling domain is
   always a worker and drains whatever the spawned ones don't claim.  Both the sequential
   and the parallel paths deliver a task's exception through the same
   capture-and-reraise machinery, so the caller sees identical
   exceptions with identical backtraces whatever [jobs] was. *)

let available_cores () = Domain.recommended_domain_count ()

let run_tasks ~jobs ~tasks (f : int -> 'a) : 'a array =
  if tasks < 0 then invalid_arg "Pool.run_tasks: negative tasks";
  let jobs = max 1 jobs in
  if tasks = 0 then [||]
  else begin
    let results : 'a option array = Array.make tasks None in
    let next = Atomic.make 0 in
    let failure = Atomic.make None in
    let worker () =
      let continue = ref true in
      while !continue do
        let i = Atomic.fetch_and_add next 1 in
        if i >= tasks || Atomic.get failure <> None then continue := false
        else
          match f i with
          | r -> results.(i) <- Some r
          | exception exn ->
              (* first failure wins; the rest of the pool drains *)
              ignore
                (Atomic.compare_and_set failure None
                   (Some (exn, Printexc.get_raw_backtrace ())))
      done
    in
    let spawned =
      List.init
        (min (min (jobs - 1) (tasks - 1)) (max 0 (available_cores () - 1)))
        (fun _ -> Domain.spawn worker)
    in
    worker ();
    List.iter Domain.join spawned;
    (match Atomic.get failure with
    | Some (exn, bt) -> Printexc.raise_with_backtrace exn bt
    | None -> ());
    Array.map
      (function
        | Some r -> r
        | None ->
            (* unreachable: every index below [tasks] was claimed and
               either filled its slot or recorded a failure above *)
            assert false)
      results
  end
