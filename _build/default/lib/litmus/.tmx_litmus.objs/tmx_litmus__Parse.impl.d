lib/litmus/parse.ml: Ast Fmt List Litmus Model String Tmx_core Tmx_exec Tmx_lang
