test/test_lift.ml: Alcotest Lift Rel Tb Tmx_core
