test/test_sequentiality.ml: Action Alcotest Fmt Fun List Sequentiality Tb Tmx_core Trace
