(** The matching client for {!Server}: connect over the Unix socket or
    TCP, send one JSON request per line, read one JSON response per
    line. *)

type addr =
  | Unix_sock of string  (** a Unix-domain socket path *)
  | Tcp of string * int  (** host, port *)

val addr_of_string : string -> (addr, string) result
(** ["tcp:HOST:PORT"] (empty host means 127.0.0.1) parses as {!Tcp};
    anything else is a {!Unix_sock} path.  Matches the addresses
    [tmx serve] prints at startup.  Malformed tcp addresses (missing,
    empty, non-numeric or out-of-range port) and scheme-looking
    prefixes other than [tcp:] (e.g. ["udp:...]"]) are errors rather
    than socket paths — a path containing [:] is fine as long as it
    starts with [/] or [.]. *)

val addr_to_string : addr -> string
(** Inverse of {!addr_of_string} (Unix paths render bare). *)

type conn

val connect : ?wait_s:float -> addr -> (conn, string) result
(** Connect to the address.  [wait_s] retries the connection for up to
    that many seconds (the server may still be binding — cram tests
    background [tmx serve] and race it). *)

val close : conn -> unit

val roundtrip : conn -> Json.t -> (Json.t, string) result
(** Send one request, read its response line. *)

val roundtrip_raw : conn -> Json.t -> (string, string) result
(** As {!roundtrip} but returns the raw response line unparsed — the
    loadgen byte-identity oracle compares these verbatim. *)

val request : ?wait_s:float -> addr:addr -> Json.t -> (Json.t, string) result
(** One-shot: connect, {!roundtrip}, close.  Within the [wait_s]
    budget a dead peer mid-roundtrip (the connect raced a server
    shutting down: accepted from the old listener's backlog, then
    EPIPE/reset/EOF) is treated like a refused connect and the whole
    exchange is retried against the new listener. *)
