lib/litmus/catalog.ml: Ast Infix List Litmus Model Outcome String Tmx_core Tmx_exec Tmx_lang Trace
