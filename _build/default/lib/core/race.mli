(** L-races (§4) and mixed races (§5).

    Two actions are in L-conflict if they access the same location in L,
    at least one is plain, at least one is a write, and neither is
    aborted.  [(b, c)] is an L-race if they are in L-conflict, [b]
    precedes [c] in the trace, and not [b hb c].  Two transactional
    actions are never in a race. *)

val l_conflict : ?l:string list -> Trace.t -> int -> int -> bool
(** Omitting [l] means L = all locations. *)

val races : ?l:string list -> Trace.t -> Rel.t -> (int * int) list
(** All L-races of the trace under the given happens-before. *)

val has_race : ?l:string list -> Trace.t -> Rel.t -> bool

val mixed_races : Trace.t -> Rel.t -> (int * int) list
(** Races between a transactional write and a plain write (§5). *)

val has_mixed_race : Trace.t -> Rel.t -> bool

val races_of_model : Model.t -> Trace.t -> (int * int) list
(** Convenience: compute hb under the model, then list all races. *)
