(** Run litmus programs on the real STM runtime: threads become domains,
    locations become {!Tmx_runtime.Tvar}s, atomic blocks run under
    {!Tmx_runtime.Stm.atomically}, plain accesses are unsafe TVar
    operations, fences are per-location quiescence.

    This closes the loop between the formal side and the artifact: the
    outcomes the runtime produces under real scheduling can be compared
    against the axiomatic implementation model. *)

exception Unsupported of string

type instance

val make : ?mode:Tmx_runtime.Stm.mode -> ?fuel:int -> Tmx_lang.Ast.program -> instance
(** @raise Invalid_argument on programs rejected by [Ast.validate].
    Array programs must declare every cell they touch. *)

val run_once : instance -> Tmx_exec.Outcome.t
(** One run with real domains (locations reset to 0 first). *)

val sample :
  ?mode:Tmx_runtime.Stm.mode ->
  ?fuel:int ->
  runs:int ->
  Tmx_lang.Ast.program ->
  Tmx_exec.Outcome.t list
(** Repeated runs, deduplicated: a sample of the outcomes the runtime can
    produce. *)
