(* Actions of the trace semantics (§2 syntax, extended with the quiescence
   fence of §5).  Locations are strings for readability; threads are ints
   with [init_thread] reserved for the initializing transaction.

   Commit and abort actions carry no transaction name: by WF5 a resolution
   matches the latest unresolved begin of its thread, so the association is
   structural.  This keeps traces stable under the order-preserving
   permutations of §4. *)

type loc = string
type value = int
type thread = int

let init_thread = -1

type t =
  | Write of { loc : loc; value : value; ts : Rat.t }
  | Read of { loc : loc; value : value; ts : Rat.t }
  | Begin
  | Commit
  | Abort
  | Qfence of loc

let is_write = function Write _ -> true | _ -> false
let is_read = function Read _ -> true | _ -> false
let is_memory = function Write _ | Read _ -> true | _ -> false
let is_begin = function Begin -> true | _ -> false
let is_resolution = function Commit | Abort -> true | _ -> false
let is_qfence = function Qfence _ -> true | _ -> false

let loc_of = function
  | Write { loc; _ } | Read { loc; _ } -> Some loc
  | Qfence loc -> Some loc
  | Begin | Commit | Abort -> None

let value_of = function
  | Write { value; _ } | Read { value; _ } -> Some value
  | Begin | Commit | Abort | Qfence _ -> None

let ts_of = function
  | Write { ts; _ } | Read { ts; _ } -> Some ts
  | Begin | Commit | Abort | Qfence _ -> None

(* Memory footprint only: a fence is not a memory access (it has its own
   well-formedness and ordering rules). *)
let touches x = function
  | Write { loc; _ } | Read { loc; _ } -> String.equal loc x
  | Begin | Commit | Abort | Qfence _ -> false

let pp ppf = function
  | Write { loc; value; ts } -> Fmt.pf ppf "W%s%d@%a" loc value Rat.pp ts
  | Read { loc; value; ts } -> Fmt.pf ppf "R%s%d@%a" loc value Rat.pp ts
  | Begin -> Fmt.string ppf "B"
  | Commit -> Fmt.string ppf "C"
  | Abort -> Fmt.string ppf "A"
  | Qfence loc -> Fmt.pf ppf "Q%s" loc

type event = { thread : thread; act : t }

let pp_event ppf e = Fmt.pf ppf "<t%d %a>" e.thread pp e.act
