lib/core/consistency.mli: Fmt Lift Model Rel Trace
