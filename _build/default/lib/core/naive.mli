(** A definition-faithful reference implementation of the model: the
    paper's relations, happens-before and consistency axioms transcribed
    by direct quantification over the trace, independent of the optimized
    {!Lift}/{!Hb}/{!Consistency} implementation.

    Deliberately slow; used as an oracle in the test suite. *)

val po : Trace.t -> int -> int -> bool
val ww : Trace.t -> int -> int -> bool
val wr : Trace.t -> int -> int -> bool
val rw : Trace.t -> int -> int -> bool
val lww : Trace.t -> int -> int -> bool
val lwr : Trace.t -> int -> int -> bool
val lrw : Trace.t -> int -> int -> bool
val xrw : Trace.t -> int -> int -> bool
val cww : Trace.t -> int -> int -> bool
val cwr : Trace.t -> int -> int -> bool
val crw : Trace.t -> int -> int -> bool

val hb : Model.t -> Trace.t -> int -> int -> bool
(** The least fixed point, computed naively. *)

val consistent_axioms : Model.t -> Trace.t -> bool
val consistent : Model.t -> Trace.t -> bool
