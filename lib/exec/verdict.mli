(** Program-level analyses: allowed/forbidden outcome verdicts, race
    detection, and the empirical checks of the paper's theorems. *)

open Tmx_core

type cond = Outcome.t -> bool

val allowed :
  ?config:Enumerate.config -> Model.t -> Tmx_lang.Ast.program -> cond -> bool

val forbidden :
  ?config:Enumerate.config -> Model.t -> Tmx_lang.Ast.program -> cond -> bool

val execution_races :
  ?l:string list -> Model.t -> Trace.t -> (int * int) list
(** The L-races of one trace under the model's happens-before. *)

val racy :
  ?config:Enumerate.config ->
  ?l:string list ->
  Model.t ->
  Tmx_lang.Ast.program ->
  bool
(** Does some consistent execution contain an L-race? *)

val mixed_racy :
  ?config:Enumerate.config -> Model.t -> Tmx_lang.Ast.program -> bool

type race_witness = {
  outcome : Outcome.t;  (** the racy execution's outcome *)
  loc : string option;  (** the raced location, when the action names one *)
  threads : int * int;  (** the two racing threads *)
  mixed : bool;  (** is the reported pair a mixed race (§5)? *)
}

val pp_race_witness : race_witness Fmt.t

val race_witness :
  ?config:Enumerate.config ->
  ?l:string list ->
  ?mixed_only:bool ->
  Model.t ->
  Tmx_lang.Ast.program ->
  race_witness option
(** The first racy execution, as a concrete counterexample — [None] iff
    the program is race-free (mixed-race-free with [mixed_only]) under
    the model.  The repair search's oracle: a [Some] justifies
    discarding a candidate and names the threads whose accesses the next
    candidate must address. *)

(** {1 SC-LTRF (Theorem 4.1, global corollary)} *)

type sc_ltrf_report = {
  sc_racy : bool;
      (** some transactionally sequential execution has a race *)
  weak_exists : bool;
      (** some model execution contains a nonaborted Loc-weak action *)
  model_outcomes : Outcome.t list;
  sc_outcomes : Outcome.t list;
  outcomes_contained : bool;  (** model outcomes ⊆ sequential outcomes *)
  theorem_holds : bool;
}

val check_sc_ltrf :
  ?config:Enumerate.config ->
  ?sc_config:Sc.config ->
  Model.t ->
  Tmx_lang.Ast.program ->
  sc_ltrf_report
(** If no transactionally sequential execution races, then the model
    admits no nonaborted weak action and its outcome set is sequential.
    Weak actions in aborted transactions are exempt: aborted actions
    never conflict, so the theorem's conclusion cannot cover them (and
    their observations roll back). *)

(** {1 Theorem 4.2 and Lemma 5.1} *)

val check_theorem_4_2 :
  ?config:Enumerate.config -> Model.t -> Tmx_lang.Ast.program -> bool
(** Dropping aborted transactions preserves consistency, over every
    consistent execution of the program. *)

type lemma_5_1_report = {
  executions_checked : int;
  mixed_race_free : int;
  pm_consistent : int;
  holds : bool;
}

val check_lemma_5_1 :
  ?config:Enumerate.config -> Tmx_lang.Ast.program -> lemma_5_1_report
(** Every implementation-model execution without mixed races remains
    consistent in the programmer model once quiescence fences are
    dropped. *)
