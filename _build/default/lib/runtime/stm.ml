(* A software transactional memory for OCaml 5 realizing the paper's
   implementation model (§5).

   Two versioning strategies, matching §3's design-space discussion:

   - [Lazy]: TL2-style.  A global version clock; reads validate against
     the transaction's read version (giving opacity); writes are buffered
     and published at commit under per-variable versioned locks.
   - [Eager]: encounter-time locking with an undo log.  Writes lock the
     variable and update in place; aborts roll back.

   Both order transactions with a direct dependency (the publication
   idiom) by construction — a reader validates against the writer's
   commit — but neither orders transactions against later plain accesses
   (the privatization idiom): that requires [quiesce], the quiescence
   fence of §5, implemented as an RCU-style grace period over the
   active-transaction registry. *)

type mode = Lazy | Eager

exception Retry_conflict
exception User_abort

let clock = Atomic.make 0

type stats = {
  commits : int Atomic.t;
  conflicts : int Atomic.t;
  user_aborts : int Atomic.t;
}

let stats =
  { commits = Atomic.make 0; conflicts = Atomic.make 0; user_aborts = Atomic.make 0 }

let stats_snapshot () =
  ( Atomic.get stats.commits,
    Atomic.get stats.conflicts,
    Atomic.get stats.user_aborts )

type tx = {
  mode : mode;
  rv : int; (* read version *)
  footprint : int list option; (* declared TVar ids, for selective fences *)
  mutable reads : (Tvar.t * int) list; (* variable, observed version *)
  mutable writes : (Tvar.t * int) list; (* lazy write buffer *)
  mutable undo : (Tvar.t * int * int option) list;
      (* eager: var, overwritten value, and — on the first write to the
         variable, which also takes its lock — the pre-lock version.
         Every write is logged so [or_else] can roll back to a branch
         point. *)
}

let abort _tx = raise User_abort

(* a transaction that declared a footprint must stay inside it: a stray
   access would defeat selective quiescence silently *)
let check_footprint tx v =
  match tx.footprint with
  | Some ids when not (List.mem (Tvar.id v) ids) ->
      invalid_arg
        (Fmt.str "Stm: access to tvar#%d outside the declared footprint" (Tvar.id v))
  | _ -> ()

let eager_owns tx v = List.exists (fun (u, _, _) -> u == v) tx.undo

let read_versioned tx v =
  let s1 = Tvar.version_word v in
  if Tvar.locked s1 || s1 > tx.rv then raise Retry_conflict;
  let x = Tvar.unsafe_read v in
  let s2 = Tvar.version_word v in
  if s1 <> s2 then raise Retry_conflict;
  tx.reads <- (v, s1) :: tx.reads;
  x

let read tx v =
  check_footprint tx v;
  match tx.mode with
  | Lazy -> (
      match List.find_opt (fun (u, _) -> u == v) tx.writes with
      | Some (_, x) -> x
      | None -> read_versioned tx v)
  | Eager ->
      if eager_owns tx v then Tvar.unsafe_read v else read_versioned tx v

let write tx v x =
  check_footprint tx v;
  match tx.mode with
  | Lazy -> tx.writes <- (v, x) :: List.filter (fun (u, _) -> u != v) tx.writes
  | Eager ->
      if eager_owns tx v then begin
        tx.undo <- (v, Tvar.unsafe_read v, None) :: tx.undo;
        Tvar.unsafe_write v x
      end
      else begin
        match Tvar.try_lock v with
        | None -> raise Retry_conflict
        | Some prev ->
            tx.undo <- (v, Tvar.unsafe_read v, Some prev) :: tx.undo;
            Tvar.unsafe_write v x
      end

(* roll the undo log back (newest first) down to [until] (an earlier
   value of [tx.undo], physically); locks are released at their
   first-write entries *)
let rec eager_rollback_to tx until =
  if tx.undo != until then
    match tx.undo with
    | [] -> ()
    | (v, old, prev) :: rest ->
        Tvar.unsafe_write v old;
        (match prev with Some p -> Tvar.unlock v ~version:p | None -> ());
        tx.undo <- rest;
        eager_rollback_to tx until

let eager_rollback tx = eager_rollback_to tx []

(* Validate the read set: each read variable must be at the observed
   version and not locked by another transaction.  A variable locked by
   the committing transaction itself validates against the version saved
   when the lock was taken — anything newer means a concurrent commit
   slipped between our read and our lock (a would-be lost update). *)
let validate ?(own = []) tx =
  List.for_all
    (fun (v, s1) ->
      match List.find_opt (fun (u, _) -> u == v) own with
      | Some (_, prev) -> prev = s1
      | None ->
          let word = Tvar.version_word v in
          (not (Tvar.locked word)) && word = s1)
    tx.reads

let lazy_commit tx =
  if tx.writes = [] then begin
    (* read-only transactions commit without locking *)
    if not (validate tx) then raise Retry_conflict
  end
  else begin
    let to_lock =
      List.sort_uniq (fun (a, _) (b, _) -> compare (Tvar.id a) (Tvar.id b)) tx.writes
    in
    let locked = ref [] in
    let release () =
      List.iter (fun (v, prev) -> Tvar.unlock v ~version:prev) !locked
    in
    (try
       List.iter
         (fun (v, _) ->
           match Tvar.try_lock v with
           | Some prev -> locked := (v, prev) :: !locked
           | None -> raise Retry_conflict)
         to_lock
     with Retry_conflict ->
       release ();
       raise Retry_conflict);
    (* a write variable observed before being locked must still be at its
       observed version *)
    if not (validate ~own:!locked tx) then begin
      release ();
      raise Retry_conflict
    end;
    let wv = Atomic.fetch_and_add clock 2 + 2 in
    List.iter (fun (v, x) -> Tvar.unsafe_write v x) (List.rev tx.writes);
    List.iter (fun (v, _) -> Tvar.unlock v ~version:wv) !locked
  end

let eager_commit tx =
  let own =
    List.filter_map
      (fun (v, _, prev) -> Option.map (fun p -> (v, p)) prev)
      tx.undo
  in
  if not (validate ~own tx) then begin
    eager_rollback tx;
    raise Retry_conflict
  end;
  let wv = Atomic.fetch_and_add clock 2 + 2 in
  List.iter (fun (v, _) -> Tvar.unlock v ~version:wv) own;
  tx.undo <- []

(* Composition: try [f1]; if it aborts, undo its effects and try [f2]
   within the same transaction (the classic STM orElse). *)
let or_else tx f1 f2 =
  let saved_reads = tx.reads in
  match tx.mode with
  | Lazy ->
      let saved_writes = tx.writes in
      (try f1 tx
       with User_abort ->
         tx.reads <- saved_reads;
         tx.writes <- saved_writes;
         f2 tx)
  | Eager -> (
      let saved_undo = tx.undo in
      try f1 tx
      with User_abort ->
        eager_rollback_to tx saved_undo;
        tx.reads <- saved_reads;
        f2 tx)

let backoff n =
  for _ = 0 to (1 lsl min n 10) - 1 do
    Domain.cpu_relax ()
  done

(* Run one attempt; [Error `Conflict] means retry, [Error `Aborted] means
   the user aborted. *)
let attempt ?footprint mode f =
  Registry.enter ?footprint ();
  let tx =
    { mode; rv = Atomic.get clock; footprint; reads = []; writes = []; undo = [] }
  in
  let result =
    match f tx with
    | x -> (
        match (match mode with Lazy -> lazy_commit tx | Eager -> eager_commit tx) with
        | () -> Ok x
        | exception Retry_conflict -> Error `Conflict)
    | exception Retry_conflict ->
        if mode = Eager then eager_rollback tx;
        Error `Conflict
    | exception User_abort ->
        if mode = Eager then eager_rollback tx;
        Error `Aborted
    | exception exn ->
        if mode = Eager then eager_rollback tx;
        Registry.exit ();
        raise exn
  in
  Registry.exit ();
  result

(* Commit [f], retrying on conflicts; [Error `Aborted] if the user
   aborted (the paper's explicit abort — not retried). *)
let atomically_result ?(mode = Lazy) ?footprint f =
  let footprint = Option.map (List.map Tvar.id) footprint in
  let rec go n =
    match attempt ?footprint mode f with
    | Ok x ->
        Atomic.incr stats.commits;
        Ok x
    | Error `Conflict ->
        Atomic.incr stats.conflicts;
        backoff n;
        go (n + 1)
    | Error `Aborted ->
        Atomic.incr stats.user_aborts;
        Error `Aborted
  in
  go 0

let atomically ?mode ?footprint f =
  match atomically_result ?mode ?footprint f with
  | Ok x -> Some x
  | Error `Aborted -> None

(* The quiescence fence of §5: returns once every (relevant) transaction
   that was in flight at the call has resolved, so subsequent plain
   accesses cannot race with pre-fence transactions (privatization).
   With [var], only transactions that might touch that TVar are waited
   for — the per-location hQxi fence, sound because transactions with
   declared footprints cannot stray (checked on every access). *)
let quiesce ?var () =
  Registry.quiesce ?var:(Option.map Tvar.id var) ()
