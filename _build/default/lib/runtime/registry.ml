(* Active-transaction registry, the basis of quiescence (§5).

   Each participating domain owns a slot recording whether a transaction
   is in flight, a monotone sequence number bumped at every begin, and
   the transaction's declared footprint (the TVar ids it may access), if
   any.  A quiescence fence snapshots the slots and waits until every
   relevant slot has either gone idle or moved on to a later transaction
   — the RCU-style grace period: every relevant transaction concurrent
   with the fence's start has resolved.

   The paper's fence is per-location (hQxi).  A transaction's future
   accesses are unknowable, so location-selective waiting is only sound
   for transactions that declared a footprint up front; undeclared
   transactions are always waited for. *)

type slot = {
  seq : int Atomic.t;
  active : bool Atomic.t;
  footprint : int list option Atomic.t; (* None: may touch anything *)
}

let max_slots = 128

let slots =
  Array.init max_slots (fun _ ->
      { seq = Atomic.make 0; active = Atomic.make false; footprint = Atomic.make None })

let next_slot = Atomic.make 0

let key = Domain.DLS.new_key (fun () -> Atomic.fetch_and_add next_slot 1 mod max_slots)

let my_slot () = slots.(Domain.DLS.get key)

let enter ?footprint () =
  let s = my_slot () in
  Atomic.incr s.seq;
  Atomic.set s.footprint footprint;
  Atomic.set s.active true

let exit () =
  let s = my_slot () in
  Atomic.set s.active false

let relevant ~var footprint =
  match (var, footprint) with
  | None, _ -> true (* global fence waits for everything *)
  | Some _, None -> true (* undeclared transactions may touch anything *)
  | Some v, Some ids -> List.mem v ids

(* Wait until every relevant transaction active at the call has
   resolved.  [var] is the id of the fenced TVar, when fencing a single
   location. *)
let quiesce ?var () =
  let snapshot =
    Array.map
      (fun s -> (Atomic.get s.seq, Atomic.get s.active, Atomic.get s.footprint))
      slots
  in
  Array.iteri
    (fun i (seq, active, footprint) ->
      if active && relevant ~var footprint then
        let rec wait () =
          let s = slots.(i) in
          if Atomic.get s.active && Atomic.get s.seq = seq then begin
            Domain.cpu_relax ();
            wait ()
          end
        in
        wait ())
    snapshot
