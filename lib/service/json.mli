(** A minimal JSON codec for the cache's on-disk entries and the
    serve/client wire protocol.

    Self-contained by design — the project deliberately avoids external
    runtime dependencies (cf. [bench/compare.ml], which carries its own
    reader for the same reason).  Numbers are parsed as floats, which is
    exact for every integer the service produces (well below 2{^53}). *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val of_string : string -> (t, string) result
(** Parse one JSON value; trailing garbage is an error. *)

val to_string : t -> string
(** Compact single-line rendering (objects keep field order); the
    NDJSON framing relies on the absence of raw newlines. *)

(** {1 Builders} *)

val int : int -> t
val str : string -> t
val bool : bool -> t

(** {1 Accessors} — [None] on shape mismatch, never an exception. *)

val mem : string -> t -> t option
val to_int : t -> int option
val to_float_opt : t -> float option
val to_str : t -> string option
val to_bool : t -> bool option
val to_list : t -> t list option
