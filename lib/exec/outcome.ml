(* Final-state observations of an execution: per-thread register values
   and final memory (the nonaborted write with the greatest timestamp per
   location). *)

type t = { regs : (string * int) list array; mem : (string * int) list }

(* Zero-valued bindings are dropped: zero is the default for unbound
   registers and untouched locations, so this canonicalizes outcomes
   across components that track different sets of names (e.g. the
   enumerator knows dynamically-discovered array cells the simulator
   never touches). *)
let normalize bindings =
  List.sort compare (List.filter (fun (_, v) -> v <> 0) bindings)

let make ~envs ~mem =
  { regs = Array.of_list (List.map normalize envs); mem = normalize mem }

let reg o thread r =
  if thread < 0 || thread >= Array.length o.regs then 0
  else Option.value (List.assoc_opt r o.regs.(thread)) ~default:0

let mem o x = Option.value (List.assoc_opt x o.mem) ~default:0

let compare_t (a : t) (b : t) = Stdlib.compare (a.regs, a.mem) (b.regs, b.mem)
let equal a b = compare_t a b = 0

let dedup outcomes = List.sort_uniq compare_t outcomes

(* differential-testing hooks: containment of one engine's observable
   outcome set in another's, and the offending witnesses when not *)
let diff xs ys = List.filter (fun x -> not (List.exists (equal x) ys)) xs
let subset xs ys = diff xs ys = []

let pp ppf o =
  let pp_binding ppf (k, v) = Fmt.pf ppf "%s=%d" k v in
  Array.iteri
    (fun i env ->
      if env <> [] then
        Fmt.pf ppf "t%d:[%a] " i Fmt.(list ~sep:(any " ") pp_binding) env)
    o.regs;
  Fmt.pf ppf "mem:[%a]" Fmt.(list ~sep:(any " ") pp_binding) o.mem
