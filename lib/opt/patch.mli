(** Path-keyed program edits — the repair synthesizer's edit language.

    Edits address statements by the source paths {!Tmx_analysis.Access}
    derives (e.g. ["t1.0.atomic.2.then.0"]); [apply] re-derives the same
    paths in a single walk over the original program, so an edit list
    computed from a lint report applies directly, and edits never
    observe each other's renumbering. *)

open Tmx_lang

type edit =
  | Insert_fence of { before : string; fence_loc : string }
      (** place [fence(fence_loc)] immediately before the statement at
          [before] — the per-site refinement of the wholesale
          {!Fenceify} pass.  [fence_loc] is a footprint name: a wildcard
          ["z\[*\]"] expands to one fence per declared cell of the
          array, as {!Fenceify} does.  Refused inside atomic blocks. *)
  | Promote of { path : string }
      (** wrap the plain load/store at [path] in its own [atomic]
          block *)
  | Absorb of { path : string }
      (** merge the plain load/store at [path] into the adjacent sibling
          atomic block (preceding preferred, else following) — guard
          strengthening: extends a neighbouring transaction rather than
          minting a new one.  Refused when neither neighbour is
          atomic. *)

val pp_edit : edit Fmt.t

val path_of : edit -> string
(** The path the edit addresses. *)

val is_fence : edit -> bool

val fence_count : edit list -> int
(** How many of the edits are fence insertions — the secondary
    minimization objective of the repair search. *)

val apply : edit list -> Ast.program -> (Ast.program, string) result
(** Apply all edits in one walk.  Errors on conflicting edits at one
    path, paths that match no statement, promotion/absorption targets
    that are not plain loads/stores (or are already transactional),
    fence insertion inside an atomic block, absorption with no atomic
    neighbour — and re-validates the result with {!Ast.validate}. *)
