open Tmx_lang
open Tmx_opt

let program name = (Option.get (Tmx_litmus.Catalog.find name)).Tmx_litmus.Litmus.program

let mixed_catalog =
  (* fence-free catalog programs with mixed-mode access *)
  [ "privatization"; "publication"; "ex2_2"; "ex3_1"; "ex3_3"; "doomed";
    "impl_reorder"; "ldrf_example" ]

let test_realizes policy () =
  List.iter
    (fun name ->
      let r = Fenceify.realizes ~policy (program name) in
      if not r.realizes then
        Alcotest.failf "%s: fence insertion fails the criterion (race-free:%b \
                        contained:%b, %d fences)"
          name r.mixed_race_free r.outcomes_contained r.fences)
    mixed_catalog

let test_privatization_gets_fenced () =
  let fenced = Fenceify.insert ~policy:`After_transactions (program "privatization") in
  Alcotest.(check bool) "at least one fence" true (Fenceify.count_fences fenced >= 1);
  (* and the fenced program no longer shows the anomaly in im *)
  let x1 o = Tmx_exec.Outcome.mem o "x" = 1 in
  Alcotest.(check bool) "anomaly gone" true
    (Tmx_exec.Verdict.forbidden Tmx_core.Model.implementation fenced x1)

let test_publication_needs_no_fences () =
  (* publication-shaped code: the plain write precedes every transaction
     in its thread, so the after-transactions policy inserts nothing *)
  let fenced = Fenceify.insert ~policy:`After_transactions (program "publication") in
  Alcotest.(check int) "no fences" 0 (Fenceify.count_fences fenced)

let test_policy_economy () =
  (* the targeted policy never inserts more fences than the conservative
     one *)
  List.iter
    (fun name ->
      let p = program name in
      let all = Fenceify.count_fences (Fenceify.insert ~policy:`Every_mixed_access p) in
      let targeted =
        Fenceify.count_fences (Fenceify.insert ~policy:`After_transactions p)
      in
      Alcotest.(check bool)
        (Fmt.str "%s: %d <= %d" name targeted all)
        true (targeted <= all))
    mixed_catalog

let test_mixed_locations () =
  Alcotest.(check (list string)) "privatization mixes x" [ "x" ]
    (Fenceify.mixed_locations (program "privatization"));
  let pure_txn =
    Ast.(
      program ~name:"pure" ~locs:[ "x" ]
        [ [ atomic [ store (loc "x") (int 1) ] ]; [ atomic [ load "r" (loc "x") ] ] ])
  in
  Alcotest.(check (list string)) "no mixing" [] (Fenceify.mixed_locations pure_txn)

let prop_random_realizes =
  QCheck.Test.make ~name:"fence insertion realizes pm on random programs"
    ~count:25 Test_theorems.arb_program (fun p ->
      (* start from fence-free programs; the pass adds its own.  The
         criterion is only achievable when the programmer model itself is
         mixed-race free (privatization is, via HBww; an unconditional
         transactional write racing a plain write is not — no fence
         placement can order a plain write against a *later* transaction,
         and SC-LTRF offers such programs nothing either). *)
      let p = Test_theorems.strip_fences p in
      QCheck.assume (not (Tmx_exec.Verdict.mixed_racy Tmx_core.Model.programmer p));
      (Fenceify.realizes ~policy:`Every_mixed_access p).realizes)

let suite =
  [
    Alcotest.test_case "criterion holds (conservative policy)" `Slow
      (test_realizes `Every_mixed_access);
    Alcotest.test_case "criterion holds (targeted policy)" `Slow
      (test_realizes `After_transactions);
    Alcotest.test_case "privatization gets fenced" `Quick test_privatization_gets_fenced;
    Alcotest.test_case "publication needs no fences" `Quick
      test_publication_needs_no_fences;
    Alcotest.test_case "targeted policy is no worse" `Quick test_policy_economy;
    Alcotest.test_case "mixed-location analysis" `Quick test_mixed_locations;
    Tb.qcheck prop_random_realizes;
  ]
