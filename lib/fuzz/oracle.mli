(** The differential oracles: one program in, one verdict out, each
    cross-checking two independent implementations of the semantics.

    | name          | claim                                                         |
    |---------------|---------------------------------------------------------------|
    | [enum-naive]  | every enumerated execution satisfies the definition-faithful
                      [Tmx_core.Naive] axioms, and on random order-preserving
                      re-merges of its traces the optimized and naive consistency
                      verdicts coincide                                            |
    | [machine-enum]| operational-machine outcomes ⊆ axiomatic im outcomes
                      (equality when neither side truncated or capped)             |
    | [stmsim-enum] | STM-simulator outcomes ⊆ axiomatic im outcomes, for the
                      lazy and lazy+atomic-commit modes (naive eager versioning
                      is documented-unsound, Example 3.4, and not an oracle)       |
    | [lint-sound]  | a location the lint does not flag has no enumerated L-race
                      under any model, and enumerated mixed races imply a mixed
                      finding                                                      |
    | [jobs-det]    | [Enumerate.run] with [jobs = 1] and [jobs = N] agree
                      bit-for-bit (executions, order, graphs, caps)                |
    | [reduction-det] | [Enumerate.run] under [Dpor] is bit-identical to the
                      unreduced reference, and under [Dpor_sym] preserves the
                      execution multiset, graphs, caps, and monotonically
                      shrinks explored states                                      |
    | [repair-sound]| synthesized repairs re-verify mixed-race-free, and every
                      edit is load-bearing                                         |
    | [arch-diff]   | x86-TSO and the C++-TM mapping validate the strongest
                      LTRF variant fence-free; ARMv8 escapes close under a
                      re-verified minimal DMB LD set; and the architecture
                      outcome lattice (tso ⊆ armv8, rc11 ⊆ armv8) holds
                      ({!Tmx_arch.Diff})                                           |

    A further oracle, [broken], deliberately fails on any program with a
    mixed location.  It exists to test the minimizer end-to-end and is
    hidden: {!by_name} only resolves it when the [TMX_FUZZ_BROKEN]
    environment variable is set. *)

open Tmx_lang

type verdict = Pass | Fail of string

type ctx = {
  jobs : int;  (** the N of the jobs-determinism oracle (>= 2) *)
  seed : int;  (** seeds the oracle-internal permutation choices *)
  run :
    Tmx_exec.Enumerate.config ->
    Tmx_core.Model.t ->
    Ast.program ->
    Tmx_exec.Enumerate.result;
      (** how the oracles obtain their reference enumeration (default
          [Enumerate.run]); `tmx fuzz --cache` plugs the verdict cache
          in here.  The [jobs-det] oracle deliberately bypasses this
          hook and calls [Enumerate.run] directly on both sides — its
          whole claim is about the enumerator, and a memoized run
          would make it vacuous. *)
}

type t = {
  name : string;
  descr : string;
  check : ctx -> Ast.program -> verdict;
}

val make_ctx :
  ?run:
    (Tmx_exec.Enumerate.config ->
    Tmx_core.Model.t ->
    Ast.program ->
    Tmx_exec.Enumerate.result) ->
  jobs:int ->
  seed:int ->
  unit ->
  ctx

val stock : t list
(** The six differential oracles, in the order of the table above. *)

val broken : t
(** The deliberately-broken demo oracle (fails iff the program has a
    mixed location — minimal failing programs have 2 statements). *)

val by_name : string -> t option
(** Resolve an oracle by name.  ["broken"] resolves only when
    [TMX_FUZZ_BROKEN] is set in the environment. *)

val names : unit -> string list
(** The resolvable names ([stock], plus ["broken"] when enabled). *)

val random_merge : Random.State.t -> Tmx_core.Trace.t -> int array
(** A random order-preserving re-merge of the trace's per-thread
    sequences, keeping the initializing thread first — the permutation
    the [enum-naive] oracle (and the permutation-invariance test) feeds
    to [Trace.permute]. *)
