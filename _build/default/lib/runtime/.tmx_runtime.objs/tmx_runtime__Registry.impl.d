lib/runtime/registry.ml: Array Atomic Domain List
