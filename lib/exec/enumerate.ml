(* Exhaustive enumeration of the consistent executions of a litmus
   program, herd-style.

   Rather than enumerating raw interleavings (hopeless beyond a handful of
   events), we enumerate execution graphs — per-thread control paths ×
   reads-from choices × per-location coherence orders × fence/transaction
   orderings — and then build one well-formed linearization per graph.
   This is justified by the paper's observation (§2) that WF8–WF11 are
   redundant with respect to the consistency axioms when traces are viewed
   as execution graphs: a graph is the semantics of some well-formed trace
   iff the WF-derived ordering constraints below are acyclic.

   The ordering constraints are exactly the necessary consequences of
   WF1/WF5/WF8–WF12: initialization first, program order, reads-from
   (WF8), the three obscured-read/write conditions (WF9–WF11), and the
   chosen side of each fence/transaction ordering (WF12).  Any topological
   order satisfies every WF condition — checked, not assumed: the
   enumerator runs the full well-formedness scan on every trace it
   produces and raises on violation. *)

open Tmx_core

type config = { fuel : int; domain_iters : int; max_graphs : int; jobs : int }

let default_config = { fuel = 6; domain_iters = 4; max_graphs = 500_000; jobs = 1 }

(* jobs excluded: results are bit-identical for every jobs value, so
   runs with different parallelism share a cache entry *)
let config_key c =
  Printf.sprintf "fuel=%d;domain_iters=%d;max_graphs=%d" c.fuel c.domain_iters
    c.max_graphs

type execution = { trace : Trace.t; outcome : Outcome.t }

type result = {
  executions : execution list;
  truncated : bool; (* some thread path hit the loop-unrolling bound *)
  capped : bool; (* the graph-count cap was hit *)
  graphs : int; (* candidate graphs examined *)
}

(* -- combined event list for one choice of thread paths ------------------ *)

type gevent = {
  thread : int;
  proto : Proto.proto;
  txn : int; (* index of owning PBegin, or -1 *)
  aborted : bool; (* in an aborted transaction *)
}

let build_events (paths : Proto.path list) =
  let protos =
    List.concat
      (List.mapi
         (fun i (p : Proto.path) ->
           List.map (fun pr -> (i, pr)) p.protos)
         paths)
  in
  let events =
    Array.of_list
      (List.map (fun (thread, proto) -> { thread; proto; txn = -1; aborted = false }) protos)
  in
  (* transaction membership + status, per thread *)
  let n = Array.length events in
  let open_txn = Hashtbl.create 8 in
  for i = 0 to n - 1 do
    let e = events.(i) in
    match e.proto with
    | Proto.PBegin ->
        Hashtbl.replace open_txn e.thread i;
        events.(i) <- { e with txn = i }
    | Proto.PCommit | Proto.PAbort ->
        let b = Option.value (Hashtbl.find_opt open_txn e.thread) ~default:(-1) in
        events.(i) <- { e with txn = b };
        Hashtbl.remove open_txn e.thread
    | _ ->
        let b = Option.value (Hashtbl.find_opt open_txn e.thread) ~default:(-1) in
        events.(i) <- { e with txn = b }
  done;
  (* mark aborted transactions *)
  let aborted_txns = Hashtbl.create 8 in
  Array.iter
    (fun e ->
      match e.proto with
      | Proto.PAbort when e.txn >= 0 -> Hashtbl.replace aborted_txns e.txn ()
      | _ -> ())
    events;
  Array.map
    (fun e -> { e with aborted = e.txn >= 0 && Hashtbl.mem aborted_txns e.txn })
    events

(* -- small combinatorics helpers ----------------------------------------- *)

let rec permutations = function
  | [] -> [ [] ]
  | l ->
      List.concat_map
        (fun x ->
          let rest = List.filter (fun y -> y <> x) l in
          List.map (fun p -> x :: p) (permutations rest))
        l

(* product over a list of choice lists, calling [k] with each selection
   (as a list aligned with the input). *)
let rec product choices k =
  match choices with
  | [] -> k []
  | c :: rest -> List.iter (fun x -> product rest (fun sel -> k (x :: sel))) c

(* -- the enumerator ------------------------------------------------------- *)

let same_txn (ev : gevent array) i j = i = j || (ev.(i).txn >= 0 && ev.(i).txn = ev.(j).txn)

let txn_touches_loc (ev : gevent array) b x =
  let n = Array.length ev in
  let rec go i =
    i < n
    && ((ev.(i).txn = b
        &&
        match ev.(i).proto with
        | Proto.PWrite (y, _) | Proto.PRead (y, _) -> String.equal x y
        | _ -> false)
       || go (i + 1))
  in
  go 0

type fence_choice = Commit_before | Fence_before

(* -- per-combo preparation ------------------------------------------------ *)

(* One choice of thread paths, with its event list and candidate
   indices: the fixed inputs of the graph product below. *)
type combo = {
  paths : Proto.path list;
  ev : gevent array;
  reads : int list;
  fences : int list;
  writes_to : (string, int list) Hashtbl.t;
}

let prepare (paths : Proto.path list) =
  let ev = build_events paths in
  let n = Array.length ev in
  let reads = ref [] and fences = ref [] in
  let writes_to = Hashtbl.create 8 in
  for i = n - 1 downto 0 do
    match ev.(i).proto with
    | Proto.PRead _ -> reads := i :: !reads
    | Proto.PWrite (x, _) ->
        Hashtbl.replace writes_to x (i :: Option.value (Hashtbl.find_opt writes_to x) ~default:[])
    | Proto.PQfence _ -> fences := i :: !fences
    | _ -> ()
  done;
  { paths; ev; reads = !reads; fences = !fences; writes_to }

let writes_of combo x = Option.value (Hashtbl.find_opt combo.writes_to x) ~default:[]

(* reads-from candidates: same location and value; an aborted source
   must be in the reader's own transaction; a same-thread source must
   precede the read in program order (else no linearization can put it
   before the read). [-1] encodes reading the initial value 0. *)
let rf_candidates combo i =
  let ev = combo.ev in
  match ev.(i).proto with
  | Proto.PRead (x, v) ->
      let from_writes =
        List.filter
          (fun j ->
            (match ev.(j).proto with
            | Proto.PWrite (_, w) -> w = v
            | _ -> false)
            && (not (ev.(j).aborted && not (same_txn ev i j)))
            && not (ev.(j).thread = ev.(i).thread && j > i))
          (writes_of combo x)
      in
      if v = 0 then -1 :: from_writes else from_writes
  | _ -> assert false

(* Reads-from candidates of the combo's first read — the top level of
   the linearization prefix tree, which the parallel driver fans tasks
   over.  [None] when the combo has no reads. *)
let first_read_width combo =
  match combo.reads with
  | [] -> None
  | r :: _ -> Some (List.length (rf_candidates combo r))

(* fence ordering choices per (fence, transaction touching its
   location): same-thread pairs are forced by program order. *)
let fence_pairs combo =
  let ev = combo.ev in
  let n = Array.length ev in
  List.concat_map
    (fun q ->
      let x = match ev.(q).proto with Proto.PQfence x -> x | _ -> assert false in
      List.filter_map
        (fun b ->
          if ev.(b).proto = Proto.PBegin && txn_touches_loc ev b x then
            if ev.(b).thread = ev.(q).thread then
              (* forced: the side matching program order *)
              if b < q then Some ((q, b), [ Commit_before ])
              else Some ((q, b), [ Fence_before ])
            else Some ((q, b), [ Commit_before; Fence_before ])
          else None)
        (List.init n Fun.id))
    combo.fences

(* Saturating upper estimate of a combo's candidate-graph count:
   Π |rf candidates| × Π |coherence permutations| × Π |fence sides|.
   Cheap arithmetic over the prepared indices, used to decide whether a
   run is worth a domain pool at all. *)
let estimated_graphs combo =
  let cap = 1_000_000_000 in
  let sat a b = if a = 0 || b = 0 then 0 else if a > cap / b then cap else a * b in
  let rec fact k = if k <= 1 then 1 else sat k (fact (k - 1)) in
  let rf =
    List.fold_left
      (fun acc r -> sat acc (List.length (rf_candidates combo r)))
      1 combo.reads
  in
  let ww =
    Hashtbl.fold (fun _x ws acc -> sat acc (fact (List.length ws))) combo.writes_to 1
  in
  let fences =
    List.fold_left (fun acc (_, opts) -> sat acc (List.length opts)) 1 (fence_pairs combo)
  in
  sat (sat rf ww) fences

(* Below this many estimated candidates, a parallel run falls back to
   the sequential path: domain spawn and merge cost more than the
   enumeration itself.  Verdicts are unaffected either way. *)
let parallel_threshold = 64

(* Enumerate the candidate graphs of [combo], optionally pinning the
   first read's reads-from choice to candidate index [pin] (the parallel
   task split: pinning choice k and iterating k in order visits the
   candidates in exactly the sequential order).  [claim] is called once
   per candidate graph, in enumeration order, and returns [Some ordinal]
   to process it or [None] to count-and-skip it — graph-cap policy lives
   in the caller; [emit] receives each consistent execution with its
   candidate ordinal. *)
let enumerate_combo ~model ~locs ?pin ~claim ~emit combo =
  let ev = combo.ev in
  let n = Array.length ev in
  let writes_of = writes_of combo in
  let read_choices = List.map (rf_candidates combo) combo.reads in
  let read_choices =
    match (pin, read_choices) with
    | None, cs -> cs
    | Some k, c :: rest -> [ List.nth c k ] :: rest
    | Some _, [] -> assert false
  in
  if List.exists (fun c -> c = []) read_choices then ()
  else begin
      (* coherence choices: per location, a permutation of its non-init
         writes; the initializing write is first (anything below it is
         inconsistent by Coherence). *)
      let locs_written =
        List.sort_uniq compare
          (Hashtbl.fold (fun x _ acc -> x :: acc) combo.writes_to [])
      in
      let ww_choices = List.map (fun x -> permutations (writes_of x)) locs_written in
      let fence_pairs = fence_pairs combo in
      let fence_keys = List.map fst fence_pairs in
      let fence_opts = List.map snd fence_pairs in
      product read_choices (fun rf_sel ->
          product ww_choices (fun ww_sel ->
              product fence_opts (fun fence_sel ->
                  match claim () with
                  | None -> ()
                  | Some ordinal ->
                    (* timestamps: position in the chosen coherence order *)
                    let ts_of_write = Hashtbl.create 16 in
                    List.iter2
                      (fun _x perm ->
                        List.iteri
                          (fun k j -> Hashtbl.replace ts_of_write j (Rat.of_int (k + 1)))
                          perm)
                      locs_written ww_sel;
                    let rf = Hashtbl.create 16 in
                    List.iter2 (fun r w -> Hashtbl.replace rf r w) combo.reads rf_sel;
                    let ts_of_read r =
                      match Hashtbl.find rf r with
                      | -1 -> Rat.zero
                      | w -> Hashtbl.find ts_of_write w
                    in
                    (* WF-derived ordering constraints *)
                    let succs = Array.make n [] in
                    let indeg = Array.make n 0 in
                    let edge a b =
                      succs.(a) <- b :: succs.(a);
                      indeg.(b) <- indeg.(b) + 1
                    in
                    (* program order: consecutive events of each thread *)
                    let last_of_thread = Hashtbl.create 8 in
                    for i = 0 to n - 1 do
                      (match Hashtbl.find_opt last_of_thread ev.(i).thread with
                      | Some j -> edge j i
                      | None -> ());
                      Hashtbl.replace last_of_thread ev.(i).thread i
                    done;
                    (* reads-from (WF8) *)
                    List.iter
                      (fun r -> match Hashtbl.find rf r with -1 -> () | w -> edge w r)
                      combo.reads;
                    (* WF9: transactional write before any coherence-later
                       committed transactional write *)
                    List.iter
                      (fun x ->
                        let ws = writes_of x in
                        List.iter
                          (fun b ->
                            if ev.(b).txn >= 0 then
                              List.iter
                                (fun c ->
                                  if
                                    c <> b && ev.(c).txn >= 0 && (not ev.(c).aborted)
                                    && Rat.lt (Hashtbl.find ts_of_write b) (Hashtbl.find ts_of_write c)
                                  then edge b c)
                                ws)
                          ws)
                      locs_written;
                    (* WF10/WF11: a read before any write that obscures its
                       source (committed-foreign for transactional sources,
                       same-transaction always) *)
                    List.iter
                      (fun r ->
                        if ev.(r).txn >= 0 then
                          let w = Hashtbl.find rf r in
                          let src_ts = ts_of_read r in
                          (* the initializing write is transactional
                             (committed), like any other member of the
                             initializing transaction *)
                          let src_is_txn = w = -1 || ev.(w).txn >= 0 in
                          let x =
                            match ev.(r).proto with
                            | Proto.PRead (x, _) -> x
                            | _ -> assert false
                          in
                          List.iter
                            (fun c ->
                              if Rat.lt src_ts (Hashtbl.find ts_of_write c) then begin
                                if
                                  src_is_txn && ev.(c).txn >= 0
                                  && not ev.(c).aborted
                                then edge r c;
                                if same_txn ev r c then edge r c
                              end)
                            (writes_of x))
                      combo.reads;
                    (* fence choices (WF12) *)
                    List.iter2
                      (fun (q, b) choice ->
                        match choice with
                        | Commit_before ->
                            (* resolution of txn b before fence q *)
                            let rec find_res i =
                              if i >= n then None
                              else if
                                ev.(i).txn = b
                                && (ev.(i).proto = Proto.PCommit
                                   || ev.(i).proto = Proto.PAbort)
                              then Some i
                              else find_res (i + 1)
                            in
                            (match find_res 0 with
                            | Some r -> edge r q
                            | None -> ())
                        | Fence_before -> edge q b)
                      fence_keys fence_sel;
                    (* topological sort, preferring to keep the currently
                       open transaction contiguous *)
                    let emitted = Array.make n false in
                    let order = ref [] in
                    let count = ref 0 in
                    let current_txn = ref (-1) in
                    let ok = ref true in
                    while !ok && !count < n do
                      (* candidate: available event, prefer same txn *)
                      let pick = ref (-1) in
                      (try
                         for i = 0 to n - 1 do
                           if (not emitted.(i)) && indeg.(i) = 0 then begin
                             if !pick = -1 then pick := i;
                             if !current_txn >= 0 && ev.(i).txn = !current_txn
                             then begin
                               pick := i;
                               raise Exit
                             end
                           end
                         done
                       with Exit -> ());
                      if !pick = -1 then ok := false
                      else begin
                        let i = !pick in
                        emitted.(i) <- true;
                        incr count;
                        order := i :: !order;
                        (match ev.(i).proto with
                        | Proto.PBegin -> current_txn := i
                        | Proto.PCommit | Proto.PAbort -> current_txn := -1
                        | _ -> ());
                        List.iter (fun j -> indeg.(j) <- indeg.(j) - 1) succs.(i)
                      end
                    done;
                    if !ok then begin
                      let order = List.rev !order in
                      let to_action i =
                        let open Action in
                        match ev.(i).proto with
                        | Proto.PWrite (x, v) ->
                            Write { loc = x; value = v; ts = Hashtbl.find ts_of_write i }
                        | Proto.PRead (x, v) ->
                            Read { loc = x; value = v; ts = ts_of_read i }
                        | Proto.PBegin -> Begin
                        | Proto.PCommit -> Commit
                        | Proto.PAbort -> Abort
                        | Proto.PQfence x -> Qfence x
                      in
                      let body =
                        List.map
                          (fun i -> { Action.thread = ev.(i).thread; act = to_action i })
                          order
                      in
                      let trace = Trace.make ~locs body in
                      (match Wellformed.violations trace with
                      | [] -> ()
                      | vs ->
                          Fmt.failwith
                            "Enumerate: internal error, ill-formed linearization:@ %a@ trace:@ %a"
                            Fmt.(list ~sep:comma Wellformed.pp_violation)
                            vs Trace.pp trace);
                      let ctx = Lift.make trace in
                      let hb = Hb.compute model ctx in
                      if Consistency.consistent_axioms model ctx hb then begin
                        let outcome =
                          Outcome.make
                            ~envs:
                              (List.map
                                 (fun (p : Proto.path) -> p.env)
                                 combo.paths)
                            ~mem:
                              (List.map
                                 (fun x ->
                                   (x, Option.value (Trace.final_value trace x) ~default:0))
                                 locs)
                        in
                        emit ordinal { trace; outcome }
                      end
                    end)))
    end

(* -- the drivers ---------------------------------------------------------- *)

let collect_combos thread_paths =
  let acc = ref [] in
  product thread_paths (fun sel -> acc := sel :: !acc);
  List.rev_map prepare !acc

(* Sequential reference path: one global candidate counter, cap applied
   as candidates are claimed. *)
let run_sequential ~config ~model ~locs ~truncated combos =
  let executions = ref [] and graphs = ref 0 and capped = ref false in
  let claim () =
    if !graphs >= config.max_graphs then begin
      capped := true;
      None
    end
    else begin
      incr graphs;
      Some (!graphs - 1)
    end
  in
  let emit _ordinal e = executions := e :: !executions in
  List.iter (fun combo -> enumerate_combo ~model ~locs ~claim ~emit combo) combos;
  {
    executions = List.rev !executions;
    truncated;
    capped = !capped;
    graphs = !graphs;
  }

(* Parallel path: fan tasks — (combo, first-read choice) pairs in
   sequential enumeration order — over a domain pool, then merge the
   per-task results in task order.

   Determinism argument.  Each task enumerates its own candidate
   sub-tree in the sequential order and records results against local
   candidate ordinals; pinning the first read's choice to k and ranging
   k over the candidates in order partitions the sequential candidate
   sequence into contiguous runs, so the global ordinal of a task's
   candidate is the task's prefix sum plus its local ordinal.  The merge
   walks tasks in index order, reconstructing exactly the sequential
   execution list, graph count and cap verdict no matter how the
   domains interleaved.  A task processes a candidate only when its
   local ordinal is below the cap (a deterministic over-approximation of
   "global ordinal below the cap": prefix sums are nonnegative); the
   merge then drops the few over-approximated ones. *)
let run_parallel ~config ~model ~locs ~truncated combos =
  let tasks =
    List.concat_map
      (fun combo ->
        match first_read_width combo with
        | None -> [ (combo, None) ]
        | Some w -> List.init w (fun k -> (combo, Some k)))
      combos
    |> Array.of_list
  in
  let results =
    Pool.run_tasks ~jobs:config.jobs ~tasks:(Array.length tasks) (fun ti ->
        let combo, pin = tasks.(ti) in
        (* re-prepare so every mutable index table is domain-local *)
        let combo = prepare combo.paths in
        let count = ref 0 and execs = ref [] in
        let claim () =
          let ordinal = !count in
          incr count;
          if ordinal < config.max_graphs then Some ordinal else None
        in
        let emit ordinal e = execs := (ordinal, e) :: !execs in
        enumerate_combo ~model ~locs ?pin ~claim ~emit combo;
        (!count, List.rev !execs))
  in
  let total = Array.fold_left (fun acc (c, _) -> acc + c) 0 results in
  let executions = ref [] and prefix = ref 0 in
  Array.iter
    (fun (count, execs) ->
      List.iter
        (fun (ordinal, e) ->
          if !prefix + ordinal < config.max_graphs then
            executions := e :: !executions)
        execs;
      prefix := !prefix + count)
    results;
  {
    executions = List.rev !executions;
    truncated;
    capped = total > config.max_graphs;
    graphs = min total config.max_graphs;
  }

let run ?(config = default_config) (model : Model.t) (program : Tmx_lang.Ast.program) =
  (match Tmx_lang.Ast.validate program with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Enumerate.run: " ^ msg));
  let domain, thread_paths =
    Proto.unfold ~iters:config.domain_iters ~fuel:config.fuel program
  in
  let locs = Proto.Domain.locs domain in
  let truncated =
    List.exists (List.exists (fun (p : Proto.path) -> p.truncated)) thread_paths
  in
  let thread_paths =
    List.map (List.filter (fun (p : Proto.path) -> not p.truncated)) thread_paths
  in
  let combos = collect_combos thread_paths in
  let small () =
    (* saturating sum; stop adding once clearly past the threshold *)
    let rec go acc = function
      | [] -> acc < parallel_threshold
      | _ when acc >= parallel_threshold -> false
      | c :: rest -> go (acc + estimated_graphs c) rest
    in
    go 0 combos
  in
  if config.jobs <= 1 || small () then
    run_sequential ~config ~model ~locs ~truncated combos
  else run_parallel ~config ~model ~locs ~truncated combos

let outcomes result = Outcome.dedup (List.map (fun e -> e.outcome) result.executions)

let allowed result cond = List.exists (fun e -> cond e.outcome) result.executions
let forbidden result cond = not (allowed result cond)
