(** The fuzz campaign driver behind [tmx fuzz].

    One run replays the crash corpus first, then the seed corpus, then
    generates fresh programs from [(seed, index)] until [count] is
    reached or the time budget expires.  Every program is checked
    against every selected oracle; failures are minimized with
    {!Shrink.minimize} against the oracle that failed and written to
    the crash corpus. *)

open Tmx_lang

type options = {
  seed : int;
  count : int;  (** fresh programs to generate *)
  time_budget : float;  (** seconds; [0.] means unlimited *)
  oracles : Oracle.t list;
  jobs : int;  (** the N of the jobs-determinism oracle *)
  gen_config : Gen.config;
  corpus_dir : string option;  (** [None] skips corpus replay *)
  crashes_dir : string option;
      (** [None] skips crash replay and disables saving minimized
          failures *)
  minimize : bool;
  max_failures : int;  (** stop the campaign after this many failures *)
  enumerate :
    (Tmx_exec.Enumerate.config ->
    Tmx_core.Model.t ->
    Ast.program ->
    Tmx_exec.Enumerate.result)
    option;
      (** oracle-side enumeration override, threaded into
          {!Oracle.ctx.run} ([tmx fuzz --cache] plugs the verdict cache
          in); the jobs-det oracle bypasses it by design *)
}

val default_options : options
(** seed 0, count 100, no budget, all stock oracles, jobs 2, the
    {!Gen.mixed} distribution, the default corpus directories,
    minimization on, stop after 5 failures. *)

type failure = {
  oracle : string;
  detail : string;
  origin : string;  (** ["generated:<index>"], ["corpus:<file>"], … *)
  program : Ast.program;
  minimized : Ast.program option;
  shrink_steps : int;
  saved : string option;  (** crash-corpus path, when saving is enabled *)
}

type report = {
  seed : int;
  jobs : int;
  generated : int;
  corpus_replayed : int;
  crashes_replayed : int;
  corpus_skipped : int;  (** unparseable corpus/crash files (warned, not fatal) *)
  corpus_deduped : int;
      (** replay seeds dropped because another file had the same
          {!Tmx_lang.Canon} digest *)
  skipped_files : (string * string) list;
      (** the [(file, error)] pairs behind [corpus_skipped] *)
  checks : int;  (** oracle invocations *)
  per_oracle : (string * int) list;
  failures : failure list;
  elapsed : float;
  budget_exhausted : bool;
}

val ok : report -> bool

val run : options -> report

val minimize_program :
  options -> Oracle.t -> Ast.program -> (failure, string) result
(** Minimize one explicit program against one oracle ([tmx fuzz
    --minimize FILE]).  [Error] when the oracle passes on the input. *)

val pp_report : report Fmt.t
val report_to_json : report -> string
