lib/core/action.mli: Fmt Rat
