(* The suites below marked as exhaustive run full execution-graph
   enumerations over the litmus catalog; `dune build @quick` sets
   TMX_QUICK=1 to skip them for fast iteration. *)
let exhaustive =
  [
    "naive";
    "enumerate";
    "sc";
    "litmus";
    "shapes";
    "theorems";
    "parallel";
    "reduction";
    "stm_stress";
    "stmsim_oracle";
    "analysis_oracle";
    "repair_oracle";
    "arch_catalog";
  ]

let () =
  let suites =
    [
      ("rat", Test_rat.suite);
      ("rel", Test_rel.suite);
      ("trace", Test_trace.suite);
      ("wellformed", Test_wellformed.suite);
      ("lift", Test_lift.suite);
      ("hb", Test_hb.suite);
      ("consistency", Test_consistency.suite);
      ("naive", Test_naive.suite);
      ("opacity", Test_opacity.suite);
      ("race", Test_race.suite);
      ("sequentiality", Test_sequentiality.suite);
      ("suborder", Test_suborder.suite);
      ("closure", Test_closure.suite);
      ("stability", Test_stability.suite);
      ("lang", Test_lang.suite);
      ("proto", Test_proto.suite);
      ("enumerate", Test_enumerate.suite);
      ("sc", Test_sc.suite);
      ("litmus", Test_litmus.suite);
      ("shapes", Test_shapes.suite);
      ("parallel", Test_parallel.suite);
      ("reduction", Test_reduction.suite);
      ("parse", Test_parse.suite);
      ("export", Test_export.suite);
      ("theorems", Test_theorems.suite);
      ("opt", Test_opt.suite);
      ("fenceify", Test_fenceify.suite);
      ("stmsim", Test_stmsim.suite);
      ("stmsim_oracle", Test_stmsim_oracle.suite);
      ("runtime", Test_runtime.suite);
      ("stm_stress", Test_stm_stress.suite);
      ("structures", Test_structures.suite);
      ("interp", Test_interp.suite);
      ("machine", Test_machine.suite);
      ("volatile", Test_volatile.suite);
      ("analysis", Test_analysis.suite);
      ("analysis_oracle", Test_analysis.oracle_suite);
      ("repair", Test_repair.suite);
      ("repair_oracle", Test_repair.oracle_suite);
      ("fuzz", Test_fuzz.suite);
      ("arch", Test_arch.suite);
      ("arch_catalog", Test_arch.catalog_suite);
      ("service", Test_service.suite);
    ]
  in
  let suites =
    if Sys.getenv_opt "TMX_QUICK" <> None then
      List.filter (fun (name, _) -> not (List.mem name exhaustive)) suites
    else suites
  in
  Alcotest.run "tmx" suites
