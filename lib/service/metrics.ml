(* Per-verb request counters and latency histograms.  The histogram
   convention matches Tmx_runtime.Stm: a value v lands in the first
   bucket with v <= bounds.(i); the extra last bucket is the overflow. *)

type histogram = { bounds : int array; counts : int array }

(* 100us .. 1s, then overflow — enumeration requests span this range *)
let latency_bounds_ns =
  [| 100_000; 1_000_000; 10_000_000; 100_000_000; 1_000_000_000 |]

let verbs = [ "ping"; "check"; "races"; "outcomes"; "lint"; "batch"; "stats" ]

type verb_cell = {
  mutable requests : int;
  mutable errors : int;
  lat_counts : int array;
}

type t = {
  lock : Mutex.t;
  cells : (string * verb_cell) list;  (* verbs @ ["other"], fixed *)
  mutable deadlines : int;
  in_flight : int Atomic.t;
  sheds : int Atomic.t;
}

let create () =
  {
    lock = Mutex.create ();
    cells =
      List.map
        (fun v ->
          ( v,
            {
              requests = 0;
              errors = 0;
              lat_counts = Array.make (Array.length latency_bounds_ns + 1) 0;
            } ))
        (verbs @ [ "other" ]);
    deadlines = 0;
    in_flight = Atomic.make 0;
    sheds = Atomic.make 0;
  }

let cell t verb =
  match List.assoc_opt verb t.cells with
  | Some c -> c
  | None -> List.assoc "other" t.cells

let observe counts v =
  let n = Array.length latency_bounds_ns in
  let rec bucket i = if i >= n || v <= latency_bounds_ns.(i) then i else bucket (i + 1) in
  let b = bucket 0 in
  counts.(b) <- counts.(b) + 1

let record t ~verb ~ok ~latency_ns =
  Mutex.lock t.lock;
  let c = cell t verb in
  c.requests <- c.requests + 1;
  if not ok then c.errors <- c.errors + 1;
  observe c.lat_counts latency_ns;
  Mutex.unlock t.lock

let deadline_exceeded t =
  Mutex.lock t.lock;
  t.deadlines <- t.deadlines + 1;
  Mutex.unlock t.lock

let incr_inflight t = Atomic.incr t.in_flight
let decr_inflight t = Atomic.decr t.in_flight
let inflight t = Atomic.get t.in_flight
let shed t = Atomic.incr t.sheds

type verb_stats = { requests : int; errors : int; latency_ns : histogram }

type snapshot = {
  per_verb : (string * verb_stats) list;
  total_requests : int;
  total_errors : int;
  deadlines_exceeded : int;
  sheds : int;
  queue_depth : int;
}

let snapshot t =
  Mutex.lock t.lock;
  let per_verb =
    List.map
      (fun (v, (c : verb_cell)) ->
        ( v,
          {
            requests = c.requests;
            errors = c.errors;
            latency_ns =
              { bounds = latency_bounds_ns; counts = Array.copy c.lat_counts };
          } ))
      t.cells
  in
  let snap =
    {
      per_verb;
      total_requests =
        List.fold_left (fun acc (_, s) -> acc + s.requests) 0 per_verb;
      total_errors = List.fold_left (fun acc (_, s) -> acc + s.errors) 0 per_verb;
      deadlines_exceeded = t.deadlines;
      sheds = Atomic.get t.sheds;
      queue_depth = Atomic.get t.in_flight;
    }
  in
  Mutex.unlock t.lock;
  snap

let histogram_to_json h =
  Json.Obj
    [
      ("bounds", Json.Arr (Array.to_list (Array.map Json.int h.bounds)));
      ("counts", Json.Arr (Array.to_list (Array.map Json.int h.counts)));
    ]

let snapshot_to_json s =
  Json.Obj
    [
      ("requests", Json.int s.total_requests);
      ("errors", Json.int s.total_errors);
      ("deadlines_exceeded", Json.int s.deadlines_exceeded);
      ("sheds", Json.int s.sheds);
      ("queue_depth", Json.int s.queue_depth);
      ( "verbs",
        Json.Obj
          (List.filter_map
             (fun (v, (st : verb_stats)) ->
               if st.requests = 0 then None
               else
                 Some
                   ( v,
                     Json.Obj
                       [
                         ("requests", Json.int st.requests);
                         ("errors", Json.int st.errors);
                         ("latency_ns", histogram_to_json st.latency_ns);
                       ] ))
             s.per_verb) );
    ]
