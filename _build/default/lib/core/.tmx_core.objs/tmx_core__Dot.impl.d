lib/core/dot.ml: Action Buffer Fmt Hashtbl Hb Lift List Model Option Rel String Trace
