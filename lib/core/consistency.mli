(** Consistency of executions (§2, with the model-dependent antidependency
    axioms of §2.3 and §5).

    An execution is consistent iff it is well-formed, [Causality]
    ((hb ∪ lwr ∪ xrw) acyclic), [Coherence] ((hb ; lww) irreflexive) and
    [Observation] ((hb ; lrw) irreflexive) hold, and the antidependency
    axioms enabled by the model hold. *)

type report = {
  well_formed : bool;
  causality : bool;
  coherence : bool;
  observation : bool;
  anti_ww : bool;
  anti_rw : bool;
  anti_ww' : bool;
  anti_rw' : bool;
}

val ok : report -> bool
val pp_report : report Fmt.t

val check : Model.t -> Trace.t -> report
val consistent : Model.t -> Trace.t -> bool

val check_axioms : Model.t -> Lift.ctx -> Rel.t -> report
(** Axioms only, over a precomputed lifting context and happens-before;
    [well_formed] is reported as [true] without being checked. *)

val consistent_axioms : Model.t -> Lift.ctx -> Rel.t -> bool

val check_axioms_rels :
  Model.t ->
  hb:Rel.t ->
  lwr:Rel.t ->
  xrw:Rel.t ->
  crw:Rel.t ->
  lww:Rel.t ->
  lrw:Rel.t ->
  report
(** Axioms over bare relations, with no trace or lifting context in
    sight: the reduced enumerator judges candidate execution graphs
    before any linearization exists and supplies the lifted relations
    directly.  [well_formed] is reported as [true] without being
    checked. *)

val consistent_axioms_rels :
  Model.t ->
  hb:Rel.t ->
  lwr:Rel.t ->
  xrw:Rel.t ->
  crw:Rel.t ->
  lww:Rel.t ->
  lrw:Rel.t ->
  bool
