(* Contention management for the runtime STM.

   A conflicted transaction must wait before retrying, and *how* it
   waits decides whether the system makes progress under load:

   - [Spin] is the classic capped exponential backoff
     (2^min(retry, 10) cpu_relax iterations).  It is deterministic and
     identical on every domain, so transactions that conflicted once
     tend to wake simultaneously and conflict again — a retry convoy.
     Kept for comparison and for exactly reproducing old behaviour.

   - [Jittered] (the default) draws the spin length uniformly from
     [1, 2^min(retry, 10)] using a per-domain deterministic PRNG: no
     shared RNG state (a shared one would itself be a contention
     point), no dependence on wall time, and a fixed seed per domain id
     so runs are reproducible domain-for-domain.

   - [Budget n] behaves like [Jittered] until a transaction has
     retried [n] times, then escalates it to a serialized slow path: the
     starved transaction takes a global mutex, raises a flag that stalls
     *new* attempts on every other domain, and retries with the field to
     itself.  In-flight attempts drain (they either commit or conflict),
     so the escalated transaction completes after bounded interference
     instead of spinning forever — progress degrades gracefully to
     one-at-a-time instead of livelocking.

   The PRNG is a 48-bit LCG (the classic drand48 multiplier) stepped in
   domain-local storage; constants fit comfortably in OCaml's 63-bit
   ints. *)

type policy =
  | Spin  (** capped exponential backoff, deterministic (legacy) *)
  | Jittered  (** capped exponential with per-domain jitter (default) *)
  | Budget of int
      (** jittered up to [n] retries, then serialized slow path *)

let default_policy = Jittered

let pp_policy ppf = function
  | Spin -> Fmt.string ppf "spin"
  | Jittered -> Fmt.string ppf "jittered"
  | Budget n -> Fmt.pf ppf "budget:%d" n

(* --- per-domain deterministic jitter ------------------------------- *)

let rng_key =
  Domain.DLS.new_key (fun () ->
      (* distinct, fixed seed per domain id; never zero *)
      ref ((((Domain.self () :> int) + 1) * 0x9E3779B9) land 0xFFFF_FFFF_FFFF))

let rand_bits () =
  let st = Domain.DLS.get rng_key in
  st := ((!st * 0x5DEECE66D) + 0xB) land 0xFFFF_FFFF_FFFF;
  !st lsr 17 (* the high bits are the well-mixed ones *)

let relax_for spins =
  for _ = 1 to spins do
    Domain.cpu_relax ()
  done

let cap = 10

let exp_spins retry = 1 lsl min retry cap

(* --- serialized slow path ------------------------------------------ *)

let serial_mutex = Mutex.create ()
let serial_active = Atomic.make false

let stall_if_serialized () =
  while Atomic.get serial_active do
    Domain.cpu_relax ()
  done

let serialized f =
  Mutex.lock serial_mutex;
  Atomic.set serial_active true;
  Fun.protect
    ~finally:(fun () ->
      Atomic.set serial_active false;
      Mutex.unlock serial_mutex)
    f

(* --- the wait itself ----------------------------------------------- *)

let backoff policy ~retry =
  match policy with
  | Spin -> relax_for (exp_spins retry)
  | Jittered | Budget _ -> relax_for (1 + (rand_bits () mod exp_spins retry))

let escalates policy ~retry =
  match policy with Budget n -> retry >= n | Spin | Jittered -> false

(* --- admission budgets ---------------------------------------------- *)

(* The [Budget] policy's idea — a hard bound past which work stops being
   admitted optimistically and degrades to something that still makes
   progress — applies beyond STM retries: a request server under
   overload must shed (answer "no, later" cheaply) rather than queue
   without bound.  [Admission] is that bound as a reusable counter:
   lock-free, exact (a CAS race never admits past the limit), and
   it keeps score of what it turned away. *)

module Admission = struct
  type t = { limit : int; inflight : int Atomic.t; shed : int Atomic.t }

  let create ~limit =
    { limit; inflight = Atomic.make 0; shed = Atomic.make 0 }

  let unlimited t = t.limit <= 0

  let rec try_enter t =
    if unlimited t then true
    else
      let n = Atomic.get t.inflight in
      if n >= t.limit then begin
        Atomic.incr t.shed;
        false
      end
      else if Atomic.compare_and_set t.inflight n (n + 1) then true
      else try_enter t

  let leave t = if not (unlimited t) then ignore (Atomic.fetch_and_add t.inflight (-1))

  let with_admission t f ~shed =
    if try_enter t then Fun.protect ~finally:(fun () -> leave t) f else shed ()

  let inflight t = Atomic.get t.inflight
  let shed_count t = Atomic.get t.shed
  let limit t = t.limit
end
