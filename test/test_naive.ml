(* Oracle testing: the optimized implementation (bit-matrix relations,
   shared lifting context, engineered fixpoint) against the naive
   definition-faithful transcription of the paper. *)

open Tmx_core
open Tmx_exec

let models = [ Model.programmer; Model.implementation; Model.strongest; Model.bare ]

let check_relations name t =
  let ctx = Lift.make t in
  let pairs =
    [
      ("lww", ctx.Lift.lww, Naive.lww t);
      ("lwr", ctx.Lift.lwr, Naive.lwr t);
      ("lrw", ctx.Lift.lrw, Naive.lrw t);
      ("xrw", ctx.Lift.xrw, Naive.xrw t);
      ("cww", ctx.Lift.cww, Naive.cww t);
      ("cwr", ctx.Lift.cwr, Naive.cwr t);
      ("crw", ctx.Lift.crw, Naive.crw t);
    ]
  in
  for i = 0 to Trace.length t - 1 do
    for j = 0 to Trace.length t - 1 do
      List.iter
        (fun (rel_name, fast, naive) ->
          if Rel.mem fast i j <> naive i j then
            Alcotest.failf "%s: %s disagrees at (%d, %d)" name rel_name i j)
        pairs
    done
  done

let check_hb name t =
  List.iter
    (fun model ->
      let ctx = Lift.make t in
      let fast = Hb.compute model ctx in
      let naive = Naive.hb model t in
      for i = 0 to Trace.length t - 1 do
        for j = 0 to Trace.length t - 1 do
          if Rel.mem fast i j <> naive i j then
            Alcotest.failf "%s: hb under %s disagrees at (%d, %d)" name
              model.Model.name i j
        done
      done)
    models

let check_consistency name t =
  List.iter
    (fun model ->
      let fast =
        let ctx = Lift.make t in
        Consistency.consistent_axioms model ctx (Hb.compute model ctx)
      in
      let naive = Naive.consistent_axioms model t in
      if fast <> naive then
        Alcotest.failf "%s: consistency under %s disagrees (fast=%b)" name
          model.Model.name fast)
    models

let catalog_traces () =
  List.concat_map
    (fun name ->
      let p = (Option.get (Tmx_litmus.Catalog.find name)).Tmx_litmus.Litmus.program in
      List.map
        (fun (e : Enumerate.execution) -> (name, e.trace))
        (Enumerate.run Model.implementation p).executions)
    [ "privatization"; "aborted_pub"; "ex2_2"; "ex3_1"; "sb";
      "privatization_fence"; "d1_opaque_writes" ]

let test_on_catalog () =
  List.iter
    (fun (name, t) ->
      check_relations name t;
      check_hb name t;
      check_consistency name t)
    (catalog_traces ())

(* random raw traces: mostly ill-formed, which is the point — the two
   implementations must agree on the axioms for arbitrary traces *)
let gen_trace =
  let open QCheck.Gen in
  let gen_event =
    frequency
      [
        ( 4,
          map3
            (fun th loc (v, ts) -> Tb.w th loc v ts)
            (int_range 0 1)
            (oneofl [ "x"; "y" ])
            (pair (int_range 0 2) (int_range 1 3)) );
        ( 3,
          map3
            (fun th loc (v, ts) -> Tb.r th loc v ts)
            (int_range 0 1)
            (oneofl [ "x"; "y" ])
            (pair (int_range 0 2) (int_range 0 3)) );
        (1, map Tb.b (int_range 0 1));
        (1, map Tb.c (int_range 0 1));
        (1, map Tb.a (int_range 0 1));
        (1, map (fun th -> Tb.q th "x") (int_range 0 1));
      ]
  in
  map
    (fun events -> Trace.make ~locs:[ "x"; "y" ] events)
    (list_size (int_range 2 7) gen_event)

let arb_trace = QCheck.make ~print:(Fmt.str "%a" Trace.pp) gen_trace

let prop_random_traces =
  QCheck.Test.make ~name:"fast = naive on random traces" ~count:150 arb_trace
    (fun t ->
      List.for_all
        (fun model ->
          let fast =
            let ctx = Lift.make t in
            Consistency.consistent_axioms model ctx (Hb.compute model ctx)
          in
          fast = Naive.consistent_axioms model t)
        models)

let prop_random_hb =
  QCheck.Test.make ~name:"fast hb = naive hb on random traces" ~count:80
    arb_trace (fun t ->
      List.for_all
        (fun model ->
          let ctx = Lift.make t in
          let fast = Hb.compute model ctx in
          let naive = Naive.hb model t in
          let ok = ref true in
          for i = 0 to Trace.length t - 1 do
            for j = 0 to Trace.length t - 1 do
              if Rel.mem fast i j <> naive i j then ok := false
            done
          done;
          !ok)
        models)

let suite =
  [
    Alcotest.test_case "oracle agreement on enumerated executions" `Slow
      test_on_catalog;
    Tb.qcheck prop_random_traces;
    Tb.qcheck prop_random_hb;
  ]
