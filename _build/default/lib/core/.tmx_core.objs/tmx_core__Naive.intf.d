lib/core/naive.mli: Model Trace
