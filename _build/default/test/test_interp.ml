(* Differential testing of the real runtime against the axiomatic model:
   every outcome the multicore STM produces under real scheduling must be
   admitted by the implementation model.  (The converse cannot hold — a
   sample cannot cover all schedules, and the host memory model is
   stronger than the paper's.) *)

open Tmx_core
open Tmx_exec

let program name = (Option.get (Tmx_litmus.Catalog.find name)).Tmx_litmus.Litmus.program

let differential ?(runs = 40) mode names () =
  List.iter
    (fun name ->
      let p = program name in
      let sampled = Tmx_harness.Interp.sample ~mode ~runs p in
      let admitted = Enumerate.outcomes (Enumerate.run Model.implementation p) in
      List.iter
        (fun o ->
          Alcotest.(check bool)
            (Fmt.str "%s: runtime outcome %a admitted by the model" name
               Outcome.pp o)
            true
            (List.exists (Outcome.equal o) admitted))
        sampled;
      Alcotest.(check bool) (name ^ ": sampled something") true (sampled <> []))
    names

let catalog_subset =
  [
    "privatization"; "privatization_fence"; "publication"; "sb"; "lb";
    "ex3_2"; "d1_opaque_writes"; "doomed";
  ]

let test_deterministic_program () =
  (* a single-threaded program has exactly one outcome, and it matches the
     model's *)
  let p =
    Tmx_lang.Ast.(
      program ~name:"seq" ~locs:[ "x"; "y" ]
        [
          [
            store (loc "x") (int 3);
            atomic [ load "r" (loc "x"); store (loc "y") Infix.(reg "r" * int 2) ];
            load "s" (loc "y");
          ];
        ])
  in
  match Tmx_harness.Interp.sample ~runs:3 p with
  | [ o ] ->
      Alcotest.(check int) "r" 3 (Outcome.reg o 0 "r");
      Alcotest.(check int) "s" 6 (Outcome.reg o 0 "s");
      Alcotest.(check int) "y" 6 (Outcome.mem o "y")
  | os -> Alcotest.failf "expected one outcome, got %d" (List.length os)

let test_abort_skips () =
  let p =
    Tmx_lang.Ast.(
      program ~name:"abort-skip" ~locs:[ "x" ]
        [
          [
            atomic [ store (loc "x") (int 1); abort ];
            load "r" (loc "x");
          ];
        ])
  in
  match Tmx_harness.Interp.sample ~runs:3 p with
  | [ o ] ->
      Alcotest.(check int) "aborted write invisible" 0 (Outcome.reg o 0 "r");
      Alcotest.(check int) "memory clean" 0 (Outcome.mem o "x")
  | os -> Alcotest.failf "expected one outcome, got %d" (List.length os)

let suite =
  [
    Alcotest.test_case "deterministic program" `Quick test_deterministic_program;
    Alcotest.test_case "abort skips and rolls back" `Quick test_abort_skips;
    Alcotest.test_case "lazy runtime within the implementation model" `Slow
      (differential Tmx_runtime.Stm.Lazy catalog_subset);
    Alcotest.test_case "eager runtime within the implementation model (fenced \
                        and dependency-ordered programs)" `Slow
      (differential Tmx_runtime.Stm.Eager
         [ "privatization_fence"; "publication"; "sb"; "d1_opaque_writes" ]);
  ]
