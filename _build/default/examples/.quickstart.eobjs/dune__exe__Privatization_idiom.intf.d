examples/privatization_idiom.mli:
