(* Model configurations: which happens-before rules and antidependency
   axioms are in force (§2 "Anti-Dependence vs Happens-Before", Ex 2.3;
   §5 implementation model; §6 strongest/x86 variant). *)

type t = {
  name : string;
  hb_ww : bool; (* HBww: c plain, a lww c, a crw;hb c *)
  anti_ww : bool; (* irreflexive (crw ; hb ; lww) *)
  hb_wr : bool; (* HBwr: c plain, a lwr c, a crw;hb c *)
  hb_rw : bool; (* HBrw: c plain, a lrw c, a crw;hb c *)
  anti_rw : bool; (* irreflexive (crw ; hb ; lrw) *)
  hb_ww' : bool; (* HB'ww: a plain, a lww c, a hb;crw c *)
  anti_ww' : bool; (* irreflexive (hb ; crw ; lww) *)
  hb_wr' : bool; (* HB'wr: a plain, a lwr c, a hb;crw c *)
  hb_rw' : bool; (* HB'rw: a plain, a lrw c, a hb;crw c *)
  anti_rw' : bool; (* irreflexive (hb ; crw ; lrw) *)
  quiescence : bool; (* WF12 + HBCQ + HBQB fence rules *)
}

let bare =
  {
    name = "bare";
    hb_ww = false;
    anti_ww = false;
    hb_wr = false;
    hb_rw = false;
    anti_rw = false;
    hb_ww' = false;
    anti_ww' = false;
    hb_wr' = false;
    hb_rw' = false;
    anti_rw' = false;
    quiescence = false;
  }

(* The programmer model of §2: HBww + AntiWW. *)
let programmer = { bare with name = "pm"; hb_ww = true; anti_ww = true }

(* The implementation model of §5: no HBww/AntiWW, quiescence fences. *)
let implementation = { bare with name = "im"; quiescence = true }

(* The six variants of Example 2.3, each on top of the bare model. *)
let variant_ww = { bare with name = "v-ww"; hb_ww = true; anti_ww = true }
let variant_rw = { bare with name = "v-rw"; hb_rw = true; anti_rw = true }
let variant_wr = { bare with name = "v-wr"; hb_wr = true }
let variant_ww' = { bare with name = "v-ww'"; hb_ww' = true; anti_ww' = true }
let variant_rw' = { bare with name = "v-rw'"; hb_rw' = true; anti_rw' = true }
let variant_wr' = { bare with name = "v-wr'"; hb_wr' = true }

(* §6: "x86-TSO validates even the strongest variant of our programmer
   model, which includes HBwr, HBrw, HBww and their prime variants". *)
let strongest =
  {
    name = "strong";
    hb_ww = true;
    anti_ww = true;
    hb_wr = true;
    hb_rw = true;
    anti_rw = true;
    hb_ww' = true;
    anti_ww' = true;
    hb_wr' = true;
    hb_rw' = true;
    anti_rw' = true;
    quiescence = true;
  }

let all = [ programmer; implementation; strongest; variant_ww; variant_rw;
            variant_wr; variant_ww'; variant_rw'; variant_wr'; bare ]

let by_name name = List.find_opt (fun m -> String.equal m.name name) all

(* Pointwise flag implication: [a] has every rule/axiom [b] has, so every
   execution consistent under [a] is consistent under [b].  The partial
   order the arch backends use to report the weakest validated variant:
   more hb rules and anti axioms can only forbid more. *)
let stronger_eq a b =
  let ge x y = x || not y in
  ge a.hb_ww b.hb_ww && ge a.anti_ww b.anti_ww && ge a.hb_wr b.hb_wr
  && ge a.hb_rw b.hb_rw && ge a.anti_rw b.anti_rw && ge a.hb_ww' b.hb_ww'
  && ge a.anti_ww' b.anti_ww' && ge a.hb_wr' b.hb_wr'
  && ge a.hb_rw' b.hb_rw' && ge a.anti_rw' b.anti_rw'
  && ge a.quiescence b.quiescence

let pp ppf m = Fmt.string ppf m.name
