(* The program transformations of §5, as generators: each function
   returns every program obtainable from the input by one application of
   the transformation.  Soundness (the transformed program has no new
   behaviours) is checked empirically by [Soundness].

   Sound per the paper:
     - swapping adjacent independent writes, or adjacent reads
     - P; atomic{Q}  =>  atomic{Q}; P   (Q read-only, P write-only plain,
       no conflicts)
     - roach motel: P; atomic{R}; Q  =>  atomic{P; R; Q}
     - fusion: atomic{P}; atomic{Q}  =>  atomic{P; Q}
     - eliding empty transactions
   Unsound (counterexamples exist; kept for negative testing):
     - fission: atomic{P; Q}  =>  atomic{P}; atomic{Q}
     - swapping a read past a later write or vice versa (either direction
       of "x:=2; r:=z" — the (‡) example) *)

open Tmx_lang

(* Apply [rewrite] at every position of every thread; collect results. *)
let per_thread (rewrite : Ast.stmt list -> Ast.stmt list list) (p : Ast.program) =
  let rec positions prefix = function
    | [] -> []
    | s :: rest ->
        List.map (fun rewritten -> List.rev_append prefix rewritten) (rewrite (s :: rest))
        @ positions (s :: prefix) rest
  in
  List.concat
    (List.mapi
       (fun i th ->
         List.map
           (fun th' ->
             {
               p with
               Ast.name = p.Ast.name ^ "'";
               threads = List.mapi (fun j u -> if j = i then th' else u) p.threads;
             })
           (positions [] th))
       p.threads)

let plain_single (s : Ast.stmt) =
  match s with
  | Load _ | Store _ -> true
  | Assign _ | Skip -> true
  | _ -> false

(* adjacent swap of independent plain statements: write/write on disjoint
   locations, or read/read *)
let swap_independent =
  per_thread (function
    | s1 :: s2 :: rest when plain_single s1 && plain_single s2 ->
        let f1 = Footprint.of_stmt s1 and f2 = Footprint.of_stmt s2 in
        let both_writes = Footprint.is_write_only f1 && Footprint.is_write_only f2 in
        let both_reads = Footprint.is_read_only f1 && Footprint.is_read_only f2 in
        (* register dependence: s2 must not use a register s1 defines and
           vice versa; conservatively require disjoint register sets *)
        let regs s = Ast.thread_regs [ s ] in
        let reg_independent =
          List.for_all (fun r -> not (List.mem r (regs s2))) (regs s1)
        in
        if
          (not (Footprint.conflicts f1 f2))
          && reg_independent
          && (both_writes || both_reads)
        then [ s2 :: s1 :: rest ]
        else []
    | _ -> [])

(* P; atomic{Q} => atomic{Q}; P with Q read-only, P write-only plain *)
let write_past_readonly_txn =
  per_thread (function
    | p :: Ast.Atomic q :: rest when plain_single p ->
        let fp = Footprint.of_stmt p and fq = Footprint.of_stmts q in
        let regs s = Ast.thread_regs [ s ] in
        let reg_independent =
          List.for_all (fun r -> not (List.mem r (Ast.thread_regs q))) (regs p)
        in
        if
          Footprint.is_write_only fp
          && Footprint.is_read_only fq
          && (not (Footprint.conflicts fp fq))
          && reg_independent
        then [ Ast.Atomic q :: p :: rest ]
        else []
    | _ -> [])

(* roach motel: absorb an adjacent plain statement into an atomic block,
   from either side *)
let roach_motel =
  per_thread (function
    | p :: Ast.Atomic r :: rest when plain_single p ->
        [ Ast.Atomic (p :: r) :: rest ]
    | Ast.Atomic r :: q :: rest when plain_single q ->
        [ Ast.Atomic (r @ [ q ]) :: rest ]
    | _ -> [])

(* fusion of adjacent transactions *)
let fuse =
  per_thread (function
    | Ast.Atomic p :: Ast.Atomic q :: rest
      when (not (List.mem Ast.Abort p)) ->
        (* an abort in the first block would abort the second's effects
           after fusion; the paper's fusion is for abort-free blocks *)
        [ Ast.Atomic (p @ q) :: rest ]
    | _ -> [])

(* the unsound converse *)
let fission =
  per_thread (function
    | Ast.Atomic body :: rest when List.length body >= 2 ->
        List.init
          (List.length body - 1)
          (fun k ->
            let p = List.filteri (fun i _ -> i <= k) body in
            let q = List.filteri (fun i _ -> i > k) body in
            Ast.Atomic p :: Ast.Atomic q :: rest)
    | _ -> [])

(* eliding / introducing empty transactions *)
let elide_empty =
  per_thread (function Ast.Atomic [] :: rest -> [ rest ] | _ -> [])

let introduce_empty =
  per_thread (function
    | s :: rest -> [ Ast.Atomic [] :: s :: rest ] | [] -> [])

(* unsound: swap a plain read past a plain write (both directions) *)
let swap_read_write =
  per_thread (function
    | s1 :: s2 :: rest when plain_single s1 && plain_single s2 ->
        let f1 = Footprint.of_stmt s1 and f2 = Footprint.of_stmt s2 in
        let rw =
          (Footprint.is_read_only f1 && Footprint.is_write_only f2)
          || (Footprint.is_write_only f1 && Footprint.is_read_only f2)
        in
        if rw && not (Footprint.conflicts f1 f2) then [ s2 :: s1 :: rest ]
        else []
    | _ -> [])

type named = { name : string; sound : bool; generate : Ast.program -> Ast.program list }

let all =
  [
    { name = "swap-independent"; sound = true; generate = swap_independent };
    {
      name = "write-past-readonly-txn";
      sound = true;
      generate = write_past_readonly_txn;
    };
    { name = "roach-motel"; sound = true; generate = roach_motel };
    { name = "fuse"; sound = true; generate = fuse };
    { name = "elide-empty"; sound = true; generate = elide_empty };
    { name = "introduce-empty"; sound = true; generate = introduce_empty };
    { name = "fission"; sound = false; generate = fission };
    { name = "swap-read-write"; sound = false; generate = swap_read_write };
  ]
