lib/core/hb.mli: Lift Model Rel
