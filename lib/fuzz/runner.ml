open Tmx_lang

type options = {
  seed : int;
  count : int;
  time_budget : float;
  oracles : Oracle.t list;
  jobs : int;
  gen_config : Gen.config;
  corpus_dir : string option;
  crashes_dir : string option;
  minimize : bool;
  max_failures : int;
  enumerate :
    (Tmx_exec.Enumerate.config ->
    Tmx_core.Model.t ->
    Ast.program ->
    Tmx_exec.Enumerate.result)
    option;
      (* oracle-side enumeration override (`--cache`); jobs-det ignores
         it by design *)
}

let default_options =
  {
    seed = 0;
    count = 100;
    time_budget = 0.;
    oracles = Oracle.stock;
    jobs = 2;
    gen_config = Gen.mixed;
    corpus_dir = Some Corpus.default_corpus_dir;
    crashes_dir = Some Corpus.default_crashes_dir;
    minimize = true;
    max_failures = 5;
    enumerate = None;
  }

type failure = {
  oracle : string;
  detail : string;
  origin : string;
  program : Ast.program;
  minimized : Ast.program option;
  shrink_steps : int;
  saved : string option;
}

type report = {
  seed : int;
  jobs : int;
  generated : int;
  corpus_replayed : int;
  crashes_replayed : int;
  corpus_skipped : int;
  corpus_deduped : int;
  skipped_files : (string * string) list;
  checks : int;
  per_oracle : (string * int) list;
  failures : failure list;
  elapsed : float;
  budget_exhausted : bool;
}

let ok r = r.failures = []

(* minimization re-runs the oracle many times; use a fixed ctx so the
   check is a deterministic predicate of the program alone *)
let oracle_fails (o : Oracle.t) ?run ~jobs ~seed p =
  match o.check (Oracle.make_ctx ?run ~jobs ~seed ()) p with
  | Oracle.Pass -> false
  | Oracle.Fail _ -> true

let minimize_failure opts (o : Oracle.t) ~seed ~origin ~detail p =
  let minimized, shrink_steps =
    if opts.minimize then
      let m, steps =
        Shrink.minimize
          ~fails:(oracle_fails o ?run:opts.enumerate ~jobs:opts.jobs ~seed)
          p
      in
      (Some m, steps)
    else (None, 0)
  in
  let saved =
    match (opts.crashes_dir, minimized) with
    | Some dir, Some m ->
        Some (Corpus.save ~dir ~prefix:("crash-" ^ o.name) m)
    | Some dir, None -> Some (Corpus.save ~dir ~prefix:("crash-" ^ o.name) p)
    | None, _ -> None
  in
  { oracle = o.name; detail; origin; program = p; minimized; shrink_steps; saved }

let minimize_program (opts : options) (o : Oracle.t) p =
  let seed = opts.seed in
  match o.check (Oracle.make_ctx ?run:opts.enumerate ~jobs:opts.jobs ~seed ()) p with
  | Oracle.Pass -> Error (Fmt.str "oracle %s passes on this program" o.name)
  | Oracle.Fail detail ->
      Ok
        (minimize_failure
           { opts with minimize = true }
           o ~seed ~origin:"minimize" ~detail p)

let run opts =
  let t0 = Tmx_runtime.Clock.now_s () in
  let deadline =
    if opts.time_budget > 0. then Some (t0 +. opts.time_budget) else None
  in
  let budget_exhausted = ref false in
  let out_of_time () =
    match deadline with
    | Some d when Tmx_runtime.Clock.now_s () > d ->
        budget_exhausted := true;
        true
    | _ -> false
  in
  let failures = ref [] in
  let checks = ref 0 in
  let per_oracle = Hashtbl.create 8 in
  let check_program ~origin ~seed p =
    List.iter
      (fun (o : Oracle.t) ->
        if
          List.length !failures < opts.max_failures
          && not (out_of_time ())
        then begin
          incr checks;
          Hashtbl.replace per_oracle o.name
            (1 + Option.value (Hashtbl.find_opt per_oracle o.name) ~default:0);
          match
            o.check (Oracle.make_ctx ?run:opts.enumerate ~jobs:opts.jobs ~seed ()) p
          with
          | Oracle.Pass -> ()
          | Oracle.Fail detail ->
              failures :=
                minimize_failure opts o ~seed ~origin ~detail p :: !failures
        end)
      opts.oracles
  in
  let skipped_files = ref [] in
  (* seeds are deduped by canonical digest across both replay dirs: a
     crash file and a corpus seed that are the same program modulo
     formatting (or name) get checked once *)
  let seen : (string, unit) Hashtbl.t = Hashtbl.create 32 in
  let deduped = ref 0 in
  let replay which dir_opt =
    match dir_opt with
    | None -> 0
    | Some dir ->
        skipped_files := !skipped_files @ Corpus.load_errors ~dir;
        let entries = Corpus.load ~dir in
        let entries =
          List.filter
            (fun (_, p) ->
              let d = Canon.digest p in
              if Hashtbl.mem seen d then begin
                incr deduped;
                false
              end
              else begin
                Hashtbl.add seen d ();
                true
              end)
            entries
        in
        List.iteri
          (fun i (file, p) ->
            let origin = Fmt.str "%s:%s" which (Filename.basename file) in
            check_program ~origin ~seed:(opts.seed + i) p)
          entries;
        List.length entries
  in
  let crashes_replayed = replay "crash" opts.crashes_dir in
  let corpus_replayed = replay "corpus" opts.corpus_dir in
  let generated = ref 0 in
  (try
     for i = 0 to opts.count - 1 do
       if List.length !failures >= opts.max_failures || out_of_time () then
         raise Exit;
       let st = Gen.state_of_seed ~seed:opts.seed ~index:i in
       let name = Fmt.str "fuzz_%d_%d" opts.seed i in
       let p = Gen.program ~name opts.gen_config st in
       incr generated;
       check_program ~origin:(Fmt.str "generated:%d" i) ~seed:(opts.seed + i) p
     done
   with Exit -> ());
  {
    seed = opts.seed;
    jobs = opts.jobs;
    generated = !generated;
    corpus_replayed;
    crashes_replayed;
    corpus_skipped = List.length !skipped_files;
    corpus_deduped = !deduped;
    skipped_files = !skipped_files;
    checks = !checks;
    per_oracle =
      List.filter_map
        (fun (o : Oracle.t) ->
          Option.map (fun n -> (o.name, n)) (Hashtbl.find_opt per_oracle o.name))
        opts.oracles;
    failures = List.rev !failures;
    elapsed = Tmx_runtime.Clock.now_s () -. t0;
    budget_exhausted = !budget_exhausted;
  }

(* -- rendering ---------------------------------------------------------------- *)

let pp_failure ppf (f : failure) =
  Fmt.pf ppf "@[<v>FAIL %s (%s)@,  %s@,  program:@,%a@]" f.oracle f.origin
    f.detail Ast.pp_program f.program;
  (match f.minimized with
  | Some m ->
      Fmt.pf ppf "@,  minimized (%d shrink steps, %d statements):@,%a"
        f.shrink_steps (Shrink.size m) Ast.pp_program m
  | None -> ());
  match f.saved with
  | Some path -> Fmt.pf ppf "@,  saved to %s" path
  | None -> ()

let pp_report ppf (r : report) =
  Fmt.pf ppf "@[<v>";
  List.iter
    (fun (file, msg) -> Fmt.pf ppf "warning: skipped %s: %s@," file msg)
    r.skipped_files;
  Fmt.pf ppf
    "fuzz: seed %d, %d generated + %d corpus + %d crash replays (%d \
     skipped, %d deduped), %d oracle checks in %.1fs%s@,%a@]"
    r.seed r.generated r.corpus_replayed r.crashes_replayed r.corpus_skipped
    r.corpus_deduped r.checks r.elapsed
    (if r.budget_exhausted then " (time budget exhausted)" else "")
    Fmt.(list ~sep:cut (fun ppf (o, n) -> Fmt.pf ppf "  %-14s %d programs" o n))
    r.per_oracle;
  if r.failures = [] then Fmt.pf ppf "@,all oracles green@]"
  else
    Fmt.pf ppf "@,%d failure(s):@,%a@]" (List.length r.failures)
      Fmt.(list ~sep:cut pp_failure)
      r.failures

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Fmt.str "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let failure_to_json (f : failure) =
  let prog p = Fmt.str "\"%s\"" (json_escape (Tmx_litmus.Export.program_to_string p)) in
  Fmt.str
    "{\"oracle\": \"%s\", \"origin\": \"%s\", \"detail\": \"%s\", \
     \"program\": %s, \"minimized\": %s, \"shrink_steps\": %d, \
     \"minimized_statements\": %s, \"saved\": %s}"
    (json_escape f.oracle) (json_escape f.origin) (json_escape f.detail)
    (prog f.program)
    (match f.minimized with Some m -> prog m | None -> "null")
    f.shrink_steps
    (match f.minimized with
    | Some m -> string_of_int (Shrink.size m)
    | None -> "null")
    (match f.saved with
    | Some path -> Fmt.str "\"%s\"" (json_escape path)
    | None -> "null")

let report_to_json (r : report) =
  Fmt.str
    "{\n\
     \  \"experiment\": \"differential_fuzz\",\n\
     \  \"seed\": %d,\n\
     \  \"jobs\": %d,\n\
     \  \"generated\": %d,\n\
     \  \"corpus_replayed\": %d,\n\
     \  \"crashes_replayed\": %d,\n\
     \  \"corpus_skipped\": %d,\n\
     \  \"corpus_deduped\": %d,\n\
     \  \"skipped_files\": [%s],\n\
     \  \"checks\": %d,\n\
     \  \"oracles\": [%s],\n\
     \  \"failures\": [%s],\n\
     \  \"elapsed_s\": %.3f,\n\
     \  \"budget_exhausted\": %b,\n\
     \  \"ok\": %b\n\
     }"
    r.seed r.jobs r.generated r.corpus_replayed r.crashes_replayed
    r.corpus_skipped r.corpus_deduped
    (String.concat ", "
       (List.map
          (fun (file, msg) ->
            Fmt.str "{\"file\": \"%s\", \"error\": \"%s\"}" (json_escape file)
              (json_escape msg))
          r.skipped_files))
    r.checks
    (String.concat ", "
       (List.map
          (fun (o, n) -> Fmt.str "{\"name\": \"%s\", \"programs\": %d}" (json_escape o) n)
          r.per_oracle))
    (String.concat ",\n    " (List.map failure_to_json r.failures))
    r.elapsed r.budget_exhausted (ok r)
