open Tmx_core
open Tmx_exec
open Tmx_litmus

(* exported programs parse back with identical behaviour *)
let test_roundtrip () =
  List.iter
    (fun (l : Litmus.t) ->
      let text = Export.program_to_string l.program in
      match Parse.parse text with
      | exception Parse.Error msg ->
          Alcotest.failf "%s: exported text does not parse: %s@.%s" l.name msg text
      | parsed ->
          let a = Enumerate.outcomes (Enumerate.run Model.programmer l.program) in
          let b = Enumerate.outcomes (Enumerate.run Model.programmer parsed.program) in
          if not (List.length a = List.length b && List.for_all2 Outcome.equal a b)
          then Alcotest.failf "%s: behaviours changed across the round trip" l.name)
    Catalog.all

let test_shape_roundtrip () =
  List.iter
    (fun (c : Shapes.case) ->
      let text = Export.program_to_string c.program in
      match Parse.parse text with
      | exception Parse.Error msg ->
          Alcotest.failf "%s: exported text does not parse: %s" c.name msg
      | parsed ->
          let r = Enumerate.run Model.programmer parsed.program in
          Alcotest.(check bool)
            (Fmt.str "%s: verdict preserved" c.name)
            c.forbidden
            (not (Enumerate.allowed r c.cond)))
    Shapes.mp

let suite =
  [
    Alcotest.test_case "catalog round trip" `Slow test_roundtrip;
    Alcotest.test_case "shape round trip" `Quick test_shape_roundtrip;
  ]
