(* A fixed-capacity transactional hash map from positive integers to
   integers, using open addressing with tombstones.  Keys must be
   positive; slot states are encoded in the key array (0 = empty,
   -1 = tombstone). *)

type t = { keys : Tarray.t; values : Tarray.t; population : Tvar.t }

let empty_key = 0
let tombstone = -1

let create ~capacity =
  if capacity <= 0 then invalid_arg "Tmap.create: capacity must be positive";
  {
    keys = Tarray.make capacity empty_key;
    values = Tarray.make capacity 0;
    population = Tvar.make 0;
  }

let capacity m = Tarray.length m.keys

let check_key k = if k <= 0 then invalid_arg "Tmap: keys must be positive"

let hash m k = (k * 2654435761) land max_int mod capacity m

(* probe for the slot holding [k]; [`Found i] or [`Free i] (first
   insertable slot) or [`Full] *)
let probe tx m k =
  let cap = capacity m in
  let start = hash m k in
  let first_free = ref (-1) in
  let rec go step =
    if step >= cap then if !first_free >= 0 then `Free !first_free else `Full
    else
      let i = (start + step) mod cap in
      let key = Tarray.get tx m.keys i in
      if key = k then `Found i
      else if key = empty_key then
        if !first_free >= 0 then `Free !first_free else `Free i
      else begin
        if key = tombstone && !first_free < 0 then first_free := i;
        go (step + 1)
      end
  in
  go 0

let find tx m k =
  check_key k;
  match probe tx m k with
  | `Found i -> Some (Tarray.get tx m.values i)
  | `Free _ | `Full -> None

let mem tx m k = Option.is_some (find tx m k)

let add tx m k v =
  check_key k;
  match probe tx m k with
  | `Found i ->
      Tarray.set tx m.values i v;
      true
  | `Free i ->
      Tarray.set tx m.keys i k;
      Tarray.set tx m.values i v;
      Stm.write tx m.population (Stm.read tx m.population + 1);
      true
  | `Full -> false

let remove tx m k =
  check_key k;
  match probe tx m k with
  | `Found i ->
      Tarray.set tx m.keys i tombstone;
      Stm.write tx m.population (Stm.read tx m.population - 1);
      true
  | `Free _ | `Full -> false

let cardinal tx m = Stm.read tx m.population

let fold tx m f init =
  let acc = ref init in
  for i = 0 to capacity m - 1 do
    let k = Tarray.get tx m.keys i in
    if k <> empty_key && k <> tombstone then
      acc := f k (Tarray.get tx m.values i) !acc
  done;
  !acc
