lib/core/lift.mli: Rel Trace
