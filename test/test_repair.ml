(* The repair pipeline: path-keyed edits ([Tmx_opt.Patch]), the
   counterexample-guided synthesizer ([Tmx_analysis.Repair]), and — the
   crux — the repair-sound oracle: over the litmus catalog and 200
   random programs, every synthesized repair verifies race-free under
   the goal and removing any single edit reintroduces a race
   (1-minimality), re-checked independently of the search.

   The quick suite also pins the satellite property of the lint fix
   suggestions: every [Insert_fence] suggestion, mechanically applied,
   yields a program that re-parses through the litmus text round-trip
   and whose finding strictly decreases in severity (or disappears). *)

open Tmx_core
open Tmx_lang
module Access = Tmx_analysis.Access
module Lint = Tmx_analysis.Lint
module Repair = Tmx_analysis.Repair
module Patch = Tmx_opt.Patch
module Footprint = Tmx_opt.Footprint

let im = Model.implementation

let find name = (Option.get (Tmx_litmus.Catalog.find name)).program

let catalog_programs =
  List.map (fun (l : Tmx_litmus.Litmus.t) -> l.program) Tmx_litmus.Catalog.all

(* single-domain config for reproducible test runs *)
let config = { Tmx_exec.Enumerate.default_config with jobs = 1 }

let check_ok what = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: %s" what e

let check_err what = function
  | Ok _ -> Alcotest.failf "%s: expected an error" what
  | Error (e : string) -> e

(* -- Patch ------------------------------------------------------------------- *)

let two_thread body1 =
  Ast.(program ~locs:[ "x"; "y" ] [ [ atomic [ store (loc "y") (int 1) ] ]; body1 ])

let test_patch_fence () =
  let p = two_thread Ast.[ atomic [ store (loc "y") (int 2) ]; store (loc "x") (int 1) ] in
  let p' =
    check_ok "fence apply"
      (Patch.apply [ Patch.Insert_fence { before = "t1.1"; fence_loc = "x" } ] p)
  in
  Alcotest.(check string)
    "fence inserted before the store"
    (Fmt.str "%a" Ast.pp_body
       Ast.[ atomic [ store (loc "y") (int 2) ]; fence "x"; store (loc "x") (int 1) ])
    (Fmt.str "%a" Ast.pp_body (List.nth p'.Ast.threads 1));
  (* the paths an edit addresses are the ORIGINAL program's: a second
     application at the same path inserts before the same store *)
  let err =
    check_err "fence inside atomic"
      (Patch.apply [ Patch.Insert_fence { before = "t0.0.atomic.0"; fence_loc = "x" } ] p)
  in
  let contains_sub s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "error names the atomic restriction" true
    (contains_sub err "atomic")

let test_patch_promote () =
  let p = two_thread Ast.[ store (loc "x") (int 1) ] in
  let p' =
    check_ok "promote apply" (Patch.apply [ Patch.Promote { path = "t1.0" } ] p)
  in
  Alcotest.(check string) "store wrapped in atomic"
    (Fmt.str "%a" Ast.pp_body Ast.[ atomic [ store (loc "x") (int 1) ] ])
    (Fmt.str "%a" Ast.pp_body (List.nth p'.Ast.threads 1));
  ignore
    (check_err "promote a transactional access"
       (Patch.apply [ Patch.Promote { path = "t0.0.atomic.0" } ] p));
  ignore
    (check_err "promote an if"
       (Patch.apply [ Patch.Promote { path = "t1.0" } ]
          (two_thread Ast.[ if_ (int 1) [ store (loc "x") (int 1) ] [] ])))

let test_patch_absorb () =
  (* backward: into the preceding atomic *)
  let p = two_thread Ast.[ atomic [ store (loc "y") (int 2) ]; store (loc "x") (int 1) ] in
  let p' =
    check_ok "absorb backward" (Patch.apply [ Patch.Absorb { path = "t1.1" } ] p)
  in
  Alcotest.(check string) "absorbed into the preceding atomic"
    (Fmt.str "%a" Ast.pp_body
       Ast.[ atomic [ store (loc "y") (int 2); store (loc "x") (int 1) ] ])
    (Fmt.str "%a" Ast.pp_body (List.nth p'.Ast.threads 1));
  (* forward: into the following atomic *)
  let p = two_thread Ast.[ store (loc "x") (int 1); atomic [ store (loc "y") (int 2) ] ] in
  let p' =
    check_ok "absorb forward" (Patch.apply [ Patch.Absorb { path = "t1.0" } ] p)
  in
  Alcotest.(check string) "absorbed into the following atomic"
    (Fmt.str "%a" Ast.pp_body
       Ast.[ atomic [ store (loc "x") (int 1); store (loc "y") (int 2) ] ])
    (Fmt.str "%a" Ast.pp_body (List.nth p'.Ast.threads 1));
  ignore
    (check_err "no adjacent atomic"
       (Patch.apply [ Patch.Absorb { path = "t1.0" } ]
          (two_thread Ast.[ store (loc "x") (int 1) ])))

let test_patch_errors () =
  let p = two_thread Ast.[ store (loc "x") (int 1) ] in
  ignore
    (check_err "unmatched path"
       (Patch.apply [ Patch.Promote { path = "t1.7" } ] p));
  ignore
    (check_err "conflicting edits"
       (Patch.apply
          [ Patch.Promote { path = "t1.0" }; Patch.Absorb { path = "t1.0" } ]
          p));
  ignore
    (check_err "undeclared fence location"
       (Patch.apply [ Patch.Insert_fence { before = "t1.0"; fence_loc = "zz" } ] p))

let test_patch_roundtrip () =
  (* an edited program survives the litmus text round trip structurally *)
  let p = find "privatization" in
  let p' =
    check_ok "fence apply"
      (Patch.apply [ Patch.Insert_fence { before = "t1.1"; fence_loc = "x" } ] p)
  in
  let reparsed =
    (Tmx_litmus.Parse.parse (Tmx_litmus.Export.program_to_string p')).program
  in
  Alcotest.(check string) "structural digest survives the round trip"
    (Canon.digest p') (Canon.digest reparsed);
  Alcotest.(check string) "fence repair of privatization = the catalog exemplar"
    (Canon.digest (find "privatization_fence"))
    (Canon.digest p')

(* -- Repair ------------------------------------------------------------------- *)

let test_repair_privatization () =
  let r = check_ok "repair" (Repair.run ~config im (find "privatization")) in
  Alcotest.(check int) "one edit" 1 (List.length r.Repair.edits);
  Alcotest.(check bool) "repaired program differs" false
    (Canon.digest r.original = Canon.digest r.repaired);
  check_ok "repair-sound" (Repair.check ~config im r)

let test_repair_fence_only () =
  let r =
    check_ok "repair --no-promote"
      (Repair.run ~config ~promote:false im (find "privatization"))
  in
  (match r.Repair.edits with
  | [ Patch.Insert_fence { before; fence_loc } ] ->
      Alcotest.(check string) "fence location" "x" fence_loc;
      Alcotest.(check string) "fence site" "t1.1" before
  | es ->
      Alcotest.failf "expected a single fence insertion, got %a"
        Fmt.(list ~sep:comma Patch.pp_edit)
        es);
  Alcotest.(check string) "repaired = privatization_fence structurally"
    (Canon.digest (find "privatization_fence"))
    (Canon.digest r.repaired);
  check_ok "repair-sound" (Repair.check ~config im r)

let test_repair_clean () =
  List.iter
    (fun name ->
      let r = check_ok ("repair " ^ name) (Repair.run ~config im (find name)) in
      Alcotest.(check int) (name ^ " needs no edits") 0 (List.length r.Repair.edits);
      check_ok (name ^ " repair-sound") (Repair.check ~config im r))
    [ "publication"; "privatization_fence"; "d4_no_overlapped_writes" ]

let test_certificate_deterministic () =
  let run () =
    (check_ok "repair" (Repair.run ~config im (find "privatization"))).Repair.certificate
  in
  let c1 = run () and c2 = run () in
  Alcotest.(check string) "same certificate across runs" c1 c2;
  (* the certificate binds the model: a different model yields another *)
  let c3 =
    (check_ok "repair" (Repair.run ~config Model.bare (find "privatization")))
      .Repair.certificate
  in
  Alcotest.(check bool) "model is part of the certificate" false (c1 = c3)

let test_repair_goal_all () =
  (* sb races plain/plain; under goal All it needs wrapping, under the
     default Mixed goal it is already clean (no transactional access) *)
  let p = find "sb" in
  let clean = check_ok "repair mixed" (Repair.run ~config im p) in
  Alcotest.(check int) "no mixed race to repair" 0 (List.length clean.Repair.edits);
  let r = check_ok "repair all" (Repair.run ~config ~goal:Repair.All im p) in
  Alcotest.(check bool) "goal all repairs sb" true (r.Repair.edits <> []);
  check_ok "repair-sound" (Repair.check ~config ~goal:Repair.All im r)

(* -- the Insert_fence property (satellite) ------------------------------------ *)

(* Identify the finding across the edit.  Inserting k fences
   immediately before the plain access shifts the last index of its
   source path by k; the other access lives in another thread (mixed
   pairs are cross-thread) and keeps its path. *)
let bump_last k path =
  match String.rindex_opt path '.' with
  | None -> path
  | Some i -> (
      let head = String.sub path 0 i in
      let tail = String.sub path (i + 1) (String.length path - i - 1) in
      match int_of_string_opt tail with
      | Some n -> Fmt.str "%s.%d" head (n + k)
      | None -> path)

let check_fence_fixes (p : Ast.program) =
  let r = Lint.lint p in
  List.iter
    (fun (f : Lint.finding) ->
      match f.Lint.fix with
      | Lint.Wrap_atomic _ -> ()
      | Lint.Insert_fence { fence_loc; before } -> (
          match Patch.apply [ Patch.Insert_fence { before; fence_loc } ] p with
          | Error e ->
              Alcotest.failf "%s: fence fix at %s does not apply: %s"
                p.Ast.name before e
          | Ok p' ->
              (* the edited program re-parses through the text format *)
              let reparsed =
                (Tmx_litmus.Parse.parse (Tmx_litmus.Export.program_to_string p'))
                  .program
              in
              Alcotest.(check string)
                (Fmt.str "%s: fenced program survives the round trip" p.Ast.name)
                (Canon.digest p') (Canon.digest reparsed);
              (* and the finding strictly decreased in severity *)
              let k =
                List.length
                  (List.sort_uniq compare
                     (Footprint.expand_name ~locs:p.Ast.locs fence_loc))
              in
              let other =
                if f.a.Access.path = before then f.b.Access.path
                else f.a.Access.path
              in
              let expected =
                List.sort compare [ bump_last k before; other ]
              in
              let matching =
                List.filter
                  (fun (f' : Lint.finding) ->
                    f'.Lint.kind = f.Lint.kind
                    && f'.loc = f.loc
                    && List.sort compare
                         [ f'.a.Access.path; f'.b.Access.path ]
                       = expected)
                  (Lint.lint p').Lint.findings
              in
              Alcotest.(check bool)
                (Fmt.str "%s: the fenced pair is still reported (one-sided)"
                   p.Ast.name)
                true (matching <> []);
              List.iter
                (fun (f' : Lint.finding) ->
                  Alcotest.(check bool)
                    (Fmt.str "%s: severity strictly decreases at %s (%a -> %a)"
                       p.Ast.name before Lint.pp_severity f.severity
                       Lint.pp_severity f'.severity)
                    true
                    (Lint.severity_rank f'.severity > Lint.severity_rank f.severity))
                matching))
    r.Lint.findings

let test_fence_fix_property_catalog () =
  List.iter check_fence_fixes catalog_programs

let gen_program : Ast.program QCheck.Gen.t =
  Tmx_fuzz.Gen.program Tmx_fuzz.Gen.analysis

let arb_program = QCheck.make ~print:(Fmt.str "%a" Ast.pp_program) gen_program

let prop_fence_fix_random =
  QCheck.Test.make
    ~name:"Insert_fence fixes re-parse and strictly decrease severity (200 random)"
    ~count:200 arb_program (fun p ->
      check_fence_fixes p;
      true)

(* -- the repair-sound oracle (exhaustive) -------------------------------------- *)

let test_repair_sound_catalog () =
  let repaired = ref 0 and clean = ref 0 in
  List.iter
    (fun (p : Ast.program) ->
      let r = check_ok ("repair " ^ p.Ast.name) (Repair.run ~config im p) in
      if r.Repair.edits = [] then incr clean else incr repaired;
      check_ok (p.Ast.name ^ " repair-sound") (Repair.check ~config im r))
    catalog_programs;
  Fmt.pr "@.repair over the catalog: %d repaired, %d already clean@." !repaired
    !clean;
  (* pin the floor: the nine mixed-racy programs all get repairs *)
  Alcotest.(check int) "nine catalog programs need repair" 9 !repaired

let prop_repair_sound_random =
  QCheck.Test.make ~name:"repair-sound on 200 random programs" ~count:200
    arb_program (fun p ->
      match Repair.run ~config im p with
      | Error e -> QCheck.Test.fail_reportf "no repair found: %s" e
      | Ok r -> (
          match Repair.check ~config im r with
          | Ok () -> true
          | Error e -> QCheck.Test.fail_reportf "repair-sound violation: %s" e))

let suite =
  [
    Alcotest.test_case "patch: fence insertion" `Quick test_patch_fence;
    Alcotest.test_case "patch: promotion" `Quick test_patch_promote;
    Alcotest.test_case "patch: absorption" `Quick test_patch_absorb;
    Alcotest.test_case "patch: error cases" `Quick test_patch_errors;
    Alcotest.test_case "patch: litmus round trip" `Quick test_patch_roundtrip;
    Alcotest.test_case "repair privatization" `Quick test_repair_privatization;
    Alcotest.test_case "fence-only repair = catalog exemplar" `Quick
      test_repair_fence_only;
    Alcotest.test_case "clean programs need no repair" `Quick test_repair_clean;
    Alcotest.test_case "certificates are deterministic" `Quick
      test_certificate_deterministic;
    Alcotest.test_case "goal all vs goal mixed" `Quick test_repair_goal_all;
    Alcotest.test_case "fence fixes strictly decrease severity (catalog)" `Quick
      test_fence_fix_property_catalog;
    Tb.qcheck prop_fence_fix_random;
  ]

let oracle_suite =
  [
    Alcotest.test_case "repair-sound over the catalog" `Slow
      test_repair_sound_catalog;
    Tb.qcheck prop_repair_sound_random;
  ]
