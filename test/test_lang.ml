open Tmx_lang

let test_validate_ok () =
  let p =
    Ast.(
      program ~locs:[ "x" ]
        [ [ atomic [ store (loc "x") (int 1); abort ] ]; [ load "r" (loc "x") ] ])
  in
  Alcotest.(check bool) "valid program" true (Result.is_ok (Ast.validate p))

let test_validate_nested () =
  let p = Ast.(program ~locs:[] [ [ atomic [ atomic [ skip ] ] ] ]) in
  Alcotest.(check bool) "nested atomic rejected" true (Result.is_error (Ast.validate p))

let test_validate_abort_outside () =
  let p = Ast.(program ~locs:[] [ [ abort ] ]) in
  Alcotest.(check bool) "stray abort rejected" true (Result.is_error (Ast.validate p))

let test_validate_fence_inside () =
  let p = Ast.(program ~locs:[ "x" ] [ [ atomic [ fence "x" ] ] ]) in
  Alcotest.(check bool) "fence in atomic rejected" true (Result.is_error (Ast.validate p))

let test_validate_in_branches () =
  let p =
    Ast.(program ~locs:[] [ [ if_ (int 1) [ atomic [ atomic [] ] ] [] ] ])
  in
  Alcotest.(check bool) "nested atomic in branch rejected" true
    (Result.is_error (Ast.validate p))

let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let error_of p = match Ast.validate p with Ok () -> "" | Error e -> e

let test_validate_undeclared_store () =
  let p = Ast.(program ~locs:[ "x" ] [ [ store (loc "y") (int 1) ] ]) in
  let e = error_of p in
  Alcotest.(check bool) "undeclared store rejected" true (e <> "");
  Alcotest.(check bool) "error names the thread and location" true
    (contains_sub e "thread 0" && contains_sub e "\"y\"")

let test_validate_undeclared_load () =
  let p =
    Ast.(
      program ~locs:[ "x" ]
        [ [ skip ]; [ atomic [ load "r" (loc "z") ] ] ])
  in
  Alcotest.(check bool) "undeclared load rejected" true
    (contains_sub (error_of p) "thread 1")

let test_validate_cells () =
  let p =
    Ast.(
      program ~locs:[ "z[0]"; "z[1]" ]
        [ [ store (cell "z" (reg "r")) (int 1); fence "z" ] ])
  in
  Alcotest.(check bool) "cells + array fence ok" true
    (Result.is_ok (Ast.validate p));
  let bad =
    Ast.(program ~locs:[ "z[0]" ] [ [ store (cell "w" (reg "r")) (int 1) ] ])
  in
  Alcotest.(check bool) "undeclared array rejected" true
    (Result.is_error (Ast.validate bad));
  (* a bare reference to an array base is a likely bug: say so *)
  let bare = Ast.(program ~locs:[ "z[0]" ] [ [ load "r" (loc "z") ] ]) in
  Alcotest.(check bool) "bare array base gets a hint" true
    (contains_sub (error_of bare) "index it")

let test_validate_undeclared_fence () =
  let p = Ast.(program ~locs:[ "x" ] [ [ fence "y" ] ]) in
  Alcotest.(check bool) "fence on undeclared location rejected" true
    (Result.is_error (Ast.validate p))

let test_thread_regs () =
  let th =
    Ast.
      [
        load "r1" (loc "x");
        atomic [ load "r2" (loc "y"); store (loc "x") Infix.(reg "r2" + int 1) ];
        assign "r3" (reg "r1");
      ]
  in
  Alcotest.(check (list string)) "registers collected" [ "r1"; "r2"; "r3" ]
    (Ast.thread_regs th)

let test_pretty () =
  let p =
    Ast.(
      program ~name:"demo" ~locs:[ "x" ]
        [ [ atomic [ load "r" (loc "x"); when_ (reg "r") [ store (loc "x") (int 2) ] ] ] ])
  in
  let s = Fmt.str "%a" Ast.pp_program p in
  Alcotest.(check bool) "mentions atomic" true (contains_sub s "atomic");
  Alcotest.(check bool) "mentions the guard" true (contains_sub s "if")

let test_cell_pretty () =
  let s = Fmt.str "%a" Ast.pp_lval (Ast.cell "z" (Ast.reg "r")) in
  Alcotest.(check string) "array cell" "z[r]" s

let suite =
  [
    Alcotest.test_case "validate ok" `Quick test_validate_ok;
    Alcotest.test_case "reject nested atomic" `Quick test_validate_nested;
    Alcotest.test_case "reject stray abort" `Quick test_validate_abort_outside;
    Alcotest.test_case "reject fence in atomic" `Quick test_validate_fence_inside;
    Alcotest.test_case "reject nested in branches" `Quick test_validate_in_branches;
    Alcotest.test_case "reject undeclared store" `Quick
      test_validate_undeclared_store;
    Alcotest.test_case "reject undeclared load" `Quick
      test_validate_undeclared_load;
    Alcotest.test_case "array cells validate" `Quick test_validate_cells;
    Alcotest.test_case "reject undeclared fence" `Quick
      test_validate_undeclared_fence;
    Alcotest.test_case "register collection" `Quick test_thread_regs;
    Alcotest.test_case "pretty printing" `Quick test_pretty;
    Alcotest.test_case "cell printing" `Quick test_cell_pretty;
  ]
