(* Deterministic load generation against a running tmx serve.

   The whole query stream is a pure function of (seed, request index):
   request i draws its target (Zipf-skewed over a pool of catalog
   programs plus fuzzer-generated ones) and verb from a private PRNG
   seeded with (seed, i).  Concurrency only decides *which* indices a
   worker sends, never what any index contains, so the same seed replays
   the same stream at any concurrency — and sequentially, which is what
   the byte-identity oracle does: replay indices 0..n-1 against two
   fresh servers (e.g. --shards 1 vs --shards 4) and compare the raw
   response lines verbatim.

   The oracle needs two more things to hold, both arranged here: the
   per-request "id" echoes the index (so a mismatch names the request),
   and the verb set excludes stats/ping/shutdown (whose answers depend
   on server state, not the query).  Fresh servers see the identical
   sequential stream, so their hit/miss ("cached") evolution is
   identical too — provided the pool fits the per-shard LRU, which the
   defaults respect.

   All timing is monotonic (Tmx_runtime.Clock): latencies and the
   duration cutoff must not stretch under an NTP step. *)

open Tmx_litmus

type config = {
  concurrency : int;
  duration_s : float;
  requests : int;  (* > 0: fixed count, overrides duration *)
  skew : float;
  seed : int;
  generated : int;  (* fuzzer-generated programs in the pool *)
  use_catalog : bool;
  rate : float;  (* > 0: open-loop arrivals/s across all workers *)
}

let default_config =
  {
    concurrency = 2;
    duration_s = 5.0;
    requests = 0;
    skew = 1.0;
    seed = 42;
    generated = 16;
    use_catalog = true;
    rate = 0.0;
  }

(* -- the deterministic stream ----------------------------------------------- *)

(* the same 48-bit LCG as Tmx_runtime.Contention's jitter, seeded per
   (seed, index) so requests are independent of each other *)
let mask48 = 0xFFFF_FFFF_FFFF

let rng_of ~seed ~index =
  let st =
    ref ((((seed + 1) * 0x9E3779B9) lxor ((index + 1) * 0x61C88647)) land mask48)
  in
  (* warm up: the first raw step of a correlated seed is correlated *)
  let step () =
    st := ((!st * 0x5DEECE66D) + 0xB) land mask48;
    !st lsr 17
  in
  ignore (step ());
  step

(* Open-loop arrivals: request [i] is due at the prefix sum of
   exponential inter-arrival gaps with mean [1/rate], gap [j] drawn
   from its own (seed, index) PRNG on a stream disjoint from the
   request-content stream — the schedule never perturbs what any index
   contains, so the determinism oracle is untouched.  Every worker
   folds the same global prefix sum, so the schedule is identical at
   any concurrency. *)
let gap_of cfg ~index =
  let rng = rng_of ~seed:(cfg.seed lxor 0x2E8B57) ~index in
  (* u in (0, 1]: never log 0 *)
  let u = (float_of_int (rng ()) +. 1.0) /. 2147483649.0 in
  -.Float.log u /. cfg.rate

let arrivals cfg ~n =
  let a = Array.make (max n 0) 0.0 in
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    acc := !acc +. gap_of cfg ~index:i;
    a.(i) <- !acc
  done;
  a

type target = By_name of string | By_source of string

let pool cfg =
  let catalog =
    if cfg.use_catalog then
      List.map (fun (l : Litmus.t) -> By_name l.name) Catalog.all
    else []
  in
  let generated =
    List.init (max 0 cfg.generated) (fun j ->
        let st = Tmx_fuzz.Gen.state_of_seed ~seed:cfg.seed ~index:j in
        let p =
          Tmx_fuzz.Gen.program ~name:(Printf.sprintf "lg%04d" j)
            Tmx_fuzz.Gen.mixed st
        in
        By_source (Export.program_to_string p))
  in
  match Array.of_list (catalog @ generated) with
  | [||] -> invalid_arg "Loadgen: empty target pool"
  | a -> a

(* Zipf over ranks: weight 1/(r+1)^skew; skew 0 = uniform.  Cumulative
   weights once, linear scan per draw (pools are tens of entries). *)
let zipf_cumulative ~skew n =
  let cum = Array.make n 0.0 in
  let total = ref 0.0 in
  for r = 0 to n - 1 do
    total := !total +. (1.0 /. Float.pow (float_of_int (r + 1)) skew);
    cum.(r) <- !total
  done;
  cum

let draw_rank cum u =
  let total = cum.(Array.length cum - 1) in
  let x = u *. total in
  let rec go r = if r >= Array.length cum - 1 || x < cum.(r) then r else go (r + 1) in
  go 0

(* expensive verbs only: the stream exists to exercise the verdict
   cache, and the oracle needs state-independent answers *)
let verb_of_draw d =
  let d = d mod 100 in
  if d < 40 then "races"
  else if d < 65 then "outcomes"
  else if d < 85 then "check"
  else "lint"

let request cfg ~cum ~targets i =
  let rng = rng_of ~seed:cfg.seed ~index:i in
  let u = float_of_int (rng ()) /. 2147483648.0 in
  let rank = draw_rank cum u in
  let verb = verb_of_draw (rng ()) in
  let name, program =
    match targets.(rank) with
    | By_name n -> (Some n, None)
    | By_source s -> (None, Some s)
  in
  {
    Protocol.id = Some (Json.int i);
    verb;
    name;
    program;
    model = "pm";
    deadline_ms = None;
    subrequests = [];
  }

(* -- the measured run ------------------------------------------------------- *)

type report = {
  requests_sent : int;
  ok : int;
  errors : int;
  sheds : int;
  hits : int;
  duration_s : float;
  throughput_rps : float;
  p50_ms : float;
  p95_ms : float;
  p99_ms : float;
  hit_rate : float;
  shed_rate : float;
}

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else sorted.(min (n - 1) (int_of_float (Float.of_int n *. p)))

type sample = { latency_ns : int; s_ok : bool; s_shed : bool; s_hit : bool }

let now_s = Tmx_runtime.Clock.now_s
let now_ns = Tmx_runtime.Clock.now_ns

let worker cfg ~addr ~cum ~targets ~t_start ~t_end d =
  let samples = ref [] in
  let errors = ref 0 in
  let conn = ref None in
  let get_conn () =
    match !conn with
    | Some c -> Some c
    | None -> (
        match Client.connect ~wait_s:5.0 addr with
        | Ok c ->
            conn := Some c;
            Some c
        | Error _ -> None)
  in
  let stop_at_index =
    if cfg.requests > 0 then cfg.requests else max_int
  in
  let i = ref d in
  (* open loop: [due] is the global arrival offset of index [!i];
     every worker folds the same gap stream, skipping no index *)
  let due = ref 0.0 in
  let advance_due ~from_excl ~to_incl =
    if cfg.rate > 0.0 then
      for j = from_excl + 1 to to_incl do
        due := !due +. gap_of cfg ~index:j
      done
  in
  advance_due ~from_excl:(-1) ~to_incl:d;
  let continue () =
    !i < stop_at_index
    && (cfg.requests > 0
       || (now_s () < t_end
          && (cfg.rate <= 0.0 || t_start +. !due < t_end)))
  in
  let rec wait_until t =
    let dt = t -. now_s () in
    if dt > 0.0 then begin
      Unix.sleepf dt;
      wait_until t
    end
  in
  while continue () do
    let req = Protocol.to_json (request cfg ~cum ~targets !i) in
    let sched = t_start +. !due in
    if cfg.rate > 0.0 then wait_until sched;
    (match get_conn () with
    | None -> incr errors
    | Some c -> (
        (* open loop: latency counts from the scheduled arrival, so a
           backed-up worker charges its queueing delay to the requests
           it delays instead of silently not sending them (the
           coordinated-omission artifact closed loops suffer) *)
        let t0 =
          if cfg.rate > 0.0 then int_of_float (sched *. 1e9) else now_ns ()
        in
        match Client.roundtrip c req with
        | Error _ ->
            (* server gone or worker died mid-request: drop the
               connection and let the next request redial *)
            Client.close c;
            conn := None;
            incr errors
        | Ok resp ->
            let lat = now_ns () - t0 in
            let shed = Protocol.response_overloaded resp in
            let hit =
              match Option.bind (Json.mem "cached" resp) Json.to_bool with
              | Some true -> true
              | _ -> false
            in
            samples :=
              {
                latency_ns = lat;
                s_ok = Protocol.response_ok resp;
                s_shed = shed;
                s_hit = hit;
              }
              :: !samples));
    advance_due ~from_excl:!i ~to_incl:(!i + cfg.concurrency);
    i := !i + cfg.concurrency
  done;
  Option.iter Client.close !conn;
  (!samples, !errors)

let run ?(config = default_config) addr =
  let cfg = { config with concurrency = max 1 config.concurrency } in
  let targets = pool cfg in
  let cum = zipf_cumulative ~skew:cfg.skew (Array.length targets) in
  let t_start = now_s () in
  let t_end = t_start +. cfg.duration_s in
  let results =
    List.init cfg.concurrency (fun d ->
        Domain.spawn (fun () ->
            worker cfg ~addr ~cum ~targets ~t_start ~t_end d))
    |> List.map Domain.join
  in
  let duration = Float.max 1e-9 (now_s () -. t_start) in
  let samples = List.concat_map fst results in
  let errors = List.fold_left (fun n (_, e) -> n + e) 0 results in
  let total = List.length samples + errors in
  let sheds = List.length (List.filter (fun s -> s.s_shed) samples) in
  let ok = List.length (List.filter (fun s -> s.s_ok) samples) in
  let hits = List.length (List.filter (fun s -> s.s_hit) samples) in
  let latencies =
    List.filter_map
      (fun s ->
        if s.s_shed then None
        else Some (float_of_int s.latency_ns /. 1e6))
      samples
    |> Array.of_list
  in
  Array.sort compare latencies;
  let answered = max 1 (List.length samples - sheds) in
  {
    requests_sent = total;
    ok;
    errors;
    sheds;
    hits;
    duration_s = duration;
    throughput_rps = float_of_int total /. duration;
    p50_ms = percentile latencies 0.50;
    p95_ms = percentile latencies 0.95;
    p99_ms = percentile latencies 0.99;
    hit_rate = float_of_int hits /. float_of_int answered;
    shed_rate = float_of_int sheds /. float_of_int (max 1 total);
  }

let report_to_json r =
  Json.Obj
    [
      ("requests", Json.int r.requests_sent);
      ("ok", Json.int r.ok);
      ("errors", Json.int r.errors);
      ("sheds", Json.int r.sheds);
      ("hits", Json.int r.hits);
      ("duration_s", Json.Num r.duration_s);
      ("throughput_rps", Json.Num r.throughput_rps);
      ("p50_ms", Json.Num r.p50_ms);
      ("p95_ms", Json.Num r.p95_ms);
      ("p99_ms", Json.Num r.p99_ms);
      ("hit_rate", Json.Num r.hit_rate);
      ("shed_rate", Json.Num r.shed_rate);
    ]

(* -- the byte-identity oracle ----------------------------------------------- *)

type mismatch = { index : int; line_a : string; line_b : string }

let oracle ?(config = default_config) ~requests addr_a addr_b =
  let cfg = config in
  let targets = pool cfg in
  let cum = zipf_cumulative ~skew:cfg.skew (Array.length targets) in
  match
    (Client.connect ~wait_s:5.0 addr_a, Client.connect ~wait_s:5.0 addr_b)
  with
  | Error e, _ | _, Error e -> Error e
  | Ok ca, Ok cb ->
      Fun.protect
        ~finally:(fun () ->
          Client.close ca;
          Client.close cb)
        (fun () ->
          let rec go i =
            if i >= requests then Ok None
            else
              let req = Protocol.to_json (request cfg ~cum ~targets i) in
              match
                (Client.roundtrip_raw ca req, Client.roundtrip_raw cb req)
              with
              | Error e, _ | _, Error e -> Error e
              | Ok la, Ok lb ->
                  if String.equal la lb then go (i + 1)
                  else Ok (Some { index = i; line_a = la; line_b = lb })
          in
          go 0)
