(* The sequential reference semantics: exhaustive interleaving with atomic
   blocks executed atomically, reads seeing the newest nonaborted write,
   and writes taking fresh maximal timestamps.

   Every execution this module produces is transactionally Loc-sequential
   in the sense of §4 (checked in the test suite), so its outcome set is
   what the paper calls "reasoning sequentially".  The SC-LTRF theorem
   says the full model adds no outcomes for programs whose sequential
   executions are race-free. *)

open Tmx_core
open Tmx_lang

type config = { fuel : int }

let default_config = { fuel = 6 }

type execution = { trace : Trace.t; outcome : Outcome.t }

type result = { executions : execution list; truncated : bool }

(* Persistent interpreter state, shared across DFS branches. *)
type cell = { value : int; ts : Rat.t }

type state = {
  mem : (string * cell) list; (* newest nonaborted write per location *)
  next : (string * int) list; (* timestamp counters *)
  events : Action.event list; (* reversed *)
}

let read_cell st x =
  Option.value (List.assoc_opt x st.mem) ~default:{ value = 0; ts = Rat.zero }

let alloc_ts st x =
  let k = Option.value (List.assoc_opt x st.next) ~default:0 in
  (Rat.of_int (k + 1), { st with next = (x, k + 1) :: List.remove_assoc x st.next })

let emit st thread act = { st with events = { Action.thread; act } :: st.events }

exception Out_of_fuel

(* Run an atomic block to completion: deterministic, buffered writes,
   reads see the buffer first.  Returns the state (with events emitted and
   memory updated only on commit) and the final environment. *)
let run_atomic ~fuel st thread env body =
  let buffer = ref [] in
  let st = ref (emit st thread Action.Begin) in
  let aborted = ref false in
  let read x =
    match List.assoc_opt x !buffer with
    | Some c -> c
    | None -> read_cell !st x
  in
  let rec go fuel env = function
    | [] -> env
    | s :: rest -> (
        match (s : Ast.stmt) with
        | Skip -> go fuel env rest
        | Assign (r, e) -> go fuel (Proto.env_set env r (Proto.eval env e)) rest
        | Load (r, lv) ->
            let x = Proto.resolve env lv in
            let c = read x in
            st := emit !st thread (Action.Read { loc = x; value = c.value; ts = c.ts });
            go fuel (Proto.env_set env r c.value) rest
        | Store (lv, e) ->
            let x = Proto.resolve env lv in
            let v = Proto.eval env e in
            let ts, st' = alloc_ts !st x in
            st := emit st' thread (Action.Write { loc = x; value = v; ts });
            buffer := (x, { value = v; ts }) :: List.remove_assoc x !buffer;
            go fuel env rest
        | If (c, t, e) -> go fuel env ((if Proto.eval env c <> 0 then t else e) @ rest)
        | While (c, b) ->
            if Proto.eval env c = 0 then go fuel env rest
            else if fuel <= 0 then raise Out_of_fuel
            else go (fuel - 1) env (b @ (Ast.While (c, b) :: rest))
        | Abort ->
            aborted := true;
            env
        | Atomic _ | Fence _ -> invalid_arg "Sc: nested atomic or fence in atomic")
  in
  let entry_env = env in
  let env = go fuel env body in
  (* an aborted block also rolls its register effects back *)
  if !aborted then (emit !st thread Action.Abort, entry_env, `Aborted)
  else begin
    (* publish the buffer *)
    let st' =
      {
        !st with
        mem =
          List.fold_left
            (fun mem (x, c) -> (x, c) :: List.remove_assoc x mem)
            !st.mem !buffer;
      }
    in
    (emit st' thread Action.Commit, env, `Committed)
  end

type tstate = { stmts : Ast.stmt list; env : Proto.env; fuel : int }

let run ?(config = default_config) (program : Ast.program) =
  (match Ast.validate program with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Sc.run: " ^ msg));
  let executions = ref [] in
  let truncated = ref false in
  let locs = ref program.locs in
  let note_loc x = if not (List.mem x !locs) then locs := !locs @ [ x ] in
  let rec explore st (threads : tstate list) =
    let runnable = List.exists (fun t -> t.stmts <> []) threads in
    if not runnable then begin
      let envs = List.map (fun t -> t.env) threads in
      executions := (st, envs) :: !executions
    end
    else
      List.iteri
        (fun i t ->
          match t.stmts with
          | [] -> ()
          | s :: rest -> (
              let continue st' t' =
                explore st'
                  (List.mapi (fun j u -> if j = i then t' else u) threads)
              in
              match (s : Ast.stmt) with
              | Skip -> continue st { t with stmts = rest }
              | Assign (r, e) ->
                  continue st
                    { t with stmts = rest; env = Proto.env_set t.env r (Proto.eval t.env e) }
              | Load (r, lv) ->
                  let x = Proto.resolve t.env lv in
                  note_loc x;
                  let c = read_cell st x in
                  let st = emit st i (Action.Read { loc = x; value = c.value; ts = c.ts }) in
                  continue st { t with stmts = rest; env = Proto.env_set t.env r c.value }
              | Store (lv, e) ->
                  let x = Proto.resolve t.env lv in
                  note_loc x;
                  let v = Proto.eval t.env e in
                  let ts, st = alloc_ts st x in
                  let st = emit st i (Action.Write { loc = x; value = v; ts }) in
                  let st = { st with mem = (x, { value = v; ts }) :: List.remove_assoc x st.mem } in
                  continue st { t with stmts = rest }
              | If (c, tb, eb) ->
                  continue st
                    { t with stmts = (if Proto.eval t.env c <> 0 then tb else eb) @ rest }
              | While (c, b) ->
                  if Proto.eval t.env c = 0 then continue st { t with stmts = rest }
                  else if t.fuel <= 0 then truncated := true
                  else
                    continue st
                      { t with stmts = b @ (Ast.While (c, b) :: rest); fuel = t.fuel - 1 }
              | Fence x ->
                  note_loc x;
                  let st = emit st i (Action.Qfence x) in
                  continue st { t with stmts = rest }
              | Abort -> invalid_arg "Sc: abort outside atomic"
              | Atomic body -> (
                  match run_atomic ~fuel:t.fuel st i t.env body with
                  | st, env, (`Committed | `Aborted) ->
                      continue st { t with stmts = rest; env }
                  | exception Out_of_fuel -> truncated := true)))
        threads
  in
  let initial =
    List.map (fun stmts -> { stmts; env = []; fuel = config.fuel }) program.threads
  in
  explore { mem = []; next = []; events = [] } initial;
  let executions =
    List.rev_map
      (fun ((st : state), envs) ->
        let trace = Trace.make ~locs:!locs (List.rev st.events) in
        let outcome =
          Outcome.make ~envs
            ~mem:
              (List.map
                 (fun x -> (x, Option.value (Trace.final_value trace x) ~default:0))
                 !locs)
        in
        { trace; outcome })
      !executions
  in
  { executions; truncated = !truncated }

let outcomes result = Outcome.dedup (List.map (fun e -> e.outcome) result.executions)
