(* Multi-domain quiescence stress: the privatization and per-location
   fence idioms from the paper, run under sustained transactional load
   across domains and both STM modes.  These suites take seconds, so
   they sit on the TMX_QUICK (exhaustive) switch like the enumeration
   suites — `dune build @quick` skips them.

   The invariant in every test is the mixed-race bound the fence is
   supposed to provide: once the privatizing transaction has committed
   and [Stm.quiesce] has returned, plain (non-transactional) reads and
   writes of the privatized region must not race with any transactional
   access — concretely, a plain write can never be clobbered by a
   leftover transactional write-back or an eager rollback. *)

open Tmx_runtime

(* Privatization of a whole region under load: three workers (one eager,
   two lazy) hammer a region behind a flag; the main domain repeatedly
   flips the flag, fences — alternating the global fence with a sweep of
   per-location fences — and then mutates the region with plain writes
   that must survive. *)
let test_privatization_under_load () =
  let n = 4 in
  let region = Array.init n (fun _ -> Tvar.make 0) in
  let flag = Tvar.make 0 in
  let footprint = flag :: Array.to_list region in
  let stop = Atomic.make false in
  let workers =
    List.init 3 (fun w ->
        let mode = if w = 0 then Stm.Eager else Stm.Lazy in
        Domain.spawn (fun () ->
            let i = ref w in
            while not (Atomic.get stop) do
              incr i;
              ignore
                (Stm.atomically ~mode ~footprint (fun tx ->
                     if Stm.read tx flag = 0 then begin
                       let k = !i mod n in
                       Stm.write tx region.(k) (Stm.read tx region.(k) + 1)
                     end))
            done))
  in
  let failures = ref 0 in
  let rounds = 80 in
  for r = 1 to rounds do
    ignore (Stm.atomically ~footprint:[ flag ] (fun tx -> Stm.write tx flag 1));
    if r land 1 = 0 then Stm.quiesce ()
    else Array.iter (fun v -> Stm.quiesce ~var:v ()) region;
    (* the region is private now: plain writes must stick *)
    Array.iter (fun v -> Tvar.unsafe_write v 1_000_000) region;
    for _ = 1 to 200 do
      Domain.cpu_relax ()
    done;
    Array.iter
      (fun v -> if Tvar.unsafe_read v <> 1_000_000 then incr failures)
      region;
    (* republish *)
    Array.iter (fun v -> Tvar.unsafe_write v 0) region;
    ignore (Stm.atomically ~footprint:[ flag ] (fun tx -> Stm.write tx flag 0))
  done;
  Atomic.set stop true;
  List.iter Domain.join workers;
  Alcotest.(check int) "privatized plain writes never clobbered" 0 !failures

(* Per-location fences under load: workers churn transactions over a
   *disjoint* variable with a declared footprint while the main domain
   runs a steady stream of fences on the target.  The fences must keep
   completing (they may not inherit the unrelated load), and a final
   overlapping fence must still provide the full privatization
   guarantee. *)
let test_selective_fence_under_load () =
  let x = Tvar.make 0 and busy = Tvar.make 0 in
  let stop = Atomic.make false in
  let workers =
    List.init 2 (fun w ->
        let mode = if w = 0 then Stm.Eager else Stm.Lazy in
        Domain.spawn (fun () ->
            while not (Atomic.get stop) do
              ignore
                (Stm.atomically ~mode ~footprint:[ busy ] (fun tx ->
                     Stm.write tx busy (Stm.read tx busy + 1)))
            done))
  in
  (* a fence on x only ever waits for x-transactions; 500 of them must
     clear in bounded time while the busy-var churn continues *)
  for _ = 1 to 500 do
    Stm.quiesce ~var:x ()
  done;
  Atomic.set stop true;
  List.iter Domain.join workers;
  Alcotest.(check bool) "fences completed under disjoint load" true
    (Tvar.unsafe_read busy > 0)

(* Privatization where the racing transaction declares its footprint and
   the privatizer fences only the locations it is about to touch —
   the paper's per-location Qx fence rather than the global fence. *)
let test_footprint_fence_privatization () =
  let x = Tvar.make 0 and flag = Tvar.make 0 in
  let failures = ref 0 in
  for _ = 1 to 120 do
    Tvar.unsafe_write x 0;
    ignore (Stm.atomically ~footprint:[ flag ] (fun tx -> Stm.write tx flag 0));
    let d =
      Domain.spawn (fun () ->
          ignore
            (Stm.atomically ~footprint:[ flag; x ] (fun tx ->
                 if Stm.read tx flag = 0 then Stm.write tx x 1)))
    in
    ignore (Stm.atomically ~footprint:[ flag ] (fun tx -> Stm.write tx flag 1));
    Stm.quiesce ~var:x ();
    Tvar.unsafe_write x 2;
    Domain.join d;
    if Tvar.unsafe_read x <> 2 then incr failures
  done;
  Alcotest.(check int) "per-location fence privatizes" 0 !failures

(* Concurrent fences: two domains quiesce while two more transact; the
   registry must neither deadlock nor corrupt the counter. *)
let test_concurrent_fences () =
  let v = Tvar.make 0 in
  let iters = 200 in
  let txer () =
    for _ = 1 to iters do
      ignore (Stm.atomically (fun tx -> Stm.write tx v (Stm.read tx v + 1)))
    done
  in
  let fencer () =
    for i = 1 to 50 do
      if i land 1 = 0 then Stm.quiesce () else Stm.quiesce ~var:v ()
    done
  in
  let ds =
    [
      Domain.spawn txer;
      Domain.spawn txer;
      Domain.spawn fencer;
      Domain.spawn fencer;
    ]
  in
  List.iter Domain.join ds;
  Alcotest.(check int) "counter intact across concurrent fences"
    (2 * iters) (Tvar.unsafe_read v)

let suite =
  [
    Alcotest.test_case "privatization under load" `Slow
      test_privatization_under_load;
    Alcotest.test_case "selective fence under disjoint load" `Slow
      test_selective_fence_under_load;
    Alcotest.test_case "footprint fence privatization" `Slow
      test_footprint_fence_privatization;
    Alcotest.test_case "concurrent fences" `Slow test_concurrent_fences;
  ]
