lib/machine/machine.mli: Tmx_exec Tmx_lang
