(* L-races (§4).

   Two actions are in L-conflict if they access the same x ∈ L, at least
   one is plain, at least one is a write, and neither is aborted.
   (b, c) is an L-race if they are in L-conflict, b index c, and not
   b hb c. *)

let in_set l x = match l with None -> true | Some locs -> List.mem x locs

let l_conflict ?l t b c =
  match (Trace.act t b, Trace.act t c) with
  | ( (Action.Write { loc = x; _ } | Action.Read { loc = x; _ }),
      (Action.Write { loc = y; _ } | Action.Read { loc = y; _ }) )
    when String.equal x y && in_set l x ->
      (Trace.is_plain t b || Trace.is_plain t c)
      && (Action.is_write (Trace.act t b) || Action.is_write (Trace.act t c))
      && Trace.is_nonaborted t b
      && Trace.is_nonaborted t c
  | _ -> false

let races ?l t hb =
  let n = Trace.length t in
  let acc = ref [] in
  for b = 0 to n - 1 do
    for c = b + 1 to n - 1 do
      if l_conflict ?l t b c && not (Rel.mem hb b c) then
        acc := (b, c) :: !acc
    done
  done;
  List.rev !acc

let has_race ?l t hb = races ?l t hb <> []

(* §5: a mixed race is an L-race between a transactional write and a
   plain write, for some L. *)
let mixed_races t hb =
  List.filter
    (fun (b, c) ->
      Action.is_write (Trace.act t b)
      && Action.is_write (Trace.act t c)
      && Trace.is_transactional t b <> Trace.is_transactional t c)
    (races t hb)

let has_mixed_race t hb = mixed_races t hb <> []

let races_of_model model t =
  let ctx = Lift.make t in
  let hb = Hb.compute model ctx in
  races t hb
