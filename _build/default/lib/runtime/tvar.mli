(** Transactional variables: integer cells guarded by a versioned lock
    word (even = commit version, odd = locked).

    Values are integers, matching the paper's model; build aggregates
    from arrays of TVars ({!Tarray}, {!Tqueue}, {!Tmap}). *)

type t

val make : int -> t
val id : t -> int

val unsafe_read : t -> int
(** Plain, non-transactional access — deliberately unsynchronized with
    the STM.  This is the mixed-mode access the paper is about: safe only
    under the publication/privatization idioms (with {!Stm.quiesce} where
    privatization requires a fence). *)

val unsafe_write : t -> int -> unit

(**/**)

(* Internal: used by the STM implementation. *)
val locked : int -> bool
val try_lock : t -> int option
val unlock : t -> version:int -> unit
val version_word : t -> int

(**/**)

val pp : t Fmt.t
