(** Differential validation of the LTRF variants against the
    architecture backends — the machine-checked form of the paper's §6
    claims.

    "Architecture [a] validates variant [v] on program [p]" means every
    outcome [a] admits is admitted by [v]: a programmer reasoning with
    [v]'s rules is sound on [a] for [p].  Because a stronger variant
    admits fewer outcomes, the validated set is downward closed along
    {!Tmx_core.Model.stronger_eq}; the informative summary is its set of
    maximal elements ([strongest]).

    When an architecture escapes a variant (ARMv8 load buffering vs the
    strongest variant), {!check} searches for a minimal set of
    anti-load-buffering fences ({!Aexec.fence_site}) closing the gap and
    re-verifies the fenced program against the variant — the §6 repair
    story, counterexample-checked. *)

open Tmx_core
open Tmx_exec

type verdict = {
  arch : Arch.t;
  variant : Model.t;
  validated : bool;  (** zero-fence outcomes(arch) ⊆ outcomes(variant) *)
  witnesses : Outcome.t list;
      (** architecture outcomes the variant forbids (empty iff validated) *)
  fences : Aexec.fence_site list option;
      (** [Some []] when validated as-is; [Some s] when the gap closes
          under fence set [s] (re-verified); [None] when no fence set
          closes it (or the architecture has no anti-LB fence) *)
  imprecise : bool;  (** truncation or graph cap on either side *)
}

val check :
  ?config:Enumerate.config ->
  ?search_fences:bool ->
  Arch.t ->
  Model.t ->
  Tmx_lang.Ast.program ->
  verdict
(** Does [arch] validate [variant] on the program?  With
    [~search_fences:true] (default) and a non-validating ARMv8, searches
    for a minimal closing fence set: exhaustive cardinality-ordered
    search when few candidate sites exist, a 1-minimal greedy prune of
    the full site set otherwise — either way the returned set is
    re-verified by re-running the backend on the fenced program. *)

type row = {
  arch : Arch.t;
  validated : Model.t list;  (** variants validated with zero fences *)
  strongest : Model.t list;
      (** maximal validated variants under {!Model.stronger_eq} *)
  gap_fences : Aexec.fence_site list option option;
      (** vs {!Model.strongest}: [None] = validated as-is; [Some (Some
          s)] = gap closed by [s]; [Some None] = no closing set *)
  imprecise : bool;
}

val rows : ?config:Enumerate.config -> Tmx_lang.Ast.program -> row list
(** One row per architecture ({!Arch.all} order), each variant of
    {!Model.all} checked, plus the fence search against
    {!Model.strongest}. *)

type containment = {
  sub : Arch.t;
  sup : Arch.t;
  ok : bool;
  witnesses : Outcome.t list;
}

val containments : ?config:Enumerate.config -> Tmx_lang.Ast.program -> containment list
(** The structural lattice facts — outcomes(x86tso) ⊆ outcomes(armv8)
    and outcomes(rc11) ⊆ outcomes(armv8) — checked empirically on the
    program.  A violation is an axiom bug, never expected. *)

val pp_verdict : verdict Fmt.t
val pp_row : row Fmt.t
