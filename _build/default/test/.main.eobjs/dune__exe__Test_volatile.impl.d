test/test_volatile.ml: Alcotest Ast Fmt List Outcome QCheck QCheck_alcotest Tmx_exec Tmx_lang Tmx_machine
