(* The conservative static happens-before abstraction.

   A pair of static accesses is declared [Ordered] only when EVERY pair
   of their dynamic instances is happens-before-ordered (or excluded
   from racing outright) in every well-formed trace, under every model:

   - [Same_thread]: program order is in the happens-before base (HBdef),
     and a trace linearizes program order, so same-thread instances can
     never race.  Transaction boundaries need no separate case: Begin
     and Commit are po-ordered with their transaction's accesses.
   - [Both_transactional]: an L-race requires at least one plain access,
     so two transactional accesses never race by definition.
   - [Both_reads]: an L-conflict requires at least one write.
   - [Must_abort]: every instance of the access is in an aborted
     transaction, and aborted actions never conflict.

   Nothing else is sound.  In particular the quiescence-fence rules
   WF12/HBCQ/HBQB order a fence against transactions on ONE side of it
   in the trace — a transaction that begins after the fence (HBQB) is
   unordered with plain accesses that follow the fence, and one that
   commits before it (HBCQ) is unordered with plain accesses that
   precede it — and which side a transaction lands on is resolved only
   dynamically.  Likewise HBww-style privatization ordering depends on
   the guard's reads-from choice.  These one-sided facts are reported as
   [protection]s: they downgrade a finding's severity and shape its fix
   suggestion, but never suppress it, preserving soundness. *)

type reason =
  | Same_thread
  | Both_transactional
  | Both_reads
  | Must_abort
  | Guard_dominated of string

let pp_reason ppf = function
  | Same_thread -> Fmt.string ppf "same thread (program order)"
  | Both_transactional -> Fmt.string ppf "both transactional"
  | Both_reads -> Fmt.string ppf "both reads"
  | Must_abort -> Fmt.string ppf "always-aborted transaction"
  | Guard_dominated f ->
      Fmt.pf ppf "guard-dominated via flag %s (cwr + po in the HB base)" f

type protection =
  | Fence_commit_side of string
      (* the plain access is dominated by fence(x): transactions on x
         that commit before the fence are ordered before it (HBCQ) *)
  | Fence_begin_side of string
      (* the plain access is postdominated by fence(x): transactions on
         x that begin after the fence are ordered after it (HBQB) *)
  | Guarded_publication of string
      (* the transactional side reads flag x, and the plain side's
         thread writes x in an atomic block before the plain access —
         the privatization idiom that HBww orders when the guard reads
         the pre-publication value *)
  | Published_flag of string
      (* the plain access precedes an atomic block that writes flag x,
         which the transactional side reads — the publication idiom:
         cwr serializes the publishing transaction before the reading
         one whenever the guard value is observed *)
  | Consumed_flag of string
      (* the transactional side writes flag x, which the plain side's
         thread read in an atomic block before the plain access — the
         dual handoff: cwr serializes the writing transaction before
         the reader's atomic whenever its value is observed *)

let pp_protection ppf = function
  | Fence_commit_side x -> Fmt.pf ppf "fence(%s) before the plain access (HBCQ)" x
  | Fence_begin_side x -> Fmt.pf ppf "fence(%s) after the plain access (HBQB)" x
  | Guarded_publication x -> Fmt.pf ppf "guarded publication via %s (HBww)" x
  | Published_flag x -> Fmt.pf ppf "flag %s published after the plain access (cwr)" x
  | Consumed_flag x -> Fmt.pf ppf "flag %s consumed before the plain access (cwr)" x

type verdict = Ordered of reason | Unordered of protection list

(* Protections for an (access, access) pair known to clash on a
   location.  Only tx-vs-plain pairs have any. *)
let protections (a : Access.t) (b : Access.t) =
  match (a.mode, b.mode) with
  | Access.Plain, Access.Plain | Access.Transactional, Access.Transactional -> []
  | _ ->
      let tx, plain =
        if a.mode = Access.Transactional then (a, b) else (b, a)
      in
      let fence_hits fences =
        List.filter
          (fun x ->
            Tmx_opt.Footprint.name_clash x tx.loc
            || Tmx_opt.Footprint.name_clash x plain.loc)
          fences
      in
      let flag_of ok mk flag =
        if ok flag && not (Tmx_opt.Footprint.name_clash flag tx.loc) then
          Some (mk flag)
        else None
      in
      List.map (fun x -> Fence_commit_side x) (fence_hits plain.fences_before)
      @ List.map (fun x -> Fence_begin_side x) (fence_hits plain.fences_after)
      @ List.filter_map
          (flag_of
             (fun f -> List.mem f plain.prior_atomic_writes)
             (fun f -> Guarded_publication f))
          tx.txn_reads
      @ List.filter_map
          (flag_of
             (fun f -> List.mem f plain.later_atomic_writes)
             (fun f -> Published_flag f))
          tx.txn_reads
      @ List.filter_map
          (flag_of
             (fun f -> List.mem f plain.prior_atomic_reads)
             (fun f -> Consumed_flag f))
          tx.txn_writes

(* -- guard dominance ---------------------------------------------------------

   The one sound exclusion beyond the four structural ones.  Unlike the
   [protection]s above, which are one-sided, this rule's premises force
   EVERY dynamic race instance to be hb-ordered through relations in the
   happens-before BASE of every model (init ∪ po ∪ cwr ∪ cww), so the
   pair can be declared [Ordered] without losing soundness.

   Two dual shapes, both hinging on a flag F distinct from the raced
   location whose every static write is transactional, and on branch
   conditions that pin a register nonzero (initial register values and
   the initializing writes are 0, and aborted transactions roll
   registers back — so a nonzero guard proves the register's unique
   defining load observed a COMMITTED transactional write of F):

   - publication (GD-pub): the transactional access runs only under a
     guard r ≠ 0 whose unique definition loads F earlier in the same
     atomic block, and every static write of F is transactional, in the
     plain side's thread, walk-after the plain access.  Then in any
     trace where both race candidates execute:
       plain ─po→ F-write ─po→ its commit ─cwr→ guard load ─po→ tx access
   - consumption (GD-con, D.4's shape): the plain access runs only
     under a guard r ≠ 0 whose unique definition loads F inside an
     earlier atomic block of its own thread, and every static write of
     F is transactional, in the tx side's thread, in the same atomic
     block as the tx access (or walk-after it).  Then:
       tx access ─po→ F-write's commit ─cwr→ guard load ─po→ plain

   Both directions need walk order to coincide with per-trace program
   order, which holds exactly when the thread is loop-free — so the
   rule refuses when either thread contains a while.  The "unique
   definition" premise avoids register-freshness tracking: if the guard
   register has exactly one static def in its thread, a nonzero value
   can only have come from that load. *)

let guard_dominated (ctx : Access.context) (a : Access.t) (b : Access.t) =
  match (a.mode, b.mode) with
  | Access.Plain, Access.Plain | Access.Transactional, Access.Transactional ->
      None
  | _ ->
      let tx, plain =
        if a.mode = Access.Transactional then (a, b) else (b, a)
      in
      let loop_free t = not ctx.Access.ctx_loops.(t) in
      if not (loop_free tx.thread && loop_free plain.thread) then None
      else
        let unique_load thread r =
          match
            List.filter
              (fun (d : Access.def) -> d.def_thread = thread && d.reg = r)
              ctx.ctx_defs
          with
          | [ ({ from_load = Some f; _ } as d) ] -> Some (d, f)
          | _ -> None
        in
        let writes_to f =
          List.filter
            (fun (w : Access.t) ->
              w.kind = Access.Write && Tmx_opt.Footprint.name_clash w.loc f)
            ctx.ctx_accesses
        in
        let distinct_flag f =
          (not (Tmx_opt.Footprint.name_clash f tx.loc))
          && not (Tmx_opt.Footprint.name_clash f plain.loc)
        in
        let all_writes_ok f pred =
          match writes_to f with [] -> false | ws -> List.for_all pred ws
        in
        let pub =
          List.find_map
            (fun r ->
              match unique_load tx.thread r with
              | Some (d, f)
                when d.def_txn <> None
                     && d.def_txn = Access.txn_prefix tx.path
                     && d.def_walk < tx.walk && distinct_flag f
                     && all_writes_ok f (fun w ->
                            w.mode = Access.Transactional
                            && w.thread = plain.thread
                            && plain.walk < w.walk) ->
                  Some f
              | _ -> None)
            tx.nonzero_guards
        in
        let con () =
          List.find_map
            (fun r ->
              match unique_load plain.thread r with
              | Some (d, f)
                when d.def_txn <> None && d.def_walk < plain.walk
                     && distinct_flag f
                     && all_writes_ok f (fun w ->
                            w.mode = Access.Transactional
                            && w.thread = tx.thread
                            && (Access.txn_prefix w.path
                                = Access.txn_prefix tx.path
                               || tx.walk <= w.walk)) ->
                  Some f
              | _ -> None)
            plain.nonzero_guards
        in
        (match pub with Some f -> Some f | None -> con ())

let pair ?ctx (a : Access.t) (b : Access.t) =
  if a.thread = b.thread then Ordered Same_thread
  else if a.mode = Access.Transactional && b.mode = Access.Transactional then
    Ordered Both_transactional
  else if a.kind = Access.Read && b.kind = Access.Read then Ordered Both_reads
  else if a.must_abort || b.must_abort then Ordered Must_abort
  else
    match Option.bind ctx (fun c -> guard_dominated c a b) with
    | Some f -> Ordered (Guard_dominated f)
    | None -> Unordered (protections a b)
