(* Realizing the programmer model on an implementation-model STM (§6).

   STMs implement the model of §5; privatizing idioms then need
   quiescence fences.  The paper: "it will be necessary for either the
   programmer or compiler to insert quiescent fences in order to realize
   our programmer model.  Our results provide a correctness criterion" —
   namely Lemma 5.1: if the fenced program has no mixed races in the
   implementation model, its behaviours are programmer-model behaviours.

   This pass inserts a fence before plain accesses to mixed-mode
   locations.  Policies:
   - [`Every_mixed_access]: before every plain access to a location that
     is also accessed transactionally (maximally conservative);
   - [`After_transactions]: only where the access follows an atomic
     block in its thread — publication-shaped prefixes need no fence
     (the transactional machinery orders direct dependencies), only
     privatization-shaped suffixes do.

   [realizes] checks the criterion end-to-end: the fenced program is
   mixed-race free in the implementation model and its outcomes are
   contained in the original program's programmer-model outcomes. *)

open Tmx_lang

type policy = [ `Every_mixed_access | `After_transactions ]

(* locations accessed both transactionally and plainly, statically *)
let mixed_locations (p : Ast.program) =
  let txn = Hashtbl.create 8 and plain = Hashtbl.create 8 in
  let note ~in_txn lv =
    let name = Footprint.lval_name lv in
    Hashtbl.replace (if in_txn then txn else plain) name ()
  in
  let rec scan ~in_txn (s : Ast.stmt) =
    match s with
    | Load (_, lv) | Store (lv, _) -> note ~in_txn lv
    | Atomic body -> List.iter (scan ~in_txn:true) body
    | If (_, a, b) ->
        List.iter (scan ~in_txn) a;
        List.iter (scan ~in_txn) b
    | While (_, b) -> List.iter (scan ~in_txn) b
    | Assign _ | Abort | Fence _ | Skip -> ()
  in
  List.iter (List.iter (scan ~in_txn:false)) p.threads;
  Hashtbl.fold
    (fun x () acc -> if Hashtbl.mem plain x then x :: acc else acc)
    txn []

let expand_name locs name = Footprint.expand_name ~locs name

let insert ?(policy = `After_transactions) (p : Ast.program) =
  let mixed = List.concat_map (expand_name p.locs) (mixed_locations p) in
  let fences_for lv =
    List.filter (fun x -> List.mem x mixed) (expand_name p.locs (Footprint.lval_name lv))
  in
  let transform thread =
    let saw_txn = ref false in
    let rec go (s : Ast.stmt) =
      match s with
      | Atomic _ ->
          saw_txn := true;
          [ s ]
      | Load (_, lv) | Store (lv, _) ->
          let need =
            match policy with
            | `Every_mixed_access -> true
            | `After_transactions -> !saw_txn
          in
          if need then List.map (fun x -> Ast.fence x) (fences_for lv) @ [ s ]
          else [ s ]
      | If (c, a, b) ->
          (* conservative: branches are transformed with the current
             prefix state; a transaction inside a branch counts *)
          let a' = List.concat_map go a in
          let b' = List.concat_map go b in
          [ Ast.If (c, a', b') ]
      | While (c, b) ->
          saw_txn := true;
          (* a loop body may run after itself; be conservative inside *)
          [ Ast.While (c, List.concat_map go b) ]
      | s -> [ s ]
    in
    List.concat_map go thread
  in
  { p with Ast.name = p.name ^ "+fences"; threads = List.map transform p.threads }

type report = {
  fences : int;
  mixed_race_free : bool; (* the Lemma 5.1 precondition *)
  outcomes_contained : bool; (* fenced im outcomes ⊆ original pm outcomes *)
  realizes : bool;
}

let count_fences (p : Ast.program) =
  let rec of_stmt acc (s : Ast.stmt) =
    match s with
    | Fence _ -> acc + 1
    | Atomic b | While (_, b) -> List.fold_left of_stmt acc b
    | If (_, a, b) -> List.fold_left of_stmt (List.fold_left of_stmt acc a) b
    | _ -> acc
  in
  List.fold_left (List.fold_left of_stmt) 0 p.threads

let realizes ?config ?policy (p : Ast.program) =
  let open Tmx_exec in
  let open Tmx_core in
  let fenced = insert ?policy p in
  let mixed_race_free = not (Verdict.mixed_racy ?config Model.implementation fenced) in
  let im = Enumerate.outcomes (Enumerate.run ?config Model.implementation fenced) in
  let pm = Enumerate.outcomes (Enumerate.run ?config Model.programmer p) in
  let outcomes_contained =
    List.for_all (fun o -> List.exists (Outcome.equal o) pm) im
  in
  {
    fences = count_fences fenced;
    mixed_race_free;
    outcomes_contained;
    realizes = mixed_race_free && outcomes_contained;
  }
