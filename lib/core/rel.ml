(* Binary relations over trace positions 0..n-1, as bitset rows.
   Litmus-scale traces have n < 64, so a row is usually one word, but the
   implementation is general. *)

type t = { n : int; words : int; rows : int array array }

let bits_per_word = Sys.int_size (* 63 on 64-bit *)

let create n =
  let words = (n + bits_per_word - 1) / bits_per_word in
  let words = max words 1 in
  { n; words; rows = Array.init n (fun _ -> Array.make words 0) }

let copy r = { r with rows = Array.map Array.copy r.rows }
let size r = r.n

let mem r i j =
  r.rows.(i).((j / bits_per_word)) land (1 lsl (j mod bits_per_word)) <> 0

let add r i j =
  let w = j / bits_per_word and b = j mod bits_per_word in
  r.rows.(i).(w) <- r.rows.(i).(w) lor (1 lsl b)

let of_pred n f =
  let r = create n in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if f i j then add r i j
    done
  done;
  r

let union a b =
  if a.n <> b.n then invalid_arg "Rel.union: size mismatch";
  let r = copy a in
  for i = 0 to a.n - 1 do
    for w = 0 to a.words - 1 do
      r.rows.(i).(w) <- r.rows.(i).(w) lor b.rows.(i).(w)
    done
  done;
  r

let union_many = function
  | [] -> invalid_arg "Rel.union_many: empty"
  | r :: rs -> List.fold_left union r rs

let union_into ~into b =
  let changed = ref false in
  for i = 0 to into.n - 1 do
    for w = 0 to into.words - 1 do
      let v = into.rows.(i).(w) lor b.rows.(i).(w) in
      if v <> into.rows.(i).(w) then begin
        into.rows.(i).(w) <- v;
        changed := true
      end
    done
  done;
  !changed

let equal a b =
  a.n = b.n
  && Array.for_all2 (fun ra rb -> Array.for_all2 Int.equal ra rb) a.rows b.rows

let is_empty r =
  Array.for_all (fun row -> Array.for_all (fun w -> w = 0) row) r.rows

let or_row dst src =
  let changed = ref false in
  Array.iteri
    (fun w v ->
      let v' = dst.(w) lor v in
      if v' <> dst.(w) then begin
        dst.(w) <- v';
        changed := true
      end)
    src;
  !changed

(* In-place reflexive-free transitive closure (Warshall with bitset rows). *)
let transitive_closure_in_place r =
  for k = 0 to r.n - 1 do
    for i = 0 to r.n - 1 do
      if mem r i k then ignore (or_row r.rows.(i) r.rows.(k))
    done
  done

(* Incremental closure maintenance.  [r] must already be transitively
   closed; adding u->v creates exactly the paths i ~> u -> v ~> j, so the
   rows of u and of everything reaching u gain v's row plus the bit for v
   itself.  v's own row is snapshotted first: if v reaches u the update
   makes the relation cyclic through v, and the snapshot keeps the loop
   from reading its own partial writes.  O(n·w) per new edge, against
   O(n²·w + n³/w) for a from-scratch Warshall. *)
let add_edge_closed r u v =
  if mem r u v then false
  else begin
    let row_v = Array.copy r.rows.(v) in
    let wv = v / bits_per_word and bv = v mod bits_per_word in
    row_v.(wv) <- row_v.(wv) lor (1 lsl bv);
    for i = 0 to r.n - 1 do
      if i = u || mem r i u then ignore (or_row r.rows.(i) row_v)
    done;
    true
  end

(* Union a delta into a closed relation, restoring closure edge by edge.
   Returns [true] if anything was added. *)
let union_into_closed ~into delta =
  if into.n <> delta.n then invalid_arg "Rel.union_into_closed: size mismatch";
  let changed = ref false in
  for i = 0 to delta.n - 1 do
    for w = 0 to delta.words - 1 do
      let fresh = delta.rows.(i).(w) land lnot into.rows.(i).(w) in
      if fresh <> 0 then
        for b = 0 to bits_per_word - 1 do
          if fresh land (1 lsl b) <> 0 then
            if add_edge_closed into i ((w * bits_per_word) + b) then
              changed := true
        done
    done
  done;
  !changed

let transitive_closure r =
  let c = copy r in
  transitive_closure_in_place c;
  c

let compose a b =
  if a.n <> b.n then invalid_arg "Rel.compose: size mismatch";
  let r = create a.n in
  for i = 0 to a.n - 1 do
    for j = 0 to a.n - 1 do
      if mem a i j then ignore (or_row r.rows.(i) b.rows.(j))
    done
  done;
  r

let compose3 a b c = compose (compose a b) c

let has_reflexive r =
  let rec go i = i < r.n && (mem r i i || go (i + 1)) in
  go 0

let irreflexive r = not (has_reflexive r)

let is_acyclic r =
  let c = transitive_closure r in
  irreflexive c

let iter r f =
  for i = 0 to r.n - 1 do
    for j = 0 to r.n - 1 do
      if mem r i j then f i j
    done
  done

let fold r f init =
  let acc = ref init in
  iter r (fun i j -> acc := f i j !acc);
  !acc

let to_list r = fold r (fun i j acc -> (i, j) :: acc) [] |> List.rev

let cardinal r = fold r (fun _ _ acc -> acc + 1) 0

let restrict r keep = of_pred r.n (fun i j -> mem r i j && keep i && keep j)

let filter r keep_pair = of_pred r.n (fun i j -> mem r i j && keep_pair i j)

let subset a b =
  if a.n <> b.n then invalid_arg "Rel.subset: size mismatch";
  let ok = ref true in
  for i = 0 to a.n - 1 do
    for w = 0 to a.words - 1 do
      if a.rows.(i).(w) land lnot b.rows.(i).(w) <> 0 then ok := false
    done
  done;
  !ok

let pp ppf r =
  Fmt.pf ppf "{%a}"
    Fmt.(list ~sep:(any ";@ ") (pair ~sep:(any "->") int int))
    (to_list r)
