lib/core/closure.ml: Array Fun Hashtbl Hb Lift List Option Rel Trace Wellformed
