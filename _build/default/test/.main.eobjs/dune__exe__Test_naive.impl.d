test/test_naive.ml: Alcotest Consistency Enumerate Fmt Hb Lift List Model Naive Option QCheck QCheck_alcotest Rel Tb Tmx_core Tmx_exec Tmx_litmus Trace
