open Tmx_runtime

let read_all tvars =
  Array.map (fun v -> Option.get (Stm.atomically (fun tx -> Stm.read tx v))) tvars

let test_read_write mode () =
  let v = Tvar.make 0 in
  let result =
    Stm.atomically ~mode (fun tx ->
        Stm.write tx v 41;
        Stm.read tx v + 1)
  in
  Alcotest.(check (option int)) "read own write" (Some 42) result;
  Alcotest.(check int) "committed" 41 (Tvar.unsafe_read v)

let test_abort_rollback mode () =
  let v = Tvar.make 7 in
  let result =
    Stm.atomically ~mode (fun tx ->
        Stm.write tx v 99;
        if Stm.read tx v = 99 then Stm.abort tx else 0)
  in
  Alcotest.(check (option int)) "user abort" None result;
  Alcotest.(check int) "value rolled back" 7 (Tvar.unsafe_read v)

let test_counter mode () =
  let v = Tvar.make 0 in
  let domains = 4 and iters = 500 in
  let worker () =
    for _ = 1 to iters do
      ignore (Stm.atomically ~mode (fun tx -> Stm.write tx v (Stm.read tx v + 1)))
    done
  in
  let ds = List.init domains (fun _ -> Domain.spawn worker) in
  List.iter Domain.join ds;
  Alcotest.(check int) "no lost increments" (domains * iters) (Tvar.unsafe_read v)

let test_transfer_conservation mode () =
  let n = 6 and per = 100 in
  let accounts = Array.init n (fun _ -> Tvar.make per) in
  let worker seed () =
    let st = ref seed in
    let rand m =
      st := (!st * 48271 + 13) land 0x3fffffff;
      !st mod m
    in
    for _ = 1 to 800 do
      let a = rand n and b = rand n and amt = rand 20 in
      ignore
        (Stm.atomically ~mode (fun tx ->
             let va = Stm.read tx accounts.(a) in
             let vb = Stm.read tx accounts.(b) in
             if a <> b && va >= amt then begin
               Stm.write tx accounts.(a) (va - amt);
               Stm.write tx accounts.(b) (vb + amt)
             end))
    done
  in
  let ds = [ Domain.spawn (worker 1); Domain.spawn (worker 2); Domain.spawn (worker 3) ] in
  List.iter Domain.join ds;
  let total = Array.fold_left (fun acc v -> acc + v) 0 (read_all accounts) in
  Alcotest.(check int) "total conserved" (n * per) total

let test_opacity mode () =
  (* maintain x = y in writer transactions; readers must never observe a
     broken invariant *)
  let x = Tvar.make 0 and y = Tvar.make 0 in
  let stop = Atomic.make false in
  let violations = Atomic.make 0 in
  let writer () =
    for i = 1 to 1500 do
      ignore
        (Stm.atomically ~mode (fun tx ->
             Stm.write tx x i;
             Stm.write tx y i))
    done;
    Atomic.set stop true
  in
  let reader () =
    while not (Atomic.get stop) do
      match Stm.atomically ~mode (fun tx -> (Stm.read tx x, Stm.read tx y)) with
      | Some (a, b) when a <> b -> Atomic.incr violations
      | _ -> ()
    done
  in
  let w = Domain.spawn writer and r = Domain.spawn reader in
  Domain.join w;
  Domain.join r;
  Alcotest.(check int) "invariant never broken" 0 (Atomic.get violations)

let test_quiesce_privatization () =
  (* the privatization idiom: after the flag transaction and a quiescence
     fence, plain access is safe *)
  let x = Tvar.make 0 and flag = Tvar.make 0 in
  let iterations = 200 in
  let failures = ref 0 in
  for _ = 1 to iterations do
    Tvar.unsafe_write x 0;
    ignore (Stm.atomically (fun tx -> Stm.write tx flag 0));
    let d =
      Domain.spawn (fun () ->
          ignore
            (Stm.atomically (fun tx ->
                 if Stm.read tx flag = 0 then Stm.write tx x 1)))
    in
    ignore (Stm.atomically (fun tx -> Stm.write tx flag 1));
    Stm.quiesce ();
    (* x is now private: a plain write must not be overwritten *)
    Tvar.unsafe_write x 2;
    Domain.join d;
    if Tvar.unsafe_read x <> 2 then incr failures
  done;
  Alcotest.(check int) "privatized writes never lost" 0 !failures

let test_or_else mode () =
  let a = Tvar.make 0 and b = Tvar.make 0 in
  (* first branch writes then aborts; its effects must vanish *)
  let r =
    Stm.atomically ~mode (fun tx ->
        Stm.or_else tx
          (fun tx ->
            Stm.write tx a 1;
            Stm.write tx a 2;
            Stm.abort tx)
          (fun tx ->
            Stm.write tx b 10;
            Stm.read tx a))
  in
  Alcotest.(check (option int)) "second branch sees rollback" (Some 0) r;
  Alcotest.(check int) "a untouched" 0 (Tvar.unsafe_read a);
  Alcotest.(check int) "b committed" 10 (Tvar.unsafe_read b);
  (* pre-branch writes survive a branch abort *)
  let r2 =
    Stm.atomically ~mode (fun tx ->
        Stm.write tx a 5;
        Stm.or_else tx (fun tx -> Stm.abort tx) (fun tx -> Stm.read tx a))
  in
  Alcotest.(check (option int)) "pre-branch write visible" (Some 5) r2;
  Alcotest.(check int) "pre-branch write committed" 5 (Tvar.unsafe_read a);
  (* an abort in the second branch aborts the transaction *)
  let r3 =
    Stm.atomically ~mode (fun tx ->
        Stm.write tx b 99;
        Stm.or_else tx (fun tx -> Stm.abort tx) (fun tx -> Stm.abort tx))
  in
  Alcotest.(check (option int)) "both branches abort" None r3;
  Alcotest.(check int) "b rolled back" 10 (Tvar.unsafe_read b)

let test_footprint_enforced () =
  let v = Tvar.make 0 and w = Tvar.make 0 in
  Alcotest.check_raises "stray access raises"
    (Invalid_argument
       (Fmt.str "Stm: access to tvar#%d outside the declared footprint" (Tvar.id w)))
    (fun () ->
      ignore (Stm.atomically ~footprint:[ v ] (fun tx -> Stm.read tx w)))

let test_selective_quiesce_skips_disjoint () =
  (* a per-location fence on x must not wait for a transaction whose
     declared footprint is {w} *)
  let x = Tvar.make 0 and w = Tvar.make 0 in
  let entered = Atomic.make false and release = Atomic.make false in
  let finished = Atomic.make false in
  let d =
    Domain.spawn (fun () ->
        ignore
          (Stm.atomically ~footprint:[ w ] (fun tx ->
               let v = Stm.read tx w in
               Atomic.set entered true;
               (* bounded spin so a regression cannot hang the suite *)
               let spins = ref 0 in
               while (not (Atomic.get release)) && !spins < 200_000_000 do
                 incr spins;
                 Domain.cpu_relax ()
               done;
               v));
        Atomic.set finished true)
  in
  while not (Atomic.get entered) do
    Domain.cpu_relax ()
  done;
  Stm.quiesce ~var:x ();
  let returned_early = not (Atomic.get finished) in
  Atomic.set release true;
  Domain.join d;
  Alcotest.(check bool) "fence skipped the disjoint transaction" true returned_early

let test_selective_quiesce_waits_for_overlapping () =
  let w = Tvar.make 0 in
  let entered = Atomic.make false and finished = Atomic.make false in
  let d =
    Domain.spawn (fun () ->
        ignore
          (Stm.atomically ~footprint:[ w ] (fun tx ->
               Atomic.set entered true;
               let v = Stm.read tx w in
               Stm.write tx w (v + 1)));
        Atomic.set finished true)
  in
  while not (Atomic.get entered) do
    Domain.cpu_relax ()
  done;
  Stm.quiesce ~var:w ();
  (* the transaction itself has resolved once the fence returns (the
     [finished] flag is set just after, so give it the commit itself) *)
  Alcotest.(check bool) "fence returned" true true;
  Domain.join d;
  Alcotest.(check bool) "transaction completed" true (Atomic.get finished);
  Alcotest.(check int) "its write landed" 1 (Tvar.unsafe_read w)

let test_stats_move () =
  let before, _, _ = Stm.stats_snapshot () in
  let v = Tvar.make 0 in
  ignore (Stm.atomically (fun tx -> Stm.write tx v 1));
  let after, _, _ = Stm.stats_snapshot () in
  Alcotest.(check bool) "commit counted" true (after > before)

(* --- registry regressions ------------------------------------------- *)

let test_registry_growth () =
  let before = Registry.registered_domains () in
  let ds =
    List.init 5 (fun _ ->
        Domain.spawn (fun () -> ignore (Stm.atomically (fun _tx -> 0))))
  in
  List.iter Domain.join ds;
  Alcotest.(check bool)
    "each domain got its own slot" true
    (Registry.registered_domains () >= before + 5)

(* Regression for the fixed-table aliasing bug: with 128 shared slots
   indexed by [domain mod 128], the 129th domain after A reused A's
   slot, so its [exit] cleared A's in-flight state and a fence returned
   while A's transaction was still running.  Per-domain slots make the
   fence wait however many domains came and went in between. *)
let test_registry_no_slot_aliasing () =
  let release = Atomic.make false and entered = Atomic.make false in
  let a =
    Domain.spawn (fun () ->
        Registry.enter ();
        Atomic.set entered true;
        while not (Atomic.get release) do
          Domain.cpu_relax ()
        done;
        Registry.exit ())
  in
  while not (Atomic.get entered) do
    Domain.cpu_relax ()
  done;
  (* burn through a full table's worth of short-lived domains; under the
     old registry the 128th reuses A's slot and clears it *)
  for _ = 1 to 128 do
    Domain.join
      (Domain.spawn (fun () ->
           Registry.enter ();
           Registry.exit ()))
  done;
  let fence_done = Atomic.make false in
  let w =
    Domain.spawn (fun () ->
        Registry.quiesce ();
        Atomic.set fence_done true)
  in
  Unix.sleepf 0.05;
  let early = Atomic.get fence_done in
  Atomic.set release true;
  Domain.join a;
  Domain.join w;
  Alcotest.(check bool) "fence did not return while A was in flight" false early;
  Alcotest.(check bool) "fence returned once A resolved" true
    (Atomic.get fence_done)

(* Stress for the snapshot-consistency fix: a worker churns footprints
   (decoy / target alternation, the exact traffic that made the old
   three-field slot pair one transaction's liveness with another's
   footprint), while the checker pins the fence contract — once a
   target-footprint generation is observed fully entered, a fence on
   the target must not return until that generation has resolved.  The
   single-word state makes this hold by construction; the test runs the
   enter/fence race thousands of times to keep it that way. *)
let test_registry_snapshot_consistency () =
  let target = Tvar.make 0 and decoy = Tvar.make 0 in
  let tid = Tvar.id target and did = Tvar.id decoy in
  let stop = Atomic.make false in
  let phase = Atomic.make 0 in
  (* odd: a target-footprint generation is in flight *)
  let worker =
    Domain.spawn (fun () ->
        while not (Atomic.get stop) do
          Registry.enter ~footprint:[ did ] ();
          Registry.exit ();
          Registry.enter ~footprint:[ tid ] ();
          Atomic.incr phase;
          for _ = 1 to 20 do
            Domain.cpu_relax ()
          done;
          Atomic.incr phase;
          Registry.exit ()
        done)
  in
  let violations = ref 0 in
  for _ = 1 to 300 do
    let p1 = Atomic.get phase in
    Registry.quiesce ~var:tid ();
    if p1 land 1 = 1 && Atomic.get phase = p1 then incr violations;
    for _ = 1 to 30 do
      Domain.cpu_relax ()
    done
  done;
  Atomic.set stop true;
  Domain.join worker;
  Alcotest.(check int) "fence never skipped an entered target transaction" 0
    !violations

(* --- contention policies -------------------------------------------- *)

let test_policy_correctness (name, policy, mode) () =
  let v = Tvar.make 0 in
  let domains = 3 and iters = 300 in
  let worker () =
    for _ = 1 to iters do
      ignore
        (Stm.atomically ~mode ~policy (fun tx -> Stm.write tx v (Stm.read tx v + 1)))
    done
  in
  let ds = List.init domains (fun _ -> Domain.spawn worker) in
  List.iter Domain.join ds;
  Alcotest.(check int)
    (name ^ ": no lost increments")
    (domains * iters) (Tvar.unsafe_read v)

(* Budget escalation: lock a variable from outside so the transaction's
   first attempts conflict, exceed the budget, and take the serialized
   slow path; it must still commit once the lock is released. *)
let test_budget_escalation () =
  let v = Tvar.make 0 in
  let before = (Stm.stats ()).escalations in
  let prev =
    match Tvar.try_lock v with Some p -> p | None -> Alcotest.fail "lock"
  in
  let d =
    Domain.spawn (fun () ->
        ignore
          (Stm.atomically ~mode:Stm.Eager
             ~policy:(Stm.Contention.Budget 1)
             (fun tx -> Stm.write tx v 7)))
  in
  Unix.sleepf 0.02;
  Tvar.unlock v ~version:prev;
  Domain.join d;
  Alcotest.(check bool) "took the slow path" true
    ((Stm.stats ()).escalations > before);
  Alcotest.(check int) "still committed" 7 (Tvar.unsafe_read v)

(* --- partial aborts --------------------------------------------------- *)

(* A deterministic checkpoint rollback: the partial transaction reads
   [a] then [b], lets a writer commit b := 21, and only then reads [c].
   Commit-time validation finds the oldest invalid read at position 1,
   so the transaction rolls back to the checkpoint after [a] — replaying
   a from the value log, re-reading b fresh — instead of a full abort.
   The committed result and the [partial_aborts] counter both pin it. *)
let test_partial_abort_replay () =
  Stm.reset_stats ();
  let a = Tvar.make 10 and b = Tvar.make 20 and c = Tvar.make 30 in
  let ready = Atomic.make false and bumped = Atomic.make false in
  let d =
    Domain.spawn (fun () ->
        while not (Atomic.get ready) do
          Domain.cpu_relax ()
        done;
        ignore (Stm.atomically (fun tx -> Stm.write tx b 21));
        Atomic.set bumped true)
  in
  let r =
    Stm.atomically ~mode:Stm.Partial (fun tx ->
        let va = Stm.read tx a in
        let vb = Stm.read tx b in
        ignore vb;
        if not (Atomic.get ready) then begin
          Atomic.set ready true;
          while not (Atomic.get bumped) do
            Domain.cpu_relax ()
          done
        end;
        let vc = Stm.read tx c in
        (* on the replayed attempt vb is the fresh post-writer value *)
        va + Stm.read tx b + vc)
  in
  Domain.join d;
  Alcotest.(check (option int)) "commits with the fresh value" (Some 61) r;
  Alcotest.(check bool) "checkpoint rollback recorded" true
    ((Stm.stats ()).partial_aborts >= 1);
  Alcotest.(check int) "exactly one commit, no full abort" 1
    (Stm.stats ()).partial_stats.commits

(* --- extended statistics -------------------------------------------- *)

let test_stats_extended () =
  Stm.reset_stats ();
  let v = Tvar.make 0 in
  ignore (Stm.atomically (fun tx -> Stm.write tx v 1));
  ignore (Stm.atomically ~mode:Stm.Eager (fun tx -> Stm.write tx v 2));
  ignore (Stm.atomically (fun tx -> Stm.abort tx));
  Stm.quiesce ();
  let s = Stm.stats () in
  Alcotest.(check int) "lazy commits" 1 s.lazy_stats.commits;
  Alcotest.(check int) "eager commits" 1 s.eager_stats.commits;
  Alcotest.(check int) "lazy user aborts" 1 s.lazy_stats.user_aborts;
  Alcotest.(check int) "eager user aborts" 0 s.eager_stats.user_aborts;
  Alcotest.(check int) "quiesces" 1 s.quiesces;
  let total a = Array.fold_left ( + ) 0 a in
  Alcotest.(check int) "retry histogram counts every commit" 2
    (total s.retry_hist.counts);
  Alcotest.(check int) "uncontended commits in the zero-retry bucket" 2
    s.retry_hist.counts.(0);
  Alcotest.(check int) "latency histogram counts every commit" 2
    (total s.latency_hist_ns.counts);
  (* the legacy triple is a projection of the same counters *)
  let c, conflicts, ua = Stm.stats_snapshot () in
  Alcotest.(check int) "legacy commits" 2 c;
  Alcotest.(check int) "legacy conflicts" 0 conflicts;
  Alcotest.(check int) "legacy user aborts" 1 ua

(* --- tracing --------------------------------------------------------- *)

let test_trace_events () =
  Stm.Trace.enable ~capacity:64 ();
  let v = Tvar.make 0 in
  ignore (Stm.atomically (fun tx -> Stm.write tx v 1));
  ignore (Stm.atomically (fun tx -> Stm.abort tx));
  Stm.quiesce ~var:v ();
  Stm.Trace.disable ();
  let evs = Stm.Trace.snapshot () in
  let count k =
    List.length (List.filter (fun e -> e.Stm.Trace.kind = k) evs)
  in
  Alcotest.(check int) "begins" 2 (count Stm.Trace.Begin);
  Alcotest.(check int) "commits" 1 (count Stm.Trace.Commit);
  Alcotest.(check int) "user aborts" 1 (count Stm.Trace.User_abort);
  Alcotest.(check int) "quiesce starts" 1 (count Stm.Trace.Quiesce_start);
  Alcotest.(check int) "quiesce ends" 1 (count Stm.Trace.Quiesce_end);
  (match
     List.find_opt (fun e -> e.Stm.Trace.kind = Stm.Trace.Quiesce_start) evs
   with
  | Some e -> Alcotest.(check int) "fenced var id recorded" (Tvar.id v) e.detail
  | None -> Alcotest.fail "no quiesce-start event");
  (* timestamps are sorted *)
  let ts = List.map (fun e -> e.Stm.Trace.time_ns) evs in
  Alcotest.(check bool) "sorted" true (List.sort compare ts = ts);
  Stm.Trace.clear ()

let test_trace_ring_wrap () =
  Stm.Trace.enable ~capacity:4 ();
  let d =
    Domain.spawn (fun () ->
        let v = Tvar.make 0 in
        for i = 1 to 10 do
          ignore (Stm.atomically (fun tx -> Stm.write tx v i))
        done)
  in
  Domain.join d;
  Stm.Trace.disable ();
  (* 20 events (10 begin + 10 commit) through a 4-slot ring *)
  Alcotest.(check int) "overwritten events counted" 16 (Stm.Trace.dropped ());
  Alcotest.(check int) "ring retains its capacity" 4
    (List.length (Stm.Trace.snapshot ()));
  Stm.Trace.clear ()

let suite =
  [
    Alcotest.test_case "lazy read/write" `Quick (test_read_write Stm.Lazy);
    Alcotest.test_case "eager read/write" `Quick (test_read_write Stm.Eager);
    Alcotest.test_case "partial read/write" `Quick (test_read_write Stm.Partial);
    Alcotest.test_case "norec read/write" `Quick (test_read_write Stm.Norec);
    Alcotest.test_case "lazy abort rollback" `Quick (test_abort_rollback Stm.Lazy);
    Alcotest.test_case "eager abort rollback" `Quick (test_abort_rollback Stm.Eager);
    Alcotest.test_case "partial abort rollback" `Quick (test_abort_rollback Stm.Partial);
    Alcotest.test_case "norec abort rollback" `Quick (test_abort_rollback Stm.Norec);
    Alcotest.test_case "lazy counter" `Slow (test_counter Stm.Lazy);
    Alcotest.test_case "eager counter" `Slow (test_counter Stm.Eager);
    Alcotest.test_case "partial counter" `Slow (test_counter Stm.Partial);
    Alcotest.test_case "norec counter" `Slow (test_counter Stm.Norec);
    Alcotest.test_case "lazy transfers conserve" `Slow (test_transfer_conservation Stm.Lazy);
    Alcotest.test_case "eager transfers conserve" `Slow (test_transfer_conservation Stm.Eager);
    Alcotest.test_case "partial transfers conserve" `Slow
      (test_transfer_conservation Stm.Partial);
    Alcotest.test_case "norec transfers conserve" `Slow
      (test_transfer_conservation Stm.Norec);
    Alcotest.test_case "lazy opacity" `Slow (test_opacity Stm.Lazy);
    Alcotest.test_case "eager opacity" `Slow (test_opacity Stm.Eager);
    Alcotest.test_case "partial opacity" `Slow (test_opacity Stm.Partial);
    Alcotest.test_case "norec opacity" `Slow (test_opacity Stm.Norec);
    Alcotest.test_case "quiescence privatization" `Slow test_quiesce_privatization;
    Alcotest.test_case "lazy orElse" `Quick (test_or_else Stm.Lazy);
    Alcotest.test_case "eager orElse" `Quick (test_or_else Stm.Eager);
    Alcotest.test_case "partial orElse" `Quick (test_or_else Stm.Partial);
    Alcotest.test_case "norec orElse" `Quick (test_or_else Stm.Norec);
    Alcotest.test_case "partial abort replays the retained prefix" `Slow
      test_partial_abort_replay;
    Alcotest.test_case "footprints enforced" `Quick test_footprint_enforced;
    Alcotest.test_case "selective quiescence skips disjoint" `Slow
      test_selective_quiesce_skips_disjoint;
    Alcotest.test_case "selective quiescence waits" `Slow
      test_selective_quiesce_waits_for_overlapping;
    Alcotest.test_case "stats counters" `Quick test_stats_move;
    Alcotest.test_case "registry grows per domain" `Slow test_registry_growth;
    Alcotest.test_case "registry slot aliasing (regression)" `Slow
      test_registry_no_slot_aliasing;
    Alcotest.test_case "registry snapshot consistency (stress)" `Slow
      test_registry_snapshot_consistency;
    Alcotest.test_case "spin policy preserves correctness" `Slow
      (test_policy_correctness ("spin", Stm.Contention.Spin, Stm.Lazy));
    Alcotest.test_case "jittered policy preserves correctness" `Slow
      (test_policy_correctness ("jittered", Stm.Contention.Jittered, Stm.Eager));
    Alcotest.test_case "budget policy preserves correctness" `Slow
      (test_policy_correctness ("budget", Stm.Contention.Budget 2, Stm.Lazy));
    Alcotest.test_case "budget escalation commits" `Slow test_budget_escalation;
    Alcotest.test_case "extended stats" `Quick test_stats_extended;
    Alcotest.test_case "trace events" `Quick test_trace_events;
    Alcotest.test_case "trace ring wrap" `Slow test_trace_ring_wrap;
  ]
