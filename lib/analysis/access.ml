(* Static access summaries: every load/store of a program, with its
   thread, mode (plain vs transactional), footprint location name
   (computed-index cells become the "base[*]" wildcard, as in
   [Tmx_opt.Footprint]), a human-readable source path, and the
   conservative facts the race analysis needs:

   - [must_abort]: the enclosing transaction aborts on every control
     path, so no dynamic instance of the access is ever nonaborted;
   - [fences_before]/[fences_after]: quiescence fences that dominate /
     postdominate the access in its thread (every path from the thread
     start to the access crosses the fence, resp. every path from the
     access to the thread end does);
   - [after_atomic]: some atomic block precedes the access in its thread
     (the privatization-shaped suffix of [Tmx_opt.Fenceify]);
   - [txn_reads]: locations read by the enclosing transaction (empty for
     plain accesses), and [prior_atomic_writes]: locations written by
     atomic blocks preceding the access in its thread.  Together these
     recognize guarded-publication / privatization idioms.
   - [walk]/[in_loop]/[nonzero_guards]: the static walk index (within a
     loop-free thread, executed statements execute in walk order), loop
     membership, and the registers every dominating branch condition
     pins nonzero — the facts behind [Order]'s guard-dominance rule.

   Dominance is computed over branch scopes: a fence dominates an access
   iff it occurs earlier in the walk and its chain of enclosing
   If/While constructs is a prefix of the access's chain.

   [context] additionally collects the program-global facts the
   guard-dominance rule needs: every register definition (with what it
   loads, where, and whether transactionally) and per-thread loop
   presence. *)

open Tmx_lang

type mode = Plain | Transactional
type kind = Read | Write

let pp_mode ppf = function
  | Plain -> Fmt.string ppf "plain"
  | Transactional -> Fmt.string ppf "tx"

let pp_kind ppf = function
  | Read -> Fmt.string ppf "read"
  | Write -> Fmt.string ppf "write"

type t = {
  thread : int;
  kind : kind;
  mode : mode;
  loc : string;
  path : string;
  stmt : Ast.stmt;
  walk : int;
  in_loop : bool;
  nonzero_guards : string list;
  must_abort : bool;
  fences_before : string list;
  fences_after : string list;
  after_atomic : bool;
  txn_reads : string list;
  txn_writes : string list;
  prior_atomic_writes : string list;
  prior_atomic_reads : string list;
  later_atomic_writes : string list;
}

let pp ppf a =
  Fmt.pf ppf "t%d %a %a %s (%s: %a)" a.thread pp_mode a.mode pp_kind a.kind
    a.loc a.path Ast.pp_stmt a.stmt

(* -- must-abort ------------------------------------------------------------- *)

(* Does every control path from the start of [body] hit an [abort],
   given that paths falling off its end abort iff [cont]?  Loops are a
   conservative stop: a while body may run zero times or forever, and
   anything after a loop is not examined (sound: we only ever claim
   must-abort when it provably holds). *)
let rec tail_aborts body cont =
  match body with
  | [] -> cont
  | Ast.Abort :: _ -> true
  | Ast.If (_, t, e) :: rest ->
      let k = tail_aborts rest cont in
      tail_aborts t k && tail_aborts e k
  | Ast.While _ :: _ -> false
  | _ :: rest -> tail_aborts rest cont

let body_must_abort body = tail_aborts body false

(* -- location reads/writes of a statement list ------------------------------ *)

let rec body_reads acc = function
  | [] -> acc
  | s :: rest ->
      let acc =
        match (s : Ast.stmt) with
        | Load (_, lv) -> Tmx_opt.Footprint.lval_name lv :: acc
        | Atomic b | While (_, b) -> body_reads acc b
        | If (_, t, e) -> body_reads (body_reads acc t) e
        | Store _ | Assign _ | Abort | Fence _ | Skip -> acc
      in
      body_reads acc rest

let rec body_writes acc = function
  | [] -> acc
  | s :: rest ->
      let acc =
        match (s : Ast.stmt) with
        | Store (lv, _) -> Tmx_opt.Footprint.lval_name lv :: acc
        | Atomic b | While (_, b) -> body_writes acc b
        | If (_, t, e) -> body_writes (body_writes acc t) e
        | Load _ | Assign _ | Abort | Fence _ | Skip -> acc
      in
      body_writes acc rest

(* -- guard conditions -------------------------------------------------------- *)

(* Registers that a branch condition forces to be nonzero.  Conditions
   evaluate C-style (nonzero is true, [Proto.eval]), so [Reg r] in a
   taken then-branch, or [r = 0] in a taken else-branch, pins r ≠ 0.
   Conservative: anything unrecognized contributes nothing. *)
let rec nonzero_when_true : Ast.expr -> string list = function
  | Reg r -> [ r ]
  | Ne (Reg r, Int 0) | Ne (Int 0, Reg r) -> [ r ]
  | (Eq (Reg r, Int k) | Eq (Int k, Reg r)) when k <> 0 -> [ r ]
  | Not e -> nonzero_when_false e
  | And (a, b) -> nonzero_when_true a @ nonzero_when_true b
  | _ -> []

and nonzero_when_false : Ast.expr -> string list = function
  | Eq (Reg r, Int 0) | Eq (Int 0, Reg r) -> [ r ]
  | Not e -> nonzero_when_true e
  | Or (a, b) -> nonzero_when_false a @ nonzero_when_false b
  | _ -> []

(* the path prefix of the enclosing atomic block, if any ("t1.0.atomic"
   for "t1.0.atomic.2.then.0"); atomics never nest, so the first
   ".atomic" segment is the one *)
let txn_prefix path =
  let needle = ".atomic" in
  let n = String.length path and m = String.length needle in
  let rec find i =
    if i + m > n then None
    else if String.sub path i m = needle then Some (String.sub path 0 (i + m))
    else find (i + 1)
  in
  find 0

(* -- extraction ------------------------------------------------------------- *)

type def = {
  def_thread : int;
  reg : string;
  from_load : string option;
      (* the footprint name loaded when the def is [r := x] *)
  def_walk : int;
  def_txn : string option; (* enclosing atomic path, if transactional *)
  def_in_loop : bool;
}

type raw_item = Racc of t | Rfence of string | Ratomic of string list
(* [Ratomic ws]: an atomic block writing [ws] ended at this walk position *)

type raw = { walk : int; scope : int list; item : raw_item }

let is_scope_prefix pre full =
  let rec go = function
    | [], _ -> true
    | _, [] -> false
    | p :: ps, f :: fs -> p = f && go (ps, fs)
  in
  go (pre, full)

let analyze_thread thread stmts =
  let items = ref [] in
  let defs = ref [] in
  let walk = ref 0 in
  let has_loop = ref false in
  let scope_id = ref 0 in
  let after_atomic = ref false in
  let atomic_writes = ref [] in
  let atomic_reads = ref [] in
  (* every statement consumes a walk index, so indices linearize the
     static walk: within a loop-free thread, executed statements execute
     in strictly increasing walk order *)
  let next_walk () =
    let w = !walk in
    incr walk;
    w
  in
  let emit w scope item =
    items := { walk = w; scope = List.rev scope; item } :: !items
  in
  (* [txn] is [None] outside transactions, [Some (path, reads, writes)]
     inside.  [cont] is the must-abort continuation: does every control
     path from just after the current statement to the end of the
     transaction body hit an [abort]?  Per-access rather than per-body,
     so a write in an always-aborting branch (D.2's speculation) is
     recognized even when the transaction can also commit.  [guards]
     are the registers every dominating branch condition pins nonzero;
     [in_loop] marks statements inside a [while] body. *)
  let rec stmt ~scope ~path ~txn ~cont ~guards ~in_loop (s : Ast.stmt) =
    let w = next_walk () in
    let access kind lv =
      let mode, must_abort, txn_reads, txn_writes =
        match txn with
        | None -> (Plain, false, [], [])
        | Some (_, reads, writes) -> (Transactional, cont, reads, writes)
      in
      emit w scope
        (Racc
           {
             thread;
             kind;
             mode;
             loc = Tmx_opt.Footprint.lval_name lv;
             path;
             stmt = s;
             walk = w;
             in_loop;
             nonzero_guards = List.sort_uniq compare guards;
             must_abort;
             fences_before = [];
             fences_after = [];
             after_atomic = !after_atomic;
             txn_reads;
             txn_writes;
             prior_atomic_writes = !atomic_writes;
             prior_atomic_reads = !atomic_reads;
             later_atomic_writes = [];
           })
    in
    let define reg from_load =
      defs :=
        {
          def_thread = thread;
          reg;
          from_load;
          def_walk = w;
          def_txn = (match txn with None -> None | Some (p, _, _) -> Some p);
          def_in_loop = in_loop;
        }
        :: !defs
    in
    match s with
    | Load (r, lv) ->
        define r (Some (Tmx_opt.Footprint.lval_name lv));
        access Read lv
    | Store (lv, _) -> access Write lv
    | Assign (r, _) -> define r None
    | Fence x -> emit w scope (Rfence x)
    | Atomic b ->
        let writes = List.sort_uniq compare (body_writes [] b) in
        let tpath = path ^ ".atomic" in
        let txn = Some (tpath, List.sort_uniq compare (body_reads [] b), writes) in
        (* falling off the end of the body commits, so cont restarts *)
        body ~scope ~path:tpath ~txn ~cont:false ~guards ~in_loop b;
        emit (next_walk ()) scope (Ratomic writes);
        after_atomic := true;
        atomic_writes := List.sort_uniq compare (body_writes !atomic_writes b);
        atomic_reads := List.sort_uniq compare (body_reads !atomic_reads b)
    | If (c, t, e) ->
        let fresh () = incr scope_id; !scope_id in
        body ~scope:(fresh () :: scope) ~path:(path ^ ".then") ~txn ~cont
          ~guards:(nonzero_when_true c @ guards) ~in_loop t;
        body ~scope:(fresh () :: scope) ~path:(path ^ ".else") ~txn ~cont
          ~guards:(nonzero_when_false c @ guards) ~in_loop e
    | While (_, b) ->
        incr scope_id;
        has_loop := true;
        (* the loop may exit or re-run: no continuation claim inside,
           and the condition pins nothing across iterations *)
        body ~scope:(!scope_id :: scope) ~path:(path ^ ".do") ~txn ~cont:false
          ~guards ~in_loop:true b
    | Abort | Skip -> ()
  and body ~scope ~path ~txn ~cont ~guards ~in_loop stmts =
    let rec go i = function
      | [] -> ()
      | s :: rest ->
          stmt ~scope
            ~path:(Fmt.str "%s.%d" path i)
            ~txn
            ~cont:(tail_aborts rest cont)
            ~guards ~in_loop s;
          go (i + 1) rest
    in
    go 0 stmts
  in
  body ~scope:[] ~path:(Fmt.str "t%d" thread) ~txn:None ~cont:false ~guards:[]
    ~in_loop:false stmts;
  let raws = List.rev !items in
  (* dominating / postdominating fences *)
  let fences =
    List.filter
      (fun r -> match r.item with Rfence _ -> true | Racc _ | Ratomic _ -> false)
      raws
  in
  let atomics =
    List.filter
      (fun r -> match r.item with Ratomic _ -> true | Racc _ | Rfence _ -> false)
      raws
  in
  let accesses =
    List.filter_map
      (fun r ->
        match r.item with
        | Rfence _ | Ratomic _ -> None
        | Racc a ->
            let before, after =
              List.fold_left
                (fun (bs, afs) f ->
                  match f.item with
                  | Rfence x when is_scope_prefix f.scope r.scope ->
                      if f.walk < r.walk then (x :: bs, afs)
                      else (bs, x :: afs)
                  | _ -> (bs, afs))
                ([], []) fences
            in
            let later =
              List.concat_map
                (fun m ->
                  match m.item with
                  | Ratomic ws
                    when m.walk > r.walk && is_scope_prefix m.scope r.scope ->
                      ws
                  | _ -> [])
                atomics
            in
            Some
              {
                a with
                fences_before = List.sort_uniq compare before;
                fences_after = List.sort_uniq compare after;
                later_atomic_writes = List.sort_uniq compare later;
              })
      raws
  in
  (accesses, List.rev !defs, !has_loop)

let of_thread thread stmts =
  let accesses, _, _ = analyze_thread thread stmts in
  accesses

let of_program (p : Ast.program) =
  List.concat (List.mapi of_thread p.threads)

(* -- program-wide context ---------------------------------------------------- *)

type context = {
  ctx_accesses : t list;
  ctx_defs : def list;
  ctx_loops : bool array; (* per thread: does it contain a while? *)
}

let context (p : Ast.program) =
  let per_thread = List.mapi analyze_thread p.threads in
  {
    ctx_accesses = List.concat_map (fun (a, _, _) -> a) per_thread;
    ctx_defs = List.concat_map (fun (_, d, _) -> d) per_thread;
    ctx_loops = Array.of_list (List.map (fun (_, _, l) -> l) per_thread);
  }

(* -- per-location classification -------------------------------------------- *)

type counts = {
  plain_reads : int;
  plain_writes : int;
  tx_reads : int;
  tx_writes : int;
}

let no_counts = { plain_reads = 0; plain_writes = 0; tx_reads = 0; tx_writes = 0 }

type class_ = Unused | Plain_only | Tx_only | Mixed

let pp_class ppf = function
  | Unused -> Fmt.string ppf "unused"
  | Plain_only -> Fmt.string ppf "plain-only"
  | Tx_only -> Fmt.string ppf "tx-only"
  | Mixed -> Fmt.string ppf "mixed"

type summary = {
  loc : string;
  class_ : class_;
  counts : counts;
  threads : int list;
}

let class_of_counts c =
  let plain = c.plain_reads + c.plain_writes > 0 in
  let tx = c.tx_reads + c.tx_writes > 0 in
  match (plain, tx) with
  | false, false -> Unused
  | true, false -> Plain_only
  | false, true -> Tx_only
  | true, true -> Mixed

let summarize_loc accesses loc =
  let touching =
    List.filter (fun (a : t) -> Tmx_opt.Footprint.name_clash a.loc loc) accesses
  in
  let counts =
    List.fold_left
      (fun c a ->
        match (a.mode, a.kind) with
        | Plain, Read -> { c with plain_reads = c.plain_reads + 1 }
        | Plain, Write -> { c with plain_writes = c.plain_writes + 1 }
        | Transactional, Read -> { c with tx_reads = c.tx_reads + 1 }
        | Transactional, Write -> { c with tx_writes = c.tx_writes + 1 })
      no_counts touching
  in
  {
    loc;
    class_ = class_of_counts counts;
    counts;
    threads = List.sort_uniq compare (List.map (fun a -> a.thread) touching);
  }

let summaries (p : Ast.program) =
  let accesses = of_program p in
  (* declared locations first, then any undeclared footprint names the
     program mentions (typos; Ast.validate rejects them, but the summary
     stays total for diagnostics) *)
  let declared = p.locs in
  let extra =
    List.sort_uniq compare
      (List.filter_map
         (fun (a : t) ->
           let covered =
             List.exists (fun l -> Tmx_opt.Footprint.name_clash a.loc l) declared
           in
           if covered then None else Some a.loc)
         accesses)
  in
  List.map (summarize_loc accesses) (declared @ extra)

(* per-thread, per-location counts — the raw summary table *)
let thread_summaries (p : Ast.program) =
  let accesses = of_program p in
  List.concat
    (List.mapi
       (fun i _ ->
         let mine = List.filter (fun a -> a.thread = i) accesses in
         List.filter_map
           (fun loc ->
             let s = summarize_loc mine loc in
             if s.class_ = Unused then None else Some (i, s))
           p.locs)
       p.threads)
