lib/runtime/tmap.mli: Stm
