open Tmx_core
open Tb

let test_sequential_trace () =
  let t =
    mk ~locs:[ "x" ] [ w 0 "x" 1 1; r 1 "x" 1 1; w 1 "x" 2 2; r 0 "x" 2 2 ]
  in
  Alcotest.(check bool) "monotone trace sequential" true (Sequentiality.l_sequential t);
  Alcotest.(check bool) "transactionally sequential" true
    (Sequentiality.transactionally_l_sequential t)

let test_weak_write () =
  (* a write inserted below an existing timestamp is weak *)
  let t = mk ~locs:[ "x" ] [ w 0 "x" 2 2; w 1 "x" 1 1 ] in
  Alcotest.(check bool) "out-of-order write weak" false (Sequentiality.l_sequential t);
  Alcotest.(check (list int)) "weak position" [ 4 ] (Sequentiality.weak_positions t)

let test_weak_read () =
  (* a stale read is weak *)
  let t = mk ~locs:[ "x" ] [ w 0 "x" 1 1; w 0 "x" 2 2; r 1 "x" 1 1 ] in
  Alcotest.(check (list int)) "stale read weak" [ 5 ] (Sequentiality.weak_positions t)

let test_l_scoping () =
  let t = mk ~locs:[ "x"; "y" ] [ w 0 "x" 2 2; w 1 "x" 1 1; w 1 "y" 1 1 ] in
  Alcotest.(check bool) "weak on {x}" false (Sequentiality.l_sequential ~l:[ "x" ] t);
  Alcotest.(check bool) "sequential on {y}" true (Sequentiality.l_sequential ~l:[ "y" ] t)

let test_aborted_writes_ignored () =
  (* an aborted write with the maximal timestamp does not make a later
     read weak (the rollback intuition; see the Sequentiality comment) *)
  let t =
    mk ~locs:[ "x" ] [ b 0; w 0 "x" 1 1; a 0; r 1 "x" 0 0 ]
  in
  Alcotest.(check bool) "read after aborted write sequential" true
    (Sequentiality.l_sequential t)

let test_boundaries_always_sequential () =
  let t = mk ~locs:[ "x" ] [ b 0; w 0 "x" 1 1; c 0; q 1 "x" ] in
  List.iter
    (fun i ->
      if not (Action.is_memory (Trace.act t i)) then
        Alcotest.(check bool)
          (Fmt.str "position %d sequential" i)
          true
          (Sequentiality.l_sequential_action t i))
    (List.init (Trace.length t) Fun.id)

let test_contiguity_required () =
  (* sequential actions but an interleaved transaction *)
  let t =
    mk ~locs:[ "x"; "y" ]
      [ b 0; w 0 "x" 1 1; w 1 "y" 1 1; w 0 "x" 2 2; c 0; w 1 "y" 2 2 ]
  in
  Alcotest.(check bool) "actions sequential" true (Sequentiality.l_sequential t);
  Alcotest.(check bool) "but not transactionally sequential" false
    (Sequentiality.transactionally_l_sequential t)

let suite =
  [
    Alcotest.test_case "sequential trace" `Quick test_sequential_trace;
    Alcotest.test_case "weak writes" `Quick test_weak_write;
    Alcotest.test_case "weak reads" `Quick test_weak_read;
    Alcotest.test_case "spatial scoping" `Quick test_l_scoping;
    Alcotest.test_case "aborted writes ignored" `Quick test_aborted_writes_ignored;
    Alcotest.test_case "boundaries sequential" `Quick test_boundaries_always_sequential;
    Alcotest.test_case "contiguity required" `Quick test_contiguity_required;
  ]
