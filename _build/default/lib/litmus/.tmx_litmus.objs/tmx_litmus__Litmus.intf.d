lib/litmus/litmus.mli: Enumerate Fmt Model Outcome Tmx_core Tmx_exec Tmx_lang Trace
