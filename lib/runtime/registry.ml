(* Active-transaction registry, the basis of quiescence (§5).

   Each participating domain owns a slot recording a generation word and
   the in-flight transaction's declared footprint (the TVar ids it may
   access), if any.  A quiescence fence snapshots the slots and waits
   until every relevant in-flight transaction has resolved — the
   RCU-style grace period: every relevant transaction concurrent with
   the fence's start has resolved before the fence returns.

   The paper's fence is per-location (hQxi).  A transaction's future
   accesses are unknowable, so location-selective waiting is only sound
   for transactions that declared a footprint up front; undeclared
   transactions are always waited for.

   Two correctness points, both once bugs (see the regression tests in
   test/test_runtime.ml):

   - Slots are allocated per domain, never shared.  An earlier fixed
     table of 128 slots indexed by [domain mod 128] let a 129th domain
     alias an existing slot, so one domain's [exit] could clear
     another's in-flight state and a concurrent [quiesce] would return
     before that transaction resolved.  The table now grows without
     bound (copy-on-append under an atomic, so [quiesce] still
     snapshots it wait-free); a domain's slot outlives the domain,
     which is a deliberate small leak — dead domains are permanently
     idle and cost one array cell each.

   - A slot's state is a single generation word, so [quiesce] never
     pairs one transaction's liveness with another's footprint.  An
     earlier three-field slot ([seq]/[active]/[footprint], each its own
     atomic) published a new transaction in three steps, and a snapshot
     landing mid-[enter] could combine the new [active = true] with the
     previous transaction's footprint — wrongly *skipping* a
     transaction about to touch the fenced variable.  Now [state] is a
     counter whose parity is the liveness bit (odd = in flight;
     [state / 2] counts transactions begun on the slot).  [enter]
     writes the footprint while the word is even — no fence can
     attribute it to a live transaction yet — and then increments the
     word; [quiesce] re-reads the word after reading the footprint and
     trusts the pair only if the word did not move. *)

type slot = {
  state : int Atomic.t; (* generation word: odd = transaction in flight *)
  footprint : int list option Atomic.t; (* None: may touch anything *)
}

(* Every slot ever allocated, one per domain that has entered a
   transaction.  Copy-on-append keeps the array immutable so [quiesce]
   snapshots it with a single atomic read. *)
let slots : slot array Atomic.t = Atomic.make [||]

let register s =
  let rec go () =
    let old = Atomic.get slots in
    let arr = Array.make (Array.length old + 1) s in
    Array.blit old 0 arr 0 (Array.length old);
    if not (Atomic.compare_and_set slots old arr) then go ()
  in
  go ()

let key =
  Domain.DLS.new_key (fun () ->
      let s = { state = Atomic.make 0; footprint = Atomic.make None } in
      register s;
      s)

let my_slot () = Domain.DLS.get key

let registered_domains () = Array.length (Atomic.get slots)

let enter ?footprint () =
  let s = my_slot () in
  (* the word is even here, so no fence attributes this footprint to a
     live transaction until the increment below publishes both at once *)
  Atomic.set s.footprint footprint;
  Atomic.incr s.state

let exit () =
  let s = my_slot () in
  Atomic.incr s.state

let relevant ~var footprint =
  match (var, footprint) with
  | None, _ -> true (* global fence waits for everything *)
  | Some _, None -> true (* undeclared transactions may touch anything *)
  | Some v, Some ids -> List.mem v ids

(* Wait until every relevant transaction active at the call has
   resolved.  [var] is the id of the fenced TVar, when fencing a single
   location.  Domains registering after the snapshot began their
   transactions after the fence started, so the grace period rightly
   ignores them. *)
let quiesce ?var () =
  let snapshot = Atomic.get slots in
  Array.iter
    (fun s ->
      let g = Atomic.get s.state in
      if g land 1 = 1 then begin
        let footprint = Atomic.get s.footprint in
        (* the footprint belongs to generation [g] only while the word
           still reads [g]; if it moved, generation [g] has resolved and
           there is nothing to wait for *)
        if Atomic.get s.state = g && relevant ~var footprint then
          while Atomic.get s.state = g do
            Domain.cpu_relax ()
          done
      end)
    snapshot
