(* A bounded transactional FIFO queue: a ring buffer of TVars with
   transactional head/tail counters.  Operations compose with any other
   transactional code — a pop and a push on two queues can be one atomic
   step. *)

type t = { slots : Tvar.t array; head : Tvar.t; tail : Tvar.t }

let create ~capacity =
  if capacity <= 0 then invalid_arg "Tqueue.create: capacity must be positive";
  { slots = Array.init capacity (fun _ -> Tvar.make 0); head = Tvar.make 0; tail = Tvar.make 0 }

let capacity q = Array.length q.slots

let length tx q = Stm.read tx q.tail - Stm.read tx q.head
let is_empty tx q = length tx q = 0
let is_full tx q = length tx q = capacity q

let push tx q v =
  if is_full tx q then false
  else begin
    let t = Stm.read tx q.tail in
    Stm.write tx q.slots.(t mod capacity q) v;
    Stm.write tx q.tail (t + 1);
    true
  end

let pop tx q =
  if is_empty tx q then None
  else begin
    let h = Stm.read tx q.head in
    let v = Stm.read tx q.slots.(h mod capacity q) in
    Stm.write tx q.head (h + 1);
    Some v
  end

let peek tx q =
  if is_empty tx q then None
  else Some (Stm.read tx q.slots.(Stm.read tx q.head mod capacity q))

(* blocking-style helpers built on user abort + retry at the caller *)
let push_exn tx q v = if not (push tx q v) then Stm.abort tx
let pop_exn tx q = match pop tx q with Some v -> v | None -> Stm.abort tx
