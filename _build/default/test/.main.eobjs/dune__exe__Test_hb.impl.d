test/test_hb.ml: Alcotest Hb Lift Model Rel Tb Tmx_core
