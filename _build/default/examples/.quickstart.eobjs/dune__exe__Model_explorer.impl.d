examples/model_explorer.ml: Enumerate Fmt List Model Option Outcome Tmx_core Tmx_exec Tmx_lang Tmx_litmus
