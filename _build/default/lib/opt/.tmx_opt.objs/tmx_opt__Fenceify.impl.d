lib/opt/fenceify.ml: Ast Enumerate Footprint Hashtbl List Model Outcome String Tmx_core Tmx_exec Tmx_lang Verdict
