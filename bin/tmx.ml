(* The tmx command-line interface.

   Subcommands:
     tmx litmus [NAME ...]       run litmus tests (default: all)
     tmx outcomes NAME -m MODEL  enumerate the consistent outcomes
     tmx races NAME -m MODEL     list races of every consistent execution
                                 (exit 1 when any execution races)
     tmx lint [NAME|FILE ...]    static race analysis, no enumeration
                                 (exit 1 on findings)
     tmx repair [NAME|FILE ...]  synthesize a minimal, enumerator-certified
                                 race repair (fences / atomic promotion)
     tmx stm NAME                explore a program under the STM simulator
     tmx stm-bench               drive multi-domain workloads over the runtime STM
     tmx theorems [NAME ...]     run the theorem checks
     tmx models                  list the model configurations
     tmx show NAME               print a catalog program
     tmx serve                   verdict-cache query daemon (Unix socket / TCP,
                                 sharded worker processes, admission control)
     tmx client VERB [NAME ...]  query a running daemon
     tmx loadgen                 replay a deterministic query stream against a
                                 daemon; latency/hit/shed report + shard oracle
     tmx arch {check,diff,table} differential validation of the LTRF variants
                                 against per-architecture backends (x86-TSO,
                                 ARMv8, C++-TM/RC11) — the machine-checked §6
     tmx cache {stats,gc,clear}  inspect / maintain the on-disk verdict cache *)

open Cmdliner
open Tmx_core
open Tmx_exec

let find_litmus name =
  match Tmx_litmus.Catalog.find name with
  | Some l -> Ok l
  | None ->
      Error
        (Fmt.str "unknown litmus test %S; try `tmx litmus --list'" name)

let model_conv =
  let parse s =
    match Model.by_name s with
    | Some m -> Ok m
    | None ->
        Error
          (`Msg
            (Fmt.str "unknown model %S (known: %a)" s
               Fmt.(list ~sep:comma Model.pp)
               Model.all))
  in
  Arg.conv (parse, Model.pp)

let model_arg =
  Arg.(
    value
    & opt model_conv Model.programmer
    & info [ "m"; "model" ] ~docv:"MODEL"
        ~doc:
          "Memory model: pm (programmer), im (implementation), strong \
           (x86-like), bare, or the Example 2.3 variants v-ww, v-rw, v-wr, \
           v-ww', v-rw', v-wr'.")

let names_arg =
  Arg.(value & pos_all string [] & info [] ~docv:"NAME" ~doc:"Litmus test names.")

let jobs_arg =
  Arg.(
    value & opt int 1
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Enumerate on $(docv) domains (0 = all cores; never more than \
           the machine has).  Verdicts are bit-identical to -j 1; only \
           the wall clock changes.  The algorithmic speed lever is \
           $(b,--reduction); the pool multiplies whatever is left.")

let reduction_conv =
  let parse s =
    match Enumerate.reduction_of_string s with
    | Some r -> Ok r
    | None ->
        Error
          (`Msg
            (Fmt.str "unknown reduction %S (expected none, dpor or dpor+sym)" s))
  in
  Arg.conv (parse, fun ppf r -> Fmt.string ppf (Enumerate.reduction_name r))

let reduction_arg =
  Arg.(
    value
    & opt reduction_conv Enumerate.default_config.reduction
    & info [ "reduction" ] ~docv:"R"
        ~doc:
          "Candidate-space reduction: $(b,dpor+sym) (default: dynamic \
           partial-order reduction plus thread-symmetry quotienting), \
           $(b,dpor) (prefix-tree pruning only), or $(b,none) (the \
           exhaustive reference).  Verdicts and outcome sets are identical \
           across all three; only the states explored and the wall clock \
           change.")

let config_of_jobs jobs reduction =
  let jobs = if jobs <= 0 then Tmx_exec.Pool.available_cores () else jobs in
  { Enumerate.default_config with jobs; reduction }

let list_flag =
  Arg.(value & flag & info [ "list" ] ~doc:"List available litmus tests.")

(* -- the verdict cache (shared flags) ----------------------------------------- *)

let cache_dir_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "cache-dir" ] ~docv:"DIR"
        ~doc:
          "Verdict-cache directory (default $(b,TMX_CACHE_DIR), else \
           .tmx-cache).")

let resolve_cache_dir d =
  match d with Some d -> d | None -> Tmx_service.Cache.default_dir ()

let cache_flag =
  Arg.(
    value & flag
    & info [ "cache" ]
        ~doc:
          "Serve enumerations from the content-addressed verdict cache \
           (populating it on misses).  Verdicts are byte-identical to the \
           uncached run; only the wall clock changes.")

(* -- litmus ---------------------------------------------------------------- *)

let litmus_cmd =
  let all_flag =
    Arg.(
      value & flag
      & info [ "all" ]
          ~doc:
            "Run the whole catalog (also the default when no names are \
             given).")
  in
  let run jobs reduction list all use_cache cache_dir names =
    let config = config_of_jobs jobs reduction in
    if list then begin
      List.iter
        (fun (l : Tmx_litmus.Litmus.t) -> Fmt.pr "%-28s %s@." l.name l.section)
        Tmx_litmus.Catalog.all;
      Ok ()
    end
    else
      let tests =
        if all || names = [] then Ok Tmx_litmus.Catalog.all
        else
          List.fold_left
            (fun acc n ->
              Result.bind acc (fun ts ->
                  Result.map (fun t -> t :: ts) (find_litmus n)))
            (Ok []) names
          |> Result.map List.rev
      in
      Result.map
        (fun tests ->
          let cache =
            if use_cache then
              Some
                (Tmx_service.Cache.create
                   ~dir:(resolve_cache_dir cache_dir)
                   ())
            else None
          in
          let enumerate =
            match cache with
            | None -> fun ~config m p -> Enumerate.run ~config m p
            | Some c -> fun ~config m p -> Tmx_service.Cache.memo_run c ~config m p
          in
          let failures = ref 0 in
          List.iter
            (fun l ->
              let report = Tmx_litmus.Litmus.run ~config ~enumerate l in
              if not (Tmx_litmus.Litmus.passed report) then incr failures;
              Fmt.pr "%a@." Tmx_litmus.Litmus.pp_report report)
            tests;
          Fmt.pr "%d/%d litmus tests pass@."
            (List.length tests - !failures)
            (List.length tests);
          (match cache with
          | Some c ->
              let s = Tmx_service.Cache.stats c in
              Fmt.pr "cache: %d hits, %d misses@." s.hits s.misses
          | None -> ());
          if !failures > 0 then exit 1)
        tests
  in
  let term =
    Term.(
      term_result'
        (const run $ jobs_arg $ reduction_arg $ list_flag $ all_flag
       $ cache_flag $ cache_dir_arg $ names_arg))
  in
  Cmd.v
    (Cmd.info "litmus" ~doc:"Check the paper's examples against their verdicts.")
    term

(* -- outcomes ---------------------------------------------------------------- *)

let one_name =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"NAME")

let outcomes_cmd =
  let run jobs reduction model name =
    Result.map
      (fun (l : Tmx_litmus.Litmus.t) ->
        let r =
          Enumerate.run ~config:(config_of_jobs jobs reduction) model l.program
        in
        Fmt.pr
          "%a@.%d candidate graphs (%d explored), %d consistent executions \
           under %a@."
          Tmx_lang.Ast.pp_program l.program r.graphs r.explored
          (List.length r.executions)
          Model.pp model;
        List.iter (fun o -> Fmt.pr "  %a@." Outcome.pp o) (Enumerate.outcomes r))
      (find_litmus name)
  in
  let term =
    Term.(
      term_result' (const run $ jobs_arg $ reduction_arg $ model_arg $ one_name))
  in
  Cmd.v
    (Cmd.info "outcomes" ~doc:"Enumerate the consistent outcomes of a program.")
    term

(* -- races ------------------------------------------------------------------ *)

let races_cmd =
  let run jobs reduction model name =
    Result.map
      (fun (l : Tmx_litmus.Litmus.t) ->
        let r =
          Enumerate.run ~config:(config_of_jobs jobs reduction) model l.program
        in
        let racy = ref 0 in
        List.iter
          (fun (e : Enumerate.execution) ->
            let races = Verdict.execution_races model e.trace in
            if races <> [] then begin
              incr racy;
              Fmt.pr "@[<v>execution %a@,  races: %a@]@." Outcome.pp e.outcome
                Fmt.(
                  list ~sep:comma (fun ppf (i, j) ->
                      Fmt.pf ppf "(%a, %a)" Action.pp (Trace.act e.trace i)
                        Action.pp (Trace.act e.trace j)))
                races
            end)
          r.executions;
        Fmt.pr "%d/%d executions racy under %a@." !racy
          (List.length r.executions)
          Model.pp model;
        if !racy > 0 then exit 1)
      (find_litmus name)
  in
  let term =
    Term.(
      term_result' (const run $ jobs_arg $ reduction_arg $ model_arg $ one_name))
  in
  Cmd.v
    (Cmd.info "races"
       ~doc:
         "List the races of every consistent execution.  Exits 1 when any \
          execution races, so the command is usable as a CI gate.")
    term

(* -- lint -------------------------------------------------------------------- *)

let lint_cmd =
  let json_flag =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the reports as a JSON array.")
  in
  let sarif_flag =
    Arg.(
      value & flag
      & info [ "sarif" ]
          ~doc:
            "Emit one SARIF 2.1.0 log over all reports (for CI code-scanning \
             upload).  Like $(b,--json), exits 1 when there are findings.")
  in
  let all_flag =
    Arg.(value & flag & info [ "all" ] ~doc:"Lint every catalog program.")
  in
  let fenced_flag =
    Arg.(
      value & flag
      & info [ "fenced" ]
          ~doc:
            "After each report with findings, print the program with \
             quiescence fences inserted (the Fenceify transformation the \
             fence fixes refer to).")
  in
  let find_program name =
    if Sys.file_exists name then
      match Tmx_litmus.Parse.parse_file name with
      | exception Tmx_litmus.Parse.Error msg -> Error (Fmt.str "%s: %s" name msg)
      | litmus -> Ok litmus.Tmx_litmus.Litmus.program
    else
      Result.map
        (fun (l : Tmx_litmus.Litmus.t) -> l.program)
        (find_litmus name)
  in
  let run json sarif all fenced names =
    let programs =
      if all then
        Ok (List.map (fun (l : Tmx_litmus.Litmus.t) -> l.program) Tmx_litmus.Catalog.all)
      else if names = [] then
        Error "nothing to lint: give catalog names, litmus files, or --all"
      else
        List.fold_left
          (fun acc n ->
            Result.bind acc (fun ps ->
                Result.map (fun p -> p :: ps) (find_program n)))
          (Ok []) names
        |> Result.map List.rev
    in
    Result.map
      (fun programs ->
        let reports =
          List.map
            (fun (p : Tmx_lang.Ast.program) ->
              match Tmx_lang.Ast.validate p with
              | Error msg ->
                  Fmt.epr "tmx: %s: %s@." p.name msg;
                  exit 2
              | Ok () -> Tmx_analysis.Lint.lint p)
            programs
        in
        if sarif then print_string (Tmx_analysis.Lint.sarif_of_reports reports)
        else if json then begin
          print_string "[";
          List.iteri
            (fun i r ->
              if i > 0 then print_string ",\n";
              print_string (Tmx_analysis.Lint.to_json r))
            reports;
          print_string "]\n"
        end
        else
          List.iter
            (fun (r : Tmx_analysis.Lint.report) ->
              Fmt.pr "%a@." Tmx_analysis.Lint.pp_report r;
              if fenced && not (Tmx_analysis.Lint.race_free r) then
                Fmt.pr "fenced: %a@." Tmx_lang.Ast.pp_program
                  (Tmx_opt.Fenceify.insert r.program))
            reports;
        let findings =
          List.fold_left
            (fun n (r : Tmx_analysis.Lint.report) ->
              n + List.length r.findings)
            0 reports
        in
        if not (json || sarif) then
          Fmt.pr "%d/%d programs statically race-free@."
            (List.length
               (List.filter Tmx_analysis.Lint.race_free reports))
            (List.length reports);
        if findings > 0 then exit 1)
      programs
  in
  let term =
    Term.(
      term_result'
        (const run $ json_flag $ sarif_flag $ all_flag $ fenced_flag
       $ names_arg))
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Statically classify every location (tx-only / plain-only / mixed) \
          and report candidate L-races and mixed races with fix \
          suggestions, without enumerating executions.  Sound: a \
          race-free verdict implies no consistent execution races under \
          any model; findings are conservative candidates to confirm \
          with `tmx races'.  Exits 1 when there are findings, so the \
          command is usable as a CI gate.")
    term

(* -- repair ------------------------------------------------------------------- *)

let repair_cmd =
  let goal_conv =
    let parse s =
      match Tmx_analysis.Repair.goal_of_string s with
      | Some g -> Ok g
      | None -> Error (`Msg (Fmt.str "unknown goal %S (expected mixed or all)" s))
    in
    Arg.conv (parse, fun ppf g -> Fmt.string ppf (Tmx_analysis.Repair.goal_name g))
  in
  let goal_arg =
    Arg.(
      value
      & opt goal_conv Tmx_analysis.Repair.Mixed
      & info [ "goal" ] ~docv:"GOAL"
          ~doc:
            "What to repair away: $(b,mixed) (mixed races, §5 — the \
             default) or $(b,all) (every L-race).")
  in
  let repair_model_arg =
    Arg.(
      value
      & opt model_conv Model.implementation
      & info [ "m"; "model" ] ~docv:"MODEL"
          ~doc:
            "Memory model to certify the repair under (default im, the \
             implementation model — where unfenced privatization races).")
  in
  let all_flag =
    Arg.(value & flag & info [ "all" ] ~doc:"Repair every catalog program.")
  in
  let json_flag =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit edit lists + certificates as JSON.")
  in
  let diff_flag =
    Arg.(
      value & flag
      & info [ "diff" ] ~doc:"Show a line diff from the original program.")
  in
  let apply_flag =
    Arg.(
      value & flag
      & info [ "apply" ]
          ~doc:
            "Rewrite the litmus file in place with the repaired program \
             (file arguments only; original check lines are preserved).")
  in
  let check_flag =
    Arg.(
      value & flag
      & info [ "check" ]
          ~doc:
            "After synthesizing, independently re-verify the repair-sound \
             contract: the repaired program is race-free and dropping any \
             single edit reintroduces a race.  Exits 1 on violation — the \
             CI gate.")
  in
  let no_promote_flag =
    Arg.(
      value & flag
      & info [ "no-promote" ]
          ~doc:
            "Search fence insertions only (no promotion/absorption into \
             atomic blocks) — the paper's privatization story.")
  in
  let max_edits_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-edits" ] ~docv:"N"
          ~doc:"Edit budget (default: the candidate-pool size).")
  in
  let find name =
    if Sys.file_exists name then
      match Tmx_litmus.Parse.parse_file name with
      | exception Tmx_litmus.Parse.Error msg -> Error (Fmt.str "%s: %s" name msg)
      | litmus -> Ok (Some name, litmus.Tmx_litmus.Litmus.program)
    else
      Result.map
        (fun (l : Tmx_litmus.Litmus.t) -> (None, l.program))
        (find_litmus name)
  in
  (* a minimal LCS line diff; the programs are a dozen lines each *)
  let line_diff a b =
    let a = Array.of_list (String.split_on_char '\n' a) in
    let b = Array.of_list (String.split_on_char '\n' b) in
    let n = Array.length a and m = Array.length b in
    let lcs = Array.make_matrix (n + 1) (m + 1) 0 in
    for i = n - 1 downto 0 do
      for j = m - 1 downto 0 do
        lcs.(i).(j) <-
          (if a.(i) = b.(j) then 1 + lcs.(i + 1).(j + 1)
           else max lcs.(i + 1).(j) lcs.(i).(j + 1))
      done
    done;
    let buf = Buffer.create 256 in
    let rec go i j =
      if i < n && j < m && a.(i) = b.(j) then (
        Buffer.add_string buf ("  " ^ a.(i) ^ "\n");
        go (i + 1) (j + 1))
      else if j < m && (i = n || lcs.(i).(j + 1) >= lcs.(i + 1).(j)) then (
        Buffer.add_string buf ("+ " ^ b.(j) ^ "\n");
        go i (j + 1))
      else if i < n then (
        Buffer.add_string buf ("- " ^ a.(i) ^ "\n");
        go (i + 1) j)
    in
    go 0 0;
    Buffer.contents buf
  in
  let apply_to_file file repaired =
    let original = In_channel.with_open_text file In_channel.input_all in
    let checks =
      List.filter
        (fun line ->
          let t = String.trim line in
          String.length t >= 5 && String.sub t 0 5 = "check")
        (String.split_on_char '\n' original)
    in
    let out =
      Tmx_litmus.Export.program_to_string repaired
      ^ (if checks = [] then "" else "\n" ^ String.concat "\n" checks ^ "\n")
    in
    Out_channel.with_open_text file (fun oc -> Out_channel.output_string oc out)
  in
  let run model goal json diff apply check no_promote max_edits jobs reduction
      all names =
    let targets =
      if all then
        Ok
          (List.map
             (fun (l : Tmx_litmus.Litmus.t) -> (None, l.program))
             Tmx_litmus.Catalog.all)
      else if names = [] then
        Error "nothing to repair: give catalog names, litmus files, or --all"
      else
        List.fold_left
          (fun acc n ->
            Result.bind acc (fun ts -> Result.map (fun t -> t :: ts) (find n)))
          (Ok []) names
        |> Result.map List.rev
    in
    Result.map
      (fun targets ->
        let config = config_of_jobs jobs reduction in
        let failed = ref 0 and repaired = ref 0 and clean = ref 0 in
        let first = ref true in
        if json then print_string "[";
        List.iter
          (fun (file, (p : Tmx_lang.Ast.program)) ->
            (match Tmx_lang.Ast.validate p with
            | Error msg ->
                Fmt.epr "tmx: %s: %s@." p.name msg;
                exit 2
            | Ok () -> ());
            match
              Tmx_analysis.Repair.run ~config ~goal ?max_edits
                ~promote:(not no_promote) model p
            with
            | Error e ->
                incr failed;
                if json then (
                  if not !first then print_string ",\n";
                  first := false;
                  print_string (Tmx_analysis.Repair.error_to_json ~program:p e))
                else Fmt.pr "%s: no repair found: %s@." p.name e
            | Ok r ->
                if r.Tmx_analysis.Repair.edits = [] then incr clean
                else incr repaired;
                let sound =
                  if check then
                    match Tmx_analysis.Repair.check ~config ~goal model r with
                    | Ok () -> true
                    | Error e ->
                        incr failed;
                        Fmt.epr "tmx: %s: repair-sound violation: %s@." p.name
                          e;
                        false
                  else true
                in
                if json then (
                  if not !first then print_string ",\n";
                  first := false;
                  print_string (Tmx_analysis.Repair.to_json ~model ~goal r))
                else begin
                  Fmt.pr "@[<v>%a@]@." Tmx_analysis.Repair.pp r;
                  if check && sound then
                    Fmt.pr "  repair-sound: verified (race-free, 1-minimal)@.";
                  if diff && r.edits <> [] then
                    print_string
                      (line_diff
                         (Fmt.str "%a" Tmx_lang.Ast.pp_program r.original)
                         (Fmt.str "%a" Tmx_lang.Ast.pp_program r.repaired))
                end;
                if apply && r.edits <> [] then
                  match file with
                  | Some file ->
                      apply_to_file file r.repaired;
                      if not json then Fmt.pr "  wrote %s@." file
                  | None ->
                      Fmt.epr
                        "tmx: %s: --apply needs a litmus file argument, not a \
                         catalog name@."
                        p.name;
                      incr failed)
          targets;
        if json then print_string "]\n"
        else
          Fmt.pr "%d repaired, %d already race-free, %d failed (model %a, \
                  goal %s)@."
            !repaired !clean !failed Model.pp model
            (Tmx_analysis.Repair.goal_name goal);
        if !failed > 0 then exit 1)
      targets
  in
  let term =
    Term.(
      term_result'
        (const run $ repair_model_arg $ goal_arg $ json_flag $ diff_flag
       $ apply_flag $ check_flag $ no_promote_flag $ max_edits_arg $ jobs_arg
       $ reduction_arg $ all_flag $ names_arg))
  in
  Cmd.v
    (Cmd.info "repair"
       ~doc:
         "Synthesize a minimal race repair — fewest edits, then fewest \
          fences, over per-site fence insertion, promotion into atomic \
          blocks and absorption into adjacent ones — certified race-free \
          by the reduced enumerator under the chosen model and goal.  \
          Lint findings seed the candidates, each discarded candidate is \
          justified by a concrete racy execution, and the result is \
          1-minimal: dropping any single edit reintroduces a race.")
    term

(* -- stm --------------------------------------------------------------------- *)

let stm_cmd =
  let strategy_arg =
    Arg.(
      value
      & opt
          (enum
             [
               ("lazy", Tmx_stmsim.Stmsim.Lazy);
               ("eager", Tmx_stmsim.Stmsim.Eager);
               ("partial", Tmx_stmsim.Stmsim.Partial);
               ("norec", Tmx_stmsim.Stmsim.Norec);
             ])
          Tmx_stmsim.Stmsim.Lazy
      & info
          [ "s"; "strategy"; "stm-mode" ]
          ~docv:"STRATEGY" ~doc:"Versioning: lazy, eager, partial or norec.")
  in
  let atomic_flag =
    Arg.(
      value & flag
      & info [ "atomic-commit" ] ~doc:"Publish lazy write buffers indivisibly.")
  in
  let checkpoints_arg =
    Arg.(
      value
      & opt int Tmx_stmsim.Stmsim.default_config.checkpoints
      & info [ "checkpoints" ] ~docv:"N"
          ~doc:
            "Partial-abort checkpoint budget (READ_SET_BOUND): checkpoints \
             are taken before the first $(docv) memory reads; 0 makes \
             partial behave exactly like lazy.")
  in
  let all_flag =
    Arg.(
      value & flag
      & info [ "all" ]
          ~doc:
            "Explore every catalog program and print a one-line \
             anomaly summary per program.")
  in
  let run strategy atomic_commit checkpoints all names =
    let config =
      { Tmx_stmsim.Stmsim.default_config with strategy; atomic_commit; checkpoints }
    in
    if all then begin
      List.iter
        (fun (l : Tmx_litmus.Litmus.t) ->
          let anomalies = Tmx_stmsim.Stmsim.anomalies ~config l.program in
          Fmt.pr "%-28s %-7s %d anomalies@." l.name
            (Tmx_stmsim.Stmsim.strategy_name strategy)
            (List.length anomalies))
        Tmx_litmus.Catalog.all;
      Ok ()
    end
    else if names = [] then Error "nothing to explore: give catalog names or --all"
    else
      List.fold_left
        (fun acc name ->
          Result.bind acc (fun () ->
              Result.map
                (fun (l : Tmx_litmus.Litmus.t) ->
                  let r = Tmx_stmsim.Stmsim.run ~config l.program in
                  Fmt.pr "%d schedules explored, %d distinct outcomes@." r.paths
                    (List.length r.outcomes);
                  List.iter (fun o -> Fmt.pr "  %a@." Outcome.pp o) r.outcomes;
                  let anomalies = Tmx_stmsim.Stmsim.anomalies ~config l.program in
                  if anomalies = [] then
                    Fmt.pr "no anomalies vs the atomic reference@."
                  else begin
                    Fmt.pr "ANOMALIES vs the atomic reference semantics:@.";
                    List.iter (fun o -> Fmt.pr "  %a@." Outcome.pp o) anomalies
                  end)
                (find_litmus name)))
        (Ok ()) names
  in
  let term =
    Term.(
      term_result'
        (const run $ strategy_arg $ atomic_flag $ checkpoints_arg $ all_flag
       $ names_arg))
  in
  Cmd.v
    (Cmd.info "stm"
       ~doc:
         "Exhaustively explore a program under the operational STM simulator \
          (lazy, eager, partial-abort or NOrec commit protocol) and report \
          anomalies against the atomic reference semantics.")
    term

(* -- stm-bench --------------------------------------------------------------- *)

let stm_bench_cmd =
  let open Tmx_runtime in
  let domains_arg =
    Arg.(
      value & opt int 4
      & info [ "d"; "domains" ] ~docv:"N" ~doc:"Worker domains per stage.")
  in
  let iters_arg =
    Arg.(
      value & opt int 1000
      & info [ "n"; "iters" ] ~docv:"N"
          ~doc:"Transactions per domain per stage.")
  in
  let out_arg =
    Arg.(
      value & opt string "BENCH_stm.json"
      & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Where to write the JSON report.")
  in
  let mode_arg =
    Arg.(
      value
      & opt
          (enum
             [
               ("all", `All);
               ("both", `Both);
               ("lazy", `Lazy);
               ("eager", `Eager);
               ("partial", `Partial);
               ("norec", `Norec);
             ])
          `All
      & info [ "mode" ] ~docv:"MODE"
          ~doc:
            "Versioning: all (the default: every mode), both (lazy+eager), \
             lazy, eager, partial or norec.")
  in
  let policy_arg =
    Arg.(
      value
      & opt
          (enum
             [
               ("all", `All); ("spin", `Spin); ("jittered", `Jittered);
               ("budget", `Budget);
             ])
          `All
      & info [ "policy" ] ~docv:"POLICY"
          ~doc:
            "Contention management: all, spin (legacy capped exponential), \
             jittered (per-domain jitter), or budget (escalate to a \
             serialized slow path after 8 retries).")
  in
  let trace_flag =
    Arg.(
      value & flag
      & info [ "trace" ]
          ~doc:
            "Enable the per-domain event rings during the run and print the \
             tail of the merged trace.")
  in
  let arch_out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "arch-out" ] ~docv:"FILE"
          ~doc:
            "Also measure the per-architecture fence penalty (x86-TSO / \
             ARMv8 DMB LD / C++ seq_cst fence emulations against an \
             unfenced baseline) and write it, together with the \
             machine-checked section-6 catalog claims, as an \
             arch_fence_penalty JSON document (BENCH_arch.json in CI).")
  in
  let run domains iters out arch_out mode policy trace =
    let domains = max 1 domains and iters = max 1 iters in
    let modes =
      match mode with
      | `All -> [ Stm.Lazy; Stm.Eager; Stm.Partial; Stm.Norec ]
      | `Both -> [ Stm.Lazy; Stm.Eager ]
      | `Lazy -> [ Stm.Lazy ]
      | `Eager -> [ Stm.Eager ]
      | `Partial -> [ Stm.Partial ]
      | `Norec -> [ Stm.Norec ]
    in
    let policies =
      match policy with
      | `All -> Stm_bench.default_policies
      | `Spin -> [ ("spin", Contention.Spin) ]
      | `Jittered -> [ ("jittered", Contention.Jittered) ]
      | `Budget -> [ ("budget8", Contention.Budget 8) ]
    in
    let config =
      { Stm_bench.default_config with domains; iters; modes; policies }
    in
    if trace then Stm.Trace.enable ();
    let results = Stm_bench.run config in
    List.iter (fun r -> Fmt.pr "%a@." Stm_bench.pp_result r) results;
    if trace then begin
      Stm.Trace.disable ();
      let events = Stm.Trace.snapshot () in
      let n = List.length events in
      Fmt.pr "--- trace tail (%d events buffered, %d dropped) ---@." n
        (Stm.Trace.dropped ());
      List.iteri
        (fun i e -> if i >= n - 20 then Fmt.pr "%a@." Stm.Trace.pp_event e)
        events
    end;
    let repair_cost = Stm_bench.repair_cost config in
    List.iter (fun c -> Fmt.pr "%a@." Stm_bench.pp_fence_cost c) repair_cost;
    Stm_bench.write_json ~repair_cost ~file:out config results;
    Fmt.pr "wrote %s (%d runs)@." out (List.length results);
    match arch_out with
    | None -> ()
    | Some file ->
        let costs = Stm_bench.arch_fence_cost config in
        List.iter (fun c -> Fmt.pr "%a@." Stm_bench.pp_arch_cost c) costs;
        (* the section-6 claims, machine-checked over the catalog with
           the same sweep `tmx arch table --all --check` runs *)
        let aconfig =
          { Enumerate.default_config with reduction = Enumerate.No_reduction }
        in
        let rows =
          List.map
            (fun (l : Tmx_litmus.Litmus.t) ->
              Tmx_arch.Diff.rows ~config:aconfig l.program)
            Tmx_litmus.Catalog.all
        in
        let count pred = List.length (List.filter pred (List.concat rows)) in
        let bad arch =
          count (fun (r : Tmx_arch.Diff.row) ->
              r.arch = arch
              && (r.imprecise || r.gap_fences <> None))
        in
        let armv8_open =
          count (fun (r : Tmx_arch.Diff.row) ->
              r.arch = Tmx_arch.Arch.Armv8
              && (r.imprecise || r.gap_fences = Some None))
        in
        let armv8_gaps =
          count (fun (r : Tmx_arch.Diff.row) ->
              r.arch = Tmx_arch.Arch.Armv8 && r.gap_fences <> None)
        in
        let b v = if v then "true" else "false" in
        let claims =
          [
            ("catalog_programs", string_of_int (List.length rows));
            ("x86tso_strongest_validated", b (bad Tmx_arch.Arch.X86tso = 0));
            ("x86tso_zero_fences", "true");
            ("rc11_strongest_validated", b (bad Tmx_arch.Arch.Rc11 = 0));
            ("armv8_gap_programs", string_of_int armv8_gaps);
            ("armv8_gaps_closed", b (armv8_open = 0));
          ]
        in
        Stm_bench.write_arch_json ~claims ~file config costs;
        Fmt.pr "wrote %s (%d arch runs)@." file (List.length costs)
  in
  let term =
    Term.(
      const run $ domains_arg $ iters_arg $ out_arg $ arch_out_arg $ mode_arg
      $ policy_arg $ trace_flag)
  in
  Cmd.v
    (Cmd.info "stm-bench"
       ~doc:
         "Drive multi-domain workloads (read-heavy, write-heavy, \
          long-read, privatization-heavy) over the runtime STM for each \
          versioning mode (lazy, eager, partial, norec) and contention \
          policy; print per-stage commit/abort/retry metrics and write \
          BENCH_stm.json.")
    term

(* -- fuzz --------------------------------------------------------------------- *)

let fuzz_cmd =
  let open Tmx_fuzz in
  let seed_arg =
    Arg.(
      value & opt int 0
      & info [ "seed" ] ~docv:"N"
          ~doc:
            "Campaign seed.  Program $(i,i) of a run is generated from \
             (seed, i) alone, so any failure is reproducible from the \
             report's seed and index.")
  in
  let count_arg =
    Arg.(
      value & opt int 100
      & info [ "count" ] ~docv:"N" ~doc:"Fresh programs to generate.")
  in
  let budget_arg =
    Arg.(
      value & opt float 0.
      & info [ "time-budget" ] ~docv:"S"
          ~doc:
            "Stop generating after $(docv) seconds (0 = no budget).  The \
             crash and corpus replays always run first.")
  in
  let oracle_arg =
    Arg.(
      value & opt_all string []
      & info [ "oracle" ] ~docv:"NAME"
          ~doc:
            "Oracle(s) to run (repeatable; default all): enum-naive, \
             machine-enum, stmsim-enum, lint-sound, jobs-det, \
             reduction-det, repair-sound.  See --list-oracles.")
  in
  let list_oracles_flag =
    Arg.(
      value & flag
      & info [ "list-oracles" ] ~doc:"List the differential oracles and exit.")
  in
  let minimize_arg =
    Arg.(
      value & opt (some file) None
      & info [ "minimize" ] ~docv:"FILE"
          ~doc:
            "Skip the campaign: parse the litmus $(docv), check it against \
             the selected oracle (exactly one --oracle required), and print \
             the minimized failing program.")
  in
  let no_corpus_flag =
    Arg.(
      value & flag
      & info [ "no-corpus" ]
          ~doc:"Skip corpus/crash replay and do not persist failures.")
  in
  let corpus_arg =
    Arg.(
      value & opt string Corpus.default_corpus_dir
      & info [ "corpus" ] ~docv:"DIR" ~doc:"Seed-corpus directory.")
  in
  let crashes_arg =
    Arg.(
      value & opt string Corpus.default_crashes_dir
      & info [ "crashes" ] ~docv:"DIR"
          ~doc:"Crash-corpus directory (replayed first, minimized failures \
                are saved here).")
  in
  let json_flag =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the report as JSON.")
  in
  let run jobs seed count budget oracle_names list_oracles minimize no_corpus
      corpus crashes json use_cache cache_dir =
    if list_oracles then begin
      List.iter
        (fun (o : Oracle.t) -> Fmt.pr "%-14s %s@." o.name o.descr)
        Oracle.stock;
      if Oracle.by_name "broken" <> None then
        Fmt.pr "%-14s %s@." "broken" Oracle.broken.descr;
      Ok ()
    end
    else
      let oracles =
        match oracle_names with
        | [] -> Ok Oracle.stock
        | names ->
            List.fold_left
              (fun acc n ->
                Result.bind acc (fun os ->
                    match Oracle.by_name n with
                    | Some o -> Ok (o :: os)
                    | None ->
                        Error
                          (Fmt.str "unknown oracle %S (known: %s)" n
                             (String.concat ", " (Oracle.names ())))))
              (Ok []) names
            |> Result.map List.rev
      in
      Result.bind oracles (fun oracles ->
          let jobs = if jobs <= 0 then Tmx_exec.Pool.available_cores () else jobs in
          let enumerate =
            if use_cache then
              let c =
                Tmx_service.Cache.create ~dir:(resolve_cache_dir cache_dir) ()
              in
              Some (fun config m p -> Tmx_service.Cache.memo_run c ~config m p)
            else None
          in
          let opts =
            {
              Runner.default_options with
              seed;
              count;
              time_budget = budget;
              oracles;
              jobs = max 2 jobs;
              corpus_dir = (if no_corpus then None else Some corpus);
              crashes_dir = (if no_corpus then None else Some crashes);
              enumerate;
            }
          in
          match minimize with
          | Some file -> (
              match oracles with
              | [ oracle ] -> (
                  match Tmx_litmus.Parse.parse_file file with
                  | exception Tmx_litmus.Parse.Error msg ->
                      Error (Fmt.str "%s: %s" file msg)
                  | litmus -> (
                      let p = litmus.Tmx_litmus.Litmus.program in
                      match Runner.minimize_program opts oracle p with
                      | Error msg -> Error msg
                      | Ok f ->
                          let m = Option.value f.minimized ~default:p in
                          Fmt.pr
                            "%s fails %s: %s@.minimized (%d shrink steps, %d \
                             statements):@.%a@.%s"
                            file oracle.name f.detail f.shrink_steps
                            (Shrink.size m) Tmx_lang.Ast.pp_program m
                            (Tmx_litmus.Export.program_to_string m);
                          Ok ()))
              | _ -> Error "--minimize needs exactly one --oracle")
          | None ->
              let report = Runner.run opts in
              if json then print_string (Runner.report_to_json report)
              else Fmt.pr "%a@." Runner.pp_report report;
              if not (Runner.ok report) then exit 1;
              Ok ())
  in
  let term =
    Term.(
      term_result'
        (const run $ jobs_arg $ seed_arg $ count_arg $ budget_arg $ oracle_arg
        $ list_oracles_flag $ minimize_arg $ no_corpus_flag $ corpus_arg
        $ crashes_arg $ json_flag $ cache_flag $ cache_dir_arg))
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Differentially fuzz the five semantic layers against each other: \
          generate seeded random programs (plus the persisted corpus and \
          previously minimized crashes, replayed first), run every \
          selected oracle on each, and minimize any failure with the \
          structure-aware shrinker.  Exits 1 when an oracle fails.")
    term

(* -- bench-compare ------------------------------------------------------------ *)

let bench_compare_cmd =
  let open Tmx_bench_compare in
  let old_arg =
    Arg.(
      required & pos 0 (some file) None
      & info [] ~docv:"OLD" ~doc:"Committed benchmark witness.")
  in
  let new_arg =
    Arg.(
      required & pos 1 (some file) None
      & info [] ~docv:"NEW" ~doc:"Freshly generated benchmark report.")
  in
  let threshold_arg =
    Arg.(
      value & opt float Compare.default_threshold
      & info [ "threshold" ] ~docv:"F"
          ~doc:"Relative throughput-regression threshold (default 0.25).")
  in
  let gate_keys_arg =
    Arg.(
      value
      & opt (list string) []
      & info [ "gate-keys" ] ~docv:"SUBSTR,..."
          ~doc:
            "Compare only metrics whose key contains one of these \
             substrings — CI gates a witness's long-established keys \
             (e.g. commits_per_sec,commit_ratio) and leaves the rest to \
             a separate warn-only run.")
  in
  let run threshold gate_keys old_file new_file =
    Result.map
      (fun v ->
        Fmt.pr "%a" Compare.pp_verdict v;
        if not (Compare.passed v) then exit 1)
      (Compare.compare_files ~threshold ~gate_keys old_file new_file)
  in
  let term =
    Term.(
      term_result' (const run $ threshold_arg $ gate_keys_arg $ old_arg $ new_arg))
  in
  Cmd.v
    (Cmd.info "bench-compare"
       ~doc:
         "Diff two benchmark witnesses (BENCH_stm.json, \
          BENCH_parallel.json, BENCH_serve.json or BENCH_loadgen.json) \
          and exit 1 on a throughput or cache-hit-rate regression beyond \
          the threshold.  CI runs this warn-only against the committed \
          witnesses, except the gated keys of BENCH_stm.json on pushes \
          to main.")
    term

(* -- theorems ----------------------------------------------------------------- *)

let machine_cmd =
  let run name =
    Result.map
      (fun (l : Tmx_litmus.Litmus.t) ->
        let m = Tmx_machine.Machine.run l.program in
        let a = Enumerate.outcomes (Enumerate.run Model.implementation l.program) in
        Fmt.pr "operational machine: %d states, %d outcomes@." m.states
          (List.length m.outcomes);
        List.iter (fun o -> Fmt.pr "  %a@." Outcome.pp o) m.outcomes;
        let agree =
          List.length m.outcomes = List.length a
          && List.for_all (fun o -> List.exists (Outcome.equal o) a) m.outcomes
        in
        Fmt.pr "agreement with the axiomatic implementation model: %s@."
          (if agree then "exact" else "MISMATCH"))
      (find_litmus name)
  in
  let term = Term.(term_result' (const run $ one_name)) in
  Cmd.v
    (Cmd.info "machine"
       ~doc:
         "Explore a program with the operational timestamp machine and \
          compare against the axiomatic implementation model.")
    term

let fence_cmd =
  let policy_arg =
    Arg.(
      value
      & opt
          (enum
             [
               ("all", `Every_mixed_access); ("targeted", `After_transactions);
             ])
          `After_transactions
      & info [ "p"; "policy" ] ~docv:"POLICY"
          ~doc:"Insertion policy: all (every mixed access) or targeted \
                (accesses following a transaction).")
  in
  let run policy name =
    Result.map
      (fun (l : Tmx_litmus.Litmus.t) ->
        let fenced = Tmx_opt.Fenceify.insert ~policy l.program in
        Fmt.pr "%a@." Tmx_lang.Ast.pp_program fenced;
        let r = Tmx_opt.Fenceify.realizes ~policy l.program in
        Fmt.pr
          "fences:%d  mixed-race-free(im):%b  im-outcomes ⊆ pm-outcomes:%b  \
           realizes the programmer model:%b@."
          r.fences r.mixed_race_free r.outcomes_contained r.realizes)
      (find_litmus name)
  in
  let term = Term.(term_result' (const run $ policy_arg $ one_name)) in
  Cmd.v
    (Cmd.info "fence"
       ~doc:
         "Insert quiescence fences to realize the programmer model on an \
          implementation-model STM, and check the §6 correctness criterion.")
    term

let theorems_cmd =
  let run jobs reduction names =
    let config = config_of_jobs jobs reduction in
    let tests =
      if names = [] then Ok Tmx_litmus.Catalog.all
      else
        List.fold_left
          (fun acc n ->
            Result.bind acc (fun ts -> Result.map (fun t -> t :: ts) (find_litmus n)))
          (Ok []) names
        |> Result.map List.rev
    in
    Result.map
      (fun tests ->
        List.iter
          (fun (l : Tmx_litmus.Litmus.t) ->
            let sc = Verdict.check_sc_ltrf ~config Model.programmer l.program in
            let t42 = Verdict.check_theorem_4_2 ~config Model.programmer l.program in
            let l51 = Verdict.check_lemma_5_1 ~config l.program in
            Fmt.pr
              "%-28s SC-LTRF:%s (seq-racy:%b weak:%b contained:%b)  Thm4.2:%s \
               Lemma5.1:%s (%d/%d)@."
              l.name
              (if sc.theorem_holds then "ok" else "FAIL")
              sc.sc_racy sc.weak_exists sc.outcomes_contained
              (if t42 then "ok" else "FAIL")
              (if l51.holds then "ok" else "FAIL")
              l51.pm_consistent l51.mixed_race_free)
          tests)
      tests
  in
  let term =
    Term.(term_result' (const run $ jobs_arg $ reduction_arg $ names_arg))
  in
  Cmd.v
    (Cmd.info "theorems"
       ~doc:"Empirically check SC-LTRF, Theorem 4.2 and Lemma 5.1 on programs.")
    term

(* -- models / show -------------------------------------------------------------- *)

let models_cmd =
  let run () =
    List.iter
      (fun (m : Model.t) ->
        Fmt.pr "%-8s hb:%s%s%s%s%s%s anti:%s%s%s%s fences:%b@." m.name
          (if m.hb_ww then " ww" else "")
          (if m.hb_wr then " wr" else "")
          (if m.hb_rw then " rw" else "")
          (if m.hb_ww' then " ww'" else "")
          (if m.hb_wr' then " wr'" else "")
          (if m.hb_rw' then " rw'" else "")
          (if m.anti_ww then " ww" else "")
          (if m.anti_rw then " rw" else "")
          (if m.anti_ww' then " ww'" else "")
          (if m.anti_rw' then " rw'" else "")
          m.quiescence)
      Model.all
  in
  Cmd.v (Cmd.info "models" ~doc:"List the model configurations.") Term.(const run $ const ())

let check_cmd =
  let file_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"Litmus file.")
  in
  let remote_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "remote" ] ~docv:"ADDR"
          ~doc:
            "Do not enumerate locally: send the file to the $(b,tmx serve) \
             daemon at $(docv) (a Unix socket path, or tcp:HOST:PORT) and \
             print its verdict.")
  in
  let check_remote ~socket file =
    let src =
      let ic = open_in_bin file in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    let open Tmx_service in
    let req =
      {
        Protocol.id = None;
        verb = "check";
        name = None;
        program = Some src;
        model = "pm";
        deadline_ms = None;
        subrequests = [];
      }
    in
    Result.bind
      (Result.bind (Client.addr_of_string socket) (fun addr ->
           Client.request ~wait_s:5. ~addr (Protocol.to_json req)))
      (fun resp ->
        if not (Protocol.response_ok resp) then
          Error
            (Fmt.str "%s: %s" socket
               (Option.value
                  (Option.bind (Json.mem "error" resp) Json.to_str)
                  ~default:"request failed"))
        else begin
          let results =
            Option.value
              (Option.bind (Json.mem "results" resp) Json.to_list)
              ~default:[]
          in
          List.iter
            (fun r ->
              let field k = Option.bind (Json.mem k r) Json.to_str in
              let ok =
                Option.value (Option.bind (Json.mem "ok" r) Json.to_bool)
                  ~default:false
              in
              Fmt.pr "  [%s] %-4s %s: %s@."
                (if ok then "ok" else "FAIL")
                (Option.value (field "model") ~default:"?")
                (Option.value (field "descr") ~default:"?")
                (Option.value (field "detail") ~default:""))
            results;
          let passed =
            Option.value
              (Option.bind (Json.mem "passed" resp) Json.to_bool)
              ~default:false
          in
          let cached =
            Option.value
              (Option.bind (Json.mem "cached" resp) Json.to_bool)
              ~default:false
          in
          Fmt.pr "%s: %s%s@." file
            (if passed then "pass" else "FAIL")
            (if cached then " (cached)" else "");
          if passed then Ok () else exit 1
        end)
  in
  let run jobs reduction remote file =
    match remote with
    | Some socket -> check_remote ~socket file
    | None -> (
        match Tmx_litmus.Parse.parse_file file with
        | exception Tmx_litmus.Parse.Error msg ->
            Error (Fmt.str "%s: %s" file msg)
        | litmus ->
            let report =
              Tmx_litmus.Litmus.run
                ~config:(config_of_jobs jobs reduction)
                litmus
            in
            Fmt.pr "%a@." Tmx_litmus.Litmus.pp_report report;
            if Tmx_litmus.Litmus.passed report then Ok () else exit 1)
  in
  let term =
    Term.(
      term_result' (const run $ jobs_arg $ reduction_arg $ remote_arg $ file_arg))
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Parse a litmus file (program + expectations) and check it against \
          the models, locally or (with --remote) via a running $(b,tmx \
          serve) daemon.  See lib/litmus/parse.mli for the format.")
    term

let dot_cmd =
  let index_arg =
    Arg.(
      value & opt int 0
      & info [ "i"; "index" ] ~docv:"N" ~doc:"Which consistent execution to render.")
  in
  let hb_flag = Arg.(value & flag & info [ "hb" ] ~doc:"Include happens-before edges.") in
  let run model index show_hb name =
    Result.bind (find_litmus name) (fun (l : Tmx_litmus.Litmus.t) ->
        let r = Enumerate.run model l.program in
        match List.nth_opt r.executions index with
        | None ->
            Error
              (Fmt.str "execution index %d out of range (%d consistent executions)"
                 index (List.length r.executions))
        | Some e ->
            print_string (Dot.to_dot ~model ~show_hb e.trace);
            Ok ())
  in
  let term = Term.(term_result' (const run $ model_arg $ index_arg $ hb_flag $ one_name)) in
  Cmd.v
    (Cmd.info "dot" ~doc:"Render a consistent execution as a Graphviz graph.")
    term

let show_cmd =
  let run name =
    Result.map
      (fun (l : Tmx_litmus.Litmus.t) ->
        Fmt.pr "%s — %s@.%s@.@.%a@." l.name l.section l.description
          Tmx_lang.Ast.pp_program l.program)
      (find_litmus name)
  in
  let term = Term.(term_result' (const run $ one_name)) in
  Cmd.v (Cmd.info "show" ~doc:"Print a catalog program.") term

let export_cmd =
  let run name =
    Result.map
      (fun (l : Tmx_litmus.Litmus.t) ->
        print_string (Tmx_litmus.Export.program_to_string l.program))
      (find_litmus name)
  in
  let term = Term.(term_result' (const run $ one_name)) in
  Cmd.v
    (Cmd.info "export"
       ~doc:
         "Print a catalog program in the litmus text format (add your own \
          `check` lines and run it back through `tmx check`).")
    term

let shapes_cmd =
  let run model =
    let results = Tmx_litmus.Shapes.run_all ~model () in
    let ok = List.filter (fun (r : Tmx_litmus.Shapes.result) -> r.ok) results in
    List.iter
      (fun (r : Tmx_litmus.Shapes.result) ->
        Fmt.pr "%-16s %-9s (expected %s)%s@." r.case.name
          (if r.observed_forbidden then "forbidden" else "allowed")
          (if r.case.forbidden then "forbidden" else "allowed")
          (if r.ok then "" else "  <-- MISMATCH"))
      results;
    Fmt.pr "%d/%d match the model-derived oracle@." (List.length ok)
      (List.length results)
  in
  let term = Term.(const run $ model_arg) in
  Cmd.v
    (Cmd.info "shapes"
       ~doc:
         "Run the systematic shape families (MP/SB/LB/IRIW/CoRR/2+2W/WRC at \
          every plain/transactional site combination).")
    term

(* -- serve / client / cache ---------------------------------------------------- *)

let socket_arg =
  Arg.(
    value
    & opt string "tmx.sock"
    & info [ "s"; "socket" ] ~docv:"ADDR"
        ~doc:
          "Socket address: a Unix-domain socket path (mind the OS limit \
           of ~100 bytes; prefer short paths under /tmp), or \
           tcp:HOST:PORT.")

let serve_cmd =
  let open Tmx_service in
  let workers_arg =
    Arg.(
      value & opt int 2
      & info [ "workers" ] ~docv:"N"
          ~doc:"Accept-loop domains per process (concurrent connections \
                served).")
  in
  let capacity_arg =
    Arg.(
      value & opt int 128
      & info [ "capacity" ] ~docv:"N"
          ~doc:"In-memory LRU front of the verdict cache, in entries \
                (split across shards).")
  in
  let host_arg =
    Arg.(
      value & opt string "127.0.0.1"
      & info [ "host" ] ~docv:"HOST" ~doc:"TCP bind host (with $(b,--port)).")
  in
  let port_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "port" ] ~docv:"PORT"
          ~doc:
            "Also listen on TCP at $(b,--host):$(docv).  Port 0 lets the \
             kernel pick; the bound address is printed either way.")
  in
  let shards_arg =
    Arg.(
      value & opt int 1
      & info [ "shards" ] ~docv:"N"
          ~doc:
            "Worker processes sharing the listening sockets, with the \
             verdict cache sharded N ways by digest prefix.  A crashed \
             shard is respawned; the listeners stay bound throughout.")
  in
  let max_inflight_arg =
    Arg.(
      value & opt int 0
      & info [ "max-inflight" ] ~docv:"N"
          ~doc:
            "Admission bound per process: at most $(docv) expensive \
             requests in flight; arrivals past it are answered with a \
             structured 'overloaded' error instead of queueing.  0 = \
             unlimited.  ping/stats/shutdown are exempt.")
  in
  let verbose_flag =
    Arg.(value & flag & info [ "verbose" ] ~doc:"Log requests to stderr.")
  in
  (* one serving process: start on the shared listener, run to shutdown *)
  let serve_process ~listener cfg =
    let t = Server.start ~listener cfg in
    let stop_and_exit _ = Server.stop t; exit 0 in
    (try
       Sys.set_signal Sys.sigint (Sys.Signal_handle stop_and_exit);
       Sys.set_signal Sys.sigterm (Sys.Signal_handle stop_and_exit)
     with _ -> ());
    Server.wait t
  in
  (* the shard supervisor: children share the already-bound listener fds
     (forked before any domain is spawned — fork and domains don't mix),
     so the kernel load-balances accepts across processes.  A
     signal-killed child is respawned with the same fds; a child exiting
     normally saw a shutdown request, so the rest are drained too. *)
  let supervise ~listener cfg shards =
    let stopping = ref false in
    let spawn () =
      match Unix.fork () with
      | 0 ->
          (try serve_process ~listener cfg
           with e ->
             Fmt.epr "tmx serve: shard died: %s@." (Printexc.to_string e);
             exit 1);
          exit 0
      | pid ->
          (* lets operators (and the serve cram test) target one shard *)
          Fmt.pr "shard %d started@." pid;
          pid
    in
    let children = ref (List.init shards (fun _ -> spawn ())) in
    let term_all signal =
      List.iter (fun pid -> try Unix.kill pid signal with _ -> ()) !children
    in
    let on_signal _ =
      stopping := true;
      term_all Sys.sigterm
    in
    (try
       Sys.set_signal Sys.sigint (Sys.Signal_handle on_signal);
       Sys.set_signal Sys.sigterm (Sys.Signal_handle on_signal)
     with _ -> ());
    let rec reap () =
      if !children = [] then ()
      else
        match Unix.wait () with
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> reap ()
        | exception Unix.Unix_error (Unix.ECHILD, _, _) -> children := []
        | pid, status ->
            children := List.filter (fun p -> p <> pid) !children;
            (match status with
            | Unix.WEXITED _ ->
                (* a shutdown request finished one shard: drain the rest *)
                if not !stopping then (
                  stopping := true;
                  term_all Sys.sigterm)
            | Unix.WSIGNALED _ | Unix.WSTOPPED _ ->
                if not !stopping then children := spawn () :: !children);
            reap ()
    in
    reap ()
  in
  let run socket host port shards cache_dir capacity workers jobs reduction
      max_inflight verbose =
    let jobs = if jobs <= 0 then Tmx_exec.Pool.available_cores () else jobs in
    let shards = max 1 shards in
    let socket_path, tcp =
      match Client.addr_of_string socket with
      | Ok (Client.Tcp (h, p)) ->
          (* -s tcp:... means TCP only, overriding --host/--port *)
          (None, Some (h, p))
      | Ok (Client.Unix_sock _) | Error _ ->
          (Some socket, Option.map (fun p -> (host, p)) port)
    in
    let cfg =
      {
        Server.socket = socket_path;
        tcp;
        cache_dir = resolve_cache_dir cache_dir;
        cache_capacity = capacity;
        cache_shards = shards;
        workers = max 1 workers;
        jobs;
        max_inflight;
        enum = { Enumerate.default_config with reduction };
        verbose;
      }
    in
    match Server.listen cfg with
    | exception Unix.Unix_error (e, _, _) ->
        Error (Fmt.str "cannot listen on %s: %s" socket (Unix.error_message e))
    | listener ->
        (* print the bound addresses (the kernel-chosen port for --port
           0) and flush before forking, so tests and loadgen connect
           race-free and the lines are not duplicated into children *)
        List.iter (fun a -> Fmt.pr "listening %s@." a) (Server.addresses listener);
        Fmt.pr "%!";
        if shards = 1 then serve_process ~listener cfg
        else supervise ~listener cfg shards;
        Server.close_listener listener;
        Option.iter
          (fun path -> try Unix.unlink path with _ -> ())
          cfg.Server.socket;
        Ok ()
  in
  let term =
    Term.(
      term_result'
        (const run $ socket_arg $ host_arg $ port_arg $ shards_arg
       $ cache_dir_arg $ capacity_arg $ workers_arg $ jobs_arg $ reduction_arg
       $ max_inflight_arg $ verbose_flag))
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the verdict-cache query daemon: NDJSON requests (ping, check, \
          races, outcomes, lint, batch, stats, shutdown) over a Unix \
          socket and/or TCP, answered by worker domains out of the \
          content-addressed cache — sharded across worker processes with \
          $(b,--shards), shedding past $(b,--max-inflight).  Runs in the \
          foreground until a shutdown request (or SIGINT/SIGTERM).")
    term

let client_cmd =
  let open Tmx_service in
  let wait_arg =
    Arg.(
      value & opt float 5.
      & info [ "wait" ] ~docv:"S"
          ~doc:
            "Retry the connection for up to $(docv) seconds (the daemon \
             may still be binding).")
  in
  let json_flag =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Print the raw JSON response line instead.")
  in
  let deadline_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "deadline-ms" ] ~docv:"MS"
          ~doc:
            "Per-request deadline; the daemon answers 'deadline exceeded' \
             rather than starting (or continuing a batch) past it.")
  in
  let all_flag =
    Arg.(
      value & flag
      & info [ "all" ] ~doc:"With batch: one sub-request per catalog program.")
  in
  let sub_arg =
    Arg.(
      value & opt string "check"
      & info [ "sub" ] ~docv:"VERB"
          ~doc:"Sub-request verb for batch (check, races, outcomes or lint).")
  in
  let verb_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"VERB"
          ~doc:
            "ping, check, races, outcomes, lint, batch, stats or shutdown.")
  in
  let target_args =
    Arg.(
      value & pos_right 0 string []
      & info [] ~docv:"NAME"
          ~doc:"Catalog litmus names (or litmus file paths, sent as source).")
  in
  let mk_req ~verb ~model ~deadline_ms target =
    let name, program =
      match target with
      | None -> (None, None)
      | Some a ->
          if Sys.file_exists a then
            let ic = open_in_bin a in
            let src =
              Fun.protect
                ~finally:(fun () -> close_in_noerr ic)
                (fun () -> really_input_string ic (in_channel_length ic))
            in
            (None, Some src)
          else (Some a, None)
    in
    {
      Protocol.id = None;
      verb;
      name;
      program;
      model;
      deadline_ms;
      subrequests = [];
    }
  in
  let get k conv resp = Option.bind (Json.mem k resp) conv in
  let geti k resp = Option.value (get k Json.to_int resp) ~default:0 in
  let render verb targets resp =
    match verb with
    | "ping" -> Fmt.pr "pong@."
    | "shutdown" -> Fmt.pr "shutdown: ok@."
    | "stats" ->
        (match get "cache" Option.some resp with
        | Some c ->
            Fmt.pr "cache: %d hits, %d misses, %d stores, %d evictions, %d \
                    load failures, %d resident@."
              (geti "hits" c) (geti "misses" c) (geti "stores" c)
              (geti "evictions" c) (geti "load_failures" c) (geti "resident" c)
        | None -> ());
        (match get "metrics" Option.some resp with
        | Some m ->
            Fmt.pr "requests: %d total, %d errors, %d deadlines exceeded, %d \
                    shed, %d in flight@."
              (geti "requests" m) (geti "errors" m)
              (geti "deadlines_exceeded" m) (geti "sheds" m)
              (geti "queue_depth" m)
        | None -> ())
    | "batch" ->
        Fmt.pr "batch: %d requests, %d ok, %d cached@." (geti "count" resp)
          (geti "ok_count" resp) (geti "cached" resp)
    | "check" ->
        Fmt.pr "%s: %s%s@."
          (match targets with t :: _ -> t | [] -> "?")
          (if Option.value (get "passed" Json.to_bool resp) ~default:false then
             "pass"
           else "FAIL")
          (if Option.value (get "cached" Json.to_bool resp) ~default:false then
             " (cached)"
           else "")
    | "races" ->
        Fmt.pr "%s: %d executions, %d racy, %d mixed%s@."
          (match targets with t :: _ -> t | [] -> "?")
          (geti "executions" resp) (geti "racy" resp) (geti "mixed" resp)
          (if Option.value (get "cached" Json.to_bool resp) ~default:false then
             " (cached)"
           else "")
    | "outcomes" ->
        List.iter
          (fun o ->
            match Json.to_str o with
            | Some s -> Fmt.pr "  %s@." s
            | None -> ())
          (Option.value (get "outcomes" Json.to_list resp) ~default:[]);
        Fmt.pr "%s: %d outcomes%s@."
          (match targets with t :: _ -> t | [] -> "?")
          (geti "count" resp)
          (if Option.value (get "cached" Json.to_bool resp) ~default:false then
             " (cached)"
           else "")
    | "lint" ->
        Fmt.pr "%s: race_free %b, %d findings, %d mixed@."
          (match targets with t :: _ -> t | [] -> "?")
          (Option.value (get "race_free" Json.to_bool resp) ~default:false)
          (geti "findings" resp) (geti "mixed" resp)
    | _ -> print_string (Json.to_string resp ^ "\n")
  in
  let run socket wait json model deadline_ms all sub verb targets =
    let model = model.Tmx_core.Model.name in
    let req =
      match verb with
      | "batch" ->
          let names =
            if all then
              List.map (fun (l : Tmx_litmus.Litmus.t) -> l.name) Tmx_litmus.Catalog.all
            else targets
          in
          if names = [] then Error "batch needs NAMEs or --all"
          else
            Ok
              {
                (mk_req ~verb:"batch" ~model ~deadline_ms None) with
                Protocol.subrequests =
                  List.map
                    (fun n -> mk_req ~verb:sub ~model ~deadline_ms:None (Some n))
                    names;
              }
      | "ping" | "stats" | "shutdown" -> Ok (mk_req ~verb ~model ~deadline_ms None)
      | _ -> (
          match targets with
          | [ t ] -> Ok (mk_req ~verb ~model ~deadline_ms (Some t))
          | _ -> Error (Fmt.str "verb %s takes exactly one NAME" verb))
    in
    Result.bind req (fun req ->
        Result.map
          (fun resp ->
            if json then print_string (Json.to_string resp ^ "\n")
            else if Protocol.response_ok resp then render verb targets resp
            else begin
              Fmt.epr "tmx client: %s@."
                (Option.value
                   (Option.bind (Json.mem "error" resp) Json.to_str)
                   ~default:"request failed");
              exit 1
            end)
          (Result.bind (Client.addr_of_string socket) (fun addr ->
               Client.request ~wait_s:wait ~addr (Protocol.to_json req))))
  in
  let term =
    Term.(
      term_result'
        (const run $ socket_arg $ wait_arg $ json_flag $ model_arg
       $ deadline_arg $ all_flag $ sub_arg $ verb_arg $ target_args))
  in
  Cmd.v
    (Cmd.info "client"
       ~doc:
         "Query a running $(b,tmx serve) daemon: one NDJSON request per \
          invocation (batch fans sub-requests across the daemon's domain \
          pool).")
    term

let loadgen_cmd =
  let open Tmx_service in
  let oracle_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "oracle" ] ~docv:"ADDR"
          ~doc:
            "Byte-identity oracle mode: instead of a measured run, replay \
             the stream sequentially against both $(b,--socket) and \
             $(docv) (two freshly started daemons, e.g. --shards 1 vs \
             --shards 4) and fail on the first differing response line.")
  in
  let requests_arg =
    Arg.(
      value & opt int 0
      & info [ "requests" ] ~docv:"N"
          ~doc:
            "Send exactly $(docv) requests instead of timing (oracle mode \
             defaults to 64).")
  in
  let duration_arg =
    Arg.(
      value & opt float 5.0
      & info [ "duration" ] ~docv:"S" ~doc:"Measured-run duration in seconds.")
  in
  let concurrency_arg =
    Arg.(
      value & opt int 2
      & info [ "concurrency" ] ~docv:"N"
          ~doc:"Client worker domains, one connection each.")
  in
  let skew_arg =
    Arg.(
      value & opt float 1.0
      & info [ "skew" ] ~docv:"F"
          ~doc:"Zipf exponent over the target pool (0 = uniform).")
  in
  let seed_arg =
    Arg.(
      value & opt int 42
      & info [ "seed" ] ~docv:"N"
          ~doc:
            "Stream seed: the whole query stream is a pure function of \
             (seed, request index).")
  in
  let generated_arg =
    Arg.(
      value & opt int 16
      & info [ "generated" ] ~docv:"N"
          ~doc:"Fuzzer-generated programs added to the catalog pool.")
  in
  let no_catalog_flag =
    Arg.(
      value & flag
      & info [ "no-catalog" ] ~doc:"Exclude the litmus catalog from the pool.")
  in
  let shards_label_arg =
    Arg.(
      value & opt int 1
      & info [ "shards-label" ] ~docv:"N"
          ~doc:
            "The shard count recorded in the $(b,--out) report (loadgen \
             cannot see the server's own setting).")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE"
          ~doc:
            "Also write the report as JSON in the BENCH_loadgen.json \
             schema (experiment serve_loadgen).")
  in
  let rate_arg =
    Arg.(
      value & opt float 0.0
      & info [ "rate" ] ~docv:"R"
          ~doc:
            "Open-loop mode: issue requests at $(docv) requests/s \
             (aggregate, deterministic exponential inter-arrival gaps from \
             the seeded RNG) and measure latency from each request's \
             scheduled arrival, so overload numbers include queueing delay \
             instead of the coordinated-omission artifact closed loops \
             report.  0 (default) keeps the closed loop.")
  in
  let run socket oracle requests duration concurrency skew seed generated
      no_catalog shards_label out rate =
    let config =
      {
        Loadgen.concurrency;
        duration_s = duration;
        requests;
        skew;
        seed;
        generated;
        use_catalog = not no_catalog;
        rate;
      }
    in
    Result.bind (Client.addr_of_string socket) (fun addr ->
        match oracle with
        | Some b ->
            Result.bind (Client.addr_of_string b) (fun addr_b ->
                let n = if requests > 0 then requests else 64 in
                match Loadgen.oracle ~config ~requests:n addr addr_b with
                | Error e -> Error e
                | Ok None ->
                    Fmt.pr "oracle: %d responses byte-identical@." n;
                    Ok ()
                | Ok (Some m) ->
                    Fmt.epr
                      "oracle: MISMATCH at request %d@.  %s: %s@.  %s: %s@."
                      m.Loadgen.index socket m.line_a b m.line_b;
                    exit 1)
        | None ->
            let r = Loadgen.run ~config addr in
            Fmt.pr
              "%d requests in %.1fs (%.0f rps, concurrency %d, skew %.2f, \
               seed %d)@."
              r.Loadgen.requests_sent r.duration_s r.throughput_rps concurrency
              skew seed;
            Fmt.pr "latency: p50 %.2fms  p95 %.2fms  p99 %.2fms@." r.p50_ms
              r.p95_ms r.p99_ms;
            Fmt.pr "hit rate %.3f   shed rate %.3f   %d errors@." r.hit_rate
              r.shed_rate r.errors;
            Option.iter
              (fun file ->
                let witness =
                  Json.Obj
                    [
                      ("experiment", Json.str "serve_loadgen");
                      ("seed", Json.int seed);
                      ("skew", Json.Num skew);
                      ("concurrency", Json.int concurrency);
                      ("duration_s", Json.Num r.duration_s);
                      ( "shards",
                        Json.Arr
                          [
                            Json.Obj
                              (("shards", Json.int shards_label)
                              ::
                              (match Loadgen.report_to_json r with
                              | Json.Obj fs -> fs
                              | _ -> []));
                          ] );
                    ]
                in
                let oc = open_out file in
                output_string oc (Json.to_string witness);
                output_string oc "\n";
                close_out oc)
              out;
            if r.requests_sent = 0 || r.ok = 0 then
              Error "loadgen: no request succeeded"
            else Ok ())
  in
  let term =
    Term.(
      term_result'
        (const run $ socket_arg $ oracle_arg $ requests_arg $ duration_arg
       $ concurrency_arg $ skew_arg $ seed_arg $ generated_arg
       $ no_catalog_flag $ shards_label_arg $ out_arg $ rate_arg))
  in
  Cmd.v
    (Cmd.info "loadgen"
       ~doc:
         "Replay a deterministic catalog+fuzzer query stream against a \
          running $(b,tmx serve) (Unix socket or TCP) at configurable \
          concurrency, skew and duration; report p50/p95/p99 latency, hit \
          rate and shed rate.  With $(b,--oracle), instead assert the \
          byte-identity of two daemons' responses — the 1-vs-N-shard \
          correctness oracle.")
    term

let cache_cmd =
  let open Tmx_service in
  let stats_cmd =
    let run dir =
      let dir = resolve_cache_dir dir in
      let s = Cache.disk_stats ~dir () in
      Fmt.pr "%s: %d entries, %d bytes (%d current, %d stale, %d corrupt)@."
        dir s.entries s.bytes s.current s.stale s.corrupt
    in
    Cmd.v
      (Cmd.info "stats" ~doc:"Count and classify the on-disk entries.")
      Term.(const run $ cache_dir_arg)
  in
  let gc_cmd =
    let run dir =
      let dir = resolve_cache_dir dir in
      Fmt.pr "%s: removed %d stale/corrupt entries@." dir (Cache.gc ~dir ())
    in
    Cmd.v
      (Cmd.info "gc"
         ~doc:
           "Delete entries written by other format versions and corrupt \
            files; current entries are kept.")
      Term.(const run $ cache_dir_arg)
  in
  let clear_cmd =
    let run dir =
      let dir = resolve_cache_dir dir in
      Fmt.pr "%s: removed %d entries@." dir (Cache.clear ~dir)
    in
    Cmd.v
      (Cmd.info "clear" ~doc:"Delete every entry.")
      Term.(const run $ cache_dir_arg)
  in
  Cmd.group
    (Cmd.info "cache"
       ~doc:
         "Inspect and maintain the on-disk verdict cache shared by $(b,tmx \
          serve), $(b,tmx litmus --cache) and $(b,tmx fuzz --cache).")
    [ stats_cmd; gc_cmd; clear_cmd ]

let arch_cmd =
  let open Tmx_arch in
  let arch_conv =
    let parse s =
      match Arch.by_name s with
      | Some a -> Ok a
      | None ->
          Error
            (`Msg
              (Fmt.str "unknown architecture %S (known: %a)" s
                 Fmt.(list ~sep:comma Arch.pp)
                 Arch.all))
    in
    Arg.conv (parse, Arch.pp)
  in
  let arch_arg =
    Arg.(
      value
      & opt arch_conv Arch.X86tso
      & info [ "a"; "arch" ] ~docv:"ARCH"
          ~doc:
            "Architecture backend: x86tso, armv8 or rc11 (the C++-TM-style \
             RC11 fragment).")
  in
  let find_program name =
    if Sys.file_exists name then
      match Tmx_litmus.Parse.parse_file name with
      | exception Tmx_litmus.Parse.Error msg -> Error (Fmt.str "%s: %s" name msg)
      | litmus -> Ok (name, litmus.Tmx_litmus.Litmus.program)
    else
      Result.map
        (fun (l : Tmx_litmus.Litmus.t) -> (l.name, l.program))
        (find_litmus name)
  in
  let find_programs all names =
    if all || names = [] then
      Ok
        (List.map
           (fun (l : Tmx_litmus.Litmus.t) -> (l.name, l.program))
           Tmx_litmus.Catalog.all)
    else
      List.fold_left
        (fun acc n ->
          Result.bind acc (fun ps ->
              Result.map (fun p -> p :: ps) (find_program n)))
        (Ok []) names
      |> Result.map List.rev
  in
  let all_flag =
    Arg.(
      value & flag
      & info [ "all" ]
          ~doc:"Run the whole catalog (also the default when no names are given).")
  in
  let check_cmd =
    let run jobs model arch name =
      Result.map
        (fun (name, program) ->
          let config = config_of_jobs jobs Enumerate.No_reduction in
          let v = Diff.check ~config arch model program in
          Fmt.pr "%s: %a@." name Diff.pp_verdict v;
          if not (v.Diff.validated || v.Diff.fences <> None) then exit 1)
        (find_program name)
    in
    let term =
      Term.(
        term_result' (const run $ jobs_arg $ model_arg $ arch_arg $ one_name))
    in
    Cmd.v
      (Cmd.info "check"
         ~doc:
           "Does the architecture validate the LTRF variant on a program?  \
            Prints the verdict, escape witnesses, and (ARMv8) the minimal \
            re-verified DMB LD set closing the gap; exits 1 on an \
            unclosable escape.")
      term
  in
  let diff_cmd =
    let run jobs model arch name =
      Result.map
        (fun (name, program) ->
          let config = config_of_jobs jobs Enumerate.No_reduction in
          let a = Aexec.run ~config arch program in
          let r = Enumerate.run ~config model program in
          let vo = Enumerate.outcomes r in
          let escapes = Outcome.diff a.Aexec.outcomes vo in
          let conservative = Outcome.diff vo a.Aexec.outcomes in
          Fmt.pr "%s: %d outcomes under %a (%d graphs), %d under %a@." name
            (List.length a.Aexec.outcomes)
            Arch.pp arch a.Aexec.graphs (List.length vo) Model.pp model;
          List.iter (fun o -> Fmt.pr "  arch-only    %a@." Outcome.pp o) escapes;
          List.iter
            (fun o -> Fmt.pr "  variant-only %a@." Outcome.pp o)
            conservative;
          if escapes = [] && conservative = [] then Fmt.pr "  (agree)@.")
        (find_program name)
    in
    let term =
      Term.(
        term_result' (const run $ jobs_arg $ model_arg $ arch_arg $ one_name))
    in
    Cmd.v
      (Cmd.info "diff"
         ~doc:
           "Print the outcome differences between an architecture backend \
            and an LTRF variant on one program, in both directions.")
      term
  in
  let table_cmd =
    let check_flag =
      Arg.(
        value & flag
        & info [ "check" ]
            ~doc:
              "Assert the paper's section-6 claims: x86tso and rc11 validate \
               the strongest variant with zero fences on every program, \
               every armv8 escape closes under the reported DMB LD set, \
               the architecture outcome lattice holds, and no enumeration \
               was truncated or capped.  Exit 1 on any violation.")
    in
    let run jobs check all names =
      Result.map
        (fun programs ->
          let config = config_of_jobs jobs Enumerate.No_reduction in
          let failures = ref 0 in
          let fail fmt =
            incr failures;
            Fmt.pr fmt
          in
          List.iter
            (fun (name, program) ->
              let rows = Diff.rows ~config program in
              Fmt.pr "%s:@." name;
              List.iter (fun r -> Fmt.pr "  %a@." Diff.pp_row r) rows;
              if check then begin
                List.iter
                  (fun (r : Diff.row) ->
                    if r.Diff.imprecise then
                      fail "  FAIL %s: %s enumeration imprecise@." name
                        (Arch.name r.Diff.arch);
                    match (r.Diff.arch, r.Diff.gap_fences) with
                    | (Arch.X86tso | Arch.Rc11), Some _ ->
                        fail "  FAIL %s: %s does not validate strongest@."
                          name (Arch.name r.Diff.arch)
                    | Arch.Armv8, Some None ->
                        fail "  FAIL %s: armv8 escape not closed by fences@."
                          name
                    | _ -> ())
                  rows;
                List.iter
                  (fun (c : Diff.containment) ->
                    if not c.Diff.ok then
                      fail "  FAIL %s: outcomes(%s) escape outcomes(%s)@." name
                        (Arch.name c.Diff.sub) (Arch.name c.Diff.sup))
                  (Diff.containments ~config program)
              end)
            programs;
          if check then
            if !failures = 0 then
              Fmt.pr "section-6 claims hold on %d programs@."
                (List.length programs)
            else begin
              Fmt.pr "%d section-6 violations@." !failures;
              exit 1
            end)
        (find_programs all names)
    in
    let term =
      Term.(
        term_result' (const run $ jobs_arg $ check_flag $ all_flag $ names_arg))
    in
    Cmd.v
      (Cmd.info "table"
         ~doc:
           "Per-program agreement table: for each architecture the maximal \
            validated LTRF variants and, when the strongest variant is \
            escaped, the minimal fence set closing the gap.  \
            $(b,--check) asserts the section-6 claims (CI runs this over \
            the catalog).")
      term
  in
  Cmd.group
    (Cmd.info "arch"
       ~doc:
         "Differential validation of the LTRF variants against per-\
          architecture axiomatic backends (x86-TSO, ARMv8, C++-TM/RC11): \
          the machine-checked form of the paper's section-6 claims.")
    [ check_cmd; diff_cmd; table_cmd ]

let () =
  let doc = "modular transactions: the LTRF model checker and STM workbench" in
  let info = Cmd.info "tmx" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            litmus_cmd; outcomes_cmd; races_cmd; lint_cmd; repair_cmd; stm_cmd;
            stm_bench_cmd; machine_cmd; theorems_cmd; models_cmd; show_cmd;
            dot_cmd; check_cmd; export_cmd; shapes_cmd; fence_cmd; fuzz_cmd;
            arch_cmd; bench_compare_cmd; serve_cmd; client_cmd; loadgen_cmd;
            cache_cmd;
          ]))
