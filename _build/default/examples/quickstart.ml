(* Quickstart: define a litmus program, enumerate its consistent
   executions under the paper's programmer model, and check a verdict.

   Run with:  dune exec examples/quickstart.exe *)

open Tmx_core
open Tmx_lang
open Tmx_exec

(* The message-passing idiom: t0 publishes x through a transactional
   flag; t1 reads the flag transactionally and then reads x plainly. *)
let message_passing =
  Ast.(
    program ~name:"message-passing" ~locs:[ "x"; "flag" ]
      [
        [ store (loc "x") (int 42); atomic [ store (loc "flag") (int 1) ] ];
        [
          atomic [ load "seen" (loc "flag") ];
          when_ (reg "seen") [ load "value" (loc "x") ];
        ];
      ])

let () =
  Fmt.pr "%a@.@." Ast.pp_program message_passing;

  (* enumerate every consistent execution under the programmer model *)
  let result = Enumerate.run Model.programmer message_passing in
  Fmt.pr "%d candidate graphs, %d consistent executions:@." result.graphs
    (List.length result.executions);
  List.iter (fun o -> Fmt.pr "  %a@." Outcome.pp o) (Enumerate.outcomes result);

  (* the publication guarantee: if the flag was seen, the payload is 42 *)
  let stale o = Outcome.reg o 1 "seen" = 1 && Outcome.reg o 1 "value" <> 42 in
  Fmt.pr "@.stale publication is %s@."
    (if Enumerate.allowed result stale then "ALLOWED (bug!)" else "forbidden");

  (* and it needs no quiescence fence: the same holds in the
     implementation model of §5 *)
  let im = Enumerate.run Model.implementation message_passing in
  Fmt.pr "in the implementation model it is also %s@."
    (if Enumerate.allowed im stale then "ALLOWED (bug!)" else "forbidden");

  (* the SC-LTRF theorem, empirically: the program is race-free, so its
     outcomes coincide with sequential reasoning *)
  let report = Verdict.check_sc_ltrf Model.programmer message_passing in
  Fmt.pr "@.sequentially racy: %b; outcomes sequential: %b@." report.sc_racy
    report.outcomes_contained
