(* Transactional integer arrays: the aggregate the paper's array examples
   (z[r] in §3.5, D.4) need, and the building block for the other
   transactional structures (heap cells are array slots, indices play the
   role of pointers). *)

type t = Tvar.t array

let make n v = Array.init n (fun _ -> Tvar.make v)
let init n f = Array.init n (fun i -> Tvar.make (f i))
let length = Array.length
let get tx (a : t) i = Stm.read tx a.(i)
let set tx (a : t) i v = Stm.write tx a.(i) v

let update tx a i f = set tx a i (f (get tx a i))

(* transactional snapshot: a consistent view of the whole array *)
let snapshot ?mode a =
  Stm.atomically ?mode (fun tx -> Array.map (fun v -> Stm.read tx v) a)

(* plain snapshot: racy by design; safe only after privatization *)
let unsafe_snapshot a = Array.map Tvar.unsafe_read a

let swap tx a i j =
  let vi = get tx a i and vj = get tx a j in
  set tx a i vj;
  set tx a j vi
