lib/runtime/tarray.mli: Stm Tvar
