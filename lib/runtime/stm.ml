(* A software transactional memory for OCaml 5 realizing the paper's
   implementation model (§5).

   Two versioning strategies, matching §3's design-space discussion:

   - [Lazy]: TL2-style.  A global version clock; reads validate against
     the transaction's read version (giving opacity); writes are buffered
     and published at commit under per-variable versioned locks.
   - [Eager]: encounter-time locking with an undo log.  Writes lock the
     variable and update in place; aborts roll back.

   Both order transactions with a direct dependency (the publication
   idiom) by construction — a reader validates against the writer's
   commit — but neither orders transactions against later plain accesses
   (the privatization idiom): that requires [quiesce], the quiescence
   fence of §5, implemented as an RCU-style grace period over the
   active-transaction registry.

   Around the core protocol sit three operational layers:

   - contention management ([Contention], pluggable per call): how a
     conflicted transaction waits before retrying, including a
     retry-budget policy that escalates starved transactions to a
     serialized slow path;
   - statistics: per-mode commit/abort counters split by abort reason,
     plus retry-count and commit-latency histograms, all read through
     pure snapshots ([stats]); the legacy three-counter
     [stats_snapshot] is kept as a projection;
   - tracing ([Stm_trace], off by default): per-domain ring buffers of
     structured begin/abort/commit/quiesce events. *)

module Trace = Stm_trace
module Contention = Contention

type mode = Lazy | Eager

let mode_name = function Lazy -> "lazy" | Eager -> "eager"

(* why an optimistic attempt failed *)
type conflict =
  | Validation (* a read (or the commit-time read-set check) saw a torn version *)
  | Lock (* a lock acquisition lost to a concurrent writer *)

exception Retry_conflict of conflict
exception User_abort

let clock = Atomic.make 0

(* --- statistics ----------------------------------------------------- *)

(* counters are per mode (index 0 = Lazy, 1 = Eager) and, for aborts,
   per reason; histograms are global.  Everything is an atomic cell so
   [stats] is a pure read. *)

let mode_index = function Lazy -> 0 | Eager -> 1

let acell_array n = Array.init n (fun _ -> Atomic.make 0)

let commit_counts = acell_array 2
let validation_counts = acell_array 2
let lock_counts = acell_array 2
let user_abort_counts = acell_array 2
let quiesce_count = Atomic.make 0
let escalation_count = Atomic.make 0

(* histogram buckets: value v lands in the first bucket with
   v <= bounds.(i); the extra last bucket is the overflow *)
let retry_bounds = [| 0; 1; 2; 4; 8; 16; 32 |]
let latency_bounds_ns = [| 1_000; 10_000; 100_000; 1_000_000; 10_000_000 |]
let retry_counts = acell_array (Array.length retry_bounds + 1)
let latency_counts = acell_array (Array.length latency_bounds_ns + 1)

let observe bounds counts v =
  let n = Array.length bounds in
  let rec bucket i = if i >= n || v <= bounds.(i) then i else bucket (i + 1) in
  Atomic.incr counts.(bucket 0)

type mode_stats = {
  commits : int;
  validation_aborts : int;
  lock_aborts : int;
  user_aborts : int;
}

type histogram = { bounds : int array; counts : int array }

type snapshot = {
  lazy_stats : mode_stats;
  eager_stats : mode_stats;
  retry_hist : histogram; (* retries per committed transaction *)
  latency_hist_ns : histogram; (* first-attempt-to-commit latency *)
  quiesces : int;
  escalations : int; (* transactions that took the serialized slow path *)
}

let stats () =
  let mode_stats i =
    {
      commits = Atomic.get commit_counts.(i);
      validation_aborts = Atomic.get validation_counts.(i);
      lock_aborts = Atomic.get lock_counts.(i);
      user_aborts = Atomic.get user_abort_counts.(i);
    }
  in
  let hist bounds counts =
    { bounds = Array.copy bounds; counts = Array.map Atomic.get counts }
  in
  {
    lazy_stats = mode_stats 0;
    eager_stats = mode_stats 1;
    retry_hist = hist retry_bounds retry_counts;
    latency_hist_ns = hist latency_bounds_ns latency_counts;
    quiesces = Atomic.get quiesce_count;
    escalations = Atomic.get escalation_count;
  }

let reset_stats () =
  let zero = Array.iter (fun c -> Atomic.set c 0) in
  zero commit_counts;
  zero validation_counts;
  zero lock_counts;
  zero user_abort_counts;
  zero retry_counts;
  zero latency_counts;
  Atomic.set quiesce_count 0;
  Atomic.set escalation_count 0

(* the legacy triple (commits, conflicts, user aborts), a projection of
   the per-mode counters so existing callers keep working unchanged *)
let stats_snapshot () =
  let s = stats () in
  let total f = f s.lazy_stats + f s.eager_stats in
  ( total (fun m -> m.commits),
    total (fun m -> m.validation_aborts + m.lock_aborts),
    total (fun m -> m.user_aborts) )

let pp_mode_stats ppf m =
  Fmt.pf ppf "commits:%d aborts:{validation:%d lock:%d user:%d}" m.commits
    m.validation_aborts m.lock_aborts m.user_aborts

let pp_histogram ppf h =
  let n = Array.length h.bounds in
  Array.iteri
    (fun i c ->
      if i > 0 then Fmt.sp ppf ();
      if i < n then Fmt.pf ppf "<=%d:%d" h.bounds.(i) c
      else Fmt.pf ppf ">%d:%d" h.bounds.(n - 1) c)
    h.counts

(* --- transactions ---------------------------------------------------- *)

type tx = {
  mode : mode;
  rv : int; (* read version *)
  footprint : int list option; (* declared TVar ids, for selective fences *)
  mutable reads : (Tvar.t * int) list; (* variable, observed version *)
  mutable writes : (Tvar.t * int) list; (* lazy write buffer *)
  mutable undo : (Tvar.t * int * int option) list;
      (* eager: var, overwritten value, and — on the first write to the
         variable, which also takes its lock — the pre-lock version.
         Every write is logged so [or_else] can roll back to a branch
         point. *)
}

let abort _tx = raise User_abort

(* a transaction that declared a footprint must stay inside it: a stray
   access would defeat selective quiescence silently *)
let check_footprint tx v =
  match tx.footprint with
  | Some ids when not (List.mem (Tvar.id v) ids) ->
      invalid_arg
        (Fmt.str "Stm: access to tvar#%d outside the declared footprint" (Tvar.id v))
  | _ -> ()

let eager_owns tx v = List.exists (fun (u, _, _) -> u == v) tx.undo

let validation_fail v =
  Stm_trace.record Stm_trace.Read_validate_fail ~detail:(Tvar.id v) ();
  raise (Retry_conflict Validation)

let lock_fail v =
  Stm_trace.record Stm_trace.Lock_fail ~detail:(Tvar.id v) ();
  raise (Retry_conflict Lock)

let read_versioned tx v =
  let s1 = Tvar.version_word v in
  if Tvar.locked s1 || s1 > tx.rv then validation_fail v;
  let x = Tvar.unsafe_read v in
  let s2 = Tvar.version_word v in
  if s1 <> s2 then validation_fail v;
  tx.reads <- (v, s1) :: tx.reads;
  x

let read tx v =
  check_footprint tx v;
  match tx.mode with
  | Lazy -> (
      match List.find_opt (fun (u, _) -> u == v) tx.writes with
      | Some (_, x) -> x
      | None -> read_versioned tx v)
  | Eager ->
      if eager_owns tx v then Tvar.unsafe_read v else read_versioned tx v

let write tx v x =
  check_footprint tx v;
  match tx.mode with
  | Lazy -> tx.writes <- (v, x) :: List.filter (fun (u, _) -> u != v) tx.writes
  | Eager ->
      if eager_owns tx v then begin
        tx.undo <- (v, Tvar.unsafe_read v, None) :: tx.undo;
        Tvar.unsafe_write v x
      end
      else begin
        match Tvar.try_lock v with
        | None -> lock_fail v
        | Some prev ->
            tx.undo <- (v, Tvar.unsafe_read v, Some prev) :: tx.undo;
            Tvar.unsafe_write v x
      end

(* roll the undo log back (newest first) down to [until] (an earlier
   value of [tx.undo], physically); locks are released at their
   first-write entries *)
let rec eager_rollback_to tx until =
  if tx.undo != until then
    match tx.undo with
    | [] -> ()
    | (v, old, prev) :: rest ->
        Tvar.unsafe_write v old;
        (match prev with Some p -> Tvar.unlock v ~version:p | None -> ());
        tx.undo <- rest;
        eager_rollback_to tx until

let eager_rollback tx = eager_rollback_to tx []

(* Validate the read set: each read variable must be at the observed
   version and not locked by another transaction.  A variable locked by
   the committing transaction itself validates against the version saved
   when the lock was taken — anything newer means a concurrent commit
   slipped between our read and our lock (a would-be lost update). *)
let validate ?(own = []) tx =
  List.for_all
    (fun (v, s1) ->
      match List.find_opt (fun (u, _) -> u == v) own with
      | Some (_, prev) -> prev = s1
      | None ->
          let word = Tvar.version_word v in
          (not (Tvar.locked word)) && word = s1)
    tx.reads

let commit_validation_fail () =
  Stm_trace.record Stm_trace.Read_validate_fail ();
  raise (Retry_conflict Validation)

let lazy_commit tx =
  if tx.writes = [] then begin
    (* read-only transactions commit without locking *)
    if not (validate tx) then commit_validation_fail ()
  end
  else begin
    let to_lock =
      List.sort_uniq (fun (a, _) (b, _) -> compare (Tvar.id a) (Tvar.id b)) tx.writes
    in
    let locked = ref [] in
    let release () =
      List.iter (fun (v, prev) -> Tvar.unlock v ~version:prev) !locked
    in
    (try
       List.iter
         (fun (v, _) ->
           match Tvar.try_lock v with
           | Some prev -> locked := (v, prev) :: !locked
           | None -> lock_fail v)
         to_lock
     with Retry_conflict _ as e ->
       release ();
       raise e);
    (* a write variable observed before being locked must still be at its
       observed version *)
    if not (validate ~own:!locked tx) then begin
      release ();
      commit_validation_fail ()
    end;
    let wv = Atomic.fetch_and_add clock 2 + 2 in
    List.iter (fun (v, x) -> Tvar.unsafe_write v x) (List.rev tx.writes);
    List.iter (fun (v, _) -> Tvar.unlock v ~version:wv) !locked
  end

let eager_commit tx =
  let own =
    List.filter_map
      (fun (v, _, prev) -> Option.map (fun p -> (v, p)) prev)
      tx.undo
  in
  if not (validate ~own tx) then begin
    eager_rollback tx;
    commit_validation_fail ()
  end;
  let wv = Atomic.fetch_and_add clock 2 + 2 in
  List.iter (fun (v, _) -> Tvar.unlock v ~version:wv) own;
  tx.undo <- []

(* Composition: try [f1]; if it aborts, undo its effects and try [f2]
   within the same transaction (the classic STM orElse). *)
let or_else tx f1 f2 =
  let saved_reads = tx.reads in
  match tx.mode with
  | Lazy ->
      let saved_writes = tx.writes in
      (try f1 tx
       with User_abort ->
         tx.reads <- saved_reads;
         tx.writes <- saved_writes;
         f2 tx)
  | Eager -> (
      let saved_undo = tx.undo in
      try f1 tx
      with User_abort ->
        eager_rollback_to tx saved_undo;
        tx.reads <- saved_reads;
        f2 tx)

(* Run one attempt; [Error (`Conflict _)] means retry, [Error `Aborted]
   means the user aborted. *)
let attempt ?footprint mode f =
  Registry.enter ?footprint ();
  let tx =
    { mode; rv = Atomic.get clock; footprint; reads = []; writes = []; undo = [] }
  in
  let result =
    match f tx with
    | x -> (
        match (match mode with Lazy -> lazy_commit tx | Eager -> eager_commit tx) with
        | () -> Ok x
        | exception Retry_conflict c -> Error (`Conflict c))
    | exception Retry_conflict c ->
        if mode = Eager then eager_rollback tx;
        Error (`Conflict c)
    | exception User_abort ->
        if mode = Eager then eager_rollback tx;
        Error `Aborted
    | exception exn ->
        if mode = Eager then eager_rollback tx;
        Registry.exit ();
        raise exn
  in
  Registry.exit ();
  result

let now_ns () = int_of_float (Unix.gettimeofday () *. 1e9)

(* Commit [f], retrying on conflicts under the contention policy;
   [Error `Aborted] if the user aborted (the paper's explicit abort —
   not retried). *)
let atomically_result ?(mode = Lazy) ?(policy = Contention.default_policy)
    ?footprint f =
  let footprint = Option.map (List.map Tvar.id) footprint in
  let mi = mode_index mode in
  let t0 = now_ns () in
  let committed retries x =
    Atomic.incr commit_counts.(mi);
    observe retry_bounds retry_counts retries;
    observe latency_bounds_ns latency_counts (now_ns () - t0);
    Stm_trace.record Stm_trace.Commit ~detail:retries ();
    Ok x
  in
  let conflicted = function
    | Validation -> Atomic.incr validation_counts.(mi)
    | Lock -> Atomic.incr lock_counts.(mi)
  in
  let aborted () =
    Atomic.incr user_abort_counts.(mi);
    Stm_trace.record Stm_trace.User_abort ();
    Error `Aborted
  in
  let one_attempt n =
    Stm_trace.record Stm_trace.Begin ~detail:n ();
    attempt ?footprint mode f
  in
  (* the serialized slow path: the gate stalls new optimistic attempts
     on every other domain, so the in-flight ones drain and this
     transaction commits after bounded interference *)
  let escalate n =
    Atomic.incr escalation_count;
    Stm_trace.record Stm_trace.Escalate ~detail:n ();
    Contention.serialized (fun () ->
        let rec again n =
          match one_attempt n with
          | Ok x -> committed n x
          | Error (`Conflict c) ->
              conflicted c;
              Domain.cpu_relax ();
              again (n + 1)
          | Error `Aborted -> aborted ()
        in
        again n)
  in
  let rec go n =
    Contention.stall_if_serialized ();
    match one_attempt n with
    | Ok x -> committed n x
    | Error (`Conflict c) ->
        conflicted c;
        if Contention.escalates policy ~retry:n then escalate (n + 1)
        else begin
          Contention.backoff policy ~retry:n;
          go (n + 1)
        end
    | Error `Aborted -> aborted ()
  in
  go 0

let atomically ?mode ?policy ?footprint f =
  match atomically_result ?mode ?policy ?footprint f with
  | Ok x -> Some x
  | Error `Aborted -> None

(* The quiescence fence of §5: returns once every (relevant) transaction
   that was in flight at the call has resolved, so subsequent plain
   accesses cannot race with pre-fence transactions (privatization).
   With [var], only transactions that might touch that TVar are waited
   for — the per-location hQxi fence, sound because transactions with
   declared footprints cannot stray (checked on every access). *)
let quiesce ?var () =
  let vid = Option.map Tvar.id var in
  let detail = Option.value vid ~default:(-1) in
  Stm_trace.record Stm_trace.Quiesce_start ~detail ();
  Atomic.incr quiesce_count;
  Registry.quiesce ?var:vid ();
  Stm_trace.record Stm_trace.Quiesce_end ~detail ()
