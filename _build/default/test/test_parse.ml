open Tmx_litmus

let privatization_src =
  {|
# the privatization idiom, as a user litmus file
name user_privatization
locs x y

thread 0:
  atomic { ry := y; if !ry { x := 1 } }

thread 1:
  atomic { y := 1 }
  x := 2

check pm forbidden mem x = 1
check im allowed   mem x = 1
check pm allowed   reg 0 ry = 0 && mem x = 2
check pm forbidden mem x != 1 && mem x != 2
|}

let test_parse_and_run () =
  let litmus = Parse.parse privatization_src in
  Alcotest.(check string) "name" "user_privatization" litmus.name;
  Alcotest.(check int) "threads" 2 (List.length litmus.program.threads);
  Alcotest.(check int) "checks" 4 (List.length litmus.checks);
  let report = Litmus.run litmus in
  if not (Litmus.passed report) then Alcotest.failf "%a" Litmus.pp_report report

let test_parse_features () =
  let src =
    {|
name features
locs x z[0] z[1]

thread 0:
  r := x
  z[r] := r + 1
  while 0 { skip }
  fence(x)

thread 1:
  atomic { x := 1; abort }
  q := z[0]

check pm allowed reg 1 q = 1
check pm forbidden mem z[1] = 2
|}
  in
  let litmus = Parse.parse src in
  let report = Litmus.run litmus in
  if not (Litmus.passed report) then Alcotest.failf "%a" Litmus.pp_report report

let expect_error src fragment =
  match Parse.parse src with
  | exception Parse.Error msg ->
      if
        not
          (let n = String.length msg and m = String.length fragment in
           let rec go i = i + m <= n && (String.sub msg i m = fragment || go (i + 1)) in
           go 0)
      then Alcotest.failf "error %S does not mention %S" msg fragment
  | _ -> Alcotest.failf "expected a parse error mentioning %S" fragment

let test_errors () =
  expect_error "thread 0:\n  atomic { atomic { skip } }\n" "nested atomic";
  expect_error "locs x\nthread 0:\n  if { skip }\n" "in expression";
  expect_error "locs x\nthread 1:\n  x := 1\n" "consecutive";
  expect_error "locs x\nthread 0:\n  x := 1\ncheck nosuch allowed mem x = 1\n"
    "unknown model";
  expect_error "locs x\nthread 0:\n  r := x + 1\n" "location";
  expect_error "thread 0:\n  abort\n" "abort outside atomic"

let test_roundtrip_verdicts () =
  (* the parsed program agrees with the hand-built catalog entry *)
  let parsed = Parse.parse privatization_src in
  let builtin = Option.get (Catalog.find "privatization") in
  let open Tmx_exec in
  let a = Enumerate.outcomes (Enumerate.run Tmx_core.Model.programmer parsed.program) in
  let b = Enumerate.outcomes (Enumerate.run Tmx_core.Model.programmer builtin.program) in
  Alcotest.(check int) "same number of outcomes" (List.length b) (List.length a)

let suite =
  [
    Alcotest.test_case "parse and run" `Quick test_parse_and_run;
    Alcotest.test_case "language features" `Quick test_parse_features;
    Alcotest.test_case "error reporting" `Quick test_errors;
    Alcotest.test_case "matches the catalog" `Quick test_roundtrip_verdicts;
  ]
