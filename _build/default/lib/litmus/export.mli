(** Export programs to the litmus text format of {!Parse} (the checks are
    OCaml closures and cannot be exported).  Round-trip tested:
    [Parse.parse (program_to_string p)] has the same behaviours as
    [p]. *)

val program_to_string : Tmx_lang.Ast.program -> string
