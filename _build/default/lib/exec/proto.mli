(** Thread unfolding: from litmus programs to per-thread sequences of
    proto-events.

    Control flow depends on the values loads return, so each load
    branches over the location's value domain; infeasible assumptions die
    at the reads-from stage of the enumerator.  Value domains are a small
    fixpoint: start at [{0}] and iterate collecting written values (the
    iteration cap only ever overapproximates). *)

type proto =
  | PWrite of string * int
  | PRead of string * int  (** assumed value *)
  | PBegin
  | PCommit
  | PAbort
  | PQfence of string

val pp_proto : proto Fmt.t

type env = (string * int) list
(** Register environments. *)

val env_get : env -> string -> int
(** Unbound registers read as [0]. *)

val env_set : env -> string -> int -> env
val eval : env -> Tmx_lang.Ast.expr -> int

val resolve : env -> Tmx_lang.Ast.lval -> string
(** Resolve an lvalue to a concrete location name (["z[3]"]). *)

(** Value domains per location. *)
module Domain : sig
  type t

  val create : string list -> t
  val values : t -> string -> int list
  val add : t -> string -> int -> bool
  val locs : t -> string list
end

type path = { protos : proto list; env : env; truncated : bool }
(** One control path of one thread: its proto-events, final registers,
    and whether the loop-unrolling bound was hit.  An abort rolls the
    registers back to their values at the transaction's begin. *)

type item = S of Tmx_lang.Ast.stmt | End_atomic

val unfold_thread : Domain.t -> fuel:int -> Tmx_lang.Ast.thread -> path list

val domains : ?iters:int -> fuel:int -> Tmx_lang.Ast.program -> Domain.t
(** The value-domain fixpoint (capped at [iters] rounds). *)

val unfold :
  ?iters:int -> fuel:int -> Tmx_lang.Ast.program -> Domain.t * path list list
(** Domains plus every thread's paths. *)
