(** A small work-stealing domain pool (OCaml 5 domains).

    [run_tasks ~jobs ~tasks f] evaluates [f i] for every
    [i ∈ [0, tasks)] on up to [jobs] domains (the caller's included)
    and returns the results indexed by task.  Task claiming is a shared
    fetch-and-add cursor, so domains steal whatever task is next the
    moment they go idle; result slots are per-task, so the output array
    is independent of domain scheduling.  With [jobs <= 1] (or a single
    task) everything runs in the calling domain and no domain is
    spawned.  If a task raises, the first exception is re-raised in the
    caller after the pool drains. *)

val run_tasks : jobs:int -> tasks:int -> (int -> 'a) -> 'a array

val available_cores : unit -> int
(** [Domain.recommended_domain_count ()], exposed for [--jobs 0]-style
    "use every core" defaults. *)
