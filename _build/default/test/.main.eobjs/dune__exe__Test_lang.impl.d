test/test_lang.ml: Alcotest Ast Fmt Infix Result String Tmx_lang
