test/test_proto.ml: Alcotest Ast Enumerate Fmt Infix List Outcome Proto Tmx_core Tmx_exec Tmx_lang
