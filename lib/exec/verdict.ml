(* Program-level analyses: allowed/forbidden outcome verdicts, race
   detection, and the empirical checks of the paper's theorems
   (SC-LTRF, Theorem 4.2, Lemma 5.1). *)

open Tmx_core

type cond = Outcome.t -> bool

(* -- verdicts -------------------------------------------------------------- *)

let allowed ?config model program cond =
  Enumerate.allowed (Enumerate.run ?config model program) cond

let forbidden ?config model program cond = not (allowed ?config model program cond)

(* -- races ------------------------------------------------------------------ *)

let execution_races ?l model (trace : Trace.t) =
  let ctx = Lift.make trace in
  let hb = Hb.compute model ctx in
  Race.races ?l trace hb

let racy ?config ?l model program =
  let result = Enumerate.run ?config model program in
  List.exists
    (fun (e : Enumerate.execution) -> execution_races ?l model e.trace <> [])
    result.executions

let mixed_racy ?config model program =
  let result = Enumerate.run ?config model program in
  List.exists
    (fun (e : Enumerate.execution) ->
      let ctx = Lift.make e.trace in
      let hb = Hb.compute model ctx in
      Race.has_mixed_race e.trace hb)
    result.executions

(* -- concrete race witnesses -------------------------------------------------- *)

type race_witness = {
  outcome : Outcome.t;
  loc : string option;
  threads : int * int;
  mixed : bool;
}

let pp_race_witness ppf w =
  let t1, t2 = w.threads in
  Fmt.pf ppf "%s race on %s between t%d and t%d under outcome %a"
    (if w.mixed then "mixed" else "L-")
    (Option.value w.loc ~default:"?")
    t1 t2 Outcome.pp w.outcome

(* The first racy execution, as a concrete counterexample: the repair
   search uses this to justify discarding a candidate and to steer which
   edits the next candidate must contain.  With [mixed_only] the search
   is restricted to mixed races (§5); otherwise any L-race counts, and
   [mixed] records which kind the reported pair is. *)
let race_witness ?config ?l ?(mixed_only = false) model program =
  let result = Enumerate.run ?config model program in
  List.find_map
    (fun (e : Enumerate.execution) ->
      let ctx = Lift.make e.trace in
      let hb = Hb.compute model ctx in
      let mixed = Race.mixed_races e.trace hb in
      let pairs = if mixed_only then mixed else Race.races ?l e.trace hb in
      match pairs with
      | [] -> None
      | (b, c) :: _ ->
          Some
            {
              outcome = e.outcome;
              loc = Action.loc_of (Trace.act e.trace b);
              threads = (Trace.thread e.trace b, Trace.thread e.trace c);
              mixed = List.mem (b, c) mixed;
            })
    result.executions

(* -- SC-LTRF ----------------------------------------------------------------- *)

type sc_ltrf_report = {
  sc_racy : bool; (* some transactionally sequential execution has a race *)
  weak_exists : bool; (* some model execution contains a Loc-weak action *)
  model_outcomes : Outcome.t list;
  sc_outcomes : Outcome.t list;
  outcomes_contained : bool; (* model outcomes ⊆ sequential outcomes *)
  theorem_holds : bool;
}

(* The empirical content of Theorem 4.1 at L = Loc and σ = the initial
   prefix: if no transactionally sequential execution has a race, then
   (a) the model admits no execution with an L-weak action, and (b) the
   model's outcome set coincides with the sequential one. *)
let check_sc_ltrf ?config ?sc_config model program =
  let result = Enumerate.run ?config model program in
  let sc = Sc.run ?config:sc_config program in
  let sc_racy =
    List.exists
      (fun (e : Sc.execution) -> execution_races model e.trace <> [])
      sc.executions
  in
  (* Weak actions inside aborted transactions are excluded: aborted
     actions never participate in races (they never conflict), their
     register observations roll back, and Theorem 4.2 lets them be erased
     — so the theorem's conclusion cannot and need not cover them. *)
  let weak_exists =
    List.exists
      (fun (e : Enumerate.execution) ->
        List.exists
          (fun i -> not (Trace.is_aborted e.trace i))
          (Sequentiality.weak_positions e.trace))
      result.executions
  in
  let model_outcomes = Enumerate.outcomes result in
  let sc_outcomes = Sc.outcomes sc in
  let outcomes_contained =
    List.for_all
      (fun o -> List.exists (Outcome.equal o) sc_outcomes)
      model_outcomes
  in
  {
    sc_racy;
    weak_exists;
    model_outcomes;
    sc_outcomes;
    outcomes_contained;
    theorem_holds = sc_racy || ((not weak_exists) && outcomes_contained);
  }

(* -- Theorem 4.2 -------------------------------------------------------------- *)

(* Removing aborted transactions preserves consistency. *)
let check_theorem_4_2 ?config model program =
  let result = Enumerate.run ?config model program in
  List.for_all
    (fun (e : Enumerate.execution) ->
      Consistency.consistent model (Trace.drop_aborted e.trace))
    result.executions

(* -- Lemma 5.1 ----------------------------------------------------------------- *)

type lemma_5_1_report = {
  executions_checked : int;
  mixed_race_free : int;
  pm_consistent : int;
  holds : bool;
}

(* Every implementation-model execution without mixed races remains
   consistent in the programmer model once quiescence fences are
   dropped. *)
let check_lemma_5_1 ?config program =
  let im = Model.implementation and pm = Model.programmer in
  let result = Enumerate.run ?config im program in
  let checked = ref 0 and free = ref 0 and consistent = ref 0 in
  List.iter
    (fun (e : Enumerate.execution) ->
      incr checked;
      let ctx = Lift.make e.trace in
      let hb = Hb.compute im ctx in
      if not (Race.has_mixed_race e.trace hb) then begin
        incr free;
        let defenced =
          Trace.sub e.trace (fun i ->
              not (Action.is_qfence (Trace.act e.trace i)))
        in
        if Consistency.consistent pm defenced then incr consistent
      end)
    result.executions;
  {
    executions_checked = !checked;
    mixed_race_free = !free;
    pm_consistent = !consistent;
    holds = !free = !consistent;
  }
