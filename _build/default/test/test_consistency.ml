open Tmx_core
open Tb

let pm = Model.programmer
let im = Model.implementation

(* Load buffering (§2, forbidden): each thread reads the other's later
   write. *)
let test_load_buffering () =
  let t =
    mk ~locs:[ "x"; "y" ]
      [ r 0 "x" 1 1; w 0 "y" 1 1; r 1 "y" 1 1; w 1 "x" 1 1 ]
  in
  (* WF8 already fails (reads see the future), and Causality fails too *)
  let report = Consistency.check pm t in
  Alcotest.(check bool) "lb inconsistent" false (Consistency.ok report);
  Alcotest.(check bool) "causality violated" false report.causality

let test_store_buffering () =
  let t =
    mk ~locs:[ "x"; "y" ]
      [ w 0 "x" 1 1; w 1 "y" 1 1; r 0 "y" 0 0; r 1 "x" 0 0 ]
  in
  check_consistent pm t true

(* §2 Example 2.2: the reversed-coherence privatization. *)
let test_ex2_2_antiww () =
  let t =
    mk ~locs:[ "x"; "y" ]
      [
        b 0; r 0 "y" 0 0; w 0 "x" 2 2; c 0;
        b 1; w 1 "y" 1 1; c 1;
        w 1 "x" 1 1;
      ]
  in
  check_consistent pm t false;
  (* without AntiWW (implementation model) it is consistent *)
  check_consistent im t true

(* Aborted-read publication (§2, allowed). *)
let test_aborted_read_publication () =
  let t =
    mk ~locs:[ "x"; "y" ]
      [
        b 0; w 0 "x" 1 1; w 0 "y" 1 1; c 0;
        b 1; r 1 "y" 1 1; a 1;
        r 1 "x" 0 0;
      ]
  in
  check_consistent pm t true

(* Opacity (§2, forbidden): IRIW with aborted readers. *)
let test_opacity () =
  let t =
    mk ~locs:[ "x"; "y" ]
      [
        b 0; w 0 "x" 1 1; c 0;
        b 1; w 1 "y" 1 1; c 1;
        b 2; r 2 "x" 1 1; r 2 "y" 0 0; a 2;
        b 3; r 3 "y" 1 1; r 3 "x" 0 0; a 3;
      ]
  in
  check_consistent pm t false;
  (* with plain writes instead, allowed *)
  let t2 =
    mk ~locs:[ "x"; "y" ]
      [
        w 0 "x" 1 1;
        w 1 "y" 1 1;
        b 2; r 2 "x" 1 1; r 2 "y" 0 0; a 2;
        b 3; r 3 "y" 1 1; r 3 "x" 0 0; a 3;
      ]
  in
  check_consistent pm t2 true

(* §2 coherence figure (forbidden): stale read after synchronization. *)
let test_coherence_figure () =
  let t =
    mk ~locs:[ "x"; "y" ]
      [
        w 0 "x" 1 1; b 0; w 0 "y" 1 1; c 0;
        w 1 "x" 2 2; b 1; r 1 "y" 1 1; c 1;
        r 1 "x" 2 2; r 1 "x" 1 1;
      ]
  in
  check_consistent pm t false

(* §2 CSE figure (allowed): new-old-new without synchronization. *)
let test_cse_figure () =
  let t =
    mk ~locs:[ "x" ]
      [
        w 0 "x" 1 1; w 0 "x" 2 2;
        r 1 "x" 2 2; r 1 "x" 1 1; r 1 "x" 2 2;
      ]
  in
  check_consistent pm t true

(* Theorem 4.2 on a hand trace with an aborted transaction. *)
let test_drop_aborted_consistent () =
  let t =
    mk ~locs:[ "x"; "y" ]
      [
        b 0; w 0 "x" 1 1; w 0 "y" 1 1; c 0;
        b 1; r 1 "y" 1 1; a 1;
        r 1 "x" 0 0;
      ]
  in
  Alcotest.(check bool) "original consistent" true (Consistency.consistent pm t);
  Alcotest.(check bool) "aborted-free version consistent" true
    (Consistency.consistent pm (Trace.drop_aborted t))

(* The fenced privatization execution (§5): placing the transactional
   write coherence-after the plain write violates Coherence through the
   fence edges. *)
let test_fence_restores_privatization () =
  let bad =
    mk ~locs:[ "x"; "y" ]
      [
        b 0; r 0 "y" 0 0; w 0 "x" 2 2; c 0;
        b 1; w 1 "y" 1 1; c 1;
        q 1 "x";
        w 1 "x" 1 1;
      ]
  in
  check_consistent im bad false;
  let good =
    mk ~locs:[ "x"; "y" ]
      [
        b 0; r 0 "y" 0 0; w 0 "x" 1 1; c 0;
        b 1; w 1 "y" 1 1; c 1;
        q 1 "x";
        w 1 "x" 2 2;
      ]
  in
  check_consistent im good true

let suite =
  [
    Alcotest.test_case "load buffering forbidden" `Quick test_load_buffering;
    Alcotest.test_case "store buffering allowed" `Quick test_store_buffering;
    Alcotest.test_case "Ex 2.2 AntiWW" `Quick test_ex2_2_antiww;
    Alcotest.test_case "aborted-read publication allowed" `Quick test_aborted_read_publication;
    Alcotest.test_case "opacity of aborted transactions" `Quick test_opacity;
    Alcotest.test_case "coherence figure forbidden" `Quick test_coherence_figure;
    Alcotest.test_case "CSE figure allowed" `Quick test_cse_figure;
    Alcotest.test_case "Thm 4.2 on a hand trace" `Quick test_drop_aborted_consistent;
    Alcotest.test_case "fences restore privatization" `Quick test_fence_restores_privatization;
  ]
