examples/pipeline.ml: Array Domain Fmt Stm Tarray Tmx_runtime Tqueue Tvar
