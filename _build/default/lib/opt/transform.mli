(** The program transformations of §5, as generators: each function
    returns every program obtainable by one application of the
    transformation.  Soundness is checked empirically by {!Soundness}.

    Sound per the paper (in the implementation model): swapping adjacent
    independent writes or adjacent reads; moving a write past a read-only
    transaction; roach motel; fusion of adjacent transactions; eliding or
    introducing empty transactions.  Deliberately unsound, for negative
    testing: fission, and swapping a read past a write (which turns load
    buffering into store buffering, and breaks the (‡) privatization
    example in the programmer model). *)

open Tmx_lang

val swap_independent : Ast.program -> Ast.program list
val write_past_readonly_txn : Ast.program -> Ast.program list
val roach_motel : Ast.program -> Ast.program list
val fuse : Ast.program -> Ast.program list
val fission : Ast.program -> Ast.program list
val elide_empty : Ast.program -> Ast.program list
val introduce_empty : Ast.program -> Ast.program list
val swap_read_write : Ast.program -> Ast.program list

type named = {
  name : string;
  sound : bool;  (** the paper's claim *)
  generate : Ast.program -> Ast.program list;
}

val all : named list
