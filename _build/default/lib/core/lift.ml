(* Transaction-lifting of relations (§2, "Lifted Relations").

     a lR b  iff  a R b, or a' R b' for some a' tx~ a !tx~ b tx~ b'
     a xR b  iff  a lR b and a, b are transactional
     a cR b  iff  a xR b and a, b are committed or live

   Classes of tx~ are transactions plus singleton classes for plain
   events; class-to-class reachability is computed once per relation. *)

let classes t =
  Array.init (Trace.length t) (fun i ->
      let b = Trace.txn_of t i in
      if b >= 0 then b else i)

let lifted t r =
  let n = Trace.length t in
  let cls = classes t in
  (* class-pair reachability, indexed by representative positions *)
  let cross = Rel.create n in
  Rel.iter r (fun i j -> Rel.add cross cls.(i) cls.(j));
  Rel.of_pred n (fun i j ->
      Rel.mem r i j || (cls.(i) <> cls.(j) && Rel.mem cross cls.(i) cls.(j)))

let lifted_x t r =
  Rel.filter (lifted t r) (fun i j ->
      Trace.is_transactional t i && Trace.is_transactional t j)

let lifted_c t r =
  Rel.filter (lifted t r) (fun i j ->
      Trace.is_committed_or_live_txn t i && Trace.is_committed_or_live_txn t j)

(* All lifted variants of the three base memory relations, computed once
   per trace and shared by happens-before, consistency and race checks. *)
type ctx = {
  trace : Trace.t;
  index_ : Rel.t;
  init_ : Rel.t;
  po : Rel.t;
  ww : Rel.t;
  wr : Rel.t;
  rw : Rel.t;
  lww : Rel.t;
  lwr : Rel.t;
  lrw : Rel.t;
  xww : Rel.t;
  xwr : Rel.t;
  xrw : Rel.t;
  cww : Rel.t;
  cwr : Rel.t;
  crw : Rel.t;
}

let make t =
  let ww = Trace.rel_ww t and wr = Trace.rel_wr t and rw = Trace.rel_rw t in
  {
    trace = t;
    index_ = Trace.rel_index t;
    init_ = Trace.rel_init t;
    po = Trace.rel_po t;
    ww;
    wr;
    rw;
    lww = lifted t ww;
    lwr = lifted t wr;
    lrw = lifted t rw;
    xww = lifted_x t ww;
    xwr = lifted_x t wr;
    xrw = lifted_x t rw;
    cww = lifted_c t ww;
    cwr = lifted_c t wr;
    crw = lifted_c t rw;
  }
