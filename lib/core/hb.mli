(** Happens-before (§2 of the paper; §5 for the quiescence-fence rules).

    [compute model ctx] is the least relation containing
    [init ∪ po ∪ cwr ∪ cww] (plus the HBCQ/HBQB fence edges when
    [model.quiescence]), closed under transitivity and whichever of the
    HBww/HBwr/HBrw rules and their primed variants [model] enables. *)

val compute : Model.t -> Lift.ctx -> Rel.t
(** The fixpoint maintains the transitive closure incrementally: the
    base relation is closed once and every rule-derived edge extends the
    closed relation in place ([Rel.union_into_closed]), instead of
    re-running a full closure per round.  [compute_reference] is the
    unoptimized equivalent. *)

val compute_from :
  Model.t ->
  plain:(int -> bool) ->
  crw:Rel.t ->
  lww:Rel.t ->
  lwr:Rel.t ->
  lrw:Rel.t ->
  Rel.t ->
  Rel.t
(** [compute_from model ~plain ~crw ~lww ~lwr ~lrw hb] runs the rule
    fixpoint over bare relations, with no trace in sight: the reduced
    enumerator evaluates candidate execution graphs before any
    linearization exists and supplies the plainness predicate and the
    lifted relations directly.  [hb] must already contain the
    transitively closed base relation; it is extended in place and
    returned. *)

val compute_reference : Model.t -> Lift.ctx -> Rel.t
(** The pre-cache fixpoint (full re-closure every round), kept as an
    oracle: tests assert [compute] and [compute_reference] coincide. *)

val quiescence_edges : Lift.ctx -> Rel.t
(** The HBCQ and HBQB edges of the implementation model, exposed for
    testing. *)
