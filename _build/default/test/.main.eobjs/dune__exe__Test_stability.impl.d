test/test_stability.ml: Alcotest Enumerate Fmt Hb Lift List Model Option QCheck QCheck_alcotest Stability Tb Test_theorems Tmx_core Tmx_exec Tmx_litmus Trace
