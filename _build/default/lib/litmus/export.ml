(* Export programs to the litmus text format of [Parse] — the inverse of
   parsing, used by `tmx export` and round-trip tested. *)

open Tmx_lang

let rec emit_stmt buf indent (s : Ast.stmt) =
  let pad = String.make indent ' ' in
  match s with
  | Ast.Atomic body ->
      Buffer.add_string buf (pad ^ "atomic {\n");
      List.iter (emit_stmt buf (indent + 2)) body;
      Buffer.add_string buf (pad ^ "}\n")
  | Ast.If (c, t, []) ->
      Buffer.add_string buf (Fmt.str "%sif %a {\n" pad Ast.pp_expr c);
      List.iter (emit_stmt buf (indent + 2)) t;
      Buffer.add_string buf (pad ^ "}\n")
  | Ast.If (c, t, e) ->
      Buffer.add_string buf (Fmt.str "%sif %a {\n" pad Ast.pp_expr c);
      List.iter (emit_stmt buf (indent + 2)) t;
      Buffer.add_string buf (pad ^ "} else {\n");
      List.iter (emit_stmt buf (indent + 2)) e;
      Buffer.add_string buf (pad ^ "}\n")
  | Ast.While (c, b) ->
      Buffer.add_string buf (Fmt.str "%swhile %a {\n" pad Ast.pp_expr c);
      List.iter (emit_stmt buf (indent + 2)) b;
      Buffer.add_string buf (pad ^ "}\n")
  | s -> Buffer.add_string buf (Fmt.str "%s%a\n" pad Ast.pp_stmt s)

let program_to_string (p : Ast.program) =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Fmt.str "name %s\n" p.name);
  Buffer.add_string buf
    (Fmt.str "locs %a\n" Fmt.(list ~sep:(any " ") string) p.locs);
  List.iteri
    (fun i thread ->
      Buffer.add_string buf (Fmt.str "\nthread %d:\n" i);
      List.iter (emit_stmt buf 2) thread)
    p.threads;
  Buffer.contents buf
