open Tmx_core
open Tb

let pm = Model.programmer
let im = Model.implementation

let priv_trace () =
  mk ~locs:[ "x"; "y" ]
    [
      b 0; r 0 "y" 0 0; w 0 "x" 1 1; c 0;
      b 1; w 1 "y" 1 1; c 1;
      w 1 "x" 2 2;
    ]

let test_privatization_race () =
  let t = priv_trace () in
  Alcotest.(check int) "race-free under pm (HBww)" 0
    (List.length (Race.races_of_model pm t));
  let races = Race.races_of_model im t in
  Alcotest.(check bool) "racy under im" true (races <> []);
  let ctx = Lift.make t in
  let hb = Hb.compute im ctx in
  Alcotest.(check bool) "the race is mixed (txn write vs plain write)" true
    (Race.has_mixed_race t hb)

let test_l_restriction () =
  let t = priv_trace () in
  let ctx = Lift.make t in
  let hb = Hb.compute im ctx in
  Alcotest.(check bool) "L={x} sees the race" true (Race.races ~l:[ "x" ] t hb <> []);
  Alcotest.(check bool) "L={y} does not" true (Race.races ~l:[ "y" ] t hb = [])

let test_txn_txn_never_race () =
  (* two unsynchronized transactions on the same location: conflicting but
     never racing *)
  let t =
    mk ~locs:[ "x" ] [ b 0; w 0 "x" 1 1; c 0; b 1; w 1 "x" 2 2; c 1 ]
  in
  Alcotest.(check int) "no transactional races" 0
    (List.length (Race.races_of_model im t))

let test_aborted_never_race () =
  let t = mk ~locs:[ "x" ] [ b 0; w 0 "x" 1 1; a 0; w 1 "x" 2 2 ] in
  Alcotest.(check int) "aborted actions do not race" 0
    (List.length (Race.races_of_model im t))

let test_read_read_never_race () =
  let t = mk ~locs:[ "x" ] [ r 0 "x" 0 0; b 1; r 1 "x" 0 0; c 1 ] in
  Alcotest.(check int) "two reads never race" 0
    (List.length (Race.races_of_model im t))

let test_plain_race_detected () =
  let t = mk ~locs:[ "x" ] [ w 0 "x" 1 1; r 1 "x" 1 1 ] in
  Alcotest.(check bool) "plain write/read race" true
    (Race.races_of_model pm t <> []);
  let ctx = Lift.make t in
  let hb = Hb.compute pm ctx in
  Alcotest.(check bool) "but it is not mixed" false (Race.has_mixed_race t hb)

let test_aborted_mixed_excluded () =
  (* a §5-shaped pair — transactional write vs plain write — is not a
     mixed race when the transaction aborted *)
  let t = mk ~locs:[ "x" ] [ b 0; w 0 "x" 1 1; a 0; w 1 "x" 2 2 ] in
  let ctx = Lift.make t in
  let hb = Hb.compute im ctx in
  Alcotest.(check int) "aborted txn: no mixed races" 0
    (List.length (Race.mixed_races t hb));
  (* the committed variant is the anomaly *)
  let t' = mk ~locs:[ "x" ] [ b 0; w 0 "x" 1 1; c 0; w 1 "x" 2 2 ] in
  let ctx' = Lift.make t' in
  let hb' = Hb.compute im ctx' in
  Alcotest.(check bool) "committed variant mixed-races" true
    (Race.has_mixed_race t' hb')

let test_fence_commit_side_orders () =
  (* HBCQ: the transaction commits before the fence, so the fence — and
     the plain write po-after it — is ordered after the commit *)
  let t =
    mk ~locs:[ "x" ] [ b 0; w 0 "x" 1 1; c 0; q 1 "x"; w 1 "x" 2 2 ]
  in
  Alcotest.(check int) "fence quiesces the committed txn" 0
    (List.length (Race.races_of_model im t));
  (* without the fence the same trace races *)
  let t' = mk ~locs:[ "x" ] [ b 0; w 0 "x" 1 1; c 0; w 1 "x" 2 2 ] in
  Alcotest.(check bool) "unfenced variant races" true
    (Race.races_of_model im t' <> [])

let test_fence_begin_side_orders () =
  (* HBQB: the transaction begins after the fence, so the plain write
     po-before the fence is ordered ahead of it *)
  let t =
    mk ~locs:[ "x" ] [ w 1 "x" 1 1; q 1 "x"; b 0; w 0 "x" 2 2; c 0 ]
  in
  Alcotest.(check int) "fence orders the later txn" 0
    (List.length (Race.races_of_model im t))

let test_fence_wrong_location () =
  (* a fence on an unrelated location protects nothing *)
  let t =
    mk ~locs:[ "x"; "y" ] [ b 0; w 0 "x" 1 1; c 0; q 1 "y"; w 1 "x" 2 2 ]
  in
  Alcotest.(check bool) "y-fence does not quiesce x" true
    (Race.races_of_model im t <> [])

let suite =
  [
    Alcotest.test_case "privatization race pm vs im" `Quick test_privatization_race;
    Alcotest.test_case "spatial restriction" `Quick test_l_restriction;
    Alcotest.test_case "transactions never race" `Quick test_txn_txn_never_race;
    Alcotest.test_case "aborted actions never race" `Quick test_aborted_never_race;
    Alcotest.test_case "reads never race" `Quick test_read_read_never_race;
    Alcotest.test_case "plain races detected" `Quick test_plain_race_detected;
    Alcotest.test_case "aborted txns excluded from mixed races" `Quick
      test_aborted_mixed_excluded;
    Alcotest.test_case "commit-side fence orders (HBCQ)" `Quick
      test_fence_commit_side_orders;
    Alcotest.test_case "begin-side fence orders (HBQB)" `Quick
      test_fence_begin_side_orders;
    Alcotest.test_case "fences are per-location" `Quick
      test_fence_wrong_location;
  ]
