lib/opt/transform.ml: Ast Footprint List Tmx_lang
