(* The §2 degeneracy claim: "transactions behave exactly like the
   volatiles of [9] for degenerate traces in which each transaction
   contains a single read or write action ... and each transaction is
   committed and contiguous."

   Machine-checked: programs whose designated locations are accessed only
   through singleton atomic blocks produce the same outcomes as their
   desugared versions running under the machine's *native* volatile
   semantics (a separate implementation: one value + one frontier per
   location, no history). *)

open Tmx_lang
open Tmx_exec

(* replace singleton atomic accesses with bare accesses *)
let rec desugar_stmt (s : Ast.stmt) =
  match s with
  | Atomic [ (Load _ as inner) ] | Atomic [ (Store _ as inner) ] -> inner
  | Atomic body -> Ast.Atomic body
  | If (c, t, e) -> If (c, List.map desugar_stmt t, List.map desugar_stmt e)
  | While (c, b) -> While (c, List.map desugar_stmt b)
  | s -> s

let desugar (p : Ast.program) =
  { p with Ast.threads = List.map (List.map desugar_stmt) p.threads }

let agree ?(volatile = [ "x"; "y" ]) name (p : Ast.program) =
  let txn = Tmx_machine.Machine.run p in
  let vol = Tmx_machine.Machine.run ~volatile (desugar p) in
  let only_in a b =
    List.filter (fun o -> not (List.exists (Outcome.equal o) b)) a
  in
  (match only_in txn.outcomes vol.outcomes with
  | [] -> ()
  | o :: _ -> Alcotest.failf "%s: transactional-only outcome %a" name Outcome.pp o);
  match only_in vol.outcomes txn.outcomes with
  | [] -> ()
  | o :: _ -> Alcotest.failf "%s: volatile-only outcome %a" name Outcome.pp o

(* classic shapes written with singleton transactions *)
let sb_singleton =
  Ast.(
    program ~name:"sb-singleton" ~locs:[ "x"; "y" ]
      [
        [ atomic [ store (loc "x") (int 1) ]; atomic [ load "r" (loc "y") ] ];
        [ atomic [ store (loc "y") (int 1) ]; atomic [ load "q" (loc "x") ] ];
      ])

let mp_singleton =
  Ast.(
    program ~name:"mp-singleton" ~locs:[ "x"; "y" ]
      [
        [ atomic [ store (loc "x") (int 1) ]; atomic [ store (loc "y") (int 1) ] ];
        [ atomic [ load "r1" (loc "y") ]; atomic [ load "r2" (loc "x") ] ];
      ])

let iriw_singleton =
  Ast.(
    program ~name:"iriw-singleton" ~locs:[ "x"; "y" ]
      [
        [ atomic [ store (loc "x") (int 1) ] ];
        [ atomic [ store (loc "y") (int 1) ] ];
        [ atomic [ load "r1" (loc "x") ]; atomic [ load "r2" (loc "y") ] ];
        [ atomic [ load "q1" (loc "y") ]; atomic [ load "q2" (loc "x") ] ];
      ])

let corr_singleton =
  Ast.(
    program ~name:"corr-singleton" ~locs:[ "x" ]
      [
        [ atomic [ store (loc "x") (int 1) ]; atomic [ store (loc "x") (int 2) ] ];
        [ atomic [ load "r1" (loc "x") ]; atomic [ load "r2" (loc "x") ] ];
      ])

let test_shapes () =
  agree "sb" sb_singleton;
  agree "mp" mp_singleton;
  agree "iriw" iriw_singleton;
  agree ~volatile:[ "x" ] "corr" corr_singleton

(* random programs over singleton transactional accesses to x, y plus
   plain accesses to a third location *)
let gen_singleton_program =
  let open QCheck.Gen in
  let gen_stmt =
    frequency
      [
        ( 3,
          map2
            (fun x v -> Ast.atomic [ Ast.store (Ast.loc x) (Ast.int v) ])
            (oneofl [ "x"; "y" ]) (int_range 1 2) );
        (3, map (fun x -> Ast.atomic [ Ast.load "_r" (Ast.loc x) ]) (oneofl [ "x"; "y" ]));
        (2, map (fun v -> Ast.store (Ast.loc "z") (Ast.int v)) (int_range 1 2));
        (1, return (Ast.load "_r" (Ast.loc "z")));
      ]
  in
  let rename counter th =
    List.map
      (fun (s : Ast.stmt) ->
        let rec go (s : Ast.stmt) =
          match s with
          | Load (_, lv) ->
              incr counter;
              Ast.Load (Fmt.str "r%d" !counter, lv)
          | Atomic body -> Atomic (List.map go body)
          | s -> s
        in
        go s)
      th
  in
  map
    (fun threads ->
      let counter = ref 0 in
      Ast.program ~name:"singleton" ~locs:[ "x"; "y"; "z" ]
        (List.map (rename counter) threads))
    (list_size (int_range 2 3) (list_size (int_range 1 3) gen_stmt))

let prop_random =
  QCheck.Test.make ~name:"degeneracy on random singleton programs" ~count:60
    (QCheck.make ~print:(Fmt.str "%a" Ast.pp_program) gen_singleton_program)
    (fun p ->
      let txn = Tmx_machine.Machine.run p in
      let vol = Tmx_machine.Machine.run ~volatile:[ "x"; "y" ] (desugar p) in
      List.for_all (fun o -> List.exists (Outcome.equal o) vol.outcomes) txn.outcomes
      && List.for_all (fun o -> List.exists (Outcome.equal o) txn.outcomes) vol.outcomes)

let suite =
  [
    Alcotest.test_case "degenerate shapes" `Quick test_shapes;
    Tb.qcheck prop_random;
  ]
