lib/opt/footprint.ml: Ast List String Tmx_lang
