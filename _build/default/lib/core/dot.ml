(* Graphviz export of executions, in the style of the paper's figures:
   transactions are boxes (solid for committed/live, dashed for aborted),
   and the derived relations are labelled edges. *)

let escape s = String.concat "\\\"" (String.split_on_char '"' s)

let node_label t i =
  Fmt.str "%d: %s" i (escape (Fmt.str "%a" Action.pp (Trace.act t i)))

let edges buf name color rel skip =
  Rel.iter rel (fun i j ->
      if not (skip i j) then
        Buffer.add_string buf
          (Fmt.str "  e%d -> e%d [label=\"%s\", color=\"%s\", fontcolor=\"%s\"];\n"
             i j name color color))

let to_dot ?(model = Model.programmer) ?(show_hb = false) t =
  let buf = Buffer.create 1024 in
  let ctx = Lift.make t in
  Buffer.add_string buf "digraph execution {\n  rankdir=TB;\n  node [shape=plaintext, fontname=\"monospace\"];\n";
  (* transaction clusters *)
  let clusters = Hashtbl.create 8 in
  for i = 0 to Trace.length t - 1 do
    let b = Trace.txn_of t i in
    if b >= 0 then
      Hashtbl.replace clusters b (i :: Option.value (Hashtbl.find_opt clusters b) ~default:[])
  done;
  Hashtbl.iter
    (fun b members ->
      let aborted = Trace.status t b = Some Trace.Aborted in
      Buffer.add_string buf
        (Fmt.str "  subgraph cluster_%d {\n    style=%s;\n    color=%s;\n" b
           (if aborted then "dashed" else "solid")
           (if aborted then "red" else "blue"));
      List.iter
        (fun i ->
          Buffer.add_string buf
            (Fmt.str "    e%d [label=\"%s\"];\n" i (node_label t i)))
        (List.rev members);
      Buffer.add_string buf "  }\n")
    clusters;
  (* plain events *)
  for i = 0 to Trace.length t - 1 do
    if Trace.is_plain t i then
      Buffer.add_string buf (Fmt.str "  e%d [label=\"%s\"];\n" i (node_label t i))
  done;
  (* program order as invisible backbone between po-adjacent events *)
  let last = Hashtbl.create 8 in
  for i = 0 to Trace.length t - 1 do
    let th = Trace.thread t i in
    (match Hashtbl.find_opt last th with
    | Some j ->
        Buffer.add_string buf (Fmt.str "  e%d -> e%d [style=dotted, arrowhead=none];\n" j i)
    | None -> ());
    Hashtbl.replace last th i
  done;
  edges buf "rf" "darkgreen" ctx.wr (fun _ _ -> false);
  edges buf "ww" "blue" ctx.ww (fun i j ->
      (* only coherence-adjacent edges, to avoid clutter *)
      Rel.fold ctx.ww (fun a b acc -> acc || (a = i && Rel.mem ctx.ww b j)) false);
  edges buf "rw" "orange" ctx.rw (fun _ _ -> false);
  if show_hb then begin
    let hb = Hb.compute model ctx in
    edges buf "hb" "gray" hb (fun i j ->
        Rel.mem ctx.po i j
        || Rel.fold hb (fun a b acc -> acc || (a = i && Rel.mem hb b j && a <> b && b <> j)) false)
  end;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
