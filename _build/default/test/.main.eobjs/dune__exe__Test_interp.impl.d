test/test_interp.ml: Alcotest Enumerate Fmt Infix List Model Option Outcome Tmx_core Tmx_exec Tmx_harness Tmx_lang Tmx_litmus Tmx_runtime
