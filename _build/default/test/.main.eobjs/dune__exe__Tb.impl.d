test/tb.ml: Action Alcotest Consistency Fmt Model Rat Tmx_core Trace
