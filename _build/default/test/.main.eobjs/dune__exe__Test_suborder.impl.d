test/test_suborder.ml: Alcotest Consistency Enumerate Fmt Hb Lift List Model Option Rel Suborder Tb Tmx_core Tmx_exec Tmx_litmus
