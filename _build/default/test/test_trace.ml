open Tmx_core
open Tb

(* The visualization example of §2: b:(Wy1 Wx1) committed; c:(Ry1) aborted;
   d: plain Wx2. *)
let paper_trace () =
  mk ~locs:[ "x"; "y" ]
    [
      b 0; w 0 "y" 1 1; w 0 "x" 1 1; c 0;
      b 1; r 1 "y" 1 1; a 1;
      w 1 "x" 2 2;
    ]

let test_membership () =
  let t = paper_trace () in
  (* init transaction occupies positions 0..3: B Wx Wy C *)
  let base = 4 in
  Alcotest.(check bool) "init events transactional" true (Trace.is_transactional t 0);
  Alcotest.(check int) "Wy1 belongs to b" base (Trace.txn_of t (base + 1));
  Alcotest.(check int) "Wx1 belongs to b" base (Trace.txn_of t (base + 2));
  Alcotest.(check int) "Ry1 belongs to c" (base + 4) (Trace.txn_of t (base + 5));
  Alcotest.(check bool) "Wx2 is plain" true (Trace.is_plain t (base + 7));
  Alcotest.(check bool) "same txn" true (Trace.same_txn t (base + 1) (base + 2));
  Alcotest.(check bool) "cross txn" false (Trace.same_txn t (base + 1) (base + 5))

let test_status () =
  let t = paper_trace () in
  let base = 4 in
  Alcotest.(check (option (of_pp Trace.pp_status))) "b committed"
    (Some Trace.Committed) (Trace.status t (base + 1));
  Alcotest.(check (option (of_pp Trace.pp_status))) "c aborted"
    (Some Trace.Aborted) (Trace.status t (base + 5));
  Alcotest.(check bool) "aborted read is aborted" true (Trace.is_aborted t (base + 5));
  Alcotest.(check bool) "plain write nonaborted" true (Trace.is_nonaborted t (base + 7));
  Alcotest.(check bool) "plain not committed-or-live txn" false
    (Trace.is_committed_or_live_txn t (base + 7))

let test_live () =
  let t = mk ~locs:[ "x" ] [ b 0; w 0 "x" 1 1 ] in
  Alcotest.(check (option (of_pp Trace.pp_status))) "live txn" (Some Trace.Live)
    (Trace.status t 4);
  Alcotest.(check bool) "not all resolved" false (Trace.all_txns_resolved t)

let test_relations () =
  let t = paper_trace () in
  let base = 4 in
  let ww = Trace.rel_ww t and wr = Trace.rel_wr t and rw = Trace.rel_rw t in
  Alcotest.(check bool) "Wx1 ww Wx2" true (Rel.mem ww (base + 2) (base + 7));
  Alcotest.(check bool) "init-x ww Wx1" true (Rel.mem ww 1 (base + 2) || Rel.mem ww 2 (base + 2));
  Alcotest.(check bool) "Wy1 wr Ry1" true (Rel.mem wr (base + 1) (base + 5));
  (* Ry1 rw Wx2? no: different locations.  Ry1 has no later y write. *)
  Alcotest.(check bool) "no rw from Ry1" false (Rel.mem rw (base + 5) (base + 7));
  (* the aborted read's source is found *)
  Alcotest.(check (option int)) "wr source" (Some (base + 1)) (Trace.wr_source t (base + 5))

let test_rw_excludes_aborted_target () =
  (* x written by committed init, read plainly, then an aborted txn write:
     rw must not target the aborted write *)
  let t =
    mk ~locs:[ "x" ] [ r 1 "x" 0 0; b 0; w 0 "x" 5 1; a 0 ]
  in
  let rw = Trace.rel_rw t in
  (* read at position 3, aborted write at position 5 *)
  Alcotest.(check bool) "no rw to aborted" false (Rel.mem rw 3 5)

let test_final_value () =
  let t = paper_trace () in
  Alcotest.(check (option int)) "final x" (Some 2) (Trace.final_value t "x");
  Alcotest.(check (option int)) "final y" (Some 1) (Trace.final_value t "y");
  (* aborted writes don't count *)
  let t2 = mk ~locs:[ "x" ] [ b 0; w 0 "x" 9 5; a 0 ] in
  Alcotest.(check (option int)) "aborted ignored" (Some 0) (Trace.final_value t2 "x")

let test_contiguity () =
  let contiguous = paper_trace () in
  Alcotest.(check bool) "paper trace contiguous" true (Trace.all_txns_contiguous contiguous);
  let interleaved =
    mk ~locs:[ "x"; "y" ]
      [ b 0; w 0 "y" 1 1; w 1 "x" 7 1; w 0 "x" 1 2; c 0 ]
  in
  Alcotest.(check bool) "foreign write inside span" false
    (Trace.all_txns_contiguous interleaved);
  (* a trailing live transaction with the owner silent afterwards is fine *)
  let trailing =
    mk ~locs:[ "x" ] [ b 0; w 0 "x" 1 1; w 1 "x" 2 2 ]
  in
  Alcotest.(check bool) "live trailing txn contiguous" true
    (Trace.all_txns_contiguous trailing)

let test_drop_aborted () =
  let t = paper_trace () in
  let t' = Trace.drop_aborted t in
  Alcotest.(check int) "aborted txn removed" (Trace.length t - 3) (Trace.length t');
  Alcotest.(check bool) "still well-formed" true (Wellformed.is_well_formed t')

let test_permute () =
  let t = paper_trace () in
  let n = Trace.length t in
  let identity = Array.init n Fun.id in
  Alcotest.(check bool) "identity order-preserving" true
    (Trace.is_order_preserving t identity);
  (* swap the two adjacent cross-thread events: Ry1's txn and the plain
     Wx2 — both thread 1, so swapping them is NOT order-preserving *)
  let bad = Array.init n Fun.id in
  bad.(n - 1) <- n - 2;
  bad.(n - 2) <- n - 1;
  Alcotest.(check bool) "same-thread swap not order-preserving" false
    (Trace.is_order_preserving t bad);
  (* move the aborted transaction before b: cross-thread, order-preserving *)
  let base = 4 in
  let perm = Array.of_list ([ 0; 1; 2; 3 ] @ [ base + 4; base + 5; base + 6 ] @ [ base; base + 1; base + 2; base + 3; base + 7 ]) in
  Alcotest.(check bool) "cross-thread reorder order-preserving" true
    (Trace.is_order_preserving t perm);
  let t' = Trace.permute t perm in
  Alcotest.(check int) "length preserved" n (Trace.length t')

let suite =
  [
    Alcotest.test_case "transaction membership" `Quick test_membership;
    Alcotest.test_case "statuses" `Quick test_status;
    Alcotest.test_case "live transactions" `Quick test_live;
    Alcotest.test_case "base relations" `Quick test_relations;
    Alcotest.test_case "rw excludes aborted targets" `Quick test_rw_excludes_aborted_target;
    Alcotest.test_case "final values" `Quick test_final_value;
    Alcotest.test_case "contiguity" `Quick test_contiguity;
    Alcotest.test_case "drop aborted (Thm 4.2 support)" `Quick test_drop_aborted;
    Alcotest.test_case "permutations" `Quick test_permute;
  ]
