test/test_trace.ml: Alcotest Array Fun Rel Tb Tmx_core Trace Wellformed
