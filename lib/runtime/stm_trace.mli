(** Structured event tracing for the runtime STM (off by default).

    Each domain records into a private ring buffer of the most recent
    [capacity] events, so tracing adds no cross-domain contention; a
    disabled trace costs one atomic read per would-be event.  Use
    {!enable}/{!disable} around the region of interest and {!snapshot}
    to collect a time-sorted view.  Snapshots taken while other domains
    are still transacting are best-effort (per-domain rings are read
    without synchronization); snapshots of a quiescent system are
    exact. *)

type kind =
  | Begin  (** optimistic attempt starts; detail = retry number *)
  | Read_validate_fail
      (** a read or commit-time validation failed; detail = tvar id
          (-1 for commit-time validation of the whole read set) *)
  | Lock_fail  (** lock acquisition failed; detail = tvar id *)
  | Commit  (** detail = retries the transaction needed *)
  | User_abort
  | Escalate  (** took the serialized slow path; detail = retry count *)
  | Quiesce_start  (** detail = fenced tvar id, -1 for a global fence *)
  | Quiesce_end
  | Partial_abort
      (** partial mode rolled back to a checkpoint instead of
          restarting; detail = length of the retained read-set prefix *)

type event = { time_ns : int; domain : int; kind : kind; detail : int }
(** [time_ns] is {!Clock.now_ns} — monotonic, not wall-clock. *)

val enable : ?capacity:int -> unit -> unit
(** Clear all rings and start recording.  [capacity] (default 1024,
    persists across calls) sizes rings allocated from now on; rings
    already allocated keep their size. *)

val disable : unit -> unit
val enabled : unit -> bool

val record : kind -> ?detail:int -> unit -> unit
(** Append an event to the calling domain's ring (no-op when
    disabled).  [detail] defaults to [-1] ("none"). *)

val snapshot : unit -> event list
(** All retained events from every domain, sorted by timestamp. *)

val clear : unit -> unit

val dropped : unit -> int
(** Events overwritten by ring wrap-around since the last {!clear},
    summed over domains. *)

val kind_name : kind -> string
val pp_event : Format.formatter -> event -> unit
