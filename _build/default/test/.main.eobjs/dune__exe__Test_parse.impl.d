test/test_parse.ml: Alcotest Catalog Enumerate List Litmus Option Parse String Tmx_core Tmx_exec Tmx_litmus
