lib/runtime/tarray.ml: Array Stm Tvar
