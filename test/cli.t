The litmus runner checks paper examples against their verdicts:

  $ ../bin/tmx.exe litmus privatization | tail -1
  1/1 litmus tests pass

Models are listed with their switches:

  $ ../bin/tmx.exe models | head -2
  pm       hb: ww anti: ww fences:false
  im       hb: anti: fences:true

Outcome enumeration under a chosen model:

  $ ../bin/tmx.exe outcomes sb -m pm | tail -4
    mem:[x=1 y=1]
    t1:[q=1] mem:[x=1 y=1]
    t0:[r=1] mem:[x=1 y=1]
    t0:[r=1] t1:[q=1] mem:[x=1 y=1]

The implementation model without fences admits the privatization anomaly:

  $ ../bin/tmx.exe outcomes privatization -m im | grep 'x=1'
    mem:[x=1 y=1]

User litmus files parse and check:

  $ ../bin/tmx.exe check ../litmus/privatization.litmus | head -1
  [PASS] privatization (user)

Programs export to the text format:

  $ ../bin/tmx.exe export lb
  name lb
  locs x y
  
  thread 0:
    r := x
    y := 1
  
  thread 1:
    q := y
    x := 1

The theorem checks summarize SC-LTRF, Thm 4.2 and Lemma 5.1:

  $ ../bin/tmx.exe theorems publication
  publication                  SC-LTRF:ok (seq-racy:false weak:false contained:true)  Thm4.2:ok Lemma5.1:ok (2/2)

The STM bench drives multi-domain workloads and writes a JSON report
(counts are workload-dependent, so only the stable summary is checked):

  $ ../bin/tmx.exe stm-bench -d 2 -n 20 --mode lazy --policy jittered -o BENCH_stm.json | tail -1
  wrote BENCH_stm.json (3 runs)

  $ test -s BENCH_stm.json && echo report-written
  report-written

Unknown names produce errors:

  $ ../bin/tmx.exe litmus nosuch 2>&1 | head -1
  tmx: unknown litmus test "nosuch"; try `tmx litmus --list'
