(** Graphviz export of executions, in the style of the paper's figures:
    transactions are boxes (solid blue for committed/live, dashed red for
    aborted); reads-from, coherence and antidependency edges are
    labelled; happens-before can be overlaid. *)

val to_dot : ?model:Model.t -> ?show_hb:bool -> Trace.t -> string
