(* Canonical program form — the cache-key serialization.  The text
   mirrors the litmus format of [Tmx_litmus.Parse]/[Export] (which this
   library cannot depend on), with every degree of freedom pinned:
   sorted deduped locs, two-space indentation, one statement per line.

   Negative literals are the one AST form the parser cannot produce
   (unary minus parses as [Sub (Int 0, x)]), so [normalize] rewrites
   them into that shape and printing stays parse-invertible. *)

let rec norm_expr (e : Ast.expr) : Ast.expr =
  match e with
  | Int n when n < 0 -> Sub (Int 0, Int (-n))
  | Int _ | Reg _ -> e
  | Add (a, b) -> Add (norm_expr a, norm_expr b)
  | Sub (a, b) -> Sub (norm_expr a, norm_expr b)
  | Mul (a, b) -> Mul (norm_expr a, norm_expr b)
  | Eq (a, b) -> Eq (norm_expr a, norm_expr b)
  | Ne (a, b) -> Ne (norm_expr a, norm_expr b)
  | Lt (a, b) -> Lt (norm_expr a, norm_expr b)
  | Not a -> Not (norm_expr a)
  | And (a, b) -> And (norm_expr a, norm_expr b)
  | Or (a, b) -> Or (norm_expr a, norm_expr b)

let norm_lval ({ base; index } : Ast.lval) : Ast.lval =
  { base; index = Option.map norm_expr index }

let rec norm_stmt (s : Ast.stmt) : Ast.stmt =
  match s with
  | Load (r, lv) -> Load (r, norm_lval lv)
  | Store (lv, e) -> Store (norm_lval lv, norm_expr e)
  | Assign (r, e) -> Assign (r, norm_expr e)
  | Atomic body -> Atomic (List.map norm_stmt body)
  | Abort | Skip | Fence _ -> s
  | If (c, t, e) -> If (norm_expr c, List.map norm_stmt t, List.map norm_stmt e)
  | While (c, b) -> While (norm_expr c, List.map norm_stmt b)

let normalize (p : Ast.program) : Ast.program =
  {
    p with
    locs = List.sort_uniq String.compare p.locs;
    threads = List.map (List.map norm_stmt) p.threads;
  }

let rec emit_stmt buf indent (s : Ast.stmt) =
  let pad = String.make indent ' ' in
  match s with
  | Ast.Atomic body ->
      Buffer.add_string buf (pad ^ "atomic {\n");
      List.iter (emit_stmt buf (indent + 2)) body;
      Buffer.add_string buf (pad ^ "}\n")
  | Ast.If (c, t, []) ->
      Buffer.add_string buf (Fmt.str "%sif %a {\n" pad Ast.pp_expr c);
      List.iter (emit_stmt buf (indent + 2)) t;
      Buffer.add_string buf (pad ^ "}\n")
  | Ast.If (c, t, e) ->
      Buffer.add_string buf (Fmt.str "%sif %a {\n" pad Ast.pp_expr c);
      List.iter (emit_stmt buf (indent + 2)) t;
      Buffer.add_string buf (pad ^ "} else {\n");
      List.iter (emit_stmt buf (indent + 2)) e;
      Buffer.add_string buf (pad ^ "}\n")
  | Ast.While (c, b) ->
      Buffer.add_string buf (Fmt.str "%swhile %a {\n" pad Ast.pp_expr c);
      List.iter (emit_stmt buf (indent + 2)) b;
      Buffer.add_string buf (pad ^ "}\n")
  | s -> Buffer.add_string buf (Fmt.str "%s%a\n" pad Ast.pp_stmt s)

let emit ~with_name buf (p : Ast.program) =
  if with_name then Buffer.add_string buf (Fmt.str "name %s\n" p.name);
  Buffer.add_string buf
    (Fmt.str "locs %a\n" Fmt.(list ~sep:(any " ") string) p.locs);
  List.iteri
    (fun i thread ->
      Buffer.add_string buf (Fmt.str "\nthread %d:\n" i);
      List.iter (emit_stmt buf 2) thread)
    p.threads

let to_string p =
  let buf = Buffer.create 256 in
  emit ~with_name:true buf (normalize p);
  Buffer.contents buf

let structural p =
  let buf = Buffer.create 256 in
  emit ~with_name:false buf (normalize p);
  Buffer.contents buf

let digest p = Digest.to_hex (Digest.string (structural p))
