open Tmx_core
open Tmx_lang
open Tmx_exec
open Tmx_litmus

let test_family family () =
  List.iter
    (fun (r : Shapes.result) ->
      if not r.ok then
        Alcotest.failf "%s: expected %s, observed %s" r.case.name
          (if r.case.forbidden then "forbidden" else "allowed")
          (if r.observed_forbidden then "forbidden" else "allowed"))
    (List.map Shapes.run_case
       (List.filter (fun (c : Shapes.case) -> c.family = family) Shapes.all_cases))

(* serializability: fully transactional programs behave atomically — the
   model admits only outcomes of the sequential reference semantics *)
let gen_txn_program : Ast.program QCheck.Gen.t =
  let open QCheck.Gen in
  let locs = [ "x"; "y" ] in
  let gen_loc = oneofl locs in
  let gen_inner =
    frequency
      [
        (3, map2 (fun x v -> Ast.store (Ast.loc x) (Ast.int v)) gen_loc (int_range 1 2));
        (3, map (fun x -> Ast.load "_r" (Ast.loc x)) gen_loc);
      ]
  in
  let gen_stmt =
    map (fun body -> Ast.atomic body) (list_size (int_range 1 3) gen_inner)
  in
  let rename counter th =
    let rec rename_stmt (s : Ast.stmt) =
      match s with
      | Load (_, lv) ->
          incr counter;
          Ast.Load (Fmt.str "r%d" !counter, lv)
      | Atomic body -> Ast.Atomic (List.map rename_stmt body)
      | s -> s
    in
    List.map rename_stmt th
  in
  map
    (fun threads ->
      let counter = ref 0 in
      Ast.program ~name:"txn-only" ~locs (List.map (rename counter) threads))
    (list_size (int_range 2 3) (list_size (int_range 1 2) gen_stmt))

let prop_serializability =
  QCheck.Test.make ~name:"transactional programs are serializable" ~count:100
    (QCheck.make ~print:(Fmt.str "%a" Ast.pp_program) gen_txn_program)
    (fun p ->
      let model = Enumerate.outcomes (Enumerate.run Model.programmer p) in
      let sc = Sc.outcomes (Sc.run p) in
      List.for_all (fun o -> List.exists (Outcome.equal o) sc) model)

let suite =
  [
    Alcotest.test_case "message passing family" `Quick (test_family "mp");
    Alcotest.test_case "store buffering family" `Quick (test_family "sb");
    Alcotest.test_case "load buffering family" `Quick (test_family "lb");
    Alcotest.test_case "IRIW family" `Slow (test_family "iriw");
    Alcotest.test_case "coherence family" `Quick (test_family "corr");
    Alcotest.test_case "2+2W family" `Quick (test_family "2+2w");
    Alcotest.test_case "WRC family" `Slow (test_family "wrc");
    Tb.qcheck prop_serializability;
  ]
