test/test_rat.ml: Alcotest QCheck QCheck_alcotest Rat Tmx_core
