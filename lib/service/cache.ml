(* Content-addressed verdict cache: one JSON file per key, atomic
   write-then-rename persistence, a mutex-guarded LRU front shared
   across domains, and corruption-tolerant loads (any failure to read
   an entry is a miss, never a crash).

   The store can be sharded by digest prefix: with [shards = n > 1] a
   key's entry lives in dir/shard-XX/ where XX is the key's first two
   hex digits reduced mod n, and each shard carries its own lock, LRU
   front and counters.  Shared-nothing by construction — no two shards
   ever touch the same file, so shard damage (corruption, deletion, a
   full disk partition) is contained, and concurrent domains touching
   different shards never contend on a lock.  Cross-process writers
   were already safe via write-then-rename; per-shard locking only
   narrows the in-process critical sections. *)

open Tmx_core
open Tmx_lang
open Tmx_exec

type verdict = {
  result : Enumerate.result;
  races : (int * int) list array;
  mixed : bool array;
  lint_race_free : bool;
  lint_findings : int;
  lint_mixed : int;
}

(* -- the miss path ---------------------------------------------------------- *)

let compute ~config model program =
  let result = Enumerate.run ~config model program in
  let n = List.length result.executions in
  let races = Array.make n [] in
  let mixed = Array.make n false in
  List.iteri
    (fun i (e : Enumerate.execution) ->
      let hb = Hb.compute model (Lift.make e.trace) in
      races.(i) <- Race.races e.trace hb;
      mixed.(i) <- Race.has_mixed_race e.trace hb)
    result.executions;
  let lint = Tmx_analysis.Lint.lint program in
  {
    result;
    races;
    mixed;
    lint_race_free = Tmx_analysis.Lint.race_free lint;
    lint_findings = List.length lint.findings;
    lint_mixed = Tmx_analysis.Lint.mixed_count lint;
  }

(* -- serialization ---------------------------------------------------------- *)

let format_version = "tmx-cache-1"

let json_of_rat r = Json.str (Rat.to_string r)

let rat_of_json j =
  match Json.to_str j with
  | None -> None
  | Some s -> (
      match String.index_opt s '/' with
      | None -> Option.map Rat.of_int (int_of_string_opt s)
      | Some i -> (
          match
            ( int_of_string_opt (String.sub s 0 i),
              int_of_string_opt
                (String.sub s (i + 1) (String.length s - i - 1)) )
          with
          | Some num, Some den when den <> 0 -> Some (Rat.make num den)
          | _ -> None))

let json_of_event (e : Action.event) =
  let t = Json.int e.thread in
  match e.act with
  | Action.Write { loc; value; ts } ->
      Json.Arr [ t; Json.str "W"; Json.str loc; Json.int value; json_of_rat ts ]
  | Action.Read { loc; value; ts } ->
      Json.Arr [ t; Json.str "R"; Json.str loc; Json.int value; json_of_rat ts ]
  | Action.Begin -> Json.Arr [ t; Json.str "B" ]
  | Action.Commit -> Json.Arr [ t; Json.str "C" ]
  | Action.Abort -> Json.Arr [ t; Json.str "A" ]
  | Action.Qfence loc -> Json.Arr [ t; Json.str "Q"; Json.str loc ]

exception Malformed

let get = function Some v -> v | None -> raise Malformed

let event_of_json j : Action.event =
  match Json.to_list j with
  | Some (t :: Json.Str tag :: rest) -> (
      let thread = get (Json.to_int t) in
      match (tag, rest) with
      | "W", [ loc; value; ts ] ->
          {
            thread;
            act =
              Action.Write
                {
                  loc = get (Json.to_str loc);
                  value = get (Json.to_int value);
                  ts = get (rat_of_json ts);
                };
          }
      | "R", [ loc; value; ts ] ->
          {
            thread;
            act =
              Action.Read
                {
                  loc = get (Json.to_str loc);
                  value = get (Json.to_int value);
                  ts = get (rat_of_json ts);
                };
          }
      | "B", [] -> { thread; act = Action.Begin }
      | "C", [] -> { thread; act = Action.Commit }
      | "A", [] -> { thread; act = Action.Abort }
      | "Q", [ loc ] -> { thread; act = Action.Qfence (get (Json.to_str loc)) }
      | _ -> raise Malformed)
  | _ -> raise Malformed

let json_of_bindings bs =
  Json.Arr (List.map (fun (k, v) -> Json.Arr [ Json.str k; Json.int v ]) bs)

let bindings_of_json j =
  List.map
    (fun pair ->
      match Json.to_list pair with
      | Some [ k; v ] -> (get (Json.to_str k), get (Json.to_int v))
      | _ -> raise Malformed)
    (get (Json.to_list j))

let json_of_outcome (o : Outcome.t) =
  Json.Obj
    [
      ("regs", Json.Arr (Array.to_list (Array.map json_of_bindings o.regs)));
      ("mem", json_of_bindings o.mem);
    ]

let outcome_of_json j : Outcome.t =
  {
    regs =
      Array.of_list
        (List.map bindings_of_json (get (Json.to_list (get (Json.mem "regs" j)))));
    mem = bindings_of_json (get (Json.mem "mem" j));
  }

let json_of_execution (e : Enumerate.execution) races mixed =
  Json.Obj
    [
      ( "locs",
        Json.Arr (List.map (fun l -> Json.str l) (Trace.locs e.trace)) );
      ( "events",
        Json.Arr
          (Array.to_list (Array.map json_of_event (Trace.events e.trace))) );
      ("outcome", json_of_outcome e.outcome);
      ( "races",
        Json.Arr
          (List.map (fun (a, b) -> Json.Arr [ Json.int a; Json.int b ]) races)
      );
      ("mixed", Json.bool mixed);
    ]

let execution_of_json j =
  let locs =
    List.map
      (fun l -> get (Json.to_str l))
      (get (Json.to_list (get (Json.mem "locs" j))))
  in
  let events =
    List.map event_of_json (get (Json.to_list (get (Json.mem "events" j))))
  in
  (* [Trace.events] includes the WF1 initializing transaction, so the
     raw [of_events] rebuilds the trace exactly *)
  let trace = Trace.of_events ~locs events in
  let outcome = outcome_of_json (get (Json.mem "outcome" j)) in
  let races =
    List.map
      (fun pair ->
        match Json.to_list pair with
        | Some [ a; b ] -> (get (Json.to_int a), get (Json.to_int b))
        | _ -> raise Malformed)
      (get (Json.to_list (get (Json.mem "races" j))))
  in
  let mixed = get (Json.to_bool (get (Json.mem "mixed" j))) in
  ((({ trace; outcome } : Enumerate.execution), races), mixed)

let json_of_verdict ~version ~model_name ~config_key v =
  Json.Obj
    [
      ("format", Json.str version);
      ("model", Json.str model_name);
      ("config", Json.str config_key);
      ("truncated", Json.bool v.result.truncated);
      ("capped", Json.bool v.result.capped);
      ("graphs", Json.int v.result.graphs);
      ("explored", Json.int v.result.explored);
      ( "lint",
        Json.Obj
          [
            ("race_free", Json.bool v.lint_race_free);
            ("findings", Json.int v.lint_findings);
            ("mixed", Json.int v.lint_mixed);
          ] );
      ( "executions",
        Json.Arr
          (List.mapi
             (fun i e -> json_of_execution e v.races.(i) v.mixed.(i))
             v.result.executions) );
    ]

let verdict_of_json j =
  let parsed =
    List.map execution_of_json (get (Json.to_list (get (Json.mem "executions" j))))
  in
  let lint = get (Json.mem "lint" j) in
  {
    result =
      {
        executions = List.map (fun ((e, _), _) -> e) parsed;
        truncated = get (Json.to_bool (get (Json.mem "truncated" j)));
        capped = get (Json.to_bool (get (Json.mem "capped" j)));
        graphs = get (Json.to_int (get (Json.mem "graphs" j)));
        (* absent in pre-reduction cache files: those were written by
           the unreduced enumerator, where explored = graphs *)
        explored =
          (match Json.mem "explored" j with
          | Some x -> get (Json.to_int x)
          | None -> get (Json.to_int (get (Json.mem "graphs" j))));
      };
    races = Array.of_list (List.map (fun ((_, r), _) -> r) parsed);
    mixed = Array.of_list (List.map (fun (_, m) -> m) parsed);
    lint_race_free = get (Json.to_bool (get (Json.mem "race_free" lint)));
    lint_findings = get (Json.to_int (get (Json.mem "findings" lint)));
    lint_mixed = get (Json.to_int (get (Json.mem "mixed" lint)));
  }

(* -- the store -------------------------------------------------------------- *)

type stats = {
  hits : int;
  misses : int;
  stores : int;
  evictions : int;
  load_failures : int;
}

type shard = {
  lock : Mutex.t;
  lru : (string, verdict * int ref) Hashtbl.t;
  tick : int ref;
  capacity : int;
  mutable hits : int;
  mutable misses : int;
  mutable st_stores : int;
  mutable evictions : int;
  mutable load_failures : int;
}

type t = {
  cache_dir : string;
  version : string;
  shards : shard array;
}

(* first two hex digits of the (MD5-hex) key pick the shard: enough
   prefix for 256-way spread, and short enough that every digest the
   digester can produce carries it *)
let prefix_len = 2

let default_dir () =
  match Sys.getenv_opt "TMX_CACHE_DIR" with
  | Some d when d <> "" -> d
  | _ -> ".tmx-cache"

let ensure_dir d = if not (Sys.file_exists d) then Unix.mkdir d 0o755

let shard_dir_name i = Printf.sprintf "shard-%02d" i

let create ?(version = format_version) ?(capacity = 128) ?(shards = 1) ~dir () =
  let shards = max 1 shards in
  ensure_dir dir;
  if shards > 1 then
    for i = 0 to shards - 1 do
      ensure_dir (Filename.concat dir (shard_dir_name i))
    done;
  (* the total LRU budget is split across the shards (at least one
     entry each), so capacity keeps its meaning under sharding *)
  let per_shard = max 1 (capacity / shards) in
  {
    cache_dir = dir;
    version;
    shards =
      Array.init shards (fun _ ->
          {
            lock = Mutex.create ();
            lru = Hashtbl.create 64;
            tick = ref 0;
            capacity = per_shard;
            hits = 0;
            misses = 0;
            st_stores = 0;
            evictions = 0;
            load_failures = 0;
          });
  }

let dir t = t.cache_dir
let shard_count t = Array.length t.shards

let key t ~config model (program : Ast.program) =
  Digest.to_hex
    (Digest.string
       (String.concat "\x00"
          [
            Canon.structural program;
            model.Model.name;
            Enumerate.config_key config;
            t.version;
          ]))

let hex_digit c =
  match c with
  | '0' .. '9' -> Char.code c - Char.code '0'
  | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
  | _ -> invalid_arg (Printf.sprintf "Cache: non-hex digest character %C" c)

(* A digest shorter than the shard prefix cannot be placed (truncated
   keys would silently alias into shard 0 and shadow each other), so it
   is a caller bug worth an exception rather than a miss. *)
let shard_index t k =
  if String.length k < prefix_len then
    invalid_arg
      (Printf.sprintf "Cache: digest %S shorter than the %d-char shard prefix"
         k prefix_len);
  ((hex_digit k.[0] * 16) + hex_digit k.[1]) mod Array.length t.shards

let shard_of_key t k = t.shards.(shard_index t k)

let entry_path t k =
  let i = shard_index t k in
  if Array.length t.shards = 1 then Filename.concat t.cache_dir (k ^ ".json")
  else Filename.concat (Filename.concat t.cache_dir (shard_dir_name i)) (k ^ ".json")

let locked (s : shard) f =
  Mutex.lock s.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock s.lock) f

(* caller holds the shard lock *)
let lru_insert (s : shard) k v =
  (if (not (Hashtbl.mem s.lru k)) && Hashtbl.length s.lru >= s.capacity then
     (* evict the least recently used; capacity is small, a scan is fine *)
     let victim = ref None in
     Hashtbl.iter
       (fun k (_, tick) ->
         match !victim with
         | Some (_, best) when best <= !tick -> ()
         | _ -> victim := Some (k, !tick))
       s.lru;
     match !victim with
     | Some (k, _) ->
         Hashtbl.remove s.lru k;
         s.evictions <- s.evictions + 1
     | None -> ());
  incr s.tick;
  Hashtbl.replace s.lru k (v, ref !(s.tick))

let load_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Everything that can go wrong reading an entry — absent, torn,
   garbage, wrong shape, wrong version — lands in one of the three
   constructors; no exception escapes. *)
let load_disk t path =
  if not (Sys.file_exists path) then `Absent
  else
    match Json.of_string (load_file path) with
    | exception _ -> `Corrupt
    | Error _ -> `Corrupt
    | Ok j -> (
        match Json.to_str (Option.value ~default:Json.Null (Json.mem "format" j)) with
        | Some v when v = t.version -> (
            match verdict_of_json j with
            | v -> `Found v
            | exception _ -> `Corrupt)
        | _ -> `Corrupt)

let find t ~config model program =
  let k = key t ~config model program in
  let s = shard_of_key t k in
  let in_lru =
    locked s (fun () ->
        match Hashtbl.find_opt s.lru k with
        | Some (v, tick) ->
            incr s.tick;
            tick := !(s.tick);
            s.hits <- s.hits + 1;
            Some v
        | None -> None)
  in
  match in_lru with
  | Some v -> Some v
  | None -> (
      (* disk I/O outside the lock; a racing duplicate load is benign *)
      match load_disk t (entry_path t k) with
      | `Found v ->
          locked s (fun () ->
              s.hits <- s.hits + 1;
              lru_insert s k v);
          Some v
      | `Absent ->
          locked s (fun () -> s.misses <- s.misses + 1);
          None
      | `Corrupt ->
          locked s (fun () ->
              s.misses <- s.misses + 1;
              s.load_failures <- s.load_failures + 1);
          None)

let tmp_counter = Atomic.make 0

let store t ~config model program v =
  let k = key t ~config model program in
  let s = shard_of_key t k in
  let path = entry_path t k in
  let body =
    Json.to_string
      (json_of_verdict ~version:t.version
         ~model_name:model.Model.name
         ~config_key:(Enumerate.config_key config)
         v)
  in
  (* the temp file lives in the entry's own shard directory so the
     rename stays within one filesystem directory (atomic everywhere) *)
  let tmp =
    Filename.concat (Filename.dirname path)
      (Printf.sprintf ".tmp-%s-%d-%d" k (Unix.getpid ())
         (Atomic.fetch_and_add tmp_counter 1))
  in
  let oc = open_out_bin tmp in
  (try
     output_string oc body;
     close_out oc;
     Unix.rename tmp path
   with e ->
     close_out_noerr oc;
     (try Sys.remove tmp with _ -> ());
     raise e);
  locked s (fun () ->
      s.st_stores <- s.st_stores + 1;
      lru_insert s k v)

let memo t ~config model program =
  match find t ~config model program with
  | Some v -> (v, `Hit)
  | None ->
      let v = compute ~config model program in
      store t ~config model program v;
      (v, `Miss)

let memo_run t ~config model program =
  (fst (memo t ~config model program)).result

let stats t =
  Array.fold_left
    (fun (acc : stats) s ->
      locked s (fun () ->
          {
            hits = acc.hits + s.hits;
            misses = acc.misses + s.misses;
            stores = acc.stores + s.st_stores;
            evictions = acc.evictions + s.evictions;
            load_failures = acc.load_failures + s.load_failures;
          }))
    { hits = 0; misses = 0; stores = 0; evictions = 0; load_failures = 0 }
    t.shards

let resident t =
  Array.fold_left
    (fun acc s -> acc + locked s (fun () -> Hashtbl.length s.lru))
    0 t.shards

(* -- maintenance ------------------------------------------------------------ *)

type disk_stats = {
  entries : int;
  bytes : int;
  current : int;
  stale : int;
  corrupt : int;
}

(* maintenance walks the flat layout and any shard-XX/ subdirectories
   in one pass, so one `tmx cache gc` serves both layouts *)
let entry_files dir =
  if not (Sys.file_exists dir) then []
  else
    let entries_in d =
      if not (Sys.file_exists d) then []
      else
        Sys.readdir d |> Array.to_list
        |> List.filter (fun f -> Filename.check_suffix f ".json")
        |> List.map (Filename.concat d)
    in
    let shard_dirs =
      Sys.readdir dir |> Array.to_list
      |> List.filter (fun f ->
             String.length f > 6
             && String.sub f 0 6 = "shard-"
             && Sys.is_directory (Filename.concat dir f))
      |> List.map (Filename.concat dir)
    in
    List.concat_map entries_in (dir :: shard_dirs) |> List.sort String.compare

let classify ~version path =
  match Json.of_string (load_file path) with
  | exception _ -> `Corrupt
  | Error _ -> `Corrupt
  | Ok j -> (
      match Json.to_str (Option.value ~default:Json.Null (Json.mem "format" j)) with
      | Some v when v = version -> (
          match verdict_of_json j with
          | _ -> `Current
          | exception _ -> `Corrupt)
      | Some _ -> `Stale
      | None -> `Corrupt)

let disk_stats ?(version = format_version) ~dir () =
  List.fold_left
    (fun acc path ->
      let size = try (Unix.stat path).Unix.st_size with _ -> 0 in
      let acc = { acc with entries = acc.entries + 1; bytes = acc.bytes + size } in
      match classify ~version path with
      | `Current -> { acc with current = acc.current + 1 }
      | `Stale -> { acc with stale = acc.stale + 1 }
      | `Corrupt -> { acc with corrupt = acc.corrupt + 1 })
    { entries = 0; bytes = 0; current = 0; stale = 0; corrupt = 0 }
    (entry_files dir)

let gc ?(version = format_version) ~dir () =
  List.fold_left
    (fun removed path ->
      match classify ~version path with
      | `Current -> removed
      | `Stale | `Corrupt -> (
          try
            Sys.remove path;
            removed + 1
          with _ -> removed))
    0 (entry_files dir)

let clear ~dir =
  List.fold_left
    (fun removed path ->
      try
        Sys.remove path;
        removed + 1
      with _ -> removed)
    0 (entry_files dir)
