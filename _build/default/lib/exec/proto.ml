(* Thread unfolding: from a litmus program to per-thread sequences of
   proto-events.

   Control flow depends on the values loads return, so each load branches
   over the location's value domain; infeasible assumptions die later when
   no write can fulfil the read.  Value domains are computed by a small
   fixpoint: start with {0} everywhere and iterate collecting the values
   threads can write. *)

open Tmx_lang

type proto =
  | PWrite of string * int
  | PRead of string * int (* assumed value *)
  | PBegin
  | PCommit
  | PAbort
  | PQfence of string

let pp_proto ppf = function
  | PWrite (x, v) -> Fmt.pf ppf "W%s%d" x v
  | PRead (x, v) -> Fmt.pf ppf "R%s%d" x v
  | PBegin -> Fmt.string ppf "B"
  | PCommit -> Fmt.string ppf "C"
  | PAbort -> Fmt.string ppf "A"
  | PQfence x -> Fmt.pf ppf "Q%s" x

type env = (string * int) list

let env_get env r = Option.value (List.assoc_opt r env) ~default:0
let env_set env r v = (r, v) :: List.remove_assoc r env

let rec eval env : Ast.expr -> int = function
  | Int n -> n
  | Reg r -> env_get env r
  | Add (a, b) -> eval env a + eval env b
  | Sub (a, b) -> eval env a - eval env b
  | Mul (a, b) -> eval env a * eval env b
  | Eq (a, b) -> if eval env a = eval env b then 1 else 0
  | Ne (a, b) -> if eval env a <> eval env b then 1 else 0
  | Lt (a, b) -> if eval env a < eval env b then 1 else 0
  | Not a -> if eval env a = 0 then 1 else 0
  | And (a, b) -> if eval env a <> 0 && eval env b <> 0 then 1 else 0
  | Or (a, b) -> if eval env a <> 0 || eval env b <> 0 then 1 else 0

let resolve env ({ base; index } : Ast.lval) =
  match index with
  | None -> base
  | Some e -> Fmt.str "%s[%d]" base (eval env e)

(* Value domains: location -> set of values a read may return. *)
module Domain = struct
  type t = (string, int list) Hashtbl.t (* sorted value lists *)

  let create locs =
    let d = Hashtbl.create 16 in
    List.iter (fun x -> Hashtbl.replace d x [ 0 ]) locs;
    d

  let values d x = Option.value (Hashtbl.find_opt d x) ~default:[ 0 ]

  let add d x v =
    let vs = values d x in
    if List.mem v vs then false
    else begin
      Hashtbl.replace d x (List.sort compare (v :: vs));
      true
    end

  let locs d = Hashtbl.fold (fun x _ acc -> x :: acc) d [] |> List.sort compare
end

type path = { protos : proto list; env : env; truncated : bool }

type item = S of Ast.stmt | End_atomic

(* Unfold one thread against a value domain.  [fuel] bounds loop
   unrollings; a path that exhausts it is marked truncated.

   An abort rolls the registers back to their values at the transaction's
   begin: like an STM, an aborted block has no observable effect beyond
   its trace actions.  [txn_env] holds the snapshot while inside an
   atomic block (no nesting, by validation). *)
let unfold_thread (domain : Domain.t) ~fuel (thread : Ast.thread) : path list =
  let rec go fuel env txn_env items acc =
    match items with
    | [] -> [ { protos = List.rev acc; env; truncated = false } ]
    | End_atomic :: rest -> go fuel env None rest (PCommit :: acc)
    | S s :: rest -> (
        match (s : Ast.stmt) with
        | Skip -> go fuel env txn_env rest acc
        | Assign (r, e) -> go fuel (env_set env r (eval env e)) txn_env rest acc
        | Load (r, lv) ->
            let x = resolve env lv in
            List.concat_map
              (fun v ->
                go fuel (env_set env r v) txn_env rest (PRead (x, v) :: acc))
              (Domain.values domain x)
        | Store (lv, e) ->
            let x = resolve env lv in
            go fuel env txn_env rest (PWrite (x, eval env e) :: acc)
        | Atomic body ->
            go fuel env (Some env)
              (List.map (fun s -> S s) body @ (End_atomic :: rest))
              (PBegin :: acc)
        | Abort ->
            let rec drop = function
              | End_atomic :: rest -> rest
              | _ :: rest -> drop rest
              | [] -> []
            in
            let rolled_back = Option.value txn_env ~default:env in
            go fuel rolled_back None (drop rest) (PAbort :: acc)
        | If (c, t, e) ->
            let branch = if eval env c <> 0 then t else e in
            go fuel env txn_env (List.map (fun s -> S s) branch @ rest) acc
        | While (c, b) ->
            if eval env c = 0 then go fuel env txn_env rest acc
            else if fuel <= 0 then
              [ { protos = List.rev acc; env; truncated = true } ]
            else
              go (fuel - 1) env txn_env
                (List.map (fun s -> S s) b @ (S (While (c, b)) :: rest))
                acc
        | Fence x -> go fuel env txn_env rest (PQfence x :: acc))
  in
  go fuel [] None (List.map (fun s -> S s) thread) []

(* Fixpoint of value domains.  Iteration is capped: extra values only add
   read assumptions that die at the reads-from stage, so a low cap is
   sound for programs whose data chains are short (all litmus programs
   converge in two rounds). *)
let domains ?(iters = 4) ~fuel (p : Ast.program) =
  let d = Domain.create p.locs in
  let rec loop i =
    if i >= iters then ()
    else begin
      let changed = ref false in
      List.iter
        (fun th ->
          List.iter
            (fun path ->
              List.iter
                (function
                  | PWrite (x, v) -> if Domain.add d x v then changed := true
                  | PRead (x, _) | PQfence x ->
                      (* make sure dynamically-named cells exist *)
                      if not (Hashtbl.mem d x) then begin
                        Hashtbl.replace d x [ 0 ];
                        changed := true
                      end
                  | _ -> ())
                path.protos)
            (unfold_thread d ~fuel th))
        p.threads;
      if !changed then loop (i + 1)
    end
  in
  loop 0;
  d

let unfold ?iters ~fuel (p : Ast.program) =
  let d = domains ?iters ~fuel p in
  (d, List.map (unfold_thread d ~fuel) p.threads)
