lib/core/trace.mli: Action Fmt Rel
