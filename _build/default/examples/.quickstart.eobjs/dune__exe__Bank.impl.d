examples/bank.ml: Array Atomic Domain Fmt List Option Stm Tmx_runtime Tvar
