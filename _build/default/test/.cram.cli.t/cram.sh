  $ ../bin/tmx.exe litmus privatization | tail -1
  $ ../bin/tmx.exe models | head -2
  $ ../bin/tmx.exe outcomes sb -m pm | tail -4
  $ ../bin/tmx.exe outcomes privatization -m im | grep 'x=1'
  $ ../bin/tmx.exe check ../litmus/privatization.litmus | head -1
  $ ../bin/tmx.exe export lb
  $ ../bin/tmx.exe theorems publication
  $ ../bin/tmx.exe litmus nosuch 2>&1 | head -1
