open Tmx_core
open Tmx_lang
open Tmx_opt

(* §5's optimizations are stated for the implementation model. *)
let im = Model.implementation

let find t_name = List.find (fun (t : Transform.named) -> t.name = t_name) Transform.all

(* programs where each transformation applies, with an observer thread so
   unsoundness would be visible *)
let swap_corpus =
  [
    Ast.(
      program ~name:"swap-ww" ~locs:[ "x"; "y" ]
        [
          [ store (loc "x") (int 1); store (loc "y") (int 1) ];
          [ load "a" (loc "y"); load "b" (loc "x") ];
        ]);
    Ast.(
      program ~name:"swap-rr" ~locs:[ "x"; "y" ]
        [
          [ load "a" (loc "x"); load "b" (loc "y") ];
          [ store (loc "y") (int 1); store (loc "x") (int 1) ];
        ]);
  ]

let txn_swap_corpus =
  [
    Ast.(
      program ~name:"w-past-ro-txn" ~locs:[ "x"; "y"; "z" ]
        [
          [ store (loc "z") (int 1); atomic [ load "a" (loc "y") ] ];
          [ atomic [ store (loc "y") (int 1) ]; load "q" (loc "z") ];
        ]);
  ]

let roach_corpus =
  [
    Ast.(
      program ~name:"roach" ~locs:[ "x"; "y" ]
        [
          [ store (loc "x") (int 1); atomic [ store (loc "y") (int 1) ]; store (loc "x") (int 2) ];
          [ atomic [ load "a" (loc "y") ]; load "b" (loc "x") ];
        ]);
    (Option.get (Tmx_litmus.Catalog.find "privatization")).program;
  ]

let fuse_corpus =
  [
    Ast.(
      program ~name:"fuse" ~locs:[ "x"; "y" ]
        [
          [ atomic [ store (loc "x") (int 1) ]; atomic [ store (loc "y") (int 1) ] ];
          [ atomic [ load "a" (loc "y"); load "b" (loc "x") ] ];
        ]);
  ]

let empty_corpus =
  [
    Ast.(
      program ~name:"empty" ~locs:[ "x" ]
        [
          [ store (loc "x") (int 1); atomic []; store (loc "x") (int 2) ];
          [ load "a" (loc "x") ];
        ]);
  ]

(* fission is unsound: the observer can see between the halves *)
let fission_witness =
  Ast.(
    program ~name:"fission-witness" ~locs:[ "x"; "y" ]
      [
        [ atomic [ store (loc "x") (int 1); store (loc "y") (int 1) ] ];
        [ atomic [ load "a" (loc "y"); load "b" (loc "x") ] ];
      ])

(* read/write swaps are unsound: they turn load buffering into store
   buffering *)
let rw_swap_witness =
  Ast.(
    program ~name:"rw-swap-witness" ~locs:[ "x"; "y" ]
      [
        [ load "r" (loc "x"); store (loc "y") (int 1) ];
        [ load "q" (loc "y"); store (loc "x") (int 1) ];
      ])

let assert_all_sound t_name corpus () =
  let t = find t_name in
  List.iter
    (fun p ->
      let r = Soundness.check_transformation im t p in
      Alcotest.(check bool)
        (Fmt.str "%s applies on %s" t_name p.Ast.name)
        true (r.variants > 0);
      match r.failures with
      | [] -> ()
      | (bad, witness) :: _ ->
          Alcotest.failf "%s unsound on %s:@ %a@ witness %a" t_name p.Ast.name
            Ast.pp_program bad Tmx_exec.Outcome.pp witness)
    corpus

let assert_some_unsound t_name witness_program () =
  let t = find t_name in
  let r = Soundness.check_transformation im t witness_program in
  Alcotest.(check bool) (t_name ^ " generates variants") true (r.variants > 0);
  Alcotest.(check bool) (t_name ^ " caught unsound") true (r.failures <> [])

(* the (‡) example: reordering a plain read earlier past a plain write is
   additionally unsound in the *programmer* model because of HBww *)
let test_reorder_unsound_in_pm () =
  let original = (Option.get (Tmx_litmus.Catalog.find "impl_reorder")).program in
  let transformed =
    (Option.get (Tmx_litmus.Catalog.find "impl_reorder_swapped")).program
  in
  match Soundness.check Model.programmer ~original ~transformed with
  | Soundness.Unsound _ -> ()
  | Soundness.Sound -> Alcotest.fail "expected (‡) reordering to be unsound under pm"

let suite =
  [
    Alcotest.test_case "swap independent accesses sound" `Slow
      (assert_all_sound "swap-independent" swap_corpus);
    Alcotest.test_case "write past read-only txn sound" `Slow
      (assert_all_sound "write-past-readonly-txn" txn_swap_corpus);
    Alcotest.test_case "roach motel sound" `Slow
      (assert_all_sound "roach-motel" roach_corpus);
    Alcotest.test_case "fusion sound" `Slow (assert_all_sound "fuse" fuse_corpus);
    Alcotest.test_case "elide empty sound" `Quick
      (assert_all_sound "elide-empty" empty_corpus);
    Alcotest.test_case "introduce empty sound" `Quick
      (assert_all_sound "introduce-empty" empty_corpus);
    Alcotest.test_case "fission unsound" `Quick
      (assert_some_unsound "fission" fission_witness);
    Alcotest.test_case "read/write swap unsound" `Quick
      (assert_some_unsound "swap-read-write" rw_swap_witness);
    Alcotest.test_case "(‡) reordering unsound under pm" `Quick
      test_reorder_unsound_in_pm;
  ]
