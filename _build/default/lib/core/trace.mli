(** Traces and the relations derived from them (§2 of the paper).

    A trace is a finite sequence of events; the paper's action id of an
    event is its position in the sequence.  This module derives the
    transaction structure (membership, resolution status, contiguity) and
    the base relations: index, init, program order, coherence ([ww]),
    reads-from ([wr]) and antidependency ([rw]). *)

type status = Committed | Aborted | Live

val pp_status : status Fmt.t

type t

val make : locs:string list -> Action.event list -> t
(** [make ~locs body] is the trace consisting of the WF1 initializing
    transaction (one write of [0] at timestamp [0] per location in [locs])
    followed by [body]. *)

val of_events : locs:string list -> Action.event list -> t
(** A raw trace with no implicit initializing transaction.  Used to build
    deliberately ill-formed traces in tests. *)

val init_events : string list -> Action.event list
(** The events of the WF1 initializing transaction. *)

val events : t -> Action.event array
val length : t -> int
val event : t -> int -> Action.event
val act : t -> int -> Action.t
val thread : t -> int -> Action.thread
val locs : t -> string list

(** {1 Transaction structure} *)

val txn_of : t -> int -> int
(** Position of the owning [Begin], or [-1] when the event is plain. *)

val is_transactional : t -> int -> bool
val is_plain : t -> int -> bool

val same_txn : t -> int -> int -> bool
(** The equivalence [tx~]: equal positions, or members of the same
    transaction. *)

val status : t -> int -> status option
val is_aborted : t -> int -> bool

val is_nonaborted : t -> int -> bool
(** Plain events count as nonaborted, as in the paper's definitions of
    conflict and antidependency. *)

val is_committed_or_live_txn : t -> int -> bool
(** Transactional and not aborted — the side condition of WF9/WF10 and of
    the [c]-lifted relations. *)

val is_init : t -> int -> bool
val resolution_of_txn : t -> int -> int option
val txn_touches : t -> int -> string -> bool
val txn_members : t -> int -> int list

val txns : t -> int list
(** Positions of all [Begin] events. *)

(** {1 Base relations (over positions)} *)

val rel_index : t -> Rel.t
val rel_init : t -> Rel.t
val rel_po : t -> Rel.t
val rel_ww : t -> Rel.t
val rel_wr : t -> Rel.t

val rel_rw : t -> Rel.t
(** [b rw c] iff [a wr b] and [a ww c] for some [a], and [c] is plain or
    nonaborted. *)

val wr_source : t -> int -> int option
(** The unique write a read takes its value from (matching location and
    timestamp), if any. *)

(** {1 Whole-trace queries} *)

val writes_to : t -> string -> int list

val final_value : t -> string -> int option
(** The value of the nonaborted write with the greatest timestamp. *)

val txn_contiguous : t -> int -> bool
val all_txns_contiguous : t -> bool
val all_txns_resolved : t -> bool

(** {1 Surgery} *)

val sub : t -> (int -> bool) -> t
(** Keep only the selected positions (re-analyzed as a fresh trace). *)

val drop_aborted : t -> t
(** Remove every event of every aborted transaction (Theorem 4.2). *)

val permute : t -> int array -> t
(** [permute t perm] reorders events; [perm.(new_position) = old_position]. *)

val is_order_preserving : t -> int array -> bool
(** Does the permutation preserve program order (§4)? *)

val pp : t Fmt.t
val pp_compact : t Fmt.t
