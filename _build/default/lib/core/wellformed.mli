(** Well-formedness of traces: WF1–WF11 of §2 and WF12 of §5.

    WF2 (unique action names) holds by construction since action ids are
    trace positions. *)

type violation =
  | WF1_no_init
  | WF3_duplicate_timestamp of int * int
  | WF4_unmatched_resolution of int
  | WF5_nested_begin of int
  | WF6_unfulfilled_read of int
  | WF7_aborted_source of int * int
  | WF8_read_from_future of int * int
  | WF9_txn_write_order of int * int
  | WF10_txn_read_order of int * int
  | WF11_same_txn_order of int * int
  | WF12_fence_overlap of int * int

val pp_violation : violation Fmt.t
val violations : Trace.t -> violation list
val is_well_formed : Trace.t -> bool
