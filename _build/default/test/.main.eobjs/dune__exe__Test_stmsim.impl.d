test/test_stmsim.ml: Alcotest Fmt List Option Outcome Stmsim Tmx_core Tmx_exec Tmx_litmus Tmx_stmsim
