(* A text format for litmus files, so the checker runs on user-written
   programs.  Example:

     name my-privatization
     locs x y

     thread 0:
       atomic { ry := y; if !ry { x := 1 } }

     thread 1:
       atomic { y := 1 }
       x := 2

     check pm forbidden mem x = 1
     check im allowed  mem x = 1
     check pm allowed  reg 0 ry = 0 && mem x = 2

   Identifiers declared under "locs" (and array cells "base[i]") are
   shared locations; every other identifier is a register.  Statements
   are separated by newlines or ';'.  '#' starts a comment. *)

open Tmx_core
open Tmx_lang

exception Error of string

let fail fmt = Fmt.kstr (fun s -> raise (Error s)) fmt

(* -- lexer ----------------------------------------------------------------- *)

type token =
  | IDENT of string
  | INT of int
  | ASSIGN (* := *)
  | LBRACE
  | RBRACE
  | LPAREN
  | RPAREN
  | LBRACKET
  | RBRACKET
  | BANG
  | EQ
  | NEQ
  | LT
  | ANDAND
  | OROR
  | PLUS
  | MINUS
  | STAR
  | SEMI
  | COLON
  | NEWLINE

let pp_token ppf = function
  | IDENT s -> Fmt.pf ppf "identifier %S" s
  | INT n -> Fmt.pf ppf "integer %d" n
  | ASSIGN -> Fmt.string ppf "':='"
  | LBRACE -> Fmt.string ppf "'{'"
  | RBRACE -> Fmt.string ppf "'}'"
  | LPAREN -> Fmt.string ppf "'('"
  | RPAREN -> Fmt.string ppf "')'"
  | LBRACKET -> Fmt.string ppf "'['"
  | RBRACKET -> Fmt.string ppf "']'"
  | BANG -> Fmt.string ppf "'!'"
  | EQ -> Fmt.string ppf "'='"
  | NEQ -> Fmt.string ppf "'!='"
  | LT -> Fmt.string ppf "'<'"
  | ANDAND -> Fmt.string ppf "'&&'"
  | OROR -> Fmt.string ppf "'||'"
  | PLUS -> Fmt.string ppf "'+'"
  | MINUS -> Fmt.string ppf "'-'"
  | STAR -> Fmt.string ppf "'*'"
  | SEMI -> Fmt.string ppf "';'"
  | COLON -> Fmt.string ppf "':'"
  | NEWLINE -> Fmt.string ppf "newline"

let is_ident_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
  || c = '_' || c = '\''

let tokenize src =
  let n = String.length src in
  let tokens = ref [] in
  let line = ref 1 in
  let emit t = tokens := (t, !line) :: !tokens in
  let rec go i =
    if i >= n then ()
    else
      match src.[i] with
      | ' ' | '\t' | '\r' -> go (i + 1)
      | '\n' ->
          emit NEWLINE;
          incr line;
          go (i + 1)
      | '#' ->
          let rec skip j = if j < n && src.[j] <> '\n' then skip (j + 1) else j in
          go (skip i)
      | ':' when i + 1 < n && src.[i + 1] = '=' ->
          emit ASSIGN;
          go (i + 2)
      | ':' ->
          emit COLON;
          go (i + 1)
      | '{' ->
          emit LBRACE;
          go (i + 1)
      | '}' ->
          emit RBRACE;
          go (i + 1)
      | '(' ->
          emit LPAREN;
          go (i + 1)
      | ')' ->
          emit RPAREN;
          go (i + 1)
      | '[' ->
          emit LBRACKET;
          go (i + 1)
      | ']' ->
          emit RBRACKET;
          go (i + 1)
      | '!' when i + 1 < n && src.[i + 1] = '=' ->
          emit NEQ;
          go (i + 2)
      | '!' ->
          emit BANG;
          go (i + 1)
      | '=' ->
          emit EQ;
          go (i + 1)
      | '<' when i + 1 < n && src.[i + 1] = '>' ->
          emit NEQ;
          go (i + 2)
      | '<' ->
          emit LT;
          go (i + 1)
      | '&' when i + 1 < n && src.[i + 1] = '&' ->
          emit ANDAND;
          go (i + 2)
      | '|' when i + 1 < n && src.[i + 1] = '|' ->
          emit OROR;
          go (i + 2)
      | '+' ->
          emit PLUS;
          go (i + 1)
      | '-' ->
          emit MINUS;
          go (i + 1)
      | '*' ->
          emit STAR;
          go (i + 1)
      | ';' ->
          emit SEMI;
          go (i + 1)
      | c when c >= '0' && c <= '9' ->
          let rec num j = if j < n && src.[j] >= '0' && src.[j] <= '9' then num (j + 1) else j in
          let j = num i in
          emit (INT (int_of_string (String.sub src i (j - i))));
          go j
      | c when is_ident_char c ->
          let rec ident j = if j < n && is_ident_char src.[j] then ident (j + 1) else j in
          let j = ident i in
          emit (IDENT (String.sub src i (j - i)));
          go j
      | c -> fail "line %d: unexpected character %C" !line c
  in
  go 0;
  List.rev !tokens

(* -- parser ----------------------------------------------------------------- *)

type state = { mutable toks : (token * int) list; mutable locs : string list }

let peek st = match st.toks with [] -> None | (t, _) :: _ -> Some t

let advance st = match st.toks with [] -> () | _ :: rest -> st.toks <- rest

let cur_line st = match st.toks with [] -> 0 | (_, l) :: _ -> l

let expect st t =
  match st.toks with
  | (t', _) :: rest when t' = t -> st.toks <- rest
  | (t', l) :: _ -> fail "line %d: expected %a, found %a" l pp_token t pp_token t'
  | [] -> fail "unexpected end of file: expected %a" pp_token t

let skip_newlines st =
  let rec go () =
    match peek st with
    | Some (NEWLINE | SEMI) ->
        advance st;
        go ()
    | _ -> ()
  in
  go ()

let ident st =
  match st.toks with
  | (IDENT s, _) :: rest ->
      st.toks <- rest;
      s
  | (t, l) :: _ -> fail "line %d: expected an identifier, found %a" l pp_token t
  | [] -> fail "unexpected end of file: expected an identifier"

let integer st =
  match st.toks with
  | (INT n, _) :: rest ->
      st.toks <- rest;
      n
  | (MINUS, _) :: (INT n, _) :: rest ->
      st.toks <- rest;
      -n
  | (t, l) :: _ -> fail "line %d: expected an integer, found %a" l pp_token t
  | [] -> fail "unexpected end of file: expected an integer"

(* a name denotes a location if declared exactly, or if it is the base of
   a declared array cell ("z" when "z[0]" is declared) *)
let is_loc st name =
  let prefix = name ^ "[" in
  let plen = String.length prefix in
  List.exists
    (fun l ->
      String.equal l name
      || (String.length l >= plen && String.equal (String.sub l 0 plen) prefix))
    st.locs

(* expressions over registers and constants; precedence (low to high):
   || ; && ; = != < ; + - ; * ; unary *)
let rec parse_expr st = parse_or st

and parse_or st =
  let lhs = parse_and st in
  match peek st with
  | Some OROR ->
      advance st;
      Ast.Or (lhs, parse_or st)
  | _ -> lhs

and parse_and st =
  let lhs = parse_cmp st in
  match peek st with
  | Some ANDAND ->
      advance st;
      Ast.And (lhs, parse_and st)
  | _ -> lhs

and parse_cmp st =
  let lhs = parse_add st in
  match peek st with
  | Some EQ ->
      advance st;
      Ast.Eq (lhs, parse_add st)
  | Some NEQ ->
      advance st;
      Ast.Ne (lhs, parse_add st)
  | Some LT ->
      advance st;
      Ast.Lt (lhs, parse_add st)
  | _ -> lhs

and parse_add st =
  let rec go lhs =
    match peek st with
    | Some PLUS ->
        advance st;
        go (Ast.Add (lhs, parse_mul st))
    | Some MINUS ->
        advance st;
        go (Ast.Sub (lhs, parse_mul st))
    | _ -> lhs
  in
  go (parse_mul st)

and parse_mul st =
  let rec go lhs =
    match peek st with
    | Some STAR ->
        advance st;
        go (Ast.Mul (lhs, parse_unary st))
    | _ -> lhs
  in
  go (parse_unary st)

and parse_unary st =
  match peek st with
  | Some BANG ->
      advance st;
      Ast.Not (parse_unary st)
  | Some MINUS ->
      advance st;
      Ast.Sub (Ast.Int 0, parse_unary st)
  | Some (INT _) -> Ast.Int (integer st)
  | Some LPAREN ->
      advance st;
      let e = parse_expr st in
      expect st RPAREN;
      e
  | Some (IDENT name) ->
      if is_loc st name then
        fail "line %d: location %S used in an expression (only registers \
              and constants may appear; use a load first)"
          (cur_line st) name;
      advance st;
      Ast.Reg name
  | Some t -> fail "line %d: unexpected %a in expression" (cur_line st) pp_token t
  | None -> fail "unexpected end of file in expression"

(* an lvalue: a declared location, optionally with an index *)
let parse_lval_from st base =
  match peek st with
  | Some LBRACKET ->
      advance st;
      let e = parse_expr st in
      expect st RBRACKET;
      Ast.cell base e
  | _ -> Ast.loc base

let rec parse_stmt st : Ast.stmt =
  match peek st with
  | Some (IDENT "atomic") ->
      advance st;
      expect st LBRACE;
      let body = parse_block st in
      Ast.atomic body
  | Some (IDENT "abort") ->
      advance st;
      Ast.abort
  | Some (IDENT "skip") ->
      advance st;
      Ast.skip
  | Some (IDENT "fence") ->
      advance st;
      expect st LPAREN;
      let x = ident st in
      (* an array cell: fence(z[0]) names the declared cell "z[0]" (the
         index must be a constant — fence names are static) *)
      let x =
        match peek st with
        | Some LBRACKET -> (
            advance st;
            match peek st with
            | Some (INT n) ->
                advance st;
                expect st RBRACKET;
                Fmt.str "%s[%d]" x n
            | t ->
                fail
                  "line %d: fence index must be a constant, found %a"
                  (cur_line st)
                  Fmt.(option pp_token ~none:(any "end of file"))
                  t)
        | _ -> x
      in
      expect st RPAREN;
      Ast.fence x
  | Some (IDENT "if") ->
      advance st;
      let c = parse_expr st in
      expect st LBRACE;
      let thenb = parse_block st in
      skip_newlines st;
      let elseb =
        match peek st with
        | Some (IDENT "else") ->
            advance st;
            expect st LBRACE;
            parse_block st
        | _ -> []
      in
      Ast.if_ c thenb elseb
  | Some (IDENT "while") ->
      advance st;
      let c = parse_expr st in
      expect st LBRACE;
      let body = parse_block st in
      Ast.while_ c body
  | Some (IDENT name) -> (
      advance st;
      if is_loc st name then begin
        let lv = parse_lval_from st name in
        expect st ASSIGN;
        Ast.store lv (parse_expr st)
      end
      else
        match peek st with
        | Some ASSIGN -> (
            advance st;
            (* a load ("r := x" / "r := z[e]") or a register computation *)
            match peek st with
            | Some (IDENT rhs) when is_loc st rhs ->
                advance st;
                let load = Ast.load name (parse_lval_from st rhs) in
                (match peek st with
                | Some (PLUS | MINUS | STAR | EQ | NEQ | LT | ANDAND | OROR) ->
                    fail
                      "line %d: location %S used in an expression (load it \
                       into a register first)"
                      (cur_line st) rhs
                | _ -> ());
                load
            | _ -> Ast.assign name (parse_expr st))
        | Some t ->
            fail "line %d: expected ':=' after %S, found %a" (cur_line st) name
              pp_token t
        | None -> fail "unexpected end of file after %S" name)
  | Some t -> fail "line %d: unexpected %a at start of statement" (cur_line st) pp_token t
  | None -> fail "unexpected end of file in statement"

and parse_block st =
  skip_newlines st;
  match peek st with
  | Some RBRACE ->
      advance st;
      []
  | _ ->
      let s = parse_stmt st in
      let rec more acc =
        skip_newlines st;
        match peek st with
        | Some RBRACE ->
            advance st;
            List.rev acc
        | _ -> more (parse_stmt st :: acc)
      in
      more [ s ]

(* -- top level --------------------------------------------------------------- *)

let top_keyword = function
  | Some (IDENT ("thread" | "check" | "name" | "locs")) -> true
  | None -> true
  | _ -> false

let parse_thread_body st =
  let rec go acc =
    skip_newlines st;
    if top_keyword (peek st) then List.rev acc else go (parse_stmt st :: acc)
  in
  go []

let parse_cond st =
  (* conjunctions of "reg THREAD NAME (=|!=) INT" and "mem LOC (=|!=) INT" *)
  let atom () =
    match peek st with
    | Some (IDENT "reg") ->
        advance st;
        let th = integer st in
        let r = ident st in
        let negated = peek st = Some NEQ in
        (match peek st with
        | Some (EQ | NEQ) -> advance st
        | _ -> fail "line %d: expected '=' or '!=' in condition" (cur_line st));
        let v = integer st in
        fun (o : Tmx_exec.Outcome.t) ->
          if negated then Tmx_exec.Outcome.reg o th r <> v
          else Tmx_exec.Outcome.reg o th r = v
    | Some (IDENT "mem") -> (
        advance st;
        let x = ident st in
        let x =
          match peek st with
          | Some LBRACKET ->
              advance st;
              let i = integer st in
              expect st RBRACKET;
              Fmt.str "%s[%d]" x i
          | _ -> x
        in
        let negated = peek st = Some NEQ in
        match peek st with
        | Some (EQ | NEQ) ->
            advance st;
            let v = integer st in
            fun o ->
              if negated then Tmx_exec.Outcome.mem o x <> v
              else Tmx_exec.Outcome.mem o x = v
        | _ -> fail "line %d: expected '=' or '!=' in condition" (cur_line st))
    | Some t -> fail "line %d: expected 'reg' or 'mem', found %a" (cur_line st) pp_token t
    | None -> fail "unexpected end of file in condition"
  in
  let rec conj acc =
    let a = atom () in
    let acc o = acc o && a o in
    match peek st with
    | Some ANDAND ->
        advance st;
        conj acc
    | _ -> acc
  in
  conj (fun _ -> true)

let parse string =
  let st = { toks = tokenize string; locs = [] } in
  let name = ref "litmus" in
  let threads : (int * Ast.thread) list ref = ref [] in
  let checks = ref [] in
  let rec go () =
    skip_newlines st;
    match peek st with
    | None -> ()
    | Some (IDENT "name") ->
        advance st;
        name := ident st;
        go ()
    | Some (IDENT "locs") ->
        advance st;
        let rec more () =
          match peek st with
          | Some (IDENT x) when not (top_keyword (Some (IDENT x))) ->
              advance st;
              let x =
                match peek st with
                | Some LBRACKET ->
                    advance st;
                    let i = integer st in
                    expect st RBRACKET;
                    Fmt.str "%s[%d]" x i
                | _ -> x
              in
              st.locs <- st.locs @ [ x ];
              more ()
          | _ -> ()
        in
        more ();
        go ()
    | Some (IDENT "thread") ->
        advance st;
        let i = integer st in
        expect st COLON;
        let body = parse_thread_body st in
        threads := (i, body) :: !threads;
        go ()
    | Some (IDENT "check") ->
        advance st;
        let model_name = ident st in
        let model =
          match Model.by_name model_name with
          | Some m -> m
          | None -> fail "line %d: unknown model %S" (cur_line st) model_name
        in
        let expect_kw = ident st in
        let expectation =
          match expect_kw with
          | "allowed" -> Litmus.Allowed
          | "forbidden" -> Litmus.Forbidden
          | s -> fail "line %d: expected 'allowed' or 'forbidden', found %S" (cur_line st) s
        in
        let descr_start = cur_line st in
        let cond = parse_cond st in
        checks :=
          Litmus.Outcome_check
            {
              model;
              descr = Fmt.str "check at line %d" descr_start;
              cond;
              expect = expectation;
            }
          :: !checks;
        go ()
    | Some t -> fail "line %d: unexpected %a at top level" (cur_line st) pp_token t
  in
  go ();
  let threads = List.sort compare !threads in
  (* thread indices must be 0..n-1 *)
  List.iteri
    (fun i (j, _) -> if i <> j then fail "thread indices must be consecutive from 0 (missing thread %d)" i)
    threads;
  let program =
    Ast.program ~name:!name ~locs:st.locs (List.map snd threads)
  in
  (match Ast.validate program with
  | Ok () -> ()
  | Error msg -> fail "invalid program: %s" msg);
  {
    Litmus.name = !name;
    section = "user";
    description = "parsed litmus file";
    program;
    checks = List.rev !checks;
  }

let parse_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  parse s
