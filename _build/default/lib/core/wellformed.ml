(* Well-formedness of traces: WF1–WF11 (§2) and WF12 (§5).

   WF2 (unique action names) holds by construction, since action ids are
   trace positions. *)

type violation =
  | WF1_no_init
  | WF3_duplicate_timestamp of int * int
  | WF4_unmatched_resolution of int
  | WF5_nested_begin of int
  | WF6_unfulfilled_read of int
  | WF7_aborted_source of int * int
  | WF8_read_from_future of int * int
  | WF9_txn_write_order of int * int
  | WF10_txn_read_order of int * int
  | WF11_same_txn_order of int * int
  | WF12_fence_overlap of int * int

let pp_violation ppf = function
  | WF1_no_init -> Fmt.string ppf "WF1: missing initializing transaction"
  | WF3_duplicate_timestamp (i, j) -> Fmt.pf ppf "WF3: duplicate timestamp at %d,%d" i j
  | WF4_unmatched_resolution i -> Fmt.pf ppf "WF4: resolution without begin at %d" i
  | WF5_nested_begin i -> Fmt.pf ppf "WF5: nested begin at %d" i
  | WF6_unfulfilled_read i -> Fmt.pf ppf "WF6: unfulfilled read at %d" i
  | WF7_aborted_source (a, b) -> Fmt.pf ppf "WF7: read %d from aborted/live foreign write %d" b a
  | WF8_read_from_future (a, b) -> Fmt.pf ppf "WF8: read %d sees future write %d" b a
  | WF9_txn_write_order (b, c) -> Fmt.pf ppf "WF9: txn write %d ww-before earlier %d" b c
  | WF10_txn_read_order (b, c) -> Fmt.pf ppf "WF10: txn read %d obscured by earlier %d" b c
  | WF11_same_txn_order (b, c) -> Fmt.pf ppf "WF11: read %d obscured by same-txn %d" b c
  | WF12_fence_overlap (b, q) -> Fmt.pf ppf "WF12: txn %d overlaps fence %d" b q

let check_wf1 t acc =
  let locs = Trace.locs t in
  let expected = List.length locs + 2 in
  let ok =
    Trace.length t >= expected
    && Action.is_begin (Trace.act t 0)
    && Trace.is_init t 0
    && (let seen = Hashtbl.create 8 in
        let rec writes i =
          if i > List.length locs then true
          else
            match Trace.act t i with
            | Action.Write { loc; value = 0; ts } when Rat.equal ts Rat.zero ->
                if Hashtbl.mem seen loc then false
                else begin
                  Hashtbl.add seen loc ();
                  writes (i + 1)
                end
            | _ -> false
        in
        writes 1 && List.for_all (Hashtbl.mem seen) locs)
    && Trace.act t (List.length locs + 1) = Action.Commit
    &&
    (* the init thread never acts again *)
    let rec no_more i =
      i >= Trace.length t || ((not (Trace.is_init t i)) && no_more (i + 1))
    in
    no_more expected
  in
  if ok then acc else WF1_no_init :: acc

let check_wf3 t acc =
  let acc = ref acc in
  let n = Trace.length t in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      match (Trace.act t i, Trace.act t j) with
      | Action.Write a, Action.Write b
        when String.equal a.loc b.loc && Rat.equal a.ts b.ts ->
          acc := WF3_duplicate_timestamp (i, j) :: !acc
      | _ -> ()
    done
  done;
  !acc

(* WF4/WF5: resolutions match an open begin; begins do not nest.  We
   rescan rather than trusting [Trace]'s analysis, which silently repairs
   both defects. *)
let check_brackets t acc =
  let acc = ref acc in
  let open_txn = Hashtbl.create 8 in
  for i = 0 to Trace.length t - 1 do
    let th = Trace.thread t i in
    match Trace.act t i with
    | Action.Begin ->
        if Hashtbl.mem open_txn th then acc := WF5_nested_begin i :: !acc;
        Hashtbl.replace open_txn th i
    | Action.Commit | Action.Abort ->
        if not (Hashtbl.mem open_txn th) then
          acc := WF4_unmatched_resolution i :: !acc;
        Hashtbl.remove open_txn th
    | _ -> ()
  done;
  !acc

let check_reads t acc =
  let acc = ref acc in
  for b = 0 to Trace.length t - 1 do
    if Action.is_read (Trace.act t b) then
      match Trace.wr_source t b with
      | None -> acc := WF6_unfulfilled_read b :: !acc
      | Some a ->
          if a > b then acc := WF8_read_from_future (a, b) :: !acc;
          if
            Trace.is_transactional t a
            && Trace.status t a <> Some Trace.Committed
            && not (Trace.same_txn t a b)
          then acc := WF7_aborted_source (a, b) :: !acc
  done;
  !acc

let check_interleavings t acc =
  let acc = ref acc in
  let ww = Trace.rel_ww t in
  let n = Trace.length t in
  for b = 0 to n - 1 do
    if Trace.is_transactional t b then begin
      (* WF9: a transactional write may not be ww-before an earlier
         committed-or-live transactional write. *)
      if Action.is_write (Trace.act t b) then
        for c = 0 to b - 1 do
          if Rel.mem ww b c && Trace.is_committed_or_live_txn t c then
            acc := WF9_txn_write_order (b, c) :: !acc
        done;
      if Action.is_read (Trace.act t b) then
        match Trace.wr_source t b with
        | None -> ()
        | Some a ->
            for c = 0 to b - 1 do
              if Rel.mem ww a c then begin
                (* WF10: transactional source obscured by an earlier
                   committed-or-live write. *)
                if
                  Trace.is_transactional t a
                  && Trace.is_committed_or_live_txn t c
                then acc := WF10_txn_read_order (b, c) :: !acc;
                (* WF11: source obscured by an earlier same-transaction
                   write. *)
                if Trace.same_txn t c b && c <> b then
                  acc := WF11_same_txn_order (b, c) :: !acc
              end
            done
    end
  done;
  !acc

let check_wf12 t acc =
  let acc = ref acc in
  let n = Trace.length t in
  for q = 0 to n - 1 do
    match Trace.act t q with
    | Action.Qfence x ->
        for b = 0 to q - 1 do
          if Action.is_begin (Trace.act t b) && Trace.txn_touches t b x then
            match Trace.resolution_of_txn t b with
            | Some r when r < q -> ()
            | _ -> acc := WF12_fence_overlap (b, q) :: !acc
        done
    | _ -> ()
  done;
  !acc

let violations t =
  []
  |> check_wf1 t
  |> check_wf3 t
  |> check_brackets t
  |> check_reads t
  |> check_interleavings t
  |> check_wf12 t
  |> List.rev

let is_well_formed t = violations t = []
