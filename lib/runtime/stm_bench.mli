(** Multi-domain workload driver for the runtime STM (the engine behind
    [tmx stm-bench]).

    Runs a grid of (workload × mode × contention policy) stages, each on
    fresh transactional state with the statistics reset, and reports the
    per-stage {!Stm.snapshot} alongside wall time.  Workload decisions
    come from per-worker deterministic PRNGs, so a configuration always
    issues the same transaction mix. *)

type workload = Read_heavy | Write_heavy | Long_read | Privatization_heavy

val workload_name : workload -> string
val all_workloads : workload list

type config = {
  domains : int;  (** worker domains per stage *)
  iters : int;  (** transactions per domain per stage *)
  modes : Stm.mode list;
  policies : (string * Contention.policy) list;
  workloads : workload list;
}

val default_policies : (string * Contention.policy) list
(** spin, jittered, budget8. *)

val default_config : config
(** 4 domains, 1000 iters, all four modes, all policies, all
    workloads. *)

type result = {
  workload : string;
  mode : string;
  policy : string;
  domains : int;
  ops : int;  (** transactions issued (committed or user-aborted) *)
  seconds : float;
  snapshot : Stm.snapshot;
}

val run : config -> result list
val pp_result : Format.formatter -> result -> unit

val abort_rate : Stm.snapshot -> float
(** Full conflict aborts per attempt outcome,
    [(validation + lock) / (commits + validation + lock)]; partial-mode
    checkpoint rollbacks do not count (avoiding the full abort is the
    mode's point). *)

type fence_cost = {
  workload : string;
  mode : string;
  policy : string;
  fences : int;  (** quiescence fences executed by the fenced run *)
  fenced_per_sec : float;
  unfenced_per_sec : float;
}

val fence_overhead : fence_cost -> float
(** [1 - fenced/unfenced] commit throughput — the price of the §5
    quiescence fence, the edit [tmx repair] inserts. *)

val repair_cost : config -> fence_cost list
(** Run the privatization workload with and without its quiescence
    fence for every (mode, policy) of [config] — empty when the config
    omits {!Privatization_heavy}. *)

val pp_fence_cost : Format.formatter -> fence_cost -> unit

type arch_cost = {
  arch : string;  (** ["x86tso"], ["armv8"] or ["rc11"] *)
  workload : string;
  mode : string;
  fenced_per_sec : float;
  baseline_per_sec : float;
}
(** The runtime price of the §6 per-architecture fence insertions,
    emulated with same-ordering-class atomics on an uncontended
    per-worker cell: nothing for x86-TSO (zero inserted fences), an
    atomic load per transactional read for ARMv8's [DMB LD], an atomic
    RMW for C++'s [atomic_thread_fence(seq_cst)]. *)

val arch_penalty : arch_cost -> float
(** [1 - fenced/baseline] commit throughput. *)

val arch_fence_cost : config -> arch_cost list
(** One entry per architecture on the read-mix microworkload, best of
    three scaled-up runs against a shared unfenced baseline, using the
    first mode and policy of [config]. *)

val pp_arch_cost : Format.formatter -> arch_cost -> unit

val arch_json :
  ?claims:(string * string) list -> config -> arch_cost list -> string
(** The BENCH_arch.json document ([experiment: "arch_fence_penalty"];
    schema in EXPERIMENTS.md).  [claims] are raw-JSON key/value pairs
    recording the machine-checked §6 facts the caller obtained from the
    arch table sweep. *)

val write_arch_json :
  ?claims:(string * string) list ->
  file:string ->
  config ->
  arch_cost list ->
  unit

val to_json : ?repair_cost:fence_cost list -> config -> result list -> string
(** The BENCH_stm.json document (schema in EXPERIMENTS.md); the
    [repair_cost] entries land in a top-level ["repair_cost"] array. *)

val write_json :
  ?repair_cost:fence_cost list -> file:string -> config -> result list -> unit
