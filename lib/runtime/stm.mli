(** A software transactional memory for OCaml 5 realizing the paper's
    implementation model (§5).

    Four versioning strategies, matching §3's design space and the
    Manticore lineage:

    - [Lazy] (the default): TL2-style — a global version clock, reads
      validated against the transaction's read version (opacity), writes
      buffered and published at commit under per-variable versioned
      locks;
    - [Eager]: encounter-time locking with an undo log — writes lock and
      update in place, aborts roll back;
    - [Partial]: [Lazy] plus bounded partial aborts — on a validation
      failure the transaction keeps the still-valid prefix of its read
      set up to the oldest invalidated read and re-runs the closure,
      serving the retained reads from a value log (a replay-based
      rendering of Manticore's READ_SET_BOUND checkpoints; the closure
      must be deterministic given its reads, which STM code is).  An
      [or_else] whose first branch read memory and then aborted degrades
      the next partial abort to a full one;
    - [Norec]: NOrec — one global sequence lock, value-based
      revalidation whenever the global commit counter moves, and no
      per-variable ownership metadata.  Writer commits serialize;
      privatization-by-commit is safe by construction, but a [Norec]
      transaction must not run concurrently with other-mode transactions
      over the same variables (it ignores their per-variable locks).

    All order transactions with a direct dependency (the publication
    idiom needs no fence); neither orders transactions against later
    plain accesses — privatization needs {!quiesce}, the quiescence fence
    of §5.

    {b Conflicts retry automatically; user aborts do not.}  Raising an
    arbitrary exception inside a transaction aborts it and re-raises.

    How a conflicted transaction waits is a pluggable
    {!Contention.policy} (default: jittered exponential backoff; a
    retry-budget policy escalates starved transactions to a serialized
    slow path).  Commit/abort behaviour is observable through {!stats}
    (per-mode, per-reason counters and retry/latency histograms) and,
    when enabled, through the {!Trace} event ring buffers. *)

module Trace = Stm_trace
module Contention = Contention

type mode = Lazy | Eager | Partial | Norec

val mode_name : mode -> string

type tx
(** A transaction in progress.  Valid only during the [atomically]
    callback that provided it. *)

val read : tx -> Tvar.t -> int
(** Transactional read (sees the transaction's own writes). *)

val write : tx -> Tvar.t -> int -> unit

val abort : tx -> 'a
(** The paper's explicit [abort]: discard all effects, do not retry. *)

val or_else : tx -> (tx -> 'a) -> (tx -> 'a) -> 'a
(** [or_else tx f1 f2] runs [f1]; if it aborts, its effects are undone
    and [f2] runs within the same transaction (the classic composable
    alternative).  An abort in [f2] aborts the whole transaction. *)

val atomically :
  ?mode:mode ->
  ?policy:Contention.policy ->
  ?footprint:Tvar.t list ->
  (tx -> 'a) ->
  'a option
(** Run to commit, retrying on conflicts; [None] if the user aborted.

    [policy] selects the contention-management strategy for this call
    (default {!Contention.default_policy}).

    [footprint] declares the set of TVars the transaction may touch —
    any access outside it raises — and lets per-location fences
    ([quiesce ~var]) skip this transaction when the variable is not in
    the set. *)

val atomically_result :
  ?mode:mode ->
  ?policy:Contention.policy ->
  ?footprint:Tvar.t list ->
  (tx -> 'a) ->
  ('a, [ `Aborted ]) result

val quiesce : ?var:Tvar.t -> unit -> unit
(** The quiescence fence: returns once every relevant transaction in
    flight at the call has resolved, making subsequent plain accesses
    safe against pre-fence transactions (the privatization recipe of
    §5).  With [var] this is the paper's per-location fence [Qx]: only
    transactions whose declared footprint contains [var] — plus all
    transactions without a declared footprint — are waited for. *)

(** {1 Observability} *)

type conflict =
  | Validation
      (** a read, or the commit-time read-set check, saw a version newer
          than the transaction's read version (or a locked variable) *)
  | Lock  (** a lock acquisition lost to a concurrent writer *)

type mode_stats = {
  commits : int;
  validation_aborts : int;
  lock_aborts : int;
  user_aborts : int;
}

type histogram = {
  bounds : int array;
      (** inclusive upper bounds; a value [v] lands in the first bucket
          with [v <= bounds.(i)] *)
  counts : int array;  (** [Array.length bounds + 1] buckets; the last
          is the overflow bucket *)
}

type snapshot = {
  lazy_stats : mode_stats;
  eager_stats : mode_stats;
  partial_stats : mode_stats;
  norec_stats : mode_stats;
  retry_hist : histogram;  (** retries per {e committed} transaction *)
  latency_hist_ns : histogram;
      (** first-attempt-to-commit latency, nanoseconds (monotonic
          clock) *)
  quiesces : int;
  escalations : int;
      (** transactions that took the serialized slow path *)
  partial_aborts : int;
      (** partial-mode rollbacks to a read-set checkpoint that avoided a
          full abort *)
}

val stats : unit -> snapshot
(** A pure, consistent-enough view of the global counters (each cell is
    read atomically; the cells are independent). *)

val reset_stats : unit -> unit
(** Zero every counter and histogram (benchmark staging; do not call
    concurrently with transactions you intend to count). *)

val stats_snapshot : unit -> int * int * int
(** Legacy projection: total (commits, conflict aborts, user aborts)
    summed over all modes. *)

val pp_mode_stats : Format.formatter -> mode_stats -> unit
val pp_histogram : Format.formatter -> histogram -> unit

(**/**)

val clock : int Atomic.t

val attempt :
  ?footprint:int list ->
  mode ->
  (tx -> 'a) ->
  ('a, [ `Aborted | `Conflict of conflict ]) result

(**/**)
