test/test_export.ml: Alcotest Catalog Enumerate Export Fmt List Litmus Model Outcome Parse Shapes Tmx_core Tmx_exec Tmx_litmus
