(* Shared builders for hand-written traces in the test suite. *)

open Tmx_core

let ev t act = { Action.thread = t; act }
let w t loc value ts = ev t (Action.Write { loc; value; ts = Rat.of_int ts })

let wq t loc value (num, den) =
  ev t (Action.Write { loc; value; ts = Rat.make num den })

let r t loc value ts = ev t (Action.Read { loc; value; ts = Rat.of_int ts })

let rq t loc value (num, den) =
  ev t (Action.Read { loc; value; ts = Rat.make num den })

let b t = ev t Action.Begin
let c t = ev t Action.Commit
let a t = ev t Action.Abort
let q t loc = ev t (Action.Qfence loc)
let mk ~locs events = Trace.make ~locs events

(* Seed plumbing for the QCheck properties: TMX_SEED=N reruns every
   property from that generator seed (the fuzzer's CI jobs thread their
   campaign seed through it), and the seed is printed on failure so a
   red run reproduces with `TMX_SEED=N dune runtest`. *)
let qcheck_seed =
  match Option.bind (Sys.getenv_opt "TMX_SEED") int_of_string_opt with
  | Some s -> s
  | None -> 0

let qcheck test =
  let name, speed, run =
    QCheck_alcotest.to_alcotest
      ~rand:(Random.State.make [| qcheck_seed |])
      test
  in
  ( name,
    speed,
    fun () ->
      try run ()
      with e ->
        Fmt.epr "property failed; reproduce with TMX_SEED=%d@." qcheck_seed;
        raise e )

let check_consistent model trace expected =
  let report = Consistency.check model trace in
  Alcotest.(check bool)
    (Fmt.str "consistent under %a (%a)" Model.pp model Consistency.pp_report
       report)
    expected (Consistency.ok report)
