(* Operational STM simulator.

   §3 of the paper discusses how real STM implementations — eager (undo
   log, in-place writes) and lazy (redo-log, commit-time write-back)
   versioning — interact with mixed transactional/plain access.  This
   module implements four strategies over a sequentially consistent host
   memory with an exhaustively explored fine-grained scheduler, so the
   classic anomalies can be *exhibited*, not just discussed:

     - delayed write-back breaking privatization (lazy),
     - speculative lost update and dirty reads via rollback (eager),
     - overlapped commit write-back (lazy, D.4),

   and so the quiescence fence of §5 — modelled as blocking until no
   in-flight transaction has touched the fenced location — can be shown
   to remove exactly the mixed-race anomalies.

   Beyond the classic eager/lazy pair, two further commit protocols from
   the Manticore lineage (see SNIPPETS.md):

     - [Partial]: lazy versioning plus *partial aborts*.  A checkpoint
       of the continuation, environment, read set and write buffer is
       taken before each of the first [checkpoints] memory reads
       (READ_SET_BOUND in boundedHybridPartialSTM).  On commit-time
       validation failure the transaction rolls back only to the
       checkpoint at the oldest invalidated read, retaining the
       still-valid prefix, instead of restarting from the beginning.
       [checkpoints = 0] degenerates to exactly [Lazy].

     - [Norec]: value-based revalidation against a single global commit
       counter and *no per-location ownership metadata*.  A writer
       commit takes the global sequence lock (odd = write-back in
       flight), so transactional reads and competing commits stall
       while a write-back runs — but PLAIN accesses still interleave
       with it, which is what keeps the mixed-access windows §3 cares
       about.  In-flight transactions revalidate their whole read set
       by value whenever the counter moved.

   Commit write-back and rollback are sequences of individually scheduled
   steps: other threads' PLAIN accesses interleave with them (transactional
   accesses are protected by validation/locking in real STMs; plain ones
   are not — that is the whole point of §3).

   Transactions themselves must therefore be serializable against each
   other: lazy validation models the per-location write locks of a
   TL2-style STM, so a thread cannot validate while an in-flight
   write-back holds a location the validator read or wants to write
   (otherwise two conflicting transactions could both validate against
   pre-commit memory and write back — tx-tx write skew, which no model
   in the paper admits; found by `tmx fuzz`, oracle stmsim-enum, seed
   42).  Commits with disjoint footprints still overlap, which is what
   keeps the privatization anomaly: the small flag transaction commits
   in the middle of the big transaction's write-back.  NOrec's global
   lock forbids that overlap — the privatization anomaly is gone by
   construction, at the cost of serialized commits. *)

open Tmx_lang
open Tmx_exec

type strategy = Eager | Lazy | Partial | Norec

let strategy_name = function
  | Eager -> "eager"
  | Lazy -> "lazy"
  | Partial -> "partial"
  | Norec -> "norec"

type config = {
  strategy : strategy;
  fuel : int; (* loop unrolling bound *)
  max_retries : int; (* validation-failure retries (full or partial) *)
  checkpoints : int; (* partial: READ_SET_BOUND-style checkpoint budget *)
  atomic_commit : bool; (* write-back in one indivisible step *)
  max_paths : int;
}

let default_config =
  {
    strategy = Lazy;
    fuel = 6;
    max_retries = 2;
    checkpoints = 4;
    atomic_commit = false;
    max_paths = 2_000_000;
  }

type item = S of Ast.stmt | End_atomic

(* A partial-abort checkpoint: the whole speculative state just before
   the memory read that creates read-set entry [p].  Restoring it
   retains reads 0..p-1 (oldest-first) and re-executes from the read. *)
type chk = {
  chk_items : item list;
  chk_env : Proto.env;
  chk_reads : (string * int) list;
  chk_buffer : (string * int) list;
  chk_accessed : string list;
}

type txn = {
  reads : (string * int) list; (* read set: location, observed value (newest first) *)
  buffer : (string * int) list; (* lazy/partial/norec: pending writes (newest first) *)
  undo : (string * int) list; (* eager: old values, newest first *)
  accessed : string list;
  saved_items : item list; (* continuation at Begin, for retry *)
  saved_env : Proto.env;
  chks : (int * chk) list; (* partial: checkpoint per read position *)
  rv : int; (* norec: global sequence value this txn last validated at *)
}

type phase =
  | Ready
  | In_txn of txn
  | Write_back of txn * (string * int) list (* remaining writes, oldest first *)
  | Roll_back of txn * (string * int) list * item list
    (* remaining undo entries; continuation after the aborted block *)

type tstate = { items : item list; env : Proto.env; phase : phase; fuel : int; retries : int }

type state = { mem : (string * int) list; seq : int; threads : tstate list }
(* [seq] is NOrec's global commit counter / sequence lock: even = free,
   odd = a writer's commit write-back is in flight.  Unused by the other
   strategies. *)

let mem_get mem x = Option.value (List.assoc_opt x mem) ~default:0
let mem_set mem x v = (x, v) :: List.remove_assoc x mem

(* Is a transaction of thread [t] in flight (running, publishing, or
   rolling back)?  Quiescence must wait for every in-flight transaction,
   not just those that have already touched the fenced location: a
   transaction that has so far only read the flag may still write the
   privatized location later (WF12 constrains the whole transaction
   span).  This matches the grace-period implementation in the runtime's
   registry. *)
let in_flight t =
  match t.phase with
  | Ready -> false
  | In_txn _ | Write_back _ | Roll_back _ -> true

let skip_block items =
  let rec go = function
    | End_atomic :: rest -> rest
    | _ :: rest -> go rest
    | [] -> []
  in
  go items

type result = {
  outcomes : Outcome.t list;
  paths : int;
  fuel_exhausted : bool; (* loop-unrolling fuel ran out on some path *)
  retries_exhausted : bool; (* abort/retry budget ran out on some path *)
  truncated : bool; (* fuel_exhausted || retries_exhausted *)
  capped : bool;
}

let run ?(config = default_config) (program : Ast.program) =
  (match Ast.validate program with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Stmsim.run: " ^ msg));
  let outcomes : (Outcome.t, unit) Hashtbl.t = Hashtbl.create 64 in
  let paths = ref 0 and capped = ref false in
  let fuel_exhausted = ref false and retries_exhausted = ref false in
  let locs = ref program.locs in
  let note_loc x = if not (List.mem x !locs) then locs := !locs @ [ x ] in

  let finish (st : state) =
    incr paths;
    let outcome =
      Outcome.make
        ~envs:(List.map (fun t -> t.env) st.threads)
        ~mem:(List.map (fun x -> (x, mem_get st.mem x)) !locs)
    in
    Hashtbl.replace outcomes outcome ()
  in

  (* one scheduled step of thread [i]; returns successor states *)
  let step (st : state) i (t : tstate) : state list =
    let set_thread ?(seq = st.seq) t' =
      { st with seq; threads = List.mapi (fun j u -> if j = i then t' else u) st.threads }
    in
    let set_both ?(seq = st.seq) mem t' =
      { mem; seq; threads = List.mapi (fun j u -> if j = i then t' else u) st.threads }
    in
    (* full abort and re-execute the block, consuming a retry *)
    let full_abort t (txn : txn) =
      if t.retries <= 0 then begin
        retries_exhausted := true;
        []
      end
      else
        [
          set_thread
            {
              t with
              items = txn.saved_items;
              env = txn.saved_env;
              phase = Ready;
              retries = t.retries - 1;
            };
        ]
    in
    (* value-based read-set validation against current memory *)
    let validate (txn : txn) =
      List.for_all (fun (x, v) -> mem_get st.mem x = v) txn.reads
    in
    match t.phase with
    | Write_back (txn, writes) -> (
        match writes with
        | [] ->
            (* the final write-back step releases NOrec's sequence lock
               (odd -> even, i.e. one full commit-counter increment) *)
            let seq = if config.strategy = Norec then st.seq + 1 else st.seq in
            [ set_thread ~seq { t with phase = Ready } ]
        | (x, v) :: rest ->
            [ set_both (mem_set st.mem x v) { t with phase = Write_back (txn, rest) } ])
    | Roll_back (txn, undo, continuation) -> (
        match undo with
        | [] ->
            [
              set_thread
                { t with phase = Ready; items = continuation; env = txn.saved_env };
            ]
        | (x, v) :: rest ->
            [ set_both (mem_set st.mem x v) { t with phase = Roll_back (txn, rest, continuation) } ])
    | Ready | In_txn _ -> (
        match t.items with
        | [] -> []
        | End_atomic :: rest -> (
            match t.phase with
            | In_txn txn -> (
                match config.strategy with
                | Eager ->
                    (* in-place writes already visible; commit is trivial *)
                    [ set_thread { t with items = rest; phase = Ready } ]
                | Lazy | Partial ->
                    (* per-location commit locks: an in-flight write-back
                       holds its whole write set, and validation is not
                       schedulable while those locks cover a location this
                       transaction read or wants to write.  A successful
                       validation transitions straight into Write_back, so
                       conflicting commits are mutually exclusive, while
                       plain accesses — and commits with disjoint
                       footprints — still interleave with write-back *)
                    let locked_locs =
                      List.concat
                        (List.mapi
                           (fun j u ->
                             match u.phase with
                             | Write_back (wtxn, _) when j <> i ->
                                 List.map fst wtxn.buffer
                             | _ -> [])
                           st.threads)
                    in
                    let commit_locked =
                      List.exists (fun (x, _) -> List.mem x locked_locs) txn.reads
                      || List.exists (fun (x, _) -> List.mem x locked_locs) txn.buffer
                    in
                    if commit_locked then []
                    else if
                      (* value-based validation: every read-set entry is a
                         memory observation (buffer-forwarded reads never
                         enter it), so each must still hold — including
                         reads of locations this transaction then wrote *)
                      validate txn
                    then
                      let writes = List.rev txn.buffer in
                      if config.atomic_commit then
                        [
                          set_both
                            (List.fold_left (fun m (x, v) -> mem_set m x v) st.mem writes)
                            { t with items = rest; phase = Ready };
                        ]
                      else [ set_thread { t with items = rest; phase = Write_back (txn, writes) } ]
                    else if config.strategy = Partial && config.checkpoints > 0 then begin
                      (* partial abort: resume at the checkpoint of the
                         oldest invalidated read (clamped to the
                         checkpoint budget), retaining the valid prefix
                         of the read set and write buffer *)
                      let oldest_invalid =
                        let rec find j = function
                          | [] -> None
                          | (x, v) :: olds ->
                              if mem_get st.mem x <> v then Some j else find (j + 1) olds
                        in
                        find 0 (List.rev txn.reads)
                      in
                      match oldest_invalid with
                      | None -> assert false
                      | Some j ->
                          if t.retries <= 0 then begin
                            retries_exhausted := true;
                            []
                          end
                          else
                            let p = min j (config.checkpoints - 1) in
                            let chk = List.assoc p txn.chks in
                            let txn' =
                              {
                                txn with
                                reads = chk.chk_reads;
                                buffer = chk.chk_buffer;
                                accessed = chk.chk_accessed;
                                chks = List.filter (fun (q, _) -> q <= p) txn.chks;
                              }
                            in
                            [
                              set_thread
                                {
                                  t with
                                  items = chk.chk_items;
                                  env = chk.chk_env;
                                  phase = In_txn txn';
                                  retries = t.retries - 1;
                                };
                            ]
                    end
                    else full_abort t txn
                | Norec ->
                    (* global sequence lock: no commit while a writer's
                       write-back is in flight (seq odd).  Validation is
                       value-based over the whole read set — plain writes
                       do not bump seq, so the counter alone cannot
                       certify the reads *)
                    if st.seq land 1 = 1 then []
                    else if not (validate txn) then full_abort t txn
                    else if txn.buffer = [] then
                      (* read-only commits take no lock and bump nothing *)
                      [ set_thread { t with items = rest; phase = Ready } ]
                    else
                      let writes = List.rev txn.buffer in
                      if config.atomic_commit then
                        [
                          set_both ~seq:(st.seq + 2)
                            (List.fold_left (fun m (x, v) -> mem_set m x v) st.mem writes)
                            { t with items = rest; phase = Ready };
                        ]
                      else
                        (* acquire the lock (seq -> odd) and publish one
                           write per scheduled step; the final Write_back
                           step releases it *)
                        [
                          set_thread ~seq:(st.seq + 1)
                            { t with items = rest; phase = Write_back (txn, writes) };
                        ])
            | _ -> assert false)
        | S s :: rest -> (
            match (s : Ast.stmt) with
            | Skip -> [ set_thread { t with items = rest } ]
            | Assign (r, e) ->
                [ set_thread { t with items = rest; env = Proto.env_set t.env r (Proto.eval t.env e) } ]
            | If (c, tb, eb) ->
                let branch = if Proto.eval t.env c <> 0 then tb else eb in
                [ set_thread { t with items = List.map (fun s -> S s) branch @ rest } ]
            | While (c, b) ->
                if Proto.eval t.env c = 0 then [ set_thread { t with items = rest } ]
                else if t.fuel <= 0 then begin
                  fuel_exhausted := true;
                  []
                end
                else
                  [
                    set_thread
                      {
                        t with
                        items = List.map (fun s -> S s) b @ (S (While (c, b)) :: rest);
                        fuel = t.fuel - 1;
                      };
                  ]
            | Atomic body -> (
                match t.phase with
                | Ready ->
                    (* NOrec samples the commit counter at begin; a begin
                       during a write-back would sample an odd (locked)
                       value, so it waits, like the read path *)
                    if config.strategy = Norec && st.seq land 1 = 1 then []
                    else
                      let items = List.map (fun s -> S s) body @ (End_atomic :: rest) in
                      [
                        set_thread
                          {
                            t with
                            items;
                            phase =
                              In_txn
                                {
                                  reads = [];
                                  buffer = [];
                                  undo = [];
                                  accessed = [];
                                  saved_items = S s :: rest;
                                  saved_env = t.env;
                                  chks = [];
                                  rv = st.seq;
                                };
                          };
                      ]
                | _ -> assert false)
            | Abort -> (
                match t.phase with
                | In_txn txn -> (
                    let continuation = skip_block rest in
                    match config.strategy with
                    | Lazy | Partial | Norec ->
                        (* discard the buffer and register effects *)
                        [
                          set_thread
                            {
                              t with
                              items = continuation;
                              phase = Ready;
                              env = txn.saved_env;
                            };
                        ]
                    | Eager ->
                        (* roll back the undo log, one visible write at a
                           time *)
                        [ set_thread { t with phase = Roll_back (txn, txn.undo, continuation); items = [] } ])
                | _ -> invalid_arg "Stmsim: abort outside transaction")
            | Load (r, lv) -> (
                let x = Proto.resolve t.env lv in
                note_loc x;
                match t.phase with
                | In_txn txn -> (
                    (* a buffer-forwarded read observes the transaction's
                       own pending write, not memory, so it does not
                       enter the read set — everything that IS in the
                       read set is a memory observation and must validate
                       against memory at commit, even if the transaction
                       later overwrites the location itself *)
                    let forwarded =
                      match config.strategy with
                      | Lazy | Partial | Norec -> List.assoc_opt x txn.buffer
                      | Eager -> None
                    in
                    match forwarded with
                    | Some v ->
                        let txn =
                          {
                            txn with
                            accessed =
                              (if List.mem x txn.accessed then txn.accessed
                               else x :: txn.accessed);
                          }
                        in
                        [
                          set_thread
                            { t with items = rest; env = Proto.env_set t.env r v; phase = In_txn txn };
                        ]
                    | None ->
                        (* memory observation *)
                        if config.strategy = Norec && st.seq land 1 = 1 then
                          (* a writer's write-back is in flight: NOrec
                             readers spin on the sequence lock *)
                          []
                        else if
                          config.strategy = Norec && st.seq <> txn.rv && not (validate txn)
                        then
                          (* the commit counter moved and the read set no
                             longer revalidates: abort now rather than
                             keep computing on inconsistent values *)
                          full_abort t txn
                        else
                          let txn =
                            if config.strategy = Norec then { txn with rv = st.seq } else txn
                          in
                          let fresh = not (List.mem_assoc x txn.reads) in
                          let p = List.length txn.reads in
                          let txn =
                            (* checkpoint the continuation just before the
                               read that creates read-set entry [p], up to
                               the READ_SET_BOUND-style budget *)
                            if
                              config.strategy = Partial && fresh
                              && p < config.checkpoints
                              && not (List.mem_assoc p txn.chks)
                            then
                              {
                                txn with
                                chks =
                                  ( p,
                                    {
                                      chk_items = S s :: rest;
                                      chk_env = t.env;
                                      chk_reads = txn.reads;
                                      chk_buffer = txn.buffer;
                                      chk_accessed = txn.accessed;
                                    } )
                                  :: txn.chks;
                              }
                            else txn
                          in
                          let v = mem_get st.mem x in
                          let txn =
                            {
                              txn with
                              reads = (if fresh then (x, v) :: txn.reads else txn.reads);
                              accessed =
                                (if List.mem x txn.accessed then txn.accessed
                                 else x :: txn.accessed);
                            }
                          in
                          [
                            set_thread
                              { t with items = rest; env = Proto.env_set t.env r v; phase = In_txn txn };
                          ])
                | Ready ->
                    [
                      set_thread
                        { t with items = rest; env = Proto.env_set t.env r (mem_get st.mem x) };
                    ]
                | _ -> assert false)
            | Store (lv, e) -> (
                let x = Proto.resolve t.env lv in
                note_loc x;
                let v = Proto.eval t.env e in
                match t.phase with
                | In_txn txn -> (
                    let accessed =
                      if List.mem x txn.accessed then txn.accessed else x :: txn.accessed
                    in
                    match config.strategy with
                    | Lazy | Partial | Norec ->
                        let txn =
                          { txn with buffer = (x, v) :: List.remove_assoc x txn.buffer; accessed }
                        in
                        [ set_thread { t with items = rest; phase = In_txn txn } ]
                    | Eager ->
                        let txn =
                          { txn with undo = (x, mem_get st.mem x) :: txn.undo; accessed }
                        in
                        [ set_both (mem_set st.mem x v) { t with items = rest; phase = In_txn txn } ])
                | Ready -> [ set_both (mem_set st.mem x v) { t with items = rest } ]
                | _ -> assert false)
            | Fence x ->
                note_loc x;
                (* quiescence: enabled only when no other thread has an
                   in-flight transaction *)
                let blocked =
                  List.exists
                    (fun (j, u) -> j <> i && in_flight u)
                    (List.mapi (fun j u -> (j, u)) st.threads)
                in
                if blocked then [] else [ set_thread { t with items = rest } ]))
  in

  let rec explore (st : state) =
    if !paths >= config.max_paths then capped := true
    else begin
      let successors =
        List.concat
          (List.mapi
             (fun i t ->
               match t.phase with
               | Write_back _ | Roll_back _ -> step st i t
               | _ -> if t.items = [] then [] else step st i t)
             st.threads)
      in
      if successors = [] then begin
        (* done, deadlocked on a fence, or dead (budget exhausted) *)
        let all_done =
          List.for_all
            (fun t -> t.items = [] && t.phase = Ready)
            st.threads
        in
        if all_done then finish st
      end
      else List.iter explore successors
    end
  in
  explore
    {
      mem = [];
      seq = 0;
      threads =
        List.map
          (fun th ->
            {
              items = List.map (fun s -> S s) th;
              env = [];
              phase = Ready;
              fuel = config.fuel;
              retries = config.max_retries;
            })
          program.threads;
    };
  {
    outcomes = Outcome.dedup (Hashtbl.fold (fun o () acc -> o :: acc) outcomes []);
    paths = !paths;
    fuel_exhausted = !fuel_exhausted;
    retries_exhausted = !retries_exhausted;
    truncated = !fuel_exhausted || !retries_exhausted;
    capped = !capped;
  }

(* Anomalies: outcomes the STM exhibits that the atomic reference
   semantics (Sc) does not. *)
let anomalies ?config ?sc_config program =
  let stm = run ?config program in
  let ref_outcomes = Sc.outcomes (Sc.run ?config:sc_config program) in
  List.filter
    (fun o -> not (List.exists (Outcome.equal o) ref_outcomes))
    stm.outcomes
