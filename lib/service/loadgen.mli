(** Deterministic load generation against a running [tmx serve].

    The query stream is a pure function of [(seed, request index)]:
    request [i] draws its target — Zipf-skewed over a pool of catalog
    programs plus fuzzer-generated ones ([Tmx_fuzz.Gen.mixed]) — and
    its verb (races, outcomes, check, lint) from a PRNG seeded with
    [(seed, i)].  Concurrency only decides which worker sends which
    indices, never what any index contains, so the same seed replays
    the same stream at any concurrency.

    That determinism is what makes the {!oracle} sound: replaying
    indices [0..n-1] {e sequentially} against two {e fresh} servers
    (say [--shards 1] vs [--shards 4]) must produce byte-identical
    response lines — same verdicts, and same ["cached"] evolution,
    since both cold caches see the identical sequence.  Any divergence
    is a sharding bug, reported with the index and both lines. *)

type config = {
  concurrency : int;  (** worker domains, each with its own connection *)
  duration_s : float;  (** measured-run cutoff (monotonic clock) *)
  requests : int;  (** [> 0]: send exactly this many instead of timing *)
  skew : float;  (** Zipf exponent over the target pool; 0 = uniform *)
  seed : int;
  generated : int;  (** fuzzer-generated programs added to the pool *)
  use_catalog : bool;  (** include every catalog litmus in the pool *)
  rate : float;
      (** [> 0]: open-loop mode — requests arrive at this aggregate
          rate (requests/s across all workers) on a deterministic
          schedule of exponential inter-arrival gaps drawn from the
          seeded RNG, and latency counts from the {e scheduled} arrival
          rather than the send, so a saturated server charges its queue
          delay to the requests it delays (closed-loop latencies under
          overload are coordinated-omission artifacts: the generator
          only sends when the server is ready, so the numbers only
          describe requests the server was ready for).  [0] (default) =
          closed loop.  The schedule stream is disjoint from the
          request-content stream, so {!request} and the {!oracle} are
          unaffected. *)
}

val default_config : config
(** concurrency 2, 5 s, skew 1.0, seed 42, catalog + 16 generated,
    closed loop. *)

type target = By_name of string | By_source of string

val pool : config -> target array
(** Catalog names then generated sources; deterministic per seed.
    @raise Invalid_argument when the config yields an empty pool. *)

val zipf_cumulative : skew:float -> int -> float array

val arrivals : config -> n:int -> float array
(** Open-loop arrival offsets (seconds from run start) of requests
    [0..n-1]: the prefix sums of the exponential gap stream.  A pure
    function of [(seed, rate)] — exposed for tests pinning the schedule.
    Meaningless when [rate <= 0]. *)

val request :
  config -> cum:float array -> targets:target array -> int -> Protocol.request
(** Request [i] of the stream — exposed for tests pinning determinism. *)

type report = {
  requests_sent : int;
  ok : int;
  errors : int;  (** transport failures (connect/roundtrip) *)
  sheds : int;  (** structured [overloaded] responses *)
  hits : int;  (** responses carrying ["cached": true] *)
  duration_s : float;
  throughput_rps : float;
  p50_ms : float;  (** latency percentiles over non-shed responses *)
  p95_ms : float;
  p99_ms : float;
  hit_rate : float;  (** hits / answered (non-shed) responses *)
  shed_rate : float;  (** sheds / requests sent *)
}

val run : ?config:config -> Client.addr -> report
(** The measured phase: [concurrency] domains replay their slices of
    the stream until the duration (or request count) runs out. *)

val report_to_json : report -> Json.t

type mismatch = { index : int; line_a : string; line_b : string }

val oracle :
  ?config:config ->
  requests:int ->
  Client.addr ->
  Client.addr ->
  (mismatch option, string) result
(** Sequentially replay requests [0..requests-1] to both servers and
    compare raw response lines.  [Ok None] = byte-identical; [Ok (Some
    m)] = first divergence; [Error] = transport failure.  Only sound
    against two freshly started servers (cold caches). *)
