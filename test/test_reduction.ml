(* The verdict-preservation contract of the reduced enumerator
   (docs/ENUMERATION.md):

   - [Dpor] is bit-identical to the unreduced reference — the same
     executions in the same order, the same candidate accounting, the
     same cap/truncation flags — while exploring no more states;
   - [Dpor_sym] preserves the execution multiset (hence every verdict
     and outcome set) and the candidate accounting, exploring no more
     states than [Dpor];
   - both hold for every [jobs], and compose with the graph cap.

   Checked exhaustively over the litmus catalog × every model × a
   jobs × reduction matrix, then pinned on random mixed-access programs
   with the enumerated executions cross-checked against the
   definition-faithful [Naive] axioms. *)

open Tmx_core
open Tmx_exec

let run ?(jobs = 1) ?(max_graphs = Enumerate.default_config.max_graphs)
    reduction model p =
  Enumerate.run
    ~config:{ Enumerate.default_config with jobs; max_graphs; reduction }
    model p

(* order-sensitive equality: executions, traces, accounting *)
let check_identical name (a : Enumerate.result) (b : Enumerate.result) =
  Alcotest.(check int) (name ^ ": graphs") a.graphs b.graphs;
  Alcotest.(check bool) (name ^ ": capped") a.capped b.capped;
  Alcotest.(check bool) (name ^ ": truncated") a.truncated b.truncated;
  Alcotest.(check int)
    (name ^ ": execution count")
    (List.length a.executions)
    (List.length b.executions);
  List.iter2
    (fun (x : Enumerate.execution) (y : Enumerate.execution) ->
      if not (Outcome.equal x.outcome y.outcome) then
        Alcotest.failf "%s: outcomes diverge" name;
      if Trace.events x.trace <> Trace.events y.trace then
        Alcotest.failf "%s: traces diverge" name)
    a.executions b.executions

(* order-insensitive equality: the execution multiset and accounting —
   what [Dpor_sym] promises *)
let exec_key (e : Enumerate.execution) =
  (Trace.events e.trace, Fmt.str "%a" Outcome.pp e.outcome)

let check_same_multiset name (a : Enumerate.result) (b : Enumerate.result) =
  Alcotest.(check int) (name ^ ": graphs") a.graphs b.graphs;
  Alcotest.(check bool) (name ^ ": capped") a.capped b.capped;
  Alcotest.(check bool) (name ^ ": truncated") a.truncated b.truncated;
  let keys r = List.sort compare (List.map exec_key r.Enumerate.executions) in
  if keys a <> keys b then Alcotest.failf "%s: execution multisets differ" name

(* Every catalog program × every model × jobs ∈ {1, 4}: dpor must be
   bit-identical to none, dpor+sym multiset-identical, and explored
   states must shrink monotonically none ≥ dpor ≥ dpor+sym. *)
let test_catalog_matrix () =
  let explored_none = ref 0 and explored_dpor = ref 0 and explored_sym = ref 0 in
  List.iter
    (fun (lit : Tmx_litmus.Litmus.t) ->
      List.iter
        (fun (model : Model.t) ->
          let name = Fmt.str "%s/%s" lit.name model.name in
          let rn = run Enumerate.No_reduction model lit.program in
          let rd = run Enumerate.Dpor model lit.program in
          let rs = run Enumerate.Dpor_sym model lit.program in
          check_identical (name ^ " dpor=none") rn rd;
          check_same_multiset (name ^ " dpor+sym~none") rn rs;
          if rd.explored > rn.explored || rs.explored > rd.explored then
            Alcotest.failf "%s: explored grew under reduction (%d/%d/%d)" name
              rn.explored rd.explored rs.explored;
          explored_none := !explored_none + rn.explored;
          explored_dpor := !explored_dpor + rd.explored;
          explored_sym := !explored_sym + rs.explored;
          (* the jobs matrix within each reduction *)
          List.iter
            (fun reduction ->
              check_identical
                (Fmt.str "%s %s jobs" name (Enumerate.reduction_name reduction))
                (run ~jobs:1 reduction model lit.program)
                (run ~jobs:4 reduction model lit.program))
            [ Enumerate.No_reduction; Enumerate.Dpor; Enumerate.Dpor_sym ])
        Model.all)
    Tmx_litmus.Catalog.all;
  (* the reduction must actually bite somewhere on the catalog *)
  if not (!explored_dpor < !explored_none) then
    Alcotest.failf "dpor never pruned anything (%d vs %d explored)"
      !explored_dpor !explored_none;
  if not (!explored_sym < !explored_dpor) then
    Alcotest.failf "symmetry never collapsed an orbit (%d vs %d explored)"
      !explored_sym !explored_dpor

(* A graph cap landing mid-enumeration: dpor's bulk claims must
   reproduce the reference's cap point and kept prefix exactly. *)
let test_capped () =
  let stress =
    let open Tmx_lang.Ast in
    let x = loc "x" in
    program ~name:"stress" ~locs:[ "x" ]
      [
        [ store x (int 1) ];
        [ store x (int 2) ];
        [ atomic [ store x (int 3) ] ];
        [ store x (int 4) ];
        [ load "r1" x; load "r2" x ];
      ]
  in
  let rn = run ~max_graphs:100 Enumerate.No_reduction Model.implementation stress in
  let rd = run ~max_graphs:100 Enumerate.Dpor Model.implementation stress in
  Alcotest.(check bool) "cap exercised" true rn.capped;
  check_identical "capped stress dpor=none" rn rd;
  (* under a cap the symmetric quotient may keep a different subset, but
     the accounting must still match *)
  let rs = run ~max_graphs:100 Enumerate.Dpor_sym Model.implementation stress in
  Alcotest.(check int) "capped graphs sym" rn.graphs rs.graphs;
  Alcotest.(check bool) "capped flag sym" rn.capped rs.capped

(* A thread-symmetric program must collapse orbits: interchangeable
   readers over one location. *)
let test_symmetry_bites () =
  let p =
    let open Tmx_lang.Ast in
    let x = loc "x" in
    program ~name:"sym3" ~locs:[ "x" ]
      [
        [ store x (int 1) ];
        [ load "r" x ];
        [ load "r" x ];
        [ load "r" x ];
      ]
  in
  let rd = run Enumerate.Dpor Model.programmer p in
  let rs = run Enumerate.Dpor_sym Model.programmer p in
  check_same_multiset "sym3" rd rs;
  if not (rs.explored < rd.explored) then
    Alcotest.failf "interchangeable readers not collapsed (%d vs %d explored)"
      rs.explored rd.explored

(* Random mixed-access programs (the fuzzer's preset): the reduction
   contract plus the [Naive] cross-check — every execution the reduced
   enumerator emits satisfies the definition-faithful axioms. *)
let arb_mixed =
  QCheck.map
    (fun seed -> Tmx_fuzz.Gen.program Tmx_fuzz.Gen.mixed (Random.State.make [| 0x52ed; seed |]))
    QCheck.small_int

let naive_trace_limit = 14

let prop_reduction_sound =
  QCheck.Test.make ~name:"dpor/dpor+sym preserve verdicts on random mixed programs"
    ~count:60 arb_mixed (fun p ->
      List.for_all
        (fun (model : Model.t) ->
          let rn = run Enumerate.No_reduction model p in
          let rd = run Enumerate.Dpor model p in
          let rs = run Enumerate.Dpor_sym model p in
          let keys r =
            List.map exec_key r.Enumerate.executions
          in
          keys rn = keys rd
          && rn.graphs = rd.graphs && rn.graphs = rs.graphs
          && rn.capped = rd.capped && rn.capped = rs.capped
          && List.sort compare (keys rn) = List.sort compare (keys rs)
          && rd.explored <= rn.explored && rs.explored <= rd.explored
          && List.for_all
               (fun (e : Enumerate.execution) ->
                 Trace.length e.trace > naive_trace_limit
                 || Naive.consistent_axioms model e.trace)
               rs.executions)
        [ Model.programmer; Model.implementation; Model.bare ])

let suite =
  [
    Alcotest.test_case "catalog jobs x reduction matrix" `Slow test_catalog_matrix;
    Alcotest.test_case "graph cap under reduction" `Quick test_capped;
    Alcotest.test_case "symmetry collapses interchangeable threads" `Quick
      test_symmetry_bites;
    Tb.qcheck prop_reduction_sound;
  ]
