(* Architecture-level execution: judge the LTRF enumerator's candidate
   graphs under per-architecture axioms instead of linearizing them.

   Weak architectures (ARMv8 without dependency ordering) admit
   executions — load buffering — that no well-formed LTRF trace can
   witness, so the backends cannot ride the trace pipeline; they share
   the candidate space (Enumerate.unfold_combos, Combo's choice points)
   and judge each candidate as a graph: reads-from, coherence and
   from-reads from the selection, program order and barriers from the
   combo, transactions as atomic classes bounded by full fences, the
   quiescence fence Qx as the architecture's full barrier plus the
   runtime's WF12 ordering choice, and aborted transactions as invisible
   speculation (reads-from in, no coherence or antidependencies out).

   Axioms per architecture are in the .mli; the lattice fact the
   differential oracle leans on — tso-consistent ⊆ armv8-consistent and
   rc11-consistent ⊆ armv8-consistent — holds edge-wise by construction:
   armv8's ob is a subset of tso's ghb, and ob ⊆ hb ∪ eco. *)

open Tmx_core
open Tmx_exec

type fence_site = { thread : int; loc : string }

let pp_fence_site ppf s = Fmt.pf ppf "T%d:%s" s.thread s.loc
let compare_fence_site a b = compare (a.thread, a.loc) (b.thread, b.loc)

type result = {
  outcomes : Outcome.t list;
  truncated : bool;
  capped : bool;
  graphs : int;
}

(* -- event helpers ---------------------------------------------------------- *)

let thr (e : Combo.gevent) = e.thread
let txn (e : Combo.gevent) = e.txn
let ab (e : Combo.gevent) = e.aborted
let proto (e : Combo.gevent) = e.proto

let loc_of e =
  match proto e with
  | Proto.PRead (x, _) | Proto.PWrite (x, _) -> Some x
  | _ -> None

let is_read e = match proto e with Proto.PRead _ -> true | _ -> false
let is_write e = match proto e with Proto.PWrite _ -> true | _ -> false
let is_mem e = is_read e || is_write e
let is_fence e = match proto e with Proto.PQfence _ -> true | _ -> false

let write_value e = match proto e with Proto.PWrite (_, v) -> v | _ -> 0

(* -- per-combo static context ------------------------------------------------ *)

(* Everything that does not depend on the candidate's selection: program
   order (three restrictions of it) and the barrier edges — Qx full
   barriers, non-aborted transaction boundaries, inserted DMB LDs. *)
type ctx = {
  combo : Combo.t;
  n : int;
  cls : int array;  (* atomic-class id: the owning PBegin, or the event *)
  strong : Rel.t;  (* barrier-derived ordering, all architectures *)
  ppo_tso : Rel.t;  (* po minus W->R over memory/fence events *)
  po_mem : Rel.t;  (* full po over memory/fence events *)
  po_loc : Rel.t;  (* po restricted to same-location accesses *)
}

let make_ctx ~(fences : fence_site list) (combo : Combo.t) =
  let ev = combo.Combo.ev in
  let n = Array.length ev in
  let cls = Array.init n (fun i -> if txn ev.(i) >= 0 then txn ev.(i) else i) in
  let strong = Rel.create n in
  let ppo_tso = Rel.create n in
  let po_mem = Rel.create n in
  let po_loc = Rel.create n in
  let rel i = is_mem ev.(i) || is_fence ev.(i) in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if thr ev.(i) = thr ev.(j) && rel i && rel j then begin
        Rel.add po_mem i j;
        (* x86-TSO keeps R->M and W->W; only W->R may reorder *)
        if not (is_write ev.(i) && is_read ev.(j)) then Rel.add ppo_tso i j;
        (match (loc_of ev.(i), loc_of ev.(j)) with
        | Some x, Some y when String.equal x y -> Rel.add po_loc i j
        | _ -> ());
        (* Qx is a full local barrier on every architecture
           (MFENCE / DMB SY / seq_cst fence) *)
        if is_fence ev.(i) || is_fence ev.(j) then Rel.add strong i j
      end
    done
  done;
  (* non-aborted transactions are bounded by full fences (the locked
     region / HTM compilation): everything po-before the Begin is
     ordered before every member, every member before everything
     po-after the resolution *)
  for b = 0 to n - 1 do
    if proto ev.(b) = Proto.PBegin && not (ab ev.(b)) then begin
      let members =
        List.filter (fun m -> txn ev.(m) = b && is_mem ev.(m)) (List.init n Fun.id)
      in
      let res = Option.value (Combo.resolution_of combo b) ~default:(n - 1) in
      for i = 0 to n - 1 do
        if thr ev.(i) = thr ev.(b) && rel i then begin
          if i < b then List.iter (fun m -> Rel.add strong i m) members;
          if i > res then List.iter (fun m -> Rel.add strong m i) members
        end
      done
    end
  done;
  (* inserted anti-load-buffering fences: a DMB LD right after every
     plain load of the site's location orders every po-earlier load
     before everything po-later *)
  List.iter
    (fun site ->
      for r = 0 to n - 1 do
        if
          thr ev.(r) = site.thread && txn ev.(r) < 0 && is_read ev.(r)
          && loc_of ev.(r) = Some site.loc
        then
          for i = 0 to n - 1 do
            if thr ev.(i) = thr ev.(r) then begin
              if i <= r && is_read ev.(i) then
                for j = r + 1 to n - 1 do
                  if thr ev.(j) = thr ev.(r) && rel j then Rel.add strong i j
                done
            end
          done
      done)
    fences;
  { combo; n; cls; strong; ppo_tso; po_mem; po_loc }

(* -- one candidate ----------------------------------------------------------- *)

let lifted_acyclic ctx rel =
  let q = Rel.create ctx.n in
  Rel.iter rel (fun i j ->
      if ctx.cls.(i) <> ctx.cls.(j) then Rel.add q ctx.cls.(i) ctx.cls.(j));
  Rel.is_acyclic q

let judge arch ctx ~rf_sel ~ww_sel ~fence_sel =
  let ev = ctx.combo.Combo.ev in
  let n = ctx.n in
  (* reads-from; external part; transaction-to-transaction part *)
  let rf = Rel.create n and rfe = Rel.create n and sw = Rel.create n in
  List.iter
    (fun (r, w) ->
      if w >= 0 then begin
        Rel.add rf w r;
        if thr ev.(w) <> thr ev.(r) then Rel.add rfe w r;
        if
          txn ev.(w) >= 0 && (not (ab ev.(w)))
          && txn ev.(r) >= 0
          && (not (ab ev.(r)))
          && ctx.cls.(w) <> ctx.cls.(r)
        then Rel.add sw w r
      end)
    rf_sel;
  (* coherence over non-aborted writes, in the chosen order *)
  let co = Rel.create n and coe = Rel.create n in
  List.iter
    (fun (_x, perm) ->
      let live = List.filter (fun j -> not (ab ev.(j))) perm in
      let rec pairs = function
        | [] -> ()
        | a :: rest ->
            List.iter
              (fun b ->
                Rel.add co a b;
                if thr ev.(a) <> thr ev.(b) then Rel.add coe a b)
              rest;
            pairs rest
      in
      pairs live)
    ww_sel;
  (* from-reads of non-aborted readers (aborted speculation imposes no
     antidependencies, mirroring crw in the LTRF anti axioms); a read of
     the initial value precedes every live write of its location *)
  let fr = Rel.create n and fre = Rel.create n in
  List.iter
    (fun (r, w) ->
      if not (ab ev.(r)) then begin
        let x =
          match proto ev.(r) with Proto.PRead (x, _) -> x | _ -> assert false
        in
        let live =
          List.filter (fun j -> not (ab ev.(j))) (Combo.writes_of ctx.combo x)
        in
        List.iter
          (fun j ->
            if (w = -1 || Rel.mem co w j) && j <> w then begin
              Rel.add fr r j;
              if thr ev.(r) <> thr ev.(j) then Rel.add fre r j
            end)
          live
      end)
    rf_sel;
  (* the runtime's quiescence ordering: the WF12 side chosen for each
     (fence, transaction) pair is enforced by waiting, so it is a hard
     ordering on every architecture *)
  let qc = Rel.create n in
  List.iter
    (fun ((q, b), choice) ->
      for m = 0 to n - 1 do
        if txn ev.(m) = b && is_mem ev.(m) then
          match (choice : Combo.fence_choice) with
          | Combo.Commit_before -> Rel.add qc m q
          | Combo.Fence_before -> Rel.add qc q m
      done)
    fence_sel;
  (* SC per location, all architectures *)
  Rel.is_acyclic (Rel.union_many [ ctx.po_loc; rf; co; fr ])
  &&
  match (arch : Arch.t) with
  | Arch.X86tso ->
      lifted_acyclic ctx
        (Rel.union_many [ ctx.ppo_tso; ctx.strong; qc; rfe; co; fr ])
  | Arch.Armv8 ->
      lifted_acyclic ctx (Rel.union_many [ ctx.strong; qc; rfe; coe; fre ])
  | Arch.Rc11 ->
      let hb_base = Rel.union_many [ ctx.po_mem; sw; ctx.strong; qc ] in
      let eco = Rel.transitive_closure (Rel.union_many [ rf; co; fr ]) in
      (* no-thin-air *)
      Rel.is_acyclic (Rel.union hb_base rf)
      (* coherence *)
      && Rel.irreflexive (Rel.compose (Rel.transitive_closure hb_base) eco)
      (* transactional atomicity *)
      && lifted_acyclic ctx (Rel.union hb_base eco)

let outcome ctx ~ww_sel ~locs =
  let ev = ctx.combo.Combo.ev in
  let mem =
    List.map
      (fun x ->
        let v =
          match List.assoc_opt x ww_sel with
          | None -> 0
          | Some perm ->
              (* coherence-last non-aborted write, like Trace.final_value *)
              List.fold_left
                (fun acc j -> if ab ev.(j) then acc else write_value ev.(j))
                0 perm
        in
        (x, v))
      locs
  in
  Outcome.make
    ~envs:(List.map (fun (p : Proto.path) -> p.env) ctx.combo.Combo.paths)
    ~mem

(* -- the driver --------------------------------------------------------------- *)

let run ?(config = Enumerate.default_config) ?(fences = []) arch program =
  let locs, thread_paths, truncated = Enumerate.unfold_combos config program in
  let outcomes = ref [] in
  let graphs = ref 0 in
  let capped = ref false in
  Combo.product thread_paths (fun paths ->
      let combo = Combo.prepare paths in
      let read_choices = List.map (Combo.rf_candidates combo) combo.Combo.reads in
      if List.exists (fun c -> c = []) read_choices then ()
      else begin
        let ctx = make_ctx ~fences combo in
        let locs_written = Combo.locs_written combo in
        let ww_choices =
          List.map
            (fun x -> Combo.permutations (Combo.writes_of combo x))
            locs_written
        in
        let fence_pairs = Combo.fence_pairs combo in
        let fence_keys = List.map fst fence_pairs in
        let fence_opts = List.map snd fence_pairs in
        Combo.product read_choices (fun rf_raw ->
            Combo.product ww_choices (fun ww_raw ->
                Combo.product fence_opts (fun fc_raw ->
                    if !graphs >= config.max_graphs then capped := true
                    else begin
                      incr graphs;
                      let rf_sel = List.combine combo.Combo.reads rf_raw in
                      let ww_sel = List.combine locs_written ww_raw in
                      let fence_sel = List.combine fence_keys fc_raw in
                      if judge arch ctx ~rf_sel ~ww_sel ~fence_sel then
                        outcomes := outcome ctx ~ww_sel ~locs :: !outcomes
                    end)))
      end);
  {
    outcomes = Outcome.dedup !outcomes;
    truncated;
    capped = !capped;
    graphs = !graphs;
  }

let plain_load_sites ?(config = Enumerate.default_config) program =
  let _, thread_paths, _ = Enumerate.unfold_combos config program in
  let sites = ref [] in
  List.iteri
    (fun t paths ->
      List.iter
        (fun (p : Proto.path) ->
          let in_txn = ref false in
          List.iter
            (fun pr ->
              match pr with
              | Proto.PBegin -> in_txn := true
              | Proto.PCommit | Proto.PAbort -> in_txn := false
              | Proto.PRead (x, _) when not !in_txn ->
                  let s = { thread = t; loc = x } in
                  if not (List.mem s !sites) then sites := s :: !sites
              | _ -> ())
            p.protos)
        paths)
    thread_paths;
  List.sort_uniq compare_fence_site !sites
