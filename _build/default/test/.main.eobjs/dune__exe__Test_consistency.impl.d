test/test_consistency.ml: Alcotest Consistency Model Tb Tmx_core Trace
