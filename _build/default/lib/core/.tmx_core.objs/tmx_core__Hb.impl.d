lib/core/hb.ml: Action Lift Model Rel Trace
