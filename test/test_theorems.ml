(* Empirical validation of the paper's theorems over both the litmus
   catalog and randomly generated programs. *)

open Tmx_core
open Tmx_lang
open Tmx_exec

let pm = Model.programmer

let catalog_programs =
  List.map (fun (l : Tmx_litmus.Litmus.t) -> l.program) Tmx_litmus.Catalog.all

(* -- random program generation ------------------------------------------- *)

(* The historical distribution of this file is the [theorems] preset of
   the fuzzer's shared generator ([QCheck.Gen.t] is [Random.State.t ->
   'a], so the plain generator composes directly); [arb_program] is also
   consumed by the fenceify/machine/opacity/stability suites. *)
let gen_program : Ast.program QCheck.Gen.t =
  Tmx_fuzz.Gen.program Tmx_fuzz.Gen.theorems

let arb_program =
  QCheck.make ~print:(Fmt.str "%a" Ast.pp_program) gen_program

(* -- SC-LTRF (Theorem 4.1, global corollary) ------------------------------ *)

let sc_ltrf_holds p =
  let report = Verdict.check_sc_ltrf pm p in
  report.theorem_holds

let test_sc_ltrf_catalog () =
  List.iter
    (fun (p : Ast.program) ->
      Alcotest.(check bool) (Fmt.str "SC-LTRF on %s" p.name) true (sc_ltrf_holds p))
    catalog_programs

let prop_sc_ltrf_random =
  QCheck.Test.make ~name:"SC-LTRF on random programs" ~count:120 arb_program
    sc_ltrf_holds

(* race-free programs behave sequentially, spelled out on the two
   headline idioms *)
let test_race_free_sequential () =
  List.iter
    (fun name ->
      let p = (Option.get (Tmx_litmus.Catalog.find name)).program in
      let report = Verdict.check_sc_ltrf pm p in
      Alcotest.(check bool) (name ^ " sequential races") false report.sc_racy;
      Alcotest.(check bool) (name ^ " no weak actions") false report.weak_exists;
      Alcotest.(check bool) (name ^ " outcomes sequential") true
        report.outcomes_contained)
    [ "privatization"; "publication" ]

(* -- Theorem 4.2 ----------------------------------------------------------- *)

let test_theorem_4_2_catalog () =
  List.iter
    (fun (p : Ast.program) ->
      Alcotest.(check bool)
        (Fmt.str "Thm 4.2 on %s" p.name)
        true
        (Verdict.check_theorem_4_2 pm p))
    catalog_programs

let prop_theorem_4_2_random =
  QCheck.Test.make ~name:"Thm 4.2 on random programs" ~count:80 arb_program
    (fun p -> Verdict.check_theorem_4_2 pm p)

(* -- Lemma 5.1 -------------------------------------------------------------- *)

let test_lemma_5_1_catalog () =
  List.iter
    (fun (p : Ast.program) ->
      let r = Verdict.check_lemma_5_1 p in
      Alcotest.(check bool) (Fmt.str "Lemma 5.1 on %s" p.name) true r.holds)
    catalog_programs

let prop_lemma_5_1_random =
  QCheck.Test.make ~name:"Lemma 5.1 on random programs" ~count:60 arb_program
    (fun p -> (Verdict.check_lemma_5_1 p).holds)

(* -- §6: the strongest (x86) variant refines the programmer model ---------- *)

let test_strongest_refines_pm () =
  List.iter
    (fun (p : Ast.program) ->
      let strong = Enumerate.outcomes (Enumerate.run Model.strongest p) in
      let weak = Enumerate.outcomes (Enumerate.run pm p) in
      List.iter
        (fun o ->
          Alcotest.(check bool)
            (Fmt.str "%s: strongest outcome admitted by pm" p.name)
            true
            (List.exists (Outcome.equal o) weak))
        strong)
    catalog_programs

(* -- model-lattice monotonicity --------------------------------------------- *)

(* Adding happens-before rules and antidependency axioms can only remove
   behaviours: outcomes(stronger) ⊆ outcomes(weaker).  And on fence-free
   programs the implementation model coincides with the bare model. *)
let refines stronger weaker p =
  let s = Enumerate.outcomes (Enumerate.run stronger p) in
  let w = Enumerate.outcomes (Enumerate.run weaker p) in
  List.for_all (fun o -> List.exists (Outcome.equal o) w) s

let strength_pairs =
  [
    (Model.programmer, Model.bare);
    (Model.variant_rw, Model.bare);
    (Model.variant_ww', Model.bare);
    (Model.strongest, Model.programmer);
    (Model.strongest, Model.variant_rw);
    (Model.strongest, Model.variant_wr');
  ]

let test_monotonicity_catalog () =
  List.iter
    (fun (p : Ast.program) ->
      List.iter
        (fun (stronger, weaker) ->
          Alcotest.(check bool)
            (Fmt.str "%s: %s refines %s" p.name stronger.Model.name
               weaker.Model.name)
            true (refines stronger weaker p))
        strength_pairs)
    catalog_programs

let prop_monotonicity_random =
  QCheck.Test.make ~name:"model lattice monotone on random programs" ~count:60
    arb_program (fun p ->
      List.for_all (fun (s, w) -> refines s w p) strength_pairs)

let strip_fences (p : Ast.program) =
  let rec strip (s : Ast.stmt) =
    match s with
    | Fence _ -> Ast.Skip
    | Atomic b -> Atomic (List.map strip b)
    | If (c, t, e) -> If (c, List.map strip t, List.map strip e)
    | While (c, b) -> While (c, List.map strip b)
    | s -> s
  in
  { p with Ast.threads = List.map (List.map strip) p.threads }

let prop_im_equals_bare_fence_free =
  QCheck.Test.make ~name:"im = bare on fence-free programs" ~count:60
    arb_program (fun p ->
      let p = strip_fences p in
      refines Model.implementation Model.bare p
      && refines Model.bare Model.implementation p)

(* -- prefix closure ---------------------------------------------------------- *)

(* the §4 machinery (stability, causal closure) quantifies over prefixes;
   consistency is indeed closed under well-formed prefixes *)
let prefix_closed model trace =
  let n = Trace.length trace in
  let ok = ref true in
  for p = 1 to n - 1 do
    let prefix = Trace.sub trace (fun i -> i < p) in
    if Wellformed.is_well_formed prefix && not (Consistency.consistent model prefix)
    then ok := false
  done;
  !ok

let test_prefix_closure_catalog () =
  List.iter
    (fun (p : Ast.program) ->
      List.iter
        (fun (e : Enumerate.execution) ->
          Alcotest.(check bool)
            (Fmt.str "%s: prefixes consistent" p.name)
            true
            (prefix_closed pm e.trace))
        (Enumerate.run pm p).executions)
    catalog_programs

let prop_prefix_closure_random =
  QCheck.Test.make ~name:"prefix closure on random programs" ~count:40
    arb_program (fun p ->
      List.for_all
        (fun (e : Enumerate.execution) -> prefix_closed pm e.trace)
        (Enumerate.run pm p).executions)

(* -- consistency invariant under order-preserving permutation -------------- *)

(* the same order-preserving re-merge the fuzzer's enum-naive oracle uses *)
let random_merge = Tmx_fuzz.Oracle.random_merge

let test_permutation_invariance () =
  let st = Random.State.make [| 42 |] in
  List.iter
    (fun name ->
      let p = (Option.get (Tmx_litmus.Catalog.find name)).program in
      let result = Enumerate.run pm p in
      List.iter
        (fun (e : Enumerate.execution) ->
          let perm = random_merge st e.trace in
          Alcotest.(check bool) "order preserving" true
            (Trace.is_order_preserving e.trace perm);
          let permuted = Trace.permute e.trace perm in
          if Wellformed.is_well_formed permuted then begin
            let verdict t =
              let ctx = Lift.make t in
              Consistency.consistent_axioms pm ctx (Hb.compute pm ctx)
            in
            Alcotest.(check bool) "axioms invariant" (verdict e.trace) (verdict permuted)
          end)
        result.executions)
    [ "privatization"; "publication"; "sb"; "aborted_pub" ]

let suite =
  [
    Alcotest.test_case "SC-LTRF on the catalog" `Slow test_sc_ltrf_catalog;
    Tb.qcheck prop_sc_ltrf_random;
    Alcotest.test_case "race-free programs behave sequentially" `Quick
      test_race_free_sequential;
    Alcotest.test_case "Thm 4.2 on the catalog" `Slow test_theorem_4_2_catalog;
    Tb.qcheck prop_theorem_4_2_random;
    Alcotest.test_case "Lemma 5.1 on the catalog" `Slow test_lemma_5_1_catalog;
    Tb.qcheck prop_lemma_5_1_random;
    Alcotest.test_case "strongest variant refines pm" `Slow test_strongest_refines_pm;
    Alcotest.test_case "model lattice monotone on the catalog" `Slow
      test_monotonicity_catalog;
    Tb.qcheck prop_monotonicity_random;
    Tb.qcheck prop_im_equals_bare_fence_free;
    Alcotest.test_case "prefix closure on the catalog" `Slow
      test_prefix_closure_catalog;
    Tb.qcheck prop_prefix_closure_random;
    Alcotest.test_case "permutation invariance" `Quick test_permutation_invariance;
  ]
