lib/core/race.mli: Model Rel Trace
