lib/core/sequentiality.mli: Trace
