open Tmx_core
open Tb

(* Example 2.1's execution: a:(Ry0 Wx1) || b:(Wy1); c:Wx2 with
   Wx1 ww Wx2. *)
let privatization_trace () =
  mk ~locs:[ "x"; "y" ]
    [
      b 0; r 0 "y" 0 0; w 0 "x" 1 1; c 0;
      b 1; w 1 "y" 1 1; c 1;
      w 1 "x" 2 2;
    ]

let test_hb_ww_rule () =
  let t = privatization_trace () in
  let ctx = Lift.make t in
  let wx1 = 6 and wx2 = 11 in
  let hb_pm = Hb.compute Model.programmer ctx in
  let hb_im = Hb.compute Model.implementation ctx in
  Alcotest.(check bool) "HBww orders the mixed writes (pm)" true
    (Rel.mem hb_pm wx1 wx2);
  Alcotest.(check bool) "no order without HBww (im)" false
    (Rel.mem hb_im wx1 wx2);
  (* the base edges are present in both *)
  let ry0 = 5 and wy1 = 9 in
  Alcotest.(check bool) "po in hb" true (Rel.mem hb_im 5 6);
  Alcotest.(check bool) "crw not in hb" false (Rel.mem hb_im ry0 wy1)

let test_hb_base_cwr () =
  (* committed wr creates hb; plain wr does not *)
  let t =
    mk ~locs:[ "x"; "y" ]
      [ b 0; w 0 "x" 1 1; c 0; b 1; r 1 "x" 1 1; c 1; w 0 "y" 1 1; r 1 "y" 1 1 ]
  in
  let ctx = Lift.make t in
  let hb = Hb.compute Model.programmer ctx in
  Alcotest.(check bool) "cwr in hb" true (Rel.mem hb 4 8);
  Alcotest.(check bool) "plain wr not in hb" false (Rel.mem hb 10 11)

let test_hb_cascade () =
  (* the two-level privatization cascade from §2: order added by HBww
     feeds another HBww application *)
  let t =
    mk ~locs:[ "x"; "y"; "x'"; "y'" ]
      [
        b 0; r 0 "y" 0 0; w 0 "x" 1 1; c 0;
        b 1; w 1 "y" 1 1; c 1;
        b 1; r 1 "y'" 0 0; w 1 "x'" 1 1; c 1;
        b 2; w 2 "y'" 1 1; c 2;
        w 2 "x'" 2 2;
        w 2 "x" 2 2;
      ]
  in
  let ctx = Lift.make t in
  let hb = Hb.compute Model.programmer ctx in
  (* positions: init 0..5; a=6..9 (Ry0@7, Wx1@8); b=10..12 (Wy1@11);
     a'=13..16 (Ry'0@14, Wx'1@15); b'=17..19 (Wy'1@18); Wx'2@20; Wx2@21 *)
  Alcotest.(check bool) "first level: Wx'1 hb Wx'2" true (Rel.mem hb 15 20);
  Alcotest.(check bool) "cascaded: Wx1 hb Wx2" true (Rel.mem hb 8 21)

let test_quiescence_edges () =
  (* HBCQ: commit of an x-touching txn before the fence; HBQB: fence
     before the begin of an x-touching txn *)
  let t =
    mk ~locs:[ "x" ]
      [ b 0; w 0 "x" 1 1; c 0; q 1 "x"; b 2; r 2 "x" 1 1; c 2 ]
  in
  let ctx = Lift.make t in
  let edges = Hb.quiescence_edges ctx in
  let commit0 = 5 and fence = 6 and begin2 = 7 in
  Alcotest.(check bool) "HBCQ commit->fence" true (Rel.mem edges commit0 fence);
  Alcotest.(check bool) "HBQB fence->begin" true (Rel.mem edges fence begin2);
  (* in the implementation model they are part of hb *)
  let hb = Hb.compute Model.implementation ctx in
  Alcotest.(check bool) "fence edges in im hb" true
    (Rel.mem hb commit0 fence && Rel.mem hb fence begin2);
  (* and transitively: the first txn's write hb the second txn's read *)
  Alcotest.(check bool) "write hb read through fence" true (Rel.mem hb 4 8)

let test_quiescence_ignores_untouched () =
  let t = mk ~locs:[ "x"; "y" ] [ b 0; w 0 "y" 1 1; c 0; q 1 "x" ] in
  let ctx = Lift.make t in
  let edges = Hb.quiescence_edges ctx in
  (* the initializing transaction writes x, so its commit (position 3) is
     ordered before the fence; the y-only transaction is not *)
  Alcotest.(check (list (pair int int))) "only the init edge" [ (3, 7) ]
    (Rel.to_list edges)

let suite =
  [
    Alcotest.test_case "HBww privatization rule" `Quick test_hb_ww_rule;
    Alcotest.test_case "base hb uses committed wr only" `Quick test_hb_base_cwr;
    Alcotest.test_case "HBww cascades" `Quick test_hb_cascade;
    Alcotest.test_case "quiescence fence edges" `Quick test_quiescence_edges;
    Alcotest.test_case "quiescence ignores untouched txns" `Quick test_quiescence_ignores_untouched;
  ]
