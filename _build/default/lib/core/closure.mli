(** Causal closure and contiguity permutations (§4 and appendix A of the
    paper). *)

val causality : Lift.ctx -> Rel.t -> Rel.t
(** [hb ∪ lwr ∪ xrw], the relation whose acyclicity is Causality and
    which drives causal closure. *)

val causal_future : Model.t -> Trace.t -> int -> int list
(** Positions strictly causally after the given position. *)

val drop_causal_future : Model.t -> Trace.t -> int -> Trace.t
(** [σ#a]: the subtrace without the causal up-closure of [a] ([a] itself
    remains). *)

val contiguous_permutation : Model.t -> Trace.t -> int array option
(** An order-preserving permutation that makes every transaction
    contiguous and keeps the trace well-formed, per Lemma A.5's
    construction — or [None] when none exists, which can genuinely happen
    for aborted transactions (a counterexample to the lemma's
    parenthetical claim; see the tests). *)
