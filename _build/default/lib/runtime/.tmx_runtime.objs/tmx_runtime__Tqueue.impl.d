lib/runtime/tqueue.ml: Array Stm Tvar
