open Tmx_exec
open Tmx_stmsim

let lazy_cfg = Stmsim.default_config
let eager_cfg = { lazy_cfg with Stmsim.strategy = Stmsim.Eager }
let program name = (Option.get (Tmx_litmus.Catalog.find name)).Tmx_litmus.Litmus.program

let has_outcome outcomes cond = List.exists cond outcomes

let test_lazy_privatization_anomaly () =
  let r = Stmsim.run ~config:lazy_cfg (program "privatization") in
  Alcotest.(check bool) "delayed write-back loses the plain write" true
    (has_outcome r.outcomes (fun o -> Outcome.mem o "x" = 1))

let test_fence_repairs_privatization () =
  let r = Stmsim.run ~config:lazy_cfg (program "privatization_fence") in
  Alcotest.(check bool) "no x=1 with the quiescence fence" false
    (has_outcome r.outcomes (fun o -> Outcome.mem o "x" = 1));
  Alcotest.(check bool) "still completes" true (r.outcomes <> [])

let test_atomic_commit_repairs_privatization () =
  let cfg = { lazy_cfg with Stmsim.atomic_commit = true } in
  let r = Stmsim.run ~config:cfg (program "privatization") in
  Alcotest.(check bool) "indivisible commit avoids the anomaly" false
    (has_outcome r.outcomes (fun o -> Outcome.mem o "x" = 1))

let test_fence_repairs_eager_privatization () =
  (* quiescence must cover in-flight transactions that have not yet
     touched the fenced location: an eager transaction that has read the
     flag may still write x later *)
  let r = Stmsim.run ~config:eager_cfg (program "privatization_fence") in
  Alcotest.(check bool) "no x=1 under eager with the fence" false
    (has_outcome r.outcomes (fun o -> Outcome.mem o "x" = 1))

let test_eager_speculative_lost_update () =
  (* Ex 3.4 / Shpeisman Fig 3a: the rollback of the aborted eager
     transaction loses the plain write x:=2 (q=0), which the paper's
     model forbids — naive eager versioning does not implement it *)
  let r = Stmsim.run ~config:eager_cfg (program "ex3_4") in
  Alcotest.(check bool) "speculative lost update exhibited" true
    (has_outcome r.outcomes (fun o -> Outcome.reg o 1 "q" = 0))

let test_lazy_no_lost_update () =
  let r = Stmsim.run ~config:lazy_cfg (program "ex3_4") in
  Alcotest.(check bool) "lazy versioning never loses the plain write" false
    (has_outcome r.outcomes (fun o -> Outcome.reg o 1 "q" = 0))

let test_eager_dirty_read () =
  (* App D.3: a plain reader observes the eager transaction's in-place
     write before the rollback *)
  let r = Stmsim.run ~config:eager_cfg (program "d3_dirty_reads") in
  Alcotest.(check bool) "dirty read exhibited" true
    (has_outcome r.outcomes (fun o -> Outcome.mem o "x" = 0 && Outcome.mem o "w" = 1))

let test_lazy_serializable_on_txn_only () =
  (* on fully transactional programs the lazy STM is serializable: its
     outcomes are within the atomic reference semantics *)
  List.iter
    (fun name ->
      let anomalies = Stmsim.anomalies ~config:lazy_cfg (program name) in
      Alcotest.(check int) (name ^ " anomaly-free") 0 (List.length anomalies))
    [ "opacity_iriw"; "d1_opaque_writes" ]

let test_publication_needs_no_fence () =
  (* the publication idiom works on the lazy STM as-is (§5: direct
     dependencies are ordered by the transactional machinery) *)
  let anomalies = Stmsim.anomalies ~config:lazy_cfg (program "publication") in
  Alcotest.(check int) "publication anomaly-free" 0 (List.length anomalies)

(* Cross-validation of two independently built components: every outcome
   the lazy STM exhibits is admitted by the axiomatic implementation
   model (the sense in which TL2-style STMs "realize the implementation
   model", §5/§7) — while naive eager versioning escapes even that model
   on ex3_4 (the §3.4 anomaly). *)
let test_lazy_realizes_implementation_model () =
  List.iter
    (fun name ->
      let p = program name in
      let stm = Stmsim.run ~config:lazy_cfg p in
      let model =
        Tmx_exec.Enumerate.outcomes
          (Tmx_exec.Enumerate.run Tmx_core.Model.implementation p)
      in
      List.iter
        (fun o ->
          Alcotest.(check bool)
            (Fmt.str "%s: stm outcome %a admitted by im" name Outcome.pp o)
            true
            (List.exists (Outcome.equal o) model))
        stm.outcomes)
    [ "privatization"; "publication"; "sb"; "ex3_4"; "ex3_5"; "d1_opaque_writes";
      "d3_dirty_reads" ]

let test_eager_escapes_implementation_model () =
  let p = program "ex3_4" in
  let stm = Stmsim.run ~config:eager_cfg p in
  let model =
    Tmx_exec.Enumerate.outcomes
      (Tmx_exec.Enumerate.run Tmx_core.Model.implementation p)
  in
  Alcotest.(check bool) "naive eager exhibits model-forbidden outcomes" true
    (List.exists
       (fun o -> not (List.exists (Outcome.equal o) model))
       stm.outcomes)

let test_paths_explored () =
  let r = Stmsim.run ~config:lazy_cfg (program "privatization") in
  Alcotest.(check bool) "explores many schedules" true (r.paths > 100);
  Alcotest.(check bool) "not capped" false r.capped

let suite =
  [
    Alcotest.test_case "lazy privatization anomaly" `Quick test_lazy_privatization_anomaly;
    Alcotest.test_case "quiescence fence repairs it" `Quick test_fence_repairs_privatization;
    Alcotest.test_case "fence repairs eager too" `Quick test_fence_repairs_eager_privatization;
    Alcotest.test_case "atomic commit repairs it" `Quick test_atomic_commit_repairs_privatization;
    Alcotest.test_case "eager speculative lost update" `Quick test_eager_speculative_lost_update;
    Alcotest.test_case "lazy has no lost update" `Quick test_lazy_no_lost_update;
    Alcotest.test_case "eager dirty reads" `Quick test_eager_dirty_read;
    Alcotest.test_case "lazy serializable when transactional-only" `Slow
      test_lazy_serializable_on_txn_only;
    Alcotest.test_case "publication needs no fence" `Quick test_publication_needs_no_fence;
    Alcotest.test_case "lazy STM realizes the implementation model" `Slow
      test_lazy_realizes_implementation_model;
    Alcotest.test_case "naive eager escapes the implementation model" `Quick
      test_eager_escapes_implementation_model;
    Alcotest.test_case "schedule coverage" `Quick test_paths_explored;
  ]
