open Tmx_core
open Tb

(* The lifting example of §2: b:(b1=Wy1, b2=Wx1); c: Ry1; d: Wx2 where c
   and d are plain. *)
let trace () =
  mk ~locs:[ "x"; "y" ]
    [ b 0; w 0 "y" 1 1; w 0 "x" 1 1; c 0; r 1 "y" 1 1; w 1 "x" 2 2 ]

let test_lifting () =
  let t = trace () in
  let ctx = Lift.make t in
  let base = 4 in
  let b1 = base + 1 and b2 = base + 2 and cr = base + 4 and d = base + 5 in
  Alcotest.(check bool) "b1 wr c" true (Rel.mem ctx.wr b1 cr);
  Alcotest.(check bool) "not b2 wr c" false (Rel.mem ctx.wr b2 cr);
  Alcotest.(check bool) "b2 lwr c (lifted)" true (Rel.mem ctx.lwr b2 cr);
  Alcotest.(check bool) "b1 lww d (lifted)" true (Rel.mem ctx.lww b1 d);
  Alcotest.(check bool) "not b1 ww d" false (Rel.mem ctx.ww b1 d);
  (* x-variants exclude the plain d and c *)
  Alcotest.(check bool) "not b1 xww d" false (Rel.mem ctx.xww b1 d);
  Alcotest.(check bool) "not b2 xwr c" false (Rel.mem ctx.xwr b2 cr)

let test_internal_not_lifted () =
  (* lifting must not relate members of the same transaction beyond the
     direct relation *)
  let t = mk ~locs:[ "x" ] [ b 0; w 0 "x" 1 1; w 0 "x" 2 2; c 0 ] in
  let ctx = Lift.make t in
  (* direct: Wx1 ww Wx2 at 4,5... positions: init 0..2, b=3, w1=4, w2=5 *)
  Alcotest.(check bool) "direct internal ww kept" true (Rel.mem ctx.lww 4 5);
  Alcotest.(check bool) "no lifted internal reverse" false (Rel.mem ctx.lww 5 4);
  Alcotest.(check bool) "begin not related internally" false (Rel.mem ctx.lww 3 5)

let test_c_variant_excludes_aborted () =
  (* aborted reader: cwr excludes it, lwr keeps it *)
  let t =
    mk ~locs:[ "x" ]
      [ b 0; w 0 "x" 1 1; c 0; b 1; r 1 "x" 1 1; a 1 ]
  in
  let ctx = Lift.make t in
  let wpos = 4 and rpos = 7 in
  Alcotest.(check bool) "lwr keeps aborted reader" true (Rel.mem ctx.lwr wpos rpos);
  Alcotest.(check bool) "xwr keeps aborted reader" true (Rel.mem ctx.xwr wpos rpos);
  Alcotest.(check bool) "cwr drops aborted reader" false (Rel.mem ctx.cwr wpos rpos)

let test_init_is_committed_txn () =
  (* reads of the initial value get cwr edges from the initializing
     transaction when the reader is a committed transaction *)
  let t = mk ~locs:[ "x" ] [ b 0; r 0 "x" 0 0; c 0 ] in
  let ctx = Lift.make t in
  (* init write at 1, read at 4 *)
  Alcotest.(check bool) "init cwr txn read" true (Rel.mem ctx.cwr 1 4)

let suite =
  [
    Alcotest.test_case "paper lifting example" `Quick test_lifting;
    Alcotest.test_case "no spurious internal lifting" `Quick test_internal_not_lifted;
    Alcotest.test_case "c-variant excludes aborted" `Quick test_c_variant_excludes_aborted;
    Alcotest.test_case "init transaction is committed" `Quick test_init_is_committed_txn;
  ]
