(* The suborders of §5 / appendix C, and the hbe decomposition of
   happens-before in the implementation model (Lemma C.1).

   The suborders range over non-boundary actions (Act \ TAct):
     po-T    a po b, a !tx~ b, b transactional, b's txn writes
     poT-    a po b, a !tx~ b, a transactional
     poTT    poT- ∩ po-T
     poRW    a po b, a read, b write
     poCon   a po b, a and b conflict
     swe     (cwr ∪ cww) \ po
     hbe     (po-T)? ; (swe ; poTT)* ; swe ; (poT-)?

   The paper writes hbe = po-T ; (swe;poTT)* ; swe ; poT-; we take the
   pre/post program-order steps as optional, which is forced by the
   claimed inclusion cwr ⊆ hbe ∪ po in the proof of Lemma C.1 (a bare
   external cwr edge has no surrounding po steps). *)

let boundary t i =
  match Trace.act t i with
  | Action.Begin | Action.Commit | Action.Abort -> true
  | _ -> false

let nonboundary_po (ctx : Lift.ctx) =
  let t = ctx.trace in
  Rel.filter ctx.po (fun a b -> (not (boundary t a)) && not (boundary t b))

let txn_writes t i =
  let b = Trace.txn_of t i in
  b >= 0
  && List.exists (fun m -> Action.is_write (Trace.act t m)) (Trace.txn_members t b)

let po_to_t (ctx : Lift.ctx) =
  let t = ctx.trace in
  Rel.filter (nonboundary_po ctx) (fun a b ->
      (not (Trace.same_txn t a b)) && Trace.is_transactional t b && txn_writes t b)

let po_t_from (ctx : Lift.ctx) =
  let t = ctx.trace in
  Rel.filter (nonboundary_po ctx) (fun a b ->
      (not (Trace.same_txn t a b)) && Trace.is_transactional t a)

let po_tt ctx = Rel.filter (po_to_t ctx) (fun a b -> Rel.mem (po_t_from ctx) a b)

let po_rw (ctx : Lift.ctx) =
  let t = ctx.trace in
  Rel.filter (nonboundary_po ctx) (fun a b ->
      Action.is_read (Trace.act t a) && Action.is_write (Trace.act t b))

let conflicts t a b =
  match (Action.loc_of (Trace.act t a), Action.loc_of (Trace.act t b)) with
  | Some x, Some y ->
      String.equal x y
      && (Action.is_write (Trace.act t a) || Action.is_write (Trace.act t b))
  | _ -> false

let po_con (ctx : Lift.ctx) =
  let t = ctx.trace in
  Rel.filter (nonboundary_po ctx) (fun a b -> conflicts t a b)

let swe (ctx : Lift.ctx) =
  Rel.filter (Rel.union ctx.cwr ctx.cww) (fun a b -> not (Rel.mem ctx.po a b))

(* R? ; S for an optional pre-step. *)
let opt_pre r s = Rel.union s (Rel.compose r s)
let opt_post s r = Rel.union s (Rel.compose s r)

let hbe (ctx : Lift.ctx) =
  let swe = swe ctx in
  let ptt = po_tt ctx in
  let step = Rel.compose swe ptt in
  let step_plus = Rel.transitive_closure step in
  (* (swe;poTT)* ; swe = swe ∪ (swe;poTT)+ ; swe *)
  let middle = Rel.union swe (Rel.compose step_plus swe) in
  opt_pre (po_to_t ctx) (opt_post middle (po_t_from ctx))

(* Lemma C.1: in the implementation model (restricted to non-boundary
   events, and for traces without explicit fences),
   hb = init ∪ hbe ∪ po. *)
let lemma_c1_holds (ctx : Lift.ctx) hb =
  let t = ctx.trace in
  let decomp = Rel.union_many [ ctx.init_; hbe ctx; ctx.po ] in
  let nb i = not (boundary t i) in
  Rel.equal (Rel.restrict hb nb) (Rel.restrict decomp nb)

(* wre and xrwe: the external portions of lwr and xrw (appendix C). *)
let wre (ctx : Lift.ctx) =
  Rel.filter ctx.lwr (fun a b -> not (Rel.mem ctx.po a b))

let xrwe (ctx : Lift.ctx) =
  Rel.filter ctx.xrw (fun a b -> not (Rel.mem ctx.po a b))

(* Lemma C.2: the alternative characterization of consistency in the
   implementation model. *)
let lemma_c2_consistent (ctx : Lift.ctx) =
  let hbe = hbe ctx in
  let acyclic =
    Rel.is_acyclic
      (Rel.union_many
         [ hbe; po_t_from ctx; po_to_t ctx; po_rw ctx; wre ctx; xrwe ctx ])
  in
  let sync = Rel.union_many [ ctx.init_; hbe; po_con ctx ] in
  acyclic
  && Rel.irreflexive (Rel.compose sync ctx.lww)
  && Rel.irreflexive (Rel.compose sync ctx.lrw)
