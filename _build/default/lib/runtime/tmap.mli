(** A fixed-capacity transactional hash map from positive integers to
    integers (open addressing with tombstones). *)

type t

val create : capacity:int -> t
val capacity : t -> int

val find : Stm.tx -> t -> int -> int option
(** @raise Invalid_argument on non-positive keys (all operations). *)

val mem : Stm.tx -> t -> int -> bool

val add : Stm.tx -> t -> int -> int -> bool
(** Insert or overwrite; [false] when the table is full and the key is
    new. *)

val remove : Stm.tx -> t -> int -> bool
val cardinal : Stm.tx -> t -> int
val fold : Stm.tx -> t -> (int -> int -> 'a -> 'a) -> 'a -> 'a
