The litmus runner checks paper examples against their verdicts:

  $ ../bin/tmx.exe litmus privatization | tail -1
  1/1 litmus tests pass

Models are listed with their switches:

  $ ../bin/tmx.exe models | head -2
  pm       hb: ww anti: ww fences:false
  im       hb: anti: fences:true

Outcome enumeration under a chosen model:

  $ ../bin/tmx.exe outcomes sb -m pm | tail -4
    mem:[x=1 y=1]
    t1:[q=1] mem:[x=1 y=1]
    t0:[r=1] mem:[x=1 y=1]
    t0:[r=1] t1:[q=1] mem:[x=1 y=1]

The implementation model without fences admits the privatization anomaly:

  $ ../bin/tmx.exe outcomes privatization -m im | grep 'x=1'
    mem:[x=1 y=1]

User litmus files parse and check:

  $ ../bin/tmx.exe check ../litmus/privatization.litmus | head -1
  [PASS] privatization (user)

Programs export to the text format:

  $ ../bin/tmx.exe export lb
  name lb
  locs x y
  
  thread 0:
    r := x
    y := 1
  
  thread 1:
    q := y
    x := 1

The theorem checks summarize SC-LTRF, Thm 4.2 and Lemma 5.1:

  $ ../bin/tmx.exe theorems publication
  publication                  SC-LTRF:ok (seq-racy:false weak:false contained:true)  Thm4.2:ok Lemma5.1:ok (2/2)

The STM bench drives multi-domain workloads and writes a JSON report
(counts are workload-dependent, so only the stable summary is checked):

  $ ../bin/tmx.exe stm-bench -d 2 -n 20 --mode lazy --policy jittered -o BENCH_stm.json | tail -1
  wrote BENCH_stm.json (4 runs)

  $ test -s BENCH_stm.json && echo report-written
  report-written

Witness files compare against themselves within the threshold (each run
contributes a throughput and a commit-ratio metric, and each
repair-cost entry a fence count, a fenced throughput and a fence
efficiency):

  $ ../bin/tmx.exe bench-compare BENCH_stm.json BENCH_stm.json | tail -1
  11/11 metrics within the 25%-regression threshold

The STM simulator explores commit strategies against the atomic
reference: partial aborts keep lazy's privatization anomaly, while
NOrec's serialized writer commits remove it by construction:

  $ ../bin/tmx.exe stm privatization -s partial | tail -2
  ANOMALIES vs the atomic reference semantics:
    mem:[x=1 y=1]

  $ ../bin/tmx.exe stm privatization -s norec | tail -1
  no anomalies vs the atomic reference

The differential fuzzer cross-checks the five semantic layers (the
summary line carries wall-clock, so only the verdict table is pinned):

  $ ../bin/tmx.exe fuzz --seed 1 --count 3 --no-corpus --jobs 1 | tail -9
    enum-naive     3 programs
    machine-enum   3 programs
    stmsim-enum    3 programs
    lint-sound     3 programs
    jobs-det       3 programs
    reduction-det  3 programs
    repair-sound   3 programs
    arch-diff      3 programs
  all oracles green

  $ ../bin/tmx.exe fuzz --list-oracles | cut -d' ' -f1
  enum-naive
  machine-enum
  stmsim-enum
  lint-sound
  jobs-det
  reduction-det
  repair-sound
  arch-diff

The static analyzer reports candidate races without enumerating, and
exits 1 on findings so it can gate CI:

  $ ../bin/tmx.exe lint privatization
  program privatization: x mixed, y tx-only
  [low] mixed race on x:
    t0 tx write x (t0.0.atomic.1.then.0: x := 1)
    vs t1 plain write x (t1.1: x := 2)
    protections: guarded publication via y (HBww)
    fix: insert fence(x) before t1.1 (cf. `tmx fence')
  verdict: 1 candidate race (1 mixed) (conservative; confirm with `tmx races')
  0/1 programs statically race-free
  [1]

A statically race-free program exits 0:

  $ ../bin/tmx.exe lint opacity_iriw
  program opacity_iriw: x tx-only, y tx-only
  statically race-free
  1/1 programs statically race-free

SARIF output carries the schema header, the rule ids, and one result
per finding (still exit 1, so it can gate and upload in one step):

  $ ../bin/tmx.exe lint privatization --sarif > lint.sarif
  [1]
  $ grep -c 'sarif-schema-2.1.0' lint.sarif
  1
  $ grep -o '"version": "2.1.0"' lint.sarif
  "version": "2.1.0"
  $ grep -o '"ruleId": "[a-z-]*"' lint.sarif
  "ruleId": "mixed-race"
  $ grep -o '"tmxFindingKey/v1": "[^"]*"' lint.sarif
  "tmxFindingKey/v1": "privatization:x:t0.0.atomic.1.then.0:t1.1"

The repair synthesizer turns a lint finding into the cheapest edit set
the enumerator certifies race-free.  With promotion disabled the only
candidate is the per-site fence, and the result is structurally the
catalog's own fenced variant:

  $ ../bin/tmx.exe repair privatization --no-promote --check
  privatization: repaired with 1 edit (1 fence, 0 promotes, 0 absorbs)
    - insert fence(x) before t1.1
  certificate 49a609368316 (1 subsets, 2 enumerator calls)
    repair-sound: verified (race-free, 1-minimal)
  1 repaired, 0 already race-free, 0 failed (model im, goal mixed)

With promotion allowed the fence ties on edit count and loses the
fence-count tie-break:

  $ ../bin/tmx.exe repair privatization --diff | head -7
  privatization: repaired with 1 edit (0 fences, 1 promote, 0 absorbs)
    - promote t1.1 into atomic
  certificate 519105960ac5 (1 subsets, 2 enumerator calls)
    privatization:
      t0: atomic { ry := y; if !ry { x := 1 } }
  +   t1: atomic { y := 1 }; atomic { x := 2 }
  -   t1: atomic { y := 1 }; x := 2

An already race-free program needs no edits:

  $ ../bin/tmx.exe repair privatization_fence
  privatization_fence: already mixed-race-free, no repair needed (certificate 49a609368316)
  0 repaired, 1 already race-free, 0 failed (model im, goal mixed)

The litmus runner records the static verdict next to the exhaustive one:

  $ ../bin/tmx.exe litmus opacity_iriw | grep static
    static: race-free

`tmx races` also exits 1 when any execution races:

  $ ../bin/tmx.exe races sb -m pm > /dev/null
  [1]

  $ ../bin/tmx.exe races opacity_iriw -m pm
  0/14 executions racy under pm

Unknown names produce errors:

  $ ../bin/tmx.exe litmus nosuch 2>&1 | head -1
  tmx: unknown litmus test "nosuch"; try `tmx litmus --list'
