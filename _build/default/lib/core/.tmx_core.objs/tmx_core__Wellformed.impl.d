lib/core/wellformed.ml: Action Fmt Hashtbl List Rat Rel String Trace
