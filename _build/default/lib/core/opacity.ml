(* Opacity (Guerraoui & Kapalka): all transactions — committed, aborted
   and live — embed into a single serial order consistent with their
   reads.  The paper argues SC-LTRF guarantees opacity; this module
   checks it directly on executions, so the claim is testable.

   Mixed-mode locations cannot be replayed serially (plain interference
   is the whole point of the paper), so the value check covers the
   locations accessed only transactionally in the trace; for these, every
   transactional read must return the value of the serially-preceding
   write.  The serial order is any topological order of transaction
   classes under lifted causality (hb ∪ lwr ∪ xrw): causality already
   contains cwr, cww and xrw, which pin each reader strictly between its
   source and the source's successor, so any topological order works. *)

let transactional_only_locs t =
  let n = Trace.length t in
  let bad = Hashtbl.create 8 and seen = Hashtbl.create 8 in
  for i = 0 to n - 1 do
    match Action.loc_of (Trace.act t i) with
    | Some x when Action.is_memory (Trace.act t i) ->
        Hashtbl.replace seen x ();
        if Trace.is_plain t i then Hashtbl.replace bad x ()
    | _ -> ()
  done;
  Hashtbl.fold (fun x () acc -> if Hashtbl.mem bad x then acc else x :: acc) seen []

(* a serialization of the transaction classes, or None if cyclic *)
let serialization model t =
  let ctx = Lift.make t in
  let hb = Hb.compute model ctx in
  let causality = Rel.union_many [ hb; ctx.lwr; ctx.xrw ] in
  let classes = Trace.txns t in
  let before a b =
    List.exists
      (fun i ->
        Trace.txn_of t i = a
        && List.exists (fun j -> Trace.txn_of t j = b && Rel.mem causality i j) (List.init (Trace.length t) Fun.id))
      (List.init (Trace.length t) Fun.id)
  in
  (* Kahn over classes *)
  let remaining = ref classes and order = ref [] in
  let progress = ref true in
  while !remaining <> [] && !progress do
    progress := false;
    match
      List.find_opt
        (fun c -> not (List.exists (fun d -> d <> c && before d c) !remaining))
        !remaining
    with
    | Some c ->
        order := c :: !order;
        remaining := List.filter (fun d -> d <> c) !remaining;
        progress := true
    | None -> ()
  done;
  if !remaining = [] then Some (List.rev !order) else None

(* replay the purely-transactional locations through a serialization *)
let replay t locs order =
  let mem = Hashtbl.create 8 in
  List.iter (fun x -> Hashtbl.replace mem x 0) locs;
  List.for_all
    (fun b ->
      let members = Trace.txn_members t b in
      let local = Hashtbl.create 4 in
      let ok =
        List.for_all
          (fun i ->
            match Trace.act t i with
            | Action.Read { loc; value; _ } when List.mem loc locs ->
                let expected =
                  match Hashtbl.find_opt local loc with
                  | Some v -> v
                  | None -> Hashtbl.find mem loc
                in
                value = expected
            | Action.Write { loc; value; _ } when List.mem loc locs ->
                Hashtbl.replace local loc value;
                true
            | _ -> true)
          members
      in
      (* only committed transactions publish *)
      if ok && Trace.status t b = Some Trace.Committed then
        Hashtbl.iter (fun x v -> Hashtbl.replace mem x v) local;
      ok)
    order

let check ?(model = Model.programmer) t =
  match serialization model t with
  | None -> false
  | Some order -> replay t (transactional_only_locs t) order
