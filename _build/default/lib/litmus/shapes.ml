(* Systematic litmus families: the classic relaxed-memory shapes (message
   passing, store/load buffering, IRIW, coherence, 2+2W) instantiated at
   every combination of plain and transactional access, with the verdict
   each combination must have under the programmer model.

   The oracles are derived from the model: transactions synchronize
   (cwr/cww in happens-before, xrw in Causality) and plain accesses do
   not, so a forbidden outcome generally requires every synchronizing
   site to be transactional; load buffering is forbidden outright because
   plain reads-from is already in Causality (lwr). *)

open Tmx_core
open Tmx_lang
open Tmx_exec

type site = P | T

let pp_site ppf = function P -> Fmt.string ppf "p" | T -> Fmt.string ppf "t"

(* wrap a group of statements in one transaction *)
let group site body = match site with P -> body | T -> [ Ast.atomic body ]

(* wrap each statement in its own transaction *)
let each site stmts =
  match site with P -> stmts | T -> List.map (fun s -> Ast.atomic [ s ]) stmts

type case = {
  name : string;
  family : string;
  program : Ast.program;
  cond : Outcome.t -> bool;
  forbidden : bool; (* expected verdict under the programmer model *)
}

let reg = Outcome.reg
let mem = Outcome.mem
let sites2 = [ (P, P); (P, T); (T, P); (T, T) ]

let case family sites program cond forbidden =
  {
    name = Fmt.str "%s[%a]" family Fmt.(list ~sep:nop pp_site) sites;
    family;
    program;
    cond;
    forbidden;
  }

(* message passing: x published through a flag *)
let mp =
  List.map
    (fun (s1, s2) ->
      let program =
        Ast.(
          program ~name:"mp" ~locs:[ "x"; "y" ]
            [
              store (loc "x") (int 1) :: group s1 [ store (loc "y") (int 1) ];
              group s2 [ load "r1" (loc "y") ] @ [ load "r2" (loc "x") ];
            ])
      in
      case "mp" [ s1; s2 ] program
        (fun o -> reg o 1 "r1" = 1 && reg o 1 "r2" = 0)
        (s1 = T && s2 = T))
    sites2

(* store buffering: forbidden only when both sides are transactions *)
let sb =
  List.map
    (fun (s1, s2) ->
      let program =
        Ast.(
          program ~name:"sb" ~locs:[ "x"; "y" ]
            [
              group s1 [ store (loc "x") (int 1); load "r" (loc "y") ];
              group s2 [ store (loc "y") (int 1); load "q" (loc "x") ];
            ])
      in
      case "sb" [ s1; s2 ] program
        (fun o -> reg o 0 "r" = 0 && reg o 1 "q" = 0)
        (s1 = T && s2 = T))
    sites2

(* load buffering: forbidden in every combination (lwr is in Causality) *)
let lb =
  List.map
    (fun (s1, s2) ->
      let program =
        Ast.(
          program ~name:"lb" ~locs:[ "x"; "y" ]
            [
              group s1 [ load "r" (loc "x"); store (loc "y") (int 1) ];
              group s2 [ load "q" (loc "y"); store (loc "x") (int 1) ];
            ])
      in
      case "lb" [ s1; s2 ] program
        (fun o -> reg o 0 "r" = 1 && reg o 1 "q" = 1)
        true)
    sites2

(* IRIW: forbidden only when all four sites are transactional *)
let iriw =
  List.concat_map
    (fun (w1, w2) ->
      List.map
        (fun (r1, r2) ->
          let program =
            Ast.(
              program ~name:"iriw" ~locs:[ "x"; "y" ]
                [
                  group w1 [ store (loc "x") (int 1) ];
                  group w2 [ store (loc "y") (int 1) ];
                  each r1 [ load "r1" (loc "x"); load "r2" (loc "y") ];
                  each r2 [ load "q1" (loc "y"); load "q2" (loc "x") ];
                ])
          in
          case "iriw" [ w1; w2; r1; r2 ] program
            (fun o ->
              reg o 2 "r1" = 1 && reg o 2 "r2" = 0 && reg o 3 "q1" = 1
              && reg o 3 "q2" = 0)
            (w1 = T && w2 = T && r1 = T && r2 = T))
        sites2)
    sites2

(* coherence (read-read): new-then-old reads, forbidden only for
   transactions on both sides (opacity); plain allows it (CSE) *)
let corr =
  List.map
    (fun (s1, s2) ->
      let program =
        Ast.(
          program ~name:"corr" ~locs:[ "x" ]
            [
              group s1 [ store (loc "x") (int 1); store (loc "x") (int 2) ];
              each s2 [ load "r1" (loc "x"); load "r2" (loc "x") ];
            ])
      in
      case "corr" [ s1; s2 ] program
        (fun o -> reg o 1 "r1" = 2 && reg o 1 "r2" = 1)
        (s1 = T && s2 = T))
    sites2

(* 2+2W: both locations end at the first thread's value — forbidden only
   when both sides are transactions *)
let w2plus2 =
  List.map
    (fun (s1, s2) ->
      let program =
        Ast.(
          program ~name:"2+2w" ~locs:[ "x"; "y" ]
            [
              group s1 [ store (loc "x") (int 1); store (loc "y") (int 2) ];
              group s2 [ store (loc "y") (int 1); store (loc "x") (int 2) ];
            ])
      in
      case "2+2w" [ s1; s2 ] program
        (fun o -> mem o "x" = 1 && mem o "y" = 1)
        (s1 = T && s2 = T))
    sites2

(* write-to-read causality: synchronization must be transitive through
   the middle thread — forbidden only when all four sites are
   transactional *)
let wrc =
  List.concat_map
    (fun (w, rx) ->
      List.map
        (fun (wy, ry) ->
          let program =
            Ast.(
              program ~name:"wrc" ~locs:[ "x"; "y" ]
                [
                  group w [ store (loc "x") (int 1) ];
                  group rx [ load "r" (loc "x") ] @ group wy [ store (loc "y") (int 1) ];
                  group ry [ load "q" (loc "y") ] @ [ load "p" (loc "x") ];
                ])
          in
          case "wrc" [ w; rx; wy; ry ] program
            (fun o -> reg o 1 "r" = 1 && reg o 2 "q" = 1 && reg o 2 "p" = 0)
            (w = T && rx = T && wy = T && ry = T))
        sites2)
    sites2

let all_cases = mp @ sb @ lb @ iriw @ corr @ w2plus2 @ wrc

type result = { case : case; observed_forbidden : bool; ok : bool }

let run_case ?config ?(model = Model.programmer) case =
  let result = Enumerate.run ?config model case.program in
  let observed_forbidden = not (Enumerate.allowed result case.cond) in
  { case; observed_forbidden; ok = observed_forbidden = case.forbidden }

let run_all ?config ?model () = List.map (run_case ?config ?model) all_cases
