open Tmx_lang

let rec stmt_size (s : Ast.stmt) =
  match s with
  | Ast.Atomic b -> 1 + body_size b
  | Ast.If (_, t, e) -> 1 + body_size t + body_size e
  | Ast.While (_, b) -> 1 + body_size b
  | _ -> 1

and body_size b = List.fold_left (fun n s -> n + stmt_size s) 0 b

let size (p : Ast.program) = List.fold_left (fun n t -> n + body_size t) 0 p.threads

let measure (p : Ast.program) =
  (size p, List.length p.threads, List.length p.locs)

(* replace the [i]th element of [xs] by the list [ys] (splice) *)
let splice xs i ys =
  List.concat (List.mapi (fun j x -> if j = i then ys else [ x ]) xs)

let drop xs i = splice xs i []

(* every body with exactly one statement removed, at any depth *)
let rec body_drops (body : Ast.stmt list) : Ast.stmt list list =
  let at_top = List.mapi (fun i _ -> drop body i) body in
  let nested =
    List.concat
      (List.mapi
         (fun i s ->
           List.map (fun s' -> splice body i [ s' ]) (stmt_drops s))
         body)
  in
  at_top @ nested

and stmt_drops (s : Ast.stmt) : Ast.stmt list =
  match s with
  | Ast.Atomic b -> List.map (fun b' -> Ast.Atomic b') (body_drops b)
  | Ast.If (c, t, e) ->
      List.map (fun t' -> Ast.If (c, t', e)) (body_drops t)
      @ List.map (fun e' -> Ast.If (c, t, e')) (body_drops e)
  | Ast.While (c, b) -> List.map (fun b' -> Ast.While (c, b')) (body_drops b)
  | _ -> []

(* splice atomic bodies (minus aborts, which are only legal inside) and
   branch bodies into the enclosing statement list *)
let rec body_flattens (body : Ast.stmt list) : Ast.stmt list list =
  let at_top =
    List.concat
      (List.mapi
         (fun i s ->
           match (s : Ast.stmt) with
           | Ast.Atomic b ->
               [ splice body i (List.filter (fun s -> s <> Ast.Abort) b) ]
           | Ast.If (_, t, e) -> [ splice body i t; splice body i e ]
           | Ast.While (_, b) -> [ splice body i b ]
           | _ -> [])
         body)
  in
  let nested =
    List.concat
      (List.mapi
         (fun i s ->
           match (s : Ast.stmt) with
           | Ast.Atomic b ->
               List.map (fun b' -> splice body i [ Ast.Atomic b' ]) (body_flattens b)
           | Ast.If (c, t, e) ->
               List.map (fun t' -> splice body i [ Ast.If (c, t', e) ]) (body_flattens t)
               @ List.map
                   (fun e' -> splice body i [ Ast.If (c, t, e') ])
                   (body_flattens e)
           | _ -> [])
         body)
  in
  at_top @ nested

let rec rename_loc_stmt old new_ (s : Ast.stmt) : Ast.stmt =
  let lval (lv : Ast.lval) =
    if lv.index = None && String.equal lv.base old then { lv with base = new_ }
    else lv
  in
  match s with
  | Ast.Load (r, lv) -> Ast.Load (r, lval lv)
  | Ast.Store (lv, e) -> Ast.Store (lval lv, e)
  | Ast.Atomic b -> Ast.Atomic (List.map (rename_loc_stmt old new_) b)
  | Ast.If (c, t, e) ->
      Ast.If
        (c, List.map (rename_loc_stmt old new_) t,
         List.map (rename_loc_stmt old new_) e)
  | Ast.While (c, b) -> Ast.While (c, List.map (rename_loc_stmt old new_) b)
  | Ast.Fence l when String.equal l old -> Ast.Fence new_
  | s -> s

let narrowings (p : Ast.program) : Ast.program list =
  let locs = p.locs in
  List.concat
    (List.mapi
       (fun j lj ->
         List.concat
           (List.mapi
              (fun i li ->
                if i < j then
                  [
                    {
                      p with
                      Ast.locs = drop locs j;
                      threads =
                        List.map (List.map (rename_loc_stmt lj li)) p.threads;
                    };
                  ]
                else [])
              locs))
       locs)

let candidates (p : Ast.program) : Ast.program list =
  let with_threads threads = { p with Ast.threads } in
  let thread_drops =
    if List.length p.threads <= 1 then []
    else List.mapi (fun i _ -> with_threads (drop p.threads i)) p.threads
  in
  let per_thread variants =
    List.concat
      (List.mapi
         (fun i t ->
           List.map
             (fun t' -> with_threads (splice p.threads i [ t' ]))
             (variants t))
         p.threads)
  in
  let drops = per_thread body_drops in
  let flattens = per_thread body_flattens in
  let m = measure p in
  List.filter
    (fun c ->
      measure c < m
      && (match Ast.validate c with Ok () -> true | Error _ -> false))
    (thread_drops @ drops @ flattens @ narrowings p)

let minimize ~fails p =
  let rec go p steps =
    match List.find_opt fails (candidates p) with
    | Some c -> go c (steps + 1)
    | None -> (p, steps)
  in
  go p 0
