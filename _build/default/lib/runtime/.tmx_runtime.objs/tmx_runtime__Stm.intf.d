lib/runtime/stm.mli: Atomic Tvar
