(** Systematic litmus families: the classic relaxed-memory shapes
    (message passing, store/load buffering, IRIW, coherence, 2+2W)
    instantiated at every combination of plain and transactional access,
    with the programmer-model verdict each combination must have.

    The oracles follow from the model: transactions synchronize, plain
    accesses do not, so forbidden outcomes generally require every
    synchronizing site to be transactional — except load buffering, which
    is forbidden outright because plain reads-from already participates
    in Causality. *)

open Tmx_core
open Tmx_exec

type site = P | T

val pp_site : site Fmt.t

type case = {
  name : string;
  family : string;
  program : Tmx_lang.Ast.program;
  cond : Outcome.t -> bool;
  forbidden : bool;
}

val mp : case list
val sb : case list
val lb : case list
val iriw : case list
val corr : case list
val w2plus2 : case list
val wrc : case list
val all_cases : case list

type result = { case : case; observed_forbidden : bool; ok : bool }

val run_case : ?config:Enumerate.config -> ?model:Model.t -> case -> result
val run_all : ?config:Enumerate.config -> ?model:Model.t -> unit -> result list
