(* The fuzzer's own guarantees: generation is deterministic per (seed,
   index), every shrink candidate is strictly smaller and well-formed,
   and minimization is deterministic and preserves the failing oracle.
   The end-to-end minimizer check drives the deliberately-broken demo
   oracle, the same one `tmx fuzz --minimize` demos with
   TMX_FUZZ_BROKEN=1. *)

open Tmx_lang
module Gen = Tmx_fuzz.Gen
module Shrink = Tmx_fuzz.Shrink
module Oracle = Tmx_fuzz.Oracle

let presets = [ ("theorems", Gen.theorems); ("analysis", Gen.analysis); ("mixed", Gen.mixed) ]

let programs cfg ~seed n =
  List.init n (fun i -> Gen.program cfg (Gen.state_of_seed ~seed ~index:i))

let test_gen_deterministic () =
  List.iter
    (fun (name, cfg) ->
      let show ps = Fmt.str "%a" Fmt.(list Ast.pp_program) ps in
      Alcotest.(check string)
        (name ^ ": same seed, same programs")
        (show (programs cfg ~seed:7 25))
        (show (programs cfg ~seed:7 25)))
    presets

let test_gen_valid () =
  List.iter
    (fun (name, cfg) ->
      List.iteri
        (fun i p ->
          match Ast.validate p with
          | Ok () -> ()
          | Error msg -> Alcotest.failf "%s #%d invalid: %s" name i msg)
        (programs cfg ~seed:3 50))
    presets

let test_gen_seeds_differ () =
  (* distinct seeds explore distinct programs (not a fixed stream) *)
  let show ps = Fmt.str "%a" Fmt.(list Ast.pp_program) ps in
  Alcotest.(check bool) "seeds 0 and 1 differ" false
    (String.equal (show (programs Gen.mixed ~seed:0 10)) (show (programs Gen.mixed ~seed:1 10)))

let test_candidates_strictly_smaller () =
  List.iter
    (fun p ->
      let m = Shrink.measure p in
      List.iter
        (fun c ->
          Alcotest.(check bool)
            (Fmt.str "candidate of %s strictly smaller" p.Ast.name)
            true
            (Shrink.measure c < m);
          match Ast.validate c with
          | Ok () -> ()
          | Error msg -> Alcotest.failf "candidate invalid: %s" msg)
        (Shrink.candidates p))
    (programs Gen.mixed ~seed:11 40)

let test_minimize_deterministic () =
  (* no randomness anywhere in the shrinker: two runs agree exactly *)
  let fails p = Shrink.size p >= 3 in
  List.iter
    (fun p ->
      if fails p then begin
        let m1, s1 = Shrink.minimize ~fails p in
        let m2, s2 = Shrink.minimize ~fails p in
        Alcotest.(check string) "same minimum"
          (Fmt.str "%a" Ast.pp_program m1)
          (Fmt.str "%a" Ast.pp_program m2);
        Alcotest.(check int) "same step count" s1 s2
      end)
    (programs Gen.mixed ~seed:5 20)

let test_minimized_still_fails () =
  (* against the real (deliberately broken) oracle: the minimum still
     fails it, is no larger than the original, and is small.  Greedy
     shrinking is 1-minimal, not globally minimal — a dead-branch mixed
     access can survive at a handful of statements — so the bound is the
     demo's acceptance bound (6), not the global 2-statement floor. *)
  let ctx = Oracle.make_ctx ~jobs:2 ~seed:0 () in
  let fails p = match Oracle.broken.check ctx p with Oracle.Fail _ -> true | Oracle.Pass -> false in
  let checked = ref 0 in
  List.iter
    (fun p ->
      if fails p then begin
        incr checked;
        let m, _ = Shrink.minimize ~fails p in
        Alcotest.(check bool) "minimized still fails" true (fails m);
        Alcotest.(check bool) "no larger" true (Shrink.measure m <= Shrink.measure p);
        Alcotest.(check bool)
          (Fmt.str "small: %a" Ast.pp_program m)
          true
          (Shrink.size m <= 6)
      end)
    (programs Gen.mixed ~seed:1 40);
  Alcotest.(check bool) "some mixed programs generated" true (!checked > 5)

let test_stock_oracle_names () =
  Alcotest.(check (list string))
    "stock oracle names"
    [
      "enum-naive";
      "machine-enum";
      "stmsim-enum";
      "lint-sound";
      "jobs-det";
      "reduction-det";
      "repair-sound";
      "arch-diff";
    ]
    (List.map (fun (o : Oracle.t) -> o.name) Oracle.stock)

let suite =
  [
    Alcotest.test_case "generation deterministic per seed" `Quick test_gen_deterministic;
    Alcotest.test_case "generated programs validate" `Quick test_gen_valid;
    Alcotest.test_case "seeds explore different programs" `Quick test_gen_seeds_differ;
    Alcotest.test_case "shrink candidates strictly smaller and valid" `Quick
      test_candidates_strictly_smaller;
    Alcotest.test_case "minimization deterministic" `Quick test_minimize_deterministic;
    Alcotest.test_case "minimized programs still fail their oracle" `Quick
      test_minimized_still_fails;
    Alcotest.test_case "stock oracle registry" `Quick test_stock_oracle_names;
  ]
