lib/core/action.ml: Fmt Rat String
