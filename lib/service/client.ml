type conn = { fd : Unix.file_descr; mutable pending : string }

let connect ?(wait_s = 0.) path =
  (* monotonic: a wall-clock step while we poll must not stretch or
     collapse the connect window *)
  let deadline = Tmx_runtime.Clock.now_s () +. wait_s in
  let rec go () =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX path) with
    | () -> Ok { fd; pending = "" }
    | exception Unix.Unix_error (e, _, _) ->
        (try Unix.close fd with _ -> ());
        if Tmx_runtime.Clock.now_s () < deadline then (
          Unix.sleepf 0.02;
          go ())
        else
          Error
            (Printf.sprintf "cannot connect to %s: %s" path
               (Unix.error_message e))
  in
  go ()

let close c = try Unix.close c.fd with _ -> ()

(* as on the server side: a signal mid-write resumes where it left off
   instead of truncating the request *)
let write_all fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let rec go off =
    if off < n then
      match Unix.write fd b off (n - off) with
      | written -> go (off + written)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          (try ignore (Unix.select [] [ fd ] [] 0.25)
           with Unix.Unix_error (Unix.EINTR, _, _) -> ());
          go off
  in
  go 0

let read_line c =
  let chunk = Bytes.create 4096 in
  let rec go () =
    match String.index_opt c.pending '\n' with
    | Some i ->
        let line = String.sub c.pending 0 i in
        c.pending <-
          String.sub c.pending (i + 1) (String.length c.pending - i - 1);
        Ok line
    | None -> (
        match Unix.read c.fd chunk 0 (Bytes.length chunk) with
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
        | exception Unix.Unix_error (e, _, _) ->
            Error (Unix.error_message e)
        | 0 -> Error "server closed the connection"
        | n ->
            c.pending <- c.pending ^ Bytes.sub_string chunk 0 n;
            go ())
  in
  go ()

let roundtrip c req =
  match write_all c.fd (Json.to_string req ^ "\n") with
  | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
  | () -> (
      match read_line c with
      | Error e -> Error e
      | Ok line -> (
          match Json.of_string line with
          | Ok j -> Ok j
          | Error e -> Error (Printf.sprintf "bad response: %s" e)))

let request ?wait_s ~socket req =
  match connect ?wait_s socket with
  | Error e -> Error e
  | Ok c ->
      Fun.protect ~finally:(fun () -> close c) (fun () -> roundtrip c req)
