lib/core/lift.ml: Array Rel Trace
