test/test_sc.ml: Alcotest Ast Consistency Enumerate Fmt List Model Option Outcome Sc Sequentiality Tmx_core Tmx_exec Tmx_lang Tmx_litmus Wellformed
