(* The static mixed-race analyzer behind `tmx lint`.

   The analysis is a conservative over-approximation of the paper's race
   definitions: every pair of static accesses that clashes on a location,
   involves a write and a plain access, and is not ordered by the static
   happens-before abstraction ([Order.pair]) becomes a finding.  The
   soundness direction is the valuable one — if [race_free] holds, no
   consistent execution of the program has an L-race or a mixed race,
   under any model (pinned by the enumeration-backed property suite in
   test/test_analysis.ml).  The converse direction is measured, not
   promised: the precision report counts findings the exhaustive
   enumerator does not confirm.

   Each finding carries the paper-shaped fix: wrap the plain access in
   an atomic block (making the pair transactional, hence race-free by
   definition), or — for privatization-shaped accesses that follow an
   atomic block in their thread — insert a quiescence fence, the same
   transformation `tmx fence` ([Tmx_opt.Fenceify]) applies wholesale. *)

open Tmx_lang

type severity = High | Medium | Low | Info

let pp_severity ppf = function
  | High -> Fmt.string ppf "high"
  | Medium -> Fmt.string ppf "medium"
  | Low -> Fmt.string ppf "low"
  | Info -> Fmt.string ppf "info"

let severity_rank = function High -> 0 | Medium -> 1 | Low -> 2 | Info -> 3

type kind = Mixed_race | L_race

let pp_kind ppf = function
  | Mixed_race -> Fmt.string ppf "mixed race"
  | L_race -> Fmt.string ppf "L-race"

type fix =
  | Insert_fence of { fence_loc : string; before : string }
  | Wrap_atomic of string list

let pp_fix ppf = function
  | Insert_fence { fence_loc; before } ->
      Fmt.pf ppf "insert fence(%s) before %s (cf. `tmx fence')" fence_loc before
  | Wrap_atomic [ p ] -> Fmt.pf ppf "wrap %s in atomic { }" p
  | Wrap_atomic ps ->
      Fmt.pf ppf "wrap %a in atomic { }" Fmt.(list ~sep:(any " and ") string) ps

type finding = {
  kind : kind;
  loc : string;
  a : Access.t;
  b : Access.t;
  protections : Order.protection list;
  severity : severity;
  fix : fix;
}

type report = {
  program : Ast.program;
  summaries : Access.summary list;
  findings : finding list;
}

let race_free r = r.findings = []

(* the more specific of the two clashing names: prefer a concrete cell
   over its wildcard *)
let specific_loc a b =
  let is_wild n =
    match Tmx_opt.Footprint.base_of n with
    | Some base -> String.equal n (base ^ "[*]")
    | None -> false
  in
  if is_wild a && not (is_wild b) then b else a

let is_guard_protection = function
  | Order.Guarded_publication _ | Order.Published_flag _
  | Order.Consumed_flag _ ->
      true
  | Order.Fence_commit_side _ | Order.Fence_begin_side _ -> false

let is_fence_protection p = not (is_guard_protection p)

let severity_of protections =
  let guard = List.exists is_guard_protection protections in
  let fence = List.exists is_fence_protection protections in
  match (guard, fence) with
  | false, false -> High
  | false, true -> Medium
  | true, false -> Low
  | true, true -> Info

(* A fence is only suggested when no fence protection exists yet, so a
   mechanically applied [Insert_fence] suggestion always adds a new
   protection class and strictly decreases the finding's severity
   (High → Medium, Low → Info) — the property test/test_repair.ml pins. *)
let fix_of loc protections (a : Access.t) (b : Access.t) =
  match (a.mode, b.mode) with
  | Access.Plain, Access.Plain -> Wrap_atomic [ a.path; b.path ]
  | _ ->
      let plain = if a.mode = Access.Plain then a else b in
      if plain.after_atomic && not (List.exists is_fence_protection protections)
      then Insert_fence { fence_loc = loc; before = plain.path }
      else Wrap_atomic [ plain.path ]

let finding_of_pair (a : Access.t) (b : Access.t) protections =
  let loc = specific_loc a.Access.loc b.Access.loc in
  let kind =
    if
      a.Access.kind = Access.Write
      && b.Access.kind = Access.Write
      && a.Access.mode <> b.Access.mode
    then Mixed_race
    else L_race
  in
  {
    kind;
    loc;
    a;
    b;
    protections;
    severity = severity_of protections;
    fix = fix_of loc protections a b;
  }

let lint (p : Ast.program) =
  let ctx = Access.context p in
  let accesses = Array.of_list ctx.Access.ctx_accesses in
  let findings = ref [] in
  let n = Array.length accesses in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let a = accesses.(i) and b = accesses.(j) in
      if
        Tmx_opt.Footprint.name_clash a.Access.loc b.Access.loc
        && (a.Access.kind = Access.Write || b.Access.kind = Access.Write)
      then
        match Order.pair ~ctx a b with
        | Order.Ordered _ -> ()
        | Order.Unordered protections ->
            findings := finding_of_pair a b protections :: !findings
    done
  done;
  let findings =
    List.stable_sort
      (fun f g ->
        match compare (severity_rank f.severity) (severity_rank g.severity) with
        | 0 -> compare (f.loc, f.a.Access.path) (g.loc, g.a.Access.path)
        | c -> c)
      (List.rev !findings)
  in
  { program = p; summaries = Access.summaries p; findings }

let mixed_count r =
  List.length (List.filter (fun f -> f.kind = Mixed_race) r.findings)

(* the soundness oracles ask: is this dynamic race location covered by
   some finding?  Wildcard findings ("z[*]") cover every cell. *)
let covers r loc =
  List.exists (fun f -> Tmx_opt.Footprint.name_clash f.loc loc) r.findings

(* -- rendering --------------------------------------------------------------- *)

let pp_verdict ppf r =
  if race_free r then Fmt.string ppf "race-free"
  else
    Fmt.pf ppf "%d candidate race%s (%d mixed)"
      (List.length r.findings)
      (if List.length r.findings = 1 then "" else "s")
      (mixed_count r)

let pp_finding ppf f =
  Fmt.pf ppf "@[<v2>[%a] %a on %s:@,%a@,vs %a%a@,fix: %a@]" pp_severity
    f.severity pp_kind f.kind f.loc Access.pp f.a Access.pp f.b
    (fun ppf -> function
      | [] -> ()
      | ps ->
          Fmt.pf ppf "@,protections: %a"
            Fmt.(list ~sep:(any "; ") Order.pp_protection)
            ps)
    f.protections pp_fix f.fix

let pp_report ppf r =
  Fmt.pf ppf "@[<v>program %s: %a@," r.program.Ast.name
    Fmt.(
      list ~sep:(any ", ") (fun ppf (s : Access.summary) ->
          Fmt.pf ppf "%s %a" s.loc Access.pp_class s.class_))
    r.summaries;
  if race_free r then Fmt.pf ppf "statically race-free@]"
  else
    Fmt.pf ppf "%a@,verdict: %a (conservative; confirm with `tmx races')@]"
      Fmt.(list ~sep:cut pp_finding)
      r.findings pp_verdict r

(* -- JSON -------------------------------------------------------------------- *)

let json_escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let json_access buf (a : Access.t) =
  Buffer.add_string buf
    (Fmt.str "{\"thread\": %d, \"mode\": \"%a\", \"kind\": \"%a\", " a.thread
       Access.pp_mode a.mode Access.pp_kind a.kind);
  Buffer.add_string buf "\"loc\": ";
  json_escape buf a.loc;
  Buffer.add_string buf ", \"path\": ";
  json_escape buf a.path;
  Buffer.add_string buf ", \"stmt\": ";
  json_escape buf (Fmt.str "%a" Ast.pp_stmt a.stmt);
  Buffer.add_string buf "}"

let to_json r =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\"program\": ";
  json_escape buf r.program.Ast.name;
  Buffer.add_string buf
    (Fmt.str ",\n \"race_free\": %b,\n \"locations\": [" (race_free r));
  List.iteri
    (fun i (s : Access.summary) ->
      if i > 0 then Buffer.add_string buf ", ";
      Buffer.add_string buf "\n  {\"name\": ";
      json_escape buf s.loc;
      Buffer.add_string buf
        (Fmt.str
           ", \"class\": \"%a\", \"plain_reads\": %d, \"plain_writes\": %d, \
            \"tx_reads\": %d, \"tx_writes\": %d, \"threads\": [%a]}"
           Access.pp_class s.class_ s.counts.plain_reads s.counts.plain_writes
           s.counts.tx_reads s.counts.tx_writes
           Fmt.(list ~sep:comma int)
           s.threads))
    r.summaries;
  Buffer.add_string buf "],\n \"findings\": [";
  List.iteri
    (fun i f ->
      if i > 0 then Buffer.add_string buf ", ";
      Buffer.add_string buf
        (Fmt.str "\n  {\"kind\": \"%s\", \"severity\": \"%a\", \"loc\": "
           (match f.kind with Mixed_race -> "mixed" | L_race -> "l-race")
           pp_severity f.severity);
      json_escape buf f.loc;
      Buffer.add_string buf ", \"a\": ";
      json_access buf f.a;
      Buffer.add_string buf ", \"b\": ";
      json_access buf f.b;
      Buffer.add_string buf ", \"protections\": [";
      List.iteri
        (fun j pr ->
          if j > 0 then Buffer.add_string buf ", ";
          json_escape buf (Fmt.str "%a" Order.pp_protection pr))
        f.protections;
      Buffer.add_string buf "], \"fix\": ";
      json_escape buf (Fmt.str "%a" pp_fix f.fix);
      Buffer.add_string buf "}")
    r.findings;
  Buffer.add_string buf "]\n}\n";
  Buffer.contents buf

(* -- SARIF 2.1.0 -------------------------------------------------------------- *)

(* One run, one result per finding across all reports; the program name
   and source path land in a logical location (the litmus language has
   no files/lines for a physical one).  Severities map onto the SARIF
   levels: high → error, medium → warning, low/info → note. *)

let sarif_level = function
  | High -> "error"
  | Medium -> "warning"
  | Low | Info -> "note"

let sarif_rule_id = function Mixed_race -> "mixed-race" | L_race -> "l-race"

let sarif_of_reports reports =
  let buf = Buffer.create 4096 in
  let str s = json_escape buf s in
  Buffer.add_string buf
    "{\n\
    \  \"$schema\": \
     \"https://docs.oasis-open.org/sarif/sarif/v2.1.0/os/schemas/sarif-schema-2.1.0.json\",\n\
    \  \"version\": \"2.1.0\",\n\
    \  \"runs\": [\n\
    \    {\n\
    \      \"tool\": {\n\
    \        \"driver\": {\n\
    \          \"name\": \"tmx-lint\",\n\
    \          \"informationUri\": \"https://example.invalid/tmx\",\n\
    \          \"rules\": [\n\
    \            {\"id\": \"mixed-race\", \"shortDescription\": {\"text\": \
     \"candidate mixed race: transactional write vs plain write on a \
     shared location\"}},\n\
    \            {\"id\": \"l-race\", \"shortDescription\": {\"text\": \
     \"candidate L-race: unordered conflicting pair with a plain \
     access\"}}\n\
    \          ]\n\
    \        }\n\
    \      },\n\
    \      \"results\": [";
  let first = ref true in
  List.iter
    (fun r ->
      List.iter
        (fun f ->
          if not !first then Buffer.add_string buf ",";
          first := false;
          Buffer.add_string buf "\n        {\"ruleId\": \"";
          Buffer.add_string buf (sarif_rule_id f.kind);
          Buffer.add_string buf "\", \"level\": \"";
          Buffer.add_string buf (sarif_level f.severity);
          Buffer.add_string buf "\", \"message\": {\"text\": ";
          str
            (Fmt.str "%a on %s: %a vs %a; fix: %a" pp_kind f.kind f.loc
               Access.pp f.a Access.pp f.b pp_fix f.fix);
          Buffer.add_string buf "},\n         \"locations\": [";
          List.iteri
            (fun i (a : Access.t) ->
              if i > 0 then Buffer.add_string buf ", ";
              Buffer.add_string buf "{\"logicalLocations\": [{\"kind\": ";
              str "member";
              Buffer.add_string buf ", \"fullyQualifiedName\": ";
              str (r.program.Ast.name ^ "/" ^ a.path);
              Buffer.add_string buf "}]}")
            [ f.a; f.b ];
          Buffer.add_string buf "],\n         \"partialFingerprints\": {\"tmxFindingKey/v1\": ";
          str
            (Fmt.str "%s:%s:%s:%s" r.program.Ast.name f.loc f.a.Access.path
               f.b.Access.path);
          Buffer.add_string buf "},\n         \"properties\": {\"severity\": ";
          str (Fmt.str "%a" pp_severity f.severity);
          Buffer.add_string buf ", \"program\": ";
          str r.program.Ast.name;
          Buffer.add_string buf "}}")
        r.findings)
    reports;
  Buffer.add_string buf "\n      ]\n    }\n  ]\n}\n";
  Buffer.contents buf
