(** A software transactional memory for OCaml 5 realizing the paper's
    implementation model (§5).

    Two versioning strategies, matching §3's design space:

    - [Lazy] (the default): TL2-style — a global version clock, reads
      validated against the transaction's read version (opacity), writes
      buffered and published at commit under per-variable versioned
      locks;
    - [Eager]: encounter-time locking with an undo log — writes lock and
      update in place, aborts roll back.

    Both order transactions with a direct dependency (the publication
    idiom needs no fence); neither orders transactions against later
    plain accesses — privatization needs {!quiesce}, the quiescence fence
    of §5.

    {b Conflicts retry automatically; user aborts do not.}  Raising an
    arbitrary exception inside a transaction aborts it and re-raises. *)

type mode = Lazy | Eager

type tx
(** A transaction in progress.  Valid only during the [atomically]
    callback that provided it. *)

val read : tx -> Tvar.t -> int
(** Transactional read (sees the transaction's own writes). *)

val write : tx -> Tvar.t -> int -> unit

val abort : tx -> 'a
(** The paper's explicit [abort]: discard all effects, do not retry. *)

val or_else : tx -> (tx -> 'a) -> (tx -> 'a) -> 'a
(** [or_else tx f1 f2] runs [f1]; if it aborts, its effects are undone
    and [f2] runs within the same transaction (the classic composable
    alternative).  An abort in [f2] aborts the whole transaction. *)

val atomically : ?mode:mode -> ?footprint:Tvar.t list -> (tx -> 'a) -> 'a option
(** Run to commit, retrying on conflicts; [None] if the user aborted.

    [footprint] declares the set of TVars the transaction may touch —
    any access outside it raises — and lets per-location fences
    ([quiesce ~var]) skip this transaction when the variable is not in
    the set. *)

val atomically_result :
  ?mode:mode -> ?footprint:Tvar.t list -> (tx -> 'a) -> ('a, [ `Aborted ]) result

val quiesce : ?var:Tvar.t -> unit -> unit
(** The quiescence fence: returns once every relevant transaction in
    flight at the call has resolved, making subsequent plain accesses
    safe against pre-fence transactions (the privatization recipe of
    §5).  With [var] this is the paper's per-location fence [Qx]: only
    transactions whose declared footprint contains [var] — plus all
    transactions without a declared footprint — are waited for. *)

val stats_snapshot : unit -> int * int * int
(** Global counters: commits, conflict retries, user aborts. *)

(**/**)

val clock : int Atomic.t

val attempt :
  ?footprint:int list -> mode -> (tx -> 'a) -> ('a, [ `Aborted | `Conflict ]) result

(**/**)
