(* A staged pipeline on the STM runtime, combining the transactional data
   structures with the privatization idiom:

   producer --(Tqueue)--> worker --(Tqueue)--> collector

   The worker claims a batch slot transactionally, quiesces, processes
   the batch with cheap plain accesses (the §1 motivation for
   privatization: keep heavy computation outside atomic blocks), then
   publishes the result back through a transaction.

   Run with:  dune exec examples/pipeline.exe *)

open Tmx_runtime

let batches = 24
let batch_size = 16

let () =
  let input = Tqueue.create ~capacity:8 in
  let output = Tqueue.create ~capacity:8 in
  (* the shared batch store: [batches] rows of [batch_size] cells *)
  let store = Tarray.make (batches * batch_size) 0 in
  let claimed = Tarray.make batches 0 in

  let producer () =
    for b = 0 to batches - 1 do
      (* fill the batch plainly — nobody can see it yet — then publish
         its index through the queue (the publication idiom) *)
      for i = 0 to batch_size - 1 do
        Tvar.unsafe_write store.((b * batch_size) + i) (i + 1)
      done;
      let rec push () =
        match Stm.atomically (fun tx -> Tqueue.push tx input b) with
        | Some true -> ()
        | _ ->
            Domain.cpu_relax ();
            push ()
      in
      push ()
    done
  in

  let worker () =
    let processed = ref 0 in
    while !processed < batches do
      match Stm.atomically (fun tx -> Tqueue.pop tx input) with
      | Some (Some b) ->
          incr processed;
          (* claim the batch transactionally, then privatize it *)
          ignore (Stm.atomically (fun tx -> Tarray.set tx claimed b 1));
          Stm.quiesce ();
          (* heavy work with plain accesses: sum and square the batch *)
          let sum = ref 0 in
          for i = 0 to batch_size - 1 do
            let v = Tvar.unsafe_read store.((b * batch_size) + i) in
            Tvar.unsafe_write store.((b * batch_size) + i) (v * v);
            sum := !sum + v
          done;
          (* publish the result *)
          let rec push () =
            match Stm.atomically (fun tx -> Tqueue.push tx output !sum) with
            | Some true -> ()
            | _ ->
                Domain.cpu_relax ();
                push ()
          in
          push ()
      | _ -> Domain.cpu_relax ()
    done
  in

  let collector () =
    let total = ref 0 and received = ref 0 in
    while !received < batches do
      match Stm.atomically (fun tx -> Tqueue.pop tx output) with
      | Some (Some sum) ->
          incr received;
          total := !total + sum
      | _ -> Domain.cpu_relax ()
    done;
    !total
  in

  let p = Domain.spawn producer in
  let w = Domain.spawn worker in
  let total = collector () in
  Domain.join p;
  Domain.join w;

  let expected = batches * (batch_size * (batch_size + 1) / 2) in
  Fmt.pr "pipeline: %d batches, total=%d (expected %d) — %s@." batches total
    expected
    (if total = expected then "ok" else "MISMATCH");
  (* and the privatized writes stuck: every cell is now a square *)
  let squares_ok = ref true in
  for b = 0 to batches - 1 do
    for i = 0 to batch_size - 1 do
      if Tvar.unsafe_read store.((b * batch_size) + i) <> (i + 1) * (i + 1) then
        squares_ok := false
    done
  done;
  Fmt.pr "privatized in-place squaring: %s@." (if !squares_ok then "ok" else "MISMATCH");
  let commits, conflicts, _ = Stm.stats_snapshot () in
  Fmt.pr "stm commits=%d conflicts=%d@." commits conflicts
