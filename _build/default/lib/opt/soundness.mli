(** Empirical soundness of program transformations: the transformed
    program may not exhibit outcomes the original cannot.  Outcome-set
    inclusion over the exhaustive enumerator is the litmus-scale
    analogue of the paper's trace-set refinement. *)

open Tmx_exec

type verdict = Sound | Unsound of Outcome.t

val pp_verdict : verdict Fmt.t

val check :
  ?config:Enumerate.config ->
  Tmx_core.Model.t ->
  original:Tmx_lang.Ast.program ->
  transformed:Tmx_lang.Ast.program ->
  verdict

type report = {
  transformation : string;
  program : string;
  variants : int;
  failures : (Tmx_lang.Ast.program * Outcome.t) list;
}

val check_transformation :
  ?config:Enumerate.config ->
  Tmx_core.Model.t ->
  Transform.named ->
  Tmx_lang.Ast.program ->
  report
(** Check every single-step application of a transformation on a
    program. *)

val pp_report : report Fmt.t
