(** The [tmx serve] daemon: a multi-domain NDJSON query service over a
    Unix socket and/or TCP, backed by the verdict {!Cache}.

    [workers] domains share the listening sockets through a select
    loop; each owns its accepted connection for the connection's
    lifetime, so up to [workers] clients are served concurrently
    (further connects queue in the kernel backlog).  All workers share
    one {!Cache.t} (sharded by digest prefix when [cache_shards > 1])
    and one {!Metrics.t}.

    Binding ({!listen}) is split from serving ({!start}) so a caller
    can bind once, report the bound addresses ({!addresses} — the
    kernel picks the port for port 0), and fork shard processes that
    inherit the same listening fds: the kernel load-balances accepts
    across the processes, and a respawned shard reuses the fds without
    re-binding.

    Overload sheds instead of queueing: at most [max_inflight]
    expensive requests run concurrently per process; an arrival past
    the limit is answered immediately with the structured
    {!Protocol.overloaded} response (the admission budget is
    [Tmx_runtime.Contention.Admission] — the STM Budget policy's bound
    reused as backpressure).  [ping], [stats] and [shutdown] bypass
    admission so liveness probes, observability and the off switch
    survive overload.

    Per-request deadlines are cooperative: the deadline is checked
    before enumeration starts and, for [batch], between sub-requests —
    an in-flight enumeration is never killed mid-way (its store is
    still useful and the cache must never hold torn entries), so
    cancellation is graceful by construction.  A missed deadline
    produces an ["deadline exceeded"] error response, not a dropped
    connection.

    A client disconnecting mid-request only tears down that connection:
    the write failure (SIGPIPE is ignored; [EPIPE] is caught) is
    contained and the worker returns to the accept loop. *)

type config = {
  socket : string option;
      (** Unix-domain socket path (note the ~100-char OS limit) *)
  tcp : (string * int) option;  (** TCP host and port; port 0 = kernel picks *)
  cache_dir : string;
  cache_capacity : int;  (** LRU front bound *)
  cache_shards : int;  (** digest-prefix shards of the verdict cache *)
  workers : int;  (** accept-loop domains *)
  jobs : int;  (** [Tmx_exec.Pool] width for [batch] fan-out *)
  max_inflight : int;
      (** admission bound on concurrent expensive requests; [<= 0] =
          unlimited *)
  enum : Tmx_exec.Enumerate.config;  (** enumeration config for every request *)
  verbose : bool;  (** log requests to stderr *)
}

val default_config : socket:string -> config
(** Unix socket only, workers 2, jobs 1, cache dir {!Cache.default_dir},
    capacity 128, one cache shard, unlimited admission. *)

(** {1 Listeners} *)

type listener
(** Bound, listening sockets — not yet served.  Safe to share across
    [fork]ed processes; each process then passes it to {!start}. *)

val listen : config -> listener
(** Bind and listen on every transport the config names.
    @raise Invalid_argument when the config names no transport.
    @raise Unix.Unix_error when a socket cannot be bound. *)

val addresses : listener -> string list
(** The bound addresses, as [client]-parseable strings:
    ["unix:PATH"], ["tcp:HOST:PORT"] (with the actual kernel-chosen
    port when the config asked for port 0). *)

val tcp_port : listener -> int option
(** The bound TCP port, when a TCP transport is configured. *)

val close_listener : listener -> unit
(** Close the listening fds (does not unlink the Unix socket path). *)

(** {1 Lifecycle} *)

type t

val start : ?listener:listener -> config -> t
(** Spawns the workers and returns immediately.  Without [?listener],
    binds one itself (and owns it: {!stop} closes and unlinks).  With
    [?listener], the caller keeps ownership — {!stop} only stops the
    workers, so sibling processes sharing the fds keep serving.
    @raise Unix.Unix_error when binding fails. *)

val cache : t -> Cache.t
val server_addresses : t -> string list

val stopping : t -> bool
(** Has a [shutdown] request (or {!stop}) been seen? *)

val stop : t -> unit
(** Idempotent: signal the workers (they notice within the 0.25s
    select/read timeout), join them, and — when the server owns its
    listener — close and unlink the sockets. *)

val wait : t -> unit
(** Block until the server stops (a [shutdown] request arrives), then
    clean up as {!stop}. *)
