lib/core/rat.mli: Fmt
