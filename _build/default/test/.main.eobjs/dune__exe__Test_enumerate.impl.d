test/test_enumerate.ml: Alcotest Ast Consistency Enumerate Infix List Model Option Outcome Tmx_core Tmx_exec Tmx_lang Tmx_litmus Wellformed
