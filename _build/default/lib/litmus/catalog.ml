(* The paper's examples as machine-checked litmus tests.

   Every numbered example and every figure-with-verdict of the paper
   appears here, with the paper's verdict encoded as an expectation.  The
   experiment index in DESIGN.md maps experiment ids (E01..E30) to these
   names. *)

open Tmx_core
open Tmx_lang
open Tmx_exec

let pm = Model.programmer
let im = Model.implementation
let bare = Model.bare
let strong = Model.strongest

(* condition helpers *)
let reg = Outcome.reg
let mem = Outcome.mem

let allowed ?(model = pm) descr cond =
  Litmus.Outcome_check { model; descr; cond; expect = Litmus.Allowed }

let forbidden ?(model = pm) descr cond =
  Litmus.Outcome_check { model; descr; cond; expect = Litmus.Forbidden }

let race_free ?(model = pm) ?cond ?l descr =
  Litmus.Race_check { model; descr; cond; l; expect = `All_race_free }

let some_racy ?(model = pm) ?cond ?l descr =
  Litmus.Race_check { model; descr; cond; l; expect = `Some_racy }

let mixed ?(model = im) descr expect = Litmus.Mixed_race_check { model; descr; expect }

let exec_allowed ?(model = pm) descr pred =
  Litmus.Exec_check { model; descr; pred; expect = Litmus.Allowed }

let exec_forbidden ?(model = pm) descr pred =
  Litmus.Exec_check { model; descr; pred; expect = Litmus.Forbidden }

(* program helpers *)
let x = Ast.loc "x"
let y = Ast.loc "y"
let z = Ast.loc "z"
let f_ = Ast.loc "F"
let one = Ast.int 1
let two = Ast.int 2

(* ------------------------------------------------------------------ *)
(* §1 / §2 Example 2.1: privatization                                  *)
(* ------------------------------------------------------------------ *)

let privatization =
  {
    Litmus.name = "privatization";
    section = "§1, §2 Ex 2.1";
    description =
      "atomic_a{ if !y then x:=1 } || atomic_b{ y:=1 }; x:=2 — the atomic \
       blocks synchronize, so sequentially x=1 is impossible; HBww makes \
       the mixed writes on x ordered, hence race-free.";
    program =
      Ast.(
        program ~name:"privatization" ~locs:[ "x"; "y" ]
          [
            [ atomic [ load "ry" y; when_ (not_ (reg "ry")) [ store x one ] ] ];
            [ atomic [ store y one ]; store x two ];
          ]);
    checks =
      [
        forbidden "final x=1" (fun o -> mem o "x" = 1);
        allowed "final x=2" (fun o -> mem o "x" = 2);
        race_free ~cond:(fun o -> reg o 0 "ry" = 0)
          "privatizing executions race-free under pm (HBww)";
        allowed ~model:im "final x=1 without fences in the implementation model"
          (fun o -> mem o "x" = 1);
        mixed "implementation model has a mixed race on x" true;
        forbidden ~model:strong "final x=1 under the strongest (x86) variant"
          (fun o -> mem o "x" = 1);
      ];
  }

(* ------------------------------------------------------------------ *)
(* §2: the cascading privatization example                             *)
(* ------------------------------------------------------------------ *)

let privatization_chain =
  {
    Litmus.name = "privatization_chain";
    section = "§2 (HBww cascade)";
    description =
      "Two chained privatizations: the order added by HBww for the x'/y' \
       pair feeds the HBww application for the x/y pair, so both plain \
       writes are ordered after the transactional ones.";
    program =
      Ast.(
        program ~name:"privatization_chain" ~locs:[ "x"; "y"; "x'"; "y'" ]
          [
            [ atomic [ load "ry" y; when_ (not_ (reg "ry")) [ store x one ] ] ];
            [
              atomic [ store y one ];
              atomic
                [ load "ry'" (loc "y'"); when_ (not_ (reg "ry'")) [ store (loc "x'") one ] ];
            ];
            [ atomic [ store (loc "y'") one ]; store (loc "x'") two; store x two ];
          ]);
    checks =
      [
        forbidden "final x'=1" (fun o -> mem o "x'" = 1);
        (* the cascade only exists when both guards read 0; if a' misses
           its flag the chain breaks and x=1 is reachable (racily) *)
        forbidden "final x=1 with both guards taken" (fun o ->
            reg o 0 "ry" = 0 && reg o 1 "ry'" = 0 && mem o "x" = 1);
        allowed "final x=1 when the second guard misses (the chain breaks)"
          (fun o -> reg o 1 "ry'" = 1 && mem o "x" = 1);
        allowed "final x=2 and x'=2" (fun o -> mem o "x" = 2 && mem o "x'" = 2);
        allowed ~model:im "final x=1 in the implementation model" (fun o ->
            mem o "x" = 1);
        race_free ~cond:(fun o -> reg o 0 "ry" = 0 && reg o 1 "ry'" = 0)
          "doubly-privatizing executions race-free under pm";
      ];
  }

(* ------------------------------------------------------------------ *)
(* §1: publication                                                     *)
(* ------------------------------------------------------------------ *)

let publication =
  {
    Litmus.name = "publication";
    section = "§1";
    description =
      "x:=1; atomic_a{ y:=1 } || atomic_b{ z:=2; if y then z:=x } — if b \
       sees the flag it must also see the published x, so z=0 is \
       impossible.";
    program =
      Ast.(
        program ~name:"publication" ~locs:[ "x"; "y"; "z" ]
          [
            [ store x one; atomic [ store y one ] ];
            [
              atomic
                [
                  store z two;
                  load "ry" y;
                  when_ (reg "ry") [ load "rx" x; store z (reg "rx") ];
                ];
            ];
          ]);
    checks =
      [
        forbidden "final z=0" (fun o -> mem o "z" = 0);
        allowed "final z=1 (b saw the flag)" (fun o -> mem o "z" = 1);
        allowed "final z=2 (b missed the flag)" (fun o -> mem o "z" = 2);
        forbidden ~model:im
          "publication needs no fences: z=0 forbidden even in the \
           implementation model"
          (fun o -> mem o "z" = 0);
      ];
  }

(* ------------------------------------------------------------------ *)
(* §1: IRIW with plain races on z (spatial locality)                   *)
(* ------------------------------------------------------------------ *)

let iriw_z =
  {
    Litmus.name = "iriw_z";
    section = "§1 (IRIW)";
    description =
      "IRIW through transactions with racy plain writes to z interleaved: \
       the z races are spatially isolated, so SC-LTRF still forbids the \
       IRIW outcome.";
    program =
      Ast.(
        program ~name:"iriw_z" ~locs:[ "x"; "y"; "z" ]
          [
            [ atomic [ store x one ] ];
            [ atomic [ store y one ] ];
            [ atomic [ load "r1" x ]; store z one; atomic [ load "r2" y ] ];
            [ atomic [ load "q1" y ]; store z two; atomic [ load "q2" x ] ];
          ]);
    checks =
      [
        forbidden "r1=1 r2=0 q1=1 q2=0" (fun o ->
            reg o 2 "r1" = 1 && reg o 2 "r2" = 0 && reg o 3 "q1" = 1
            && reg o 3 "q2" = 0);
        allowed "r1=1 r2=1 q1=1 q2=1" (fun o ->
            reg o 2 "r1" = 1 && reg o 2 "r2" = 1 && reg o 3 "q1" = 1
            && reg o 3 "q2" = 1);
        allowed "r1=0 r2=0 q1=0 q2=0" (fun o ->
            reg o 2 "r1" = 0 && reg o 2 "r2" = 0 && reg o 3 "q1" = 0
            && reg o 3 "q2" = 0);
        some_racy ~l:[ "z" ] "the z writes race";
        race_free ~l:[ "x"; "y" ] "no races on the transactional locations";
      ];
  }

(* ------------------------------------------------------------------ *)
(* §1: temporal locality                                               *)
(* ------------------------------------------------------------------ *)

let temporal =
  {
    Litmus.name = "temporal";
    section = "§1 (temporal locality)";
    description =
      "x is written racily by two threads, each then incrementing a \
       transactional flag; once a reader observes F=2 the races on x are \
       in its past, so reads of x behave sequentially from then on \
       (compact stand-in for the paper's guarded-IRIW example).";
    program =
      Ast.(
        program ~name:"temporal" ~locs:[ "x"; "F" ]
          [
            [ store x one; atomic [ load "f" f_; store f_ Infix.(reg "f" + int 1) ] ];
            [ store x two; atomic [ load "f" f_; store f_ Infix.(reg "f" + int 1) ] ];
            [
              atomic [ load "r" f_ ];
              if_ Infix.(reg "r" = int 2)
                [ load "s1" x; load "s2" x ]
                [];
            ];
          ]);
    checks =
      [
        forbidden "r=2 and s1=0 (stale read after stabilization)" (fun o ->
            reg o 2 "r" = 2 && reg o 2 "s1" = 0);
        forbidden "r=2 and s1<>s2 (reads disagree after stabilization)"
          (fun o -> reg o 2 "r" = 2 && reg o 2 "s1" <> reg o 2 "s2");
        allowed "r=2 and s1=s2=1" (fun o ->
            reg o 2 "r" = 2 && reg o 2 "s1" = 1 && reg o 2 "s2" = 1);
        allowed "r=2 and s1=s2=2" (fun o ->
            reg o 2 "r" = 2 && reg o 2 "s1" = 2 && reg o 2 "s2" = 2);
        allowed "r=1" (fun o -> reg o 2 "r" = 1);
        some_racy ~l:[ "x" ] "the x writes race (before stabilization)";
      ];
  }

(* ------------------------------------------------------------------ *)
(* §2 Example 2.2: reversed coherence forbidden by AntiWW              *)
(* ------------------------------------------------------------------ *)

let ex2_2 =
  {
    Litmus.name = "ex2_2";
    section = "§2 Ex 2.2";
    description =
      "atomic_a{ if !y then x:=2 } || atomic_b{ y:=1 }; x:=1 — the \
       transactional write may not be coherence-after the plain write it \
       privatizes against (AntiWW); needed for SC-LTRF.";
    program =
      Ast.(
        program ~name:"ex2_2" ~locs:[ "x"; "y" ]
          [
            [ atomic [ load "ry" y; when_ (not_ (reg "ry")) [ store x two ] ] ];
            [ atomic [ store y one ]; store x one ];
          ]);
    checks =
      [
        forbidden "final x=2 (transactional write coherence-last)" (fun o ->
            mem o "x" = 2);
        allowed "final x=1" (fun o -> mem o "x" = 1);
        allowed ~model:im "final x=2 in the implementation model (no AntiWW)"
          (fun o -> mem o "x" = 2);
      ];
  }

(* ------------------------------------------------------------------ *)
(* §2: load buffering and store buffering                              *)
(* ------------------------------------------------------------------ *)

let load_buffering =
  {
    Litmus.name = "lb";
    section = "§2 (load buffering)";
    description =
      "r:=x; y:=1 || q:=y; x:=1 — forbidden because Causality includes \
       plain reads-from (lwr), as in LDRF.";
    program =
      Ast.(
        program ~name:"lb" ~locs:[ "x"; "y" ]
          [
            [ load "r" x; store y one ];
            [ load "q" y; store x one ];
          ]);
    checks =
      [
        forbidden "r=1 and q=1" (fun o -> reg o 0 "r" = 1 && reg o 1 "q" = 1);
        forbidden ~model:bare "r=1 and q=1 (even in the bare model)" (fun o ->
            reg o 0 "r" = 1 && reg o 1 "q" = 1);
        allowed "r=0 and q=1" (fun o -> reg o 0 "r" = 0 && reg o 1 "q" = 1);
      ];
  }

let store_buffering =
  {
    Litmus.name = "sb";
    section = "§2 (store buffering)";
    description =
      "x:=1; r:=y || y:=1; q:=x — allowed: plain antidependencies are \
       only irreflexive (Observation), not acyclic.";
    program =
      Ast.(
        program ~name:"sb" ~locs:[ "x"; "y" ]
          [
            [ store x one; load "r" y ];
            [ store y one; load "q" x ];
          ]);
    checks =
      [
        allowed "r=0 and q=0" (fun o -> reg o 0 "r" = 0 && reg o 1 "q" = 0);
        allowed "r=1 and q=1" (fun o -> reg o 0 "r" = 1 && reg o 1 "q" = 1);
        allowed ~model:strong
          "r=0 and q=0 under the strongest variant (store buffering survives)"
          (fun o -> reg o 0 "r" = 0 && reg o 1 "q" = 0);
      ];
  }

(* ------------------------------------------------------------------ *)
(* §2: publication through aborted reads must not happen               *)
(* ------------------------------------------------------------------ *)

let aborted_publication =
  {
    Litmus.name = "aborted_pub";
    section = "§2 (aborted reads)";
    description =
      "atomic{ x:=1; y:=1 } || atomic{ r:=y; abort }; q:=x — the aborted \
       read of the flag must not publish x (hb uses cwr, not xwr).";
    program =
      Ast.(
        program ~name:"aborted_pub" ~locs:[ "x"; "y" ]
          [
            [ atomic [ store x one; store y one ] ];
            [ atomic [ load "r" y; abort ]; load "q" x ];
          ]);
    checks =
      [
        exec_allowed "aborted read of y=1 with plain read of x=0" (fun t ->
            Litmus.aborted_txn_with_reads [ ("y", 1) ] t
            && Litmus.plain_read_of "x" 0 t);
        allowed "q=1" (fun o -> reg o 1 "q" = 1);
      ];
  }

(* ------------------------------------------------------------------ *)
(* §2: opacity — aborted transactions still serialize                  *)
(* ------------------------------------------------------------------ *)

let opacity_iriw =
  {
    Litmus.name = "opacity_iriw";
    section = "§2 (opacity)";
    description =
      "IRIW where the readers abort: still forbidden, because aborted \
       transactions participate in xrw and must embed in the serial \
       order (opacity).";
    program =
      Ast.(
        program ~name:"opacity_iriw" ~locs:[ "x"; "y" ]
          [
            [ atomic [ store x one ] ];
            [ atomic [ store y one ] ];
            [ atomic [ load "r1" x; load "r2" y; abort ] ];
            [ atomic [ load "q1" y; load "q2" x; abort ] ];
          ]);
    checks =
      [
        exec_forbidden "aborted readers see the IRIW outcome" (fun t ->
            Litmus.aborted_txn_with_reads [ ("x", 1); ("y", 0) ] t
            && Litmus.aborted_txn_with_reads [ ("y", 1); ("x", 0) ] t);
        exec_allowed "aborted readers see both writes" (fun t ->
            Litmus.aborted_txn_with_reads [ ("x", 1); ("y", 1) ] t
            && Litmus.aborted_txn_with_reads [ ("y", 1); ("x", 1) ] t);
      ];
  }

let opacity_iriw_plain =
  {
    Litmus.name = "opacity_iriw_plain";
    section = "§2 (opacity, plain writes)";
    description =
      "The same shape with plain writes is allowed: xrw requires both \
       endpoints transactional.";
    program =
      Ast.(
        program ~name:"opacity_iriw_plain" ~locs:[ "x"; "y" ]
          [
            [ store x one ];
            [ store y one ];
            [ atomic [ load "r1" x; load "r2" y; abort ] ];
            [ atomic [ load "q1" y; load "q2" x; abort ] ];
          ]);
    checks =
      [
        exec_allowed "aborted readers see the IRIW outcome (plain writers)"
          (fun t ->
            Litmus.aborted_txn_with_reads [ ("x", 1); ("y", 0) ] t
            && Litmus.aborted_txn_with_reads [ ("y", 1); ("x", 0) ] t);
      ];
  }

(* ------------------------------------------------------------------ *)
(* §2: coherence strength figures                                      *)
(* ------------------------------------------------------------------ *)

let coherence_java =
  {
    Litmus.name = "coh_java";
    section = "§2 (coherence, forbidden figure)";
    description =
      "x:=1; atomic{ y:=1 } || x:=2; atomic{ r:=y }; s1:=x; s2:=x — with \
       synchronization through y, reading x new-then-old is forbidden \
       (LTRF coherence is stronger than Java's).";
    program =
      Ast.(
        program ~name:"coh_java" ~locs:[ "x"; "y" ]
          [
            [ store x one; atomic [ store y one ] ];
            [ store x two; atomic [ load "r" y ]; load "s1" x; load "s2" x ];
          ]);
    checks =
      [
        forbidden "r=1, s1=2, s2=1" (fun o ->
            reg o 1 "r" = 1 && reg o 1 "s1" = 2 && reg o 1 "s2" = 1);
        forbidden "r=1, s1=1, s2=2" (fun o ->
            reg o 1 "r" = 1 && reg o 1 "s1" = 1 && reg o 1 "s2" = 2);
        allowed "r=1, s1=s2" (fun o ->
            reg o 1 "r" = 1 && reg o 1 "s1" = reg o 1 "s2");
      ];
  }

let coherence_cse =
  {
    Litmus.name = "coh_cse";
    section = "§2 (coherence, allowed figure)";
    description =
      "x:=1; x:=2 || s1:=x; s2:=x; s3:=x — without synchronization, \
       new-old-new reads are allowed; required for common subexpression \
       elimination.";
    program =
      Ast.(
        program ~name:"coh_cse" ~locs:[ "x" ]
          [
            [ store x one; store x two ];
            [ load "s1" x; load "s2" x; load "s3" x ];
          ]);
    checks =
      [
        allowed "s1=2, s2=1, s3=2" (fun o ->
            reg o 1 "s1" = 2 && reg o 1 "s2" = 1 && reg o 1 "s3" = 2);
        some_racy "the plain accesses race";
      ];
  }

(* ------------------------------------------------------------------ *)
(* §2 Example 2.3: the six HB/Anti variants                            *)
(* ------------------------------------------------------------------ *)

let ex2_3_ww =
  {
    Litmus.name = "ex2_3_ww";
    section = "§2 Ex 2.3 (HBww/AntiWW)";
    description = "atomic_a{ r:=y; x:=1 } || atomic_b{ y:=1 }; x:=2";
    program =
      Ast.(
        program ~name:"ex2_3_ww" ~locs:[ "x"; "y" ]
          [
            [ atomic [ load "r" y; store x one ] ];
            [ atomic [ store y one ]; store x two ];
          ]);
    checks =
      [
        race_free ~model:Model.variant_ww ~cond:(fun o -> reg o 0 "r" = 0)
          "r=0 executions race-free under the ww variant";
        some_racy ~model:bare ~cond:(fun o -> reg o 0 "r" = 0)
          "racy without HBww";
        forbidden ~model:Model.variant_ww "final x=1 with r=0" (fun o ->
            reg o 0 "r" = 0 && mem o "x" = 1);
        allowed ~model:bare "final x=1 with r=0 without AntiWW" (fun o ->
            reg o 0 "r" = 0 && mem o "x" = 1);
      ];
  }

let ex2_3_rw =
  {
    Litmus.name = "ex2_3_rw";
    section = "§2 Ex 2.3 (HBrw/AntiRW)";
    description = "atomic_a{ r:=y; q:=x } || atomic_b{ y:=1 }; x:=1";
    program =
      Ast.(
        program ~name:"ex2_3_rw" ~locs:[ "x"; "y" ]
          [
            [ atomic [ load "r" y; load "q" x ] ];
            [ atomic [ store y one ]; store x one ];
          ]);
    checks =
      [
        race_free ~model:Model.variant_rw
          ~cond:(fun o -> reg o 0 "r" = 0 && reg o 0 "q" = 0)
          "r=q=0 executions race-free under the rw variant";
        some_racy ~model:bare
          ~cond:(fun o -> reg o 0 "r" = 0 && reg o 0 "q" = 0)
          "racy without HBrw";
        forbidden ~model:Model.variant_rw "r=0 reading q=1" (fun o ->
            reg o 0 "r" = 0 && reg o 0 "q" = 1);
      ];
  }

let ex2_3_wr =
  {
    Litmus.name = "ex2_3_wr";
    section = "§2 Ex 2.3 (HBwr)";
    description = "atomic_a{ r:=y; x:=1 } || atomic_b{ y:=1 }; q:=x";
    program =
      Ast.(
        program ~name:"ex2_3_wr" ~locs:[ "x"; "y" ]
          [
            [ atomic [ load "r" y; store x one ] ];
            [ atomic [ store y one ]; load "q" x ];
          ]);
    checks =
      [
        race_free ~model:Model.variant_wr
          ~cond:(fun o -> reg o 0 "r" = 0 && reg o 1 "q" = 1)
          "r=0,q=1 executions race-free under the wr variant";
        some_racy ~model:bare
          ~cond:(fun o -> reg o 0 "r" = 0 && reg o 1 "q" = 1)
          "racy without HBwr";
      ];
  }

let ex2_3_ww' =
  {
    Litmus.name = "ex2_3_ww_prime";
    section = "§2 Ex 2.3 (HB'ww/Anti'WW)";
    description = "x:=1; atomic_b{ r:=y } || atomic_c{ x:=2; y:=1 }";
    program =
      Ast.(
        program ~name:"ex2_3_ww_prime" ~locs:[ "x"; "y" ]
          [
            [ store x one; atomic [ load "r" y ] ];
            [ atomic [ store x two; store y one ] ];
          ]);
    checks =
      [
        race_free ~model:Model.variant_ww'
          ~cond:(fun o -> reg o 0 "r" = 0 && mem o "x" = 2)
          "r=0 final x=2 race-free under the ww' variant";
        some_racy ~model:bare
          ~cond:(fun o -> reg o 0 "r" = 0 && mem o "x" = 2)
          "racy without HB'ww";
        forbidden ~model:Model.variant_ww' "r=0 with final x=1" (fun o ->
            reg o 0 "r" = 0 && mem o "x" = 1);
        allowed ~model:bare "r=0 with final x=1 without Anti'WW" (fun o ->
            reg o 0 "r" = 0 && mem o "x" = 1);
      ];
  }

let ex2_3_rw' =
  {
    Litmus.name = "ex2_3_rw_prime";
    section = "§2 Ex 2.3 (HB'rw/Anti'RW)";
    description = "q:=x; atomic_b{ r:=y } || atomic_c{ x:=1; y:=1 }";
    program =
      Ast.(
        program ~name:"ex2_3_rw_prime" ~locs:[ "x"; "y" ]
          [
            [ load "q" x; atomic [ load "r" y ] ];
            [ atomic [ store x one; store y one ] ];
          ]);
    checks =
      [
        race_free ~model:Model.variant_rw'
          ~cond:(fun o -> reg o 0 "q" = 0 && reg o 0 "r" = 0)
          "q=0,r=0 executions race-free under the rw' variant";
        some_racy ~model:bare
          ~cond:(fun o -> reg o 0 "q" = 0 && reg o 0 "r" = 0)
          "racy without HB'rw";
      ];
  }

let ex2_3_wr' =
  {
    Litmus.name = "ex2_3_wr_prime";
    section = "§2 Ex 2.3 (HB'wr)";
    description = "x:=1; atomic_b{ r:=y } || atomic_c{ q:=x; y:=1 }";
    program =
      Ast.(
        program ~name:"ex2_3_wr_prime" ~locs:[ "x"; "y" ]
          [
            [ store x one; atomic [ load "r" y ] ];
            [ atomic [ load "q" x; store y one ] ];
          ]);
    checks =
      [
        race_free ~model:Model.variant_wr'
          ~cond:(fun o -> reg o 0 "r" = 0 && reg o 1 "q" = 1)
          "r=0,q=1 executions race-free under the wr' variant";
        some_racy ~model:bare
          ~cond:(fun o -> reg o 0 "r" = 0 && reg o 1 "q" = 1)
          "racy without HB'wr";
      ];
  }

(* ------------------------------------------------------------------ *)
(* §3: STM design freedoms and limits                                  *)
(* ------------------------------------------------------------------ *)

let ex3_1 =
  {
    Litmus.name = "ex3_1";
    section = "§3 Ex 3.1";
    description =
      "x:=1; atomic_a{ r:=y } || atomic_b{ q:=x; y:=1 } — no publication \
       by antidependence: r=q=0 is allowed (unlike models with Anti'RW, \
       e.g. x86).";
    program =
      Ast.(
        program ~name:"ex3_1" ~locs:[ "x"; "y" ]
          [
            [ store x one; atomic [ load "r" y ] ];
            [ atomic [ load "q" x; store y one ] ];
          ]);
    checks =
      [
        allowed "r=0 and q=0" (fun o -> reg o 0 "r" = 0 && reg o 1 "q" = 0);
        forbidden ~model:Model.variant_rw'
          "r=0 and q=0 forbidden under Anti'RW"
          (fun o -> reg o 0 "r" = 0 && reg o 1 "q" = 0);
        forbidden ~model:strong "r=0 and q=0 forbidden on x86 (strongest)"
          (fun o -> reg o 0 "r" = 0 && reg o 1 "q" = 0);
      ];
  }

let ex3_2 =
  {
    Litmus.name = "ex3_2";
    section = "§3 Ex 3.2";
    description =
      "x:=1; atomic_a{ y:=1 }; r:=z || atomic_b{ q:=x; z:=1 } — no global \
       lock atomicity: r=q=0 allowed in every variant.";
    program =
      Ast.(
        program ~name:"ex3_2" ~locs:[ "x"; "y"; "z" ]
          [
            [ store x one; atomic [ store y one ]; load "r" z ];
            [ atomic [ load "q" x; store z one ] ];
          ]);
    checks =
      [
        allowed "r=0 and q=0" (fun o -> reg o 0 "r" = 0 && reg o 1 "q" = 0);
        allowed ~model:strong "r=0 and q=0 even under the strongest variant"
          (fun o -> reg o 0 "r" = 0 && reg o 1 "q" = 0);
      ];
  }

let ex3_3 =
  {
    Litmus.name = "ex3_3";
    section = "§3 Ex 3.3";
    description =
      "x:=1; atomic_a{ y:=1 } || q:=2; atomic_b{ r:=x; g:=y; if g then \
       q:=r } — 'benign' racy publication is nevertheless forbidden by \
       Observation.";
    program =
      Ast.(
        program ~name:"ex3_3" ~locs:[ "x"; "y"; "q" ]
          [
            [ store x one; atomic [ store y one ] ];
            [
              store (loc "q") two;
              atomic
                [
                  load "r" x;
                  load "g" y;
                  when_ (reg "g") [ store (loc "q") (reg "r") ];
                ];
            ];
          ]);
    checks =
      [
        forbidden "final q=0" (fun o -> mem o "q" = 0);
        allowed "final q=1" (fun o -> mem o "q" = 1);
        allowed "final q=2" (fun o -> mem o "q" = 2);
      ];
  }

let ex3_4 =
  {
    Litmus.name = "ex3_4";
    section = "§3 Ex 3.4, App D.3";
    description =
      "Eager versioning: atomic_a{ r1:=y; if !r1 { x:=1; abort } }; \
       atomic_b{ r2:=y; if !r2 then x:=1 }; r:=x || x:=2; y:=1; q:=x — \
       the speculative lost update (q=0) is forbidden.";
    program =
      Ast.(
        program ~name:"ex3_4" ~locs:[ "x"; "y" ]
          [
            [
              atomic
                [ load "r1" y; when_ (not_ (reg "r1")) [ store x one; abort ] ];
              atomic [ load "r2" y; when_ (not_ (reg "r2")) [ store x one ] ];
              load "r" x;
            ];
            [ store x two; store y one; load "q" x ];
          ]);
    checks =
      [
        forbidden "q=0 (the non-transactional write is never lost)" (fun o ->
            reg o 1 "q" = 0);
        allowed "r=0" (fun o -> reg o 0 "r" = 0);
        allowed "r=2" (fun o -> reg o 0 "r" = 2);
        allowed "q=2" (fun o -> reg o 1 "q" = 2);
        allowed "q=1 (b's write observed)" (fun o -> reg o 1 "q" = 1);
      ];
  }

let ex3_5 =
  {
    Litmus.name = "ex3_5";
    section = "§3 Ex 3.5";
    description =
      "Lazy versioning privatization of an array cell: atomic_a{ r:=x; \
       x:=42 }; r1:=z[r]; r2:=z[r]; z[r]:=0 || atomic_b{ q:=x; if q!=42 { \
       t:=z[q]; z[q]:=t+1 } } — reading the cell twice must agree, and \
       the final cleanup write wins (AntiWW).";
    program =
      Ast.(
        program ~name:"ex3_5" ~locs:[ "x"; "z[0]" ]
          [
            [
              atomic [ load "r" x; store x (int 42) ];
              load "r1" (cell "z" (reg "r"));
              load "r2" (cell "z" (reg "r"));
              store (cell "z" (reg "r")) (int 0);
            ];
            [
              atomic
                [
                  load "q" x;
                  if_ Infix.(reg "q" <> int 42)
                    [
                      load "t" (cell "z" (reg "q"));
                      store (cell "z" (reg "q")) Infix.(reg "t" + int 1);
                    ]
                    [];
                ];
            ];
          ]);
    checks =
      [
        (* The paper says the torn-read outcome "is disallowed by any
           variant of our model that includes A<glyphs> (Example 2.3)".
           The referenced axiom must be AntiRW, a §2.3 variant axiom: the
           base programmer model's AntiWW does not forbid the execution
           (the antidependency closing the cycle is the plain read of
           z[0] against the buffered transactional write, an lrw not an
           lww edge), and "variant that includes" would be an odd way to
           refer to a base-model axiom.  The checker confirms: allowed
           under pm, forbidden under the rw variant. *)
        forbidden ~model:Model.variant_rw
          "r1 <> r2 (torn privatized reads) under AntiRW" (fun o ->
            reg o 0 "r1" <> reg o 0 "r2");
        allowed "r1 <> r2 under the base programmer model (AntiWW alone \
                 does not order the plain reads)" (fun o ->
            reg o 0 "r1" <> reg o 0 "r2");
        forbidden "final z[0] <> 0 (buffered write after cleanup)" (fun o ->
            mem o "z[0]" <> 0);
        allowed ~model:im "r1 <> r2 in the implementation model (the lazy \
                           STM anomaly)"
          (fun o -> reg o 0 "r1" <> reg o 0 "r2");
      ];
  }

(* ------------------------------------------------------------------ *)
(* §4: the LDRF example and the doomed transaction                     *)
(* ------------------------------------------------------------------ *)

let ldrf_example =
  {
    Litmus.name = "ldrf_example";
    section = "§4 (LDRF example)";
    description =
      "x:=1; y:=1; atomic_a{ F:=1 }; z:=1 || y:=2; atomic_b{ r:=F }; \
       z:=2; if r { rx:=x; ry1:=y; ry2:=y } — despite races on y and z, \
       publication through F guarantees rx=1 and ry1=ry2 when r=1.";
    program =
      Ast.(
        program ~name:"ldrf_example" ~locs:[ "x"; "y"; "z"; "F" ]
          [
            [ store x one; store y one; atomic [ store f_ one ]; store z one ];
            [
              store y two;
              atomic [ load "r" f_ ];
              store z two;
              when_ (reg "r") [ load "rx" x; load "ry1" y; load "ry2" y ];
            ];
          ]);
    checks =
      [
        forbidden "r=1 and rx=0" (fun o -> reg o 1 "r" = 1 && reg o 1 "rx" = 0);
        forbidden "r=1 and ry1 <> ry2" (fun o ->
            reg o 1 "r" = 1 && reg o 1 "ry1" <> reg o 1 "ry2");
        allowed "r=1, rx=1, ry1=ry2=1" (fun o ->
            reg o 1 "r" = 1 && reg o 1 "rx" = 1 && reg o 1 "ry1" = 1
            && reg o 1 "ry2" = 1);
        allowed "r=1, rx=1, ry1=ry2=2" (fun o ->
            reg o 1 "r" = 1 && reg o 1 "rx" = 1 && reg o 1 "ry1" = 2
            && reg o 1 "ry2" = 2);
        some_racy ~l:[ "y" ] "the y writes race";
      ];
  }

let doomed =
  {
    Litmus.name = "doomed";
    section = "§4 (doomed transaction)";
    description =
      "atomic_a{ r:=y; if !r { s:=x } } || atomic_b{ y:=1 }; x:=1 — a \
       transaction that reads the old flag can never see the new x \
       (otherwise it would be doomed; forbidden by Causality via lifted \
       antidependency).";
    program =
      Ast.(
        program ~name:"doomed" ~locs:[ "x"; "y" ]
          [
            [ atomic [ load "r" y; when_ (not_ (reg "r")) [ load "s" x ] ] ];
            [ atomic [ store y one ]; store x one ];
          ]);
    checks =
      [
        forbidden "r=0 and s=1" (fun o -> reg o 0 "r" = 0 && reg o 0 "s" = 1);
        allowed "r=0 and s=0" (fun o -> reg o 0 "r" = 0 && reg o 0 "s" = 0);
        allowed "r=1" (fun o -> reg o 0 "r" = 1);
      ];
  }

(* ------------------------------------------------------------------ *)
(* §5: the (‡) reordering counterexample and quiescence fences         *)
(* ------------------------------------------------------------------ *)

let impl_reorder =
  {
    Litmus.name = "impl_reorder";
    section = "§5 (‡)";
    description =
      "z:=1; atomic_a{ if !y then x:=1 } || atomic_b{ y:=1 }; x:=2; r:=z \
       — in the programmer model the privatizing HBww order forces r=1; \
       hence 'x:=2; r:=z' cannot be reordered.";
    program =
      Ast.(
        program ~name:"impl_reorder" ~locs:[ "x"; "y"; "z" ]
          [
            [
              store z one;
              atomic [ load "ry" y; when_ (not_ (reg "ry")) [ store x one ] ];
            ];
            [ atomic [ store y one ]; store x two; load "r" z ];
          ]);
    checks =
      [
        forbidden "ry=0 and r=0" (fun o -> reg o 0 "ry" = 0 && reg o 1 "r" = 0);
        allowed "ry=0 and r=1" (fun o -> reg o 0 "ry" = 0 && reg o 1 "r" = 1);
        allowed ~model:im "ry=0 and r=0 in the implementation model" (fun o ->
            reg o 0 "ry" = 0 && reg o 1 "r" = 0);
      ];
  }

let impl_reorder_swapped =
  {
    Litmus.name = "impl_reorder_swapped";
    section = "§5 (‡ swapped)";
    description =
      "The same program with 'r:=z; x:=2' — now r=0 is allowed, so the \
       reordering introduces new behaviour and is invalid in the \
       programmer model.";
    program =
      Ast.(
        program ~name:"impl_reorder_swapped" ~locs:[ "x"; "y"; "z" ]
          [
            [
              store z one;
              atomic [ load "ry" y; when_ (not_ (reg "ry")) [ store x one ] ];
            ];
            [ atomic [ store y one ]; load "r" z; store x two ];
          ]);
    checks =
      [ allowed "ry=0 and r=0" (fun o -> reg o 0 "ry" = 0 && reg o 1 "r" = 0) ];
  }

let privatization_fence =
  {
    Litmus.name = "privatization_fence";
    section = "§5 (quiescence)";
    description =
      "Privatization in the implementation model with a quiescence fence \
       on x before the plain write: the fence restores the programmer \
       model's guarantee.";
    program =
      Ast.(
        program ~name:"privatization_fence" ~locs:[ "x"; "y" ]
          [
            [ atomic [ load "ry" y; when_ (not_ (reg "ry")) [ store x one ] ] ];
            [ atomic [ store y one ]; fence "x"; store x two ];
          ]);
    checks =
      [
        forbidden ~model:im "final x=1 with the fence" (fun o -> mem o "x" = 1);
        allowed ~model:im "final x=2" (fun o -> mem o "x" = 2);
        mixed ~model:im "no mixed race once fenced" false;
      ];
  }

(* ------------------------------------------------------------------ *)
(* Appendix D                                                          *)
(* ------------------------------------------------------------------ *)

let d1_opaque_writes =
  {
    Litmus.name = "d1_opaque_writes";
    section = "App D.1";
    description =
      "atomic_a{ x:=1; abort } || atomic_b{ r:=x } — aborted writes are \
       invisible (WF7).";
    program =
      Ast.(
        program ~name:"d1_opaque_writes" ~locs:[ "x" ]
          [
            [ atomic [ store x one; abort ] ];
            [ atomic [ load "r" x ] ];
          ]);
    checks =
      [
        forbidden "r=1" (fun o -> reg o 1 "r" = 1);
        allowed "r=0" (fun o -> reg o 1 "r" = 0);
        forbidden ~model:im "r=1 (implementation model too)" (fun o ->
            reg o 1 "r" = 1);
      ];
  }

let d2_race_free_speculation =
  {
    Litmus.name = "d2_race_free_speculation";
    section = "App D.2";
    description =
      "atomic_a{ x++; y++ } || atomic_b{ if x<>y { z:=1; abort } } || \
       z:=2; r:=z — the speculation never observes x<>y (opacity), so \
       the abort never undoes the plain write: r=2 always.";
    program =
      Ast.(
        program ~name:"d2_race_free_speculation" ~locs:[ "x"; "y"; "z" ]
          [
            [
              atomic
                [
                  load "a" x;
                  store x Infix.(reg "a" + int 1);
                  load "b" y;
                  store y Infix.(reg "b" + int 1);
                ];
            ];
            [
              atomic
                [
                  load "q1" x;
                  load "q2" y;
                  when_ Infix.(reg "q1" <> reg "q2") [ store z one; abort ];
                ];
            ];
            [ store z two; load "r" z ];
          ]);
    checks =
      [
        forbidden "r=0" (fun o -> reg o 2 "r" = 0);
        forbidden "r=1" (fun o -> reg o 2 "r" = 1);
        allowed "r=2" (fun o -> reg o 2 "r" = 2);
        forbidden "q1 <> q2 in a committed speculation" (fun o ->
            reg o 1 "q1" <> reg o 1 "q2");
        exec_forbidden "no transaction ever observes x <> y (opacity)"
          (fun t ->
            List.exists
              (fun b ->
                let reads = Litmus.txn_reads t b in
                match (List.assoc_opt "x" reads, List.assoc_opt "y" reads) with
                | Some v, Some w -> v <> w
                | _ -> false)
              (Trace.txns t));
      ];
  }

let d3_dirty_reads =
  {
    Litmus.name = "d3_dirty_reads";
    section = "App D.3";
    description =
      "atomic_a{ if !y' { x:=1; abort } }; atomic_b{ if !y' then x:=1 } \
       || s:=x; if s=1 then y':=1 — a dirty read of the rolled-back x \
       cannot set the flag while x ends 0.";
    program =
      Ast.(
        program ~name:"d3_dirty_reads" ~locs:[ "x"; "w" ]
          [
            [
              atomic
                [ load "r1" (loc "w"); when_ (not_ (reg "r1")) [ store x one; abort ] ];
              atomic
                [ load "r2" (loc "w"); when_ (not_ (reg "r2")) [ store x one ] ];
            ];
            [ load "s" x; when_ Infix.(reg "s" = int 1) [ store (loc "w") one ] ];
          ]);
    checks =
      [
        forbidden "final x=0 and w=1" (fun o -> mem o "x" = 0 && mem o "w" = 1);
        allowed "final x=1 and w=1" (fun o -> mem o "x" = 1 && mem o "w" = 1);
        allowed "final x=1 and w=0" (fun o -> mem o "x" = 1 && mem o "w" = 0);
      ];
  }

let d4_no_overlapped_writes =
  {
    Litmus.name = "d4_no_overlapped_writes";
    section = "App D.4";
    description =
      "atomic_a{ y:=4; z[4]:=1; x:=4 } || r:=1; atomic{ q:=x }; if q<>0 \
       then r:=z[q] — lazy version copies may not be observed out of \
       order: r=0 is forbidden.";
    program =
      Ast.(
        program ~name:"d4_no_overlapped_writes" ~locs:[ "x"; "y"; "z[4]"; "r" ]
          [
            [
              atomic
                [ store y (int 4); store (cell "z" (int 4)) one; store x (int 4) ];
            ];
            [
              store (loc "r") one;
              atomic [ load "q" x ];
              when_ Infix.(reg "q" <> int 0) [ load "rz" (cell "z" (reg "q")) ];
              when_ Infix.(reg "q" <> int 0) [ store (loc "r") (reg "rz") ];
            ];
          ]);
    checks =
      [
        forbidden "final r=0" (fun o -> mem o "r" = 0);
        allowed "final r=1" (fun o -> mem o "r" = 1);
      ];
  }

(* ------------------------------------------------------------------ *)

let all : Litmus.t list =
  [
    privatization;
    privatization_chain;
    publication;
    iriw_z;
    temporal;
    ex2_2;
    load_buffering;
    store_buffering;
    aborted_publication;
    opacity_iriw;
    opacity_iriw_plain;
    coherence_java;
    coherence_cse;
    ex2_3_ww;
    ex2_3_rw;
    ex2_3_wr;
    ex2_3_ww';
    ex2_3_rw';
    ex2_3_wr';
    ex3_1;
    ex3_2;
    ex3_3;
    ex3_4;
    ex3_5;
    ldrf_example;
    doomed;
    impl_reorder;
    impl_reorder_swapped;
    privatization_fence;
    d1_opaque_writes;
    d2_race_free_speculation;
    d3_dirty_reads;
    d4_no_overlapped_writes;
  ]

let find name = List.find_opt (fun (l : Litmus.t) -> String.equal l.name name) all
