lib/opt/fenceify.mli: Tmx_exec Tmx_lang
