lib/exec/sc.mli: Outcome Tmx_core Tmx_lang
