test/test_shapes.ml: Alcotest Ast Enumerate Fmt List Model Outcome QCheck QCheck_alcotest Sc Shapes Tmx_core Tmx_exec Tmx_lang Tmx_litmus
