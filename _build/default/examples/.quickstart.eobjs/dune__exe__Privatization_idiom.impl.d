examples/privatization_idiom.ml: Array Atomic Domain Enumerate Fmt List Model Option Outcome Stm Tmx_core Tmx_exec Tmx_litmus Tmx_runtime Tmx_stmsim Tvar
