(** An operational timestamp machine for the implementation model, in the
    style of Dolan et al.'s LDRF machine: timestamped histories per
    location, per-thread frontiers, frontier-merging synchronization —
    extended with the paper's transactions (atomic steps with buffered
    writes, opacity via a committed-transactional-timestamp floor on
    reads, frontier publication on commit) and quiescence fences (acquire
    all transactional entries of the location, publish the thread's
    frontier to later transactions touching it).

    Four rules were forced by differential testing against the axiomatic
    enumerator and correspond exactly to axioms:

    - commit-time read-set validation against the finally acquired
      frontier (Observation / TL2 validation, Example 3.3);
    - commit acquires the frontiers of the transactional entries it
      overwrites (cww is in happens-before);
    - a read may take a newer foreign entry past the transaction's own
      buffered write (WF11 only forbids staler-than-own), capping the own
      writes' commit timestamps below it;
    - committed transactions publish their final frontier per location
      they READ, and fences acquire it (HBCQ covers pure readers, which
      leave no store entry).

    The machine is exhaustively explored.  The differential tests check
    that its outcome set *coincides* with the axiomatic enumerator's
    under [Model.implementation] on the whole catalog, the shape
    families, and random programs — the operational/axiomatic
    equivalence the paper inherits from LDRF (§7), here machine-checked
    for the transactional extension too. *)

type config = { fuel : int; max_states : int }

val default_config : config

type result = {
  outcomes : Tmx_exec.Outcome.t list;
  states : int;  (** states explored *)
  truncated : bool;
  capped : bool;
}

val run : ?config:config -> ?volatile:string list -> Tmx_lang.Ast.program -> result
(** [volatile] marks locations given Dolan et al.'s native Java-volatile
    semantics (single current value + stored frontier, merged on every
    access); used to machine-check the §2 degeneracy claim that singleton
    transactions behave exactly like volatiles. *)
