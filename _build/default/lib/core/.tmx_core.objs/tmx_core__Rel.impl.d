lib/core/rel.ml: Array Fmt Int List Sys
