(* The privatization idiom, three ways:

   1. In the axiomatic model: race-free and safe in the programmer model,
      racy and broken in the implementation model, repaired by a
      quiescence fence.
   2. In the operational STM simulator: the lazy STM's delayed write-back
      loses the plain write; the fence restores it.
   3. On the real multicore STM runtime: privatize a buffer with a flag
      transaction, quiesce, then work on it with plain accesses.

   Run with:  dune exec examples/privatization_idiom.exe *)

open Tmx_core
open Tmx_exec
open Tmx_runtime

let program = (Option.get (Tmx_litmus.Catalog.find "privatization")).program
let fenced = (Option.get (Tmx_litmus.Catalog.find "privatization_fence")).program

let axiomatic () =
  Fmt.pr "== axiomatic model ==@.";
  let x1 o = Outcome.mem o "x" = 1 in
  let check model p =
    Enumerate.allowed (Enumerate.run model p) x1
  in
  Fmt.pr "programmer model, no fence:      x=1 %s@."
    (if check Model.programmer program then "allowed" else "forbidden");
  Fmt.pr "implementation model, no fence:  x=1 %s@."
    (if check Model.implementation program then "allowed" else "forbidden");
  Fmt.pr "implementation model, fenced:    x=1 %s@."
    (if check Model.implementation fenced then "allowed" else "forbidden")

let simulated () =
  Fmt.pr "@.== operational lazy STM (exhaustive schedules) ==@.";
  let run p = (Tmx_stmsim.Stmsim.run p).outcomes in
  let broken = List.exists (fun o -> Outcome.mem o "x" = 1) (run program) in
  let repaired = not (List.exists (fun o -> Outcome.mem o "x" = 1) (run fenced)) in
  Fmt.pr "delayed write-back loses the plain write: %b@." broken;
  Fmt.pr "quiescence fence repairs it:              %b@." repaired

(* A worker privatizes one buffer slot at a time and then processes it
   with cheap plain accesses, as in the §1 motivation. *)
let runtime () =
  Fmt.pr "@.== multicore STM runtime ==@.";
  let slots = 64 in
  let buffer = Array.init slots (fun i -> Tvar.make i) in
  let claimed = Array.init slots (fun _ -> Tvar.make 0) in
  let processed = Atomic.make 0 in
  let errors = Atomic.make 0 in
  let worker () =
    for i = 0 to slots - 1 do
      let mine =
        Option.get
          (Stm.atomically (fun tx ->
               if Stm.read tx claimed.(i) = 0 then begin
                 Stm.write tx claimed.(i) 1;
                 true
               end
               else false))
      in
      if mine then begin
        (* the slot is now private; quiesce and use plain accesses *)
        Stm.quiesce ();
        let v = Tvar.unsafe_read buffer.(i) in
        Tvar.unsafe_write buffer.(i) (v * 10);
        if Tvar.unsafe_read buffer.(i) <> v * 10 then Atomic.incr errors;
        Atomic.incr processed
      end
    done
  in
  let domains = List.init 3 (fun _ -> Domain.spawn worker) in
  List.iter Domain.join domains;
  Fmt.pr "slots processed: %d/%d, plain-access errors: %d@."
    (Atomic.get processed) slots (Atomic.get errors);
  let commits, conflicts, _ = Stm.stats_snapshot () in
  Fmt.pr "stm commits: %d, conflicts retried: %d@." commits conflicts

let () =
  axiomatic ();
  simulated ();
  runtime ()
