open Tmx_lang

type config = {
  locs : string list;
  values : int * int;
  threads : int * int;
  stmts : int * int;
  inner : int * int;
  abort_weight : int;
  atomic_weight : int;
  fence_weight : int;
  branch_weight : int;
  template_weight : int;
}

let theorems =
  {
    locs = [ "x"; "y" ];
    values = (1, 2);
    threads = (2, 3);
    stmts = (1, 3);
    inner = (1, 2);
    abort_weight = 1;
    atomic_weight = 2;
    fence_weight = 1;
    branch_weight = 0;
    template_weight = 0;
  }

let analysis =
  {
    theorems with
    locs = [ "x"; "y"; "z" ];
    inner = (1, 3);
    atomic_weight = 3;
    branch_weight = 1;
  }

let mixed = { analysis with template_weight = 3 }

(* -- primitives ------------------------------------------------------------- *)

let int_range st (lo, hi) = lo + Random.State.int st (hi - lo + 1)
let pick st xs = List.nth xs (Random.State.int st (List.length xs))

(* [frequency st [(w, f); ...]] picks one thunk with probability
   proportional to its weight; zero-weight entries never fire. *)
let frequency st choices =
  let choices = List.filter (fun (w, _) -> w > 0) choices in
  let total = List.fold_left (fun acc (w, _) -> acc + w) 0 choices in
  let rec go n = function
    | [] -> assert false
    | [ (_, f) ] -> f ()
    | (w, f) :: rest -> if n < w then f () else go (n - w) rest
  in
  go (Random.State.int st total) choices

(* -- random threads --------------------------------------------------------- *)

let gen_store cfg st =
  Ast.store (Ast.loc (pick st cfg.locs)) (Ast.int (int_range st cfg.values))

let gen_load cfg st = Ast.load "_r" (Ast.loc (pick st cfg.locs))

let gen_inner cfg st =
  frequency st
    [
      (4, fun () -> gen_store cfg st);
      (4, fun () -> gen_load cfg st);
      (cfg.abort_weight, fun () -> Ast.abort);
    ]

let gen_flat cfg st =
  frequency st
    [
      (3, fun () -> gen_store cfg st);
      (3, fun () -> gen_load cfg st);
      ( cfg.atomic_weight,
        fun () ->
          Ast.atomic
            (List.init (int_range st cfg.inner) (fun _ -> gen_inner cfg st)) );
      (cfg.fence_weight, fun () -> Ast.fence (pick st cfg.locs));
    ]

let gen_stmt cfg st =
  frequency st
    [
      (8, fun () -> gen_flat cfg st);
      ( cfg.branch_weight,
        fun () ->
          let cond = Ast.int (int_range st (0, 1)) in
          let then_ = List.init (int_range st (1, 2)) (fun _ -> gen_flat cfg st) in
          let else_ = List.init (int_range st (0, 1)) (fun _ -> gen_flat cfg st) in
          Ast.if_ cond then_ else_ );
    ]

let gen_thread cfg st =
  List.init (int_range st cfg.stmts) (fun _ -> gen_stmt cfg st)

(* -- idiom templates --------------------------------------------------------- *)

(* Each template is a whole-program shape over one or two randomly chosen
   locations, biased toward the mixed (transactional + plain on the same
   location) corner the oracles exist to police. *)

let template_plain_race cfg st =
  (* sb-shaped plain L-race: two threads store and load crosswise *)
  let x = pick st cfg.locs and y = pick st cfg.locs in
  let v = int_range st cfg.values in
  [
    [ Ast.store (Ast.loc x) (Ast.int v); Ast.load "_r" (Ast.loc y) ];
    [ Ast.store (Ast.loc y) (Ast.int v); Ast.load "_r" (Ast.loc x) ];
  ]

let template_tx_only cfg st =
  (* fully transactional: both threads update under atomic *)
  let x = pick st cfg.locs and y = pick st cfg.locs in
  let v = int_range st cfg.values in
  [
    [ Ast.atomic [ Ast.load "_r" (Ast.loc x); Ast.store (Ast.loc y) (Ast.int v) ] ];
    [ Ast.atomic [ Ast.load "_r" (Ast.loc y); Ast.store (Ast.loc x) (Ast.int v) ] ];
  ]

let template_mixed cfg st =
  (* the raw mixed shape: a transactional writer against a plain
     reader/writer on the same location *)
  let x = pick st cfg.locs in
  let v = int_range st cfg.values in
  let plain =
    if Random.State.bool st then [ Ast.load "_r" (Ast.loc x) ]
    else [ Ast.store (Ast.loc x) (Ast.int (int_range st cfg.values)) ]
  in
  [ [ Ast.atomic [ Ast.store (Ast.loc x) (Ast.int v) ] ]; plain ]

let template_fence cfg st =
  (* privatization repaired by a quiescence fence: the plain access is
     preceded by [Q x] *)
  let x = pick st cfg.locs in
  let v = int_range st cfg.values in
  [
    [ Ast.atomic [ Ast.load "_r" (Ast.loc x); Ast.store (Ast.loc x) (Ast.int v) ] ];
    [ Ast.fence x; Ast.store (Ast.loc x) (Ast.int (int_range st cfg.values)) ];
  ]

let template_guard cfg st =
  (* guarded publication: plain init, transactional flag publish, and a
     transactional consumer branching on the flag *)
  let x = pick st cfg.locs in
  let y = pick st (List.filter (fun l -> l <> x) cfg.locs @ [ x ]) in
  let v = int_range st cfg.values in
  [
    [
      Ast.store (Ast.loc x) (Ast.int v);
      Ast.atomic [ Ast.store (Ast.loc y) (Ast.int 1) ];
    ];
    [
      Ast.atomic [ Ast.load "_r" (Ast.loc y) ];
      Ast.when_ (Ast.reg "_r") [ Ast.load "_r" (Ast.loc x) ];
    ];
  ]

let templates =
  [
    template_plain_race; template_tx_only; template_mixed; template_fence;
    template_guard;
  ]

(* -- assembly --------------------------------------------------------------- *)

(* give each load a unique register so outcomes are observable; guard
   registers referenced by a later branch keep their binding *)
let rename_thread th =
  let counter = ref 0 in
  let fresh () =
    incr counter;
    Fmt.str "r%d" !counter
  in
  let rename_expr last (e : Ast.expr) =
    match e with
    | Reg _ -> Ast.Reg last
    | e -> e
  in
  let rec rename_stmt last (s : Ast.stmt) =
    match s with
    | Load (_, lv) ->
        let r = fresh () in
        (r, Ast.Load (r, lv))
    | Atomic body ->
        let last, body = rename_body last body in
        (last, Ast.Atomic body)
    | If (c, t, e) ->
        let c = rename_expr last c in
        let _, t = rename_body last t in
        let _, e = rename_body last e in
        (last, Ast.If (c, t, e))
    | While (c, b) ->
        let c = rename_expr last c in
        let _, b = rename_body last b in
        (last, Ast.While (c, b))
    | s -> (last, s)
  and rename_body last body =
    List.fold_left
      (fun (last, acc) s ->
        let last, s = rename_stmt last s in
        (last, s :: acc))
      (last, []) body
    |> fun (last, acc) -> (last, List.rev acc)
  in
  snd (rename_body "_r" th)

let program ?(name = "fuzz") cfg st =
  let threads =
    frequency st
      [
        ( 10,
          fun () ->
            List.init (int_range st cfg.threads) (fun _ -> gen_thread cfg st) );
        (cfg.template_weight, fun () -> (pick st templates) cfg st);
      ]
  in
  Ast.program ~name ~locs:cfg.locs (List.map rename_thread threads)

let state_of_seed ~seed ~index = Random.State.make [| 0x7f4a7c15; seed; index |]
