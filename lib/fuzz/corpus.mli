(** The persisted corpus: interesting seed programs under
    [fuzz/corpus/*.litmus] and minimized failures under [fuzz/crashes/],
    both in the {!Tmx_litmus.Parse} text format so they are readable,
    diffable, and replayable with [tmx check].

    Every fuzz run replays [crashes] first (a fixed bug must stay
    fixed), then [corpus], then generates fresh programs.  Minimized
    failures are written back to [crashes] under a content-digest
    filename, so replays are idempotent. *)

open Tmx_lang

val default_corpus_dir : string
val default_crashes_dir : string

val load : dir:string -> (string * Ast.program) list
(** All parseable [*.litmus] files of [dir], sorted by filename;
    missing directories load as empty.  Files that fail to parse or
    validate are skipped (the runner reports how many). *)

val load_errors : dir:string -> (string * string) list
(** The [(file, message)] pairs {!load} skipped. *)

val save : dir:string -> prefix:string -> Ast.program -> string
(** Export the program into [dir] (created if missing) as
    [<prefix>-<digest>.litmus]; returns the path.  Saving the same
    program twice is a no-op with the same path.  The program name is
    sanitized to the parser's identifier syntax first (generated names
    like ["fuzz-0-3"] would otherwise save files that can never
    replay). *)
