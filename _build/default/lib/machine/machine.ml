(* An operational timestamp machine for the implementation model.

   Dolan, Sivaramakrishnan and Madhavapeddy give LDRF an operational
   semantics: the store keeps a timestamped history per location and each
   thread a frontier (the oldest timestamp it may still read per
   location); plain writes pick a fresh timestamp above the writer's
   frontier (possibly between existing ones), plain reads return any
   entry at or above the frontier without advancing it, and
   synchronization merges frontiers.  The paper (§7) notes its axiomatic
   account coincides with the operational one.  This module extends that
   machine with the paper's transactions and quiescence fences:

   - a transaction executes as one atomic step (contiguity loses no
     outcomes); its reads see its own buffer first, and otherwise must
     take a timestamp at or above its frontier AND at or above every
     committed transactional entry for that location (the operational
     WF9–WF11/opacity discipline);
   - reading a transactional entry acquires the frontier stored with it
     (cwr in happens-before); plain reads of transactional entries do not
     synchronize — they are plain;
   - commit publishes every buffered write, in program order at ascending
     fresh timestamps above the transaction's frontier and above every
     committed transactional entry (cww; intermediate values remain
     visible to plain readers, as in a lazy STM's write-back);
   - aborted transactions publish nothing and roll their registers back;
   - a fence on x acquires the frontiers of all transactional entries of
     x (HBCQ) and publishes the fencing thread's frontier so that any
     later transaction touching x starts above it (HBQB).

   The machine is exhaustively explored; the differential tests check its
   outcome set against the axiomatic enumerator's. *)

open Tmx_core
open Tmx_lang
open Tmx_exec

type config = { fuel : int; max_states : int }

let default_config = { fuel = 6; max_states = 2_000_000 }

(* -- frontiers -------------------------------------------------------------- *)

module Frontier = struct
  type t = (string * Rat.t) list (* absent = Rat.zero *)

  let empty : t = []
  let get (f : t) x = Option.value (List.assoc_opt x f) ~default:Rat.zero

  let advance (f : t) x q =
    if Rat.leq q (get f x) then f else (x, q) :: List.remove_assoc x f

  let merge (a : t) (b : t) = List.fold_left (fun acc (x, q) -> advance acc x q) a b
end

(* -- the store -------------------------------------------------------------- *)

type entry = {
  ts : Rat.t;
  value : int;
  txn : Frontier.t option; (* Some f: transactional entry publishing f *)
}

type history = entry list (* sorted by ascending timestamp *)

let insert (h : history) e =
  let rec go = function
    | [] -> [ e ]
    | e' :: rest when Rat.lt e'.ts e.ts -> e' :: go rest
    | rest -> e :: rest
  in
  go h

(* the largest transactional timestamp of a history (Rat.zero if only the
   initializing entry) *)
let txn_ceiling (h : history) =
  List.fold_left
    (fun acc e -> match e.txn with Some _ when Rat.lt acc e.ts -> e.ts | _ -> acc)
    Rat.zero h

let max_ts (h : history) = List.fold_left (fun acc e -> if Rat.lt acc e.ts then e.ts else acc) Rat.zero h

(* a fresh timestamp strictly above [lo]: either squeezed before the next
   existing entry or past the end — all distinct choices *)
let fresh_slots (h : history) ~above =
  let higher = List.filter (fun e -> Rat.lt above e.ts) h in
  let rec slots lo = function
    | [] -> [ Rat.succ lo ]
    | e :: rest -> Rat.between lo e.ts :: slots e.ts rest
  in
  slots above higher

type store = (string * history) list

let history (s : store) x =
  Option.value (List.assoc_opt x s)
    ~default:[ { ts = Rat.zero; value = 0; txn = Some Frontier.empty } ]

let set_history (s : store) x h = (x, h) :: List.remove_assoc x s

(* -- machine state ----------------------------------------------------------- *)

type tstate = { stmts : Ast.stmt list; env : Proto.env; fuel : int }

type state = {
  store : store;
  vol : (string * (int * Frontier.t)) list;
      (* native volatile locations: current value + stored frontier *)
  fence_pub : (string * Frontier.t) list; (* Ψ: frontiers published by fences *)
  read_pub : (string * Frontier.t) list;
      (* frontiers published by committed transactions that READ the
         location: HBCQ synchronizes a fence with every committed
         transaction touching the location, including pure readers, and
         reads leave no store entry to hang the frontier on *)
  frontiers : Frontier.t list; (* per thread *)
  threads : tstate list;
}

let vol_cell st x =
  Option.value (List.assoc_opt x st.vol) ~default:(0, Frontier.empty)

let fence_frontier st x =
  Option.value (List.assoc_opt x st.fence_pub) ~default:Frontier.empty

let read_frontier st x =
  Option.value (List.assoc_opt x st.read_pub) ~default:Frontier.empty

type result = {
  outcomes : Outcome.t list;
  states : int;
  truncated : bool;
  capped : bool;
}

(* [volatile] marks locations given Dolan et al.'s native Java-volatile
   semantics: a single current value plus a stored frontier, merged on
   every access — no history, reads always return the latest value.  Used
   to machine-check the §2 degeneracy claim that singleton transactions
   behave exactly like volatiles. *)
let run ?(config = default_config) ?(volatile = []) (program : Ast.program) =
  (match Ast.validate program with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Machine.run: " ^ msg));
  let outcomes : (Outcome.t, unit) Hashtbl.t = Hashtbl.create 64 in
  let states = ref 0 in
  let truncated = ref false and capped = ref false in
  let locs = ref program.locs in
  let note_loc x = if not (List.mem x !locs) then locs := !locs @ [ x ] in

  (* Run an atomic block to completion against a snapshot; branches over
     read choices.  Returns (buffer in po order, acquired frontier, env,
     aborted) alternatives.

     A read's timestamp must clear the frontier known *so far*, and —
     checked at the end of the block — the frontier acquired by the
     *whole* block: a transaction that reads x and later acquires
     knowledge of a newer x (through a location published after a newer
     x-write) has an inconsistent snapshot.  Operationally this is TL2's
     read-set validation; axiomatically it is Observation closing the
     (hb ; lrw) cycle (Example 3.3). *)
  let run_block store frontier fuel env body =
    let rec go fuel env (buffer : (string * int) list) acquired reads caps stmts k =
      match stmts with
      | [] -> k (List.rev buffer, acquired, reads, caps, env, false)
      | s :: rest -> (
          match (s : Ast.stmt) with
          | Skip -> go fuel env buffer acquired reads caps rest k
          | Assign (r, e) ->
              go fuel (Proto.env_set env r (Proto.eval env e)) buffer acquired reads caps rest k
          | Store (lv, e) ->
              let x = Proto.resolve env lv in
              note_loc x;
              go fuel env ((x, Proto.eval env e) :: buffer) acquired reads caps rest k
          | Load (r, lv) ->
              let x = Proto.resolve env lv in
              note_loc x;
              let h = history store x in
              let floor =
                let f = Frontier.get (Frontier.merge frontier acquired) x in
                let c = txn_ceiling h in
                if Rat.lt f c then c else f
              in
              let foreign_read caps =
                (* read an existing entry despite any buffered own write:
                   WF11 only forbids sources older than an own write, so
                   an own write may be overtaken by a newer entry as long
                   as the commit places the own writes below it (the cap) *)
                List.iter
                  (fun e ->
                    if Rat.leq floor e.ts then
                      let acquired =
                        match e.txn with
                        | Some f ->
                            Frontier.advance (Frontier.merge acquired f) x e.ts
                        | None -> acquired
                      in
                      go fuel
                        (Proto.env_set env r e.value)
                        buffer acquired
                        ((x, e.ts) :: reads)
                        caps rest k)
                  h
              in
              (match List.assoc_opt x buffer with
              | Some v ->
                  (* own buffered write *)
                  go fuel (Proto.env_set env r v) buffer acquired reads caps rest k;
                  (* or a foreign entry that will obscure it: cap the own
                     writes below whatever entry is chosen *)
                  let cap ts =
                    match List.assoc_opt x caps with
                    | Some c when Rat.leq c ts -> caps
                    | _ -> (x, ts) :: List.remove_assoc x caps
                  in
                  List.iter
                    (fun e ->
                      if Rat.leq floor e.ts then
                        let acquired =
                          match e.txn with
                          | Some f ->
                              Frontier.advance (Frontier.merge acquired f) x e.ts
                          | None -> acquired
                        in
                        go fuel
                          (Proto.env_set env r e.value)
                          buffer acquired
                          ((x, e.ts) :: reads)
                          (cap e.ts) rest k)
                    h
              | None -> foreign_read caps)
          | If (c, t, f) ->
              go fuel env buffer acquired reads caps
                ((if Proto.eval env c <> 0 then t else f) @ rest)
                k
          | While (c, b) ->
              if Proto.eval env c = 0 then go fuel env buffer acquired reads caps rest k
              else if fuel <= 0 then truncated := true
              else
                go (fuel - 1) env buffer acquired reads caps
                  (b @ (Ast.While (c, b) :: rest))
                  k
          | Abort -> k ([], acquired, [], [], env, true)
          | Atomic _ | Fence _ -> invalid_arg "Machine: nested atomic/fence")
    in
    go fuel env [] Frontier.empty [] [] body
  in

  (* publish a committed buffer: for each write in order, branch over
     fresh timestamp slots above the constraint *)
  let publish st thread_idx frontier caps buffer k =
    (* choose timestamps for every write first (in program order, each
       above the running constraint), then stamp every published entry
       with the transaction's FINAL frontier: lifting makes cww/cwr
       class-level, so a reader or overwriter of any entry synchronizes
       with the whole committing transaction, including writes published
       after that entry. *)
    let rec choose frontier chosen = function
      | [] ->
          let final = frontier in
          let store =
            List.fold_left
              (fun store (x, v, ts) ->
                set_history store x
                  (insert (history store x) { ts; value = v; txn = Some final }))
              st (List.rev chosen)
          in
          k store final
      | (x, v) :: rest ->
          (* slot selection sees the real history plus the slots already
             reserved by this transaction's earlier writes to x *)
          let h =
            List.fold_left
              (fun h (x', v', ts) ->
                if String.equal x' x then insert h { ts; value = v'; txn = None }
                else h)
              (history st x) chosen
          in
          let above =
            let f = Frontier.get frontier x and c = txn_ceiling h in
            if Rat.lt f c then c else f
          in
          let slots =
            let all = fresh_slots h ~above in
            match List.assoc_opt x caps with
            | Some cap -> List.filter (fun ts -> Rat.lt ts cap) all
            | None -> all
          in
          List.iter
            (fun ts ->
              choose (Frontier.advance frontier x ts) ((x, v, ts) :: chosen) rest)
            slots
    in
    ignore thread_idx;
    choose frontier [] buffer
  in

  (* static footprint of a block: the location names it may touch;
     computed cells resolve at runtime, so collect every declared cell of
     the same base *)
  let block_footprint body =
    let rec of_stmt acc (s : Ast.stmt) =
      match s with
      | Load (_, lv) | Store (lv, _) -> lval_locs acc lv
      | If (_, a, b) -> List.fold_left of_stmt (List.fold_left of_stmt acc a) b
      | While (_, b) -> List.fold_left of_stmt acc b
      | _ -> acc
    and lval_locs acc ({ base; index } : Ast.lval) =
      match index with
      | None -> if List.mem base acc then acc else base :: acc
      | Some _ ->
          List.fold_left
            (fun acc l ->
              let prefix = base ^ "[" in
              let plen = String.length prefix in
              if
                String.length l >= plen
                && String.equal (String.sub l 0 plen) prefix
                && not (List.mem l acc)
              then l :: acc
              else acc)
            acc !locs
    in
    List.fold_left of_stmt [] body
  in

  let rec explore (st : state) =
    if !states >= config.max_states then capped := true
    else begin
      incr states;
      let stepped = ref false in
      List.iteri
        (fun i (t : tstate) ->
          match t.stmts with
          | [] -> ()
          | s :: rest -> (
              stepped := true;
              let frontier = List.nth st.frontiers i in
              let continue ?(store = st.store) ?(vol = st.vol)
                  ?(fence_pub = st.fence_pub) ?(read_pub = st.read_pub)
                  ?frontier:(f = frontier) t' =
                explore
                  {
                    store;
                    vol;
                    fence_pub;
                    read_pub;
                    frontiers = List.mapi (fun j u -> if j = i then f else u) st.frontiers;
                    threads = List.mapi (fun j u -> if j = i then t' else u) st.threads;
                  }
              in
              match (s : Ast.stmt) with
              | Skip -> continue { t with stmts = rest }
              | Assign (r, e) ->
                  continue { t with stmts = rest; env = Proto.env_set t.env r (Proto.eval t.env e) }
              | Store (lv, e) when List.mem (Proto.resolve t.env lv) volatile ->
                  let x = Proto.resolve t.env lv in
                  note_loc x;
                  let v = Proto.eval t.env e in
                  (* volatile write: merge frontiers both ways, replace
                     the value *)
                  let _, fl = vol_cell st x in
                  let f = Frontier.merge frontier fl in
                  continue
                    ~vol:((x, (v, f)) :: List.remove_assoc x st.vol)
                    ~frontier:f { t with stmts = rest }
              | Load (r, lv) when List.mem (Proto.resolve t.env lv) volatile ->
                  let x = Proto.resolve t.env lv in
                  note_loc x;
                  (* volatile read: the latest value, acquiring the
                     stored frontier *)
                  let v, fl = vol_cell st x in
                  continue
                    ~frontier:(Frontier.merge frontier fl)
                    { t with stmts = rest; env = Proto.env_set t.env r v }
              | Store (lv, e) ->
                  let x = Proto.resolve t.env lv in
                  note_loc x;
                  let h = history st.store x in
                  let v = Proto.eval t.env e in
                  List.iter
                    (fun ts ->
                      let entry = { ts; value = v; txn = None } in
                      continue
                        ~store:(set_history st.store x (insert h entry))
                        ~frontier:(Frontier.advance frontier x ts)
                        { t with stmts = rest })
                    (fresh_slots h ~above:(Frontier.get frontier x))
              | Load (r, lv) ->
                  let x = Proto.resolve t.env lv in
                  note_loc x;
                  let floor = Frontier.get frontier x in
                  List.iter
                    (fun e ->
                      if Rat.leq floor e.ts then
                        (* plain reads do not advance the frontier and do
                           not synchronize *)
                        continue { t with stmts = rest; env = Proto.env_set t.env r e.value })
                    (history st.store x)
              | If (c, tb, eb) ->
                  continue
                    { t with stmts = (if Proto.eval t.env c <> 0 then tb else eb) @ rest }
              | While (c, b) ->
                  if Proto.eval t.env c = 0 then continue { t with stmts = rest }
                  else if t.fuel <= 0 then truncated := true
                  else
                    continue
                      { t with stmts = b @ (Ast.While (c, b) :: rest); fuel = t.fuel - 1 }
              | Fence x ->
                  note_loc x;
                  (* HBCQ: acquire every transactional entry of x and the
                     frontier published by committed readers of x *)
                  let f =
                    List.fold_left
                      (fun f e ->
                        match e.txn with
                        | Some ef -> Frontier.advance (Frontier.merge f ef) x e.ts
                        | None -> f)
                      (Frontier.merge frontier (read_frontier st x))
                      (history st.store x)
                  in
                  (* HBQB: publish for later transactions touching x *)
                  let fence_pub =
                    (x, Frontier.merge (fence_frontier st x) f)
                    :: List.remove_assoc x st.fence_pub
                  in
                  continue ~fence_pub ~frontier:f { t with stmts = rest }
              | Abort -> invalid_arg "Machine: abort outside atomic"
              | Atomic body ->
                  (* start from the frontier raised by fences on every
                     location the block touches *)
                  let fp = block_footprint body in
                  let frontier0 =
                    List.fold_left
                      (fun f x -> Frontier.merge f (fence_frontier st x))
                      frontier fp
                  in
                  run_block st.store frontier0 t.fuel t.env body
                    (fun (buffer, acquired, reads, caps, env', aborted) ->
                      if aborted then
                        (* registers roll back; nothing published *)
                        continue { t with stmts = rest }
                      else begin
                        (* cww: writing above the existing transactional
                           entries of a location synchronizes with them —
                           acquire their frontiers before validating *)
                        let acquired =
                          List.fold_left
                            (fun acc x ->
                              List.fold_left
                                (fun acc (e : entry) ->
                                  match e.txn with
                                  | Some f ->
                                      Frontier.advance (Frontier.merge acc f) x e.ts
                                  | None -> acc)
                                acc (history st.store x))
                            acquired
                            (List.sort_uniq compare (List.map fst buffer))
                        in
                        let f = Frontier.merge frontier0 acquired in
                        (* TL2-style read-set validation: every read must
                           still clear the final frontier (Observation) *)
                        if
                          List.for_all
                            (fun (x, q) -> Rat.leq (Frontier.get f x) q)
                            reads
                        then
                          publish st.store i f caps buffer (fun store f ->
                              let read_pub =
                                List.fold_left
                                  (fun acc (x, _) ->
                                    (x, Frontier.merge (read_frontier st x) f)
                                    :: List.remove_assoc x acc)
                                  st.read_pub reads
                              in
                              continue ~store ~read_pub ~frontier:f
                                { t with stmts = rest; env = env' })
                      end)))
        st.threads;
      if not !stepped then begin
        let envs = List.map (fun (t : tstate) -> t.env) st.threads in
        let mem =
          List.map
            (fun x ->
              if List.mem x volatile then (x, fst (vol_cell st x))
              else
                let h = history st.store x in
                let top = max_ts h in
                (x, (List.find (fun e -> Rat.equal e.ts top) h).value))
            !locs
        in
        Hashtbl.replace outcomes (Outcome.make ~envs ~mem) ()
      end
    end
  in
  explore
    {
      store = [];
      vol = [];
      fence_pub = [];
      read_pub = [];
      frontiers = List.map (fun _ -> Frontier.empty) program.threads;
      threads =
        List.map
          (fun stmts -> { stmts; env = []; fuel = config.fuel })
          program.threads;
    };
  {
    outcomes = Outcome.dedup (Hashtbl.fold (fun o () acc -> o :: acc) outcomes []);
    states = !states;
    truncated = !truncated;
    capped = !capped;
  }
