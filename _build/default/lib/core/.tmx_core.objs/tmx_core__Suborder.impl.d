lib/core/suborder.ml: Action Lift List Rel String Trace
