open Tmx_lang

let default_corpus_dir = "fuzz/corpus"
let default_crashes_dir = "fuzz/crashes"

let litmus_files dir =
  if not (Sys.file_exists dir && Sys.is_directory dir) then []
  else
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".litmus")
    |> List.sort String.compare
    |> List.map (Filename.concat dir)

let classify dir =
  List.map
    (fun file ->
      match Tmx_litmus.Parse.parse_file file with
      | exception Tmx_litmus.Parse.Error msg -> Error (file, msg)
      | exception Sys_error msg -> Error (file, msg)
      | litmus -> (
          let p = litmus.Tmx_litmus.Litmus.program in
          match Ast.validate p with
          | Ok () -> Ok (file, p)
          | Error msg -> Error (file, msg)))
    (litmus_files dir)

let load ~dir = List.filter_map Result.to_option (classify dir)

let load_errors ~dir =
  List.filter_map (function Error e -> Some e | Ok _ -> None) (classify dir)

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ())
  end

(* The parser only accepts [A-Za-z0-9_'] identifiers not starting with a
   digit; a generated program name like "fuzz-0-3" would export to a
   file that can never replay.  Saved programs get a parseable name. *)
let sanitize_name n =
  let n =
    String.map
      (fun c ->
        match c with
        | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '\'' -> c
        | _ -> '_')
      n
  in
  match n with "" -> "p" | n when n.[0] >= '0' && n.[0] <= '9' -> "p" ^ n | n -> n

let save ~dir ~prefix p =
  mkdir_p dir;
  let p = { p with Ast.name = sanitize_name p.Ast.name } in
  let text = Tmx_litmus.Export.program_to_string p in
  let digest = String.sub (Digest.to_hex (Digest.string text)) 0 12 in
  let path = Filename.concat dir (Fmt.str "%s-%s.litmus" prefix digest) in
  if not (Sys.file_exists path) then begin
    let oc = open_out path in
    output_string oc text;
    close_out oc
  end;
  path
