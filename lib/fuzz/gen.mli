(** Seeded, size-targeted random program generation for the differential
    fuzzer — one generator for the whole repo.

    The two QCheck generators that used to live privately in
    [test/test_theorems.ml] and [test/test_analysis.ml] are the
    {!theorems} and {!analysis} presets of the same engine; the fuzzer
    default ({!mixed}) additionally seeds whole idiom templates (plain
    L-race shapes, transactional-only, fence-repaired privatization,
    guarded publication) so the mixed-access corner every oracle cares
    about is hit with high probability instead of by luck.

    Generators are plain functions of a [Random.State.t], so they compose
    with QCheck ([QCheck.Gen.t] is the same type) without this library
    depending on it.  Generation is deterministic per state: the fuzzer
    derives one state per program from [--seed] and the program index. *)

open Tmx_lang

type config = {
  locs : string list;  (** location pool; threads draw from a prefix *)
  values : int * int;  (** stored values, inclusive range *)
  threads : int * int;  (** thread-count range *)
  stmts : int * int;  (** statements per thread *)
  inner : int * int;  (** statements per atomic body *)
  abort_weight : int;  (** weight of [abort] inside atomic bodies *)
  atomic_weight : int;
  fence_weight : int;
  branch_weight : int;  (** 0 disables [if] statements *)
  template_weight : int;
      (** weight of replacing the whole program with an idiom template
          (vs purely random threads); 0 disables templates *)
}

val theorems : config
(** The historical [test_theorems.ml] distribution: two locations,
    flat statements, atomic bodies of 1–2, no branches, no templates. *)

val analysis : config
(** The historical [test_analysis.ml] distribution: three locations,
    atomic bodies of 1–3, occasional constant-guarded branches. *)

val mixed : config
(** The fuzzer default: {!analysis} plus idiom templates, weighted
    toward mixed (transactional + plain on one location) shapes. *)

val program : ?name:string -> config -> Random.State.t -> Ast.program
(** Generate one program.  Every load targets a fresh register so
    outcomes are observable, and the result always passes
    [Ast.validate]. *)

val state_of_seed : seed:int -> index:int -> Random.State.t
(** The derived state the fuzzer uses for program [index] of a run
    seeded with [seed] — exposed so a failure report's (seed, index)
    pair regenerates the exact program. *)
