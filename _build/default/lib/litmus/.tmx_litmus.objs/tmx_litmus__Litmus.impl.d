lib/litmus/litmus.ml: Action Enumerate Fmt Hashtbl Hb Lift List Model Outcome Race String Tmx_core Tmx_exec Tmx_lang Trace Verdict
