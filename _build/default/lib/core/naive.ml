(* A definition-faithful reference implementation of the model.

   Everything here is written by direct quantification over the trace,
   transcribing the paper's definitions as literally as possible — no
   bit-matrices, no precomputed lifting contexts, no fixpoint engineering.
   It is deliberately slow and deliberately independent of the optimized
   implementation in [Lift]/[Hb]/[Consistency]; the test suite checks the
   two agree on every execution the enumerator produces and on random
   traces.  A disagreement means one of the two transcriptions of the
   paper is wrong. *)

let positions t = List.init (Trace.length t) Fun.id

let pairs t =
  List.concat_map (fun i -> List.map (fun j -> (i, j)) (positions t)) (positions t)

(* -- base relations, straight from §2 ------------------------------------- *)

let init_rel t a b = Trace.is_init t a && not (Trace.is_init t b)
let po t a b = a < b && Trace.thread t a = Trace.thread t b

let ww t a b =
  match (Trace.act t a, Trace.act t b) with
  | Action.Write wa, Action.Write wb ->
      String.equal wa.loc wb.loc && Rat.lt wa.ts wb.ts
  | _ -> false

let wr t a b =
  match (Trace.act t a, Trace.act t b) with
  | Action.Write wa, Action.Read rb ->
      String.equal wa.loc rb.loc && wa.value = rb.value && Rat.equal wa.ts rb.ts
  | _ -> false

(* b rw c iff a wr b and a ww c for some a, and c is plain or nonaborted *)
let rw t b c =
  Trace.is_nonaborted t c
  && List.exists (fun a -> wr t a b && ww t a c) (positions t)

(* -- lifting --------------------------------------------------------------- *)

let tx_sim t a b = Trace.same_txn t a b

(* a lR b iff a R b, or a' R b' for some a' tx~ a !tx~ b tx~ b' *)
let lift t r a b =
  r a b
  || ((not (tx_sim t a b))
     && List.exists
          (fun a' ->
            tx_sim t a a'
            && List.exists (fun b' -> tx_sim t b b' && r a' b') (positions t))
          (positions t))

let lww t = lift t (ww t)
let lwr t = lift t (wr t)
let lrw t = lift t (rw t)

let x_of t r a b = r a b && Trace.is_transactional t a && Trace.is_transactional t b

let c_of t r a b =
  r a b && Trace.is_committed_or_live_txn t a && Trace.is_committed_or_live_txn t b

let xrw t = x_of t (lrw t)
let cww t = c_of t (lww t)
let cwr t = c_of t (lwr t)
let crw t = c_of t (lrw t)

(* -- happens-before, as a literal least fixed point ------------------------ *)

let hb (model : Model.t) t =
  let n = Trace.length t in
  let rel = Hashtbl.create 64 in
  let mem a b = Hashtbl.mem rel (a, b) in
  let add a b = if not (mem a b) then Hashtbl.replace rel (a, b) true in
  (* HBdef *)
  List.iter
    (fun (a, b) ->
      if init_rel t a b || po t a b || cwr t a b || cww t a b then add a b)
    (pairs t);
  (* fence rules (§5) *)
  if model.quiescence then
    List.iter
      (fun (a, c) ->
        (match (Trace.act t a, Trace.act t c) with
        | Action.Commit, Action.Qfence x ->
            let b = Trace.txn_of t a in
            if b >= 0 && a < c && Trace.txn_touches t b x then add a c
        | _ -> ());
        match (Trace.act t a, Trace.act t c) with
        | Action.Qfence x, Action.Begin ->
            if a < c && Trace.txn_touches t c x then add a c
        | _ -> ())
      (pairs t);
  (* close under HBtrans and the enabled HB rules until nothing changes *)
  let changed = ref true in
  while !changed do
    changed := false;
    for a = 0 to n - 1 do
      for b = 0 to n - 1 do
        if mem a b then
          for c = 0 to n - 1 do
            if mem b c && not (mem a c) then begin
              add a c;
              changed := true
            end
          done
      done
    done;
    let unprimed enabled lxx =
      if enabled then
        List.iter
          (fun (a, c) ->
            if
              (not (mem a c))
              && Trace.is_plain t c && lxx a c
              && List.exists (fun b -> crw t a b && mem b c) (positions t)
            then begin
              add a c;
              changed := true
            end)
          (pairs t)
    in
    let primed enabled lxx =
      if enabled then
        List.iter
          (fun (a, c) ->
            if
              (not (mem a c))
              && Trace.is_plain t a && lxx a c
              && List.exists (fun b -> mem a b && crw t b c) (positions t)
            then begin
              add a c;
              changed := true
            end)
          (pairs t)
    in
    unprimed model.hb_ww (lww t);
    unprimed model.hb_wr (lwr t);
    unprimed model.hb_rw (lrw t);
    primed model.hb_ww' (lww t);
    primed model.hb_wr' (lwr t);
    primed model.hb_rw' (lrw t)
  done;
  mem

(* -- consistency ------------------------------------------------------------ *)

let acyclic n r =
  (* brute-force: repeated DFS *)
  let rec visit path v =
    if List.mem v path then false
    else
      List.for_all
        (fun w -> if r v w then visit (v :: path) w else true)
        (List.init n Fun.id)
  in
  List.for_all (fun v -> visit [] v) (List.init n Fun.id)

let irreflexive_comp n r s =
  not
    (List.exists
       (fun a -> List.exists (fun b -> r a b && s b a) (List.init n Fun.id))
       (List.init n Fun.id))

let irreflexive_comp3 n r s u =
  not
    (List.exists
       (fun a ->
         List.exists
           (fun b ->
             r a b
             && List.exists (fun c -> s b c && u c a) (List.init n Fun.id))
           (List.init n Fun.id))
       (List.init n Fun.id))

let consistent_axioms (model : Model.t) t =
  let n = Trace.length t in
  let hb = hb model t in
  let lww = lww t and lwr = lwr t and lrw = lrw t in
  let xrw = xrw t and crw = crw t in
  let causality_edge a b = hb a b || lwr a b || xrw a b in
  acyclic n causality_edge
  && irreflexive_comp n hb lww
  && irreflexive_comp n hb lrw
  && ((not model.anti_ww) || irreflexive_comp3 n crw hb lww)
  && ((not model.anti_rw) || irreflexive_comp3 n crw hb lrw)
  && ((not model.anti_ww') || irreflexive_comp3 n hb crw lww)
  && ((not model.anti_rw') || irreflexive_comp3 n hb crw lrw)

let consistent model t = Wellformed.is_well_formed t && consistent_axioms model t
