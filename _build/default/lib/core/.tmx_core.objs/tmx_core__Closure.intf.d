lib/core/closure.mli: Lift Model Rel Trace
