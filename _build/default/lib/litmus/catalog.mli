(** The paper's examples as machine-checked litmus tests.

    Every numbered example and every figure-with-verdict of the paper is
    here, with the paper's verdicts encoded as expectations; DESIGN.md's
    experiment index maps experiment ids to these names. *)

val privatization : Litmus.t
val privatization_chain : Litmus.t
val publication : Litmus.t
val iriw_z : Litmus.t
val temporal : Litmus.t
val ex2_2 : Litmus.t
val load_buffering : Litmus.t
val store_buffering : Litmus.t
val aborted_publication : Litmus.t
val opacity_iriw : Litmus.t
val opacity_iriw_plain : Litmus.t
val coherence_java : Litmus.t
val coherence_cse : Litmus.t
val ex2_3_ww : Litmus.t
val ex2_3_rw : Litmus.t
val ex2_3_wr : Litmus.t
val ex2_3_ww' : Litmus.t
val ex2_3_rw' : Litmus.t
val ex2_3_wr' : Litmus.t
val ex3_1 : Litmus.t
val ex3_2 : Litmus.t
val ex3_3 : Litmus.t
val ex3_4 : Litmus.t
val ex3_5 : Litmus.t
val ldrf_example : Litmus.t
val doomed : Litmus.t
val impl_reorder : Litmus.t
val impl_reorder_swapped : Litmus.t
val privatization_fence : Litmus.t
val d1_opaque_writes : Litmus.t
val d2_race_free_speculation : Litmus.t
val d3_dirty_reads : Litmus.t
val d4_no_overlapped_writes : Litmus.t

val all : Litmus.t list
val find : string -> Litmus.t option
