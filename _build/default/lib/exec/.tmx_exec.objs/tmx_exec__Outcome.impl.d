lib/exec/outcome.ml: Array Fmt List Option Stdlib
