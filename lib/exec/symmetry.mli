(** Symmetry reduction for the enumerator: detect thread permutations
    that map the unfolded program onto itself (up to a bijective
    renaming of locations), group the thread-path combinations into
    orbits under the generated group, and enumerate only one
    representative per orbit.

    A permutation π of threads is an automorphism when, for every thread
    i and path index a, the a-th path of thread i and the a-th path of
    thread π(i) have positionally identical proto lists modulo one
    global location bijection σ (values must match exactly — reads-from
    and coherence depend on them).  Such a π lifts to an isomorphism of
    candidate execution graphs preserving program order, reads-from,
    coherence and transaction structure, hence every consistency axiom:
    the candidates of the image combo are exactly the renamed candidates
    of the representative, with identical verdicts
    (docs/ENUMERATION.md).  The enumerator therefore replays the
    representative's consistent selections onto the image combo instead
    of re-searching its candidate space. *)

val find : Proto.path list list -> int array list
(** Non-identity automorphisms of the unfolded program (per-thread path
    lists).  The search enumerates shape-compatible permutations with
    backtracking; below 2 or beyond 8 threads it reports none (symmetry
    reduction degrades to plain reduction, soundly). *)

(** {1 Orbits of combo indices under the generated group}

    Combos are indexed in mixed radix over per-thread path choices,
    thread 0 most significant — the enumeration order of the product. *)

type t

val orbits : radices:int array -> int array list -> t option
(** Union-find over the edges s → π·s for each generator π, with each
    orbit's representative its smallest index (so representatives
    precede their images in enumeration order).  [None] when there are
    no generators or the combo space is too large for the orbit tables
    to pay for themselves. *)

val rep : t -> int -> int
(** The orbit representative (smallest combo index) of a combo. *)

val perm : t -> int -> int array
(** The thread permutation mapping a combo's representative onto it. *)

val map_selection :
  from:Combo.t -> to_:Combo.t -> int array -> Combo.selection -> Combo.selection
(** Rename a representative combo's selection into the image combo's
    event indices: event (thread i, offset o) maps to (thread π i, o);
    location keys are re-read off the image's own events, so σ never
    needs materializing. *)
