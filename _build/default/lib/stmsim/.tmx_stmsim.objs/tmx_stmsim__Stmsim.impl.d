lib/stmsim/stmsim.ml: Ast Hashtbl List Option Outcome Proto Sc Tmx_exec Tmx_lang
