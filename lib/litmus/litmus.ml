(* Litmus test harness: a named program plus a list of machine-checkable
   expectations — outcome verdicts (allowed/forbidden under a model),
   per-execution race-freedom claims, and mixed-race claims.

   The catalog of the paper's examples lives in [Catalog]. *)

open Tmx_core
open Tmx_exec

type expect = Allowed | Forbidden

let pp_expect ppf = function
  | Allowed -> Fmt.string ppf "allowed"
  | Forbidden -> Fmt.string ppf "forbidden"

type check =
  | Outcome_check of {
      model : Model.t;
      descr : string;
      cond : Outcome.t -> bool;
      expect : expect;
    }
  | Exec_check of {
      model : Model.t;
      descr : string;
      pred : Trace.t -> bool;
      expect : expect;
    }
    (* does some consistent execution's trace satisfy [pred]?  Used for
       claims about aborted transactions, whose register observations
       roll back and so never reach an outcome. *)
  | Race_check of {
      model : Model.t;
      descr : string;
      cond : (Outcome.t -> bool) option; (* restrict to matching executions *)
      l : string list option;
      expect : [ `All_race_free | `Some_racy ];
    }
  | Mixed_race_check of { model : Model.t; descr : string; expect : bool }

(* The location/value pairs read by transaction [b]. *)
let txn_reads trace b =
  List.filter_map
    (fun i ->
      match Trace.act trace i with
      | Action.Read { loc; value; _ } -> Some (loc, value)
      | _ -> None)
    (Trace.txn_members trace b)

(* Does the trace contain an aborted transaction whose reads include all
   the given location/value pairs? *)
let aborted_txn_with_reads pairs trace =
  List.exists
    (fun b ->
      Trace.status trace b = Some Trace.Aborted
      &&
      let reads = txn_reads trace b in
      List.for_all (fun p -> List.mem p reads) pairs)
    (Trace.txns trace)

(* Does the trace contain a plain read of the given location/value? *)
let plain_read_of x v trace =
  let n = Trace.length trace in
  let rec go i =
    i < n
    && ((Trace.is_plain trace i
        &&
        match Trace.act trace i with
        | Action.Read { loc; value; _ } -> String.equal loc x && value = v
        | _ -> false)
       || go (i + 1))
  in
  go 0

type t = {
  name : string;
  section : string; (* paper locus, e.g. "§2 Example 2.1" *)
  description : string;
  program : Tmx_lang.Ast.program;
  checks : check list;
}

let model_of_check = function
  | Outcome_check { model; _ }
  | Exec_check { model; _ }
  | Race_check { model; _ }
  | Mixed_race_check { model; _ } ->
      model

let descr_of_check = function
  | Outcome_check { descr; _ }
  | Exec_check { descr; _ }
  | Race_check { descr; _ }
  | Mixed_race_check { descr; _ } ->
      descr

type check_result = {
  check : check;
  ok : bool;
  detail : string;
}

type report = {
  litmus : t;
  results : check_result list;
  truncated : bool;
  capped : bool;
  lint : Tmx_analysis.Lint.report;
      (* the static verdict, recorded next to the exhaustive one; no
         enumeration happens on this path *)
}

let passed report = List.for_all (fun r -> r.ok) report.results

let run ?(config = Enumerate.default_config)
    ?(enumerate = fun ~config m p -> Enumerate.run ~config m p) litmus =
  (* enumerate once per distinct model *)
  let cache : (string, Enumerate.result) Hashtbl.t = Hashtbl.create 4 in
  let result_for model =
    match Hashtbl.find_opt cache model.Model.name with
    | Some r -> r
    | None ->
        let r = enumerate ~config model litmus.program in
        Hashtbl.add cache model.Model.name r;
        r
  in
  let run_check check =
    let model = model_of_check check in
    let result = result_for model in
    match check with
    | Outcome_check { cond; expect; _ } ->
        let is_allowed = Enumerate.allowed result cond in
        let ok =
          match expect with Allowed -> is_allowed | Forbidden -> not is_allowed
        in
        {
          check;
          ok;
          detail =
            Fmt.str "expected %a, observed %s" pp_expect expect
              (if is_allowed then "allowed" else "forbidden");
        }
    | Exec_check { pred; expect; _ } ->
        let exists =
          List.exists
            (fun (e : Enumerate.execution) -> pred e.trace)
            result.executions
        in
        let ok = match expect with Allowed -> exists | Forbidden -> not exists in
        {
          check;
          ok;
          detail =
            Fmt.str "expected execution %a, observed %s" pp_expect expect
              (if exists then "present" else "absent");
        }
    | Race_check { cond; l; expect; _ } ->
        let matching =
          List.filter
            (fun (e : Enumerate.execution) ->
              match cond with None -> true | Some c -> c e.outcome)
            result.executions
        in
        let racy_count =
          List.length
            (List.filter
               (fun (e : Enumerate.execution) ->
                 Verdict.execution_races ?l model e.trace <> [])
               matching)
        in
        let ok =
          match expect with
          | `All_race_free -> racy_count = 0 && matching <> []
          | `Some_racy -> racy_count > 0
        in
        {
          check;
          ok;
          detail =
            Fmt.str "%d/%d matching executions racy" racy_count
              (List.length matching);
        }
    | Mixed_race_check { expect; _ } ->
        let has =
          List.exists
            (fun (e : Enumerate.execution) ->
              let ctx = Lift.make e.trace in
              let hb = Hb.compute model ctx in
              Race.has_mixed_race e.trace hb)
            result.executions
        in
        { check; ok = has = expect; detail = Fmt.str "mixed race: %b" has }
  in
  let results = List.map run_check litmus.checks in
  let truncated =
    Hashtbl.fold (fun _ (r : Enumerate.result) acc -> acc || r.truncated) cache false
  in
  let capped =
    Hashtbl.fold (fun _ (r : Enumerate.result) acc -> acc || r.capped) cache false
  in
  {
    litmus;
    results;
    truncated;
    capped;
    lint = Tmx_analysis.Lint.lint litmus.program;
  }

let pp_report ppf report =
  let status = if passed report then "PASS" else "FAIL" in
  Fmt.pf ppf "@[<v>[%s] %s (%s)%s%s@,%a@,  static: %a@]" status
    report.litmus.name report.litmus.section
    (if report.truncated then " [truncated]" else "")
    (if report.capped then " [capped]" else "")
    Fmt.(
      list ~sep:cut (fun ppf r ->
          Fmt.pf ppf "  %s [%s] %s: %s"
            (if r.ok then "ok  " else "FAIL")
            (model_of_check r.check).Model.name (descr_of_check r.check)
            r.detail))
    report.results Tmx_analysis.Lint.pp_verdict report.lint
