(** The wire protocol of [tmx serve]: one JSON object per line in each
    direction (NDJSON).

    Request fields: ["verb"] (required — ping, check, races, outcomes,
    lint, batch, stats, shutdown); ["name"] (a catalog litmus name) or
    ["program"] (litmus source text) for the program-taking verbs;
    ["model"] (default ["pm"]); ["deadline_ms"]; ["id"] (any JSON
    value, echoed verbatim in the response); and for batch,
    ["requests"], an array of non-batch requests.

    Responses always carry ["ok"] (bool), ["verb"], the echoed ["id"]
    when one was given, and on failure ["error"]. *)

type request = {
  id : Json.t option;
  verb : string;
  name : string option;
  program : string option;
  model : string;
  deadline_ms : int option;
  subrequests : request list;  (** nonempty only for [batch] *)
}

val of_line : string -> (request, string) result

val to_json : request -> Json.t
(** The client-side encoder; [of_line (to_string (to_json r)) = Ok r]. *)

val ok : ?id:Json.t -> verb:string -> (string * Json.t) list -> Json.t
val error : ?id:Json.t -> verb:string -> string -> Json.t

val overloaded : ?id:Json.t -> verb:string -> unit -> Json.t
(** The structured shed response: [ok = false], [error = "overloaded"],
    and a distinguishing ["overloaded": true] field so clients can
    retry-with-backoff instead of treating it as a hard failure. *)

val response_ok : Json.t -> bool
(** The ["ok"] field of a response (false when absent). *)

val response_overloaded : Json.t -> bool
(** Was this response a shed (["overloaded"] field, false when absent)? *)
