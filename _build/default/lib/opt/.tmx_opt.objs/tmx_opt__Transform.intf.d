lib/opt/transform.mli: Ast Tmx_lang
