test/test_litmus.ml: Alcotest Fmt List Tmx_litmus
