test/test_fenceify.ml: Alcotest Ast Fenceify Fmt List Option QCheck QCheck_alcotest Test_theorems Tmx_core Tmx_exec Tmx_lang Tmx_litmus Tmx_opt
