lib/runtime/stm.ml: Atomic Domain Fmt List Option Registry Tvar
