(* The conservative static happens-before abstraction.

   A pair of static accesses is declared [Ordered] only when EVERY pair
   of their dynamic instances is happens-before-ordered (or excluded
   from racing outright) in every well-formed trace, under every model:

   - [Same_thread]: program order is in the happens-before base (HBdef),
     and a trace linearizes program order, so same-thread instances can
     never race.  Transaction boundaries need no separate case: Begin
     and Commit are po-ordered with their transaction's accesses.
   - [Both_transactional]: an L-race requires at least one plain access,
     so two transactional accesses never race by definition.
   - [Both_reads]: an L-conflict requires at least one write.
   - [Must_abort]: every instance of the access is in an aborted
     transaction, and aborted actions never conflict.

   Nothing else is sound.  In particular the quiescence-fence rules
   WF12/HBCQ/HBQB order a fence against transactions on ONE side of it
   in the trace — a transaction that begins after the fence (HBQB) is
   unordered with plain accesses that follow the fence, and one that
   commits before it (HBCQ) is unordered with plain accesses that
   precede it — and which side a transaction lands on is resolved only
   dynamically.  Likewise HBww-style privatization ordering depends on
   the guard's reads-from choice.  These one-sided facts are reported as
   [protection]s: they downgrade a finding's severity and shape its fix
   suggestion, but never suppress it, preserving soundness. *)

type reason = Same_thread | Both_transactional | Both_reads | Must_abort

let pp_reason ppf = function
  | Same_thread -> Fmt.string ppf "same thread (program order)"
  | Both_transactional -> Fmt.string ppf "both transactional"
  | Both_reads -> Fmt.string ppf "both reads"
  | Must_abort -> Fmt.string ppf "always-aborted transaction"

type protection =
  | Fence_commit_side of string
      (* the plain access is dominated by fence(x): transactions on x
         that commit before the fence are ordered before it (HBCQ) *)
  | Fence_begin_side of string
      (* the plain access is postdominated by fence(x): transactions on
         x that begin after the fence are ordered after it (HBQB) *)
  | Guarded_publication of string
      (* the transactional side reads flag x, and the plain side's
         thread writes x in an atomic block before the plain access —
         the privatization idiom that HBww orders when the guard reads
         the pre-publication value *)
  | Published_flag of string
      (* the plain access precedes an atomic block that writes flag x,
         which the transactional side reads — the publication idiom:
         cwr serializes the publishing transaction before the reading
         one whenever the guard value is observed *)
  | Consumed_flag of string
      (* the transactional side writes flag x, which the plain side's
         thread read in an atomic block before the plain access — the
         dual handoff: cwr serializes the writing transaction before
         the reader's atomic whenever its value is observed *)

let pp_protection ppf = function
  | Fence_commit_side x -> Fmt.pf ppf "fence(%s) before the plain access (HBCQ)" x
  | Fence_begin_side x -> Fmt.pf ppf "fence(%s) after the plain access (HBQB)" x
  | Guarded_publication x -> Fmt.pf ppf "guarded publication via %s (HBww)" x
  | Published_flag x -> Fmt.pf ppf "flag %s published after the plain access (cwr)" x
  | Consumed_flag x -> Fmt.pf ppf "flag %s consumed before the plain access (cwr)" x

type verdict = Ordered of reason | Unordered of protection list

(* Protections for an (access, access) pair known to clash on a
   location.  Only tx-vs-plain pairs have any. *)
let protections (a : Access.t) (b : Access.t) =
  match (a.mode, b.mode) with
  | Access.Plain, Access.Plain | Access.Transactional, Access.Transactional -> []
  | _ ->
      let tx, plain =
        if a.mode = Access.Transactional then (a, b) else (b, a)
      in
      let fence_hits fences =
        List.filter
          (fun x ->
            Tmx_opt.Footprint.name_clash x tx.loc
            || Tmx_opt.Footprint.name_clash x plain.loc)
          fences
      in
      let flag_of ok mk flag =
        if ok flag && not (Tmx_opt.Footprint.name_clash flag tx.loc) then
          Some (mk flag)
        else None
      in
      List.map (fun x -> Fence_commit_side x) (fence_hits plain.fences_before)
      @ List.map (fun x -> Fence_begin_side x) (fence_hits plain.fences_after)
      @ List.filter_map
          (flag_of
             (fun f -> List.mem f plain.prior_atomic_writes)
             (fun f -> Guarded_publication f))
          tx.txn_reads
      @ List.filter_map
          (flag_of
             (fun f -> List.mem f plain.later_atomic_writes)
             (fun f -> Published_flag f))
          tx.txn_reads
      @ List.filter_map
          (flag_of
             (fun f -> List.mem f plain.prior_atomic_reads)
             (fun f -> Consumed_flag f))
          tx.txn_writes

let pair (a : Access.t) (b : Access.t) =
  if a.thread = b.thread then Ordered Same_thread
  else if a.mode = Access.Transactional && b.mode = Access.Transactional then
    Ordered Both_transactional
  else if a.kind = Access.Read && b.kind = Access.Read then Ordered Both_reads
  else if a.must_abort || b.must_abort then Ordered Must_abort
  else Unordered (protections a b)
