open Tmx_runtime

let read_all tvars =
  Array.map (fun v -> Option.get (Stm.atomically (fun tx -> Stm.read tx v))) tvars

let test_read_write mode () =
  let v = Tvar.make 0 in
  let result =
    Stm.atomically ~mode (fun tx ->
        Stm.write tx v 41;
        Stm.read tx v + 1)
  in
  Alcotest.(check (option int)) "read own write" (Some 42) result;
  Alcotest.(check int) "committed" 41 (Tvar.unsafe_read v)

let test_abort_rollback mode () =
  let v = Tvar.make 7 in
  let result =
    Stm.atomically ~mode (fun tx ->
        Stm.write tx v 99;
        if Stm.read tx v = 99 then Stm.abort tx else 0)
  in
  Alcotest.(check (option int)) "user abort" None result;
  Alcotest.(check int) "value rolled back" 7 (Tvar.unsafe_read v)

let test_counter mode () =
  let v = Tvar.make 0 in
  let domains = 4 and iters = 500 in
  let worker () =
    for _ = 1 to iters do
      ignore (Stm.atomically ~mode (fun tx -> Stm.write tx v (Stm.read tx v + 1)))
    done
  in
  let ds = List.init domains (fun _ -> Domain.spawn worker) in
  List.iter Domain.join ds;
  Alcotest.(check int) "no lost increments" (domains * iters) (Tvar.unsafe_read v)

let test_transfer_conservation mode () =
  let n = 6 and per = 100 in
  let accounts = Array.init n (fun _ -> Tvar.make per) in
  let worker seed () =
    let st = ref seed in
    let rand m =
      st := (!st * 48271 + 13) land 0x3fffffff;
      !st mod m
    in
    for _ = 1 to 800 do
      let a = rand n and b = rand n and amt = rand 20 in
      ignore
        (Stm.atomically ~mode (fun tx ->
             let va = Stm.read tx accounts.(a) in
             let vb = Stm.read tx accounts.(b) in
             if a <> b && va >= amt then begin
               Stm.write tx accounts.(a) (va - amt);
               Stm.write tx accounts.(b) (vb + amt)
             end))
    done
  in
  let ds = [ Domain.spawn (worker 1); Domain.spawn (worker 2); Domain.spawn (worker 3) ] in
  List.iter Domain.join ds;
  let total = Array.fold_left (fun acc v -> acc + v) 0 (read_all accounts) in
  Alcotest.(check int) "total conserved" (n * per) total

let test_opacity mode () =
  (* maintain x = y in writer transactions; readers must never observe a
     broken invariant *)
  let x = Tvar.make 0 and y = Tvar.make 0 in
  let stop = Atomic.make false in
  let violations = Atomic.make 0 in
  let writer () =
    for i = 1 to 1500 do
      ignore
        (Stm.atomically ~mode (fun tx ->
             Stm.write tx x i;
             Stm.write tx y i))
    done;
    Atomic.set stop true
  in
  let reader () =
    while not (Atomic.get stop) do
      match Stm.atomically ~mode (fun tx -> (Stm.read tx x, Stm.read tx y)) with
      | Some (a, b) when a <> b -> Atomic.incr violations
      | _ -> ()
    done
  in
  let w = Domain.spawn writer and r = Domain.spawn reader in
  Domain.join w;
  Domain.join r;
  Alcotest.(check int) "invariant never broken" 0 (Atomic.get violations)

let test_quiesce_privatization () =
  (* the privatization idiom: after the flag transaction and a quiescence
     fence, plain access is safe *)
  let x = Tvar.make 0 and flag = Tvar.make 0 in
  let iterations = 200 in
  let failures = ref 0 in
  for _ = 1 to iterations do
    Tvar.unsafe_write x 0;
    ignore (Stm.atomically (fun tx -> Stm.write tx flag 0));
    let d =
      Domain.spawn (fun () ->
          ignore
            (Stm.atomically (fun tx ->
                 if Stm.read tx flag = 0 then Stm.write tx x 1)))
    in
    ignore (Stm.atomically (fun tx -> Stm.write tx flag 1));
    Stm.quiesce ();
    (* x is now private: a plain write must not be overwritten *)
    Tvar.unsafe_write x 2;
    Domain.join d;
    if Tvar.unsafe_read x <> 2 then incr failures
  done;
  Alcotest.(check int) "privatized writes never lost" 0 !failures

let test_or_else mode () =
  let a = Tvar.make 0 and b = Tvar.make 0 in
  (* first branch writes then aborts; its effects must vanish *)
  let r =
    Stm.atomically ~mode (fun tx ->
        Stm.or_else tx
          (fun tx ->
            Stm.write tx a 1;
            Stm.write tx a 2;
            Stm.abort tx)
          (fun tx ->
            Stm.write tx b 10;
            Stm.read tx a))
  in
  Alcotest.(check (option int)) "second branch sees rollback" (Some 0) r;
  Alcotest.(check int) "a untouched" 0 (Tvar.unsafe_read a);
  Alcotest.(check int) "b committed" 10 (Tvar.unsafe_read b);
  (* pre-branch writes survive a branch abort *)
  let r2 =
    Stm.atomically ~mode (fun tx ->
        Stm.write tx a 5;
        Stm.or_else tx (fun tx -> Stm.abort tx) (fun tx -> Stm.read tx a))
  in
  Alcotest.(check (option int)) "pre-branch write visible" (Some 5) r2;
  Alcotest.(check int) "pre-branch write committed" 5 (Tvar.unsafe_read a);
  (* an abort in the second branch aborts the transaction *)
  let r3 =
    Stm.atomically ~mode (fun tx ->
        Stm.write tx b 99;
        Stm.or_else tx (fun tx -> Stm.abort tx) (fun tx -> Stm.abort tx))
  in
  Alcotest.(check (option int)) "both branches abort" None r3;
  Alcotest.(check int) "b rolled back" 10 (Tvar.unsafe_read b)

let test_footprint_enforced () =
  let v = Tvar.make 0 and w = Tvar.make 0 in
  Alcotest.check_raises "stray access raises"
    (Invalid_argument
       (Fmt.str "Stm: access to tvar#%d outside the declared footprint" (Tvar.id w)))
    (fun () ->
      ignore (Stm.atomically ~footprint:[ v ] (fun tx -> Stm.read tx w)))

let test_selective_quiesce_skips_disjoint () =
  (* a per-location fence on x must not wait for a transaction whose
     declared footprint is {w} *)
  let x = Tvar.make 0 and w = Tvar.make 0 in
  let entered = Atomic.make false and release = Atomic.make false in
  let finished = Atomic.make false in
  let d =
    Domain.spawn (fun () ->
        ignore
          (Stm.atomically ~footprint:[ w ] (fun tx ->
               let v = Stm.read tx w in
               Atomic.set entered true;
               (* bounded spin so a regression cannot hang the suite *)
               let spins = ref 0 in
               while (not (Atomic.get release)) && !spins < 200_000_000 do
                 incr spins;
                 Domain.cpu_relax ()
               done;
               v));
        Atomic.set finished true)
  in
  while not (Atomic.get entered) do
    Domain.cpu_relax ()
  done;
  Stm.quiesce ~var:x ();
  let returned_early = not (Atomic.get finished) in
  Atomic.set release true;
  Domain.join d;
  Alcotest.(check bool) "fence skipped the disjoint transaction" true returned_early

let test_selective_quiesce_waits_for_overlapping () =
  let w = Tvar.make 0 in
  let entered = Atomic.make false and finished = Atomic.make false in
  let d =
    Domain.spawn (fun () ->
        ignore
          (Stm.atomically ~footprint:[ w ] (fun tx ->
               Atomic.set entered true;
               let v = Stm.read tx w in
               Stm.write tx w (v + 1)));
        Atomic.set finished true)
  in
  while not (Atomic.get entered) do
    Domain.cpu_relax ()
  done;
  Stm.quiesce ~var:w ();
  (* the transaction itself has resolved once the fence returns (the
     [finished] flag is set just after, so give it the commit itself) *)
  Alcotest.(check bool) "fence returned" true true;
  Domain.join d;
  Alcotest.(check bool) "transaction completed" true (Atomic.get finished);
  Alcotest.(check int) "its write landed" 1 (Tvar.unsafe_read w)

let test_stats_move () =
  let before, _, _ = Stm.stats_snapshot () in
  let v = Tvar.make 0 in
  ignore (Stm.atomically (fun tx -> Stm.write tx v 1));
  let after, _, _ = Stm.stats_snapshot () in
  Alcotest.(check bool) "commit counted" true (after > before)

let suite =
  [
    Alcotest.test_case "lazy read/write" `Quick (test_read_write Stm.Lazy);
    Alcotest.test_case "eager read/write" `Quick (test_read_write Stm.Eager);
    Alcotest.test_case "lazy abort rollback" `Quick (test_abort_rollback Stm.Lazy);
    Alcotest.test_case "eager abort rollback" `Quick (test_abort_rollback Stm.Eager);
    Alcotest.test_case "lazy counter" `Slow (test_counter Stm.Lazy);
    Alcotest.test_case "eager counter" `Slow (test_counter Stm.Eager);
    Alcotest.test_case "lazy transfers conserve" `Slow (test_transfer_conservation Stm.Lazy);
    Alcotest.test_case "eager transfers conserve" `Slow (test_transfer_conservation Stm.Eager);
    Alcotest.test_case "lazy opacity" `Slow (test_opacity Stm.Lazy);
    Alcotest.test_case "eager opacity" `Slow (test_opacity Stm.Eager);
    Alcotest.test_case "quiescence privatization" `Slow test_quiesce_privatization;
    Alcotest.test_case "lazy orElse" `Quick (test_or_else Stm.Lazy);
    Alcotest.test_case "eager orElse" `Quick (test_or_else Stm.Eager);
    Alcotest.test_case "footprints enforced" `Quick test_footprint_enforced;
    Alcotest.test_case "selective quiescence skips disjoint" `Slow
      test_selective_quiesce_skips_disjoint;
    Alcotest.test_case "selective quiescence waits" `Slow
      test_selective_quiesce_waits_for_overlapping;
    Alcotest.test_case "stats counters" `Quick test_stats_move;
  ]
