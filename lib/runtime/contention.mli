(** Pluggable contention management for the runtime STM.

    A policy decides how a conflicted transaction waits before retrying
    (and whether it eventually stops retrying optimistically at all):

    - {!Spin}: capped exponential backoff, deterministic and identical
      on every domain — the legacy behaviour, prone to retry convoys;
    - {!Jittered} (the default): capped exponential with the spin length
      drawn from a per-domain deterministic PRNG (no shared RNG, no
      wall-clock dependence), which breaks convoys;
    - {!Budget}[ n]: jittered for the first [n] retries, then the
      transaction escalates to a serialized slow path — it takes a
      global lock, stalls new attempts on other domains, and runs with
      the field to itself, so a starved transaction finishes instead of
      spinning forever. *)

type policy =
  | Spin
  | Jittered
  | Budget of int

val default_policy : policy
(** {!Jittered}. *)

val pp_policy : Format.formatter -> policy -> unit

val backoff : policy -> retry:int -> unit
(** Wait as the policy prescribes before retry number [retry]
    (0-based: the wait after the first conflict has [retry = 0]). *)

val escalates : policy -> retry:int -> bool
(** Should this retry run on the serialized slow path instead? *)

val serialized : (unit -> 'a) -> 'a
(** Run [f] with the serialization gate held: one escalated transaction
    at a time, all other domains' {e new} attempts stalled via
    {!stall_if_serialized} until [f] returns. *)

val stall_if_serialized : unit -> unit
(** Spin while some escalated transaction holds the gate.  Called by the
    STM at the top of every optimistic attempt. *)

(** An admission budget: the {!Budget} idea lifted out of the retry loop
    for reuse as load-shedding backpressure (e.g. the [tmx serve]
    request path).  At most [limit] callers are inside at once; an
    arrival past the limit is {e shed} — refused immediately and
    counted — instead of queueing unboundedly.  [limit <= 0] disables
    the bound (every entry is admitted, nothing is counted). *)
module Admission : sig
  type t

  val create : limit:int -> t
  val try_enter : t -> bool
  (** Admit (true) or shed (false, incrementing {!shed_count}).
      Lock-free and exact: concurrent admits never exceed [limit]. *)

  val leave : t -> unit
  (** Release one admitted slot.  Call exactly once per successful
      {!try_enter}. *)

  val with_admission : t -> (unit -> 'a) -> shed:(unit -> 'a) -> 'a
  (** [with_admission t f ~shed] runs [f] inside the budget (releasing
      on return or exception), or [shed ()] when the budget is full. *)

  val inflight : t -> int
  val shed_count : t -> int
  val limit : t -> int
end

(**/**)

val rand_bits : unit -> int
(** The per-domain PRNG, exposed for tests and benchmarks. *)

(**/**)
