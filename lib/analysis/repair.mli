(** Counterexample-guided minimal race repair, verified by the
    enumerator.

    [run] searches edit subsets over {!Tmx_opt.Patch}'s edit language —
    per-site fence insertion, promotion into fresh atomic blocks,
    absorption into adjacent ones — for a minimal (fewest edits, then
    fewest fences) repair that the reduced enumerator certifies
    race-free under the requested model and goal.  {!Lint} findings seed
    the candidates (lint soundness guarantees the pool contains a
    sufficient repair); {!Order}'s exclusions prune statically; the
    enumerator ({!Tmx_exec.Verdict.race_witness}) is consulted only on
    the frontier, memoized by structural digest, and every discarded
    candidate is justified by a concrete racy execution. *)

open Tmx_lang
open Tmx_opt

type goal =
  | Mixed  (** repair until no mixed race (§5) remains — the default *)
  | All  (** repair until no L-race at all remains *)

val goal_name : goal -> string
(** ["mixed"], ["all"]. *)

val goal_of_string : string -> goal option

type discard = {
  subset : Patch.edit list;
  witness : Tmx_exec.Verdict.race_witness;
      (** the concrete racy execution that killed the candidate *)
}

type t = {
  original : Ast.program;
  repaired : Ast.program;
  edits : Patch.edit list;  (** [] iff the program was already clean *)
  certificate : string;
      (** hex digest binding the repaired program's structural form, the
          model, the oracle's enumeration config and the goal *)
  candidates : int;  (** candidate subsets examined (incl. filtered) *)
  oracle_calls : int;  (** enumerator invocations after memoization *)
  discards : discard list;  (** most recent first *)
}

type cost = { n_edits : int; n_fences : int; n_promotes : int; n_absorbs : int }

val cost : t -> cost

val certificate_of :
  config:Tmx_exec.Enumerate.config ->
  model:Tmx_core.Model.t ->
  goal:goal ->
  Ast.program ->
  string

val run :
  ?config:Tmx_exec.Enumerate.config ->
  ?goal:goal ->
  ?max_edits:int ->
  ?promote:bool ->
  Tmx_core.Model.t ->
  Ast.program ->
  (t, string) result
(** Find a minimal repair.  [goal] defaults to [Mixed]; [max_edits]
    defaults to the candidate-pool size; [promote:false] restricts the
    search to fence insertions (the paper's privatization story).  The
    result's edit list is 1-minimal: removing any single edit
    reintroduces a race (the final greedy minimization loop re-verifies
    each removal with the oracle).  [Error] when the program is racy but
    no repair exists in the candidate space within [max_edits]. *)

val check :
  ?config:Tmx_exec.Enumerate.config ->
  ?goal:goal ->
  Tmx_core.Model.t ->
  t ->
  (unit, string) result
(** Independent re-verification of the repair-sound contract, with no
    state shared with the search: the certificate recomputes, the
    repaired program is race-free under the goal, and dropping any
    single edit reintroduces a race. *)

val pp : t Fmt.t
val to_json : model:Tmx_core.Model.t -> goal:goal -> t -> string

val error_to_json : program:Tmx_lang.Ast.program -> string -> string
(** A well-formed JSON entry for a failed synthesis (error messages may
    carry UTF-8, which [%S] would mangle). *)
