lib/litmus/shapes.ml: Ast Enumerate Fmt List Model Outcome Tmx_core Tmx_exec Tmx_lang
