open Tmx_core
open Tb

let has_violation pred t = List.exists pred (Wellformed.violations t)

let test_wf_ok () =
  let t =
    mk ~locs:[ "x"; "y" ]
      [ b 0; w 0 "x" 1 1; c 0; r 1 "x" 1 1; w 1 "y" 1 1 ]
  in
  Alcotest.(check (list (of_pp Wellformed.pp_violation))) "no violations" []
    (Wellformed.violations t)

let test_wf1 () =
  let t = Trace.of_events ~locs:[ "x" ] [ w 0 "x" 1 1 ] in
  Alcotest.(check bool) "missing init" true
    (has_violation (function Wellformed.WF1_no_init -> true | _ -> false) t)

let test_wf3 () =
  let t = mk ~locs:[ "x" ] [ w 0 "x" 1 1; w 1 "x" 2 1 ] in
  Alcotest.(check bool) "duplicate ts" true
    (has_violation (function Wellformed.WF3_duplicate_timestamp _ -> true | _ -> false) t)

let test_wf4 () =
  let t = mk ~locs:[ "x" ] [ c 0 ] in
  Alcotest.(check bool) "commit without begin" true
    (has_violation (function Wellformed.WF4_unmatched_resolution _ -> true | _ -> false) t)

let test_wf5 () =
  let t = mk ~locs:[ "x" ] [ b 0; b 0; c 0; c 0 ] in
  Alcotest.(check bool) "nested begin" true
    (has_violation (function Wellformed.WF5_nested_begin _ -> true | _ -> false) t)

let test_wf6 () =
  let t = mk ~locs:[ "x" ] [ r 0 "x" 7 3 ] in
  Alcotest.(check bool) "unfulfilled read" true
    (has_violation (function Wellformed.WF6_unfulfilled_read _ -> true | _ -> false) t)

let test_wf7 () =
  (* plain read from an aborted transaction's write *)
  let t = mk ~locs:[ "x" ] [ b 0; w 0 "x" 1 1; a 0; r 1 "x" 1 1 ] in
  Alcotest.(check bool) "read from aborted" true
    (has_violation (function Wellformed.WF7_aborted_source _ -> true | _ -> false) t);
  (* a transaction may read its own pending write *)
  let own = mk ~locs:[ "x" ] [ b 0; w 0 "x" 1 1; r 0 "x" 1 1; a 0 ] in
  Alcotest.(check bool) "own pending write ok" false
    (has_violation (function Wellformed.WF7_aborted_source _ -> true | _ -> false) own)

let test_wf8 () =
  let t = mk ~locs:[ "x" ] [ r 0 "x" 1 1; w 1 "x" 1 1 ] in
  Alcotest.(check bool) "read sees future" true
    (has_violation (function Wellformed.WF8_read_from_future _ -> true | _ -> false) t)

let test_wf9 () =
  (* committed transactional write, then another transactional write with
     a smaller timestamp: forbidden *)
  let t = mk ~locs:[ "x" ] [ b 0; w 0 "x" 2 2; c 0; b 1; w 1 "x" 1 1; c 1 ] in
  Alcotest.(check bool) "txn write behind committed txn write" true
    (has_violation (function Wellformed.WF9_txn_write_order _ -> true | _ -> false) t);
  (* allowed when the earlier write is aborted (paper: 'we ignore aborted
     writes') *)
  let t2 = mk ~locs:[ "x" ] [ b 0; w 0 "x" 2 2; a 0; b 1; w 1 "x" 1 1; c 1 ] in
  Alcotest.(check bool) "aborted earlier write ignored" false
    (has_violation (function Wellformed.WF9_txn_write_order _ -> true | _ -> false) t2);
  (* allowed when the earlier write is plain (committed/live refer to
     transactions) *)
  let t3 = mk ~locs:[ "x" ] [ w 0 "x" 2 2; b 1; w 1 "x" 1 1; c 1 ] in
  Alcotest.(check bool) "plain earlier write not constrained by WF9" false
    (has_violation (function Wellformed.WF9_txn_write_order _ -> true | _ -> false) t3)

let test_wf10 () =
  (* ⟨aWx1⟩⟨cWx2⟩⟨bRx1⟩ all transactional: forbidden *)
  let t =
    mk ~locs:[ "x" ]
      [
        b 0; w 0 "x" 1 1; c 0;
        b 1; w 1 "x" 2 2; c 1;
        b 2; r 2 "x" 1 1; c 2;
      ]
  in
  Alcotest.(check bool) "obscured transactional read" true
    (has_violation (function Wellformed.WF10_txn_read_order _ -> true | _ -> false) t)

let test_wf11 () =
  (* ⟨aWx1⟩⟨cWx2⟩⟨bRx1⟩ with c tx~ b: the transaction ignores its own
     newer write *)
  let t =
    mk ~locs:[ "x" ]
      [ b 0; w 0 "x" 1 1; c 0; b 1; w 1 "x" 2 2; r 1 "x" 1 1; c 1 ]
  in
  Alcotest.(check bool) "read obscured by own write" true
    (has_violation (function Wellformed.WF11_same_txn_order _ -> true | _ -> false) t)

let test_wf12 () =
  (* a fence on x while a transaction touching x is unresolved *)
  let t = mk ~locs:[ "x" ] [ b 0; w 0 "x" 1 1; q 1 "x"; c 0 ] in
  Alcotest.(check bool) "fence inside open txn span" true
    (has_violation (function Wellformed.WF12_fence_overlap _ -> true | _ -> false) t);
  (* fine if the transaction does not touch x *)
  let t2 = mk ~locs:[ "x"; "y" ] [ b 0; w 0 "y" 1 1; q 1 "x"; c 0 ] in
  Alcotest.(check bool) "fence with disjoint txn" false
    (has_violation (function Wellformed.WF12_fence_overlap _ -> true | _ -> false) t2);
  (* fine if resolved before the fence *)
  let t3 = mk ~locs:[ "x" ] [ b 0; w 0 "x" 1 1; c 0; q 1 "x" ] in
  Alcotest.(check bool) "fence after resolution" false
    (has_violation (function Wellformed.WF12_fence_overlap _ -> true | _ -> false) t3)

let suite =
  [
    Alcotest.test_case "well-formed trace accepted" `Quick test_wf_ok;
    Alcotest.test_case "WF1 initialization" `Quick test_wf1;
    Alcotest.test_case "WF3 timestamp uniqueness" `Quick test_wf3;
    Alcotest.test_case "WF4 resolution matching" `Quick test_wf4;
    Alcotest.test_case "WF5 no nesting" `Quick test_wf5;
    Alcotest.test_case "WF6 reads fulfilled" `Quick test_wf6;
    Alcotest.test_case "WF7 aborted writes invisible" `Quick test_wf7;
    Alcotest.test_case "WF8 no reads from the future" `Quick test_wf8;
    Alcotest.test_case "WF9 transactional write order" `Quick test_wf9;
    Alcotest.test_case "WF10 obscured transactional reads" `Quick test_wf10;
    Alcotest.test_case "WF11 own-write obscuring" `Quick test_wf11;
    Alcotest.test_case "WF12 fence overlap" `Quick test_wf12;
  ]
