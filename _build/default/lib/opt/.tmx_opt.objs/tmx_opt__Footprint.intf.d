lib/opt/footprint.mli: Tmx_lang
